package triclust_test

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"triclust"
	"triclust/internal/codec"
)

var updateGolden = flag.Bool("update-golden", false,
	"regenerate the current-version golden snapshot fixture (only when deliberately changing the snapshot format)")

const (
	goldenPath = "testdata/golden_v2.snap"
	// legacyGoldenPath is a version-1 snapshot (draw-counted stdlib RNG,
	// no generator identifier). Version 2 cannot replay its random
	// stream, so restoring it must fail with a clean version error.
	legacyGoldenPath = "testdata/golden_v1.snap"
)

// goldenTopic builds the topic the golden fixture was generated from:
// a tiny fully deterministic stream (pre-tokenized tweets, fixed seed).
func goldenTopic(t *testing.T) *triclust.Topic {
	t.Helper()
	users := []triclust.User{
		{Name: "ann", Label: triclust.NoLabel},
		{Name: "bob", Label: triclust.NoLabel},
		{Name: "cyn", Label: triclust.NoLabel},
	}
	cfg := triclust.OnlineConfig{}
	cfg.MaxIter = 5
	cfg.Seed = 42
	tp, err := triclust.NewTopic(users,
		triclust.WithMinDF(1),
		triclust.WithSolverConfig(cfg))
	if err != nil {
		t.Fatalf("NewTopic: %v", err)
	}
	batches := [][]triclust.Tweet{
		{
			{Tokens: []string{"love", "prop37", "win"}, User: 0, Time: 0, RetweetOf: -1, Label: triclust.NoLabel},
			{Tokens: []string{"awful", "prop37", "scam"}, User: 1, Time: 0, RetweetOf: -1, Label: triclust.NoLabel},
		},
		{
			{Tokens: []string{"love", "win"}, User: 2, Time: 1, RetweetOf: -1, Label: triclust.NoLabel},
			{Tokens: []string{"awful", "scam"}, User: 1, Time: 1, RetweetOf: -1, Label: triclust.NoLabel},
		},
	}
	for day, batch := range batches {
		if _, err := tp.Process(day, batch); err != nil {
			t.Fatalf("golden batch %d: %v", day, err)
		}
	}
	return tp
}

// TestGoldenSnapshotCompat restores the checked-in version-1 snapshot
// fixture, guarding the codec against accidental format breaks: a change
// that can no longer read yesterday's snapshots fails here, not in a
// production restore. Run with -update-golden after a deliberate,
// version-bumped format change.
func TestGoldenSnapshotCompat(t *testing.T) {
	if *updateGolden {
		tp := goldenTopic(t)
		var buf bytes.Buffer
		if err := tp.Snapshot(&buf); err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, buf.Len())
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden fixture: %v (generate with -update-golden)", err)
	}
	tp, err := triclust.Restore(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden snapshot no longer restores — codec format break? %v", err)
	}
	if tp.Batches() != 2 || tp.Users() != 3 {
		t.Fatalf("golden topic: %d batches, %d users", tp.Batches(), tp.Users())
	}
	wantVocab := []string{"awful", "love", "prop37", "scam", "win"}
	if got := tp.Vocabulary(); !reflect.DeepEqual(got, wantVocab) {
		t.Fatalf("golden vocabulary %v, want %v", got, wantVocab)
	}
	if last, ok := tp.LastTime(); !ok || last != 1 {
		t.Fatalf("golden last time %d/%v, want 1", last, ok)
	}
	for u := 0; u < 3; u++ {
		est, ok := tp.UserEstimate(u)
		if !ok || est.Confidence < 0 || est.Confidence > 1 {
			t.Fatalf("golden user %d estimate %+v ok=%v", u, est, ok)
		}
	}
	// The restored topic is live: it accepts the stream's next batch and
	// predicts from its restored factors.
	out, err := tp.Process(2, []triclust.Tweet{
		{Tokens: []string{"love", "prop37"}, User: 0, Time: 2, RetweetOf: -1, Label: triclust.NoLabel},
	})
	if err != nil {
		t.Fatalf("golden continuation: %v", err)
	}
	if out.Skipped || len(out.TweetSentiments) != 1 {
		t.Fatalf("golden continuation outcome %+v", out)
	}
	if _, err := tp.Predict([]string{"love this win"}); err != nil {
		t.Fatalf("golden predict: %v", err)
	}
}

// TestLegacySnapshotRejectedByVersion pins the compatibility story for
// pre-SplitMix64 snapshots: their recorded random-stream position belongs
// to a different generator, so they must be turned away with a
// self-describing version error — never half-parsed or silently replayed
// on the wrong stream.
func TestLegacySnapshotRejectedByVersion(t *testing.T) {
	data, err := os.ReadFile(legacyGoldenPath)
	if err != nil {
		t.Fatalf("read legacy fixture: %v", err)
	}
	_, err = triclust.Restore(bytes.NewReader(data))
	if !errors.Is(err, codec.ErrVersion) {
		t.Fatalf("legacy v1 snapshot: got %v, want ErrVersion", err)
	}
}
