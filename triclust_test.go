package triclust_test

import (
	"testing"

	"triclust"
	"triclust/internal/eval"
	"triclust/internal/synth"
)

func demoCorpus(t testing.TB, seed int64) *synth.Dataset {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.NumUsers = 60
	cfg.Days = 8
	cfg.ElectionDay = 6
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return d
}

func TestFitEndToEnd(t *testing.T) {
	d := demoCorpus(t, 1)
	res, err := triclust.Fit(d.Corpus, triclust.DefaultOptions())
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if len(res.TweetSentiments) != d.Corpus.NumTweets() {
		t.Fatalf("tweet sentiments %d, want %d", len(res.TweetSentiments), d.Corpus.NumTweets())
	}
	if len(res.UserSentiments) != d.Corpus.NumUsers() {
		t.Fatal("user sentiment count wrong")
	}
	if len(res.Vocabulary) == 0 || len(res.FeatureSentiments) != len(res.Vocabulary) {
		t.Fatal("vocabulary / feature sentiment mismatch")
	}
	pred := make([]int, len(res.TweetSentiments))
	for i, s := range res.TweetSentiments {
		pred[i] = s.Class
		if s.Confidence < 0 || s.Confidence > 1 {
			t.Fatalf("confidence %v out of range", s.Confidence)
		}
	}
	if acc := eval.Accuracy(pred, d.TweetClass); acc < 0.65 {
		t.Fatalf("end-to-end accuracy = %.3f", acc)
	}
	if res.Iterations == 0 {
		t.Fatal("solver did not iterate")
	}
	if res.Raw == nil {
		t.Fatal("raw result missing")
	}
}

func TestFitClassAlignment(t *testing.T) {
	// With the lexicon prior, cluster ids align with Pos/Neg so that a
	// tweet made of strong positive words lands in Pos.
	d := demoCorpus(t, 2)
	res, err := triclust.Fit(d.Corpus, triclust.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var posRight, posTotal int
	for i, s := range res.TweetSentiments {
		if d.TweetClass[i] == triclust.Pos {
			posTotal++
			if s.Class == triclust.Pos {
				posRight++
			}
		}
	}
	if posTotal == 0 {
		t.Skip("no positive tweets")
	}
	if frac := float64(posRight) / float64(posTotal); frac < 0.5 {
		t.Fatalf("class alignment broken: only %.2f of pos tweets labeled Pos", frac)
	}
}

func TestFitNilAndInvalid(t *testing.T) {
	if _, err := triclust.Fit(nil, triclust.DefaultOptions()); err == nil {
		t.Fatal("expected error for nil corpus")
	}
	bad := &triclust.Corpus{
		Users:  []triclust.User{{}},
		Tweets: []triclust.Tweet{{User: 5, RetweetOf: -1}},
	}
	if _, err := triclust.Fit(bad, triclust.DefaultOptions()); err == nil {
		t.Fatal("expected error for invalid corpus")
	}
}

func TestFitRawText(t *testing.T) {
	c := &triclust.Corpus{
		Users: []triclust.User{{Name: "a"}, {Name: "b"}},
		Tweets: []triclust.Tweet{
			{Text: "love this great #prop37 win", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "terrible awful scam #noprop37", User: 1, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "love love great support", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "bad awful lies and fear", User: 1, RetweetOf: -1, Label: triclust.NoLabel},
		},
	}
	opts := triclust.DefaultOptions()
	opts.MinDF = 1
	opts.Config.MaxIter = 30
	res, err := triclust.Fit(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TweetSentiments) != 4 {
		t.Fatal("wrong tweet count")
	}
	// The two users should end in different classes.
	if res.UserSentiments[0].Class == res.UserSentiments[1].Class {
		t.Fatalf("users not separated: %+v", res.UserSentiments)
	}
	if res.UserSentiments[0].Class != triclust.Pos {
		t.Fatalf("positive user classed %s", triclust.ClassName(res.UserSentiments[0].Class))
	}
}

func TestStreamProcess(t *testing.T) {
	d := demoCorpus(t, 3)
	st, err := triclust.NewStream(d.Corpus.Users, triclust.DefaultStreamOptions())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, _ := d.Corpus.TimeRange()
	var processed int
	for day := lo; day <= hi; day++ {
		var batch []triclust.Tweet
		for _, tw := range d.Corpus.Tweets {
			if tw.Time == day {
				tw.RetweetOf = -1 // batch-local indices unknown to caller
				batch = append(batch, tw)
			}
		}
		if len(batch) == 0 {
			continue
		}
		out, err := st.Process(day, batch)
		if err != nil {
			t.Fatalf("Process day %d: %v", day, err)
		}
		if len(out.TweetSentiments) != len(batch) {
			t.Fatal("batch sentiment count wrong")
		}
		if len(out.ActiveUsers) != len(out.UserSentiments) {
			t.Fatal("active user mapping wrong")
		}
		processed++
	}
	if processed < 3 {
		t.Fatalf("only %d batches processed", processed)
	}
	// A user seen in the stream has an estimate.
	est, ok := st.UserEstimate(d.Corpus.Tweets[0].User)
	if !ok {
		t.Fatal("no estimate for an active user")
	}
	if est.Confidence < 0 || est.Confidence > 1 {
		t.Fatalf("estimate confidence %v", est.Confidence)
	}
	if _, ok := st.UserEstimate(len(d.Corpus.Users) + 5); ok {
		t.Fatal("estimate for out-of-range user")
	}
}

func TestStreamRejectsBadBatch(t *testing.T) {
	st, err := triclust.NewStream([]triclust.User{{}}, triclust.DefaultStreamOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Process(0, []triclust.Tweet{{User: 7, RetweetOf: -1}})
	if err == nil {
		t.Fatal("expected validation error")
	}
}

func TestClassName(t *testing.T) {
	if triclust.ClassName(triclust.Pos) != "positive" ||
		triclust.ClassName(triclust.Neg) != "negative" ||
		triclust.ClassName(triclust.Neu) != "neutral" ||
		triclust.ClassName(7) != "class7" {
		t.Fatal("ClassName wrong")
	}
}

func TestInduceLexiconExported(t *testing.T) {
	lex := triclust.InduceLexicon(
		[][]string{{"goodword"}, {"goodword"}, {"badword"}, {"badword"}},
		[]int{triclust.Pos, triclust.Pos, triclust.Neg, triclust.Neg}, 1, 1.5)
	if c, ok := lex.Class("goodword"); !ok || c != triclust.Pos {
		t.Fatal("induced lexicon wrong")
	}
	if triclust.BuiltinLexicon().Len() == 0 {
		t.Fatal("builtin lexicon empty")
	}
}

func TestPredictTweetsFoldIn(t *testing.T) {
	d := demoCorpus(t, 5)
	opts := triclust.DefaultOptions()
	// Seed the topic lexicon, as the paper seeds Sf0 from its
	// automatically built "Yes"/"No" lists; without topic words the Neg
	// cluster has no anchor in a synthetic corpus.
	lex := d.PlantedLexicon(0.4, 0, 1)
	lex.Merge(triclust.BuiltinLexicon())
	opts.Lexicon = lex
	res, err := triclust.Fit(d.Corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := res.PredictTweets([]string{
		"yeson37 labelgmo health safe",
		"corn farmer noprop37 crop",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("got %d predictions", len(preds))
	}
	if preds[0].Class != triclust.Pos {
		t.Fatalf("pos probe classed %s", triclust.ClassName(preds[0].Class))
	}
	if preds[1].Class != triclust.Neg {
		t.Fatalf("neg probe classed %s", triclust.ClassName(preds[1].Class))
	}
}

func TestPredictTweetsOOVIsGraceful(t *testing.T) {
	d := demoCorpus(t, 6)
	res, err := triclust.Fit(d.Corpus, triclust.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	preds, err := res.PredictTweets([]string{"zzzunknownzzz qqqneverseen"})
	if err != nil {
		t.Fatal(err)
	}
	if preds[0].Confidence < 0 || preds[0].Confidence > 1 {
		t.Fatalf("OOV confidence %v", preds[0].Confidence)
	}
}

func TestFitCustomOptionsRespected(t *testing.T) {
	d := demoCorpus(t, 7)
	opts := triclust.DefaultOptions()
	opts.Config.K = 2
	opts.Config.MaxIter = 8
	opts.LexiconHit = 0.9
	res, err := triclust.Fit(d.Corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 8 {
		t.Fatalf("MaxIter ignored: %d iterations", res.Iterations)
	}
	for _, s := range res.TweetSentiments {
		if s.Class > 1 {
			t.Fatalf("k=2 produced class %d", s.Class)
		}
	}
}

func TestStreamEmptyBatch(t *testing.T) {
	st, err := triclust.NewStream([]triclust.User{{Name: "u"}}, triclust.DefaultStreamOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, err := st.Process(0, nil)
	if err != nil {
		t.Fatalf("empty batch should not error: %v", err)
	}
	if !out.Skipped {
		t.Fatal("empty batch not marked Skipped")
	}
	if len(out.TweetSentiments) != 0 || len(out.ActiveUsers) != 0 {
		t.Fatal("empty batch produced sentiments")
	}
	if len(out.Vocabulary) != 0 {
		t.Fatal("empty batch froze a vocabulary")
	}
	// The skipped step consumed neither the timestamp nor the vocabulary
	// freeze: the first *real* batch still defines both.
	real, err := st.Process(0, []triclust.Tweet{
		{Text: "love great win support", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
		{Text: "love great hate awful", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
	})
	if err != nil {
		t.Fatalf("real batch after skip: %v", err)
	}
	if real.Skipped || len(real.TweetSentiments) != 2 {
		t.Fatal("real batch mislabeled after skip")
	}
	if len(real.Vocabulary) == 0 {
		t.Fatal("vocabulary not frozen from the first real batch")
	}
}

func TestStreamZeroValueOptions(t *testing.T) {
	// A zero StreamOptions must be filled with defaults, not crash.
	st, err := triclust.NewStream([]triclust.User{{Name: "u"}}, triclust.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Process(0, []triclust.Tweet{
		{Text: "love this great thing", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
		{Text: "hate this awful thing", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
	})
	if err != nil {
		t.Fatalf("zero-options stream failed: %v", err)
	}
}
