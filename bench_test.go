// Benchmarks regenerating each of the paper's tables and figures (§5).
// One testing.B target per artifact; each runs the corresponding
// experiments-harness function on a scaled-down preset corpus so that
// `go test -bench=. -benchmem` completes on a laptop. Run
// `go run ./cmd/experiments -scale 1` for paper-scale output.
package triclust_test

import (
	"fmt"
	"sync"
	"testing"

	"triclust/internal/core"
	"triclust/internal/experiments"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// benchScale shrinks the preset corpora; see synth.Scaled.
const benchScale = 8

var (
	benchSetups   = map[experiments.Prop]*experiments.Setup{}
	benchSetupsMu sync.Mutex
)

func benchSetup(b *testing.B, p experiments.Prop) *experiments.Setup {
	b.Helper()
	benchSetupsMu.Lock()
	defer benchSetupsMu.Unlock()
	if s, ok := benchSetups[p]; ok {
		return s
	}
	s, err := experiments.NewSetup(p, benchScale)
	if err != nil {
		b.Fatalf("NewSetup: %v", err)
	}
	benchSetups[p] = s
	return s
}

func BenchmarkTable2TopWords(b *testing.B) {
	s := benchSetup(b, experiments.Prop37)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Table2TopWords(s, 8); len(r.Pos) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkTable3Stats(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Table3Stats(s); r.TweetPos == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFigure4FeatureEvolution(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := experiments.Figure4FeatureEvolution(s); r.User < 0 {
			b.Fatal("no user")
		}
	}
}

func BenchmarkFigure6ParamSweepUser(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	alphas := []float64{0, 0.5, 1}
	betas := []float64{0, 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6and7ParamSweep(s, alphas, betas, 15)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Best(func(c experiments.SweepCell) float64 { return c.User.Accuracy })
	}
}

func BenchmarkFigure7ParamSweepTweet(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	alphas := []float64{0.1}
	betas := []float64{0.8, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure6and7ParamSweep(s, alphas, betas, 15)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.Best(func(c experiments.SweepCell) float64 { return c.Tweet.Accuracy })
	}
}

func BenchmarkFigure8Convergence(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8Convergence(s, 30); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4TweetComparison(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4TweetLevel(s, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5UserComparison(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5UserLevel(s, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9OnlineAlphaTau(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9OnlineAlphaTau(s, []float64{0.9}, []float64{0.5, 0.9}, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10Gamma(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10Gamma(s, []float64{0, 0.2}, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11OnlineProp30(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	cfg := core.DefaultOnlineConfig()
	cfg.MaxIter = 15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11and12Online(s, cfg, 1)
		if err != nil {
			b.Fatal(err)
		}
		sum := r.Summarize()
		if sum.OnlineTime > sum.FullTime {
			b.Log("warning: online slower than full-batch at bench scale")
		}
	}
}

func BenchmarkFigure12OnlineProp37(b *testing.B) {
	s := benchSetup(b, experiments.Prop37)
	cfg := core.DefaultOnlineConfig()
	cfg.MaxIter = 15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11and12Online(s, cfg, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// ——— component benchmarks: the three solver kernels the complexity
// analysis (§3.2, §4.2) is about ———

func BenchmarkOfflineFit(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	cfg := core.DefaultConfig()
	cfg.MaxIter = 20
	p := s.Problem(cfg.K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitOffline(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineSweepIteration(b *testing.B) {
	// One multiplicative-update sweep (the O(rk(nl+ml+nm+m²)) unit).
	s := benchSetup(b, experiments.Prop30)
	cfg := core.DefaultConfig()
	cfg.MaxIter = 1
	cfg.Tol = -1
	p := s.Problem(cfg.K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.FitOffline(p, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	// Design-choice evidence: component knockouts of the Eq. 1 objective.
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Ablation(s, 15)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("wrong variant count")
		}
	}
}

func BenchmarkOnlineStep(b *testing.B) {
	// One Algorithm-2 step on a single snapshot (the O(rk(n(t)l + m(t)l
	// + n(t)m(t) + m(t)²)) unit of §4.2).
	s := benchSetup(b, experiments.Prop30)
	cfg := core.DefaultOnlineConfig()
	cfg.MaxIter = 15
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		o := core.NewOnline(cfg)
		b.StartTimer()
		// Feed the first two non-empty daily snapshots.
		fed := 0
		lo, hi, _ := s.Dataset.Corpus.TimeRange()
		for t := lo; t <= hi && fed < 2; t++ {
			snap := tgraphSnapshot(s, t)
			if snap == nil || snap.Graph.Xp.Rows() == 0 {
				continue
			}
			p := &core.Problem{
				Xp:  snap.Graph.Xp,
				Xu:  snap.Graph.Xu,
				Xr:  snap.Graph.Xr,
				Gu:  snap.Graph.Gu,
				Sf0: s.Lexicon.Sf0(snap.Graph.Vocab, cfg.K, 0.8),
			}
			if _, err := o.Step(t, p, snap.Active); err != nil {
				b.Fatal(err)
			}
			fed++
		}
	}
}

var benchSnapCache = map[string]*tgraph.Snapshot{}

func tgraphSnapshot(s *experiments.Setup, t int) *tgraph.Snapshot {
	key := fmt.Sprintf("%d-%d", s.Prop, t)
	if snap, ok := benchSnapCache[key]; ok {
		return snap
	}
	snap := tgraph.BuildSnapshot(s.Dataset.Corpus, t, t+1, s.Graph.Vocab, text.TFIDF)
	benchSnapCache[key] = snap
	return snap
}

func BenchmarkSolverMultiplicativeVsPG(b *testing.B) {
	// Solver-choice ablation: the paper's multiplicative updates vs the
	// projected-gradient alternative of its related work (§6.2).
	s := benchSetup(b, experiments.Prop30)
	cfg := core.DefaultConfig()
	cfg.MaxIter = 20
	p := s.Problem(cfg.K)
	b.Run("multiplicative", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.FitOffline(p, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("projected-gradient", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.FitOfflinePG(p, cfg, core.DefaultPGOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ——— substrate kernel benches ———

func BenchmarkSpMM(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	xp := s.Graph.Xp
	dense := s.Problem(3).Sf0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := xp.MulDense(dense); out.Rows() != xp.Rows() {
			b.Fatal("bad dims")
		}
	}
}

func BenchmarkSpMMTranspose(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	xp := s.Graph.Xp
	dense := s.Problem(3).Sf0
	spDense := xp.MulDense(dense) // n×k
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := xp.MulTDense(spDense); out.Rows() != xp.Cols() {
			b.Fatal("bad dims")
		}
	}
}

func BenchmarkTokenizePipeline(b *testing.B) {
	tok := text.NewTokenizer(text.DefaultTokenizerOptions())
	tweet := "RT @alice Support the #California #GMO Labeling Ballot Initiative #prop37 https://example.com now!!!"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if toks := tok.Tokenize(tweet); len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	s := benchSetup(b, experiments.Prop30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := tgraph.Build(s.Dataset.Corpus, tgraph.BuildOptions{Weighting: text.TFIDF, MinDF: 2})
		if g.Xp.NNZ() == 0 {
			b.Fatal("empty graph")
		}
	}
}
