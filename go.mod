module triclust

go 1.24
