package triclust_test

import (
	"fmt"

	"triclust"
)

// Example demonstrates offline tri-clustering on a micro-corpus: user-level
// sentiment emerges from clustering tweets, users and words jointly.
func Example() {
	corpus := &triclust.Corpus{
		Users: []triclust.User{{Name: "pro"}, {Name: "anti"}},
		Tweets: []triclust.Tweet{
			{Text: "love this great win, support it", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "happy and safe, agree strongly", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "terrible awful scam, oppose it", User: 1, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "dangerous lies, fear and failure", User: 1, RetweetOf: -1, Label: triclust.NoLabel},
		},
	}
	opts := triclust.DefaultOptions()
	opts.MinDF = 1
	opts.Config.K = 2
	opts.Config.Seed = 1

	res, err := triclust.Fit(corpus, opts)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, s := range res.UserSentiments {
		fmt.Printf("%s: %s\n", corpus.Users[i].Name, triclust.ClassName(s.Class))
	}
	// Output:
	// pro: positive
	// anti: negative
}
