package triclust_test

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"triclust"
)

// Library-level conformance tests use the same controlled steady stream
// as the daemon suite: 12 users, 12 tweets per batch (tweet i from user
// i), three tokens each from a fixed five-word rotation, every tweet at
// the batch time, batch times stepping by one.

func conformUsers() []triclust.User {
	users := make([]triclust.User, 12)
	for i := range users {
		users[i] = triclust.User{Name: fmt.Sprintf("u%d", i), Label: triclust.NoLabel}
	}
	return users
}

func conformBatch(ts, tokensPerTweet int) []triclust.Tweet {
	word := func(k int) string { return fmt.Sprintf("w%d", k%5) }
	tweets := make([]triclust.Tweet, 12)
	for i := range tweets {
		toks := make([]string, tokensPerTweet)
		for j := range toks {
			toks[j] = word(i + j)
		}
		tweets[i] = triclust.Tweet{
			Tokens:    toks,
			User:      i,
			Time:      ts,
			RetweetOf: -1,
			Label:     triclust.NoLabel,
		}
	}
	return tweets
}

func conformTopic(t *testing.T, mode triclust.ConformanceMode) *triclust.Topic {
	t.Helper()
	cfg := triclust.DefaultStreamOptions().Config
	cfg.MaxIter = 5
	cfg.Seed = 7
	tp, err := triclust.NewTopic(conformUsers(), triclust.WithSolverConfig(cfg))
	if err != nil {
		t.Fatalf("NewTopic: %v", err)
	}
	tp.SetConformanceMode(mode)
	return tp
}

// TestConformanceEnforceMatchesOffOnConformingStream: on a stream the
// profile accepts, enforce mode is invisible — identical results,
// byte-identical snapshots. The profile accumulates in every mode; the
// mode only gates what a quarantine verdict does.
func TestConformanceEnforceMatchesOffOnConformingStream(t *testing.T) {
	gated := conformTopic(t, triclust.ConformEnforce)
	control := conformTopic(t, triclust.ConformOff)
	for ts := 1; ts <= 12; ts++ {
		batch := conformBatch(ts, 3)
		a, err := gated.Process(ts, batch)
		if err != nil {
			t.Fatalf("enforce batch %d falsely rejected: %v", ts, err)
		}
		b, err := control.Process(ts, batch)
		if err != nil {
			t.Fatalf("control batch %d: %v", ts, err)
		}
		if a.Iterations != b.Iterations || a.Converged != b.Converged {
			t.Fatalf("batch %d solver diverged: %d/%v vs %d/%v",
				ts, a.Iterations, a.Converged, b.Iterations, b.Converged)
		}
	}
	var sa, sb bytes.Buffer
	if err := gated.Snapshot(&sa); err != nil {
		t.Fatalf("Snapshot gated: %v", err)
	}
	if err := control.Snapshot(&sb); err != nil {
		t.Fatalf("Snapshot control: %v", err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatalf("snapshots diverged: enforce %d bytes vs off %d bytes", sa.Len(), sb.Len())
	}
}

// TestConformanceProfileSurvivesSnapshotRestore: the learned profile is
// part of the snapshot — a restored topic reports the same statistics
// and quarantines the same anomaly, and continuing both streams keeps
// them byte-identical.
func TestConformanceProfileSurvivesSnapshotRestore(t *testing.T) {
	orig := conformTopic(t, triclust.ConformEnforce)
	for ts := 1; ts <= 10; ts++ {
		if _, err := orig.Process(ts, conformBatch(ts, 3)); err != nil {
			t.Fatalf("warm batch %d: %v", ts, err)
		}
	}
	var snap bytes.Buffer
	if err := orig.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := triclust.Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// The mode is runtime policy, never serialized: a restored topic
	// starts ungated until the host re-stamps it.
	if got := restored.ConformanceMode(); got != triclust.ConformOff {
		t.Fatalf("restored mode %v, want off (mode is not topic state)", got)
	}
	restored.SetConformanceMode(triclust.ConformEnforce)

	ra, rb := orig.ConformanceReport(), restored.ConformanceReport()
	if ra == nil || rb == nil {
		t.Fatal("missing conformance report")
	}
	if ra.Observed != rb.Observed || ra.Scored != rb.Scored || !rb.Ready ||
		math.Abs(ra.Drift-rb.Drift) > 0 {
		t.Fatalf("restored report %+v, want %+v", rb, ra)
	}

	// The same anomaly is quarantined by both, with the same verdict.
	jump := conformBatch(11, 3)
	for i := range jump {
		jump[i].Time = 1000
	}
	var ea, eb *triclust.ConformanceError
	_, erra := orig.Process(1000, jump)
	_, errb := restored.Process(1000, jump)
	if !errors.As(erra, &ea) || !errors.As(errb, &eb) {
		t.Fatalf("anomaly errors: orig %v, restored %v; want ConformanceError from both", erra, errb)
	}
	if ea.Verdict.Worst != "time_step" || eb.Verdict.Worst != ea.Verdict.Worst || eb.Verdict.MaxZ != ea.Verdict.MaxZ {
		t.Fatalf("verdicts diverged: %+v vs %+v", ea.Verdict, eb.Verdict)
	}

	// Continue both streams; they stay byte-identical.
	for ts := 11; ts <= 14; ts++ {
		batch := conformBatch(ts, 3)
		if _, err := orig.Process(ts, batch); err != nil {
			t.Fatalf("orig batch %d: %v", ts, err)
		}
		if _, err := restored.Process(ts, batch); err != nil {
			t.Fatalf("restored batch %d: %v", ts, err)
		}
	}
	var sa, sb bytes.Buffer
	if err := orig.Snapshot(&sa); err != nil {
		t.Fatalf("Snapshot orig: %v", err)
	}
	if err := restored.Snapshot(&sb); err != nil {
		t.Fatalf("Snapshot restored: %v", err)
	}
	if !bytes.Equal(sa.Bytes(), sb.Bytes()) {
		t.Fatal("continued snapshots diverged after restore")
	}
}

// TestConformanceVerdictSurfaced: Process surfaces the verdict on the
// StreamResult once the profile is warm, a flag-band batch comes back
// Flagged (accepted in every mode), and the rejection error unwraps to
// the structured ConformanceError.
func TestConformanceVerdictSurfaced(t *testing.T) {
	tp := conformTopic(t, triclust.ConformEnforce)
	var last *triclust.StreamResult
	for ts := 1; ts <= 10; ts++ {
		out, err := tp.Process(ts, conformBatch(ts, 3))
		if err != nil {
			t.Fatalf("warm batch %d: %v", ts, err)
		}
		last = out
	}
	if last.Conformance == nil || last.Conformance.Status != triclust.Conforming {
		t.Fatalf("warm verdict %+v, want conforming", last.Conformance)
	}

	// Five tokens per tweet: tokens_per_tweet z = 4, token_rate z ≈ 6.7
	// — flag band, below quarantine, so enforce mode still accepts it.
	out, err := tp.Process(11, conformBatch(11, 5))
	if err != nil {
		t.Fatalf("flag-band batch rejected: %v", err)
	}
	v := out.Conformance
	if v == nil || v.Status != triclust.Flagged {
		t.Fatalf("flag-band verdict %+v, want flagged", v)
	}
	if v.Worst != "token_rate" {
		t.Fatalf("flag-band worst %q, want token_rate", v.Worst)
	}

	// An OOV spike is past quarantine; enforce rejects with the typed
	// error and the topic's stream position does not move.
	batches := tp.Batches()
	spike := conformBatch(12, 3)
	for i := range spike {
		spike[i].Tokens = []string{"zzz1", "zzz2", "zzz3"}
	}
	_, err = tp.Process(12, spike)
	var ce *triclust.ConformanceError
	if !errors.As(err, &ce) {
		t.Fatalf("spike error %v, want ConformanceError", err)
	}
	if ce.Verdict.Worst != "oov_rate" || ce.Verdict.Status != triclust.Quarantined {
		t.Fatalf("spike verdict %+v, want quarantined oov_rate", ce.Verdict)
	}
	if tp.Batches() != batches {
		t.Fatalf("rejected batch advanced the stream: %d -> %d", batches, tp.Batches())
	}
	// The slot is still free: a conforming batch at the same timestamp
	// is accepted.
	if _, err := tp.Process(12, conformBatch(12, 3)); err != nil {
		t.Fatalf("retry after rejection: %v", err)
	}
}
