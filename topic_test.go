package triclust_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"triclust"
	"triclust/internal/synth"
)

// dayBatches splits a synthetic dataset into per-day tweet batches
// (dropping retweet links, whose indices are corpus-global).
func dayBatches(d *synth.Dataset, days int) [][]triclust.Tweet {
	batches := make([][]triclust.Tweet, days)
	for _, tw := range d.Corpus.Tweets {
		tw.RetweetOf = -1
		if tw.Time >= 0 && tw.Time < days {
			batches[tw.Time] = append(batches[tw.Time], tw)
		}
	}
	return batches
}

func maxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// requireSameStep asserts two online step results are identical within
// tol (the acceptance criterion for snapshot/restore continuation).
func requireSameStep(t *testing.T, day int, a, b *triclust.StreamResult, tol float64) {
	t.Helper()
	if a.Skipped != b.Skipped {
		t.Fatalf("day %d: skipped %v vs %v", day, a.Skipped, b.Skipped)
	}
	if a.Skipped {
		return
	}
	if a.Iterations != b.Iterations || a.Converged != b.Converged {
		t.Fatalf("day %d: iterations %d/%v vs %d/%v",
			day, a.Iterations, a.Converged, b.Iterations, b.Converged)
	}
	if len(a.TweetSentiments) != len(b.TweetSentiments) {
		t.Fatalf("day %d: tweet count %d vs %d", day, len(a.TweetSentiments), len(b.TweetSentiments))
	}
	for i := range a.TweetSentiments {
		if a.TweetSentiments[i].Class != b.TweetSentiments[i].Class {
			t.Fatalf("day %d tweet %d: class %d vs %d", day, i,
				a.TweetSentiments[i].Class, b.TweetSentiments[i].Class)
		}
		if d := math.Abs(a.TweetSentiments[i].Confidence - b.TweetSentiments[i].Confidence); d > tol {
			t.Fatalf("day %d tweet %d: confidence differs by %g", day, i, d)
		}
	}
	if len(a.ActiveUsers) != len(b.ActiveUsers) {
		t.Fatalf("day %d: active users %d vs %d", day, len(a.ActiveUsers), len(b.ActiveUsers))
	}
	for i := range a.ActiveUsers {
		if a.ActiveUsers[i] != b.ActiveUsers[i] {
			t.Fatalf("day %d: active user %d is %d vs %d", day, i, a.ActiveUsers[i], b.ActiveUsers[i])
		}
	}
	for _, pair := range [][2][]float64{
		{a.Raw.Sp.Data(), b.Raw.Sp.Data()},
		{a.Raw.Su.Data(), b.Raw.Su.Data()},
		{a.Raw.Sf.Data(), b.Raw.Sf.Data()},
		{a.Raw.Hp.Data(), b.Raw.Hp.Data()},
		{a.Raw.Hu.Data(), b.Raw.Hu.Data()},
	} {
		if d := maxAbsDiff(pair[0], pair[1]); d > tol {
			t.Fatalf("day %d: factor matrices differ by %g (tol %g)", day, d, tol)
		}
	}
}

// TestTopicSnapshotRestoreMidStream is the acceptance test of the
// snapshot subsystem: a topic snapshotted after batch t and restored in a
// fresh "process" must produce identical results (within 1e-12; in fact
// bit-identical) for batches t+1… as the uninterrupted session.
func TestTopicSnapshotRestoreMidStream(t *testing.T) {
	d := demoCorpus(t, 11)
	const days, cut = 8, 4
	batches := dayBatches(d, days)

	newTopic := func() *triclust.Topic {
		tp, err := triclust.NewTopic(d.Corpus.Users)
		if err != nil {
			t.Fatalf("NewTopic: %v", err)
		}
		return tp
	}

	// Run A: uninterrupted.
	full := newTopic()
	var want []*triclust.StreamResult
	for day := 0; day < days; day++ {
		out, err := full.Process(day, batches[day])
		if err != nil {
			t.Fatalf("full process day %d: %v", day, err)
		}
		if day >= cut {
			want = append(want, out)
		}
	}

	// Run B: same prefix, then snapshot, restore, and continue.
	prefix := newTopic()
	for day := 0; day < cut; day++ {
		if _, err := prefix.Process(day, batches[day]); err != nil {
			t.Fatalf("prefix process day %d: %v", day, err)
		}
	}
	var snap bytes.Buffer
	if err := prefix.Snapshot(&snap); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	restored, err := triclust.Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if restored.Batches() != prefix.Batches() || restored.Users() != prefix.Users() {
		t.Fatalf("restored counters: batches %d vs %d, users %d vs %d",
			restored.Batches(), prefix.Batches(), restored.Users(), prefix.Users())
	}
	for day := cut; day < days; day++ {
		out, err := restored.Process(day, batches[day])
		if err != nil {
			t.Fatalf("restored process day %d: %v", day, err)
		}
		requireSameStep(t, day, want[day-cut], out, 1e-12)
	}

	// User estimates after the full run agree too.
	for u := 0; u < full.Users(); u++ {
		ea, oka := full.UserEstimate(u)
		eb, okb := restored.UserEstimate(u)
		if oka != okb {
			t.Fatalf("user %d: known %v vs %v", u, oka, okb)
		}
		if oka && (ea.Class != eb.Class || math.Abs(ea.Confidence-eb.Confidence) > 1e-12) {
			t.Fatalf("user %d: estimate %+v vs %+v", u, ea, eb)
		}
	}
}

// TestTopicSnapshotDeterministic: equal states produce byte-identical
// snapshots (maps are serialized in sorted order).
func TestTopicSnapshotDeterministic(t *testing.T) {
	d := demoCorpus(t, 3)
	batches := dayBatches(d, 8)
	tp, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		if _, err := tp.Process(day, batches[day]); err != nil {
			t.Fatal(err)
		}
	}
	var s1, s2 bytes.Buffer
	if err := tp.Snapshot(&s1); err != nil {
		t.Fatal(err)
	}
	if err := tp.Snapshot(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("two snapshots of the same state differ")
	}
}

// TestTopicSnapshotPreFreeze: a topic snapshotted after vocabulary
// warm-up but before the freeze restores its accumulated counts, so both
// topics freeze the same vocabulary at the first batch.
func TestTopicSnapshotPreFreeze(t *testing.T) {
	d := demoCorpus(t, 5)
	batches := dayBatches(d, 8)
	mk := func() *triclust.Topic {
		tp, err := triclust.NewTopic(d.Corpus.Users, triclust.WithMinDF(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := tp.WarmupVocabulary("prop37 labeling ballot", "prop37 vote yes"); err != nil {
			t.Fatal(err)
		}
		return tp
	}
	orig := mk()
	var snap bytes.Buffer
	if err := orig.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := triclust.Restore(&snap)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Vocabulary() != nil {
		t.Fatal("restored pre-freeze topic has a frozen vocabulary")
	}
	a, err := orig.Process(0, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Process(0, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	requireSameStep(t, 0, a, b, 0)
	va, vb := orig.Vocabulary(), restored.Vocabulary()
	if len(va) == 0 || len(va) != len(vb) {
		t.Fatalf("vocabulary sizes %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("vocab word %d: %q vs %q", i, va[i], vb[i])
		}
	}
}

// TestTopicPredictAfterRestore: the snapshot carries the last solved
// factors, so fold-in prediction works immediately after a restore.
func TestTopicPredictAfterRestore(t *testing.T) {
	d := demoCorpus(t, 7)
	batches := dayBatches(d, 8)
	tp, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 2; day++ {
		if _, err := tp.Process(day, batches[day]); err != nil {
			t.Fatal(err)
		}
	}
	texts := []string{"love this great win", "awful terrible scam"}
	want, err := tp.Predict(texts)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	var snap bytes.Buffer
	if err := tp.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := triclust.Restore(&snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Predict(texts)
	if err != nil {
		t.Fatalf("Predict after restore: %v", err)
	}
	for i := range want {
		if want[i].Class != got[i].Class || math.Abs(want[i].Confidence-got[i].Confidence) > 1e-12 {
			t.Fatalf("prediction %d: %+v vs %+v", i, want[i], got[i])
		}
	}
}

// TestRestoreRejectsCorruption flips every 7th byte of a valid snapshot
// (and truncates it at several lengths) and requires Restore to reject
// each mutation rather than restore silently-wrong state.
func TestRestoreRejectsCorruption(t *testing.T) {
	d := demoCorpus(t, 9)
	batches := dayBatches(d, 8)
	tp, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 2; day++ {
		if _, err := tp.Process(day, batches[day]); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := tp.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()
	if _, err := triclust.Restore(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}

	for pos := 0; pos < len(good); pos += 7 {
		mut := append([]byte(nil), good...)
		mut[pos] ^= 0x40
		if _, err := triclust.Restore(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d of %d accepted", pos, len(good))
		}
	}
	for _, cut := range []int{0, 5, 17, 18, len(good) / 2, len(good) - 1} {
		if _, err := triclust.Restore(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	if _, err := triclust.Restore(strings.NewReader("not a snapshot at all........")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestNewTopicValidation: the configuration surface rejects the
// degenerate settings the solvers cannot run with — with descriptive
// errors, not panics deep in the pipeline.
func TestNewTopicValidation(t *testing.T) {
	users := []triclust.User{{Name: "u"}}
	cases := []struct {
		name string
		opts []triclust.Option
		want string
	}{
		{"negative MinDF", []triclust.Option{triclust.WithMinDF(-3)}, "MinDF"},
		{"k too large for lexicon", []triclust.Option{
			triclust.WithSolverConfig(triclust.OnlineConfig{Config: triclust.Config{K: 5}})}, "k must be 2 or 3"},
		{"k = 1", []triclust.Option{
			triclust.WithSolverConfig(triclust.OnlineConfig{Config: triclust.Config{K: 1}})}, "k must be 2 or 3"},
		{"negative window", []triclust.Option{
			triclust.WithSolverConfig(triclust.OnlineConfig{Window: -1})}, "window"},
		{"decay out of range", []triclust.Option{
			triclust.WithSolverConfig(triclust.OnlineConfig{Tau: 1.5})}, "tau"},
		{"negative regularizer", []triclust.Option{
			triclust.WithSolverConfig(triclust.OnlineConfig{Gamma: -0.2})}, "non-negative"},
		{"hit below uniform", []triclust.Option{triclust.WithLexiconHit(0.1)}, "LexiconHit"},
		{"unknown weighting", []triclust.Option{triclust.WithWeighting(triclust.Weighting(42))}, "weighting"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := triclust.NewTopic(users, tc.opts...)
			if err == nil {
				t.Fatalf("configuration accepted, want error mentioning %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Valid configurations still construct.
	if _, err := triclust.NewTopic(users); err != nil {
		t.Fatalf("default topic rejected: %v", err)
	}
	if _, err := triclust.NewTopic(nil, triclust.WithSolverConfig(
		triclust.OnlineConfig{Config: triclust.Config{K: 2}})); err != nil {
		t.Fatalf("k=2 topic rejected: %v", err)
	}
}

// TestNewStreamValidation: the deprecated constructor performs the same
// validation (it used to return an error that could never be non-nil).
func TestNewStreamValidation(t *testing.T) {
	opts := triclust.DefaultStreamOptions()
	opts.MinDF = -1
	if _, err := triclust.NewStream([]triclust.User{{}}, opts); err == nil {
		t.Fatal("NewStream accepted negative MinDF")
	}
	opts = triclust.DefaultStreamOptions()
	opts.Config.Window = -2
	if _, err := triclust.NewStream([]triclust.User{{}}, opts); err == nil {
		t.Fatal("NewStream accepted negative window")
	}
	opts = triclust.DefaultStreamOptions()
	opts.Config.K = 7
	if _, err := triclust.NewStream([]triclust.User{{}}, opts); err == nil {
		t.Fatal("NewStream accepted k=7")
	}
}

// TestTopicWarmupFreezeLifecycle exercises the explicit lifecycle:
// warm-up feeds the vocabulary, Freeze fixes it, later warm-up errors.
func TestTopicWarmupFreezeLifecycle(t *testing.T) {
	tp, err := triclust.NewTopic([]triclust.User{{Name: "a"}}, triclust.WithMinDF(2))
	if err != nil {
		t.Fatal(err)
	}
	if tp.Vocabulary() != nil {
		t.Fatal("vocabulary frozen before any data")
	}
	if err := tp.Freeze(); err == nil {
		t.Fatal("Freeze succeeded with no warm-up data")
	}
	err = tp.WarmupVocabulary(
		"label gmo ballot prop37",
		"label gmo vote",
		"unrelated singleton")
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	vocab := tp.Vocabulary()
	if len(vocab) != 2 { // "gmo" and "label" reach MinDF=2
		t.Fatalf("vocabulary %v, want [gmo label]", vocab)
	}
	if err := tp.WarmupVocabulary("more words"); err == nil {
		t.Fatal("warm-up accepted after freeze")
	}
	if err := tp.Freeze(); err == nil {
		t.Fatal("second Freeze accepted")
	}
	// Processing still works against the frozen vocabulary.
	out, err := tp.Process(0, []triclust.Tweet{
		{Text: "label gmo now", User: 0, RetweetOf: -1, Label: triclust.NoLabel},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Skipped || len(out.TweetSentiments) != 1 {
		t.Fatalf("unexpected outcome %+v", out)
	}
	if got := tp.Vocabulary(); len(got) != 2 {
		t.Fatalf("first batch changed the frozen vocabulary: %v", got)
	}
}

// TestStreamTopicEquivalence: the deprecated Stream adapter and the Topic
// it wraps produce identical step results.
func TestStreamTopicEquivalence(t *testing.T) {
	d := demoCorpus(t, 13)
	batches := dayBatches(d, 8)
	st, err := triclust.NewStream(d.Corpus.Users, triclust.DefaultStreamOptions())
	if err != nil {
		t.Fatal(err)
	}
	tp, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 4; day++ {
		a, err := st.Process(day, batches[day])
		if err != nil {
			t.Fatal(err)
		}
		b, err := tp.Process(day, batches[day])
		if err != nil {
			t.Fatal(err)
		}
		requireSameStep(t, day, a, b, 0)
	}
	if st.Topic() == nil {
		t.Fatal("Stream.Topic returned nil")
	}
}

// TestTopicEpochRoundTrip covers the ownership-epoch surface used by the
// sharded daemon: epochs default to 0, survive Snapshot/Restore, and never
// perturb the snapshot's other bytes — a snapshot with the epoch reset to
// 0 is byte-identical to one taken before the epoch was ever set.
func TestTopicEpochRoundTrip(t *testing.T) {
	d := demoCorpus(t, 5)
	batches := dayBatches(d, 4)
	tp, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 3; day++ {
		if _, err := tp.Process(day, batches[day]); err != nil {
			t.Fatal(err)
		}
	}
	if tp.Epoch() != 0 {
		t.Fatalf("fresh topic epoch %d, want 0", tp.Epoch())
	}
	var before bytes.Buffer
	if err := tp.Snapshot(&before); err != nil {
		t.Fatal(err)
	}

	tp.SetEpoch(4)
	var moved bytes.Buffer
	if err := tp.Snapshot(&moved); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before.Bytes(), moved.Bytes()) {
		t.Fatal("epoch bump did not change the snapshot")
	}
	got, err := triclust.Restore(bytes.NewReader(moved.Bytes()))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if got.Epoch() != 4 {
		t.Fatalf("restored epoch %d, want 4", got.Epoch())
	}

	// Resetting the epoch recovers the exact pre-epoch bytes: the epoch
	// section is the only difference, so shard hand-offs preserve the
	// bit-identical state equality the cluster harness asserts.
	got.SetEpoch(0)
	var reset bytes.Buffer
	if err := got.Snapshot(&reset); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), reset.Bytes()) {
		t.Fatal("epoch-0 snapshot of restored topic differs from the original")
	}

	// The restored topic continues the stream identically to the original
	// despite the epoch difference.
	a, err := tp.Process(3, batches[3])
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Process(3, batches[3])
	if err != nil {
		t.Fatal(err)
	}
	requireSameStep(t, 3, a, b, 0)
}
