#!/usr/bin/env bash
# examples/cluster/run.sh — a 3-shard triclustd cluster on one machine:
# boot, create topics through the ring, watch a mis-routed request get
# redirected, move a topic between shards, verify the epoch fence, and
# kill/restart a shard to show recovery.
#
# Usage:  examples/cluster/run.sh [base-port]
#
# Requires: go, curl. jq is used when present, plain cat otherwise.
set -euo pipefail
cd "$(dirname "$0")/../.."

PORT=${1:-8547}
A="http://127.0.0.1:$PORT"
B="http://127.0.0.1:$((PORT + 1))"
C="http://127.0.0.1:$((PORT + 2))"
PEERS="$A,$B,$C"

WORK=$(mktemp -d)
BIN="$WORK/triclustd"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

pretty() { if command -v jq >/dev/null; then jq .; else cat; echo; fi; }

echo "==> building triclustd"
go build -o "$BIN" ./cmd/triclustd

start_shard() { # $1 = name, $2 = url
  local name=$1 url=$2
  mkdir -p "$WORK/$name"
  "$BIN" -addr "${url#http://}" -data-dir "$WORK/$name" \
    -self "$url" -peers "$PEERS" -journal-every 8 \
    >"$WORK/$name.log" 2>&1 &
  PIDS+=($!)
}

await() { # $1 = url
  for _ in $(seq 1 100); do
    curl -fsS "$1/v1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "shard $1 never became healthy; log:" >&2
  cat "$WORK"/*.log >&2
  return 1
}

echo "==> starting 3 shards ($A, $B, $C)"
start_shard a "$A"; start_shard b "$B"; start_shard c "$C"
await "$A"; await "$B"; await "$C"

echo
echo "==> creating topics through shard A; the ring routes each to its owner"
for t in prop30 prop37 election2012 obama romney; do
  # -L follows the 307 to the owning shard, re-sending the body (HTTP/1.1
  # 307 semantics); clients need zero ring awareness. The explicit
  # Content-Type matters: bare curl -d sends form-urlencoded, which the
  # daemon rejects with 415 unsupported_media_type.
  curl -fsSL -X POST "$A/v1/topics" -H 'Content-Type: application/json' -d '{
    "name": "'"$t"'",
    "users": ["ann", "bob", "cyn", "dan"],
    "options": {"max_iter": 10, "seed": 7, "min_df": 1}
  }' >/dev/null
  owner=$(curl -fsS "$A/v1/cluster/info?topic=$t" | sed -n 's/.*"owner":"\([^"]*\)".*/\1/p')
  echo "    $t -> $owner"
done

echo
echo "==> feeding prop37 three batches (again via shard A, routed)"
for day in 1 2 3; do
  curl -fsSL -X POST "$A/v1/topics/prop37/batches" -H 'Content-Type: application/json' -d '{
    "time": '"$day"',
    "tweets": [
      {"text": "love the win on prop37", "user": 0},
      {"text": "prop37 is an awful scam", "user": 1},
      {"text": "no on 37, bad law",       "user": 2}
    ]}' >/dev/null
done
echo "    summary:"; curl -fsSL "$A/v1/topics/prop37" | pretty

OWNER=$(curl -fsS "$A/v1/cluster/info?topic=prop37" | sed -n 's/.*"owner":"\([^"]*\)".*/\1/p')
TARGET=""
for p in "$A" "$B" "$C"; do
  if [ "$p" != "$OWNER" ]; then TARGET=$p; break; fi
done
echo
echo "==> prop37 lives on $OWNER; a mis-routed request elsewhere answers 307 + X-Triclust-Shard:"
WRONG=$TARGET
curl -sS -o /dev/null -D - "$WRONG/v1/topics/prop37" | grep -iE '^(HTTP|location|x-triclust-shard)' || true

echo
echo "==> moving prop37 to $TARGET (drain -> compact -> fence -> install -> drop)"
curl -fsSL -X POST "$A/v1/cluster/move" -H 'Content-Type: application/json' \
  -d '{"topic": "prop37", "target": "'"$TARGET"'"}' | pretty

echo "==> the old owner now redirects prop37 (persisted tombstone):"
curl -fsS "$OWNER/v1/cluster/info?topic=prop37" | pretty

echo
echo "==> epoch fence: installing a stale snapshot on a shard that handed the topic on is refused"
curl -fsSL "$TARGET/v1/topics/prop37/snapshot" -o "$WORK/prop37.snap"
echo "    (snapshot exported from $TARGET at epoch 1)"
echo "    moving it back to $OWNER bumps to epoch 2:"
curl -fsSL -X POST "$TARGET/v1/cluster/move" -H 'Content-Type: application/json' \
  -d '{"topic": "prop37", "target": "'"$OWNER"'"}' | pretty
echo "    re-installing the now-stale epoch-1 snapshot on $TARGET fails:"
# The hand-off header addresses the fencing shard itself (a plain PUT
# would just be redirected onward to the current owner).
curl -sS -X PUT -H "X-Triclust-Handoff: 1" -H 'Content-Type: application/octet-stream' \
  "$TARGET/v1/topics/prop37" --data-binary @"$WORK/prop37.snap" | pretty

echo
echo "==> kill shard B and restart it from its data directory"
kill "${PIDS[1]}"; wait "${PIDS[1]}" 2>/dev/null || true
start_shard b "$B"
await "$B"
echo "    B is back:"; curl -fsS "$B/v1/healthz" | pretty

echo
echo "==> stream continues on the moved topic (back on $OWNER) after all of that"
curl -fsSL -X POST "$A/v1/topics/prop37/batches" -H 'Content-Type: application/json' -d '{
  "time": 4,
  "tweets": [{"text": "prop37 still winning", "user": 3}]}' | pretty

echo
echo "done."
