// Election: dynamic sentiment tracking with the online algorithm over an
// election-style stream (the Figures 11/12 scenario).
//
// It generates a synthetic Proposition-37-like corpus with a volume burst
// at "election day", processes it one day at a time through a Topic, and
// reports per-day volume, runtime and tweet-level accuracy, plus how the
// estimate of an opinion-flipping user (the paper's "Adam") evolves.
// Mid-stream the topic is snapshotted and restored into a second topic,
// demonstrating that a durable snapshot continues the stream with
// identical results (e.g. across a process restart).
//
//	go run ./examples/election
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"time"

	"triclust"
	"triclust/internal/eval"
	"triclust/internal/synth"
)

func main() {
	cfg := synth.DefaultConfig()
	cfg.Seed = 99
	cfg.NumUsers = 150
	cfg.Days = 24
	cfg.ElectionDay = 18
	cfg.BurstMultiplier = 5
	cfg.EvolveFrac = 0.08
	d, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pick an evolving user to follow.
	flipUser, flipDay := -1, -1
	for u, day := range d.EvolvingUsers() {
		if day > 4 && day < cfg.Days-4 {
			flipUser, flipDay = u, day
			break
		}
	}

	topic, err := triclust.NewTopic(d.Corpus.Users)
	if err != nil {
		log.Fatal(err)
	}

	// Snapshot the topic just before the election burst; a restored copy
	// replays the remaining days alongside the original.
	snapDay := cfg.ElectionDay - 1
	var snapshot bytes.Buffer
	var replayDays []int
	replayBatches := map[int][]triclust.Tweet{}
	replayResults := map[int]*triclust.StreamResult{}

	fmt.Println("day  n(t)  users  time      tweet-acc  tracked-user")
	var total time.Duration
	for day := 0; day < cfg.Days; day++ {
		var batch []triclust.Tweet
		var truth []int
		for i, tw := range d.Corpus.Tweets {
			if tw.Time != day {
				continue
			}
			tw.RetweetOf = -1
			batch = append(batch, tw)
			truth = append(truth, d.TweetClass[i])
		}
		if day == snapDay {
			// Durable checkpoint right before the burst: the snapshot
			// captures vocabulary, prior, solver history and RNG position.
			if err := topic.Snapshot(&snapshot); err != nil {
				log.Fatal(err)
			}
		}
		start := time.Now()
		out, err := topic.Process(day, batch)
		if err != nil {
			log.Fatal(err)
		}
		if day >= snapDay {
			replayDays = append(replayDays, day)
			replayBatches[day] = batch
			replayResults[day] = out
		}
		if out.Skipped {
			// Quiet day: the stream records a well-defined no-op.
			fmt.Printf("%3d     –  (no tweets, skipped)\n", day)
			continue
		}
		el := time.Since(start)
		total += el

		pred := make([]int, len(batch))
		for i := range batch {
			pred[i] = out.TweetSentiments[i].Class
		}
		acc := eval.Accuracy(pred, truth)

		tracked := "–"
		if flipUser >= 0 {
			if est, ok := topic.UserEstimate(flipUser); ok {
				tracked = fmt.Sprintf("%s (%.2f)", triclust.ClassName(est.Class), est.Confidence)
			}
		}
		marker := " "
		switch day {
		case cfg.ElectionDay:
			marker = "← election burst"
		case flipDay:
			marker = "← tracked user flips stance"
		}
		fmt.Printf("%3d  %4d  %5d  %-8s  %8.1f%%  %-18s %s\n",
			day, len(batch), len(out.ActiveUsers), el.Round(time.Millisecond),
			acc*100, tracked, marker)
	}
	fmt.Printf("\ntotal stream time: %v\n", total.Round(time.Millisecond))
	if flipUser >= 0 {
		fmt.Printf("tracked user %d planted stance: %s before day %d, %s after\n",
			flipUser,
			triclust.ClassName(d.StanceAt(flipUser, flipDay-1)), flipDay,
			triclust.ClassName(d.StanceAt(flipUser, flipDay)))
	}

	// Restore the pre-burst checkpoint into a fresh topic (as a restarted
	// process would) and replay the remaining days: the continuation is
	// identical to the uninterrupted run.
	restored, err := triclust.Restore(&snapshot)
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for _, day := range replayDays {
		out, err := restored.Process(day, replayBatches[day])
		if err != nil {
			log.Fatal(err)
		}
		want := replayResults[day]
		for i, s := range out.TweetSentiments {
			if d := math.Abs(s.Confidence - want.TweetSentiments[i].Confidence); d > maxDiff {
				maxDiff = d
			}
			if s.Class != want.TweetSentiments[i].Class {
				log.Fatalf("day %d tweet %d: restored replay diverged", day, i)
			}
		}
	}
	fmt.Printf("snapshot at day %d restored and replayed %d days: max confidence drift %.1e\n",
		snapDay, len(replayDays), maxDiff)
}
