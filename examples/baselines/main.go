// Baselines: side-by-side comparison of tri-clustering against the
// paper's comparison methods on one synthetic topic (the Tables 4/5
// scenario at example scale).
//
//	go run ./examples/baselines
package main

import (
	"fmt"
	"log"
	"os"

	"triclust/internal/experiments"
)

func main() {
	s, err := experiments.NewSetup(experiments.Prop30, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic %s corpus: %d tweets, %d users, %d features\n\n",
		s.Prop, s.Dataset.Corpus.NumTweets(), s.Dataset.Corpus.NumUsers(), s.Graph.Vocab.Len())

	t4, err := experiments.Table4TweetLevel(s, false)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderComparison(os.Stdout, "Tweet-level comparison (Table 4 scenario)",
		[]*experiments.ComparisonResult{t4})
	fmt.Println()

	t5, err := experiments.Table5UserLevel(s, false)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderComparison(os.Stdout, "User-level comparison (Table 5 scenario)",
		[]*experiments.ComparisonResult{t5})

	tri, _ := t4.Score("Tri-clustering")
	essa, _ := t4.Score("ESSA")
	fmt.Printf("\nunsupervised gap (tweet level): tri-clustering %.2f%% vs ESSA %.2f%% — the user/tweet coupling is worth %+.1f points\n",
		tri.Accuracy*100, essa.Accuracy*100, (tri.Accuracy-essa.Accuracy)*100)
}
