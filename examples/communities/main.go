// Communities: the paper's conclusion (§7) proposes applying the same
// co-clustering framework "to many different domains such as community
// detection … without the restriction to only sentiment analysis". This
// example does exactly that: it detects communities in an attributed
// social graph (users with interest profiles plus an interaction graph)
// by running the user-side of the tri-clustering objective —
// ‖Xu − SuHuSfᵀ‖² + β·tr(SuᵀLuSu) — with no lexicon and no tweet layer.
//
//	go run ./examples/communities
package main

import (
	"fmt"
	"log"
	"math/rand"

	"triclust/internal/baseline"
	"triclust/internal/eval"
	"triclust/internal/sparse"
)

func main() {
	const (
		users       = 240
		communities = 3
		interests   = 60
		seed        = 7
	)
	rng := rand.New(rand.NewSource(seed))

	// Planted partition: each community prefers its own interest block
	// and interacts mostly within itself.
	truth := make([]int, users)
	for u := range truth {
		truth[u] = u % communities
	}
	xu := sparse.NewCOO(users, interests)
	block := interests / communities
	for u := 0; u < users; u++ {
		c := truth[u]
		for k := 0; k < 6; k++ {
			var j int
			if rng.Float64() < 0.55 { // weakly in-community interest
				j = c*block + rng.Intn(block)
			} else { // background noise
				j = rng.Intn(interests)
			}
			xu.Add(u, j, 1)
		}
	}
	gu := sparse.NewCOO(users, users)
	for u := 0; u < users; u++ {
		for e := 0; e < 10; e++ {
			var v int
			if rng.Float64() < 0.9 { // homophile edge
				v = rng.Intn(users/communities)*communities + truth[u]
			} else {
				v = rng.Intn(users)
			}
			if v != u {
				gu.Add(u, v, 1)
				gu.Add(v, u, 1)
			}
		}
	}

	run := func(name string, beta float64) {
		opts := baseline.DefaultBACGOptions()
		opts.Beta = beta
		opts.Seed = 3
		pred, res, err := baseline.BACG(xu.ToCSR(), gu.ToCSR(), communities, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s accuracy %.2f%%  NMI %.2f%%  ARI %.3f  (%d iterations)\n",
			name,
			eval.Accuracy(pred, truth)*100,
			eval.NMI(pred, truth)*100,
			eval.AdjustedRandIndex(pred, truth),
			res.Iterations)
	}

	fmt.Printf("attributed-graph community detection: %d users, %d planted communities\n\n", users, communities)
	run("content only (β=0)", 0)
	run("content + structure (β=4)", 4)

	km := baseline.KMeans(xu.ToCSR(), communities, baseline.DefaultKMeansOptions())
	fmt.Printf("%-26s accuracy %.2f%%  NMI %.2f%%  ARI %.3f\n",
		"k-means (content only)",
		eval.Accuracy(km, truth)*100,
		eval.NMI(km, truth)*100,
		eval.AdjustedRandIndex(km, truth))
}
