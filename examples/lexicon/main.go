// Lexicon: bootstrap a topic-specific sentiment lexicon from a small
// labeled slice of the stream and use it to seed the unsupervised
// tri-clustering of the rest — the workflow behind the paper's
// automatically built "Yes"/"No" word lists [Smith et al. 2013].
//
//	go run ./examples/lexicon
package main

import (
	"fmt"
	"log"
	"sort"

	"triclust"
	"triclust/internal/eval"
	"triclust/internal/synth"
)

func main() {
	cfg := synth.DefaultConfig()
	cfg.Seed = 202
	cfg.NumUsers = 140
	cfg.Days = 16
	cfg.ElectionDay = 12
	d, err := synth.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Pretend only the first three days were hand-labeled.
	labeledUntil := 3
	var docs [][]string
	var labels []int
	for i, tw := range d.Corpus.Tweets {
		if tw.Time < labeledUntil {
			docs = append(docs, tw.Tokens)
			labels = append(labels, d.TweetClass[i])
		}
	}
	fmt.Printf("inducing lexicon from %d labeled tweets (days 0-%d)\n", len(docs), labeledUntil-1)
	induced := triclust.InduceLexicon(docs, labels, 3, 2.0)

	pos := induced.Words(triclust.Pos)
	neg := induced.Words(triclust.Neg)
	sort.Strings(pos)
	sort.Strings(neg)
	show := func(name string, words []string) {
		if len(words) > 10 {
			words = words[:10]
		}
		fmt.Printf("  %s list (%d words): %v…\n", name, len(words), words)
	}
	show("Yes", pos)
	show("No", neg)

	run := func(name string, lex *triclust.Lexicon) {
		topic, err := triclust.NewTopic(nil,
			triclust.WithLexicon(lex),
			// The paper's *offline* defaults (the bare Topic default is
			// the online configuration).
			triclust.WithSolverConfig(triclust.OnlineConfig{Config: triclust.DefaultConfig()}))
		if err != nil {
			log.Fatal(err)
		}
		res, err := topic.FitCorpus(d.Corpus)
		if err != nil {
			log.Fatal(err)
		}
		pred := make([]int, len(res.TweetSentiments))
		for i, s := range res.TweetSentiments {
			pred[i] = s.Class
		}
		m := eval.Evaluate(pred, d.TweetClass)
		fmt.Printf("%-28s tweet accuracy %.2f%%, NMI %.2f%%\n", name, m.Accuracy*100, m.NMI*100)
	}

	fmt.Println("\nunsupervised tri-clustering seeded with:")
	run("generic polarity lexicon", triclust.BuiltinLexicon())
	merged := triclust.BuiltinLexicon()
	merged.Merge(induced)
	run("generic + induced topic lexicon", merged)
}
