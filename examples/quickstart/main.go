// Quickstart: offline tri-clustering on a hand-written micro-corpus.
//
// It mirrors Figure 1 of the paper: Bob's sarcastic "Monsanto is pure
// evil" tweet would be misclassified alone, but clustering it jointly
// with his other tweets and his retweet relations recovers his positive
// stance toward GMO labeling.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"triclust"
)

func main() {
	corpus := &triclust.Corpus{
		Users: []triclust.User{
			{Name: "adam"}, {Name: "bob"}, {Name: "carol"}, {Name: "dave"},
		},
		Tweets: []triclust.Tweet{
			// Adam: against labeling.
			{Text: "Should India go back to poverty? #GMOs feed millions", User: 0, Time: 0, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "GM crops increased farm incomes worldwide, great science", User: 0, Time: 0, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "GM crops pose no greater risk than conventional food, safe and smart", User: 0, Time: 1, RetweetOf: -1, Label: triclust.NoLabel},
			// Bob: supports labeling; tweet 4 looks negative in isolation.
			{Text: "Monsanto is pure evil", User: 1, Time: 1, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "Ah ha! Love this Yes on #Prop37 ad :) #labelgmo", User: 1, Time: 1, RetweetOf: -1, Label: triclust.NoLabel},
			// Carol: supports labeling, retweets Bob's prop37 tweet.
			{Text: "Support the #California #GMO Labeling Ballot Initiative #prop37 right to know", User: 2, Time: 1, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "yes we love the right to know whats in our food #labelgmo", User: 2, Time: 2, RetweetOf: 4, Label: triclust.NoLabel},
			// Dave: against, retweets Adam.
			{Text: "no on 37, bad law, hurts farmers and raises costs", User: 3, Time: 2, RetweetOf: -1, Label: triclust.NoLabel},
			{Text: "agree, great science feeds the world", User: 3, Time: 2, RetweetOf: 1, Label: triclust.NoLabel},
		},
	}

	cfg := triclust.DefaultConfig()
	cfg.K = 2 // pos / neg only
	cfg.Seed = 7
	topic, err := triclust.NewTopic(nil,
		triclust.WithMinDF(1), // the corpus is tiny; keep every word
		triclust.WithSolverConfig(triclust.OnlineConfig{Config: cfg}))
	if err != nil {
		log.Fatal(err)
	}

	res, err := topic.FitCorpus(corpus)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d iterations\n\n", res.Converged, res.Iterations)
	fmt.Println("tweet-level sentiment:")
	for i, s := range res.TweetSentiments {
		txt := corpus.Tweets[i].Text
		if len(txt) > 56 {
			txt = txt[:53] + "..."
		}
		fmt.Printf("  %-8s (%.2f)  %s\n", triclust.ClassName(s.Class), s.Confidence, txt)
	}
	fmt.Println("\nuser-level sentiment:")
	for i, s := range res.UserSentiments {
		fmt.Printf("  %-6s → %-8s (%.2f)\n", corpus.Users[i].Name, triclust.ClassName(s.Class), s.Confidence)
	}

	// The fitted topic classifies unseen tweets by NMF fold-in, without
	// re-running the solver.
	probe := "great science, safe food"
	preds, err := topic.Predict([]string{probe})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfold-in prediction for %q: %s (%.2f)\n",
		probe, triclust.ClassName(preds[0].Class), preds[0].Confidence)
}
