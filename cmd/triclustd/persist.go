package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"triclust"
	"triclust/internal/codec"
)

// topicNameRe bounds topic names to a filesystem- and URL-safe alphabet,
// so a topic's snapshot file under -data-dir is always <name>.snap with
// no escaping (and no path traversal).
var topicNameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

func validTopicName(name string) error {
	if !topicNameRe.MatchString(name) {
		return fmt.Errorf("topic name %q must match %s", name, topicNameRe)
	}
	return nil
}

// store persists topic snapshots under a data directory, one
// <topic>.snap file per topic, written atomically (temp file + rename).
// A nil *store disables persistence; its methods are no-ops.
type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create data dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) path(name string) string {
	return filepath.Join(st.dir, name+".snap")
}

// save writes one topic's snapshot atomically: a crash mid-write leaves
// the previous snapshot intact, never a torn file (and Restore would
// reject a torn file by checksum anyway).
func (st *store) save(name string, tp *triclust.Topic) error {
	if st == nil {
		return nil
	}
	tmp, err := os.CreateTemp(st.dir, name+".snap.tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := tp.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(name)); err != nil {
		return err
	}
	// The rename itself must be durable too: fsync the directory so the
	// new entry survives a power failure, not just a process crash.
	d, err := os.Open(st.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// quarantineName returns the first unoccupied quarantine filename for
// base (base.unsupported-version, then .1, .2, …), or "" if none of the
// bounded candidates is free.
func quarantineName(dir, base string) string {
	for i := 0; i < 1000; i++ {
		cand := base + ".unsupported-version"
		if i > 0 {
			cand = fmt.Sprintf("%s.%d", cand, i)
		}
		if _, err := os.Stat(filepath.Join(dir, cand)); os.IsNotExist(err) {
			return cand
		}
	}
	return ""
}

// remove deletes a topic's snapshot (if any).
func (st *store) remove(name string) {
	if st != nil {
		_ = os.Remove(st.path(name))
	}
}

// loadAll restores every *.snap file in the data directory. Undecodable
// snapshots (and stray files) are reported but skipped: one corrupt file
// must not keep the daemon from serving the healthy topics.
func (st *store) loadAll(warn func(format string, args ...any)) (map[string]*triclust.Topic, error) {
	if st == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*triclust.Topic)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".snap")
		if err := validTopicName(name); err != nil {
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		f, err := os.Open(filepath.Join(st.dir, e.Name()))
		if err != nil {
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		tp, err := triclust.Restore(f)
		f.Close()
		if err != nil {
			if errors.Is(err, codec.ErrVersion) {
				// An old-format snapshot is not corrupt — it is intact
				// data this build cannot replay (e.g. a version-1 file
				// whose random-stream position belongs to the old
				// generator). Quarantine it under a suffix the loader
				// ignores, so re-creating the topic cannot atomically
				// overwrite the only copy of the old state. The
				// quarantine name itself must not clobber an earlier
				// quarantined copy (possible after an upgrade → rollback
				// → upgrade cycle), so pick the first free slot.
				q := quarantineName(st.dir, e.Name())
				if q == "" {
					warn("skipping %s: %v (no free quarantine name)", e.Name(), err)
					continue
				}
				if rerr := os.Rename(filepath.Join(st.dir, e.Name()), filepath.Join(st.dir, q)); rerr != nil {
					warn("skipping %s: %v (quarantine failed: %v)", e.Name(), err, rerr)
				} else {
					warn("quarantined %s as %s: %v", e.Name(), q, err)
				}
				continue
			}
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		out[name] = tp
	}
	return out, nil
}
