package main

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync/atomic"

	"triclust"
	"triclust/internal/codec"
	"triclust/internal/fault"
	"triclust/internal/journal"
)

// topicNameRe bounds topic names to a filesystem- and URL-safe alphabet,
// so a topic's snapshot file under -data-dir is always <name>.snap with
// no escaping (and no path traversal).
var topicNameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

func validTopicName(name string) error {
	if !topicNameRe.MatchString(name) {
		return fmt.Errorf("topic name %q must match %s", name, topicNameRe)
	}
	return nil
}

// journalOptions configure amortized durability: with Every > 1 the
// daemon appends one O(batch) journal record per batch and rewrites the
// O(state) snapshot only every Every batches — or sooner when the journal
// outgrows MaxBytes. Every <= 1 restores snapshot-on-every-batch.
type journalOptions struct {
	Every    int
	MaxBytes int64
}

// store persists topic state under a data directory: one <topic>.snap
// full snapshot per topic, written atomically (temp file + rename), plus
// an append-only <topic>.journal holding the batches processed since that
// snapshot (see internal/journal). A nil *store disables persistence.
type store struct {
	dir  string
	opts journalOptions
	// fs is the failpoint layer every durable syscall of this store (and
	// of the journals, tombstones, and replica files under its dir) goes
	// through — fault.OS in production, a fault.Script in the crash-point
	// matrix and the degraded-mode tests.
	fs fault.FS
	// quarantined counts the files the loader refused to serve —
	// quarantined snapshots/journals plus unreadable or unrecognized
	// strays. Mostly written by the startup scan, but a cluster move
	// retry can quarantine a journal at request time (resumeMove →
	// recoverJournal) while GET /v1/healthz reads the counter, hence
	// atomic. Exposing it means a restarted shard's operator (or the
	// cluster harness awaiting readiness) sees quarantine instead of
	// having to list the directory.
	quarantined atomic.Int64
}

func newStore(dir string, opts journalOptions, fsys fault.FS) (*store, error) {
	if dir == "" {
		return nil, nil
	}
	if fsys == nil {
		fsys = fault.OS
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create data dir: %w", err)
	}
	return &store{dir: dir, opts: opts, fs: fsys}, nil
}

// journaling reports whether the amortized journal mode is on.
func (st *store) journaling() bool {
	return st != nil && st.opts.Every > 1
}

func (st *store) path(name string) string {
	return filepath.Join(st.dir, name+".snap")
}

func (st *store) journalPath(name string) string {
	return filepath.Join(st.dir, name+".journal")
}

// Replica files: a cold replica held for a peer is <topic>.rsnap (base
// snapshot bytes), <topic>.rjournal (CRC-framed tail extending it) and
// <topic>.rmeta (JSON replMeta). None of the suffixes collide with .snap
// or .journal, so loadAll never mistakes a replica for a served topic.
func (st *store) replSnapPath(name string) string {
	return filepath.Join(st.dir, name+".rsnap")
}

func (st *store) replJournalPath(name string) string {
	return filepath.Join(st.dir, name+".rjournal")
}

func (st *store) replMetaPath(name string) string {
	return filepath.Join(st.dir, name+".rmeta")
}

// save writes one topic's snapshot atomically: a crash mid-write leaves
// the previous snapshot intact, never a torn file (and Restore would
// reject a torn file by checksum anyway). It returns the CRC-32C of the
// written file — the identity a journal extending this snapshot records.
func (st *store) save(name string, tp *triclust.Topic) (uint32, error) {
	if st == nil {
		return 0, nil
	}
	tmp, err := st.fs.CreateTemp("persist.snap.tmp", st.dir, name+".snap.tmp*")
	if err != nil {
		return 0, err
	}
	defer st.fs.Remove("persist.snap.cleanup", tmp.Name())
	cw := journal.NewCRCWriter(fault.SiteWriter(tmp, "persist.snap.write"))
	if err := tp.Snapshot(cw); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Sync("persist.snap.sync"); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := st.fs.Rename("persist.snap.rename", tmp.Name(), st.path(name)); err != nil {
		return 0, err
	}
	// The rename itself must be durable too: fsync the directory so the
	// new entry survives a power failure, not just a process crash.
	if err := st.syncDir(); err != nil {
		return 0, err
	}
	return cw.Sum(), nil
}

// syncDir fsyncs the data directory, making renames and newly created
// journal files durable.
func (st *store) syncDir() error {
	return st.fs.SyncDir("persist.dir.sync", st.dir)
}

// quarantineName returns the first unoccupied quarantine filename for
// base (base.<suffix>, then .1, .2, …), or "" if none of the bounded
// candidates is free.
func quarantineName(dir, base, suffix string) string {
	for i := 0; i < 1000; i++ {
		cand := base + "." + suffix
		if i > 0 {
			cand = fmt.Sprintf("%s.%d", cand, i)
		}
		if _, err := os.Stat(filepath.Join(dir, cand)); os.IsNotExist(err) {
			return cand
		}
	}
	return ""
}

// quarantine renames a file aside under the first free base.<suffix>
// name, reporting what happened through warn and counting the file as
// quarantined either way (renamed or merely skipped, it is not served).
func (st *store) quarantine(name, suffix string, warn func(format string, args ...any), cause error) {
	st.quarantined.Add(1)
	q := quarantineName(st.dir, name, suffix)
	if q == "" {
		warn("skipping %s: %v (no free quarantine name)", name, cause)
		return
	}
	if err := st.fs.Rename("persist.quarantine.rename", filepath.Join(st.dir, name), filepath.Join(st.dir, q)); err != nil {
		warn("skipping %s: %v (quarantine failed: %v)", name, cause, err)
		return
	}
	warn("quarantined %s as %s: %v", name, q, cause)
}

// remove deletes a topic's snapshot and journal (if any).
func (st *store) remove(name string) {
	if st != nil {
		_ = st.fs.Remove("persist.remove.snap", st.path(name))
		_ = st.fs.Remove("persist.remove.journal", st.journalPath(name))
	}
}

// snapExists reports whether a topic's snapshot file is on disk (used to
// detect interrupted hand-offs: tombstone + snapshot = pending move).
func (st *store) snapExists(name string) bool {
	if st == nil {
		return false
	}
	_, err := os.Stat(st.path(name))
	return err == nil
}

// readSnap returns a topic's on-disk snapshot bytes.
func (st *store) readSnap(name string) ([]byte, error) {
	return st.fs.ReadFile("persist.snap.read", st.path(name))
}

// restoredTopic is one topic recovered at startup: the live topic plus
// how many journal records were replayed on top of its snapshot (> 0
// means the in-memory state is ahead of the on-disk snapshot and should
// be compacted).
type restoredTopic struct {
	tp       *triclust.Topic
	replayed int
}

// loadAll restores every *.snap file in the data directory, replaying
// each topic's journal tail on top of its snapshot. Undecodable
// snapshots (and stray files) are reported but skipped: one corrupt file
// must not keep the daemon from serving the healthy topics. Undecodable
// or mismatched journals are quarantined/ignored — the snapshot alone is
// served, which is exactly the state the journal's acked batches
// extended, minus records that can no longer be trusted.
func (st *store) loadAll(warn func(format string, args ...any)) (map[string]*restoredTopic, error) {
	if st == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*restoredTopic)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".snap")
		if err := validTopicName(name); err != nil {
			st.quarantined.Add(1)
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		data, err := st.fs.ReadFile("persist.snap.read", filepath.Join(st.dir, e.Name()))
		if err != nil {
			st.quarantined.Add(1)
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		tp, err := triclust.Restore(bytes.NewReader(data))
		if err != nil {
			if errors.Is(err, codec.ErrVersion) {
				// An old-format snapshot is not corrupt — it is intact
				// data this build cannot replay (e.g. a version-1 file
				// whose random-stream position belongs to the old
				// generator). Quarantine it under a suffix the loader
				// ignores, so re-creating the topic cannot atomically
				// overwrite the only copy of the old state. The
				// quarantine name itself must not clobber an earlier
				// quarantined copy (possible after an upgrade → rollback
				// → upgrade cycle), so pick the first free slot.
				st.quarantine(e.Name(), "unsupported-version", warn, err)
				continue
			}
			st.quarantined.Add(1)
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		rt := &restoredTopic{tp: tp}
		rt.replayed = st.recoverJournal(name, rt, data, warn)
		out[name] = rt
	}
	return out, nil
}

// reloadTopic rebuilds one topic from its on-disk state (snapshot +
// journal tail), exactly as a restart would: the recovery path for a
// failed journal append, where the in-memory topic has advanced past
// what disk can vouch for and must be rolled back to the durable
// position.
func (st *store) reloadTopic(name string, warn func(format string, args ...any)) (*triclust.Topic, error) {
	data, err := st.readSnap(name)
	if err != nil {
		return nil, err
	}
	tp, err := triclust.Restore(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	rt := &restoredTopic{tp: tp}
	st.recoverJournal(name, rt, data, warn)
	return rt.tp, nil
}

// recoverJournal replays <name>.journal on top of the freshly restored
// topic, returning how many records were applied. Any problem — header
// undecodable, journal naming a different snapshot, replay divergence —
// resolves to "serve the snapshot alone": the journal is quarantined (or
// ignored when merely stale) and the topic re-restored from the snapshot
// bytes if replay had already touched it.
func (st *store) recoverJournal(name string, rt *restoredTopic, snapData []byte, warn func(format string, args ...any)) int {
	jp := st.journalPath(name)
	j, err := journal.Load(st.fs, jp)
	if err != nil {
		if os.IsNotExist(err) {
			return 0
		}
		st.quarantine(name+".journal", "corrupt", warn, err)
		return 0
	}
	if len(j.Records) == 0 {
		return 0
	}
	if j.SnapCRC != codec.Checksum(snapData) {
		// The journal extends a different (older or newer) snapshot —
		// e.g. a crash fell between snapshot rename and journal rotation.
		// Its records are already part of the snapshot or unverifiable;
		// either way the snapshot is the trustworthy state.
		warn("ignoring %s.journal: it extends a different snapshot than %s.snap", name, name)
		return 0
	}
	if j.Torn {
		warn("%s.journal has a torn final record (crash mid-append); replaying the %d intact records", name, len(j.Records))
	}
	for i, rec := range j.Records {
		out, err := rt.tp.Process(rec.Time, rec.Tweets)
		if err == nil && out.Skipped {
			err = errors.New("recorded batch replayed as an empty-batch skip")
		}
		if err == nil {
			if b, d := rt.tp.StreamPos(); b != rec.Batches || d != rec.RandDraws {
				err = fmt.Errorf("fingerprint mismatch: replayed (batches=%d, draws=%d), recorded (batches=%d, draws=%d)",
					b, d, rec.Batches, rec.RandDraws)
			}
		}
		if err != nil {
			st.quarantine(name+".journal", "corrupt", warn,
				fmt.Errorf("replay of record %d/%d failed: %w", i+1, len(j.Records), err))
			// Replay already advanced the topic; rebuild it from the
			// snapshot alone.
			fresh, rerr := triclust.Restore(bytes.NewReader(snapData))
			if rerr != nil {
				warn("re-restore %s.snap after failed replay: %v", name, rerr)
				return 0
			}
			rt.tp = fresh
			return 0
		}
	}
	return len(j.Records)
}
