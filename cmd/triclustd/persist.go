package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"triclust"
)

// topicNameRe bounds topic names to a filesystem- and URL-safe alphabet,
// so a topic's snapshot file under -data-dir is always <name>.snap with
// no escaping (and no path traversal).
var topicNameRe = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

func validTopicName(name string) error {
	if !topicNameRe.MatchString(name) {
		return fmt.Errorf("topic name %q must match %s", name, topicNameRe)
	}
	return nil
}

// store persists topic snapshots under a data directory, one
// <topic>.snap file per topic, written atomically (temp file + rename).
// A nil *store disables persistence; its methods are no-ops.
type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("create data dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) path(name string) string {
	return filepath.Join(st.dir, name+".snap")
}

// save writes one topic's snapshot atomically: a crash mid-write leaves
// the previous snapshot intact, never a torn file (and Restore would
// reject a torn file by checksum anyway).
func (st *store) save(name string, tp *triclust.Topic) error {
	if st == nil {
		return nil
	}
	tmp, err := os.CreateTemp(st.dir, name+".snap.tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := tp.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), st.path(name)); err != nil {
		return err
	}
	// The rename itself must be durable too: fsync the directory so the
	// new entry survives a power failure, not just a process crash.
	d, err := os.Open(st.dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// remove deletes a topic's snapshot (if any).
func (st *store) remove(name string) {
	if st != nil {
		_ = os.Remove(st.path(name))
	}
}

// loadAll restores every *.snap file in the data directory. Undecodable
// snapshots (and stray files) are reported but skipped: one corrupt file
// must not keep the daemon from serving the healthy topics.
func (st *store) loadAll(warn func(format string, args ...any)) (map[string]*triclust.Topic, error) {
	if st == nil {
		return nil, nil
	}
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*triclust.Topic)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".snap")
		if err := validTopicName(name); err != nil {
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		f, err := os.Open(filepath.Join(st.dir, e.Name()))
		if err != nil {
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		tp, err := triclust.Restore(f)
		f.Close()
		if err != nil {
			warn("skipping %s: %v", e.Name(), err)
			continue
		}
		out[name] = tp
	}
	return out, nil
}
