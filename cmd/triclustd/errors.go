package main

import (
	"encoding/json"
	"errors"
	"net/http"

	"triclust/internal/codec"
)

// Stable error codes of the v1 API. Clients should branch on these, not
// on message text or HTTP status alone; codes are append-only across
// releases.
const (
	codeInvalidRequest  = "invalid_request"   // malformed JSON / missing fields
	codeInvalidName     = "invalid_topic_name"
	codeInvalidConfig   = "invalid_config"    // rejected by triclust validation
	codeTopicExists     = "topic_exists"
	codeTopicNotFound   = "topic_not_found"
	codeUserNotFound    = "user_not_found"
	codeInvalidBatch    = "invalid_batch"     // batch rejected by the engine
	codeStaleTimestamp  = "stale_timestamp"   // batch time not after the last one
	codeVocabFrozen     = "vocabulary_frozen" // warm-up after the freeze
	codeInvalidSnapshot = "invalid_snapshot"  // corrupt / truncated snapshot body
	codeSnapshotVersion = "unsupported_snapshot_version"
	codeStorage         = "storage_error" // -data-dir persistence failed
)

// errorBody is the wire shape of every error response:
//
//	{"error": {"code": "topic_not_found", "message": "..."}}
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
}

// snapshotErrorCode maps codec decode failures onto stable error codes.
func snapshotErrorCode(err error) string {
	switch {
	case errors.Is(err, codec.ErrVersion):
		return codeSnapshotVersion
	default:
		return codeInvalidSnapshot
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
