package main

import (
	"encoding/json"
	"errors"
	"net/http"

	"triclust/internal/codec"
)

// Stable error codes of the v1 API. Clients should branch on these, not
// on message text or HTTP status alone; codes are append-only across
// releases.
const (
	codeInvalidRequest = "invalid_request" // malformed JSON / missing fields
	codeInvalidName    = "invalid_topic_name"
	codeInvalidConfig  = "invalid_config" // rejected by triclust validation
	codeTopicExists    = "topic_exists"
	codeTopicNotFound  = "topic_not_found"
	codeUserNotFound   = "user_not_found"
	codeInvalidBatch   = "invalid_batch"   // batch rejected by the engine
	codeStaleTimestamp = "stale_timestamp" // batch time not after the last one
	// codeBatchNonconforming means enforce mode quarantined the batch
	// against the topic's learned stream profile, before the journal
	// append — the refused batch is not in durable history, so a
	// corrected retry is safe. The error body carries the structured
	// verdict (violated invariants, per-invariant z-scores).
	codeBatchNonconforming = "batch_nonconforming"
	codeVocabFrozen        = "vocabulary_frozen" // warm-up after the freeze
	codeInvalidSnapshot    = "invalid_snapshot"  // corrupt / truncated snapshot body
	codeSnapshotVersion    = "unsupported_snapshot_version"
	codeStorage            = "storage_error"  // -data-dir persistence failed
	codeBodyTooLarge       = "body_too_large" // request body exceeds -max-body-bytes
	// codeUnsupportedMediaType means the request's Content-Type names a
	// format the endpoint does not decode (415). Body-carrying endpoints
	// accept their default format when the header is absent; the batch
	// endpoint additionally accepts application/x-triclust-batch. Fix the
	// header (or the body format), don't retry as-is.
	codeUnsupportedMediaType = "unsupported_media_type"
	// codeJournalWriteFailed means the batch was processed in memory but
	// its journal record could not be appended + fsynced (disk full, I/O
	// error). The batch is rolled back, the on-disk tail truncated to the
	// last intact record, and the topic marked degraded in healthz until a
	// later append or snapshot succeeds. Retryable once disk recovers.
	codeJournalWriteFailed = "journal_write_failed"
	// codeStorageDegraded means the topic's storage gave up: either
	// repeated durable-write failures flipped it read-only (reads still
	// answer from the last durable state, marked by an
	// X-Triclust-Degraded header), or — parked — the rollback re-read
	// after a failed write also failed, so the daemon holds no state disk
	// vouches for and refuses reads too. Retry after the Retry-After
	// hint; a background write probe recovers the topic automatically.
	codeStorageDegraded = "storage_degraded"
	// codeStorageReadonly means enough topics degraded that the whole
	// shard refuses writes (a disk failing across topics is about to fail
	// the next one too). Reads still work. Retryable like
	// storage_degraded.
	codeStorageReadonly = "storage_readonly"

	// Cluster-mode codes.
	codeNotClustered     = "not_clustered"     // cluster endpoint without -peers/-self
	codeUnknownPeer      = "unknown_peer"      // move target not in the ring
	codeMoveFailed       = "move_failed"       // hand-off installation failed (see message for fence state)
	codeEpochMismatch    = "epoch_mismatch"    // snapshot's ownership epoch fenced by a tombstone
	codeShardUnreachable = "shard_unreachable" // proxying to the owning shard failed / routing loop

	// Replication codes.
	codeReplicationOff   = "replication_off"     // replica endpoint without -replication-factor >= 2
	codeReplicaOutOfSync = "replica_out_of_sync" // shipped tail does not extend the held replica; re-ship a full base
)

// errorBody is the wire shape of every error response:
//
//	{"error": {"code": "topic_not_found", "message": "..."}}
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Conformance carries the structured verdict of a
	// batch_nonconforming rejection; absent on every other error.
	Conformance *verdictJSON `json:"conformance,omitempty"`
}

func writeError(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: err.Error()}})
}

// snapshotErrorCode maps codec decode failures onto stable error codes.
func snapshotErrorCode(err error) string {
	switch {
	case errors.Is(err, codec.ErrVersion):
		return codeSnapshotVersion
	default:
		return codeInvalidSnapshot
	}
}

// requestErrorStatus maps a request-body read/decode failure onto a
// status and stable code: a body that tripped the -max-body-bytes bound
// is 413 body_too_large (the client should split the batch, not re-send),
// anything else is a plain 400.
func requestErrorStatus(err error) (int, string) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge, codeBodyTooLarge
	}
	return http.StatusBadRequest, codeInvalidRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
