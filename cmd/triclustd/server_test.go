package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"triclust/internal/synth"
)

// doJSON issues one JSON request and decodes the response. It returns
// errors instead of failing the test so worker goroutines can use it.
func doJSON(client *http.Client, method, url string, body, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s decode: %w", method, url, err)
		}
	}
	return resp.StatusCode, nil
}

func synthTopic(t *testing.T, seed int64) (*synth.Dataset, createTopicRequest) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.NumUsers = 30
	cfg.Days = 5
	cfg.ElectionDay = 3
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	names := make([]string, len(d.Corpus.Users))
	for i, u := range d.Corpus.Users {
		names[i] = u.Name
	}
	req := createTopicRequest{
		Name:    fmt.Sprintf("topic-%d", seed),
		Users:   names,
		Options: topicOptions{MaxIter: 10, Seed: seed},
	}
	return d, req
}

func dayTweets(d *synth.Dataset, day int) []tweetSpec {
	var out []tweetSpec
	for _, tw := range d.Corpus.Tweets {
		if tw.Time == day {
			out = append(out, tweetSpec{Tokens: tw.Tokens, User: tw.User})
		}
	}
	return out
}

// TestTwoTopicsConcurrently drives two independent topic sessions from
// separate goroutines end to end (create → daily batches → user query →
// snapshot export). Under go test -race this exercises the registry and
// the per-session locking.
func TestTwoTopicsConcurrently(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	client := srv.Client()

	type topicRun struct {
		d    *synth.Dataset
		name string
	}
	var runs []topicRun
	for seed := int64(1); seed <= 2; seed++ {
		d, req := synthTopic(t, seed)
		var sum topicSummary
		code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, &sum)
		if err != nil || code != http.StatusCreated {
			t.Fatalf("create %s: status %d err %v", req.Name, code, err)
		}
		if sum.Users != len(req.Users) || sum.Batches != 0 {
			t.Fatalf("create summary %+v", sum)
		}
		runs = append(runs, topicRun{d, req.Name})
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for _, run := range runs {
		wg.Add(1)
		go func(run topicRun) {
			defer wg.Done()
			processed := 0
			for day := 0; day < 5; day++ {
				batch := batchRequest{Time: day, Tweets: dayTweets(run.d, day)}
				var resp batchResponse
				code, err := doJSON(client, "POST",
					srv.URL+"/v1/topics/"+run.name+"/batches", batch, &resp)
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s day %d: status %d", run.name, day, code)
					return
				}
				if resp.Skipped != (len(batch.Tweets) == 0) {
					errs <- fmt.Errorf("%s day %d: skipped=%v for %d tweets",
						run.name, day, resp.Skipped, len(batch.Tweets))
					return
				}
				if len(resp.Tweets) != len(batch.Tweets) {
					errs <- fmt.Errorf("%s day %d: %d results for %d tweets",
						run.name, day, len(resp.Tweets), len(batch.Tweets))
					return
				}
				if !resp.Skipped {
					processed++
					for _, s := range resp.Tweets {
						if s.Confidence < 0 || s.Confidence > 1 || s.ClassName == "" {
							errs <- fmt.Errorf("%s day %d: bad sentiment %+v", run.name, day, s)
							return
						}
					}
				}
			}
			if processed < 2 {
				errs <- fmt.Errorf("%s: only %d batches processed", run.name, processed)
			}
		}(run)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-stream queries against both sessions.
	for _, run := range runs {
		var sum topicSummary
		code, err := doJSON(client, "GET", srv.URL+"/v1/topics/"+run.name, nil, &sum)
		if err != nil || code != http.StatusOK {
			t.Fatalf("info %s: status %d err %v", run.name, code, err)
		}
		if sum.Batches < 2 || sum.VocabSize == 0 || sum.KnownUsers == 0 {
			t.Fatalf("summary %s: %+v", run.name, sum)
		}
		user := run.d.Corpus.Tweets[0].User
		var est userSentimentJSON
		code, err = doJSON(client, "GET",
			fmt.Sprintf("%s/v1/topics/%s/users/%d", srv.URL, run.name, user), nil, &est)
		if err != nil || code != http.StatusOK {
			t.Fatalf("estimate %s user %d: status %d err %v", run.name, user, code, err)
		}
		if est.User != user || est.Confidence < 0 || est.Confidence > 1 {
			t.Fatalf("estimate %s: %+v", run.name, est)
		}
		var snap snapshotResponse
		code, err = doJSON(client, "GET", srv.URL+"/v1/topics/"+run.name+"/snapshot", nil, &snap)
		if err != nil || code != http.StatusOK {
			t.Fatalf("snapshot %s: status %d err %v", run.name, code, err)
		}
		if len(snap.Vocabulary) == 0 || len(snap.Features) != len(snap.Vocabulary) {
			t.Fatalf("snapshot %s: %d words, %d features",
				run.name, len(snap.Vocabulary), len(snap.Features))
		}
	}

	var all []topicSummary
	if code, err := doJSON(client, "GET", srv.URL+"/v1/topics", nil, &all); err != nil || code != http.StatusOK {
		t.Fatalf("list: status %d err %v", code, err)
	}
	if len(all) != 2 {
		t.Fatalf("list has %d topics", len(all))
	}
}

func TestTopicLifecycleAndErrors(t *testing.T) {
	srv := httptest.NewServer(newServer())
	defer srv.Close()
	client := srv.Client()

	// Unknown topic → 404.
	if code, _ := doJSON(client, "GET", srv.URL+"/v1/topics/nope", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown topic: status %d", code)
	}
	// Create without users → 400.
	if code, _ := doJSON(client, "POST", srv.URL+"/v1/topics",
		createTopicRequest{Name: "x"}, nil); code != http.StatusBadRequest {
		t.Fatalf("create without users: status %d", code)
	}
	// Create, duplicate → 409.
	req := createTopicRequest{Name: "x", Users: []string{"a", "b"}}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: status %d err %v", code, err)
	}
	if code, _ := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); code != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", code)
	}

	// Empty batch is a recorded no-op.
	var resp batchResponse
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 0}, &resp); err != nil || code != http.StatusOK || !resp.Skipped {
		t.Fatalf("empty batch: status %d skipped %v err %v", code, resp.Skipped, err)
	}
	// Invalid user index → 422.
	if code, _ := doJSON(client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 1, Tweets: []tweetSpec{{Text: "hi", User: 9}}}, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid batch: status %d", code)
	}
	// Valid batch; then a stale timestamp → 409.
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 1, Tweets: []tweetSpec{
			{Text: "love love great win", User: 0},
			{Text: "love great hate awful", User: 1},
		}}, &resp); err != nil || code != http.StatusOK || resp.Skipped {
		t.Fatalf("valid batch: status %d err %v", code, err)
	}
	if code, _ := doJSON(client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 1, Tweets: []tweetSpec{{Text: "again", User: 0}}}, nil); code != http.StatusConflict {
		t.Fatalf("stale timestamp: status %d", code)
	}
	// User with no history → 404; delete → 204; gone → 404.
	if code, _ := doJSON(client, "GET", srv.URL+"/v1/topics/x/users/1", nil, nil); code != http.StatusOK {
		t.Fatalf("active user estimate: status %d", code)
	}
	if code, _ := doJSON(client, "GET", srv.URL+"/v1/topics/x/users/99", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown user estimate: status %d", code)
	}
	req2, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/topics/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	del, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", del.StatusCode)
	}
	if code, _ := doJSON(client, "GET", srv.URL+"/v1/topics/x", nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted topic: status %d", code)
	}
}
