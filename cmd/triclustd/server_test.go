package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"triclust"
	"triclust/internal/synth"
)

// testServer runs a daemon in the legacy snapshot-every-batch mode; the
// journal-mode tests in journal_daemon_test.go use testServerOpts.
func testServer(t *testing.T, dataDir string) (*server, *httptest.Server) {
	return testServerOpts(t, dataDir, journalOptions{Every: 1})
}

func testServerOpts(t *testing.T, dataDir string, opts journalOptions) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(dataDir, serverOptions{journal: opts}, t.Logf)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

// doJSON issues one JSON request and decodes the response. It returns
// errors instead of failing the test so worker goroutines can use it.
func doJSON(client *http.Client, method, url string, body, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("%s %s decode: %w", method, url, err)
		}
	}
	return resp.StatusCode, nil
}

// errCode fetches the stable error code of a failed request.
func errCode(t *testing.T, client *http.Client, method, url string, body any) (int, string) {
	t.Helper()
	var eb errorBody
	code, err := doJSON(client, method, url, body, &eb)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	return code, eb.Error.Code
}

func synthTopic(t *testing.T, seed int64) (*synth.Dataset, createTopicRequest) {
	t.Helper()
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.NumUsers = 30
	cfg.Days = 5
	cfg.ElectionDay = 3
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	names := make([]string, len(d.Corpus.Users))
	for i, u := range d.Corpus.Users {
		names[i] = u.Name
	}
	req := createTopicRequest{
		Name:    fmt.Sprintf("topic-%d", seed),
		Users:   names,
		Options: topicOptions{MaxIter: 10, Seed: seed},
	}
	return d, req
}

func dayTweets(d *synth.Dataset, day int) []tweetSpec {
	var out []tweetSpec
	for _, tw := range d.Corpus.Tweets {
		if tw.Time == day {
			out = append(out, tweetSpec{Tokens: tw.Tokens, User: tw.User})
		}
	}
	return out
}

// TestTwoTopicsConcurrently drives two independent topic sessions from
// separate goroutines end to end (create → daily batches → user query →
// snapshot export). Under go test -race this exercises the registry and
// the per-session locking.
func TestTwoTopicsConcurrently(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()

	type topicRun struct {
		d    *synth.Dataset
		name string
	}
	var runs []topicRun
	for seed := int64(1); seed <= 2; seed++ {
		d, req := synthTopic(t, seed)
		var sum topicSummary
		code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, &sum)
		if err != nil || code != http.StatusCreated {
			t.Fatalf("create %s: status %d err %v", req.Name, code, err)
		}
		if sum.Users != len(req.Users) || sum.Batches != 0 {
			t.Fatalf("create summary %+v", sum)
		}
		runs = append(runs, topicRun{d, req.Name})
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for _, run := range runs {
		wg.Add(1)
		go func(run topicRun) {
			defer wg.Done()
			processed := 0
			for day := 0; day < 5; day++ {
				batch := batchRequest{Time: day, Tweets: dayTweets(run.d, day)}
				var resp batchResponse
				code, err := doJSON(client, "POST",
					srv.URL+"/v1/topics/"+run.name+"/batches", batch, &resp)
				if err != nil {
					errs <- err
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s day %d: status %d", run.name, day, code)
					return
				}
				if resp.Skipped != (len(batch.Tweets) == 0) {
					errs <- fmt.Errorf("%s day %d: skipped=%v for %d tweets",
						run.name, day, resp.Skipped, len(batch.Tweets))
					return
				}
				if len(resp.Tweets) != len(batch.Tweets) {
					errs <- fmt.Errorf("%s day %d: %d results for %d tweets",
						run.name, day, len(resp.Tweets), len(batch.Tweets))
					return
				}
				if !resp.Skipped {
					processed++
					for _, s := range resp.Tweets {
						if s.Confidence < 0 || s.Confidence > 1 || s.ClassName == "" {
							errs <- fmt.Errorf("%s day %d: bad sentiment %+v", run.name, day, s)
							return
						}
					}
				}
			}
			if processed < 2 {
				errs <- fmt.Errorf("%s: only %d batches processed", run.name, processed)
			}
		}(run)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Post-stream queries against both sessions.
	for _, run := range runs {
		var sum topicSummary
		code, err := doJSON(client, "GET", srv.URL+"/v1/topics/"+run.name, nil, &sum)
		if err != nil || code != http.StatusOK {
			t.Fatalf("info %s: status %d err %v", run.name, code, err)
		}
		if sum.Batches < 2 || sum.VocabSize == 0 || sum.KnownUsers == 0 || !sum.Frozen {
			t.Fatalf("summary %s: %+v", run.name, sum)
		}
		user := run.d.Corpus.Tweets[0].User
		var est userSentimentJSON
		code, err = doJSON(client, "GET",
			fmt.Sprintf("%s/v1/topics/%s/users/%d", srv.URL, run.name, user), nil, &est)
		if err != nil || code != http.StatusOK {
			t.Fatalf("estimate %s user %d: status %d err %v", run.name, user, code, err)
		}
		if est.User != user || est.Confidence < 0 || est.Confidence > 1 {
			t.Fatalf("estimate %s: %+v", run.name, est)
		}
		var feats featuresResponse
		code, err = doJSON(client, "GET", srv.URL+"/v1/topics/"+run.name+"/features", nil, &feats)
		if err != nil || code != http.StatusOK {
			t.Fatalf("features %s: status %d err %v", run.name, code, err)
		}
		if len(feats.Vocabulary) == 0 || len(feats.Features) != len(feats.Vocabulary) {
			t.Fatalf("features %s: %d words, %d features",
				run.name, len(feats.Vocabulary), len(feats.Features))
		}
	}

	var all []topicSummary
	if code, err := doJSON(client, "GET", srv.URL+"/v1/topics", nil, &all); err != nil || code != http.StatusOK {
		t.Fatalf("list: status %d err %v", code, err)
	}
	if len(all) != 2 {
		t.Fatalf("list has %d topics", len(all))
	}
}

func TestTopicLifecycleAndErrors(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()

	// Unknown topic → 404 with a stable code.
	if code, ec := errCode(t, client, "GET", srv.URL+"/v1/topics/nope", nil); code != http.StatusNotFound || ec != codeTopicNotFound {
		t.Fatalf("unknown topic: status %d code %q", code, ec)
	}
	// Create without users → 400.
	if code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics",
		createTopicRequest{Name: "x"}); code != http.StatusBadRequest || ec != codeInvalidRequest {
		t.Fatalf("create without users: status %d code %q", code, ec)
	}
	// Bad topic name → 400 invalid_topic_name.
	if code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics",
		createTopicRequest{Name: "../escape", Users: []string{"a"}}); code != http.StatusBadRequest || ec != codeInvalidName {
		t.Fatalf("bad name: status %d code %q", code, ec)
	}
	// Invalid configuration → 400 invalid_config.
	if code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics",
		createTopicRequest{Name: "bad-k", Users: []string{"a"}, Options: topicOptions{K: 9}}); code != http.StatusBadRequest || ec != codeInvalidConfig {
		t.Fatalf("invalid config: status %d code %q", code, ec)
	}
	// Create, duplicate → 409.
	req := createTopicRequest{Name: "x", Users: []string{"a", "b"}}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: status %d err %v", code, err)
	}
	if code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics", req); code != http.StatusConflict || ec != codeTopicExists {
		t.Fatalf("duplicate create: status %d code %q", code, ec)
	}

	// Empty batch is a recorded no-op.
	var resp batchResponse
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 0}, &resp); err != nil || code != http.StatusOK || !resp.Skipped {
		t.Fatalf("empty batch: status %d skipped %v err %v", code, resp.Skipped, err)
	}
	// Invalid user index → 422 invalid_batch.
	if code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 1, Tweets: []tweetSpec{{Text: "hi", User: 9}}}); code != http.StatusUnprocessableEntity || ec != codeInvalidBatch {
		t.Fatalf("invalid batch: status %d code %q", code, ec)
	}
	// Valid batch; then a stale timestamp → 409 stale_timestamp.
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 1, Tweets: []tweetSpec{
			{Text: "love love great win", User: 0},
			{Text: "love great hate awful", User: 1},
		}}, &resp); err != nil || code != http.StatusOK || resp.Skipped {
		t.Fatalf("valid batch: status %d err %v", code, err)
	}
	if code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics/x/batches",
		batchRequest{Time: 1, Tweets: []tweetSpec{{Text: "again", User: 0}}}); code != http.StatusConflict || ec != codeStaleTimestamp {
		t.Fatalf("stale timestamp: status %d code %q", code, ec)
	}
	// User with no history → 404; delete → 204; gone → 404.
	if code, _ := doJSON(client, "GET", srv.URL+"/v1/topics/x/users/1", nil, nil); code != http.StatusOK {
		t.Fatalf("active user estimate: status %d", code)
	}
	if code, ec := errCode(t, client, "GET", srv.URL+"/v1/topics/x/users/99", nil); code != http.StatusNotFound || ec != codeUserNotFound {
		t.Fatalf("unknown user estimate: status %d code %q", code, ec)
	}
	req2, err := http.NewRequest(http.MethodDelete, srv.URL+"/v1/topics/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	del, err := client.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	del.Body.Close()
	if del.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", del.StatusCode)
	}
	if code, _ := doJSON(client, "GET", srv.URL+"/v1/topics/x", nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted topic: status %d", code)
	}
}

// TestVocabWarmupOverHTTP: POST /vocab seeds and freezes the vocabulary
// before any batch, and warm-up after the freeze fails with a stable code.
func TestVocabWarmupOverHTTP(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	req := createTopicRequest{Name: "warm", Users: []string{"a"}, Options: topicOptions{MinDF: 2, MaxIter: 5}}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	var vr vocabResponse
	code, err := doJSON(client, "POST", srv.URL+"/v1/topics/warm/vocab", vocabRequest{
		Texts: []string{"label gmo ballot", "label gmo vote", "stray word"},
	}, &vr)
	if err != nil || code != http.StatusOK || vr.Frozen {
		t.Fatalf("warm-up: %d %+v %v", code, vr, err)
	}
	code, err = doJSON(client, "POST", srv.URL+"/v1/topics/warm/vocab", vocabRequest{Freeze: true}, &vr)
	if err != nil || code != http.StatusOK || !vr.Frozen || vr.VocabSize != 2 {
		t.Fatalf("freeze: %d %+v %v", code, vr, err)
	}
	if code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics/warm/vocab",
		vocabRequest{Texts: []string{"too late"}}); code != http.StatusConflict || ec != codeVocabFrozen {
		t.Fatalf("post-freeze warm-up: status %d code %q", code, ec)
	}
	// Batches run against the pre-frozen vocabulary.
	var resp batchResponse
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/warm/batches",
		batchRequest{Time: 0, Tweets: []tweetSpec{{Text: "label gmo today", User: 0}}}, &resp); err != nil || code != http.StatusOK || resp.Skipped {
		t.Fatalf("batch after freeze: %d %v", code, err)
	}
	var sum topicSummary
	if _, err := doJSON(client, "GET", srv.URL+"/v1/topics/warm", nil, &sum); err != nil || sum.VocabSize != 2 {
		t.Fatalf("summary after batch: %+v %v", sum, err)
	}
}

// fetchSnapshot downloads a topic's binary snapshot.
func fetchSnapshot(t *testing.T, client *http.Client, url string) []byte {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("snapshot content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSnapshotRestoreOverHTTP: GET …/snapshot → PUT /v1/topics/{new}
// round-trips a topic; the restored topic serves identical estimates and
// processes the next batch identically to the original.
func TestSnapshotRestoreOverHTTP(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	d, req := synthTopic(t, 5)
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	for day := 0; day < 3; day++ {
		if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/"+req.Name+"/batches",
			batchRequest{Time: day, Tweets: dayTweets(d, day)}, nil); err != nil || code != http.StatusOK {
			t.Fatalf("day %d: %d %v", day, code, err)
		}
	}
	snap := fetchSnapshot(t, client, srv.URL+"/v1/topics/"+req.Name+"/snapshot")

	// Corrupt snapshot body → 400 invalid_snapshot, nothing registered.
	bad := append([]byte(nil), snap...)
	bad[len(bad)/2] ^= 0xff
	putReq, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/topics/badcopy", bytes.NewReader(bad))
	resp, err := client.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != codeInvalidSnapshot {
		t.Fatalf("corrupt PUT: status %d code %q", resp.StatusCode, eb.Error.Code)
	}

	// Pristine snapshot restores under a new name.
	putReq, _ = http.NewRequest(http.MethodPut, srv.URL+"/v1/topics/copy", bytes.NewReader(snap))
	resp, err = client.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	var sum topicSummary
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || sum.Batches != 3 || sum.Name != "copy" {
		t.Fatalf("restore: status %d summary %+v", resp.StatusCode, sum)
	}

	// The next batch solves identically on the original and the copy.
	batch := batchRequest{Time: 3, Tweets: dayTweets(d, 3)}
	var orig, copied batchResponse
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/"+req.Name+"/batches", batch, &orig); err != nil || code != http.StatusOK {
		t.Fatalf("original day 3: %d %v", code, err)
	}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/copy/batches", batch, &copied); err != nil || code != http.StatusOK {
		t.Fatalf("copy day 3: %d %v", code, err)
	}
	if len(orig.Tweets) != len(copied.Tweets) || orig.Iterations != copied.Iterations {
		t.Fatalf("restored continuation diverged: %d/%d tweets, %d/%d iterations",
			len(orig.Tweets), len(copied.Tweets), orig.Iterations, copied.Iterations)
	}
	for i := range orig.Tweets {
		if orig.Tweets[i].Class != copied.Tweets[i].Class ||
			math.Abs(orig.Tweets[i].Confidence-copied.Tweets[i].Confidence) > 1e-12 {
			t.Fatalf("tweet %d diverged: %+v vs %+v", i, orig.Tweets[i], copied.Tweets[i])
		}
	}
}

// TestDataDirRestart is the durability acceptance test: a daemon with
// -data-dir restarted mid-stream serves the same user estimates it did
// before the restart, and the stream continues where it stopped.
func TestDataDirRestart(t *testing.T) {
	dir := t.TempDir()
	d, req := synthTopic(t, 7)

	s1, srv1 := testServer(t, dir)
	client := srv1.Client()
	if code, err := doJSON(client, "POST", srv1.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	for day := 0; day < 3; day++ {
		if code, err := doJSON(client, "POST", srv1.URL+"/v1/topics/"+req.Name+"/batches",
			batchRequest{Time: day, Tweets: dayTweets(d, day)}, nil); err != nil || code != http.StatusOK {
			t.Fatalf("day %d: %d %v", day, code, err)
		}
	}
	var beforeSum topicSummary
	if _, err := doJSON(client, "GET", srv1.URL+"/v1/topics/"+req.Name, nil, &beforeSum); err != nil {
		t.Fatal(err)
	}
	before := make(map[int]userSentimentJSON)
	for u := range req.Users {
		var est userSentimentJSON
		code, err := doJSON(client, "GET",
			fmt.Sprintf("%s/v1/topics/%s/users/%d", srv1.URL, req.Name, u), nil, &est)
		if err != nil {
			t.Fatal(err)
		}
		if code == http.StatusOK {
			before[u] = est
		}
	}
	if len(before) == 0 {
		t.Fatal("no user estimates before restart")
	}
	if err := s1.snapshotAll(); err != nil {
		t.Fatalf("final snapshot: %v", err)
	}
	srv1.Close()

	// "Restart": a fresh server over the same data dir.
	_, srv2 := testServer(t, dir)
	client2 := srv2.Client()
	var afterSum topicSummary
	if code, err := doJSON(client2, "GET", srv2.URL+"/v1/topics/"+req.Name, nil, &afterSum); err != nil || code != http.StatusOK {
		t.Fatalf("summary after restart: %d %v", code, err)
	}
	if afterSum.Batches != beforeSum.Batches || afterSum.VocabSize != beforeSum.VocabSize {
		t.Fatalf("summary changed across restart: %+v vs %+v", beforeSum, afterSum)
	}
	if beforeSum.LastTime == nil || afterSum.LastTime == nil || *afterSum.LastTime != *beforeSum.LastTime {
		t.Fatalf("last_time lost across restart: %+v vs %+v", beforeSum.LastTime, afterSum.LastTime)
	}
	for u, want := range before {
		var got userSentimentJSON
		code, err := doJSON(client2, "GET",
			fmt.Sprintf("%s/v1/topics/%s/users/%d", srv2.URL, req.Name, u), nil, &got)
		if err != nil || code != http.StatusOK {
			t.Fatalf("user %d after restart: %d %v", u, code, err)
		}
		if got.Class != want.Class || math.Abs(got.Confidence-want.Confidence) > 1e-12 {
			t.Fatalf("user %d estimate changed across restart: %+v vs %+v", u, want, got)
		}
	}
	// Feature sentiments are derived from the restored factors, so the
	// endpoint serves full data after the restart too.
	var feats featuresResponse
	if code, err := doJSON(client2, "GET", srv2.URL+"/v1/topics/"+req.Name+"/features", nil, &feats); err != nil || code != http.StatusOK {
		t.Fatalf("features after restart: %d %v", code, err)
	}
	if len(feats.Vocabulary) == 0 || len(feats.Features) != len(feats.Vocabulary) {
		t.Fatalf("features after restart: %d words, %d features",
			len(feats.Vocabulary), len(feats.Features))
	}
	// The stream picks up where it stopped: day 2 again conflicts, day 3
	// processes.
	if code, ec := errCode(t, client2, "POST", srv2.URL+"/v1/topics/"+req.Name+"/batches",
		batchRequest{Time: 2, Tweets: dayTweets(d, 2)}); code != http.StatusConflict || ec != codeStaleTimestamp {
		t.Fatalf("stale day after restart: status %d code %q", code, ec)
	}
	var resp batchResponse
	if code, err := doJSON(client2, "POST", srv2.URL+"/v1/topics/"+req.Name+"/batches",
		batchRequest{Time: 3, Tweets: dayTweets(d, 3)}, &resp); err != nil || code != http.StatusOK {
		t.Fatalf("day 3 after restart: %d %v", code, err)
	}
}

// TestDeleteRecreateFileConsistency hammers one topic name with
// concurrent creates (distinguishable by user count) and deletes, and
// after each round checks the durability invariant the per-name save
// lock exists for: the snapshot file on disk belongs to exactly the
// topic the registry serves — never to a deleted or superseded
// incarnation — and a deleted name leaves no file behind.
func TestDeleteRecreateFileConsistency(t *testing.T) {
	dir := t.TempDir()
	_, srv := testServer(t, dir)
	client := srv.Client()
	const name = "contested"
	topics := srv.URL + "/v1/topics"
	snap := filepath.Join(dir, name+".snap")

	for round := 0; round < 25; round++ {
		var wg sync.WaitGroup
		for _, users := range [][]string{{"a"}, {"a", "b"}, nil} {
			wg.Add(1)
			go func(users []string) {
				defer wg.Done()
				if users == nil {
					_, _ = doJSON(client, http.MethodDelete, topics+"/"+name, nil, nil)
					return
				}
				_, _ = doJSON(client, http.MethodPost, topics,
					createTopicRequest{Name: name, Users: users}, nil)
			}(users)
		}
		wg.Wait()

		var sum topicSummary
		code, err := doJSON(client, http.MethodGet, topics+"/"+name, nil, &sum)
		if err != nil {
			t.Fatalf("round %d: info: %v", round, err)
		}
		data, readErr := os.ReadFile(snap)
		switch code {
		case http.StatusOK:
			if readErr != nil {
				t.Fatalf("round %d: topic registered but snapshot missing: %v", round, readErr)
			}
			tp, rerr := triclust.Restore(bytes.NewReader(data))
			if rerr != nil {
				t.Fatalf("round %d: snapshot does not restore: %v", round, rerr)
			}
			if tp.Users() != sum.Users {
				t.Fatalf("round %d: snapshot holds a topic with %d users, registry serves %d",
					round, tp.Users(), sum.Users)
			}
		case http.StatusNotFound:
			if readErr == nil {
				t.Fatalf("round %d: topic deleted but snapshot file remains", round)
			}
		default:
			t.Fatalf("round %d: unexpected status %d", round, code)
		}
		_, _ = doJSON(client, http.MethodDelete, topics+"/"+name, nil, nil)
	}
}

// TestLoadAllQuarantinesUnsupportedVersion: a daemon upgrade must not
// silently discard old-format snapshots. Startup renames them out of the
// *.snap namespace so a same-name create cannot overwrite the only copy
// of the old state, and serves an empty (not wrong) topic.
func TestLoadAllQuarantinesUnsupportedVersion(t *testing.T) {
	legacy, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_v1.snap"))
	if err != nil {
		t.Fatalf("read legacy fixture: %v", err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "prop37.snap"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	_, srv := testServer(t, dir)
	code, _ := doJSON(srv.Client(), http.MethodGet, srv.URL+"/v1/topics/prop37", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("legacy topic served with status %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, "prop37.snap")); !os.IsNotExist(err) {
		t.Fatalf("legacy file still occupies the snapshot name: %v", err)
	}
	kept, err := os.ReadFile(filepath.Join(dir, "prop37.snap.unsupported-version"))
	if err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if !bytes.Equal(kept, legacy) {
		t.Fatal("quarantined copy does not match the original bytes")
	}
	// The freed name is usable again without touching the quarantined file.
	if code, err := doJSON(srv.Client(), http.MethodPost, srv.URL+"/v1/topics",
		createTopicRequest{Name: "prop37", Users: []string{"a", "b"}}, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("re-create over quarantined name: %d %v", code, err)
	}
	if kept2, err := os.ReadFile(filepath.Join(dir, "prop37.snap.unsupported-version")); err != nil || !bytes.Equal(kept2, legacy) {
		t.Fatalf("re-create disturbed the quarantined copy: %v", err)
	}
}

// TestQuarantineDoesNotClobberEarlierCopy: an upgrade → rollback →
// upgrade cycle quarantines twice under the same topic name; the second
// quarantine must pick a fresh slot, not overwrite the first copy.
func TestQuarantineDoesNotClobberEarlierCopy(t *testing.T) {
	legacy, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_v1.snap"))
	if err != nil {
		t.Fatalf("read legacy fixture: %v", err)
	}
	dir := t.TempDir()
	first := append([]byte("first"), legacy...)
	if err := os.WriteFile(filepath.Join(dir, "prop37.snap.unsupported-version"), first, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "prop37.snap"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	testServer(t, dir)
	if kept, err := os.ReadFile(filepath.Join(dir, "prop37.snap.unsupported-version")); err != nil || !bytes.Equal(kept, first) {
		t.Fatalf("earlier quarantined copy clobbered: %v", err)
	}
	if kept, err := os.ReadFile(filepath.Join(dir, "prop37.snap.unsupported-version.1")); err != nil || !bytes.Equal(kept, legacy) {
		t.Fatalf("second quarantine copy wrong: %v", err)
	}
}

// TestMaxBodyBytes covers the -max-body-bytes limit on every body-bearing
// endpoint: oversized requests die with 413 body_too_large (a stable code
// the client can branch on: split the batch, don't blindly re-send), and
// requests under the limit are unaffected.
func TestMaxBodyBytes(t *testing.T) {
	s, err := newServer("", serverOptions{maxBody: 4096}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	client := srv.Client()

	_, req := synthTopic(t, 31)
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("small create: %d %v", code, err)
	}

	// An oversized batch.
	big := batchRequest{Time: 1}
	for i := 0; i < 400; i++ {
		big.Tweets = append(big.Tweets, tweetSpec{Text: "padding padding padding padding", User: 0})
	}
	code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics/"+req.Name+"/batches", big)
	if code != http.StatusRequestEntityTooLarge || ec != codeBodyTooLarge {
		t.Fatalf("oversized batch: %d %q, want 413 %q", code, ec, codeBodyTooLarge)
	}

	// An oversized create.
	bigCreate := req
	bigCreate.Name = "big"
	for i := 0; i < 2000; i++ {
		bigCreate.Users = append(bigCreate.Users, fmt.Sprintf("filler-user-%06d", i))
	}
	code, ec = errCode(t, client, "POST", srv.URL+"/v1/topics", bigCreate)
	if code != http.StatusRequestEntityTooLarge || ec != codeBodyTooLarge {
		t.Fatalf("oversized create: %d %q", code, ec)
	}

	// An oversized snapshot PUT (binary path, not JSON).
	hreq, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/topics/restored", bytes.NewReader(make([]byte, 64<<10)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge || eb.Error.Code != codeBodyTooLarge {
		t.Fatalf("oversized snapshot: %d %q", resp.StatusCode, eb.Error.Code)
	}

	// An oversized vocab warm-up.
	var texts []string
	for i := 0; i < 300; i++ {
		texts = append(texts, "sufficiently long warmup text to overflow the configured limit")
	}
	code, ec = errCode(t, client, "POST", srv.URL+"/v1/topics/"+req.Name+"/vocab", vocabRequest{Texts: texts})
	if code != http.StatusRequestEntityTooLarge || ec != codeBodyTooLarge {
		t.Fatalf("oversized vocab: %d %q", code, ec)
	}

	// The topic is untouched by all the rejected bodies.
	var sum topicSummary
	if code, err := doJSON(client, "GET", srv.URL+"/v1/topics/"+req.Name, nil, &sum); err != nil || code != http.StatusOK {
		t.Fatalf("info: %d %v", code, err)
	}
	if sum.Batches != 0 {
		t.Fatalf("rejected bodies changed state: %+v", sum)
	}
}

// TestHealthzQuarantineCount: startup quarantine used to be visible only
// by listing the data directory; now GET /v1/healthz reports how many
// files the loader refused to serve, alongside the topic count.
func TestHealthzQuarantineCount(t *testing.T) {
	dir := t.TempDir()

	// One healthy topic, persisted by a first daemon instance.
	{
		s, err := newServer(dir, serverOptions{journal: journalOptions{Every: 1}}, t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(s)
		_, req := synthTopic(t, 77)
		if code, err := doJSON(srv.Client(), "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
			t.Fatalf("create: %d %v", code, err)
		}
		srv.Close()
	}
	// Two poisoned files beside it: an undecodable snapshot and an
	// undecodable journal for a topic whose snapshot is healthy.
	if err := os.WriteFile(filepath.Join(dir, "garbage.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "topic-77.journal"), []byte("not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := newServer(dir, serverOptions{journal: journalOptions{Every: 4}}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var hr healthResponse
	code, err := doJSON(srv.Client(), "GET", srv.URL+"/v1/healthz", nil, &hr)
	if err != nil || code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, err)
	}
	if hr.Status != "ok" || hr.Topics != 1 {
		t.Fatalf("healthz %+v, want ok with 1 topic", hr)
	}
	if hr.Quarantined != 2 {
		t.Fatalf("quarantined %d, want 2 (bad snapshot + bad journal)", hr.Quarantined)
	}
	if hr.Cluster != nil {
		t.Fatalf("single-process healthz advertises a cluster: %+v", hr.Cluster)
	}
}
