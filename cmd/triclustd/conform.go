package main

import (
	"sort"

	"triclust"
)

// Conformance wiring of the daemon: the server-wide -conform-mode
// setting, the JSON shapes of verdicts and the healthz census, and the
// per-topic record of the most recent violation.
//
// The mode is a runtime policy, not topic state: every topic this shard
// serves — created, restored, reloaded after a rollback, or promoted
// from a replica — is stamped with the server's mode, while the profile
// it scores against lives inside the topic's durable state and
// accumulates identically in every mode.

// verdictJSON is the wire shape of a conformance verdict, embedded in
// flag-mode batch responses and in enforce-mode rejection bodies.
type verdictJSON struct {
	Status   string      `json:"status"`
	Worst    string      `json:"worst,omitempty"`
	MaxZ     float64     `json:"max_z"`
	Violated []string    `json:"violated,omitempty"`
	Scores   []scoreJSON `json:"scores,omitempty"`
}

// scoreJSON is one invariant's z-score within a verdict.
type scoreJSON struct {
	Invariant string  `json:"invariant"`
	Value     float64 `json:"value"`
	Mean      float64 `json:"mean"`
	Std       float64 `json:"std"`
	Z         float64 `json:"z"`
}

func verdictOf(v *triclust.ConformanceVerdict) *verdictJSON {
	if v == nil {
		return nil
	}
	out := &verdictJSON{
		Status:   string(v.Status),
		Worst:    v.Worst,
		MaxZ:     v.MaxZ,
		Violated: v.Violated,
	}
	for _, sc := range v.Scores {
		out.Scores = append(out.Scores, scoreJSON{
			Invariant: sc.Invariant,
			Value:     sc.Value,
			Mean:      sc.Mean,
			Std:       sc.Std,
			Z:         sc.Z,
		})
	}
	return out
}

// violationJSON records a topic's most recent flagged or quarantined
// batch for the healthz census (scores elided — healthz is a summary,
// the full verdict went to the client that sent the batch).
type violationJSON struct {
	Time     int      `json:"time"`
	Status   string   `json:"status"`
	Worst    string   `json:"worst"`
	MaxZ     float64  `json:"max_z"`
	Violated []string `json:"violated,omitempty"`
}

// noteViolation publishes a batch's non-conforming verdict as the
// topic's most recent violation. Atomic because healthz reads it
// without the topic lock.
func (tp *topic) noteViolation(ts int, v *triclust.ConformanceVerdict) {
	if v == nil || v.Status == triclust.Conforming {
		return
	}
	tp.lastViol.Store(&violationJSON{
		Time:     ts,
		Status:   string(v.Status),
		Worst:    v.Worst,
		MaxZ:     v.MaxZ,
		Violated: v.Violated,
	})
}

// conformanceHealth is the healthz conformance section: the shard's
// mode, how many batches enforce mode has rejected since startup, and
// the per-topic drift census.
type conformanceHealth struct {
	Mode string `json:"mode"`
	// RejectedBatches counts enforce-mode rejections. Rejected batches
	// leave no durable trace (retrying after fixing the feed is safe),
	// so this runtime counter is the only place they show up.
	RejectedBatches uint64             `json:"rejected_batches"`
	Topics          []topicConformance `json:"topics"`
}

// topicConformance is one topic's row in the census: profile readiness,
// the verdict counters of applied batches, the drift trend, and the most
// recent violation seen on this shard.
type topicConformance struct {
	Name          string         `json:"name"`
	Ready         bool           `json:"ready"`
	Observed      uint64         `json:"observed"`
	Scored        uint64         `json:"scored"`
	Flagged       uint64         `json:"flagged"`
	Quarantined   uint64         `json:"quarantined"`
	Drift         float64        `json:"drift"`
	Trend         string         `json:"trend"`
	LastViolation *violationJSON `json:"last_violation,omitempty"`
}

// conformanceHealth builds the healthz section from the served topics'
// published read views (lock-free, like the rest of the read plane).
func (s *server) conformanceHealth(served []*topic) *conformanceHealth {
	ch := &conformanceHealth{
		Mode:            s.conform.String(),
		RejectedBatches: s.conformRejected.Load(),
		Topics:          []topicConformance{},
	}
	for _, tp := range served {
		row := topicConformance{Name: tp.name, Trend: "flat", LastViolation: tp.lastViol.Load()}
		if rep := tp.eng().ConformanceReport(); rep != nil {
			row.Ready = rep.Ready
			row.Observed = rep.Observed
			row.Scored = rep.Scored
			row.Flagged = rep.Flagged
			row.Quarantined = rep.Quarantined
			row.Drift = rep.Drift
			row.Trend = rep.Trend
		}
		ch.Topics = append(ch.Topics, row)
	}
	sort.Slice(ch.Topics, func(i, j int) bool { return ch.Topics[i].Name < ch.Topics[j].Name })
	return ch
}
