package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"triclust"
	"triclust/internal/cluster"
)

// Cluster mode shards the topic registry across processes. Each shard is
// a full triclustd with the same static peer list; a consistent-hash ring
// (internal/cluster) assigns every topic name an owning shard, so no
// placement table is stored or gossiped. A request arriving at the wrong
// shard is answered with 307 + Location + X-Triclust-Shard (the default,
// keeping shards stateless pass-through-free) or transparently proxied
// (-cluster-proxy).
//
// Ownership is layered, checked in this order:
//
//  1. registry — a topic this shard holds is served here, even when the
//     ring disagrees (an operator move overrode placement);
//  2. tombstone — a topic this shard handed off is forwarded to the
//     recorded target and its writes refused forever at epochs ≤ the
//     hand-off epoch;
//  3. ring — everything else goes to the consistent-hash owner.
//
// Topic moves (POST /v1/cluster/move) drain the topic under its lock,
// compact the journal into a final snapshot, bump the ownership epoch,
// install the snapshot on the target through the ordinary restore
// endpoint (with the hand-off header pinning it there), and only then
// drop the local copy — leaving a persisted tombstone so a restarted
// source shard still refuses the topic's writes.

// handoffHeader marks a snapshot PUT as a hand-off installation: the
// receiving shard accepts the topic regardless of ring placement (the
// move pins it) instead of forwarding the request back.
const handoffHeader = "X-Triclust-Handoff"

// shardHeader names the shard a request was (or should be) routed to; it
// is set on every 307 and on proxied responses.
const shardHeader = "X-Triclust-Shard"

// forwardedHeader carries the comma-separated list of shards a proxied
// request has already traversed. Legitimate chains span two hops (wrong
// shard → ring owner → tombstone target), so a forward is refused only
// when its target is already on the path, or the path has visited as
// many shards as the ring holds — a true loop (e.g. both sides of an
// interrupted hand-off pointing at each other), which must fail fast
// instead of ping-ponging until a timeout. Redirect mode gets the same
// protection from the client's own redirect cap.
const forwardedHeader = "X-Triclust-Forwarded"

// clusterConfig is one shard's view of the cluster: its own identity, the
// ring shared by every shard, and how to forward mis-routed requests.
type clusterConfig struct {
	self  string // this shard's base URL; must be a ring member
	ring  *cluster.Ring
	proxy bool // proxy mis-routed requests instead of 307
	// client issues hand-off PUTs and (in proxy mode) forwarded requests.
	client *http.Client
	// peerTimeout bounds each inter-shard request (proxy hop, hand-off
	// PUT, placement query) with a per-request context; 0 selects
	// defaultPeerTimeout. The client's own 2-minute timeout stays as the
	// outer backstop.
	peerTimeout time.Duration
	// backoff spaces retries of idempotent inter-shard requests; the zero
	// value selects cluster.DefaultBackoff.
	backoff cluster.Backoff
}

// defaultPeerTimeout bounds one inter-shard request when -peer-timeout is
// not set.
const defaultPeerTimeout = 30 * time.Second

// peerAttempts bounds retries of inter-shard requests that are safe to
// re-issue (idempotent GETs; hand-off PUTs disambiguated between tries).
const peerAttempts = 4

func (c *clusterConfig) timeout() time.Duration {
	if c.peerTimeout > 0 {
		return c.peerTimeout
	}
	return defaultPeerTimeout
}

func (c *clusterConfig) retryDelay(attempt int) time.Duration {
	b := c.backoff
	if b.Base <= 0 {
		b = cluster.DefaultBackoff
	}
	return b.Delay(attempt)
}

// newClusterConfig validates and assembles the cluster flags: peers is
// the comma-separated static shard list (base URLs), self must be one of
// them, vnodes the virtual-node count (<=0: default).
func newClusterConfig(self, peers string, vnodes int, proxy bool) (*clusterConfig, error) {
	var list []string
	for _, p := range strings.Split(peers, ",") {
		p = strings.TrimSuffix(strings.TrimSpace(p), "/")
		if p == "" {
			continue
		}
		u, err := url.Parse(p)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %q is not a base URL", p)
		}
		list = append(list, p)
	}
	ring, err := cluster.New(list, vnodes)
	if err != nil {
		return nil, err
	}
	self = strings.TrimSuffix(strings.TrimSpace(self), "/")
	if !ring.Contains(self) {
		return nil, fmt.Errorf("cluster: -self %q is not in -peers %q", self, peers)
	}
	return &clusterConfig{
		self:   self,
		ring:   ring,
		proxy:  proxy,
		client: &http.Client{Timeout: 2 * time.Minute},
	}, nil
}

// routeTopic decides whether this shard serves the request for name,
// reporting true to continue locally. When another shard owns the topic
// the request is forwarded — 307 redirect or transparent proxy — and
// routeTopic reports false with the response written. body carries the
// already-consumed request body for proxying (nil when r.Body is still
// unread). Hand-off PUTs bypass routing: the move pins the topic here.
func (s *server) routeTopic(w http.ResponseWriter, r *http.Request, name string, body []byte) bool {
	if s.cluster == nil || r.Header.Get(handoffHeader) != "" {
		return true
	}
	s.mu.RLock()
	_, local := s.topics[name]
	mv, movedOK := s.moved[name]
	s.mu.RUnlock()
	if local {
		return true
	}
	if movedOK {
		s.forward(w, r, mv.Target, body)
		return false
	}
	if owner := s.cluster.ring.Owner(name); owner != s.cluster.self {
		// With replication on, a request for a down owner's topic goes to
		// the first live replica-set member instead — the shard that has
		// promoted (or is about to promote) the topic's cold replica. When
		// that shard is this one, serve locally: before the promotion lands
		// the registry answers 404 and clients retry, which is strictly
		// better than forwarding into a dead shard's connection timeouts.
		if rp := s.repl; rp != nil && rp.det.Down(owner) {
			if alt, ok := rp.det.FirstLive(rp.candidates(name, owner)); ok {
				if alt == s.cluster.self {
					return true
				}
				s.forward(w, r, alt, body)
				return false
			}
		}
		s.forward(w, r, owner, body)
		return false
	}
	return true
}

// forward hands the request to target: a 307 redirect by default (the
// method and body are preserved by the client re-issuing the request), or
// a transparent proxy in -cluster-proxy mode. Both stamp X-Triclust-Shard
// with the shard that should be asked.
func (s *server) forward(w http.ResponseWriter, r *http.Request, target string, body []byte) {
	var hops []string
	if via := r.Header.Get(forwardedHeader); via != "" {
		hops = strings.Split(via, ",")
	}
	for _, h := range hops {
		if h == target {
			writeError(w, http.StatusBadGateway, codeShardUnreachable,
				fmt.Errorf("routing loop: %s would forward to %s, which already handled the request (path %v)",
					s.cluster.self, target, hops))
			return
		}
	}
	if len(hops) >= len(s.cluster.ring.Peers()) {
		writeError(w, http.StatusBadGateway, codeShardUnreachable,
			fmt.Errorf("routing loop: request traversed %d shards (%v)", len(hops), hops))
		return
	}
	w.Header().Set(shardHeader, target)
	dest := target + r.URL.RequestURI()
	if !s.cluster.proxy {
		http.Redirect(w, r, dest, http.StatusTemporaryRedirect)
		return
	}
	var rdr io.Reader = r.Body
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	// Bound the hop with its own deadline (under the client's context) so
	// a wedged peer fails this request in -peer-timeout, not in the
	// transport's 2-minute backstop. No retry: the proxied request may not
	// be idempotent, and the client owns the retry decision.
	ctx, cancel := context.WithTimeout(r.Context(), s.cluster.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, dest, rdr)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeShardUnreachable, err)
		return
	}
	req.Header.Set(forwardedHeader, strings.Join(append(hops, s.cluster.self), ","))
	// Content-Type selects the request format and Accept the response
	// format on the owning shard, so both must survive the hop — a
	// binary batch proxied without them would decode as JSON and answer
	// in the wrong format.
	for _, h := range []string{"Content-Type", "Accept"} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, codeShardUnreachable,
			fmt.Errorf("proxy to %s: %w", target, err))
		return
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Content-Disposition", shardHeader} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(shardHeader, target)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		s.logf("proxy %s %s to %s: %v", r.Method, r.URL.Path, target, err)
	}
}

// setMoved records a hand-off tombstone — memory first, then the durable
// marker — fencing the topic's writes at epochs ≤ ts.Epoch from this
// moment on. It is written *before* the hand-off PUT so no crash
// interleaving leaves two shards accepting writes for the topic.
func (s *server) setMoved(name string, ts cluster.Tombstone) error {
	s.mu.Lock()
	s.moved[name] = ts
	s.mu.Unlock()
	if s.store == nil {
		return nil
	}
	l := s.lockName(name)
	defer s.unlockName(name, l)
	if err := cluster.WriteTombstone(s.store.fs, s.store.dir, name, ts); err != nil {
		return err
	}
	return s.store.syncDir()
}

// clearMoved undoes setMoved after a failed hand-off.
func (s *server) clearMoved(name string) {
	s.mu.Lock()
	delete(s.moved, name)
	s.mu.Unlock()
	if s.store == nil {
		return
	}
	l := s.lockName(name)
	defer s.unlockName(name, l)
	if err := cluster.RemoveTombstone(s.store.fs, s.store.dir, name); err != nil {
		s.logf("remove tombstone %q: %v", name, err)
	}
}

// ——— wire types ———

type moveRequest struct {
	Topic string `json:"topic"`
	// Target is the receiving shard's base URL; it must be a ring member
	// other than this shard.
	Target string `json:"target"`
}

type moveResponse struct {
	Topic   string `json:"topic"`
	Source  string `json:"source"`
	Target  string `json:"target"`
	Epoch   uint64 `json:"epoch"`
	Batches int    `json:"batches"`
	// Resumed reports that this call completed an earlier, interrupted
	// hand-off (the daemon crashed between fencing and installing).
	Resumed bool `json:"resumed,omitempty"`
}

// moveTopic implements POST /v1/cluster/move, the operator-driven
// rebalance path. The request is routed like any topic request, so the
// operator may address any shard; the shard currently holding the topic
// performs the drain → compact → export → install → drop sequence.
func (s *server) moveTopic(w http.ResponseWriter, r *http.Request) {
	if _, ok := requireMediaType(w, r, mediaTypeJSON); !ok {
		return
	}
	if s.cluster == nil {
		writeError(w, http.StatusConflict, codeNotClustered,
			errors.New("this daemon is not running in cluster mode (-peers/-self)"))
		return
	}
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req moveRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if err := validTopicName(req.Topic); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidName, err)
		return
	}
	req.Target = strings.TrimSuffix(strings.TrimSpace(req.Target), "/")
	if !s.cluster.ring.Contains(req.Target) {
		writeError(w, http.StatusBadRequest, codeUnknownPeer,
			fmt.Errorf("target %q is not a cluster peer", req.Target))
		return
	}

	s.mu.RLock()
	tp, local := s.topics[req.Topic]
	mv, movedOK := s.moved[req.Topic]
	s.mu.RUnlock()
	switch {
	case local:
		// fall through to the live hand-off below
	case movedOK:
		if s.pendingHandoff(req.Topic) {
			s.resumeMove(w, req, mv)
			return
		}
		// The topic moved on and lives elsewhere now; route the move to
		// its current holder so "POST to any shard" keeps holding.
		s.forward(w, r, mv.Target, body)
		return
	default:
		if owner := s.cluster.ring.Owner(req.Topic); owner != s.cluster.self {
			s.forward(w, r, owner, body)
			return
		}
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("unknown topic %q", req.Topic))
		return
	}
	if req.Target == s.cluster.self {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Errorf("topic %q already lives on %s", req.Topic, s.cluster.self))
		return
	}

	resp, status, code, err := s.performHandoff(tp, req.Target)
	if err != nil {
		writeError(w, status, code, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// performHandoff executes the drain → compact → export → install → drop
// sequence moving tp to target. It is the shared spine of the operator
// move endpoint and the automatic rebalancer; the caller must not hold
// tp.mu. On failure it returns the HTTP status and stable code the
// operator path responds with.
func (s *server) performHandoff(tp *topic, target string) (moveResponse, int, string, error) {
	// Holding the topic lock for the whole hand-off *is* the drain: any
	// in-flight batch finished before we got the lock, and every batch
	// that arrives while we hold it blocks, then finds the tombstone and
	// follows it to the target.
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.deleted {
		return moveResponse{}, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("topic %q was deleted", tp.name)
	}
	// Final compaction: fold the journal tail into one fresh snapshot so
	// the exported state is the complete, settled history.
	if s.store != nil {
		ok, err := s.saveIfCurrent(tp)
		if err != nil {
			return moveResponse{}, http.StatusInternalServerError, codeStorage,
				fmt.Errorf("final compaction before hand-off: %w", err)
		}
		if !ok {
			return moveResponse{}, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("topic %q was deleted", tp.name)
		}
	}

	oldEpoch := tp.eng().Epoch()
	newEpoch := oldEpoch + 1
	tp.eng().SetEpoch(newEpoch)
	var snap bytes.Buffer
	if err := tp.eng().Snapshot(&snap); err != nil {
		tp.eng().SetEpoch(oldEpoch)
		return moveResponse{}, http.StatusInternalServerError, codeStorage,
			fmt.Errorf("export snapshot: %w", err)
	}
	ts := cluster.Tombstone{Epoch: newEpoch, Target: target}
	if err := s.setMoved(tp.name, ts); err != nil {
		s.clearMoved(tp.name)
		tp.eng().SetEpoch(oldEpoch)
		return moveResponse{}, http.StatusInternalServerError, codeStorage,
			fmt.Errorf("persist hand-off intent: %w", err)
	}
	if definitive, err := s.installOn(target, tp.name, snap.Bytes(), newEpoch); err != nil {
		// A definitive refusal (the target answered non-201) installed
		// nothing: un-fence and keep serving. A transport error is
		// *ambiguous* — the PUT may have been applied on the target — so
		// un-fencing could let both shards accept writes and fork the
		// topic. With a data directory the safe resolution exists: keep
		// the fence, park the topic in the interrupted-hand-off state
		// (tombstone + on-disk snapshot) and let a move retry resume it.
		// Without one there is nothing to resume from, so in-memory
		// clusters choose availability and un-fence (the trade-off of
		// running without -data-dir).
		if definitive || s.store == nil {
			s.clearMoved(tp.name)
			tp.eng().SetEpoch(oldEpoch)
			return moveResponse{}, http.StatusBadGateway, codeMoveFailed,
				fmt.Errorf("install %q on %s: %w", tp.name, target, err)
		}
		s.mu.Lock()
		if s.topics[tp.name] == tp {
			delete(s.topics, tp.name)
		}
		s.mu.Unlock()
		tp.deleted = true
		if tp.jw != nil {
			tp.jw.Close()
			tp.jw = nil
		}
		s.logf("hand-off of %q to %s is ambiguous (%v); fence kept, retry the move to resume", tp.name, target, err)
		return moveResponse{}, http.StatusBadGateway, codeMoveFailed,
			fmt.Errorf("install %q on %s did not complete: %v — the topic is fenced; retry the move to resume the hand-off",
				tp.name, target, err)
	}

	// The target owns the topic now. Drop the local copy: registry entry,
	// journal handle, snapshot and journal files — the tombstone stays.
	batches := tp.eng().Batches()
	s.mu.Lock()
	if s.topics[tp.name] == tp {
		delete(s.topics, tp.name)
	}
	s.mu.Unlock()
	tp.deleted = true
	if tp.jw != nil {
		tp.jw.Close()
		tp.jw = nil
	}
	s.removeStale(tp.name)
	if s.repl != nil {
		// The new primary re-seeds its own followers; this shard's
		// shipping state for the topic is obsolete.
		s.repl.dropTopicState(tp.name)
	}
	s.logf("moved topic %q to %s at epoch %d (%d batches)", tp.name, target, newEpoch, batches)
	return moveResponse{
		Topic: tp.name, Source: s.cluster.self, Target: target,
		Epoch: newEpoch, Batches: batches,
	}, 0, "", nil
}

// installOn PUTs a snapshot onto the target shard through the ordinary
// restore endpoint, marked as a hand-off so the target pins the topic.
// definitive reports whether the outcome is known: true on success or
// when the target answered with a refusal (nothing was installed), false
// when every attempt ended in ambiguity — the PUT may or may not have
// been applied, and the caller must not assume either.
//
// A hand-off PUT is not blindly idempotent: if an earlier attempt landed
// but its response was lost, the retry is refused with topic_exists —
// which must read as success, not refusal. So between attempts the
// target's placement is queried at the hand-off epoch: already-installed
// resolves to success, reachable-but-absent makes a transport failure
// safe to retry (nothing landed), and unreachable stays ambiguous.
func (s *server) installOn(target, name string, snapshot []byte, epoch uint64) (definitive bool, err error) {
	var last error
	for attempt := 0; attempt < peerAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(s.cluster.retryDelay(attempt - 1))
		}
		resp, rerr := s.putSnapshot(target, name, snapshot)
		if rerr != nil {
			last = rerr
			has, reachable := s.targetTopicState(target, name, epoch)
			if has {
				return true, nil
			}
			if !reachable {
				return false, rerr // truly ambiguous: park the hand-off
			}
			continue // target answered and lacks the topic: retry is safe
		}
		if resp.status == http.StatusCreated {
			return true, nil
		}
		if resp.code == codeTopicExists {
			if has, _ := s.targetTopicState(target, name, epoch); has {
				return true, nil
			}
		}
		// Any other answer is the target's considered refusal (epoch
		// fence, quarantine, invalid snapshot); retrying cannot change it.
		return true, fmt.Errorf("target answered %d (%s: %s)", resp.status, resp.code, resp.message)
	}
	return false, fmt.Errorf("gave up after %d attempts: %w", peerAttempts, last)
}

// installResponse is one hand-off PUT's decoded outcome.
type installResponse struct {
	status  int
	code    string
	message string
}

func (s *server) putSnapshot(target, name string, snapshot []byte) (*installResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cluster.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		target+"/v1/topics/"+name, bytes.NewReader(snapshot))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set(handoffHeader, "1")
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out := &installResponse{status: resp.StatusCode}
	if resp.StatusCode != http.StatusCreated {
		var eb errorBody
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb); err == nil {
			out.code, out.message = eb.Error.Code, eb.Error.Message
		}
	}
	return out, nil
}

// pendingHandoff reports whether name has a tombstone *and* its snapshot
// still on disk — the signature of a hand-off interrupted between fencing
// and installation. Such a topic serves nothing until a move retry
// completes the installation.
func (s *server) pendingHandoff(name string) bool {
	if s.store == nil {
		return false
	}
	s.mu.RLock()
	_, movedOK := s.moved[name]
	_, local := s.topics[name]
	s.mu.RUnlock()
	return movedOK && !local && s.store.snapExists(name)
}

// resumeMove completes an interrupted hand-off: the tombstone recorded
// the fencing epoch, the snapshot is still on disk, so re-export it at
// that epoch and install it on the requested target. Retrying against a
// different target than first recorded is allowed (the first target may
// be the shard that died) and re-points the tombstone.
func (s *server) resumeMove(w http.ResponseWriter, req moveRequest, mv cluster.Tombstone) {
	if req.Target == s.cluster.self {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			errors.New("cannot resume a hand-off onto the fencing shard"))
		return
	}
	l := s.lockName(req.Topic)
	defer s.unlockName(req.Topic, l)
	data, err := s.store.readSnap(req.Topic)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage,
			fmt.Errorf("read pending snapshot: %w", err))
		return
	}
	tp, err := triclust.Restore(bytes.NewReader(data))
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage,
			fmt.Errorf("pending snapshot undecodable: %w", err))
		return
	}
	// A real interruption fell between the final compaction and the
	// install, so the journal should be empty — but replay any tail it
	// does hold (same verified path as startup recovery) rather than
	// silently dropping acked batches from an unexpected state.
	rt := &restoredTopic{tp: tp}
	if replayed := s.store.recoverJournal(req.Topic, rt, data, s.logf); replayed > 0 {
		s.logf("resume of %q replayed %d journal records on top of the pending snapshot", req.Topic, replayed)
	}
	tp = rt.tp
	// The on-disk snapshot predates the epoch bump (it was the final
	// compaction); re-stamp it with the fencing epoch before installing.
	tp.SetEpoch(mv.Epoch)
	var snap bytes.Buffer
	if err := tp.Snapshot(&snap); err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	if req.Target != mv.Target {
		mv = cluster.Tombstone{Epoch: mv.Epoch, Target: req.Target}
		if err := cluster.WriteTombstone(s.store.fs, s.store.dir, req.Topic, mv); err != nil {
			writeError(w, http.StatusInternalServerError, codeStorage, err)
			return
		}
		s.mu.Lock()
		s.moved[req.Topic] = mv
		s.mu.Unlock()
	}
	if _, err := s.installOn(req.Target, req.Topic, snap.Bytes(), mv.Epoch); err != nil {
		// If the interrupted hand-off's original PUT did land on the
		// target, the retry is refused with topic_exists; ask the target
		// whether it already serves the topic at the fencing epoch and, if
		// so, just finish the local drop.
		if !s.targetHasTopic(req.Target, req.Topic, mv.Epoch) {
			writeError(w, http.StatusBadGateway, codeMoveFailed,
				fmt.Errorf("install %q on %s: %w", req.Topic, req.Target, err))
			return
		}
		s.logf("hand-off of %q to %s had already completed; finishing the local drop", req.Topic, req.Target)
	}
	s.store.remove(req.Topic)
	s.logf("resumed interrupted hand-off of %q to %s at epoch %d", req.Topic, req.Target, mv.Epoch)
	writeJSON(w, http.StatusOK, moveResponse{
		Topic: req.Topic, Source: s.cluster.self, Target: req.Target,
		Epoch: mv.Epoch, Batches: tp.Batches(), Resumed: true,
	})
}

// targetHasTopic asks target whether it serves name locally at an epoch
// at least the given one — the signature of a hand-off whose installation
// succeeded but whose acknowledgement was lost.
func (s *server) targetHasTopic(target, name string, epoch uint64) bool {
	has, _ := s.targetTopicState(target, name, epoch)
	return has
}

// targetTopicState additionally reports whether the target answered at
// all: reachable distinguishes "asked, and the topic is not there" from
// "could not ask" — the difference between a retryable and an ambiguous
// hand-off failure. The placement query is an idempotent GET, so it is
// retried with backoff under per-request deadlines.
func (s *server) targetTopicState(target, name string, epoch uint64) (has, reachable bool) {
	for attempt := 0; attempt < peerAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(s.cluster.retryDelay(attempt - 1))
		}
		info, err := s.queryPlacement(target, name)
		if err != nil {
			continue
		}
		return info.Topic != nil && info.Topic.Local && info.Topic.Epoch >= epoch, true
	}
	return false, false
}

func (s *server) queryPlacement(target, name string) (*clusterInfoResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), s.cluster.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		target+"/v1/cluster/info?topic="+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.cluster.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("placement query answered %d", resp.StatusCode)
	}
	var info clusterInfoResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// clusterInfoResponse describes this shard's placement view; with
// ?topic=name it also resolves where that topic should be asked for.
type clusterInfoResponse struct {
	Self   string          `json:"self"`
	Peers  []string        `json:"peers"`
	Vnodes int             `json:"vnodes"`
	Proxy  bool            `json:"proxy"`
	Topic  *topicPlacement `json:"topic,omitempty"`
}

type topicPlacement struct {
	Name string `json:"name"`
	// Owner is where this shard would route the topic: itself, the
	// tombstone target, or the ring owner.
	Owner string `json:"owner"`
	// Local reports the topic is registered on this shard.
	Local bool `json:"local"`
	// Epoch is the hand-off epoch when a tombstone exists, else the local
	// topic's epoch (0 when neither applies).
	Epoch uint64 `json:"epoch"`
}

func (s *server) clusterInfo(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeError(w, http.StatusConflict, codeNotClustered,
			errors.New("this daemon is not running in cluster mode (-peers/-self)"))
		return
	}
	resp := clusterInfoResponse{
		Self:   s.cluster.self,
		Peers:  s.cluster.ring.Peers(),
		Vnodes: s.cluster.ring.VirtualNodes(),
		Proxy:  s.cluster.proxy,
	}
	if name := r.URL.Query().Get("topic"); name != "" {
		if err := validTopicName(name); err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidName, err)
			return
		}
		pl := &topicPlacement{Name: name}
		s.mu.RLock()
		tp, local := s.topics[name]
		mv, movedOK := s.moved[name]
		s.mu.RUnlock()
		switch {
		case local:
			pl.Owner, pl.Local, pl.Epoch = s.cluster.self, true, tp.eng().Epoch()
		case movedOK:
			pl.Owner, pl.Epoch = mv.Target, mv.Epoch
		default:
			pl.Owner = s.cluster.ring.Owner(name)
		}
		resp.Topic = pl
	}
	writeJSON(w, http.StatusOK, resp)
}
