package main

// Coverage for the error codes no other test exercises, so the
// error-code registry check (scripts/error-codes-check.sh) can require
// every code in errors.go to be both documented in README.md and
// asserted by at least one test.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net/http"
	"os"
	"testing"

	"triclust/internal/codec"
)

// TestRestoreUnsupportedSnapshotVersion: a snapshot stamped with a
// future format version is refused with unsupported_snapshot_version —
// not invalid_snapshot — so clients can tell a skewed build from a
// corrupt file.
func TestRestoreUnsupportedSnapshotVersion(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	jtCreate(t, client, srv.URL)
	jtFeed(t, client, srv.URL, 0, 2)
	snap := jtSnapshotBytes(t, client, srv.URL)

	// The version lives at bytes 8:10 of the header, checked before the
	// payload checksum.
	future := append([]byte(nil), snap...)
	binary.LittleEndian.PutUint16(future[8:10], codec.Version+1)

	req, err := http.NewRequest(http.MethodPut, srv.URL+"/v1/topics/other", bytes.NewReader(future))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != codeSnapshotVersion {
		t.Fatalf("future-version restore: %d %q, want 400 %q", resp.StatusCode, eb.Error.Code, codeSnapshotVersion)
	}
}

// TestPersistenceFailureStorageError: when the data directory vanishes
// under a running daemon (disk detached, path unlinked), the batch that
// cannot be persisted is refused with storage_error.
func TestPersistenceFailureStorageError(t *testing.T) {
	dir := t.TempDir()
	_, srv := testServer(t, dir) // snapshot-every-batch: each batch must save
	client := srv.Client()
	jtCreate(t, client, srv.URL)
	jtFeed(t, client, srv.URL, 0, 2)

	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	code, ec := errCode(t, client, "POST", srv.URL+"/v1/topics/"+journalTopicName+"/batches", jtBatch(2))
	if code != http.StatusInternalServerError || ec != codeStorage {
		t.Fatalf("batch without storage: %d %q, want 500 %q", code, ec, codeStorage)
	}
}

// TestMoveToDeadPeerFails: a hand-off whose target refuses the install
// (peer down, answering 503) is reported as move_failed, and the source
// un-fences and keeps serving the topic.
func TestMoveToDeadPeerFails(t *testing.T) {
	tc := newTestCluster(t, 2, serverOptions{}, false, false)
	name := harnessTopicName(5)
	src := tc.ownerIdx(name)
	dst := 1 - src

	var sum topicSummary
	tc.retryJSON("POST", tc.url(src)+"/v1/topics", harnessCreateReq(5), &sum, http.StatusCreated)
	var br batchResponse
	tc.retryJSON("POST", tc.url(src)+"/v1/topics/"+name+"/batches", harnessBatch(5, 1), &br, http.StatusOK)

	tc.killShard(dst)
	code, ec := errCode2(t, tc.noRedirect, "POST", tc.url(src)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: tc.url(dst)})
	if code != http.StatusBadGateway || ec != codeMoveFailed {
		t.Fatalf("move to dead peer: %d %q, want 502 %q", code, ec, codeMoveFailed)
	}

	// The failed move left the topic served at the source, un-fenced.
	var info topicSummary
	tc.retryJSON("GET", tc.url(src)+"/v1/topics/"+name, nil, &info, http.StatusOK)
	if info.Batches != 1 {
		t.Fatalf("after failed move: %+v", info)
	}
}

// TestProxyToDeadOwnerUnreachable: in proxy mode, a request for a topic
// whose owning shard cannot be reached at all (connection refused) is
// answered 502 shard_unreachable by the shard that tried to proxy it.
func TestProxyToDeadOwnerUnreachable(t *testing.T) {
	tc := newTestCluster(t, 2, serverOptions{}, true, false)
	name := harnessTopicName(2)
	owner := tc.ownerIdx(name)
	other := 1 - owner

	var sum topicSummary
	tc.retryJSON("POST", tc.url(other)+"/v1/topics", harnessCreateReq(2), &sum, http.StatusCreated)

	// Take the owner's listener down completely so the proxy dial fails.
	tc.killShard(owner)
	tc.shards[owner].hs.Close()

	code, ec := errCode(t, tc.client, "GET", tc.url(other)+"/v1/topics/"+name, nil)
	if code != http.StatusBadGateway || ec != codeShardUnreachable {
		t.Fatalf("proxy to dead owner: %d %q, want 502 %q", code, ec, codeShardUnreachable)
	}
}
