package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"triclust/internal/codec"
	"triclust/internal/journal"
)

// replTestServer builds one replicated daemon without starting its
// background machinery (no detector, no resync worker, no rebalancer):
// the replica endpoints are exercised directly through ServeHTTP with
// hand-crafted wire frames, so the peer in the ring never has to exist.
func replTestServer(t *testing.T) *server {
	t.Helper()
	self := "http://self.test:8547"
	peer := "http://peer.test:8547"
	cc, err := newClusterConfig(self, self+","+peer, 32, false)
	if err != nil {
		t.Fatalf("newClusterConfig: %v", err)
	}
	s, err := newServer(t.TempDir(), serverOptions{
		journal: journalOptions{Every: 4},
		cluster: cc,
		repl:    &replOptions{Factor: 2},
	}, t.Logf)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// postReplFrame ships one encoded ReplAppend to the server's replica
// endpoint and returns the status, the ack (on 200), the stable error
// code (otherwise), and the response headers.
func postReplFrame(t *testing.T, s *server, name string, fr *codec.ReplAppend) (int, replAck, string, http.Header) {
	t.Helper()
	var body bytes.Buffer
	if err := codec.EncodeReplAppend(&body, fr); err != nil {
		t.Fatalf("EncodeReplAppend: %v", err)
	}
	req := httptest.NewRequest("POST", "/v1/replica/"+name+"/append", &body)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var ack replAck
	var eb errorBody
	if rec.Code == http.StatusOK {
		if err := json.NewDecoder(rec.Body).Decode(&ack); err != nil {
			t.Fatalf("decode ack: %v", err)
		}
	} else if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
		t.Fatalf("decode error body (%d): %v", rec.Code, err)
	}
	return rec.Code, ack, eb.Error.Code, rec.Result().Header
}

// tailFrame encodes one journal record frame carrying the post-batch
// fingerprint (batches, draws). The tweet payload is irrelevant to the
// follower's verification — only the CRC framing and the fingerprint
// chain are.
func tailFrame(t *testing.T, time, batches int, draws uint64) []byte {
	t.Helper()
	frame, err := journal.EncodeFrame(&journal.Record{Time: time, Batches: batches, RandDraws: draws})
	if err != nil {
		t.Fatalf("EncodeFrame: %v", err)
	}
	return frame
}

// TestReplicaEndpointsRequireReplication: a daemon running without
// -replication-factor refuses the replica wire with a stable code
// instead of quietly accepting state it would never serve.
func TestReplicaEndpointsRequireReplication(t *testing.T) {
	_, hs := testServer(t, t.TempDir())
	client := hs.Client()

	var body bytes.Buffer
	if err := codec.EncodeReplAppend(&body, &codec.ReplAppend{Source: "http://x", SnapCRC: codec.Checksum(nil)}); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(hs.URL+"/v1/replica/some-topic/append", "application/octet-stream", &body)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || eb.Error.Code != codeReplicationOff {
		t.Fatalf("append without replication: %d %q, want 409 %q", resp.StatusCode, eb.Error.Code, codeReplicationOff)
	}

	req, _ := http.NewRequest("DELETE", hs.URL+"/v1/replica/some-topic?epoch=0", nil)
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	eb = errorBody{}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || eb.Error.Code != codeReplicationOff {
		t.Fatalf("drop without replication: %d %q, want 409 %q", resp.StatusCode, eb.Error.Code, codeReplicationOff)
	}
}

// TestReplicaAppendRejectsBadRequests: hostile or malformed wire input —
// garbage bytes, invalid topic names — is rejected before anything
// touches disk.
func TestReplicaAppendRejectsBadRequests(t *testing.T) {
	s := replTestServer(t)

	req := httptest.NewRequest("POST", "/v1/replica/tp/append", strings.NewReader("definitely not a TRICREPL frame"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var eb errorBody
	if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusBadRequest || eb.Error.Code != codeInvalidRequest {
		t.Fatalf("garbage body: %d %q, want 400 %q", rec.Code, eb.Error.Code, codeInvalidRequest)
	}

	req = httptest.NewRequest("POST", "/v1/replica/no%2Fslashes/append", strings.NewReader(""))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	eb = errorBody{}
	if err := json.NewDecoder(rec.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusBadRequest || eb.Error.Code != codeInvalidName {
		t.Fatalf("bad topic name: %d %q, want 400 %q", rec.Code, eb.Error.Code, codeInvalidName)
	}
}

// TestReplicaFrameSequence drives the follower side of the replication
// protocol through a full life: refuse a tail with no base, install a
// base + tail, extend it incrementally, ack duplicates idempotently,
// refuse gaps and wrong bases, and fence stale epochs — verifying the
// on-disk replica (snapshot, journal, meta) after each accepted frame.
func TestReplicaFrameSequence(t *testing.T) {
	s := replTestServer(t)
	const name = "protocol-topic"
	src := "http://peer.test:8547"
	snap := []byte("opaque base snapshot bytes — the follower stores, never decodes")
	snapCRC := codec.Checksum(snap)

	// 1. A tail with no base: nothing to extend.
	code, _, ec, _ := postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC,
		Batches: 1, RandDraws: 10, Tail: tailFrame(t, 1, 1, 10),
	})
	if code != http.StatusConflict || ec != codeReplicaOutOfSync {
		t.Fatalf("tail without base: %d %q, want 409 %q", code, ec, codeReplicaOutOfSync)
	}

	// 2. Full install: base at (1 batch, 10 draws) plus a two-record tail
	// reaching (3, 30).
	tail := append(tailFrame(t, 2, 2, 20), tailFrame(t, 3, 3, 30)...)
	code, ack, _, _ := postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC,
		BaseBatches: 1, BaseRandDraws: 10,
		Batches: 3, RandDraws: 30,
		Snapshot: snap, Tail: tail,
	})
	if code != http.StatusOK || ack.Batches != 3 || ack.RandDraws != 30 {
		t.Fatalf("full install: %d ack=%+v", code, ack)
	}
	onDisk, err := os.ReadFile(s.store.replSnapPath(name))
	if err != nil || !bytes.Equal(onDisk, snap) {
		t.Fatalf("replica snapshot on disk: err=%v match=%v", err, bytes.Equal(onDisk, snap))
	}

	// 3. Incremental append to (4, 40).
	code, ack, _, _ = postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC,
		Batches: 4, RandDraws: 40, Tail: tailFrame(t, 4, 4, 40),
	})
	if code != http.StatusOK || ack.Batches != 4 || ack.RandDraws != 40 {
		t.Fatalf("incremental append: %d ack=%+v", code, ack)
	}

	// 4. Exact duplicate (a retry whose ack was lost): idempotent 200 at
	// the unchanged position.
	code, ack, _, _ = postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC,
		Batches: 4, RandDraws: 40, Tail: tailFrame(t, 4, 4, 40),
	})
	if code != http.StatusOK || ack.Batches != 4 || ack.RandDraws != 40 {
		t.Fatalf("duplicate append: %d ack=%+v", code, ack)
	}

	// 4b. A same-position frame with a different draw fingerprint is not a
	// duplicate — it is a same-epoch primary whose history diverged, and
	// acking it would bless the fork.
	code, _, ec, _ = postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC,
		Batches: 4, RandDraws: 41, Tail: tailFrame(t, 4, 4, 41),
	})
	if code != http.StatusConflict || ec != codeReplicaOutOfSync {
		t.Fatalf("diverged duplicate: %d %q, want 409 %q", code, ec, codeReplicaOutOfSync)
	}

	// 5. A gap (batch 6 does not follow 4): the follower must demand a
	// resync, not fake continuity.
	code, _, ec, _ = postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC,
		Batches: 6, RandDraws: 60, Tail: tailFrame(t, 6, 6, 60),
	})
	if code != http.StatusConflict || ec != codeReplicaOutOfSync {
		t.Fatalf("gapped tail: %d %q, want 409 %q", code, ec, codeReplicaOutOfSync)
	}

	// 6. A frame extending a different base snapshot.
	code, _, ec, _ = postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC + 1,
		Batches: 5, RandDraws: 50, Tail: tailFrame(t, 5, 5, 50),
	})
	if code != http.StatusConflict || ec != codeReplicaOutOfSync {
		t.Fatalf("wrong base CRC: %d %q, want 409 %q", code, ec, codeReplicaOutOfSync)
	}

	// 7. The replica journal holds exactly the accepted records.
	j, err := journal.Load(s.store.fs, s.store.replJournalPath(name))
	if err != nil {
		t.Fatalf("load replica journal: %v", err)
	}
	if j.Torn || len(j.Records) != 3 {
		t.Fatalf("replica journal: torn=%v records=%d, want clean 3", j.Torn, len(j.Records))
	}
	last := j.Records[len(j.Records)-1]
	if last.Batches != 4 || last.RandDraws != 40 {
		t.Fatalf("replica journal tail at (%d, %d), want (4, 40)", last.Batches, last.RandDraws)
	}

	// 8. A re-install at a higher epoch (promotion elsewhere) wins; stale
	// frames at the old epoch are then fenced with the epoch header the
	// zombie needs to write its tombstone.
	code, ack, _, _ = postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 2, SnapCRC: snapCRC,
		BaseBatches: 5, BaseRandDraws: 50,
		Batches: 5, RandDraws: 50, Snapshot: snap,
	})
	if code != http.StatusOK || ack.Batches != 5 {
		t.Fatalf("higher-epoch install: %d ack=%+v", code, ack)
	}
	code, _, ec, hdr := postReplFrame(t, s, name, &codec.ReplAppend{
		Source: src, Epoch: 0, SnapCRC: snapCRC,
		Batches: 6, RandDraws: 60, Tail: tailFrame(t, 6, 6, 60),
	})
	if code != http.StatusConflict || ec != codeEpochMismatch {
		t.Fatalf("stale-epoch frame: %d %q, want 409 %q", code, ec, codeEpochMismatch)
	}
	if got := hdr.Get(epochHeader); got != "2" {
		t.Fatalf("stale-epoch fence header %s=%q, want 2", epochHeader, got)
	}
}

// TestJournalWriteFailureDegradesTopic (satellite: durability fault
// handling): when a journal append fails mid-stream, the batch answers
// 503 journal_write_failed, the topic rolls back to what disk vouches
// for (so the same timestamp retries cleanly instead of tripping the
// stale-timestamp guard), healthz reports the topic degraded, and the
// first successful durability operation clears the flag.
func TestJournalWriteFailureDegradesTopic(t *testing.T) {
	s, hs := testServerOpts(t, t.TempDir(), journalOptions{Every: 100})
	client := hs.Client()

	d, req := synthTopic(t, 77)
	if code, err := doJSON(client, "POST", hs.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	url := hs.URL + "/v1/topics/" + req.Name + "/batches"
	if code, err := doJSON(client, "POST", url, batchRequest{Time: 1, Tweets: dayTweets(d, 1)}, nil); err != nil || code != http.StatusOK {
		t.Fatalf("day 1: %d %v", code, err)
	}

	// Sabotage the journal writer underneath the topic: the file handle
	// closes, the writer stays installed, and the next append fails the
	// way a dead disk would.
	s.mu.RLock()
	tp := s.topics[req.Name]
	s.mu.RUnlock()
	tp.mu.Lock()
	if tp.jw == nil {
		tp.mu.Unlock()
		t.Fatal("topic has no journal writer; the failure path needs journaling on")
	}
	tp.jw.Close()
	tp.mu.Unlock()

	day2 := batchRequest{Time: 2, Tweets: dayTweets(d, 2)}
	code, ec := errCode(t, client, "POST", url, day2)
	if code != http.StatusServiceUnavailable || ec != codeJournalWriteFailed {
		t.Fatalf("batch on dead journal: %d %q, want 503 %q", code, ec, codeJournalWriteFailed)
	}

	var hr healthResponse
	if code, err := doJSON(client, "GET", hs.URL+"/v1/healthz", nil, &hr); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, err)
	}
	if hr.Status != "degraded" || len(hr.Degraded) != 1 || hr.Degraded[0] != req.Name {
		t.Fatalf("healthz after failed append: status=%q degraded=%v", hr.Status, hr.Degraded)
	}

	// The failed batch was rolled back, so the SAME timestamp retries —
	// and succeeds via the snapshot path (the writer was closed), which
	// re-creates the journal and clears the degradation.
	if code, err := doJSON(client, "POST", url, day2, nil); err != nil || code != http.StatusOK {
		t.Fatalf("day 2 retry: %d %v", code, err)
	}
	hr = healthResponse{}
	if code, err := doJSON(client, "GET", hs.URL+"/v1/healthz", nil, &hr); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, err)
	}
	if hr.Status != "ok" || len(hr.Degraded) != 0 {
		t.Fatalf("healthz after recovery: status=%q degraded=%v", hr.Status, hr.Degraded)
	}

	// And the stream continues normally.
	if code, err := doJSON(client, "POST", url, batchRequest{Time: 3, Tweets: dayTweets(d, 3)}, nil); err != nil || code != http.StatusOK {
		t.Fatalf("day 3: %d %v", code, err)
	}
}
