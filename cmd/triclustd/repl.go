package main

// Replication (RF ≥ 2): after every acknowledged batch the owning shard
// ships the batch's journal frame to the topic's ring successors, so each
// topic's history exists on -replication-factor shards before the client
// sees the ack. Followers keep a *cold* replica — the base snapshot file
// plus a journal tail, verified frame-by-frame (CRC + the {batches,
// randDraws} fingerprints) — never an open Topic: replication costs
// follower disk and verification, not follower compute.
//
// Failure handling is layered on the epoch fencing PR 5 introduced:
//
//   - a failure detector (internal/cluster.Detector) probes every peer's
//     /v1/healthz; when a peer is declared down, the first live member of
//     each of its topics' replica sets promotes its cold replica by
//     replaying it through Topic.Process — deterministic, fingerprint-
//     verified — and registers the topic at epoch+1;
//   - the zombie side of a promotion (the old primary, still running but
//     partitioned) discovers its demotion on its next ship: the follower
//     answers 409 epoch_mismatch, and the zombie fences itself — drops
//     the topic, writes a tombstone pointing at the new owner — so its
//     clients are redirected instead of fed forked state;
//   - an optional rebalancer (-auto-rebalance) converges held topics back
//     onto the ring as peers die and return, driving the existing move
//     path in the minimal-remap order the consistent hash gives for free.
//
// Shipping is semi-synchronous: the in-request ship (with bounded retries
// and backoff) must either succeed, discover a zombie, or mark the
// follower out-of-sync and queue an asynchronous full resync. A dead or
// flaky follower therefore degrades a topic from RF=N to fewer live
// copies — it never blocks the write path indefinitely, and healthz
// reports the lag so an operator can see the degradation.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"triclust"
	"triclust/internal/cluster"
	"triclust/internal/codec"
	"triclust/internal/journal"
)

// epochHeader carries the responding shard's ownership epoch on a 409
// epoch_mismatch from the replica endpoint, so a fenced zombie can write
// a tombstone at exactly the epoch that demoted it.
const epochHeader = "X-Triclust-Epoch"

// shipRequestAttempts caps replica-ship retries on the request path,
// where tp.mu is held and a client is waiting: enough to absorb one
// transient failure, tight enough that a hung peer stalls the topic's
// writers for about one ship timeout rather than the full configured
// budget. The async resync worker uses the whole ShipAttempts budget.
const shipRequestAttempts = 2

// replOptions are the replication tunables (flags in main.go; the test
// harness sets them directly).
type replOptions struct {
	// Factor is the replication factor: every topic lives on its primary
	// plus Factor-1 ring successors. 1 disables replication.
	Factor int
	// ProbeInterval / ProbeTimeout / ProbeFailures tune the failure
	// detector (see cluster.DetectorConfig).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	ProbeFailures int
	// ShipTimeout bounds each replica-ship request; ShipAttempts bounds
	// the in-request retries before a follower is marked out-of-sync.
	ShipTimeout  time.Duration
	ShipAttempts int
	// Backoff spaces the in-request ship retries.
	Backoff cluster.Backoff
	// AutoRebalance drives held topics back onto the ring every
	// RebalanceInterval; off by default, preserving PR 5's pin semantics.
	AutoRebalance     bool
	RebalanceInterval time.Duration
	// Transport overrides the ship/probe transport (the fault-injection
	// harness plugs a flaky RoundTripper in here); nil uses the default.
	Transport http.RoundTripper
}

func (o replOptions) withDefaults() replOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval
	}
	if o.ProbeFailures <= 0 {
		o.ProbeFailures = 3
	}
	if o.ShipTimeout <= 0 {
		o.ShipTimeout = 10 * time.Second
	}
	if o.ShipAttempts <= 0 {
		o.ShipAttempts = 8
	}
	if o.RebalanceInterval <= 0 {
		o.RebalanceInterval = 10 * time.Second
	}
	return o
}

// followerState is the primary's book-keeping for one (topic, follower)
// pair: which base the follower holds and how far its tail reaches. The
// incremental frames a primary ships name the *follower's* base CRC, not
// the primary's on-disk one — the two legitimately diverge between a
// follower resync and the next compaction, and naming the follower's base
// is what keeps one resync from looping into another.
type followerState struct {
	snapCRC uint32
	batches int
	draws   uint64
	synced  bool
}

// replMeta is the follower's durable description of one cold replica
// (<topic>.rmeta, JSON): who ships it, at what epoch, and the identity +
// fingerprint of the base snapshot its journal tail extends.
type replMeta struct {
	Source    string `json:"source"`
	Epoch     uint64 `json:"epoch"`
	SnapCRC   uint32 `json:"snap_crc"`
	Batches   int    `json:"batches"`
	RandDraws uint64 `json:"rand_draws"`
}

// replica is one cold replica held for a peer: its durable meta, the open
// tail writer (lazy), and the in-memory position (base + applied tail).
type replica struct {
	mu      sync.Mutex
	meta    replMeta
	jw      *journal.Writer
	batches int
	draws   uint64
	dropped bool
}

// replAck is the follower's 200 body: the replica position after applying
// the frame, which the primary folds into its followerState.
type replAck struct {
	Batches   int    `json:"batches"`
	RandDraws uint64 `json:"rand_draws"`
}

// replicator holds one shard's replication machinery: the failure
// detector, the per-follower shipping state for topics it serves, the
// cold replicas it holds for peers, and the bounded resync queue.
//
// Lock discipline: r.mu and any replica.mu are never held at the same
// time. Code that needs both snapshots pointers under one lock, releases
// it, then takes the other — both orders of nesting used to exist
// (promoteFrom vs replicaDrop) and could deadlock two peer-down
// promotions against a replica DELETE.
type replicator struct {
	s      *server
	opts   replOptions
	client *http.Client
	det    *cluster.Detector

	mu        sync.Mutex
	followers map[string]map[string]*followerState // topic → peer → state
	replicas  map[string]*replica                  // topic → cold replica held here
	queued    map[string]bool                      // resync dedup
	closed    bool

	queue    chan string
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newReplicator(s *server, opts replOptions) *replicator {
	opts = opts.withDefaults()
	r := &replicator{
		s:         s,
		opts:      opts,
		client:    &http.Client{Transport: opts.Transport},
		followers: make(map[string]map[string]*followerState),
		replicas:  make(map[string]*replica),
		queued:    make(map[string]bool),
		queue:     make(chan string, 256),
		stop:      make(chan struct{}),
	}
	var peers []string
	for _, p := range s.cluster.ring.Peers() {
		if p != s.cluster.self {
			peers = append(peers, p)
		}
	}
	r.det = cluster.NewDetector(peers, r.probe, cluster.DetectorConfig{
		Interval:  opts.ProbeInterval,
		Timeout:   opts.ProbeTimeout,
		Threshold: opts.ProbeFailures,
		Backoff:   opts.Backoff,
	}, r.onPeerChange)
	return r
}

// probe is the detector's liveness check: the peer's readiness endpoint.
func (r *replicator) probe(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz answered %d", resp.StatusCode)
	}
	return nil
}

// start launches the detector, the resync worker, the optional
// rebalancer, and the one-shot startup reconciliation.
func (r *replicator) start() {
	r.det.Start()
	r.spawn(r.resyncLoop)
	if r.opts.AutoRebalance {
		r.spawn(r.rebalanceLoop)
	}
	r.spawn(r.reconcileStartup)
}

// close stops every background goroutine and releases the replica
// journal handles. Idempotent.
func (r *replicator) close() {
	r.stopOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		r.mu.Unlock()
		close(r.stop)
	})
	r.det.Stop()
	r.wg.Wait()
	r.mu.Lock()
	reps := make([]*replica, 0, len(r.replicas))
	for _, rep := range r.replicas {
		reps = append(reps, rep)
	}
	r.mu.Unlock()
	for _, rep := range reps {
		rep.mu.Lock()
		if rep.jw != nil {
			rep.jw.Close()
			rep.jw = nil
		}
		rep.mu.Unlock()
	}
}

// spawn runs fn on a tracked goroutine unless the replicator is closing.
func (r *replicator) spawn(fn func()) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.wg.Add(1)
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		fn()
	}()
}

// followerPeers returns the peers a topic this shard serves replicates
// to: the first Factor-1 ring-ordered replica-set members besides self.
// Using ring order keyed by the topic name (not by who currently serves
// it) keeps the set stable under operator moves and promotions.
func (r *replicator) followerPeers(name string) []string {
	all := r.s.cluster.ring.Peers()
	set := r.s.cluster.ring.ReplicaSet(name, len(all))
	out := make([]string, 0, r.opts.Factor-1)
	for _, p := range set {
		if p == r.s.cluster.self {
			continue
		}
		out = append(out, p)
		if len(out) == r.opts.Factor-1 {
			break
		}
	}
	return out
}

// candidates returns the ring-ordered promotion candidates for a topic
// whose shipping source died: every replica-set member except the source.
// Every live shard computes the same list, so "the first live candidate
// promotes" needs no coordination beyond converging failure detectors.
func (r *replicator) candidates(name, source string) []string {
	all := r.s.cluster.ring.Peers()
	set := r.s.cluster.ring.ReplicaSet(name, len(all))
	out := make([]string, 0, len(set))
	for _, p := range set {
		if p != source {
			out = append(out, p)
		}
	}
	return out
}

// ——— primary side: shipping ———

// follower returns a copy of the shipping state for (topic, peer).
func (r *replicator) follower(name, peer string) (followerState, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.followers[name]
	if m == nil {
		return followerState{}, false
	}
	st := m[peer]
	if st == nil {
		return followerState{}, false
	}
	return *st, true
}

func (r *replicator) setFollower(name, peer string, st followerState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.followers[name]
	if m == nil {
		m = make(map[string]*followerState)
		r.followers[name] = m
	}
	m[peer] = &st
}

func (r *replicator) markUnsynced(name, peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st := r.followers[name][peer]; st != nil {
		st.synced = false
	}
}

// dropTopicState forgets a topic's shipping state (topic deleted, handed
// off, or fenced — the next holder rebuilds it from scratch).
func (r *replicator) dropTopicState(name string) {
	r.mu.Lock()
	delete(r.followers, name)
	delete(r.queued, name)
	r.mu.Unlock()
}

// enqueueResync queues an asynchronous full resync of a topic's
// out-of-sync followers. The queue is bounded and deduplicated; when it
// is full the enqueue is dropped — the next batch's ship (or the next
// peer-up event) re-queues, so a dropped entry delays convergence without
// losing it.
func (r *replicator) enqueueResync(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.queued[name] {
		return
	}
	select {
	case r.queue <- name:
		r.queued[name] = true
	default:
		r.s.logf("resync queue full; dropping %q (will re-queue on next ship)", name)
	}
}

func (r *replicator) resyncLoop() {
	for {
		var name string
		select {
		case <-r.stop:
			return
		case name = <-r.queue:
		}
		r.mu.Lock()
		delete(r.queued, name)
		r.mu.Unlock()
		s := r.s
		s.mu.RLock()
		tp := s.topics[name]
		s.mu.RUnlock()
		if tp == nil {
			continue
		}
		tp.mu.Lock()
		if !tp.deleted {
			// Full re-ship to the followers that fell behind; errors mark
			// them unsynced again and re-queue (unless the follower is now
			// declared down — then the peer-up sweep owns the re-queue).
			if _, _, err := s.replShip(tp, nil, 0, 0, true); err != nil {
				s.logf("resync %q: %v", name, err)
			}
		}
		tp.mu.Unlock()
		// A topic that re-queued itself during the ship failed to converge
		// (its follower is flaky but not yet declared down). Pace the next
		// round instead of spinning on tp.mu at 100% CPU until the
		// detector's verdict lands.
		r.mu.Lock()
		failed := r.queued[name]
		r.mu.Unlock()
		if failed {
			select {
			case <-r.stop:
				return
			case <-time.After(r.opts.ProbeInterval):
			}
		}
	}
}

// shipError is a ship attempt's terminal failure: the follower's stable
// error code (when it answered) plus the epoch/owner it advertised.
type shipError struct {
	code  string
	epoch uint64
	owner string
	err   error
}

// post ships one replication frame to peer with bounded retries and
// backoff. Transport errors and 5xx answers retry (a duplicate delivery
// is acknowledged idempotently by the follower, so retrying a frame whose
// response was lost is safe); 4xx answers are definitive. A peer the
// detector declares down mid-retry is abandoned immediately — its resync
// happens when it comes back, not by hammering a corpse.
func (r *replicator) post(peer, name string, fr *codec.ReplAppend, attempts int) (replAck, *shipError) {
	var buf bytes.Buffer
	if err := codec.EncodeReplAppend(&buf, fr); err != nil {
		return replAck{}, &shipError{err: err}
	}
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if r.det.Down(peer) {
				return replAck{}, &shipError{err: fmt.Errorf("%s declared down after %d attempts: %w", peer, attempt, last)}
			}
			select {
			case <-r.stop:
				return replAck{}, &shipError{err: errors.New("replicator shutting down")}
			case <-time.After(r.opts.Backoff.Delay(attempt - 1)):
			}
		}
		ack, se, retry := r.postOnce(peer, name, buf.Bytes())
		if se == nil {
			return ack, nil
		}
		if !retry {
			return replAck{}, se
		}
		last = se.err
	}
	return replAck{}, &shipError{err: fmt.Errorf("gave up after %d attempts: %w", attempts, last)}
}

func (r *replicator) postOnce(peer, name string, frame []byte) (replAck, *shipError, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), r.opts.ShipTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		peer+"/v1/replica/"+name+"/append", bytes.NewReader(frame))
	if err != nil {
		return replAck{}, &shipError{err: err}, false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		return replAck{}, &shipError{err: err}, true
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode == http.StatusOK {
		var ack replAck
		if err := json.Unmarshal(body, &ack); err != nil {
			return replAck{}, &shipError{err: fmt.Errorf("undecodable ack: %w", err)}, false
		}
		return ack, nil, false
	}
	se := &shipError{err: fmt.Errorf("%s answered %d", peer, resp.StatusCode)}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error.Code != "" {
		se.code = eb.Error.Code
		se.err = fmt.Errorf("%s answered %d (%s: %s)", peer, resp.StatusCode, eb.Error.Code, eb.Error.Message)
	}
	if v := resp.Header.Get(epochHeader); v != "" {
		se.epoch, _ = strconv.ParseUint(v, 10, 64)
	}
	se.owner = resp.Header.Get(shardHeader)
	// 5xx (including a killed shard's 503) may be transient; 4xx is the
	// follower's considered verdict.
	return replAck{}, se, resp.StatusCode >= 500
}

// replShip replicates a topic's latest state to its followers; the caller
// holds tp.mu. frame non-nil ships that just-appended journal frame
// incrementally (batches/draws are the post-append fingerprint); frame
// nil ships the full current snapshot — the first-contact, post-
// compaction and resync path. async marks the resync worker's mode: skip
// followers already in sync, and retry with the full ShipAttempts budget
// (no client is waiting); the request path gets shipRequestAttempts.
//
// The only failure that propagates is discovering this shard is a fenced
// zombie (a follower answered epoch_mismatch): the topic is fenced
// locally and the caller must fail the client's request with 409. Every
// other failure degrades: the follower is marked out-of-sync, a resync is
// queued, and the batch acks with fewer live copies.
func (s *server) replShip(tp *topic, frame []byte, batches int, draws uint64, async bool) (int, string, error) {
	r := s.repl
	if r == nil || tp.deleted {
		return 0, "", nil
	}
	peers := r.followerPeers(tp.name)
	if len(peers) == 0 {
		return 0, "", nil
	}
	attempts := shipRequestAttempts
	if async || attempts > r.opts.ShipAttempts {
		attempts = r.opts.ShipAttempts
	}
	epoch := tp.eng().Epoch()
	if frame == nil {
		batches, draws = tp.eng().StreamPos()
	}
	// The full snapshot is built at most once per ship round and reused
	// across followers.
	var fullSnap []byte
	var fullCRC uint32
	buildFull := func() error {
		if fullSnap != nil {
			return nil
		}
		var buf bytes.Buffer
		if err := tp.eng().Snapshot(&buf); err != nil {
			return err
		}
		fullSnap = buf.Bytes()
		fullCRC = codec.Checksum(fullSnap)
		return nil
	}
	for _, peer := range peers {
		st, known := r.follower(tp.name, peer)
		if async && known && st.synced {
			continue
		}
		if r.det.Down(peer) {
			// No resync is queued for a down peer — re-queueing now would
			// spin the resync worker for the whole outage. The peer-up
			// sweep (onPeerChange) re-queues every local topic when it
			// answers again.
			r.markUnsynced(tp.name, peer)
			continue
		}
		full := frame == nil || !known || !st.synced
		// At most two passes: an incremental ship the follower refuses as
		// out-of-sync is retried once as a full ship.
		for pass := 0; pass < 2; pass++ {
			fr := codec.ReplAppend{Source: s.cluster.self, Epoch: epoch,
				Batches: uint64(batches), RandDraws: draws}
			crc := st.snapCRC
			if full {
				if err := buildFull(); err != nil {
					return http.StatusInternalServerError, codeStorage,
						fmt.Errorf("export snapshot for replication: %w", err)
				}
				crc = fullCRC
				fr.Snapshot = fullSnap
				fr.BaseBatches = uint64(batches)
				fr.BaseRandDraws = draws
			} else {
				fr.Tail = frame
			}
			fr.SnapCRC = crc
			ack, se := r.post(peer, tp.name, &fr, attempts)
			if se == nil {
				r.setFollower(tp.name, peer, followerState{
					snapCRC: crc, batches: ack.Batches, draws: ack.RandDraws, synced: true,
				})
				break
			}
			if se.code == codeEpochMismatch {
				// The follower knows the topic at a higher epoch: someone
				// promoted (or the topic legitimately moved on) while this
				// shard kept serving. Fence ourselves at just below the
				// winning epoch so the new owner's ships to *us* pass and
				// our clients are redirected to it.
				fe := se.epoch
				if fe == 0 {
					fe = epoch + 1
				}
				target := se.owner
				if target == "" {
					target = peer
				}
				s.logf("topic %q: follower %s fenced this shard (epoch %d > %d); demoting", tp.name, peer, fe, epoch)
				s.fenceLocal(tp, fe-1, target)
				return http.StatusConflict, codeEpochMismatch,
					fmt.Errorf("topic %q is now owned elsewhere at epoch %d (this shard was fenced; ask %s)", tp.name, fe, target)
			}
			if se.code == codeReplicaOutOfSync && !full {
				full = true
				continue
			}
			r.markUnsynced(tp.name, peer)
			if !r.det.Down(peer) {
				// A peer that died mid-ship is handled by the peer-up
				// sweep; only a still-nominally-live follower earns an
				// async retry.
				r.enqueueResync(tp.name)
			}
			s.logf("replicate %q to %s: %v (follower marked out of sync)", tp.name, peer, se.err)
			break
		}
	}
	return 0, "", nil
}

// fenceLocal demotes this shard's copy of a topic: it is unregistered,
// its journal handle closed, a tombstone at the given epoch written (so
// clients are redirected to target and stale-epoch state cannot
// re-register), and its files dropped. Caller holds tp.mu.
func (s *server) fenceLocal(tp *topic, epoch uint64, target string) {
	s.mu.Lock()
	if s.topics[tp.name] == tp {
		delete(s.topics, tp.name)
	}
	s.mu.Unlock()
	tp.deleted = true
	if tp.jw != nil {
		tp.jw.Close()
		tp.jw = nil
	}
	if err := s.setMoved(tp.name, cluster.Tombstone{Epoch: epoch, Target: target}); err != nil {
		s.logf("fence %q: tombstone not persisted: %v", tp.name, err)
	}
	s.removeStale(tp.name)
	if s.repl != nil {
		s.repl.dropTopicState(tp.name)
	}
}

// dropReplicas asks a deleted topic's followers to drop their cold
// replicas (best effort, off the request path).
func (r *replicator) dropReplicas(name string, epoch uint64) {
	peers := r.followerPeers(name)
	r.dropTopicState(name)
	r.spawn(func() {
		for _, peer := range peers {
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.ShipTimeout)
			req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
				peer+"/v1/replica/"+name+"?epoch="+strconv.FormatUint(epoch, 10), nil)
			if err == nil {
				if resp, err := r.client.Do(req); err == nil {
					_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
					resp.Body.Close()
				}
			}
			cancel()
		}
	})
}

// ——— follower side: the replica store ———

// replicaFor returns the named cold replica, creating the bookkeeping
// entry when create is set.
func (r *replicator) replicaFor(name string, create bool) *replica {
	r.mu.Lock()
	defer r.mu.Unlock()
	rep := r.replicas[name]
	if rep == nil && create {
		rep = &replica{}
		r.replicas[name] = rep
	}
	return rep
}

// forgetReplica removes a dropped replica's map entry. It runs with no
// replica.mu held (the lock discipline forbids nesting), so the entry is
// removed only while it still names the same replica — a concurrent
// re-create must not lose its fresh entry.
func (r *replicator) forgetReplica(name string, rep *replica) {
	r.mu.Lock()
	if r.replicas[name] == rep {
		delete(r.replicas, name)
	}
	r.mu.Unlock()
}

// loadReplicas restores the cold replicas found in the data directory at
// startup: every <topic>.rmeta whose snapshot and journal agree with it.
// A replica that fails its own consistency checks is skipped (and
// counted), not served — the primary will re-ship a fresh base on its
// next contact.
func (r *replicator) loadReplicas() {
	st := r.s.store
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		r.s.logf("replica scan: %v", err)
		return
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".rmeta") {
			continue
		}
		name := strings.TrimSuffix(e.Name(), ".rmeta")
		if err := validTopicName(name); err != nil {
			st.quarantined.Add(1)
			r.s.logf("skipping replica %s: %v", e.Name(), err)
			continue
		}
		rep, err := r.loadReplica(name)
		if err != nil {
			st.quarantined.Add(1)
			r.s.logf("skipping replica %q: %v", name, err)
			continue
		}
		r.replicas[name] = rep
		r.s.logf("loaded replica %q (source %s, epoch %d, %d batches)",
			name, rep.meta.Source, rep.meta.Epoch, rep.batches)
	}
}

func (r *replicator) loadReplica(name string) (*replica, error) {
	st := r.s.store
	data, err := st.fs.ReadFile("repl.meta.read", st.replMetaPath(name))
	if err != nil {
		return nil, err
	}
	var meta replMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		return nil, fmt.Errorf("meta undecodable: %w", err)
	}
	snap, err := st.fs.ReadFile("repl.snap.read", st.replSnapPath(name))
	if err != nil {
		return nil, err
	}
	if crc := codec.Checksum(snap); crc != meta.SnapCRC {
		return nil, fmt.Errorf("base snapshot CRC %08x does not match meta %08x", crc, meta.SnapCRC)
	}
	j, err := journal.Load(st.fs, st.replJournalPath(name))
	if err != nil {
		return nil, fmt.Errorf("tail journal: %w", err)
	}
	if j.SnapCRC != meta.SnapCRC {
		return nil, fmt.Errorf("tail journal extends snapshot %08x, meta names %08x", j.SnapCRC, meta.SnapCRC)
	}
	rep := &replica{meta: meta, batches: meta.Batches, draws: meta.RandDraws}
	if n := len(j.Records); n > 0 {
		last := j.Records[n-1]
		rep.batches, rep.draws = last.Batches, last.RandDraws
	}
	return rep, nil
}

// verifyTail decodes raw journal frames and checks they chain gaplessly
// from the position after fromBatches to exactly (wantBatches, wantDraws).
// Nothing is written unless the whole tail verifies.
func verifyTail(tail []byte, fromBatches, wantBatches int, fromDraws, wantDraws uint64) error {
	prevB, prevD := fromBatches, fromDraws
	for off := 0; off < len(tail); {
		rec, n, ok := journal.DecodeFrame(tail[off:])
		if !ok {
			return errors.New("undecodable record frame in tail")
		}
		if rec.Batches != prevB+1 {
			return fmt.Errorf("tail record at batch %d does not follow %d", rec.Batches, prevB)
		}
		prevB, prevD = rec.Batches, rec.RandDraws
		off += n
	}
	if prevB != wantBatches || prevD != wantDraws {
		return fmt.Errorf("tail ends at (batches=%d, draws=%d), frame declares (batches=%d, draws=%d)",
			prevB, prevD, wantBatches, wantDraws)
	}
	return nil
}

// writeReplMeta atomically persists a replica's meta file.
func (st *store) writeReplMeta(name string, meta replMeta) error {
	data, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp, err := st.fs.CreateTemp("repl.meta.tmp", st.dir, name+".rmeta.tmp*")
	if err != nil {
		return err
	}
	defer st.fs.Remove("repl.meta.cleanup", tmp.Name())
	if _, err := tmp.Write("repl.meta.write", data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync("repl.meta.sync"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := st.fs.Rename("repl.meta.rename", tmp.Name(), st.replMetaPath(name)); err != nil {
		return err
	}
	return st.syncDir()
}

// replicaAppend implements POST /v1/replica/{topic}/append — the wire a
// primary ships journal frames (and base snapshots) over. The frame is
// verified completely — CRC, epoch fencing, gapless fingerprint chain —
// before anything is fsynced; a frame the follower cannot reconcile with
// its replica answers 409 replica_out_of_sync, telling the primary to
// re-ship a full base. Duplicate frames (a retry whose original response
// was lost) are acknowledged idempotently.
func (s *server) replicaAppend(w http.ResponseWriter, req *http.Request) {
	r := s.repl
	if r == nil {
		writeError(w, http.StatusConflict, codeReplicationOff,
			errors.New("this daemon does not run replication (-replication-factor)"))
		return
	}
	if _, ok := requireMediaType(w, req, mediaTypeSnapshot); !ok {
		return
	}
	name := req.PathValue("topic")
	if err := validTopicName(name); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidName, err)
		return
	}
	body, ok := s.readBody(w, req)
	if !ok {
		return
	}
	fr, err := codec.DecodeReplAppend(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err)
		return
	}

	// Epoch fencing against this shard's own view of the topic. A local
	// copy at a strictly higher epoch outranks the shipper (it is the
	// zombie); a local copy at a lower epoch means *we* are stale — fence
	// ourselves, then accept the replica. Equal epochs are the hand-off
	// window: this shard is mid-move of the topic to the shipper (our
	// tombstone at newEpoch is already down, the local copy is about to be
	// dropped when the install PUT we are serving right now acks), so the
	// frame is stored as a replica without touching the served topic —
	// demoting here would deadlock against the hand-off holding tp.mu, and
	// refusing would fence the legitimate new owner.
	s.mu.RLock()
	tp, local := s.topics[name]
	mv, movedOK := s.moved[name]
	s.mu.RUnlock()
	if local {
		if le := tp.eng().Epoch(); le > fr.Epoch {
			w.Header().Set(epochHeader, strconv.FormatUint(le, 10))
			w.Header().Set(shardHeader, s.cluster.self)
			writeError(w, http.StatusConflict, codeEpochMismatch,
				fmt.Errorf("topic %q is served here at epoch %d; refusing replica frames at epoch %d", name, le, fr.Epoch))
			return
		} else if le < fr.Epoch {
			tp.mu.Lock()
			if !tp.deleted {
				s.logf("topic %q: replica frame at epoch %d outranks local epoch %d; demoting to follower",
					name, fr.Epoch, tp.eng().Epoch())
				s.fenceLocal(tp, fr.Epoch-1, fr.Source)
			}
			tp.mu.Unlock()
		}
	} else if movedOK && mv.Epoch > fr.Epoch {
		// The tombstone records the epoch the topic *left* at — the new
		// owner legitimately ships at exactly that epoch, so only strictly
		// older frames are the fenced zombie's.
		w.Header().Set(epochHeader, strconv.FormatUint(mv.Epoch, 10))
		w.Header().Set(shardHeader, mv.Target)
		writeError(w, http.StatusConflict, codeEpochMismatch,
			fmt.Errorf("topic %q was handed off at epoch %d; refusing replica frames at epoch %d", name, mv.Epoch, fr.Epoch))
		return
	}

	rep := r.replicaFor(name, true)
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if rep.dropped {
		// Mid-removal (a drop or promotion has marked it, the map entry is
		// about to go): refuse, and the primary's retry gets a fresh entry.
		writeError(w, http.StatusConflict, codeReplicaOutOfSync,
			fmt.Errorf("replica of %q is being removed; re-ship a full base", name))
		return
	}
	if rep.meta.Epoch > fr.Epoch {
		w.Header().Set(epochHeader, strconv.FormatUint(rep.meta.Epoch, 10))
		w.Header().Set(shardHeader, rep.meta.Source)
		writeError(w, http.StatusConflict, codeEpochMismatch,
			fmt.Errorf("replica of %q is held at epoch %d; refusing frames at epoch %d", name, rep.meta.Epoch, fr.Epoch))
		return
	}
	if fr.Snapshot != nil {
		s.installReplica(w, rep, name, fr)
		return
	}
	s.appendReplica(w, rep, name, fr)
}

// installReplica replaces a replica's base with a shipped full snapshot.
// rep.mu held.
func (s *server) installReplica(w http.ResponseWriter, rep *replica, name string, fr *codec.ReplAppend) {
	st := s.store
	if err := verifyTail(fr.Tail, int(fr.BaseBatches), int(fr.Batches), fr.BaseRandDraws, fr.RandDraws); err != nil {
		writeError(w, http.StatusConflict, codeReplicaOutOfSync,
			fmt.Errorf("shipped tail does not extend the shipped base: %w", err))
		return
	}
	tmp, err := st.fs.CreateTemp("repl.snap.tmp", st.dir, name+".rsnap.tmp*")
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	defer st.fs.Remove("repl.snap.cleanup", tmp.Name())
	if _, err := tmp.Write("repl.snap.write", fr.Snapshot); err != nil {
		tmp.Close()
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	if err := tmp.Sync("repl.snap.sync"); err != nil {
		tmp.Close()
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	if err := tmp.Close(); err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	if err := st.fs.Rename("repl.snap.rename", tmp.Name(), st.replSnapPath(name)); err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	if rep.jw != nil {
		rep.jw.Close()
		rep.jw = nil
	}
	jw, err := journal.Create(st.fs, st.replJournalPath(name), fr.SnapCRC)
	if err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	if len(fr.Tail) > 0 {
		if err := jw.AppendFrames(fr.Tail); err != nil {
			jw.Close()
			writeError(w, http.StatusInternalServerError, codeStorage, err)
			return
		}
	}
	meta := replMeta{Source: fr.Source, Epoch: fr.Epoch, SnapCRC: fr.SnapCRC,
		Batches: int(fr.BaseBatches), RandDraws: fr.BaseRandDraws}
	if err := st.writeReplMeta(name, meta); err != nil {
		jw.Close()
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	rep.meta = meta
	rep.jw = jw
	rep.batches, rep.draws = int(fr.Batches), fr.RandDraws
	rep.dropped = false
	writeJSON(w, http.StatusOK, replAck{Batches: rep.batches, RandDraws: rep.draws})
}

// appendReplica extends a replica's journal tail with shipped frames.
// rep.mu held.
func (s *server) appendReplica(w http.ResponseWriter, rep *replica, name string, fr *codec.ReplAppend) {
	if rep.meta.SnapCRC == 0 && rep.meta.Source == "" {
		writeError(w, http.StatusConflict, codeReplicaOutOfSync,
			fmt.Errorf("no replica of %q is held here; ship a full base first", name))
		return
	}
	if rep.meta.Epoch != fr.Epoch || rep.meta.SnapCRC != fr.SnapCRC {
		writeError(w, http.StatusConflict, codeReplicaOutOfSync,
			fmt.Errorf("replica of %q holds base %08x at epoch %d, frame extends %08x at epoch %d",
				name, rep.meta.SnapCRC, rep.meta.Epoch, fr.SnapCRC, fr.Epoch))
		return
	}
	if int(fr.Batches) <= rep.batches {
		// A duplicate delivery: the original append landed but its ack was
		// lost. Verify the claim before the idempotent ack — a same-epoch
		// primary whose history diverged declares the right batch count
		// with the wrong draw fingerprint, and acking it would silently
		// bless the fork.
		if int(fr.Batches) == rep.batches && fr.RandDraws != rep.draws {
			writeError(w, http.StatusConflict, codeReplicaOutOfSync,
				fmt.Errorf("frame at batch %d declares draws %d, replica recorded %d — histories diverged",
					fr.Batches, fr.RandDraws, rep.draws))
			return
		}
		writeJSON(w, http.StatusOK, replAck{Batches: rep.batches, RandDraws: rep.draws})
		return
	}
	if err := verifyTail(fr.Tail, rep.batches, int(fr.Batches), rep.draws, fr.RandDraws); err != nil {
		writeError(w, http.StatusConflict, codeReplicaOutOfSync, err)
		return
	}
	if rep.jw == nil {
		jw, _, err := journal.Open(s.store.fs, s.store.replJournalPath(name))
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeStorage, err)
			return
		}
		rep.jw = jw
	}
	if err := rep.jw.AppendFrames(fr.Tail); err != nil {
		if terr := rep.jw.TruncateTail(); terr != nil {
			rep.jw.Close()
			rep.jw = nil
		}
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	rep.batches, rep.draws = int(fr.Batches), fr.RandDraws
	writeJSON(w, http.StatusOK, replAck{Batches: rep.batches, RandDraws: rep.draws})
}

// replicaDrop implements DELETE /v1/replica/{topic}?epoch=N: the primary
// deleted the topic (or re-homed it), so the cold replica at epochs ≤ N
// is garbage.
func (s *server) replicaDrop(w http.ResponseWriter, req *http.Request) {
	r := s.repl
	if r == nil {
		writeError(w, http.StatusConflict, codeReplicationOff,
			errors.New("this daemon does not run replication (-replication-factor)"))
		return
	}
	name := req.PathValue("topic")
	if err := validTopicName(name); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidName, err)
		return
	}
	epoch, err := strconv.ParseUint(req.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("bad epoch: %w", err))
		return
	}
	rep := r.replicaFor(name, false)
	if rep != nil {
		rep.mu.Lock()
		dropped := epoch >= rep.meta.Epoch
		if dropped {
			if rep.jw != nil {
				rep.jw.Close()
				rep.jw = nil
			}
			rep.dropped = true
			s.removeReplicaFiles(name)
		}
		rep.mu.Unlock()
		if dropped {
			r.forgetReplica(name, rep)
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) removeReplicaFiles(name string) {
	_ = s.store.fs.Remove("repl.remove.snap", s.store.replSnapPath(name))
	_ = s.store.fs.Remove("repl.remove.journal", s.store.replJournalPath(name))
	_ = s.store.fs.Remove("repl.remove.meta", s.store.replMetaPath(name))
}

// ——— failover: promotion ———

// onPeerChange reacts to detector verdicts: a peer going down triggers
// promotion of the replicas it was shipping; a peer coming back triggers
// a resync sweep (it may have missed ships while down).
func (r *replicator) onPeerChange(peer string, down bool) {
	if down {
		r.s.logf("peer %s declared down", peer)
		r.spawn(func() { r.promoteFrom(peer) })
		return
	}
	r.s.logf("peer %s is back", peer)
	r.spawn(r.resyncAllLocal)
}

func (r *replicator) resyncAllLocal() {
	s := r.s
	s.mu.RLock()
	names := make([]string, 0, len(s.topics))
	for name := range s.topics {
		names = append(names, name)
	}
	s.mu.RUnlock()
	for _, name := range names {
		r.enqueueResync(name)
	}
}

// promoteFrom promotes every cold replica whose shipping source is the
// dead peer — when this shard is the first live promotion candidate. The
// candidate order is shared ring order, so exactly one shard elects
// itself per topic once detector views converge.
func (r *replicator) promoteFrom(peer string) {
	r.mu.Lock()
	reps := make(map[string]*replica, len(r.replicas))
	for name, rep := range r.replicas {
		reps[name] = rep
	}
	r.mu.Unlock()
	var names []string
	for name, rep := range reps {
		rep.mu.Lock()
		match := rep.meta.Source == peer && !rep.dropped
		rep.mu.Unlock()
		if match {
			names = append(names, name)
		}
	}
	for _, name := range names {
		select {
		case <-r.stop:
			return
		default:
		}
		r.maybePromote(name, peer)
	}
}

func (r *replicator) maybePromote(name, source string) {
	s := r.s
	cands := r.candidates(name, source)
	first, ok := r.det.FirstLive(cands)
	if !ok || first != s.cluster.self {
		return
	}
	s.mu.RLock()
	_, local := s.topics[name]
	s.mu.RUnlock()
	if local {
		return
	}
	rep := r.replicaFor(name, false)
	if rep == nil {
		return
	}
	rep.mu.Lock()
	if rep.dropped || rep.meta.Source != source {
		rep.mu.Unlock()
		return
	}
	// Split-brain guard: an operator move (or an earlier promotion) may
	// have re-homed the topic onto a shard that is alive and well — in
	// which case the replica is merely stale and promoting it would fork
	// history. Ask every live candidate before self-electing.
	for _, c := range cands {
		if c == s.cluster.self || r.det.Down(c) {
			continue
		}
		if s.targetHasTopic(c, name, rep.meta.Epoch) {
			s.logf("not promoting %q: %s already serves it at epoch ≥ %d", name, c, rep.meta.Epoch)
			rep.mu.Unlock()
			return
		}
	}
	err := s.promoteReplica(name, rep)
	rep.mu.Unlock()
	if err != nil {
		s.logf("promote %q: %v (replica kept)", name, err)
		return
	}
	r.forgetReplica(name, rep)
	// This shard is the topic's primary now: seed its own followers.
	r.enqueueResync(name)
}

// promoteReplica turns a verified cold replica into the served topic:
// restore the base snapshot, replay the tail through Topic.Process with
// fingerprint verification (bit-identical by the determinism contract),
// bump the epoch past the dead primary's, register, persist, and drop the
// replica files. rep.mu held.
func (s *server) promoteReplica(name string, rep *replica) error {
	st := s.store
	snapData, err := st.fs.ReadFile("repl.snap.read", st.replSnapPath(name))
	if err != nil {
		return err
	}
	if crc := codec.Checksum(snapData); crc != rep.meta.SnapCRC {
		return fmt.Errorf("base snapshot CRC %08x does not match meta %08x", crc, rep.meta.SnapCRC)
	}
	tr, err := triclust.Restore(bytes.NewReader(snapData))
	if err != nil {
		return fmt.Errorf("base snapshot undecodable: %w", err)
	}
	if b, d := tr.StreamPos(); b != rep.meta.Batches || d != rep.meta.RandDraws {
		return fmt.Errorf("base snapshot is at (batches=%d, draws=%d), meta declares (batches=%d, draws=%d)",
			b, d, rep.meta.Batches, rep.meta.RandDraws)
	}
	if rep.jw != nil {
		rep.jw.Close()
		rep.jw = nil
	}
	j, err := journal.Load(st.fs, st.replJournalPath(name))
	if err != nil {
		return fmt.Errorf("tail journal: %w", err)
	}
	if j.SnapCRC != rep.meta.SnapCRC {
		return fmt.Errorf("tail journal extends snapshot %08x, meta names %08x", j.SnapCRC, rep.meta.SnapCRC)
	}
	for i, rec := range j.Records {
		out, err := tr.Process(rec.Time, rec.Tweets)
		if err == nil && out.Skipped {
			err = errors.New("recorded batch replayed as an empty-batch skip")
		}
		if err == nil {
			if b, d := tr.StreamPos(); b != rec.Batches || d != rec.RandDraws {
				err = fmt.Errorf("fingerprint mismatch: replayed (batches=%d, draws=%d), recorded (batches=%d, draws=%d)",
					b, d, rec.Batches, rec.RandDraws)
			}
		}
		if err != nil {
			return fmt.Errorf("replay of tail record %d/%d failed: %w", i+1, len(j.Records), err)
		}
	}
	newEpoch := rep.meta.Epoch + 1
	tr.SetEpoch(newEpoch)
	// Replay above ran without a conformance mode (recorded batches were
	// already accepted by the dead primary); the promoted topic enforces
	// this shard's policy from its first fresh batch.
	tr.SetConformanceMode(s.conform)
	tp := &topic{name: name, created: time.Now().UTC()}
	tp.engp.Store(tr)
	if code, err := s.tryRegister(tp, newEpoch); err != nil {
		return fmt.Errorf("register promoted topic: %s: %w", code, err)
	}
	tp.mu.Lock()
	if _, err := s.saveIfCurrent(tp); err != nil {
		// The topic serves from memory; the next successful save (or
		// batch) restores durability.
		s.logf("persist promoted %q: %v", name, err)
	}
	tp.mu.Unlock()
	rep.dropped = true
	s.removeReplicaFiles(name)
	s.logf("promoted replica %q to primary at epoch %d (%d batches; source %s is down)",
		name, newEpoch, tr.Batches(), rep.meta.Source)
	// The caller (holding rep.mu) forgets the map entry and seeds this
	// shard's own followers once the lock is released — the lock
	// discipline forbids touching r.mu from here.
	return nil
}

// reconcileStartup checks, once per boot, whether any locally served
// topic was promoted elsewhere while this shard was down (the restarted-
// zombie case): if a live replica-set peer serves the topic at a higher
// epoch, the local copy is fenced immediately instead of waiting to be
// fenced on its next ship.
func (r *replicator) reconcileStartup() {
	s := r.s
	s.mu.RLock()
	topics := make([]*topic, 0, len(s.topics))
	for _, tp := range s.topics {
		topics = append(topics, tp)
	}
	s.mu.RUnlock()
	for _, tp := range topics {
		select {
		case <-r.stop:
			return
		default:
		}
		epoch := tp.eng().Epoch()
		for _, peer := range r.s.cluster.ring.ReplicaSet(tp.name, len(r.s.cluster.ring.Peers())) {
			if peer == s.cluster.self {
				continue
			}
			if s.targetHasTopic(peer, tp.name, epoch+1) {
				tp.mu.Lock()
				if !tp.deleted {
					s.logf("topic %q was re-homed to %s while this shard was down; demoting local copy", tp.name, peer)
					s.fenceLocal(tp, epoch, peer)
				}
				tp.mu.Unlock()
				break
			}
		}
	}
}

// ——— rebalancer ———

// rebalanceLoop periodically converges this shard's held topics onto the
// ring: topics whose ring owner is a different live peer are handed off
// through the ordinary move path. Because placement is a consistent hash,
// the plan is exactly the minimal remap for whatever peers died or
// returned — topics still mapping here never move.
func (r *replicator) rebalanceLoop() {
	t := time.NewTicker(r.opts.RebalanceInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
		}
		r.rebalanceOnce()
	}
}

func (r *replicator) rebalanceOnce() {
	s := r.s
	s.mu.RLock()
	held := make([]string, 0, len(s.topics))
	for name := range s.topics {
		held = append(held, name)
	}
	s.mu.RUnlock()
	plan := cluster.PlanRebalance(s.cluster.ring, s.cluster.self, held, func(p string) bool {
		return !r.det.Down(p)
	})
	for _, mv := range plan {
		select {
		case <-r.stop:
			return
		default:
		}
		s.mu.RLock()
		tp := s.topics[mv.Topic]
		s.mu.RUnlock()
		if tp == nil {
			continue
		}
		resp, _, _, err := s.performHandoff(tp, mv.To)
		if err != nil {
			s.logf("rebalance %q to %s: %v", mv.Topic, mv.To, err)
			continue
		}
		s.logf("rebalanced %q to its ring owner %s at epoch %d", mv.Topic, mv.To, resp.Epoch)
	}
}

// ——— health ———

// replicationHealth is the healthz view of this shard's replication
// state: its own factor, the peers it currently considers down, the cold
// replicas it holds, and the per-follower shipping lag of the topics it
// serves (behind = primary batches − follower batches; a synced follower
// is at 0).
type replicationHealth struct {
	Factor    int              `json:"factor"`
	Replicas  int              `json:"replicas"`
	DownPeers []string         `json:"down_peers,omitempty"`
	Lag       []replicaLagJSON `json:"lag,omitempty"`
}

type replicaLagJSON struct {
	Topic  string `json:"topic"`
	Peer   string `json:"peer"`
	Behind int    `json:"behind"`
	Synced bool   `json:"synced"`
}

func (r *replicator) health() *replicationHealth {
	h := &replicationHealth{Factor: r.opts.Factor, DownPeers: r.det.DownPeers()}
	s := r.s
	s.mu.RLock()
	batches := make(map[string]int, len(s.topics))
	for name, tp := range s.topics {
		batches[name] = tp.eng().Batches()
	}
	s.mu.RUnlock()
	r.mu.Lock()
	h.Replicas = len(r.replicas)
	for name, cur := range batches {
		for peer, st := range r.followers[name] {
			behind := cur - st.batches
			if behind < 0 {
				behind = 0
			}
			h.Lag = append(h.Lag, replicaLagJSON{Topic: name, Peer: peer, Behind: behind, Synced: st.synced})
		}
	}
	r.mu.Unlock()
	return h
}
