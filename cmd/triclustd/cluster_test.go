package main

// The cluster test harness: several complete shards — full daemons with
// their own data directories — run in one process behind httptest
// listeners, so `go test -race` observes every cross-shard interaction.
// Each listener fronts a switchable handler, which is how the harness
// "kills" a shard: the handler is swapped out (new requests answer 503),
// in-flight requests are drained, and a fresh server is booted from the
// shard's data directory — exactly a process crash plus restart, minus
// the port juggling.
//
// The headline test drives 50+ topics of mixed batch/read/snapshot
// traffic from concurrent clients, kills and restarts a shard mid-stream,
// moves topics between shards mid-stream, and then holds the cluster to
// the determinism bar of PRs 3–4: every topic's final snapshot must be
// byte-identical to a single-process control run fed the same batches.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triclust"
	"triclust/internal/cluster"
)

// shardHandler is the switchable front of one shard. kill() swaps the
// handler out and waits for in-flight requests to drain, so the old
// server object is quiescent before a restarted one opens the same data
// directory.
type shardHandler struct {
	mu sync.RWMutex
	h  http.Handler
	wg sync.WaitGroup
}

func (sh *shardHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.mu.RLock()
	h := sh.h
	if h != nil {
		sh.wg.Add(1)
	}
	sh.mu.RUnlock()
	if h == nil {
		writeError(w, http.StatusServiceUnavailable, "shard_down", fmt.Errorf("shard is down"))
		return
	}
	defer sh.wg.Done()
	h.ServeHTTP(w, r)
}

func (sh *shardHandler) kill() {
	sh.mu.Lock()
	sh.h = nil
	sh.mu.Unlock()
	sh.wg.Wait()
}

func (sh *shardHandler) swap(h http.Handler) {
	sh.mu.Lock()
	sh.h = h
	sh.mu.Unlock()
}

type testShard struct {
	dir string
	hs  *httptest.Server
	sh  *shardHandler
	srv *server
}

type testCluster struct {
	t      *testing.T
	shards []*testShard
	peers  []string
	opts   serverOptions // journal/maxBody template; cluster filled per shard
	proxy  bool
	vnodes int
	ring   *cluster.Ring
	// client follows redirects (the default Go behavior), so harness
	// traffic lands on the owning shard no matter which shard it asks.
	client *http.Client
	// noRedirect surfaces 307s for asserting on routing itself.
	noRedirect *http.Client
}

// newTestCluster boots n shards with fresh data directories. persistent
// false runs the cluster fully in memory (no -data-dir).
func newTestCluster(t *testing.T, n int, opts serverOptions, proxy, persistent bool) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:      t,
		opts:   opts,
		proxy:  proxy,
		vnodes: 32,
		client: &http.Client{Timeout: 60 * time.Second},
		noRedirect: &http.Client{
			Timeout: 60 * time.Second,
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
	// The ring needs every peer URL, and httptest assigns URLs at listener
	// start — so start all listeners on placeholder handlers first, then
	// boot the servers against the complete peer list.
	for i := 0; i < n; i++ {
		sh := &shardHandler{}
		hs := httptest.NewServer(sh)
		t.Cleanup(hs.Close)
		dir := ""
		if persistent {
			dir = t.TempDir()
		}
		tc.shards = append(tc.shards, &testShard{dir: dir, hs: hs, sh: sh})
		tc.peers = append(tc.peers, hs.URL)
	}
	ring, err := cluster.New(tc.peers, tc.vnodes)
	if err != nil {
		t.Fatalf("ring: %v", err)
	}
	tc.ring = ring
	for i := range tc.shards {
		tc.boot(i)
	}
	return tc
}

// boot (re)starts shard i's server from its data directory and swaps it
// live.
func (tc *testCluster) boot(i int) {
	tc.t.Helper()
	sd := tc.shards[i]
	cc, err := newClusterConfig(sd.hs.URL, strings.Join(tc.peers, ","), tc.vnodes, tc.proxy)
	if err != nil {
		tc.t.Fatalf("shard %d cluster config: %v", i, err)
	}
	opts := tc.opts
	opts.cluster = cc
	s, err := newServer(sd.dir, opts, tc.t.Logf)
	if err != nil {
		tc.t.Fatalf("shard %d boot: %v", i, err)
	}
	s.start()
	tc.t.Cleanup(func() { _ = s.Close() })
	sd.srv = s
	sd.sh.swap(s)
	tc.awaitReady(i)
}

// killShard takes shard i down for good: the listener answers 503, the
// in-flight requests drain, and the server object — detector, resync
// worker, replica handles — is shut down. Unlike kill()+boot(), nothing
// comes back: this is the process death the failover machinery exists
// for.
func (tc *testCluster) killShard(i int) {
	tc.shards[i].sh.kill()
	if srv := tc.shards[i].srv; srv != nil {
		_ = srv.Close()
	}
}

// awaitReady polls the shard's /v1/healthz until it answers — the
// readiness gate the healthz endpoint exists for.
func (tc *testCluster) awaitReady(i int) {
	tc.t.Helper()
	url := tc.shards[i].hs.URL + "/v1/healthz"
	for attempt := 0; attempt < 200; attempt++ {
		var hr healthResponse
		code, err := doJSON(tc.client, "GET", url, nil, &hr)
		if err == nil && code == http.StatusOK && hr.Status == "ok" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	tc.t.Fatalf("shard %d never became healthy", i)
}

// url returns shard i's base URL.
func (tc *testCluster) url(i int) string { return tc.shards[i].hs.URL }

// ownerIdx resolves the ring owner of a topic to a shard index.
func (tc *testCluster) ownerIdx(topic string) int {
	owner := tc.ring.Owner(topic)
	for i, p := range tc.peers {
		if p == owner {
			return i
		}
	}
	tc.t.Fatalf("owner %q of %q not a peer", owner, topic)
	return -1
}

// ——— deterministic workload ———

const (
	harnessTopics = 54
	harnessDays   = 10
	harnessUsers  = 5
)

func harnessTopicName(i int) string { return fmt.Sprintf("t%02d", i) }

func harnessCreateReq(i int) createTopicRequest {
	users := make([]string, harnessUsers)
	for u := range users {
		users[u] = fmt.Sprintf("u%d", u)
	}
	return createTopicRequest{
		Name:  harnessTopicName(i),
		Users: users,
		Options: topicOptions{
			MaxIter: 4,
			Seed:    int64(100 + i),
			MinDF:   1,
		},
	}
}

// harnessBatch builds topic i's batch for a given day: small, non-empty,
// deterministic, with enough word overlap for the solver to have signal.
func harnessBatch(i, day int) batchRequest {
	word := func(k int) string { return fmt.Sprintf("w%d", ((k%11)+11)%11) }
	n := 3 + (i+day)%3
	tweets := make([]tweetSpec, 0, n)
	for j := 0; j < n; j++ {
		tweets = append(tweets, tweetSpec{
			Tokens: []string{word(i + j), word(day + 2*j), word(i*day + j)},
			User:   (i + day + j) % harnessUsers,
		})
	}
	return batchRequest{Time: day, Tweets: tweets}
}

// specTweets mirrors processBatch's wire→solver conversion, so the
// control run feeds its topics exactly the tweets the daemon fed its own.
func specTweets(req batchRequest) []triclust.Tweet {
	out := make([]triclust.Tweet, 0, len(req.Tweets))
	for _, ts := range req.Tweets {
		tw := triclust.Tweet{
			Text:      ts.Text,
			Tokens:    ts.Tokens,
			User:      ts.User,
			Time:      req.Time,
			RetweetOf: -1,
			Label:     triclust.NoLabel,
		}
		if ts.Time != nil {
			tw.Time = *ts.Time
		}
		if ts.RetweetOf != nil {
			tw.RetweetOf = *ts.RetweetOf
		}
		out = append(out, tw)
	}
	return out
}

// controlTopic mirrors createTopic's request→Topic construction.
func controlTopic(t *testing.T, req createTopicRequest) *triclust.Topic {
	t.Helper()
	users := make([]triclust.User, len(req.Users))
	for i, name := range req.Users {
		users[i] = triclust.User{Name: name, Label: triclust.NoLabel}
	}
	tp, err := triclust.NewTopic(users,
		triclust.WithSolverConfig(req.Options.onlineConfig()),
		triclust.WithMinDF(req.Options.MinDF),
		triclust.WithLexiconHit(req.Options.LexiconHit))
	if err != nil {
		t.Fatalf("control topic %s: %v", req.Name, err)
	}
	return tp
}

// retryJSON keeps issuing one request until it yields wantCode, riding
// out shard kills (503), routing races around a mid-stream move (404,
// redirect-cap errors) and the restart window. It fails the test after
// ~6s of refusals.
func (tc *testCluster) retryJSON(method, url string, body, out any, wantCode int) {
	tc.t.Helper()
	var lastCode int
	var lastErr error
	for attempt := 0; attempt < 600; attempt++ {
		code, err := doJSON(tc.client, method, url, body, out)
		if err == nil && code == wantCode {
			return
		}
		lastCode, lastErr = code, err
		time.Sleep(10 * time.Millisecond)
	}
	tc.t.Fatalf("%s %s never returned %d (last: %d, %v)", method, url, wantCode, lastCode, lastErr)
}

// TestClusterShardingEndToEnd is the acceptance test of the sharded
// daemon (ISSUE 5): 3 persistent shards, 54 topics of concurrent mixed
// traffic, one shard killed and restarted mid-stream, two topics moved
// between shards mid-stream — and every topic's final snapshot
// byte-identical to a single-process control run.
func TestClusterShardingEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster harness is not short")
	}
	// Journal every 4 batches so the kill lands between compactions and
	// restart has a journal tail to replay. The conformance gate runs in
	// enforce mode: the harness stream is well-formed, so any rejection
	// is a false quarantine — and the control comparison below proves
	// enforce leaves snapshots byte-identical to an ungated run.
	tc := newTestCluster(t, 3, serverOptions{
		journal: journalOptions{Every: 4, MaxBytes: 8 << 20},
		conform: triclust.ConformEnforce,
	}, false, true)

	// Create every topic through a rotating shard: roughly two thirds of
	// the creates arrive at the wrong shard and must be routed.
	for i := 0; i < harnessTopics; i++ {
		var sum topicSummary
		tc.retryJSON("POST", tc.url(i%3)+"/v1/topics", harnessCreateReq(i), &sum, http.StatusCreated)
		if sum.Name != harnessTopicName(i) {
			t.Fatalf("create %d: summary %+v", i, sum)
		}
	}

	// Pick the two topics to move mid-stream: one off shard 0, one off
	// shard 2 (the kill/restart victim is shard 1, so the moves exercise
	// healthy shards while the cluster as a whole is still degraded).
	moveA, moveB := -1, -1
	for i := 0; i < harnessTopics; i++ {
		name := harnessTopicName(i)
		if moveA == -1 && tc.ownerIdx(name) == 0 {
			moveA = i
		} else if moveB == -1 && tc.ownerIdx(name) == 2 {
			moveB = i
		}
	}
	if moveA == -1 || moveB == -1 {
		t.Fatalf("ring left a shard empty (moveA=%d moveB=%d)", moveA, moveB)
	}

	// Drive all topics concurrently: each worker owns a disjoint set of
	// topics (per-topic batch times must strictly increase), and mixes
	// reads and snapshot downloads into the batch stream.
	var acked atomic.Int64
	total := int64(harnessTopics * harnessDays)
	var wg sync.WaitGroup
	const workers = 6
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for day := 1; day <= harnessDays; day++ {
				for i := w; i < harnessTopics; i += workers {
					name := harnessTopicName(i)
					base := tc.url((i + day) % 3) // deliberately often the wrong shard
					var br batchResponse
					tc.retryJSON("POST", base+"/v1/topics/"+name+"/batches", harnessBatch(i, day), &br, http.StatusOK)
					if br.Skipped {
						t.Errorf("topic %s day %d skipped", name, day)
						return
					}
					acked.Add(1)
					// Mixed read traffic: user estimates, feature
					// sentiments, a topic summary, and a mid-stream
					// snapshot download.
					switch (i + day) % 4 {
					case 0:
						// The first tweet of the batch just acked came from
						// user (i+day)%harnessUsers, so that user has history.
						u := (i + day) % harnessUsers
						var ue userSentimentJSON
						tc.retryJSON("GET", fmt.Sprintf("%s/v1/topics/%s/users/%d", base, name, u), nil, &ue, http.StatusOK)
					case 1:
						var fr featuresResponse
						tc.retryJSON("GET", base+"/v1/topics/"+name+"/features", nil, &fr, http.StatusOK)
					case 2:
						var sum topicSummary
						tc.retryJSON("GET", base+"/v1/topics/"+name, nil, &sum, http.StatusOK)
					case 3:
						resp, err := tc.client.Get(base + "/v1/topics/" + name + "/snapshot")
						if err == nil {
							resp.Body.Close()
						}
					}
				}
			}
		}(w)
	}

	// Mid-stream chaos, phase 1: kill shard 1 abruptly (no graceful
	// drain beyond in-flight requests) once ~30% of batches are acked,
	// then restart it from its data directory — snapshot load plus
	// journal-tail replay.
	waitAcked := func(frac float64) {
		t.Helper()
		want := int64(frac * float64(total))
		for i := 0; i < 3000 && acked.Load() < want; i++ {
			time.Sleep(5 * time.Millisecond)
		}
		if acked.Load() < want {
			t.Fatalf("stream stalled at %d/%d acked batches", acked.Load(), total)
		}
	}
	waitAcked(0.3)
	tc.shards[1].sh.kill()
	time.Sleep(30 * time.Millisecond) // let some traffic hit the dead shard
	tc.boot(1)

	// Phase 2: once ~60% of batches are acked, rebalance two topics while
	// their streams are still running.
	waitAcked(0.6)
	var mvResp moveResponse
	tc.retryJSON("POST", tc.url(1)+"/v1/cluster/move", // deliberately not the source: the move routes
		moveRequest{Topic: harnessTopicName(moveA), Target: tc.url(2)}, &mvResp, http.StatusOK)
	if mvResp.Epoch != 1 || mvResp.Target != tc.url(2) {
		t.Fatalf("move A response %+v", mvResp)
	}
	tc.retryJSON("POST", tc.url(2)+"/v1/cluster/move",
		moveRequest{Topic: harnessTopicName(moveB), Target: tc.url(0)}, &mvResp, http.StatusOK)
	if mvResp.Epoch != 1 || mvResp.Target != tc.url(0) {
		t.Fatalf("move B response %+v", mvResp)
	}

	wg.Wait()
	if t.Failed() {
		return
	}
	if got := acked.Load(); got != total {
		t.Fatalf("acked %d of %d batches", got, total)
	}

	// The old owner of a moved topic answers 307 with the new owner in
	// X-Triclust-Shard — across a restart of that shard, too, since the
	// tombstone is persisted.
	req, err := http.NewRequest("GET", tc.url(0)+"/v1/topics/"+harnessTopicName(moveA), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tc.noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("old owner answered %d, want 307", resp.StatusCode)
	}
	if got := resp.Header.Get(shardHeader); got != tc.url(2) {
		t.Fatalf("X-Triclust-Shard %q, want %q", got, tc.url(2))
	}

	// The determinism bar: every topic's snapshot — fetched through the
	// cluster, after a kill/restart and two mid-stream moves — must be
	// byte-identical to a single-process control run of the same batches.
	// Moved topics carry epoch 1 (one hand-off); the control topic is
	// stamped to match, making the comparison exact, not epoch-modulo.
	for i := 0; i < harnessTopics; i++ {
		name := harnessTopicName(i)
		got := fetchSnapshot(t, tc.client, tc.url(i%3)+"/v1/topics/"+name+"/snapshot")

		wantEpoch := uint64(0)
		if i == moveA || i == moveB {
			wantEpoch = 1
		}
		rt, err := triclust.Restore(bytes.NewReader(got))
		if err != nil {
			t.Fatalf("cluster snapshot of %s does not restore: %v", name, err)
		}
		if rt.Epoch() != wantEpoch {
			t.Fatalf("topic %s epoch %d, want %d", name, rt.Epoch(), wantEpoch)
		}

		ctl := controlTopic(t, harnessCreateReq(i))
		for day := 1; day <= harnessDays; day++ {
			if _, err := ctl.Process(day, specTweets(harnessBatch(i, day))); err != nil {
				t.Fatalf("control %s day %d: %v", name, day, err)
			}
		}
		ctl.SetEpoch(wantEpoch)
		var want bytes.Buffer
		if err := ctl.Snapshot(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("topic %s: cluster snapshot (%d bytes) differs from single-process control (%d bytes)",
				name, len(got), want.Len())
		}
	}

	// Every shard is still healthy and no startup quarantined anything.
	for i := range tc.shards {
		var hr healthResponse
		code, err := doJSON(tc.client, "GET", tc.url(i)+"/v1/healthz", nil, &hr)
		if err != nil || code != http.StatusOK {
			t.Fatalf("healthz shard %d: %d %v", i, code, err)
		}
		if hr.Quarantined != 0 {
			t.Fatalf("shard %d quarantined %d files", i, hr.Quarantined)
		}
		if hr.Cluster == nil || hr.Cluster.Self != tc.url(i) {
			t.Fatalf("shard %d cluster health %+v", i, hr.Cluster)
		}
	}
}

// TestClusterProxyMode runs the cluster with -cluster-proxy: a client
// that never follows redirects still gets its requests answered, because
// the wrong shard forwards them transparently and stamps X-Triclust-Shard
// with the shard that really served them.
func TestClusterProxyMode(t *testing.T) {
	tc := newTestCluster(t, 3, serverOptions{journal: journalOptions{Every: 1}}, true, false)
	name := harnessTopicName(0)
	owner := tc.ownerIdx(name)
	wrong := (owner + 1) % 3

	var sum topicSummary
	code, err := doJSON(tc.noRedirect, "POST", tc.url(wrong)+"/v1/topics", harnessCreateReq(0), &sum)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("proxied create: %d %v", code, err)
	}
	var br batchResponse
	code, err = doJSON(tc.noRedirect, "POST", tc.url(wrong)+"/v1/topics/"+name+"/batches", harnessBatch(0, 1), &br)
	if err != nil || code != http.StatusOK || br.Skipped {
		t.Fatalf("proxied batch: %d %v %+v", code, err, br)
	}
	// The proxied response names the shard that served it.
	req, err := http.NewRequest("GET", tc.url(wrong)+"/v1/topics/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tc.noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied info: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(shardHeader); got != tc.url(owner) {
		t.Fatalf("X-Triclust-Shard %q, want %q", got, tc.url(owner))
	}
	// Binary downloads proxy too.
	data := fetchSnapshot(t, tc.noRedirect, tc.url(wrong)+"/v1/topics/"+name+"/snapshot")
	if _, err := triclust.Restore(bytes.NewReader(data)); err != nil {
		t.Fatalf("proxied snapshot does not restore: %v", err)
	}
	// A request the owner itself serves carries no forwarding.
	code, err = doJSON(tc.noRedirect, "GET", tc.url(owner)+"/v1/topics/"+name, nil, &sum)
	if err != nil || code != http.StatusOK {
		t.Fatalf("direct info: %d %v", code, err)
	}

	// Two-hop proxying: move the topic off its ring owner, then ask the
	// third shard — the request proxies third → ring owner (tombstone) →
	// current holder, which the loop guard must allow (the path is
	// acyclic; only genuine cycles are 502s).
	dst := (owner + 2) % 3
	third := 3 - owner - dst
	var mv moveResponse
	code, err = doJSON(tc.noRedirect, "POST", tc.url(owner)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: tc.url(dst)}, &mv)
	if err != nil || code != http.StatusOK || mv.Epoch != 1 {
		t.Fatalf("proxy-mode move: %d %v %+v", code, err, mv)
	}
	code, err = doJSON(tc.noRedirect, "POST", tc.url(third)+"/v1/topics/"+name+"/batches", harnessBatch(0, 2), &br)
	if err != nil || code != http.StatusOK || br.Skipped {
		t.Fatalf("two-hop proxied batch: %d %v %+v", code, err, br)
	}
	code, err = doJSON(tc.noRedirect, "GET", tc.url(third)+"/v1/topics/"+name, nil, &sum)
	if err != nil || code != http.StatusOK || sum.Batches != 2 {
		t.Fatalf("two-hop proxied info: %d %v %+v", code, err, sum)
	}
}

// TestClusterMoveAndEpochFencing covers the ownership-epoch state machine
// on an in-memory cluster (moves work without -data-dir): a move bumps
// the epoch, the source redirects from then on, a stale pre-move snapshot
// is fenced with epoch_mismatch, and a second move hands the topic back
// at epoch 2.
func TestClusterMoveAndEpochFencing(t *testing.T) {
	tc := newTestCluster(t, 3, serverOptions{}, false, false)
	name := harnessTopicName(7)
	src := tc.ownerIdx(name)
	dst := (src + 1) % 3

	var sum topicSummary
	tc.retryJSON("POST", tc.url(src)+"/v1/topics", harnessCreateReq(7), &sum, http.StatusCreated)
	for day := 1; day <= 3; day++ {
		var br batchResponse
		tc.retryJSON("POST", tc.url(src)+"/v1/topics/"+name+"/batches", harnessBatch(7, day), &br, http.StatusOK)
	}
	stale := fetchSnapshot(t, tc.client, tc.url(src)+"/v1/topics/"+name+"/snapshot")

	var mv moveResponse
	code, err := doJSON(tc.client, "POST", tc.url(src)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: tc.url(dst)}, &mv)
	if err != nil || code != http.StatusOK {
		t.Fatalf("move: %d %v", code, err)
	}
	if mv.Epoch != 1 || mv.Source != tc.url(src) || mv.Target != tc.url(dst) || mv.Batches != 3 {
		t.Fatalf("move response %+v", mv)
	}

	// The source now refuses the topic: writes 307 to the target.
	req, err := http.NewRequest("GET", tc.url(src)+"/v1/topics/"+name, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tc.noRedirect.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect || resp.Header.Get(shardHeader) != tc.url(dst) {
		t.Fatalf("source answered %d shard=%q", resp.StatusCode, resp.Header.Get(shardHeader))
	}

	// The target serves it, at epoch 1, and the stream continues.
	var br batchResponse
	tc.retryJSON("POST", tc.url(dst)+"/v1/topics/"+name+"/batches", harnessBatch(7, 4), &br, http.StatusOK)
	var info clusterInfoResponse
	tc.retryJSON("GET", tc.url(dst)+"/v1/cluster/info?topic="+name, nil, &info, http.StatusOK)
	if info.Topic == nil || !info.Topic.Local || info.Topic.Epoch != 1 {
		t.Fatalf("target placement %+v", info.Topic)
	}

	// Epoch fencing: installing the stale pre-move snapshot (epoch 0) on
	// the source — even through the hand-off path — is refused.
	preq, err := http.NewRequest(http.MethodPut, tc.url(src)+"/v1/topics/"+name, bytes.NewReader(stale))
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set(handoffHeader, "1")
	presp, err := tc.noRedirect.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := json.NewDecoder(presp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusConflict || eb.Error.Code != codeEpochMismatch {
		t.Fatalf("stale restore: %d %q, want 409 %q", presp.StatusCode, eb.Error.Code, codeEpochMismatch)
	}

	// Moving the topic again is rejected at the source (it moved on) but
	// succeeds at the current owner, handing it home at epoch 2 — which
	// clears the source's tombstone.
	code, _ = errCode2(t, tc.noRedirect, "POST", tc.url(src)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: tc.url(dst)})
	if code != http.StatusTemporaryRedirect && code != http.StatusConflict {
		t.Fatalf("re-move at source: %d", code)
	}
	code, err = doJSON(tc.client, "POST", tc.url(dst)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: tc.url(src)}, &mv)
	if err != nil || code != http.StatusOK || mv.Epoch != 2 {
		t.Fatalf("move back: %d %v %+v", code, err, mv)
	}
	tc.retryJSON("POST", tc.url(src)+"/v1/topics/"+name+"/batches", harnessBatch(7, 5), &br, http.StatusOK)
	tc.retryJSON("GET", tc.url(src)+"/v1/cluster/info?topic="+name, nil, &info, http.StatusOK)
	if info.Topic == nil || !info.Topic.Local || info.Topic.Epoch != 2 {
		t.Fatalf("after move back: %+v", info.Topic)
	}

	// Validation errors on the move endpoint itself.
	code, ec := errCode2(t, tc.client, "POST", tc.url(src)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: "http://not-a-peer:1"})
	if code != http.StatusBadRequest || ec != codeUnknownPeer {
		t.Fatalf("bad target: %d %q", code, ec)
	}
	code, ec = errCode2(t, tc.client, "POST", tc.url(src)+"/v1/cluster/move",
		moveRequest{Topic: "no-such-topic", Target: tc.url(dst)})
	if code != http.StatusNotFound || ec != codeTopicNotFound {
		t.Fatalf("missing topic: %d %q", code, ec)
	}
	code, ec = errCode2(t, tc.client, "POST", tc.url(src)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: tc.url(src)})
	if code != http.StatusBadRequest || ec != codeInvalidRequest {
		t.Fatalf("move onto self: %d %q", code, ec)
	}
}

// errCode2 is errCode for clients that must not follow redirects (the
// original helper decodes the response body, which a 307 does not have).
func errCode2(t *testing.T, client *http.Client, method, url string, body any) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var eb errorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	return resp.StatusCode, eb.Error.Code
}

// TestClusterDeleteRacingMove drives the satellite error path head-on: a
// DELETE and a stream of batches race an in-flight move. Whatever the
// interleaving, every request must resolve to a well-defined outcome (no
// hangs, no panics, no wedged topic lock) and the cluster must end in a
// consistent state: the topic either gone everywhere or served by exactly
// one shard.
func TestClusterDeleteRacingMove(t *testing.T) {
	for round := 0; round < 3; round++ {
		tc := newTestCluster(t, 3, serverOptions{journal: journalOptions{Every: 2, MaxBytes: 8 << 20}}, false, true)
		name := harnessTopicName(9)
		src := tc.ownerIdx(name)
		dst := (src + 1) % 3
		tc.retryJSON("POST", tc.url(src)+"/v1/topics", harnessCreateReq(9), nil, http.StatusCreated)
		for day := 1; day <= 2; day++ {
			tc.retryJSON("POST", tc.url(src)+"/v1/topics/"+name+"/batches", harnessBatch(9, day), nil, http.StatusOK)
		}

		var wg sync.WaitGroup
		wg.Add(3)
		go func() { // the move
			defer wg.Done()
			code, err := doJSON(tc.client, "POST", tc.url(src)+"/v1/cluster/move",
				moveRequest{Topic: name, Target: tc.url(dst)}, nil)
			if err != nil {
				t.Errorf("move errored transport-level: %v", err)
				return
			}
			switch code {
			case http.StatusOK, http.StatusNotFound, http.StatusConflict, http.StatusBadGateway:
			default:
				t.Errorf("move answered %d", code)
			}
		}()
		go func() { // the delete
			defer wg.Done()
			time.Sleep(time.Duration(round) * 2 * time.Millisecond)
			code, err := doJSON(tc.client, "DELETE", tc.url(src)+"/v1/topics/"+name, nil, nil)
			if err != nil {
				// A DELETE that raced the move may be redirected to the
				// target mid-hand-off and see a transient error; transport
				// errors (redirect cap) are acceptable outcomes here.
				return
			}
			switch code {
			case http.StatusNoContent, http.StatusNotFound, http.StatusServiceUnavailable, http.StatusBadGateway:
			default:
				t.Errorf("delete answered %d", code)
			}
		}()
		go func() { // the batch stream
			defer wg.Done()
			for day := 3; day <= 6; day++ {
				code, err := doJSON(tc.client, "POST", tc.url((src+day)%3)+"/v1/topics/"+name+"/batches",
					harnessBatch(9, day), nil)
				if err != nil {
					continue // redirect-cap or connection error mid-race
				}
				switch code {
				case http.StatusOK, http.StatusNotFound, http.StatusConflict, http.StatusBadGateway:
				default:
					t.Errorf("batch day %d answered %d", day, code)
				}
			}
		}()
		wg.Wait()
		if t.Failed() {
			return
		}

		// Converged state: the topic is either gone everywhere or served
		// by exactly one shard — and that shard still accepts a batch.
		serving := -1
		for i := range tc.shards {
			req, err := http.NewRequest("GET", tc.url(i)+"/v1/topics/"+name, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := tc.noRedirect.Do(req)
			if err != nil {
				t.Fatalf("round %d: info on shard %d: %v", round, i, err)
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				if serving != -1 {
					t.Fatalf("round %d: topic served by shards %d and %d", round, serving, i)
				}
				serving = i
			}
		}
		if serving >= 0 {
			var sum topicSummary
			tc.retryJSON("GET", tc.url(src)+"/v1/topics/"+name, nil, &sum, http.StatusOK)
			tc.retryJSON("POST", tc.url(serving)+"/v1/topics/"+name+"/batches",
				batchRequest{Time: 100 + round, Tweets: harnessBatch(9, 7).Tweets}, nil, http.StatusOK)
		}
	}
}

// TestClusterInterruptedHandoffResume simulates a shard that crashed
// between fencing a topic (tombstone written) and installing it on the
// target: after restart the source refuses the topic's writes but keeps
// the snapshot, and retrying the move completes the hand-off.
func TestClusterInterruptedHandoffResume(t *testing.T) {
	tc := newTestCluster(t, 3, serverOptions{journal: journalOptions{Every: 4, MaxBytes: 8 << 20}}, false, true)
	name := harnessTopicName(3)
	src := tc.ownerIdx(name)
	dst := (src + 2) % 3
	tc.retryJSON("POST", tc.url(src)+"/v1/topics", harnessCreateReq(3), nil, http.StatusCreated)
	for day := 1; day <= 5; day++ {
		tc.retryJSON("POST", tc.url(src)+"/v1/topics/"+name+"/batches", harnessBatch(3, day), nil, http.StatusOK)
	}

	// Crash mid-hand-off: kill the shard, then write the fencing
	// tombstone exactly as moveTopic would have just before its PUT.
	tc.shards[src].sh.kill()
	if err := cluster.WriteTombstone(nil, tc.shards[src].dir, name, cluster.Tombstone{Epoch: 1, Target: tc.url(dst)}); err != nil {
		t.Fatal(err)
	}
	tc.boot(src)

	// The restarted source fences the topic: it is not served locally.
	code, _ := errCode2(t, tc.noRedirect, "GET", tc.url(src)+"/v1/topics/"+name, nil)
	if code != http.StatusTemporaryRedirect {
		t.Fatalf("fenced topic answered %d at the source, want 307", code)
	}
	var hr healthResponse
	tc.retryJSON("GET", tc.url(src)+"/v1/healthz", nil, &hr, http.StatusOK)
	if hr.Cluster == nil || hr.Cluster.MovedTopics != 1 {
		t.Fatalf("healthz after fenced restart: %+v", hr.Cluster)
	}

	// Retrying the move completes the installation from the on-disk
	// snapshot, at the fencing epoch.
	var mv moveResponse
	tc.retryJSON("POST", tc.url(src)+"/v1/cluster/move",
		moveRequest{Topic: name, Target: tc.url(dst)}, &mv, http.StatusOK)
	if !mv.Resumed || mv.Epoch != 1 || mv.Batches != 5 {
		t.Fatalf("resume response %+v", mv)
	}

	// The target serves the full pre-crash history and the stream
	// continues where it stopped.
	var sum topicSummary
	tc.retryJSON("GET", tc.url(src)+"/v1/topics/"+name, nil, &sum, http.StatusOK)
	if sum.Batches != 5 {
		t.Fatalf("resumed topic has %d batches, want 5", sum.Batches)
	}
	tc.retryJSON("POST", tc.url(dst)+"/v1/topics/"+name+"/batches", harnessBatch(3, 6), nil, http.StatusOK)
	var info clusterInfoResponse
	tc.retryJSON("GET", tc.url(dst)+"/v1/cluster/info?topic="+name, nil, &info, http.StatusOK)
	if info.Topic == nil || !info.Topic.Local || info.Topic.Epoch != 1 {
		t.Fatalf("placement after resume %+v", info.Topic)
	}
}

// TestMoveRequiresClusterMode pins the single-process behavior of the
// cluster endpoints: clean structured errors, not 404s.
func TestMoveRequiresClusterMode(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	code, ec := errCode(t, client, "POST", srv.URL+"/v1/cluster/move", moveRequest{Topic: "x", Target: "y"})
	if code != http.StatusConflict || ec != codeNotClustered {
		t.Fatalf("move without cluster: %d %q", code, ec)
	}
	code, ec = errCode(t, client, "GET", srv.URL+"/v1/cluster/info", nil)
	if code != http.StatusConflict || ec != codeNotClustered {
		t.Fatalf("info without cluster: %d %q", code, ec)
	}
}
