package main

// Wire-format contract tests for the content-negotiated batch protocol:
// the binary and JSON request formats must be semantically identical
// (same solver stream, byte-identical snapshots, same ETags), Content-
// Type must be enforced on every body-carrying endpoint, and a body in
// either format that fails to decode must change no state.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"triclust/internal/codec"
)

// doRaw issues one request with an explicit body, Content-Type, and
// Accept, returning the status, the response body, and the response
// Content-Type.
func doRaw(t *testing.T, client *http.Client, method, url, contentType, accept string, body []byte) (int, []byte, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data, resp.Header.Get("Content-Type")
}

// rawErrCode extracts the stable error code from an error response body.
func rawErrCode(t *testing.T, body []byte) string {
	t.Helper()
	var eb errorBody
	if err := decodeStrict(body, &eb); err != nil {
		t.Fatalf("error body %q does not decode: %v", body, err)
	}
	return eb.Error.Code
}

// binaryBatchBody frames one harness batch in the binary wire format,
// via the same wire→solver conversion the JSON path applies.
func binaryBatchBody(t *testing.T, req batchRequest) []byte {
	t.Helper()
	body, err := codec.EncodeBatchRequest(req.Time, specTweets(req))
	if err != nil {
		t.Fatalf("encode batch frame: %v", err)
	}
	return body
}

// TestVocabStrictDecode is the regression test for the lenient-decoding
// bug: warmupVocab used a streaming json.Decoder that read one value and
// silently ignored trailing garbage. Every JSON endpoint must reject a
// body that is not exactly one JSON value.
func TestVocabStrictDecode(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	_, req := synthTopic(t, 1)
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	url := srv.URL + "/v1/topics/" + req.Name + "/vocab"

	status, body, _ := doRaw(t, client, "POST", url, "application/json", "",
		[]byte(`{"texts":["warm up the vocabulary"]}{"junk":1}`))
	if status != http.StatusBadRequest {
		t.Fatalf("trailing garbage: status %d, want 400", status)
	}
	if code := rawErrCode(t, body); code != codeInvalidRequest {
		t.Fatalf("trailing garbage: code %q, want %q", code, codeInvalidRequest)
	}
	// The rejected body must not have been half-applied: the clean prefix
	// named one text, so an applied half would have grown the vocabulary.
	var sum topicSummary
	if code, err := doJSON(client, "GET", srv.URL+"/v1/topics/"+req.Name, nil, &sum); err != nil || code != http.StatusOK {
		t.Fatalf("summary: %d %v", code, err)
	}
	if sum.VocabSize != 0 {
		t.Fatalf("rejected vocab body leaked %d words into the vocabulary", sum.VocabSize)
	}
	// The same body shape without the garbage is fine.
	status, _, _ = doRaw(t, client, "POST", url, "application/json", "",
		[]byte(`{"texts":["warm up the vocabulary"]}`))
	if status != http.StatusOK {
		t.Fatalf("clean body: status %d, want 200", status)
	}
}

// TestContentTypeEnforcement drives the 415 contract across the
// body-carrying endpoints: absent or the endpoint's own format passes
// (parameters like charset tolerated), anything else is refused with
// unsupported_media_type before any state changes.
func TestContentTypeEnforcement(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	_, req := synthTopic(t, 2)
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	batchJSON := []byte(`{"time":1,"tweets":[{"tokens":["a","b"],"user":0}]}`)
	topicJSON := []byte(`{"name":"ct-probe","users":["u0"],"options":{"max_iter":2,"seed":1,"min_df":1}}`)
	vocabJSON := []byte(`{"texts":["some words"]}`)

	rejected := []struct {
		name, method, url, ct string
		body                  []byte
	}{
		{"batch form-encoded", "POST", "/v1/topics/" + req.Name + "/batches", "application/x-www-form-urlencoded", batchJSON},
		{"batch text", "POST", "/v1/topics/" + req.Name + "/batches", "text/plain", batchJSON},
		{"batch malformed header", "POST", "/v1/topics/" + req.Name + "/batches", "application/", batchJSON},
		{"create binary type", "POST", "/v1/topics", mediaTypeBatch, topicJSON},
		{"vocab octet-stream", "POST", "/v1/topics/" + req.Name + "/vocab", mediaTypeSnapshot, vocabJSON},
		{"restore json type", "PUT", "/v1/topics/restored-ct", mediaTypeJSON, []byte("not a snapshot")},
		{"move binary type", "POST", "/v1/cluster/move", mediaTypeBatch, []byte(`{"topic":"x","target":"y"}`)},
	}
	for _, tc := range rejected {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := doRaw(t, client, tc.method, srv.URL+tc.url, tc.ct, "", tc.body)
			if status != http.StatusUnsupportedMediaType {
				t.Fatalf("status %d, want 415 (body %s)", status, body)
			}
			if code := rawErrCode(t, body); code != codeUnsupportedMediaType {
				t.Fatalf("code %q, want %q", code, codeUnsupportedMediaType)
			}
		})
	}

	accepted := []struct {
		name, ct string
	}{
		{"absent defaults to json", ""},
		{"plain json", "application/json"},
		{"json with charset", "application/json; charset=utf-8"},
	}
	for day, tc := range accepted {
		t.Run(tc.name, func(t *testing.T) {
			body := fmt.Appendf(nil, `{"time":%d,"tweets":[{"tokens":["a","b"],"user":0}]}`, day+1)
			status, respBody, _ := doRaw(t, client, "POST", srv.URL+"/v1/topics/"+req.Name+"/batches", tc.ct, "", body)
			if status != http.StatusOK {
				t.Fatalf("status %d, want 200 (body %s)", status, respBody)
			}
		})
	}

	// The rejected probe create must not have registered its topic.
	if code, errc := errCode(t, client, "GET", srv.URL+"/v1/topics/ct-probe", nil); code != http.StatusNotFound || errc != codeTopicNotFound {
		t.Fatalf("415-rejected create leaked a topic: %d %s", code, errc)
	}
}

// wireTopicETag fetches the topic's current read-plane ETag from the
// features endpoint.
func wireTopicETag(t *testing.T, client *http.Client, base, name string) string {
	t.Helper()
	resp, err := client.Get(base + "/v1/topics/" + name + "/features")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("features: status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("features response has no ETag")
	}
	return etag
}

// TestBatchFormatEquivalence is the pooled-scratch/equivalence bar on a
// single daemon: the same deterministic stream driven (a) all-JSON,
// (b) all-binary, and (c) alternating formats on one topic — batches for
// all three flowing through the same pooled scratch objects — must yield
// byte-identical snapshots and identical read-plane ETags. A stale token
// surviving scratch reuse between formats would desynchronize the solver
// stream and break the byte equality.
func TestBatchFormatEquivalence(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()

	const days = 6
	topics := []struct {
		idx  int
		mode string // json | binary | alternate
	}{{0, "json"}, {1, "binary"}, {2, "alternate"}}

	// All three topics use topic 0's workload (same tweets, same solver
	// config, same seed) under different names, so their final snapshots
	// are comparable after normalizing the name-bearing bytes — which the
	// snapshot format does not include (the name lives in the URL only).
	for _, tc := range topics {
		req := harnessCreateReq(tc.idx)
		req.Name = fmt.Sprintf("eq-%s", tc.mode)
		req.Options = harnessCreateReq(0).Options
		if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
			t.Fatalf("create %s: %d %v", req.Name, code, err)
		}
		url := srv.URL + "/v1/topics/" + req.Name + "/batches"
		for day := 1; day <= days; day++ {
			batch := harnessBatch(0, day)
			useBinary := tc.mode == "binary" || (tc.mode == "alternate" && day%2 == 0)
			if useBinary {
				status, body, _ := doRaw(t, client, "POST", url, mediaTypeBatch, "", binaryBatchBody(t, batch))
				if status != http.StatusOK {
					t.Fatalf("%s day %d binary: status %d (%s)", req.Name, day, status, body)
				}
			} else {
				if code, err := doJSON(client, "POST", url, batch, nil); err != nil || code != http.StatusOK {
					t.Fatalf("%s day %d json: %d %v", req.Name, day, code, err)
				}
			}
		}
	}

	// The control: the same stream run directly against the library.
	ctl := controlTopic(t, harnessCreateReq(0))
	for day := 1; day <= days; day++ {
		if _, err := ctl.Process(day, specTweets(harnessBatch(0, day))); err != nil {
			t.Fatalf("control day %d: %v", day, err)
		}
	}
	var want bytes.Buffer
	if err := ctl.Snapshot(&want); err != nil {
		t.Fatal(err)
	}

	var etags []string
	for _, tc := range topics {
		name := fmt.Sprintf("eq-%s", tc.mode)
		got := fetchSnapshot(t, client, srv.URL+"/v1/topics/"+name+"/snapshot")
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("topic %s: snapshot (%d bytes) differs from the library control (%d bytes)",
				name, len(got), want.Len())
		}
		etags = append(etags, wireTopicETag(t, client, srv.URL, name))
	}
	for i := 1; i < len(etags); i++ {
		if etags[i] != etags[0] {
			t.Fatalf("ETags diverge across formats: %v", etags)
		}
	}
}

// TestBinaryBatchResponseNegotiation checks that an Accept-negotiated
// binary response carries exactly the numbers the JSON response does.
func TestBinaryBatchResponseNegotiation(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()

	for _, name := range []string{"neg-json", "neg-bin"} {
		req := harnessCreateReq(0)
		req.Name = name
		if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
			t.Fatalf("create %s: %d %v", name, code, err)
		}
	}
	batch := harnessBatch(0, 1)
	var jsonResp batchResponse
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/neg-json/batches", batch, &jsonResp); err != nil || code != http.StatusOK {
		t.Fatalf("json batch: %d %v", code, err)
	}
	status, body, respCT := doRaw(t, client, "POST", srv.URL+"/v1/topics/neg-bin/batches",
		mediaTypeBatch, mediaTypeBatch+";q=0.9, application/json;q=0.1", binaryBatchBody(t, batch))
	if status != http.StatusOK {
		t.Fatalf("binary batch: status %d (%s)", status, body)
	}
	if mt, _, _ := strings.Cut(respCT, ";"); strings.TrimSpace(mt) != mediaTypeBatch {
		t.Fatalf("response Content-Type %q, want %q", respCT, mediaTypeBatch)
	}
	res, err := codec.DecodeBatchResponse(body)
	if err != nil {
		t.Fatalf("binary response does not decode: %v", err)
	}
	if res.Time != jsonResp.Time || res.Skipped != jsonResp.Skipped ||
		res.Converged != jsonResp.Converged || res.Iterations != jsonResp.Iterations {
		t.Fatalf("header fields differ: binary %+v vs json %+v", res, jsonResp)
	}
	if len(res.Tweets) != len(jsonResp.Tweets) || len(res.Users) != len(jsonResp.Users) {
		t.Fatalf("cardinality differs: %d/%d tweets, %d/%d users",
			len(res.Tweets), len(jsonResp.Tweets), len(res.Users), len(jsonResp.Users))
	}
	for i, s := range res.Tweets {
		if s.Class != jsonResp.Tweets[i].Class || s.Confidence != jsonResp.Tweets[i].Confidence {
			t.Fatalf("tweet %d sentiment differs: %+v vs %+v", i, s, jsonResp.Tweets[i])
		}
	}
	for i, u := range res.Users {
		j := jsonResp.Users[i]
		if u.User != j.User || u.Class != j.Class || u.Confidence != j.Confidence {
			t.Fatalf("user %d sentiment differs: %+v vs %+v", i, u, j)
		}
	}
	// Errors ignore Accept: they are always JSON, with the stable code.
	status, body, respCT = doRaw(t, client, "POST", srv.URL+"/v1/topics/neg-bin/batches",
		mediaTypeBatch, mediaTypeBatch, binaryBatchBody(t, batch)) // same day again → stale_timestamp
	if status != http.StatusConflict {
		t.Fatalf("stale binary batch: status %d", status)
	}
	if mt, _, _ := strings.Cut(respCT, ";"); strings.TrimSpace(mt) != mediaTypeJSON {
		t.Fatalf("error Content-Type %q, want JSON", respCT)
	}
	if code := rawErrCode(t, body); code != codeStaleTimestamp {
		t.Fatalf("error code %q, want %q", code, codeStaleTimestamp)
	}
}

// TestBinaryBatchCorruptionRejected drives damaged binary frames at a
// live topic: every rejection must be a clean 400 invalid_request with
// no state change — no batch applied, no ETag movement.
func TestBinaryBatchCorruptionRejected(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	req := harnessCreateReq(0)
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	url := srv.URL + "/v1/topics/" + req.Name + "/batches"
	if status, body, _ := doRaw(t, client, "POST", url, mediaTypeBatch, "", binaryBatchBody(t, harnessBatch(0, 1))); status != http.StatusOK {
		t.Fatalf("seed batch: %d (%s)", status, body)
	}
	before := wireTopicETag(t, client, srv.URL, req.Name)

	valid := binaryBatchBody(t, harnessBatch(0, 2))
	damaged := map[string][]byte{
		"truncated":   valid[:len(valid)/2],
		"bit flip":    append([]byte(nil), valid...),
		"empty":       {},
		"wrong magic": []byte("TRICSNAP nonsense"),
	}
	damaged["bit flip"][len(valid)/3] ^= 0x08
	for name, body := range damaged {
		t.Run(name, func(t *testing.T) {
			status, respBody, _ := doRaw(t, client, "POST", url, mediaTypeBatch, "", body)
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", status, respBody)
			}
			if code := rawErrCode(t, respBody); code != codeInvalidRequest {
				t.Fatalf("code %q, want %q", code, codeInvalidRequest)
			}
		})
	}
	if after := wireTopicETag(t, client, srv.URL, req.Name); after != before {
		t.Fatalf("rejected frames moved the read view: %s -> %s", before, after)
	}
	// The stream is intact: the batch the damaged frames failed to carry
	// still applies.
	if status, body, _ := doRaw(t, client, "POST", url, mediaTypeBatch, "", valid); status != http.StatusOK {
		t.Fatalf("follow-up batch: %d (%s)", status, body)
	}
}

// TestClusterWireFormatsEndToEnd is the cluster leg of the equivalence
// bar: interleaved JSON and binary batches driven through transparent
// proxying (every request sent to a rotating, mostly wrong shard) on an
// RF=2 replicated cluster, then — after failing the topics' primaries
// over — every topic's snapshot must still be byte-identical to the
// single-process control. The binary frames must survive forwarding and
// journal-ship replication unchanged for that to hold.
func TestClusterWireFormatsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster harness is not short")
	}
	const (
		topics = 6
		days   = 6
	)
	tc := newTestCluster(t, 3, serverOptions{
		journal: journalOptions{Every: 3, MaxBytes: 8 << 20},
		repl:    fastRepl(nil),
	}, true, true)

	for i := 0; i < topics; i++ {
		var sum topicSummary
		tc.retryJSON("POST", tc.url(i%3)+"/v1/topics", harnessCreateReq(i), &sum, http.StatusCreated)
	}
	for day := 1; day <= days; day++ {
		for i := 0; i < topics; i++ {
			url := tc.url((i+day)%3) + "/v1/topics/" + harnessTopicName(i) + "/batches"
			batch := harnessBatch(i, day)
			if (i+day)%2 == 0 {
				// Binary leg, with a binary-negotiated response, retried the
				// same way retryJSON rides out routing races.
				var lastStatus int
				var lastBody []byte
				ok := false
				for attempt := 0; attempt < 600 && !ok; attempt++ {
					status, body, _ := doRaw(t, tc.client, "POST", url, mediaTypeBatch, mediaTypeBatch, binaryBatchBody(t, batch))
					if status == http.StatusOK {
						if _, err := codec.DecodeBatchResponse(body); err != nil {
							t.Fatalf("topic %d day %d: proxied binary response does not decode: %v", i, day, err)
						}
						ok = true
						break
					}
					lastStatus, lastBody = status, body
				}
				if !ok {
					t.Fatalf("topic %d day %d binary never succeeded (last %d: %s)", i, day, lastStatus, lastBody)
				}
			} else {
				tc.retryJSON("POST", url, batch, nil, http.StatusOK)
			}
		}
	}

	// Fail over: kill shard 0 for good; every topic it was primary for is
	// promoted from its journal-shipped replica. The replicated history
	// mixes frames that arrived as JSON and as binary — if the formats
	// were not one stream by the journal layer, promotion would fork.
	tc.killShard(0)
	live := []int{1, 2}
	victimOwned := make([]bool, topics)
	for i := 0; i < topics; i++ {
		if tc.ownerIdx(harnessTopicName(i)) == 0 {
			victimOwned[i] = true
			// Promotion from the journal-shipped replica lands at epoch 1.
			tc.awaitServedAt(harnessTopicName(i), 1, live)
		}
	}

	for i := 0; i < topics; i++ {
		name := harnessTopicName(i)
		got := fetchSnapshot(t, tc.client, tc.url(1+i%2)+"/v1/topics/"+name+"/snapshot")
		ctl := controlTopic(t, harnessCreateReq(i))
		for day := 1; day <= days; day++ {
			if _, err := ctl.Process(day, specTweets(harnessBatch(i, day))); err != nil {
				t.Fatalf("control %s day %d: %v", name, day, err)
			}
		}
		if victimOwned[i] {
			ctl.SetEpoch(1)
		}
		var want bytes.Buffer
		if err := ctl.Snapshot(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("topic %s: post-failover snapshot (%d bytes) differs from control (%d bytes)",
				name, len(got), want.Len())
		}
	}
}
