package main

// Fault-injection tests for journal-shipped replication: a shard killed
// mid-stream and never restarted (the failover tentpole), a flaky
// transport randomly dropping and delaying replica ships, a zombie
// primary fenced after a promotion, and the rebalancer converging a
// failed-over topic back onto the ring when its owner returns. All of
// them hold the same bar as the PR 5 harness: every topic's final
// snapshot byte-identical to a single-process control run.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triclust"
	"triclust/internal/cluster"
)

// fastRepl returns replication options tuned for the harness: probes
// every 25ms, a peer is down after 3 straight failures (~75ms), ship
// retries back off from 2ms.
func fastRepl(transport http.RoundTripper) *replOptions {
	return &replOptions{
		Factor:        2,
		ProbeInterval: 25 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		ProbeFailures: 3,
		ShipTimeout:   5 * time.Second,
		ShipAttempts:  8,
		Backoff:       cluster.Backoff{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond},
		Transport:     transport,
	}
}

// retryJSONAt is retryJSON with the base URL re-resolved on every
// attempt: a worker caught mid-retry against a shard that just died for
// good must fail over to a survivor instead of hammering the corpse for
// its whole retry budget.
func (tc *testCluster) retryJSONAt(method string, url func() string, path string, body, out any, wantCode int) {
	tc.t.Helper()
	var lastCode int
	var lastErr error
	for attempt := 0; attempt < 600; attempt++ {
		code, err := doJSON(tc.client, method, url()+path, body, out)
		if err == nil && code == wantCode {
			return
		}
		lastCode, lastErr = code, err
		time.Sleep(10 * time.Millisecond)
	}
	tc.t.Fatalf("%s %s never returned %d (last: %d, %v)", method, path, wantCode, lastCode, lastErr)
}

// awaitServedAt polls the live shards until one of them serves the topic
// locally at exactly wantEpoch, returning that shard's index.
func (tc *testCluster) awaitServedAt(name string, wantEpoch uint64, live []int) int {
	tc.t.Helper()
	for attempt := 0; attempt < 1000; attempt++ {
		for _, i := range live {
			var info clusterInfoResponse
			code, err := doJSON(tc.client, "GET", tc.url(i)+"/v1/cluster/info?topic="+name, nil, &info)
			if err == nil && code == http.StatusOK && info.Topic != nil &&
				info.Topic.Local && info.Topic.Epoch == wantEpoch {
				return i
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	tc.t.Fatalf("no live shard ever served %q at epoch %d", name, wantEpoch)
	return -1
}

// TestClusterReplicationFailover is the tentpole acceptance test: three
// persistent shards at RF=2, 54 topics of concurrent batch traffic, and
// one shard killed mid-stream — handler gone, server closed, never
// restarted. Topics the dead shard owned must be promoted from their
// cold replicas on the survivors and finish their streams; at the end,
// every topic (dead-shard-owned included) must be byte-identical to a
// single-process control run, with zero batches lost.
func TestClusterReplicationFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster harness is not short")
	}
	opts := serverOptions{
		journal: journalOptions{Every: 4, MaxBytes: 8 << 20},
		repl:    fastRepl(nil),
		// Enforce mode rides the failover harness too: replica promotion
		// replays the tail ungated (the records were already accepted),
		// re-stamps the mode, and must still match the control run
		// byte-for-byte — profile included.
		conform: triclust.ConformEnforce,
	}
	tc := newTestCluster(t, 3, opts, false, true)
	const victim = 1
	survivors := []int{0, 2}

	for i := 0; i < harnessTopics; i++ {
		tc.retryJSON("POST", tc.url(i%3)+"/v1/topics", harnessCreateReq(i), nil, http.StatusCreated)
	}
	victimOwned := map[int]bool{}
	for i := 0; i < harnessTopics; i++ {
		if tc.ownerIdx(harnessTopicName(i)) == victim {
			victimOwned[i] = true
		}
	}
	if len(victimOwned) == 0 {
		t.Fatal("ring left the victim shard empty; nothing would fail over")
	}

	// killed flips once the victim is gone; from then on workers address
	// only the survivors (a real client pool would do the same after
	// connection refusals — the harness listener instead answers 503
	// forever, which would exhaust the retry budget).
	var killed atomic.Bool
	base := func(k int) string {
		if killed.Load() {
			return tc.url(survivors[k%len(survivors)])
		}
		return tc.url(k % 3)
	}

	var acked atomic.Int64
	total := int64(harnessTopics * harnessDays)
	var wg sync.WaitGroup
	const workers = 6
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for day := 1; day <= harnessDays; day++ {
				for i := w; i < harnessTopics; i += workers {
					name := harnessTopicName(i)
					k := i + day
					var br batchResponse
					tc.retryJSONAt("POST", func() string { return base(k) }, "/v1/topics/"+name+"/batches", harnessBatch(i, day), &br, http.StatusOK)
					if br.Skipped {
						t.Errorf("topic %s day %d skipped", name, day)
						return
					}
					acked.Add(1)
				}
			}
		}(w)
	}

	// Kill the victim once ~40% of the stream is acked. No restart.
	want := int64(0.4 * float64(total))
	for i := 0; i < 3000 && acked.Load() < want; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if acked.Load() < want {
		t.Fatalf("stream stalled at %d/%d acked batches before the kill", acked.Load(), total)
	}
	tc.killShard(victim)
	killed.Store(true)

	wg.Wait()
	if t.Failed() {
		return
	}
	if got := acked.Load(); got != total {
		t.Fatalf("acked %d of %d batches", got, total)
	}

	// Zero topics lost: every topic answers through the survivors, and
	// every snapshot is byte-identical to the single-process control.
	// Promoted topics carry epoch 1 (one promotion past the dead
	// primary's 0); the control is stamped to match.
	for i := 0; i < harnessTopics; i++ {
		name := harnessTopicName(i)
		got := fetchSnapshot(t, tc.client, tc.url(survivors[i%2])+"/v1/topics/"+name+"/snapshot")
		wantEpoch := uint64(0)
		if victimOwned[i] {
			wantEpoch = 1
		}
		rt, err := triclust.Restore(bytes.NewReader(got))
		if err != nil {
			t.Fatalf("snapshot of %s does not restore: %v", name, err)
		}
		if rt.Epoch() != wantEpoch {
			t.Fatalf("topic %s epoch %d, want %d (victim-owned=%v)", name, rt.Epoch(), wantEpoch, victimOwned[i])
		}
		ctl := controlTopic(t, harnessCreateReq(i))
		for day := 1; day <= harnessDays; day++ {
			if _, err := ctl.Process(day, specTweets(harnessBatch(i, day))); err != nil {
				t.Fatalf("control %s day %d: %v", name, day, err)
			}
		}
		ctl.SetEpoch(wantEpoch)
		var wantBytes bytes.Buffer
		if err := ctl.Snapshot(&wantBytes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBytes.Bytes()) {
			t.Fatalf("topic %s: post-failover snapshot (%d bytes) differs from control (%d bytes)",
				name, len(got), wantBytes.Len())
		}
	}

	// The survivors report the failure: the victim is a down peer, and
	// replication health is being served at all.
	for _, i := range survivors {
		var hr healthResponse
		code, err := doJSON(tc.client, "GET", tc.url(i)+"/v1/healthz", nil, &hr)
		if err != nil || code != http.StatusOK {
			t.Fatalf("healthz shard %d: %d %v", i, code, err)
		}
		if hr.Replication == nil || hr.Replication.Factor != 2 {
			t.Fatalf("shard %d replication health %+v", i, hr.Replication)
		}
		found := false
		for _, p := range hr.Replication.DownPeers {
			if p == tc.url(victim) {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %d does not report the victim down: %+v", i, hr.Replication.DownPeers)
		}
	}
}

// flakyTransport mangles replica-ship traffic only: with probability p
// per request it drops the request before sending, drops the response
// after the follower processed it (exercising the duplicate-delivery
// ack), or delays the request. Probes and client traffic pass untouched.
type flakyTransport struct {
	next http.RoundTripper
	mu   sync.Mutex
	rng  *rand.Rand
	p    float64
}

func newFlakyTransport(seed int64, p float64) *flakyTransport {
	return &flakyTransport{next: http.DefaultTransport, rng: rand.New(rand.NewSource(seed)), p: p}
}

func (f *flakyTransport) roll() (fail bool, mode int, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	fail = f.rng.Float64() < f.p
	mode = f.rng.Intn(3)
	delay = time.Duration(1+f.rng.Intn(4)) * time.Millisecond
	return
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !strings.Contains(req.URL.Path, "/v1/replica/") {
		return f.next.RoundTrip(req)
	}
	fail, mode, delay := f.roll()
	if !fail {
		return f.next.RoundTrip(req)
	}
	switch mode {
	case 0: // drop the request on the floor
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("flaky transport: dropped request to %s", req.URL.Path)
	case 1: // deliver, then lose the response
		resp, err := f.next.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body.Close()
		return nil, fmt.Errorf("flaky transport: dropped response from %s", req.URL.Path)
	default: // deliver late
		time.Sleep(delay)
		return f.next.RoundTrip(req)
	}
}

// TestClusterReplicationFlakyTransport streams the full workload with
// ~12% of replica ships dropped or delayed. The in-request retries and
// the idempotent duplicate ack must absorb all of it: no client-visible
// failures, every topic byte-identical to control at epoch 0.
func TestClusterReplicationFlakyTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster harness is not short")
	}
	opts := serverOptions{
		journal: journalOptions{Every: 4, MaxBytes: 8 << 20},
		repl:    fastRepl(newFlakyTransport(20260808, 0.12)),
	}
	tc := newTestCluster(t, 3, opts, false, true)

	const topics = 18 // fewer topics than the failover run: every batch ships through the flaky pipe
	for i := 0; i < topics; i++ {
		tc.retryJSON("POST", tc.url(i%3)+"/v1/topics", harnessCreateReq(i), nil, http.StatusCreated)
	}
	var wg sync.WaitGroup
	const workers = 3
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for day := 1; day <= harnessDays; day++ {
				for i := w; i < topics; i += workers {
					name := harnessTopicName(i)
					var br batchResponse
					tc.retryJSON("POST", tc.url((i+day)%3)+"/v1/topics/"+name+"/batches", harnessBatch(i, day), &br, http.StatusOK)
					if br.Skipped {
						t.Errorf("topic %s day %d skipped", name, day)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for i := 0; i < topics; i++ {
		name := harnessTopicName(i)
		got := fetchSnapshot(t, tc.client, tc.url(i%3)+"/v1/topics/"+name+"/snapshot")
		ctl := controlTopic(t, harnessCreateReq(i))
		for day := 1; day <= harnessDays; day++ {
			if _, err := ctl.Process(day, specTweets(harnessBatch(i, day))); err != nil {
				t.Fatalf("control %s day %d: %v", name, day, err)
			}
		}
		var wantBytes bytes.Buffer
		if err := ctl.Snapshot(&wantBytes); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wantBytes.Bytes()) {
			t.Fatalf("topic %s: snapshot under flaky replication differs from control", name)
		}
	}
	// No peer was ever wrongly declared down: ships are flaky, probes are
	// not, and ship failures must not feed the failure detector.
	for i := 0; i < 3; i++ {
		var hr healthResponse
		tc.retryJSON("GET", tc.url(i)+"/v1/healthz", nil, &hr, http.StatusOK)
		if hr.Replication == nil || len(hr.Replication.DownPeers) != 0 {
			t.Fatalf("shard %d wrongly holds peers down: %+v", i, hr.Replication)
		}
	}
}

// TestClusterZombieFencing pins the split-brain guarantee: a primary cut
// off from clients (but still running) keeps accepting nothing after its
// topic is promoted elsewhere — its next write's replica ship comes back
// 409 epoch_mismatch, it fences itself with a tombstone naming the new
// owner, and redirects from then on.
func TestClusterZombieFencing(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster harness is not short")
	}
	opts := serverOptions{
		journal: journalOptions{Every: 4, MaxBytes: 8 << 20},
		repl:    fastRepl(nil),
	}
	tc := newTestCluster(t, 3, opts, false, true)

	// One topic, owned by the shard that will go zombie.
	pick := -1
	for i := 0; i < harnessTopics; i++ {
		if tc.ownerIdx(harnessTopicName(i)) == 0 {
			pick = i
			break
		}
	}
	if pick == -1 {
		t.Fatal("ring left shard 0 empty")
	}
	name := harnessTopicName(pick)
	tc.retryJSON("POST", tc.url(0)+"/v1/topics", harnessCreateReq(pick), nil, http.StatusCreated)
	for day := 1; day <= 3; day++ {
		tc.retryJSON("POST", tc.url(0)+"/v1/topics/"+name+"/batches", harnessBatch(pick, day), nil, http.StatusOK)
	}

	// Partition the primary: its listener stops answering, but its server
	// object keeps running — detector, replicator, topic state all live.
	zombie := tc.shards[0].srv
	tc.shards[0].sh.kill()

	// The peers declare it down and the replica holder promotes at epoch 1.
	promoted := tc.awaitServedAt(name, 1, []int{1, 2})

	// The zombie still believes it owns the topic at epoch 0. Drive a
	// batch into it directly (its listener is gone; ServeHTTP stands in
	// for a client that still holds a connection): processing succeeds in
	// memory, but the replica ship is refused with epoch_mismatch and the
	// zombie fences itself instead of acking forked history.
	code, ec := serveJSON(t, zombie, "POST", "/v1/topics/"+name+"/batches", harnessBatch(pick, 4))
	if code != http.StatusConflict || ec != codeEpochMismatch {
		t.Fatalf("zombie write answered %d %q, want 409 %q", code, ec, codeEpochMismatch)
	}

	// Fenced: the tombstone is on the zombie's disk, naming the new owner
	// at the epoch that demoted it, and reads redirect.
	tombs, err := cluster.LoadTombstones(tc.shards[0].dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ts, ok := tombs[name]
	if !ok || ts.Target != tc.url(promoted) || ts.Epoch != 0 {
		t.Fatalf("zombie tombstone = %+v (present=%v), want epoch 0 → %s", ts, ok, tc.url(promoted))
	}
	req := httptest.NewRequest("GET", "/v1/topics/"+name, nil)
	rec := httptest.NewRecorder()
	zombie.ServeHTTP(rec, req)
	if rec.Code != http.StatusTemporaryRedirect || rec.Header().Get(shardHeader) != tc.url(promoted) {
		t.Fatalf("fenced zombie answered %d shard=%q, want 307 → %s", rec.Code, rec.Header().Get(shardHeader), tc.url(promoted))
	}

	// Meanwhile the promoted copy serves the full acked history and the
	// stream continues — the zombie's rejected day-4 batch was never
	// acked, so the client's retry lands day 4 on the new primary.
	var sum topicSummary
	tc.retryJSON("GET", tc.url(promoted)+"/v1/topics/"+name, nil, &sum, http.StatusOK)
	if sum.Batches != 3 {
		t.Fatalf("promoted topic has %d batches, want 3", sum.Batches)
	}
	tc.retryJSON("POST", tc.url(promoted)+"/v1/topics/"+name+"/batches", harnessBatch(pick, 4), nil, http.StatusOK)

	_ = zombie.Close()
}

// serveJSON drives one JSON request straight into a server's ServeHTTP
// (no listener), returning the status and error code.
func serveJSON(t *testing.T, s *server, method, path string, body any) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var eb errorBody
	_ = json.NewDecoder(rec.Body).Decode(&eb)
	return rec.Code, eb.Error.Code
}

// TestClusterReplicationRebalanceAfterRecovery closes the loop: after a
// failover, the dead shard comes back (fresh boot off its old data dir).
// Startup reconciliation must fence its stale copy instead of serving
// forked state, and the auto-rebalancer on the promoted shard must hand
// the topic home once the ring owner is live again.
func TestClusterReplicationRebalanceAfterRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster harness is not short")
	}
	ro := fastRepl(nil)
	ro.AutoRebalance = true
	ro.RebalanceInterval = 50 * time.Millisecond
	opts := serverOptions{
		journal: journalOptions{Every: 4, MaxBytes: 8 << 20},
		repl:    ro,
	}
	tc := newTestCluster(t, 3, opts, false, true)

	pick := -1
	for i := 0; i < harnessTopics; i++ {
		if tc.ownerIdx(harnessTopicName(i)) == 0 {
			pick = i
			break
		}
	}
	if pick == -1 {
		t.Fatal("ring left shard 0 empty")
	}
	name := harnessTopicName(pick)
	tc.retryJSON("POST", tc.url(0)+"/v1/topics", harnessCreateReq(pick), nil, http.StatusCreated)
	for day := 1; day <= 3; day++ {
		tc.retryJSON("POST", tc.url(0)+"/v1/topics/"+name+"/batches", harnessBatch(pick, day), nil, http.StatusOK)
	}

	tc.killShard(0)
	tc.awaitServedAt(name, 1, []int{1, 2})
	// The stream continues against the promoted copy while the owner is
	// dead (routed via the survivors' failure detectors).
	for day := 4; day <= 5; day++ {
		tc.retryJSON("POST", tc.url(1)+"/v1/topics/"+name+"/batches", harnessBatch(pick, day), nil, http.StatusOK)
	}

	// The owner returns from its old data directory, which still holds
	// the topic at epoch 0. Reconciliation fences it; the rebalancer
	// then moves the promoted copy home at epoch 2.
	tc.boot(0)
	home := tc.awaitServedAt(name, 2, []int{0})
	if home != 0 {
		t.Fatalf("topic rebalanced to shard %d, want its ring owner 0", home)
	}

	// Post-recovery stream lands at home, and the final state is
	// byte-identical to control at epoch 2 (promotion + rebalance move).
	tc.retryJSON("POST", tc.url(0)+"/v1/topics/"+name+"/batches", harnessBatch(pick, 6), nil, http.StatusOK)
	got := fetchSnapshot(t, tc.client, tc.url(0)+"/v1/topics/"+name+"/snapshot")
	ctl := controlTopic(t, harnessCreateReq(pick))
	for day := 1; day <= 6; day++ {
		if _, err := ctl.Process(day, specTweets(harnessBatch(pick, day))); err != nil {
			t.Fatalf("control day %d: %v", day, err)
		}
	}
	ctl.SetEpoch(2)
	var wantBytes bytes.Buffer
	if err := ctl.Snapshot(&wantBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantBytes.Bytes()) {
		t.Fatal("post-recovery snapshot differs from single-process control")
	}
}
