package main

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Per-topic storage states. A topic leaves stOK when its durable writes
// keep failing (stDegraded: read-only, reads served from the last
// durable state via the RCU view) and falls to stParked when even the
// rollback reload failed — the daemon then holds NO state disk vouches
// for, so the topic serves nothing until a probe-driven reload succeeds.
//
//	stOK ──(DegradeAfter consecutive failures, or ENOSPC)──▶ stDegraded
//	stOK/stDegraded ──(rollback reload fails)──▶ stParked
//	stDegraded ──(probe ok + compaction save ok)──▶ stOK
//	stParked ──(probe ok + reload ok + save ok)──▶ stOK
//
// Past ShardAfter degraded/parked topics the whole shard turns
// read-only: every write answers 503 storage_readonly, because a disk
// failing across topics is a disk about to fail the next topic too.
const (
	stOK int32 = iota
	stDegraded
	stParked
)

// storageOptions tune the degraded-mode state machine.
type storageOptions struct {
	// DegradeAfter is how many consecutive durable-write failures flip a
	// topic into the read-only degraded state (ENOSPC flips immediately:
	// a full disk is not a transient).
	DegradeAfter int
	// ShardAfter is how many degraded/parked topics flip the whole shard
	// read-only.
	ShardAfter int
	// ProbeInterval is the write-probe cadence while anything is
	// degraded, and the Retry-After hint handed to refused writers.
	ProbeInterval time.Duration
}

func (o storageOptions) withDefaults() storageOptions {
	if o.DegradeAfter <= 0 {
		o.DegradeAfter = 3
	}
	if o.ShardAfter <= 0 {
		o.ShardAfter = 2
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 5 * time.Second
	}
	return o
}

// storageMonitor runs the disk-degraded state machine: it counts
// durable-write failures per topic, degrades topics (and past a
// threshold the shard) into read-only, probes the data directory with
// real write+fsync cycles while anything is degraded, and recovers
// topics — reload from disk if parked, then a proving compaction save —
// once writes succeed again. One monitor per server; nil when the
// server has no store (nothing durable can fail).
type storageMonitor struct {
	s    *server
	opts storageOptions

	failures   atomic.Uint64
	recoveries atomic.Uint64
	probes     atomic.Uint64
	lastErr    atomic.Pointer[string]
	lastProbe  atomic.Pointer[string]
	// readonly is the shard-level switch: set when ≥ ShardAfter topics
	// are degraded/parked, cleared as recoveries bring the count back
	// down.
	readonly atomic.Bool

	mu      sync.Mutex
	running bool
	closed  bool
	stop    chan struct{}
}

func newStorageMonitor(s *server, opts storageOptions) *storageMonitor {
	return &storageMonitor{s: s, opts: opts.withDefaults()}
}

// close stops the probe goroutine if one is running.
func (m *storageMonitor) close() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.closed = true
	if m.running {
		close(m.stop)
		m.running = false
	}
	m.mu.Unlock()
}

// retrySeconds is the Retry-After value for refused writes: the probe
// cadence, since that is how often recovery can happen.
func (m *storageMonitor) retrySeconds() string {
	return strconv.Itoa(int(max(1, int64(m.opts.ProbeInterval/time.Second))))
}

// noteSuccess resets a topic's consecutive-failure count after any
// successful durable write. One atomic load on the hot path.
func (m *storageMonitor) noteSuccess(tp *topic) {
	if m != nil && tp.storFails.Load() != 0 {
		tp.storFails.Store(0)
	}
}

// noteFailure records a failed durable write on tp, degrading the topic
// once failures look persistent. Callers hold tp.mu.
func (m *storageMonitor) noteFailure(tp *topic, err error) {
	if m == nil {
		return
	}
	m.failures.Add(1)
	msg := err.Error()
	m.lastErr.Store(&msg)
	n := int(tp.storFails.Add(1))
	if n >= m.opts.DegradeAfter || errors.Is(err, syscall.ENOSPC) {
		if tp.storage.CompareAndSwap(stOK, stDegraded) {
			tp.degraded.Store(true)
			m.s.logf("topic %q storage-degraded after %d consecutive durable-write failures: %v", tp.name, n, err)
		}
		m.recount()
		m.ensureProber()
	}
}

// degradedHeader marks read responses served from the last durable
// state while the topic's storage is degraded. A header (not a body
// change) so ETag revalidation and the memoized /features body stay
// byte-identical.
const degradedHeader = "X-Triclust-Degraded"

// retryAfter stamps the Retry-After hint on storage-refusal responses:
// the probe cadence, i.e. the soonest recovery could have happened.
func (s *server) retryAfter(w http.ResponseWriter, code string) {
	if s.storage != nil && (code == codeStorageDegraded || code == codeStorageReadonly) {
		w.Header().Set("Retry-After", s.storage.retrySeconds())
	}
}

// readGate refuses reads of a parked topic — parked means the daemon
// holds no state disk vouches for — and stamps the degraded marker
// header on reads of a degraded one (those reads stay correct: the RCU
// view is the last durable state). Reports whether the read may
// proceed; on refusal the response is already written.
func (s *server) readGate(w http.ResponseWriter, tp *topic) bool {
	if s.storage == nil {
		return true
	}
	switch tp.storage.Load() {
	case stParked:
		s.retryAfter(w, codeStorageDegraded)
		writeError(w, http.StatusServiceUnavailable, codeStorageDegraded,
			fmt.Errorf("topic %q is parked after a storage failure: no trustworthy state to serve", tp.name))
		return false
	case stDegraded:
		w.Header().Set(degradedHeader, "storage")
	}
	return true
}

// park drops tp to the parked state: the rollback reload after a failed
// durable write itself failed, so the in-memory engine is ahead of
// anything disk vouches for and must not be served as current — reads
// and writes both refuse until a probe-driven reload succeeds. Callers
// hold tp.mu.
func (m *storageMonitor) park(tp *topic, err error) {
	if m == nil {
		return
	}
	tp.storage.Store(stParked)
	tp.degraded.Store(true)
	msg := err.Error()
	m.lastErr.Store(&msg)
	m.s.logf("topic %q parked: durable state unreadable after a storage failure (%v); refusing reads and writes until recovery re-reads disk", tp.name, err)
	m.recount()
	m.ensureProber()
}

// writeGate is the fail-fast check at the top of every write path:
// non-"" code means refuse with that status/code (and a Retry-After in
// the HTTP layer).
func (m *storageMonitor) writeGate(tp *topic) (int, string, error) {
	if m == nil {
		return 0, "", nil
	}
	if m.readonly.Load() {
		return http.StatusServiceUnavailable, codeStorageReadonly,
			fmt.Errorf("shard is read-only: %d+ topics have degraded storage; retry after recovery", m.opts.ShardAfter)
	}
	switch tp.storage.Load() {
	case stParked:
		return http.StatusServiceUnavailable, codeStorageDegraded,
			fmt.Errorf("topic %q is parked after a storage failure (durable state unreadable); retry after recovery", tp.name)
	case stDegraded:
		return http.StatusServiceUnavailable, codeStorageDegraded,
			fmt.Errorf("topic %q is read-only: persistent storage failures; retry after recovery", tp.name)
	}
	return 0, "", nil
}

// shardGate is writeGate for paths that create new durable state before
// any topic exists (create, restore): only the shard-level switch
// applies.
func (m *storageMonitor) shardGate() (int, string, error) {
	if m != nil && m.readonly.Load() {
		return http.StatusServiceUnavailable, codeStorageReadonly,
			fmt.Errorf("shard is read-only: %d+ topics have degraded storage; retry after recovery", m.opts.ShardAfter)
	}
	return 0, "", nil
}

// recount recomputes the shard-level read-only switch from the current
// per-topic states. Safe under tp.mu (lock order tp.mu → s.mu).
func (m *storageMonitor) recount() {
	n := 0
	m.s.mu.RLock()
	for _, tp := range m.s.topics {
		if tp.storage.Load() != stOK {
			n++
		}
	}
	m.s.mu.RUnlock()
	was := m.readonly.Swap(n >= m.opts.ShardAfter)
	now := n >= m.opts.ShardAfter
	if now && !was {
		m.s.logf("shard read-only: %d topics with degraded storage (threshold %d)", n, m.opts.ShardAfter)
	} else if was && !now {
		m.s.logf("shard writable again: %d topics with degraded storage (threshold %d)", n, m.opts.ShardAfter)
	}
}

// ensureProber starts the probe loop if it is not already running. The
// loop stops itself once every topic is back to stOK, so servers that
// never degrade never run it.
func (m *storageMonitor) ensureProber() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running || m.closed {
		return
	}
	m.running = true
	m.stop = make(chan struct{})
	go m.probeLoop(m.stop)
}

func (m *storageMonitor) probeLoop(stop chan struct{}) {
	t := time.NewTicker(m.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		m.probes.Add(1)
		if err := m.probeWrite(); err != nil {
			msg := "probe failed: " + err.Error()
			m.lastProbe.Store(&msg)
			continue
		}
		ok := "ok"
		m.lastProbe.Store(&ok)
		// Writes work again: walk the degraded topics and prove each one
		// back to health with a real reload + compaction save.
		m.s.mu.RLock()
		pending := make([]*topic, 0, len(m.s.topics))
		for _, tp := range m.s.topics {
			if tp.storage.Load() != stOK {
				pending = append(pending, tp)
			}
		}
		m.s.mu.RUnlock()
		for _, tp := range pending {
			m.recoverTopic(tp)
		}
		m.recount()
		// Nothing left to watch: stop until the next degrade.
		if m.allOK() {
			m.mu.Lock()
			if m.stop == stop {
				m.running = false
			}
			m.mu.Unlock()
			return
		}
	}
}

func (m *storageMonitor) allOK() bool {
	m.s.mu.RLock()
	defer m.s.mu.RUnlock()
	for _, tp := range m.s.topics {
		if tp.storage.Load() != stOK {
			return false
		}
	}
	return true
}

// probeWrite proves the data directory accepts durable writes: create,
// write, fsync and remove a probe file through the store's fault.FS —
// so an injected ENOSPC budget (or a real full disk) fails the probe
// exactly like it fails a journal append.
func (m *storageMonitor) probeWrite() error {
	st := m.s.store
	path := filepath.Join(st.dir, ".storage-probe")
	f, err := st.fs.OpenFile("storage.probe.open", path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write("storage.probe.write", []byte("probe")); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync("storage.probe.sync"); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return st.fs.Remove("storage.probe.remove", path)
}

// recoverTopic brings one degraded/parked topic back: a parked topic is
// first rebuilt from disk (the only trustworthy source once the
// in-memory state ran ahead of a failed rollback), then either kind
// proves writability with a compaction save. Failure leaves the state
// unchanged for the next probe round.
func (m *storageMonitor) recoverTopic(tp *topic) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	state := tp.storage.Load()
	if state == stOK || tp.deleted {
		tp.storage.Store(stOK)
		return
	}
	if state == stParked {
		epoch := tp.eng().Epoch()
		fresh, err := m.s.store.reloadTopic(tp.name, m.s.logf)
		if err != nil {
			m.s.logf("recovery reload %q: %v (still parked)", tp.name, err)
			return
		}
		fresh.SetEpoch(epoch)
		fresh.SetConformanceMode(m.s.conform)
		tp.engp.Store(fresh)
		tp.jRecords = 0
	}
	// The proving write: a fresh snapshot + journal rotation. This also
	// re-bases the followers (replShip below), so replication converges
	// from the recovered durable state.
	ok, err := m.s.saveIfCurrent(tp)
	if err != nil {
		m.s.logf("recovery save %q: %v (still degraded)", tp.name, err)
		return
	}
	tp.storage.Store(stOK)
	tp.storFails.Store(0)
	tp.degraded.Store(false)
	m.recoveries.Add(1)
	if !ok {
		return // deleted concurrently; nothing to ship
	}
	if _, _, err := m.s.replShip(tp, nil, 0, 0, false); err != nil {
		m.s.logf("recovery re-ship %q: %v (resync queued)", tp.name, err)
	}
	m.s.logf("topic %q storage recovered", tp.name)
}

// storageHealth is the healthz "storage" section: the degraded-mode
// state machine made visible.
type storageHealth struct {
	// State is "ok", "degraded" (some topics read-only) or "readonly"
	// (the shard-level switch tripped).
	State string `json:"state"`
	// Degraded and Parked list the topics in each non-OK state.
	Degraded []string `json:"degraded_topics,omitempty"`
	Parked   []string `json:"parked_topics,omitempty"`
	// Failures counts durable-write failures since startup; Recoveries
	// counts topics proven back to health; Probes counts write probes.
	Failures   uint64 `json:"failures"`
	Recoveries uint64 `json:"recoveries"`
	Probes     uint64 `json:"probes"`
	LastError  string `json:"last_error,omitempty"`
	LastProbe  string `json:"last_probe,omitempty"`
}

func (m *storageMonitor) health(served []*topic) *storageHealth {
	if m == nil {
		return nil
	}
	h := &storageHealth{
		State:      "ok",
		Failures:   m.failures.Load(),
		Recoveries: m.recoveries.Load(),
		Probes:     m.probes.Load(),
	}
	for _, tp := range served {
		switch tp.storage.Load() {
		case stDegraded:
			h.Degraded = append(h.Degraded, tp.name)
		case stParked:
			h.Parked = append(h.Parked, tp.name)
		}
	}
	sort.Strings(h.Degraded)
	sort.Strings(h.Parked)
	if len(h.Degraded)+len(h.Parked) > 0 {
		h.State = "degraded"
	}
	if m.readonly.Load() {
		h.State = "readonly"
	}
	if p := m.lastErr.Load(); p != nil {
		h.LastError = *p
	}
	if p := m.lastProbe.Load(); p != nil {
		h.LastProbe = *p
	}
	return h
}
