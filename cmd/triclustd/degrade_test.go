package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"triclust/internal/fault"
	"triclust/internal/journal"
)

// faultServer builds one daemon whose durable writes go through the
// given fault.FS, with a fast storage probe so degraded-mode tests
// converge in milliseconds.
func faultServer(t *testing.T, fs fault.FS, jopts journalOptions, sopts storageOptions) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(t.TempDir(), serverOptions{journal: jopts, fs: fs, storage: sopts}, t.Logf)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	t.Cleanup(func() { _ = s.Close() })
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

func degradeCreateReq(name string) createTopicRequest {
	return createTopicRequest{
		Name:    name,
		Users:   []string{"u0", "u1"},
		Options: topicOptions{MaxIter: 2, Seed: 7, MinDF: 1},
	}
}

func degradeBatch(day int) batchRequest {
	return batchRequest{Time: day, Tweets: []tweetSpec{
		{Tokens: []string{"w1", "w2"}, User: 0},
		{Tokens: []string{"w2", "w3"}, User: 1},
	}}
}

// awaitStorageState polls healthz until the storage section reaches the
// wanted state.
func awaitStorageState(t *testing.T, client *http.Client, base, want string) healthResponse {
	t.Helper()
	var hr healthResponse
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		code, err := doJSON(client, "GET", base+"/v1/healthz", nil, &hr)
		if err == nil && code == http.StatusOK && hr.Storage != nil && hr.Storage.State == want {
			return hr
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("storage never reached state %q (last: %+v)", want, hr.Storage)
	return hr
}

// TestDiskDegradedModeENOSPCStorm is the degraded-mode acceptance path:
// a full disk flips first the failing topics, then the whole shard, into
// read-only; reads keep answering (marked) from the last durable state;
// freeing space lets the write probe recover everything without a
// restart.
func TestDiskDegradedModeENOSPCStorm(t *testing.T) {
	script := fault.NewScript()
	s, hs := faultServer(t, script, journalOptions{Every: 100},
		storageOptions{ShardAfter: 2, ProbeInterval: 20 * time.Millisecond})
	client := hs.Client()

	for _, name := range []string{"storm-a", "storm-b"} {
		if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics", degradeCreateReq(name)); code != http.StatusCreated {
			t.Fatalf("create %s: %d %s", name, code, ec)
		}
		if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics/"+name+"/batches", degradeBatch(1)); code != http.StatusOK {
			t.Fatalf("batch %s: %d %s", name, code, ec)
		}
	}

	// The disk fills. The first failing batch per topic reports the
	// append failure itself; ENOSPC degrades the topic immediately.
	script.SetBudget(0)
	for _, name := range []string{"storm-a", "storm-b"} {
		if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics/"+name+"/batches", degradeBatch(2)); code != http.StatusServiceUnavailable || ec != codeJournalWriteFailed {
			t.Fatalf("batch %s on full disk: %d %s, want 503 %s", name, code, ec, codeJournalWriteFailed)
		}
	}

	// Both topics degraded >= ShardAfter: the shard is read-only. Writes
	// fail fast with the shard-level code and a Retry-After hint — no
	// solve, no journal attempt.
	resp, err := client.Post(hs.URL+"/v1/topics/storm-a/batches", "application/json",
		strings.NewReader(`{"time":3,"tweets":[{"tokens":["w1"],"user":0}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	decodeBody(t, resp, &eb)
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Error.Code != codeStorageReadonly {
		t.Fatalf("write on read-only shard: %d %s, want 503 %s", resp.StatusCode, eb.Error.Code, codeStorageReadonly)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("storage refusal carries no Retry-After")
	}
	if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics", degradeCreateReq("storm-c")); code != http.StatusServiceUnavailable || ec != codeStorageReadonly {
		t.Fatalf("create on read-only shard: %d %s, want 503 %s", code, ec, codeStorageReadonly)
	}

	// Reads still answer — from the last durable state, marked degraded.
	rresp, err := client.Get(hs.URL + "/v1/topics/storm-a")
	if err != nil {
		t.Fatal(err)
	}
	var sum topicSummary
	decodeBody(t, rresp, &sum)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("degraded read: %d, want 200", rresp.StatusCode)
	}
	if got := rresp.Header.Get(degradedHeader); got != "storage" {
		t.Fatalf("degraded read marker = %q, want %q", got, "storage")
	}
	if sum.Batches != 1 {
		t.Fatalf("degraded read serves %d batches, want the 1 durable one", sum.Batches)
	}

	hr := awaitStorageState(t, client, hs.URL, "readonly")
	if hr.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", hr.Status)
	}
	if len(hr.Storage.Degraded) != 2 {
		t.Fatalf("degraded topics %v, want both", hr.Storage.Degraded)
	}

	// Space frees: the write probe notices and proves both topics back,
	// no restart, no operator action.
	script.SetBudget(-1)
	hr = awaitStorageState(t, client, hs.URL, "ok")
	if hr.Storage.Recoveries < 2 {
		t.Fatalf("recoveries = %d, want >= 2", hr.Storage.Recoveries)
	}
	for _, name := range []string{"storm-a", "storm-b"} {
		if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics/"+name+"/batches", degradeBatch(2)); code != http.StatusOK {
			t.Fatalf("batch %s after recovery: %d %s", name, code, ec)
		}
	}
	if code, _ := errCode(t, client, "POST", hs.URL+"/v1/topics", degradeCreateReq("storm-c")); code != http.StatusCreated {
		t.Fatalf("create after recovery: %d", code)
	}

	// The recovered state must be exactly what a restart would serve.
	s2, err := newServer(s.store.dir, serverOptions{journal: journalOptions{Every: 100}}, t.Logf)
	if err != nil {
		t.Fatalf("re-open after recovery: %v", err)
	}
	defer s2.Close()
	for _, name := range []string{"storm-a", "storm-b"} {
		b1, d1 := s.topics[name].eng().StreamPos()
		b2, d2 := s2.topics[name].eng().StreamPos()
		if b1 != b2 || d1 != d2 {
			t.Fatalf("%s: recovered position (%d,%d) != restart position (%d,%d)", name, b1, d1, b2, d2)
		}
	}
}

func decodeBody(t *testing.T, resp *http.Response, out any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
}

// TestParkedTopicAfterFailedRollback is the regression test for the
// failJournalAppend latent bug: when the disk refuses the append AND the
// rollback reload fails, the daemon holds no state disk vouches for —
// it must park the topic (refuse reads and writes), not keep serving
// the in-memory state that is ahead of durable history as if it were
// current.
func TestParkedTopicAfterFailedRollback(t *testing.T) {
	injectAppend := errors.New("injected append failure")
	injectRead := errors.New("injected snapshot read failure")
	script := fault.NewScript(
		// The second append fails (the first is batch 1, which must land)...
		fault.Rule{Site: "journal.append.sync", Hit: 2, Err: injectAppend},
		// ...and the rollback cannot re-read the snapshot either.
		fault.Rule{Site: "persist.snap.read", Err: injectRead},
	)
	s, hs := faultServer(t, script, journalOptions{Every: 100},
		storageOptions{ProbeInterval: 20 * time.Millisecond})
	client := hs.Client()

	const name = "parked"
	if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics", degradeCreateReq(name)); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, ec)
	}
	if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics/"+name+"/batches", degradeBatch(1)); code != http.StatusOK {
		t.Fatalf("batch 1: %d %s", code, ec)
	}
	if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics/"+name+"/batches", degradeBatch(2)); code != http.StatusServiceUnavailable || ec != codeStorageDegraded {
		t.Fatalf("batch 2 (append + rollback both fail): %d %s, want 503 %s", code, ec, codeStorageDegraded)
	}

	// Parked: the in-memory engine ran batch 2, but disk only vouches
	// for batch 1 — so nothing may be served, reads included.
	for _, url := range []string{
		hs.URL + "/v1/topics/" + name,
		hs.URL + "/v1/topics/" + name + "/users/0",
		hs.URL + "/v1/topics/" + name + "/features",
		hs.URL + "/v1/topics/" + name + "/snapshot",
	} {
		if code, ec := errCode(t, client, "GET", url, nil); code != http.StatusServiceUnavailable || ec != codeStorageDegraded {
			t.Fatalf("parked read %s: %d %s, want 503 %s", url, code, ec, codeStorageDegraded)
		}
	}
	if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics/"+name+"/batches", degradeBatch(3)); code != http.StatusServiceUnavailable || ec != codeStorageDegraded {
		t.Fatalf("parked write: %d %s, want 503 %s", code, ec, codeStorageDegraded)
	}
	var hr healthResponse
	if code, err := doJSON(client, "GET", hs.URL+"/v1/healthz", nil, &hr); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, err)
	}
	if hr.Storage == nil || len(hr.Storage.Parked) != 1 || hr.Storage.Parked[0] != name {
		t.Fatalf("healthz parked = %+v, want [%s]", hr.Storage, name)
	}

	// The disk heals: the probe reloads the topic from durable state and
	// proves it back with a compaction save.
	script.ClearRules()
	awaitStorageState(t, client, hs.URL, "ok")

	var sum topicSummary
	if code, err := doJSON(client, "GET", hs.URL+"/v1/topics/"+name, nil, &sum); err != nil || code != http.StatusOK {
		t.Fatalf("read after recovery: %d %v", code, err)
	}
	if sum.Batches != 1 {
		t.Fatalf("recovered topic serves %d batches, want 1: the failed batch must not leak back", sum.Batches)
	}
	// The rolled-back batch retries cleanly onto the recovered state.
	if code, ec := errCode(t, client, "POST", hs.URL+"/v1/topics/"+name+"/batches", degradeBatch(2)); code != http.StatusOK {
		t.Fatalf("retry after recovery: %d %s", code, ec)
	}
	if s.topics[name].eng().Batches() != 2 {
		t.Fatalf("batches after retry = %d, want 2", s.topics[name].eng().Batches())
	}
}

// TestDegradedRecoveryReconvergesReplication: a replicated primary whose
// disk fills keeps its follower at the last durable frame; once space
// frees and the probe recovers the topic, the recovery re-ships a fresh
// base, and subsequent batches replicate normally — the follower ends
// bit-aligned with the primary's stream position.
func TestDegradedRecoveryReconvergesReplication(t *testing.T) {
	handlers := [2]*shardHandler{{}, {}}
	var hss [2]*httptest.Server
	var urls []string
	for i := range handlers {
		hss[i] = httptest.NewServer(handlers[i])
		defer hss[i].Close()
		urls = append(urls, hss[i].URL)
	}
	script := fault.NewScript()
	fss := [2]fault.FS{script, nil}
	var servers [2]*server
	for i := range servers {
		cc, err := newClusterConfig(urls[i], strings.Join(urls, ","), 32, false)
		if err != nil {
			t.Fatalf("cluster config %d: %v", i, err)
		}
		s, err := newServer(t.TempDir(), serverOptions{
			journal: journalOptions{Every: 100},
			cluster: cc,
			repl:    &replOptions{Factor: 2, ProbeInterval: time.Hour},
			fs:      fss[i],
			storage: storageOptions{ProbeInterval: 20 * time.Millisecond},
		}, t.Logf)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		s.start()
		defer s.Close()
		servers[i] = s
		handlers[i].swap(s)
	}
	// A topic owned by shard 0, so shard 1 holds its replica.
	name := ""
	for i := 0; i < 100; i++ {
		n := fmt.Sprintf("rconv%02d", i)
		if servers[0].cluster.ring.Owner(n) == urls[0] {
			name = n
			break
		}
	}
	if name == "" {
		t.Fatal("no topic name owned by shard 0")
	}
	client := hss[0].Client()
	if code, ec := errCode(t, client, "POST", urls[0]+"/v1/topics", degradeCreateReq(name)); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, ec)
	}
	for day := 1; day <= 3; day++ {
		if code, ec := errCode(t, client, "POST", urls[0]+"/v1/topics/"+name+"/batches", degradeBatch(day)); code != http.StatusOK {
			t.Fatalf("batch %d: %d %s", day, code, ec)
		}
	}
	if b, d := replicaPos(t, servers[1], name); b != 3 {
		t.Fatalf("replica at (%d,%d) before the storm, want batches 3", b, d)
	}

	script.SetBudget(0)
	if code, ec := errCode(t, client, "POST", urls[0]+"/v1/topics/"+name+"/batches", degradeBatch(4)); code != http.StatusServiceUnavailable || ec != codeJournalWriteFailed {
		t.Fatalf("batch on full disk: %d %s", code, ec)
	}
	// The refused batch shipped nothing: the follower still sits at the
	// last durable frame.
	if b, _ := replicaPos(t, servers[1], name); b != 3 {
		t.Fatalf("replica moved to %d batches during the storm, want 3", b)
	}

	script.SetBudget(-1)
	awaitStorageState(t, client, urls[0], "ok")
	if code, ec := errCode(t, client, "POST", urls[0]+"/v1/topics/"+name+"/batches", degradeBatch(4)); code != http.StatusOK {
		t.Fatalf("batch after recovery: %d %s", code, ec)
	}
	pb, pd := servers[0].topics[name].eng().StreamPos()
	rb, rd := replicaPos(t, servers[1], name)
	if pb != rb || pd != rd {
		t.Fatalf("replication diverged after recovery: primary (%d,%d), replica (%d,%d)", pb, pd, rb, rd)
	}
}

// replicaPos reads a follower's durable replica position from disk: the
// base snapshot's fingerprint advanced by the fsynced tail frames.
func replicaPos(t *testing.T, s *server, name string) (int, uint64) {
	t.Helper()
	data, err := os.ReadFile(s.store.replMetaPath(name))
	if err != nil {
		t.Fatalf("replica meta %s: %v", name, err)
	}
	var meta replMeta
	if err := json.Unmarshal(data, &meta); err != nil {
		t.Fatalf("replica meta %s: %v", name, err)
	}
	batches, draws := meta.Batches, meta.RandDraws
	j, err := journal.Load(s.store.fs, s.store.replJournalPath(name))
	if err != nil {
		t.Fatalf("replica journal %s: %v", name, err)
	}
	for _, rec := range j.Records {
		batches, draws = rec.Batches, rec.RandDraws
	}
	return batches, draws
}
