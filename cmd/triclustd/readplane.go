package main

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"triclust"
)

// The read plane: every GET below answers from the topic's published
// ReadView — a single atomic pointer load — so a solve, snapshot export,
// journal replay or hand-off in flight never stalls a read, and read QPS
// is bounded by encoding speed, not by Topic.mu.
//
// HTTP caching rides on the view's stream fingerprint: every read
// response carries a strong ETag derived from (batches, randDraws,
// epoch). Views with equal fingerprints are bit-identical — on any
// replica, after any restore or replay — so the validator is exact. The
// common poll ("anything new since my last look?") revalidates with
// If-None-Match and is answered 304 with no body and no encoding work.
//
// Responses additionally carry a convergence indicator (state, batches,
// delta), so a client polling during warm-up, backfill or replica
// promotion gets a usable progressive estimate immediately instead of an
// error or a blocked request, and can tell how settled it is.

// readCacheControl marks read responses as per-client cacheable but
// revalidate-always: correctness comes from the ETag, freshness from the
// 304 fast path, and intermediaries must not serve one user's sentiment
// poll to another.
const readCacheControl = "private, no-cache"

// appendETag appends the view's strong ETag: batches, random-stream
// position (hex) and ownership epoch. Any committed batch changes the
// fingerprint; a rolled-back (journal-refused) batch reverts it.
func appendETag(b []byte, v triclust.ReadView) []byte {
	batches, draws := v.StreamPos()
	b = append(b, '"', 'b')
	b = strconv.AppendInt(b, int64(batches), 10)
	b = append(b, '-', 'r')
	b = strconv.AppendUint(b, draws, 16)
	b = append(b, '-', 'e')
	b = strconv.AppendUint(b, v.Epoch(), 10)
	return append(b, '"')
}

// etagMatch implements the If-None-Match comparison against one strong
// validator: a comma-separated candidate list, "*" matching anything,
// and weak-prefixed entries compared by opaque value (RFC 9110 §8.8.3.2
// weak comparison, the one If-None-Match mandates).
func etagMatch(header, etag string) bool {
	if header == "" {
		return false
	}
	for len(header) > 0 {
		item := header
		if i := strings.IndexByte(header, ','); i >= 0 {
			item, header = header[:i], header[i+1:]
		} else {
			header = ""
		}
		item = strings.TrimSpace(item)
		item = strings.TrimPrefix(item, "W/")
		if item == "*" || item == etag {
			return true
		}
	}
	return false
}

// setReadHeaders stamps the caching contract shared by every read
// endpoint.
func setReadHeaders(w http.ResponseWriter, etag string) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", readCacheControl)
}

// readScratch is the pooled per-request encoding state of the read
// endpoints: one buffer for the ETag and one for the response body, so a
// steady-state user-estimate poll allocates only the small header
// strings that escape into the response — the read path's analogue of
// the batch endpoint's batchScratch.
type readScratch struct {
	tag []byte
	buf []byte
}

var readPool = sync.Pool{New: func() any { return new(readScratch) }}

// appendSentimentFields appends the sentimentJSON fields (no braces), so
// callers can splice them into larger objects.
func appendSentimentFields(b []byte, s triclust.Sentiment) []byte {
	b = append(b, `"class":`...)
	b = strconv.AppendInt(b, int64(s.Class), 10)
	b = append(b, `,"class_name":"`...)
	b = append(b, triclust.ClassName(s.Class)...)
	b = append(b, `","confidence":`...)
	return strconv.AppendFloat(b, s.Confidence, 'g', -1, 64)
}

// appendConvergence appends the `"convergence":{...}` member of a read
// response.
func appendConvergence(b []byte, v triclust.ReadView) []byte {
	c := v.Convergence()
	b = append(b, `"convergence":{"state":"`...)
	b = append(b, c.State...)
	b = append(b, `","batches":`...)
	b = strconv.AppendInt(b, int64(c.Batches), 10)
	b = append(b, `,"delta":`...)
	b = strconv.AppendFloat(b, c.Delta, 'g', -1, 64)
	return append(b, '}')
}

// convergenceJSON is the wire shape of the convergence indicator where
// responses are built with encoding/json (summaries, features).
type convergenceJSON struct {
	State   string  `json:"state"`
	Batches int     `json:"batches"`
	Delta   float64 `json:"delta"`
}

func convergenceOf(v triclust.ReadView) *convergenceJSON {
	c := v.Convergence()
	return &convergenceJSON{State: string(c.State), Batches: c.Batches, Delta: c.Delta}
}

// cachedRead is one immutable pre-encoded read response, valid for
// exactly one ETag (i.e. one published view). Topics keep one per
// cacheable endpoint so repeated polls at an unchanged batch counter
// re-serve bytes instead of re-labeling and re-encoding.
type cachedRead struct {
	etag string
	body []byte
}

// userEstimate implements GET /v1/topics/{topic}/users/{user}: the
// hottest read. Served entirely from the published view with pooled
// encoding scratch; an If-None-Match hit costs no encoding at all.
func (s *server) userEstimate(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil || !s.readGate(w, tp) {
		return
	}
	user, err := strconv.Atoi(r.PathValue("user"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("bad user id: %w", err))
		return
	}
	s.reads.Add(1)
	v := tp.eng().ReadView()
	sc := readPool.Get().(*readScratch)
	defer readPool.Put(sc)
	sc.tag = appendETag(sc.tag[:0], v)
	etag := string(sc.tag)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		setReadHeaders(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	est, ok := v.UserEstimate(user)
	if !ok {
		writeError(w, http.StatusNotFound, codeUserNotFound, fmt.Errorf("user %d has no history", user))
		return
	}
	b := append(sc.buf[:0], `{"user":`...)
	b = strconv.AppendInt(b, int64(user), 10)
	b = append(b, ',')
	b = appendSentimentFields(b, est)
	b = append(b, ',')
	b = appendConvergence(b, v)
	b = append(b, '}', '\n')
	sc.buf = b
	setReadHeaders(w, etag)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
}

// featureSentiments implements GET /v1/topics/{topic}/features: the
// vocabulary with the learned per-word sentiments of the most recent
// solve (the JSON companion to the binary snapshot). Labels come from
// the published view — labeled once per committed batch, not per request
// — and the whole response body is cached against the view's ETag, so
// polls at an unchanged batch counter re-serve bytes (or 304).
func (s *server) featureSentiments(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil || !s.readGate(w, tp) {
		return
	}
	s.reads.Add(1)
	v := tp.eng().ReadView()
	etag := string(appendETag(nil, v))
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		setReadHeaders(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	c := tp.feat.Load()
	if c == nil || c.etag != etag {
		body, err := marshalFeatures(tp, v)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeStorage, err)
			return
		}
		c = &cachedRead{etag: etag, body: body}
		tp.feat.Store(c)
	}
	setReadHeaders(w, etag)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(c.body)
}

// topicInfo implements GET /v1/topics/{topic}: the summary, served from
// the view with the same ETag contract as the other read endpoints.
func (s *server) topicInfo(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil || !s.readGate(w, tp) {
		return
	}
	s.reads.Add(1)
	v := tp.eng().ReadView()
	etag := string(appendETag(nil, v))
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		s.notModified.Add(1)
		setReadHeaders(w, etag)
		w.WriteHeader(http.StatusNotModified)
		return
	}
	setReadHeaders(w, etag)
	writeJSON(w, http.StatusOK, tp.summaryView(v))
}

// readPlaneHealth is the healthz read-plane section: traffic counters
// plus the convergence-state census of the served topics, so an operator
// can see at a glance whether a shard is mid-backfill (topics warming or
// converging) and whether clients are using the 304 fast path.
type readPlaneHealth struct {
	Reads       uint64 `json:"reads"`
	NotModified uint64 `json:"not_modified"`
	Warming     int    `json:"topics_warming"`
	Converging  int    `json:"topics_converging"`
	Steady      int    `json:"topics_steady"`
}

// readPlaneHealth assembles the healthz section from the server's
// counters and the given topics' current views.
func (s *server) readPlaneHealth(topics []*topic) *readPlaneHealth {
	h := &readPlaneHealth{
		Reads:       s.reads.Load(),
		NotModified: s.notModified.Load(),
	}
	for _, tp := range topics {
		switch tp.eng().ReadView().Convergence().State {
		case triclust.Warming:
			h.Warming++
		case triclust.Converging:
			h.Converging++
		case triclust.Steady:
			h.Steady++
		}
	}
	return h
}
