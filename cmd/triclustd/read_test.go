package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// readResp is one observed read-plane response.
type readResp struct {
	status int
	etag   string
	cc     string
	body   []byte
}

// getRead issues one read with an optional If-None-Match and returns the
// caching-relevant parts.
func getRead(t *testing.T, client *http.Client, url, inm string) readResp {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", url, err)
	}
	return readResp{
		status: resp.StatusCode,
		etag:   resp.Header.Get("ETag"),
		cc:     resp.Header.Get("Cache-Control"),
		body:   body,
	}
}

// userReadBody is the wire shape of GET /v1/topics/{t}/users/{u}.
type userReadBody struct {
	User        int             `json:"user"`
	Class       int             `json:"class"`
	ClassName   string          `json:"class_name"`
	Confidence  float64         `json:"confidence"`
	Convergence convergenceJSON `json:"convergence"`
}

var etagShape = regexp.MustCompile(`^"b\d+-r[0-9a-f]+-e\d+"$`)

// etagEpoch extracts the epoch component of a read-plane ETag.
func etagEpoch(etag string) (uint64, bool) {
	i := strings.LastIndex(etag, "-e")
	if i < 0 || !strings.HasSuffix(etag, `"`) {
		return 0, false
	}
	e, err := strconv.ParseUint(etag[i+2:len(etag)-1], 10, 64)
	return e, err == nil
}

// TestReadPlaneETagContract pins the HTTP caching contract of the read
// endpoints: strong per-view ETags, Cache-Control, the If-None-Match →
// 304 fast path (including weak-prefixed, list and "*" candidates),
// convergence fields in every body, ETag movement on new batches, and
// the healthz read-plane counters that observe it all.
func TestReadPlaneETagContract(t *testing.T) {
	_, srv := testServer(t, "")
	client := srv.Client()
	jtCreate(t, client, srv.URL)
	jtFeed(t, client, srv.URL, 0, 3)
	base := srv.URL + "/v1/topics/" + journalTopicName

	// The hot read: a user estimate with caching headers and convergence.
	r := getRead(t, client, base+"/users/0", "")
	if r.status != http.StatusOK || !etagShape.MatchString(r.etag) || r.cc != readCacheControl {
		t.Fatalf("user read: status %d etag %q cc %q", r.status, r.etag, r.cc)
	}
	var ub userReadBody
	if err := json.Unmarshal(r.body, &ub); err != nil {
		t.Fatalf("user body %q: %v", r.body, err)
	}
	if ub.User != 0 || ub.ClassName == "" {
		t.Fatalf("user body %+v", ub)
	}
	if ub.Convergence.Batches != 3 || ub.Convergence.Delta < 0 || ub.Convergence.Delta > 1 {
		t.Fatalf("user convergence %+v", ub.Convergence)
	}
	switch ub.Convergence.State {
	case "warming", "converging", "steady":
	default:
		t.Fatalf("user convergence state %q", ub.Convergence.State)
	}
	etag := r.etag

	// Conditional requests: exact, weak-prefixed, list and "*" match; a
	// mismatch re-serves the body.
	for _, inm := range []string{etag, "W/" + etag, `"zzz", ` + etag, "*"} {
		c := getRead(t, client, base+"/users/0", inm)
		if c.status != http.StatusNotModified || c.etag != etag || len(c.body) != 0 {
			t.Fatalf("If-None-Match %q: status %d etag %q body %q", inm, c.status, c.etag, c.body)
		}
	}
	if c := getRead(t, client, base+"/users/0", `"zzz"`); c.status != http.StatusOK {
		t.Fatalf("mismatched If-None-Match: status %d", c.status)
	}

	// Features: same view, same ETag; repeated polls serve identical
	// bytes (the body is cached per ETag) and revalidate to 304.
	f1 := getRead(t, client, base+"/features", "")
	f2 := getRead(t, client, base+"/features", "")
	if f1.status != http.StatusOK || f1.etag != etag || string(f1.body) != string(f2.body) {
		t.Fatalf("features: status %d etag %q (want %q), stable body %v",
			f1.status, f1.etag, etag, string(f1.body) == string(f2.body))
	}
	var fb featuresResponse
	if err := json.Unmarshal(f1.body, &fb); err != nil {
		t.Fatalf("features body: %v", err)
	}
	if len(fb.Vocabulary) == 0 || len(fb.Features) != len(fb.Vocabulary) || fb.Convergence == nil {
		t.Fatalf("features body: %d words, %d features, convergence %v",
			len(fb.Vocabulary), len(fb.Features), fb.Convergence)
	}
	if c := getRead(t, client, base+"/features", etag); c.status != http.StatusNotModified {
		t.Fatalf("features revalidation: status %d", c.status)
	}

	// Topic info: same ETag contract, convergence in the summary.
	ir := getRead(t, client, base, "")
	if ir.status != http.StatusOK || ir.etag != etag {
		t.Fatalf("info: status %d etag %q", ir.status, ir.etag)
	}
	var sum topicSummary
	if err := json.Unmarshal(ir.body, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Convergence == nil || sum.Convergence.Batches != 3 {
		t.Fatalf("info convergence %+v", sum.Convergence)
	}
	if c := getRead(t, client, base, etag); c.status != http.StatusNotModified {
		t.Fatalf("info revalidation: status %d", c.status)
	}

	// A new batch moves the validator: the stale ETag stops matching and
	// the fresh body reports the new batch counter.
	jtFeed(t, client, srv.URL, 3, 4)
	c := getRead(t, client, base+"/users/0", etag)
	if c.status != http.StatusOK || c.etag == etag {
		t.Fatalf("after batch: status %d etag %q (stale %q)", c.status, c.etag, etag)
	}
	if err := json.Unmarshal(c.body, &ub); err != nil {
		t.Fatal(err)
	}
	if ub.Convergence.Batches != 4 {
		t.Fatalf("after batch: convergence %+v", ub.Convergence)
	}

	// Error paths keep their codes.
	if code, ec := errCode(t, client, "GET", base+"/users/999", nil); code != http.StatusNotFound || ec != codeUserNotFound {
		t.Fatalf("unknown user: %d %q", code, ec)
	}
	if code, ec := errCode(t, client, "GET", base+"/users/abc", nil); code != http.StatusBadRequest || ec != codeInvalidRequest {
		t.Fatalf("bad user id: %d %q", code, ec)
	}

	// healthz observes the traffic: reads counted, 304s counted, and the
	// one topic classified into exactly one convergence bucket.
	var hr healthResponse
	if code, err := doJSON(client, "GET", srv.URL+"/v1/healthz", nil, &hr); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: %d %v", code, err)
	}
	rp := hr.ReadPlane
	if rp == nil || rp.Reads < 10 || rp.NotModified < 6 {
		t.Fatalf("read-plane stats %+v", rp)
	}
	if rp.Warming+rp.Converging+rp.Steady != 1 {
		t.Fatalf("convergence census %+v", rp)
	}
}

// TestReadPlaneETagStableAcrossRestart pins the validator's durability
// leg: a daemon restarted from snapshot + journal replay publishes a
// view with the same stream fingerprint, so the ETag — and the cached
// client state keyed on it — survives the restart, and a poll with the
// pre-restart validator still answers 304.
func TestReadPlaneETagStableAcrossRestart(t *testing.T) {
	opts := journalOptions{Every: 1 << 20, MaxBytes: 1 << 40} // force replay on restart
	dir := t.TempDir()
	_, srvA := testServerOpts(t, dir, opts)
	jtCreate(t, srvA.Client(), srvA.URL)
	jtFeed(t, srvA.Client(), srvA.URL, 0, 6)
	before := getRead(t, srvA.Client(), srvA.URL+"/v1/topics/"+journalTopicName+"/users/0", "")
	if before.status != http.StatusOK {
		t.Fatalf("pre-restart read: %d", before.status)
	}
	srvA.Close()

	_, srvB := testServerOpts(t, dir, opts)
	after := getRead(t, srvB.Client(), srvB.URL+"/v1/topics/"+journalTopicName+"/users/0", "")
	if after.status != http.StatusOK || after.etag != before.etag || string(after.body) != string(before.body) {
		t.Fatalf("post-replay read: status %d etag %q body %q, want etag %q body %q",
			after.status, after.etag, after.body, before.etag, before.body)
	}
	if c := getRead(t, srvB.Client(), srvB.URL+"/v1/topics/"+journalTopicName+"/users/0", before.etag); c.status != http.StatusNotModified {
		t.Fatalf("pre-restart validator after replay: status %d, want 304", c.status)
	}
}

// nullResponseWriter discards a response, so handler allocations can be
// measured without httptest recorder noise.
type nullResponseWriter struct{ h http.Header }

func (w *nullResponseWriter) Header() http.Header         { return w.h }
func (w *nullResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nullResponseWriter) WriteHeader(int)             {}

// TestReadPlaneServeAllocs pins the pooled read-path encoding at the
// ServeHTTP level: a revalidation (304) costs only routing plus the
// ETag/header strings that escape into the response, and a full 200
// costs little more — no per-request JSON machinery.
func TestReadPlaneServeAllocs(t *testing.T) {
	s, err := newServer("", serverOptions{}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	jtCreate(t, srv.Client(), srv.URL)
	jtFeed(t, srv.Client(), srv.URL, 0, 3)

	r := getRead(t, srv.Client(), srv.URL+"/v1/topics/"+journalTopicName+"/users/0", "")
	if r.status != http.StatusOK {
		t.Fatalf("warm read: %d", r.status)
	}

	w := &nullResponseWriter{h: make(http.Header)}
	fresh := httptest.NewRequest("GET", "/v1/topics/"+journalTopicName+"/users/0", nil)
	cond := httptest.NewRequest("GET", "/v1/topics/"+journalTopicName+"/users/0", nil)
	cond.Header.Set("If-None-Match", r.etag)

	condAllocs := testing.AllocsPerRun(200, func() { s.ServeHTTP(w, cond) })
	freshAllocs := testing.AllocsPerRun(200, func() { s.ServeHTTP(w, fresh) })
	t.Logf("user read allocs: %.1f revalidated (304), %.1f full (200)", condAllocs, freshAllocs)
	if condAllocs > 12 {
		t.Fatalf("304 path allocates %.1f per request, want <= 12 (measured 6)", condAllocs)
	}
	if freshAllocs > 16 {
		t.Fatalf("200 path allocates %.1f per request, want <= 16 (measured 7)", freshAllocs)
	}
}

// TestClusterReadersDuringMoveAndIngest is the read-plane stress leg of
// the cluster suite (run it under -race): readers hammer user-estimate
// and feature polls — conditional ones included — while the topic keeps
// ingesting batches and is handed between the two shards repeatedly.
// Readers must never observe a torn body (batch counter moving
// backwards) or a stale-epoch view (ETag epoch moving backwards), and
// every 304 must confirm exactly the validator the reader presented.
func TestClusterReadersDuringMoveAndIngest(t *testing.T) {
	tc := newTestCluster(t, 2, serverOptions{}, false, false)
	name := harnessTopicName(3)
	src := tc.ownerIdx(name)
	dst := 1 - src

	var sum topicSummary
	tc.retryJSON("POST", tc.url(src)+"/v1/topics", harnessCreateReq(3), &sum, http.StatusCreated)
	for day := 1; day <= 3; day++ {
		var br batchResponse
		tc.retryJSON("POST", tc.url(src)+"/v1/topics/"+name+"/batches", harnessBatch(3, day), &br, http.StatusOK)
	}

	var (
		done     atomic.Bool
		fail     = make(chan string, 16)
		okReads  atomic.Int64
		notMod   atomic.Int64
		wg       sync.WaitGroup
		lastDay  = 3
		moveWant = 4
	)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Readers: half conditional user polls, half feature polls, spread
	// over both shard URLs (redirects followed by tc.client).
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			url := tc.url(rdr%2) + "/v1/topics/" + name
			if rdr%2 == 1 {
				url += "/features"
			} else {
				url += "/users/1"
			}
			lastBatches, lastEpoch := -1, uint64(0)
			etag := ""
			for !done.Load() {
				req, err := http.NewRequest("GET", url, nil)
				if err != nil {
					report("reader %d: %v", rdr, err)
					return
				}
				if etag != "" {
					req.Header.Set("If-None-Match", etag)
				}
				resp, err := tc.client.Do(req)
				if err != nil {
					continue // shard mid-handoff; retry
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					got := resp.Header.Get("ETag")
					if !etagShape.MatchString(got) {
						report("reader %d: bad etag %q", rdr, got)
						return
					}
					e, ok := etagEpoch(got)
					if !ok {
						report("reader %d: malformed etag %q", rdr, got)
						return
					}
					if e < lastEpoch {
						report("reader %d: epoch went backwards %d -> %d", rdr, lastEpoch, e)
						return
					}
					lastEpoch = e
					var conv struct {
						Convergence convergenceJSON `json:"convergence"`
					}
					if err := json.Unmarshal(body, &conv); err != nil {
						report("reader %d: torn body %q: %v", rdr, body, err)
						return
					}
					if conv.Convergence.Batches < lastBatches {
						report("reader %d: batches went backwards %d -> %d", rdr, lastBatches, conv.Convergence.Batches)
						return
					}
					lastBatches = conv.Convergence.Batches
					etag = got
					okReads.Add(1)
				case http.StatusNotModified:
					if got := resp.Header.Get("ETag"); got != etag {
						report("reader %d: 304 for %q but sent %q", rdr, got, etag)
						return
					}
					notMod.Add(1)
				default:
					// 404/409/503/redirect-cap responses are expected while
					// a hand-off commits; the invariants only bind served
					// views.
				}
			}
		}(rdr)
	}

	// Writer + mover: keep ingesting while handing the topic back and
	// forth; each move must land with a bumped epoch.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer done.Store(true)
		owner, other := src, dst
		for move := 1; move <= moveWant; move++ {
			for i := 0; i < 2; i++ {
				lastDay++
				ok := false
				for attempt := 0; attempt < 600 && !ok; attempt++ {
					var br batchResponse
					code, err := doJSON(tc.client, "POST", tc.url(owner)+"/v1/topics/"+name+"/batches", harnessBatch(3, lastDay), &br)
					ok = err == nil && code == http.StatusOK
					if !ok {
						time.Sleep(5 * time.Millisecond)
					}
				}
				if !ok {
					report("writer: batch %d never accepted", lastDay)
					return
				}
			}
			var mv moveResponse
			ok := false
			for attempt := 0; attempt < 600 && !ok; attempt++ {
				code, err := doJSON(tc.client, "POST", tc.url(owner)+"/v1/cluster/move",
					moveRequest{Topic: name, Target: tc.url(other)}, &mv)
				ok = err == nil && code == http.StatusOK
				if !ok {
					time.Sleep(5 * time.Millisecond)
				}
			}
			if !ok {
				report("mover: move %d never committed", move)
				return
			}
			if mv.Epoch != uint64(move) {
				report("mover: move %d landed at epoch %d", move, mv.Epoch)
				return
			}
			owner, other = other, owner
		}
	}()

	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if okReads.Load() == 0 || notMod.Load() == 0 {
		t.Fatalf("stress observed %d full reads, %d revalidations — both paths must be exercised",
			okReads.Load(), notMod.Load())
	}
	t.Logf("stress: %d full reads, %d revalidations, %d moves", okReads.Load(), notMod.Load(), moveWant)
}

// TestReadPlaneDuringJournalRollback races the lock-free readers against
// the one write-path operation that swaps the topic's engine pointer:
// the journal-append-failure rollback (failJournalAppend reloads the
// topic from disk and stores a fresh engine). Readers must keep getting
// well-formed responses throughout — this is the -race proof that the
// engine pointer hand-off is safe without the topic lock — and after
// the rollback the validator must revert to the last durable one, per
// the README's rollback caveat.
func TestReadPlaneDuringJournalRollback(t *testing.T) {
	s, hs := testServerOpts(t, t.TempDir(), journalOptions{Every: 100})
	client := hs.Client()

	d, req := synthTopic(t, 41)
	if code, err := doJSON(client, "POST", hs.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, err)
	}
	url := hs.URL + "/v1/topics/" + req.Name + "/batches"
	for day := 1; day <= 2; day++ {
		if code, err := doJSON(client, "POST", url, batchRequest{Time: day, Tweets: dayTweets(d, day)}, nil); err != nil || code != http.StatusOK {
			t.Fatalf("day %d: %d %v", day, code, err)
		}
	}
	durable := getRead(t, client, hs.URL+"/v1/topics/"+req.Name+"/users/0", "")
	if durable.status != http.StatusOK || durable.etag == "" {
		t.Fatalf("pre-failure read: %+v", durable)
	}

	stop := make(chan struct{})
	fail := make(chan string, 8)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			readReq := httptest.NewRequest("GET", "/v1/topics/"+req.Name+"/users/0", nil)
			for {
				select {
				case <-stop:
					return
				default:
				}
				w := &nullResponseWriter{h: make(http.Header)}
				s.ServeHTTP(w, readReq)
				if et := w.h.Get("ETag"); !etagShape.MatchString(et) {
					select {
					case fail <- fmt.Sprintf("malformed ETag during rollback: %q", et):
					default:
					}
					return
				}
			}
		}()
	}

	// Sabotage the journal writer and trip the rollback while the
	// readers hammer the topic.
	s.mu.RLock()
	tp := s.topics[req.Name]
	s.mu.RUnlock()
	tp.mu.Lock()
	if tp.jw == nil {
		tp.mu.Unlock()
		t.Fatal("topic has no journal writer; the rollback path needs journaling on")
	}
	tp.jw.Close()
	tp.mu.Unlock()
	day3 := batchRequest{Time: 3, Tweets: dayTweets(d, 3)}
	if code, ec := errCode(t, client, "POST", url, day3); code != http.StatusServiceUnavailable || ec != codeJournalWriteFailed {
		t.Fatalf("batch on dead journal: %d %q, want 503 %q", code, ec, codeJournalWriteFailed)
	}

	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// The rollback re-published the last durable view: same validator,
	// so a conditional poll on the pre-failure ETag still answers 304.
	after := getRead(t, client, hs.URL+"/v1/topics/"+req.Name+"/users/0", durable.etag)
	if after.status != http.StatusNotModified {
		t.Fatalf("post-rollback conditional poll: %d (etag %q vs durable %q), want 304",
			after.status, after.etag, durable.etag)
	}
}
