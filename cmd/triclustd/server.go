package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"triclust"
)

// server is the HTTP façade over a registry of named, durable topics.
// Registry lookups take the read lock; create/restore/delete take the
// write lock. Each topic serializes its own batch processing with a
// per-topic mutex, so batches for independent topics are solved
// concurrently. With a data directory configured, every state-changing
// operation is followed by an atomic snapshot write, so a restarted
// daemon resumes exactly where it stopped.
type server struct {
	mu     sync.RWMutex
	topics map[string]*topic
	store  *store // nil: in-memory only
	logf   func(format string, args ...any)
	mux    *http.ServeMux
}

type topic struct {
	name    string
	created time.Time

	mu      sync.Mutex // serializes Process + persistence + deletion
	tp      *triclust.Topic
	deleted bool // set under mu by deleteTopic; no save may follow
}

// newServer builds the registry, restoring every snapshot found under
// dataDir (empty dataDir disables persistence).
func newServer(dataDir string, logf func(format string, args ...any)) (*server, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	st, err := newStore(dataDir)
	if err != nil {
		return nil, err
	}
	s := &server{topics: make(map[string]*topic), store: st, logf: logf}
	restored, err := st.loadAll(logf)
	if err != nil {
		return nil, err
	}
	for name, tp := range restored {
		s.topics[name] = &topic{name: name, created: time.Now().UTC(), tp: tp}
		s.logf("restored topic %q (%d batches, %d users)", name, tp.Batches(), tp.Users())
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/topics", s.createTopic)
	mux.HandleFunc("GET /v1/topics", s.listTopics)
	mux.HandleFunc("GET /v1/topics/{topic}", s.topicInfo)
	mux.HandleFunc("PUT /v1/topics/{topic}", s.restoreTopic)
	mux.HandleFunc("DELETE /v1/topics/{topic}", s.deleteTopic)
	mux.HandleFunc("POST /v1/topics/{topic}/batches", s.processBatch)
	mux.HandleFunc("POST /v1/topics/{topic}/vocab", s.warmupVocab)
	mux.HandleFunc("GET /v1/topics/{topic}/users/{user}", s.userEstimate)
	mux.HandleFunc("GET /v1/topics/{topic}/snapshot", s.exportSnapshot)
	mux.HandleFunc("GET /v1/topics/{topic}/features", s.featureSentiments)
	s.mux = mux
	return s, nil
}

// maxRequestBody bounds every request body (JSON and snapshot uploads)
// so a hostile client cannot make the daemon buffer gigabytes.
const maxRequestBody = 256 << 20

// ServeHTTP routes the versioned API.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBody)
	}
	s.mux.ServeHTTP(w, r)
}

// ——— wire types ———

type topicOptions struct {
	K          int      `json:"k,omitempty"`
	Alpha      *float64 `json:"alpha,omitempty"`
	Beta       *float64 `json:"beta,omitempty"`
	Gamma      *float64 `json:"gamma,omitempty"`
	Tau        *float64 `json:"tau,omitempty"`
	Window     int      `json:"window,omitempty"`
	MaxIter    int      `json:"max_iter,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	MinDF      int      `json:"min_df,omitempty"`
	LexiconHit float64  `json:"lexicon_hit,omitempty"`
}

func (o topicOptions) onlineConfig() triclust.OnlineConfig {
	cfg := triclust.DefaultStreamOptions().Config
	if o.K != 0 {
		cfg.K = o.K
	}
	if o.Alpha != nil {
		cfg.Alpha = *o.Alpha
	}
	if o.Beta != nil {
		cfg.Beta = *o.Beta
	}
	if o.Gamma != nil {
		cfg.Gamma = *o.Gamma
	}
	if o.Tau != nil {
		cfg.Tau = *o.Tau
	}
	if o.Window != 0 {
		cfg.Window = o.Window
	}
	if o.MaxIter != 0 {
		cfg.MaxIter = o.MaxIter
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

type createTopicRequest struct {
	Name string `json:"name"`
	// Users is the fixed user universe; tweets refer to users by index.
	Users   []string     `json:"users"`
	Options topicOptions `json:"options"`
}

type topicSummary struct {
	Name       string    `json:"name"`
	Created    time.Time `json:"created"`
	Users      int       `json:"users"`
	Batches    int       `json:"batches"`
	Skipped    int       `json:"skipped"`
	KnownUsers int       `json:"known_users"`
	VocabSize  int       `json:"vocab_size"`
	Frozen     bool      `json:"frozen"`
	LastTime   *int      `json:"last_time,omitempty"`
}

type tweetSpec struct {
	Text      string   `json:"text,omitempty"`
	Tokens    []string `json:"tokens,omitempty"`
	User      int      `json:"user"`
	Time      *int     `json:"time,omitempty"`       // default: the batch time
	RetweetOf *int     `json:"retweet_of,omitempty"` // batch-local index; default none
}

type batchRequest struct {
	Time   int         `json:"time"`
	Tweets []tweetSpec `json:"tweets"`
}

type sentimentJSON struct {
	Class      int     `json:"class"`
	ClassName  string  `json:"class_name"`
	Confidence float64 `json:"confidence"`
}

type userSentimentJSON struct {
	User int `json:"user"`
	sentimentJSON
}

type batchResponse struct {
	Time       int                 `json:"time"`
	Skipped    bool                `json:"skipped"`
	Iterations int                 `json:"iterations"`
	Converged  bool                `json:"converged"`
	Tweets     []sentimentJSON     `json:"tweets"`
	Users      []userSentimentJSON `json:"users"`
}

type vocabRequest struct {
	// Texts are warmed up through the topic's tokenizer; Docs are
	// pre-tokenized documents. Both may be given.
	Texts []string   `json:"texts,omitempty"`
	Docs  [][]string `json:"docs,omitempty"`
	// Freeze fixes the vocabulary right after folding the documents in.
	Freeze bool `json:"freeze,omitempty"`
}

type vocabResponse struct {
	Frozen    bool `json:"frozen"`
	VocabSize int  `json:"vocab_size"`
}

type featuresResponse struct {
	Vocabulary []string        `json:"vocabulary"`
	Features   []sentimentJSON `json:"features"`
}

// ——— handlers ———

func (s *server) createTopic(w http.ResponseWriter, r *http.Request) {
	var req createTopicRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if err := validTopicName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidName, err)
		return
	}
	if len(req.Users) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, errors.New("missing user universe"))
		return
	}
	users := make([]triclust.User, len(req.Users))
	for i, name := range req.Users {
		users[i] = triclust.User{Name: name, Label: triclust.NoLabel}
	}
	tr, err := triclust.NewTopic(users,
		triclust.WithSolverConfig(req.Options.onlineConfig()),
		triclust.WithMinDF(req.Options.MinDF),
		triclust.WithLexiconHit(req.Options.LexiconHit))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return
	}
	tp := &topic{name: req.Name, created: time.Now().UTC(), tp: tr}
	if !s.register(w, tp) {
		return
	}
	if !s.persistNew(w, tp) {
		return
	}
	writeJSON(w, http.StatusCreated, tp.summary())
}

// restoreTopic implements PUT /v1/topics/{topic}: the request body is a
// binary snapshot (from GET …/snapshot or triclust.Topic.Snapshot); the
// topic resumes exactly where the snapshot was taken.
func (s *server) restoreTopic(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("topic")
	if err := validTopicName(name); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidName, err)
		return
	}
	tr, err := triclust.Restore(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, snapshotErrorCode(err), err)
		return
	}
	tp := &topic{name: name, created: time.Now().UTC(), tp: tr}
	if !s.register(w, tp) {
		return
	}
	if !s.persistNew(w, tp) {
		return
	}
	writeJSON(w, http.StatusCreated, tp.summary())
}

// persistNew writes a freshly registered topic's first snapshot. A 201
// must imply durability when -data-dir is set, so on failure the topic
// is unregistered again and the request fails with storage_error.
func (s *server) persistNew(w http.ResponseWriter, tp *topic) bool {
	if err := s.store.save(tp.name, tp.tp); err != nil {
		s.mu.Lock()
		delete(s.topics, tp.name)
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, codeStorage,
			fmt.Errorf("topic not persisted: %w", err))
		return false
	}
	return true
}

// register installs a topic in the registry, failing with 409 if the
// name is taken.
func (s *server) register(w http.ResponseWriter, tp *topic) bool {
	s.mu.Lock()
	if _, exists := s.topics[tp.name]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, codeTopicExists,
			fmt.Errorf("topic %q already exists", tp.name))
		return false
	}
	s.topics[tp.name] = tp
	s.mu.Unlock()
	return true
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *topic {
	name := r.PathValue("topic")
	s.mu.RLock()
	tp := s.topics[name]
	s.mu.RUnlock()
	if tp == nil {
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("unknown topic %q", name))
	}
	return tp
}

func (s *server) listTopics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	topics := make([]*topic, 0, len(s.topics))
	for _, tp := range s.topics {
		topics = append(topics, tp)
	}
	s.mu.RUnlock()
	out := make([]topicSummary, len(topics))
	for i, tp := range topics {
		out[i] = tp.summary()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) topicInfo(w http.ResponseWriter, r *http.Request) {
	if tp := s.lookup(w, r); tp != nil {
		writeJSON(w, http.StatusOK, tp.summary())
	}
}

func (s *server) deleteTopic(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("topic")
	s.mu.Lock()
	tp, ok := s.topics[name]
	delete(s.topics, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("unknown topic %q", name))
		return
	}
	// Mark the topic deleted under its own lock before removing the
	// snapshot file, so an in-flight batch that already passed lookup
	// cannot re-persist (resurrect) the topic afterwards.
	tp.mu.Lock()
	tp.deleted = true
	s.store.remove(name)
	tp.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) processBatch(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode: %w", err))
		return
	}
	tweets := make([]triclust.Tweet, len(req.Tweets))
	for i, ts := range req.Tweets {
		tw := triclust.Tweet{
			Text:      ts.Text,
			Tokens:    ts.Tokens,
			User:      ts.User,
			Time:      req.Time,
			RetweetOf: -1,
			Label:     triclust.NoLabel,
		}
		if ts.Time != nil {
			tw.Time = *ts.Time
		}
		if ts.RetweetOf != nil {
			tw.RetweetOf = *ts.RetweetOf
		}
		tweets[i] = tw
	}

	tp.mu.Lock()
	if tp.deleted {
		tp.mu.Unlock()
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("topic %q was deleted", tp.name))
		return
	}
	if last, ok := tp.tp.LastTime(); ok && len(tweets) > 0 && req.Time <= last {
		tp.mu.Unlock()
		writeError(w, http.StatusConflict, codeStaleTimestamp,
			fmt.Errorf("time %d not after last processed %d", req.Time, last))
		return
	}
	out, err := tp.tp.Process(req.Time, tweets)
	if err != nil {
		tp.mu.Unlock()
		writeError(w, http.StatusUnprocessableEntity, codeInvalidBatch, err)
		return
	}
	if !out.Skipped {
		// Snapshot-on-batch durability: the new state is persisted before
		// the response is sent, so an acknowledged batch survives a
		// restart.
		if err := s.store.save(tp.name, tp.tp); err != nil {
			tp.mu.Unlock()
			writeError(w, http.StatusInternalServerError, codeStorage,
				fmt.Errorf("batch applied in memory but snapshot not persisted: %w", err))
			return
		}
	}
	tp.mu.Unlock()

	resp := batchResponse{
		Time:    req.Time,
		Skipped: out.Skipped,
		Tweets:  toJSON(out.TweetSentiments),
		Users:   make([]userSentimentJSON, len(out.UserSentiments)),
	}
	resp.Iterations = out.Iterations
	resp.Converged = out.Converged
	for i, sen := range out.UserSentiments {
		resp.Users[i] = userSentimentJSON{User: out.ActiveUsers[i], sentimentJSON: oneJSON(sen)}
	}
	writeJSON(w, http.StatusOK, resp)
}

// warmupVocab implements POST /v1/topics/{topic}/vocab: fold warm-up
// documents into the vocabulary before the first batch freezes it, and
// optionally freeze it explicitly.
func (s *server) warmupVocab(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	var req vocabRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode: %w", err))
		return
	}
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.deleted {
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("topic %q was deleted", tp.name))
		return
	}
	if len(req.Texts) > 0 {
		if err := tp.tp.WarmupVocabulary(req.Texts...); err != nil {
			writeError(w, http.StatusConflict, codeVocabFrozen, err)
			return
		}
	}
	if len(req.Docs) > 0 {
		if err := tp.tp.WarmupTokenized(req.Docs); err != nil {
			writeError(w, http.StatusConflict, codeVocabFrozen, err)
			return
		}
	}
	if req.Freeze {
		if err := tp.tp.Freeze(); err != nil {
			// Freeze fails for two distinct reasons: the vocabulary is
			// already frozen (a conflict) or the warm-up counts yield no
			// words at MinDF (a bad request, fixed by sending more docs).
			if tp.tp.Frozen() {
				writeError(w, http.StatusConflict, codeVocabFrozen, err)
			} else {
				writeError(w, http.StatusUnprocessableEntity, codeInvalidRequest, err)
			}
			return
		}
	}
	if err := s.store.save(tp.name, tp.tp); err != nil {
		writeError(w, http.StatusInternalServerError, codeStorage, err)
		return
	}
	writeJSON(w, http.StatusOK, vocabResponse{
		Frozen:    tp.tp.Frozen(),
		VocabSize: tp.tp.VocabSize(),
	})
}

func (s *server) userEstimate(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	user, err := strconv.Atoi(r.PathValue("user"))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("bad user id: %w", err))
		return
	}
	est, ok := tp.tp.UserEstimate(user)
	if !ok {
		writeError(w, http.StatusNotFound, codeUserNotFound, fmt.Errorf("user %d has no history", user))
		return
	}
	writeJSON(w, http.StatusOK, userSentimentJSON{User: user, sentimentJSON: oneJSON(est)})
}

// exportSnapshot implements GET /v1/topics/{topic}/snapshot: the durable
// binary export. The body round-trips through PUT /v1/topics/{name} (on
// this or another daemon) and through triclust.Restore.
func (s *server) exportSnapshot(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", tp.name+".snap"))
	if err := tp.tp.Snapshot(w); err != nil {
		// Headers are committed; all we can do is drop the connection so
		// the client sees a truncated (checksum-failing) body.
		s.logf("snapshot %q: %v", tp.name, err)
		panic(http.ErrAbortHandler)
	}
}

// featureSentiments returns the vocabulary with the learned per-word
// sentiments of the most recent solve (the JSON companion to the binary
// snapshot). Because it labels the topic's own last factors — which the
// snapshot carries — it serves the same data after a restart or restore.
func (s *server) featureSentiments(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	writeJSON(w, http.StatusOK, featuresResponse{
		Vocabulary: tp.tp.Vocabulary(),
		Features:   toJSON(tp.tp.FeatureSentiments()),
	})
}

// snapshotAll persists every topic (used for the final snapshot during
// graceful shutdown). It reports the first error but keeps going.
func (s *server) snapshotAll() error {
	if s.store == nil {
		return nil
	}
	s.mu.RLock()
	topics := make([]*topic, 0, len(s.topics))
	for _, tp := range s.topics {
		topics = append(topics, tp)
	}
	s.mu.RUnlock()
	var first error
	for _, tp := range topics {
		tp.mu.Lock()
		var err error
		if !tp.deleted {
			err = s.store.save(tp.name, tp.tp)
		}
		tp.mu.Unlock()
		if err != nil {
			s.logf("final snapshot %q: %v", tp.name, err)
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// ——— helpers ———

func (tp *topic) summary() topicSummary {
	sum := topicSummary{
		Name:       tp.name,
		Created:    tp.created,
		Users:      tp.tp.Users(),
		Batches:    tp.tp.Batches(),
		Skipped:    tp.tp.SkippedBatches(),
		KnownUsers: tp.tp.KnownUsers(),
	}
	sum.VocabSize = tp.tp.VocabSize()
	sum.Frozen = tp.tp.Frozen()
	if last, ok := tp.tp.LastTime(); ok {
		sum.LastTime = &last
	}
	return sum
}

func oneJSON(s triclust.Sentiment) sentimentJSON {
	return sentimentJSON{
		Class:      s.Class,
		ClassName:  triclust.ClassName(s.Class),
		Confidence: s.Confidence,
	}
}

func toJSON(ss []triclust.Sentiment) []sentimentJSON {
	out := make([]sentimentJSON, len(ss))
	for i, s := range ss {
		out[i] = oneJSON(s)
	}
	return out
}
