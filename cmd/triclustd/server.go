package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"triclust"
	"triclust/internal/cluster"
	"triclust/internal/codec"
	"triclust/internal/fault"
	"triclust/internal/journal"
)

// server is the HTTP façade over a registry of named, durable topics.
// Registry lookups take the read lock; create/restore/delete take the
// write lock. Each topic serializes its own batch processing with a
// per-topic mutex, so batches for independent topics are solved
// concurrently. With a data directory configured, every state-changing
// operation is followed by an atomic snapshot write, so a restarted
// daemon resumes exactly where it stopped.
type server struct {
	mu     sync.RWMutex
	topics map[string]*topic
	// moved records topics this shard handed off to another shard
	// (tombstones): the ownership epoch they left at and where they went.
	// Guarded by mu, persisted as <topic>.moved markers when a data
	// directory is configured. A name is never in both topics and moved
	// visibility-wise: while a hand-off is in flight the registry entry
	// wins (lookups serve it until the move commits).
	moved map[string]cluster.Tombstone
	store *store // nil: in-memory only
	logf  func(format string, args ...any)
	mux   *http.ServeMux
	// cluster is non-nil when the daemon runs as one shard of a
	// consistent-hash cluster (see cluster.go); nil preserves the exact
	// single-process behavior.
	cluster *clusterConfig
	// repl is non-nil when -replication-factor >= 2: this shard ships its
	// topics' journals to ring successors and holds cold replicas for
	// peers (see repl.go).
	repl *replicator
	// storage runs the disk-degraded state machine (see degrade.go);
	// non-nil exactly when store is.
	storage *storageMonitor
	// maxBody bounds every request body; 0 selects defaultMaxBody.
	maxBody int64

	// reads / notModified count read-plane requests and If-None-Match
	// hits (see readplane.go); atomic because the read path takes no lock.
	reads       atomic.Uint64
	notModified atomic.Uint64

	// conform is the shard-wide -conform-mode policy, stamped onto every
	// topic this server serves; conformRejected counts enforce-mode batch
	// rejections (which leave no durable trace — see conform.go).
	conform         triclust.ConformanceMode
	conformRejected atomic.Uint64

	// nameLocks serializes snapshot-file saves and removes per topic
	// name. Neither the registry lock nor a per-topic mutex can play this
	// role: a name can be deleted and re-created while an older
	// instance's save is still in flight, and the two instances' saves
	// hold different topic mutexes. Entries are refcounted and dropped on
	// last release, so name churn does not grow the map without bound.
	nameMu    sync.Mutex
	nameLocks map[string]*nameLock
}

type nameLock struct {
	mu   sync.Mutex
	refs int
}

type topic struct {
	name    string
	created time.Time

	mu sync.Mutex // serializes Process + persistence + deletion
	// engp holds the engine. All mutations happen under mu, but the
	// pointer itself is atomic because the lock-free read plane loads
	// it without mu while failJournalAppend may be swapping in an
	// engine reloaded from disk (the rollback path). Access via eng().
	engp    atomic.Pointer[triclust.Topic]
	deleted bool // set under mu by deleteTopic; no save may follow
	// jw appends this topic's batch journal (nil before the first
	// snapshot save, or when journaling is off); jRecords counts the
	// records appended since the last snapshot. Both are guarded by mu.
	jw       *journal.Writer
	jRecords int
	// saved reports that a snapshot of this topic instance is on disk.
	// It is read and written only under the instance's name lock, where
	// it tells removeStale whether <name>.snap belongs to the currently
	// registered topic or to a deleted earlier incarnation of the name.
	saved bool
	// degraded is set when the topic's last journal append failed (disk
	// full, I/O error): the batch was refused with journal_write_failed
	// and healthz reports the topic until an append or snapshot succeeds.
	// Atomic so healthz can read it without the topic lock.
	degraded atomic.Bool
	// storage is the topic's disk-degraded state (stOK/stDegraded/
	// stParked) and storFails its consecutive durable-write failure
	// count; both driven by the storageMonitor (degrade.go). Atomic so
	// the write gate and read plane check them without the topic lock.
	storage   atomic.Int32
	storFails atomic.Int32
	// feat caches the encoded /features response for the current read
	// view's ETag (see readplane.go); lock-free like the view itself.
	feat atomic.Pointer[cachedRead]
	// lastViol is the topic's most recent flagged/quarantined verdict,
	// for the healthz conformance census (see conform.go). Atomic so
	// healthz reads it without the topic lock.
	lastViol atomic.Pointer[violationJSON]
}

// serverOptions bundle the daemon's tunables beyond the data directory:
// journaling cadence, the request-body bound, and — when the daemon runs
// as one shard of a cluster — the placement configuration.
type serverOptions struct {
	journal journalOptions
	// maxBody bounds every request body in bytes (0: defaultMaxBody).
	maxBody int64
	// cluster enables sharded routing; nil runs single-process.
	cluster *clusterConfig
	// repl enables journal-shipped replication (nil or Factor < 2: off).
	// Requires cluster mode and a data directory.
	repl *replOptions
	// conform is the -conform-mode policy for every topic this shard
	// serves (zero value: off).
	conform triclust.ConformanceMode
	// fs is the filesystem every durable write goes through (nil:
	// fault.OS). Tests inject a fault.Script here to exercise crash
	// points and degraded mode.
	fs fault.FS
	// storage tunes the disk-degraded state machine (see degrade.go).
	storage storageOptions
}

// newServer builds the registry, restoring every snapshot found under
// dataDir (empty dataDir disables persistence) and replaying each
// topic's journal tail. Topics whose in-memory state ran ahead of their
// snapshot (replayed records) are compacted immediately, so a restart
// never begins with a growing recovery debt. Hand-off tombstones are
// reloaded alongside the snapshots; a topic with both a snapshot and a
// tombstone was caught mid-move and is held back from serving until the
// move is retried (see resumeMove).
func newServer(dataDir string, opts serverOptions, logf func(format string, args ...any)) (*server, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	st, err := newStore(dataDir, opts.journal, opts.fs)
	if err != nil {
		return nil, err
	}
	s := &server{
		topics:    make(map[string]*topic),
		moved:     make(map[string]cluster.Tombstone),
		store:     st,
		logf:      logf,
		cluster:   opts.cluster,
		maxBody:   opts.maxBody,
		conform:   opts.conform,
		nameLocks: make(map[string]*nameLock),
	}
	if st != nil {
		s.storage = newStorageMonitor(s, opts.storage)
	}
	restored, err := st.loadAll(logf)
	if err != nil {
		return nil, err
	}
	if st != nil {
		tombs, err := cluster.LoadTombstones(st.dir, func(format string, args ...any) {
			st.quarantined.Add(1)
			logf(format, args...)
		})
		if err != nil {
			return nil, err
		}
		for name, ts := range tombs {
			s.moved[name] = ts
			if _, pending := restored[name]; pending {
				// The daemon crashed between writing the hand-off intent
				// and deleting the topic's files: the tombstone fences
				// writes, the snapshot stays for a move retry.
				delete(restored, name)
				s.logf("topic %q has an interrupted hand-off to %s (epoch %d); refusing writes until the move is retried",
					name, ts.Target, ts.Epoch)
			}
		}
	}
	for name, rt := range restored {
		// Journal replay (inside loadAll) ran without a conformance mode:
		// recorded batches were already accepted once, so replay must
		// redo them regardless of today's policy. The mode applies to new
		// batches only, from here on.
		rt.tp.SetConformanceMode(opts.conform)
		tp := &topic{name: name, created: time.Now().UTC(), saved: true}
		tp.engp.Store(rt.tp)
		s.topics[name] = tp
		if rt.replayed > 0 {
			s.logf("restored topic %q (%d batches, %d users; %d journal records replayed)",
				name, rt.tp.Batches(), rt.tp.Users(), rt.replayed)
			tp.mu.Lock()
			if _, err := s.saveIfCurrent(tp); err != nil {
				// Not fatal: the journal still holds the replayed
				// records, so durability is intact; the next successful
				// save compacts.
				s.logf("startup compaction of %q: %v", name, err)
			}
			tp.mu.Unlock()
		} else {
			s.logf("restored topic %q (%d batches, %d users)", name, rt.tp.Batches(), rt.tp.Users())
		}
	}

	if opts.repl != nil && opts.repl.Factor >= 2 {
		if opts.cluster == nil {
			return nil, errors.New("-replication-factor needs cluster mode (-peers and -self)")
		}
		if st == nil {
			return nil, errors.New("-replication-factor needs a -data-dir (cold replicas live on disk)")
		}
		s.repl = newReplicator(s, *opts.repl)
		s.repl.loadReplicas()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/healthz", s.healthz)
	mux.HandleFunc("POST /v1/topics", s.createTopic)
	mux.HandleFunc("GET /v1/topics", s.listTopics)
	mux.HandleFunc("GET /v1/topics/{topic}", s.topicInfo)
	mux.HandleFunc("PUT /v1/topics/{topic}", s.restoreTopic)
	mux.HandleFunc("DELETE /v1/topics/{topic}", s.deleteTopic)
	mux.HandleFunc("POST /v1/topics/{topic}/batches", s.processBatch)
	mux.HandleFunc("POST /v1/topics/{topic}/vocab", s.warmupVocab)
	mux.HandleFunc("GET /v1/topics/{topic}/users/{user}", s.userEstimate)
	mux.HandleFunc("GET /v1/topics/{topic}/snapshot", s.exportSnapshot)
	mux.HandleFunc("GET /v1/topics/{topic}/features", s.featureSentiments)
	mux.HandleFunc("POST /v1/cluster/move", s.moveTopic)
	mux.HandleFunc("GET /v1/cluster/info", s.clusterInfo)
	mux.HandleFunc("POST /v1/replica/{topic}/append", s.replicaAppend)
	mux.HandleFunc("DELETE /v1/replica/{topic}", s.replicaDrop)
	s.mux = mux
	return s, nil
}

// start launches the server's background machinery — the failure
// detector, the resync worker and the optional rebalancer. Kept out of
// newServer so construction stays side-effect-free (tests that never
// exercise replication need no goroutines and no Close).
func (s *server) start() {
	if s.repl != nil {
		s.repl.start()
	}
}

// Close stops the background machinery and releases replica journal
// handles. Idempotent; a server that was never started closes cleanly.
func (s *server) Close() error {
	if s.repl != nil {
		s.repl.close()
	}
	s.storage.close()
	return nil
}

// defaultMaxBody bounds every request body (JSON and snapshot uploads)
// when -max-body-bytes is not set, so a hostile client cannot make the
// daemon buffer gigabytes.
const defaultMaxBody = 256 << 20

func (s *server) maxBodyBytes() int64 {
	if s.maxBody > 0 {
		return s.maxBody
	}
	return defaultMaxBody
}

// ServeHTTP routes the versioned API.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes())
	}
	s.mux.ServeHTTP(w, r)
}

// healthResponse is the body of GET /v1/healthz: liveness plus the
// numbers an operator (or the cluster test harness) needs to decide a
// shard is ready — how many topics it serves and how many data-dir files
// startup had to quarantine or skip instead of loading.
type healthResponse struct {
	Status string `json:"status"`
	Topics int    `json:"topics"`
	// Quarantined counts startup files that could not be served:
	// quarantined snapshots/journals plus unreadable strays. Non-zero
	// means an operator should inspect the data directory; before this
	// counter existed, quarantine was silent unless you listed the files.
	Quarantined int            `json:"quarantined"`
	Cluster     *clusterHealth `json:"cluster,omitempty"`
	// Degraded lists topics whose last journal append failed: they are
	// serving reads but refusing batches with journal_write_failed until
	// the disk recovers. Non-empty flips Status to "degraded".
	Degraded []string `json:"degraded,omitempty"`
	// Replication reports the shard's replication state (factor, down
	// peers, held replicas, per-follower shipping lag); absent when
	// replication is off.
	Replication *replicationHealth `json:"replication,omitempty"`
	// Storage reports the disk-degraded state machine: which topics are
	// read-only or parked, the shard-level read-only switch, and the
	// failure/probe/recovery counters (see degrade.go). Absent without a
	// data directory.
	Storage *storageHealth `json:"storage,omitempty"`
	// ReadPlane reports lock-free read-path traffic (total reads, 304
	// revalidation hits) and the convergence-state census of the served
	// topics (see readplane.go).
	ReadPlane *readPlaneHealth `json:"read_plane"`
	// Conformance reports the shard's conformance mode, enforce-mode
	// rejection count, and the per-topic drift census (see conform.go).
	Conformance *conformanceHealth `json:"conformance"`
}

type clusterHealth struct {
	Self        string   `json:"self"`
	Peers       []string `json:"peers"`
	Vnodes      int      `json:"vnodes"`
	MovedTopics int      `json:"moved_topics"`
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	topics := len(s.topics)
	movedTopics := len(s.moved)
	var degraded []string
	served := make([]*topic, 0, len(s.topics))
	for name, tp := range s.topics {
		served = append(served, tp)
		if tp.degraded.Load() {
			degraded = append(degraded, name)
		}
	}
	s.mu.RUnlock()
	resp := healthResponse{
		Status:      "ok",
		Topics:      topics,
		ReadPlane:   s.readPlaneHealth(served),
		Conformance: s.conformanceHealth(served),
	}
	if len(degraded) > 0 {
		sort.Strings(degraded)
		resp.Status = "degraded"
		resp.Degraded = degraded
	}
	if s.store != nil {
		resp.Quarantined = int(s.store.quarantined.Load())
	}
	if sh := s.storage.health(served); sh != nil {
		resp.Storage = sh
		if sh.State != "ok" {
			resp.Status = "degraded"
		}
	}
	if c := s.cluster; c != nil {
		resp.Cluster = &clusterHealth{
			Self:        c.self,
			Peers:       c.ring.Peers(),
			Vnodes:      c.ring.VirtualNodes(),
			MovedTopics: movedTopics,
		}
	}
	if rp := s.repl; rp != nil {
		resp.Replication = rp.health()
	}
	writeJSON(w, http.StatusOK, resp)
}

// ——— wire types ———

type topicOptions struct {
	K          int      `json:"k,omitempty"`
	Alpha      *float64 `json:"alpha,omitempty"`
	Beta       *float64 `json:"beta,omitempty"`
	Gamma      *float64 `json:"gamma,omitempty"`
	Tau        *float64 `json:"tau,omitempty"`
	Window     int      `json:"window,omitempty"`
	MaxIter    int      `json:"max_iter,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	MinDF      int      `json:"min_df,omitempty"`
	LexiconHit float64  `json:"lexicon_hit,omitempty"`
}

func (o topicOptions) onlineConfig() triclust.OnlineConfig {
	cfg := triclust.DefaultStreamOptions().Config
	if o.K != 0 {
		cfg.K = o.K
	}
	if o.Alpha != nil {
		cfg.Alpha = *o.Alpha
	}
	if o.Beta != nil {
		cfg.Beta = *o.Beta
	}
	if o.Gamma != nil {
		cfg.Gamma = *o.Gamma
	}
	if o.Tau != nil {
		cfg.Tau = *o.Tau
	}
	if o.Window != 0 {
		cfg.Window = o.Window
	}
	if o.MaxIter != 0 {
		cfg.MaxIter = o.MaxIter
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

type createTopicRequest struct {
	Name string `json:"name"`
	// Users is the fixed user universe; tweets refer to users by index.
	Users   []string     `json:"users"`
	Options topicOptions `json:"options"`
}

type topicSummary struct {
	Name        string           `json:"name"`
	Created     time.Time        `json:"created"`
	Users       int              `json:"users"`
	Batches     int              `json:"batches"`
	Skipped     int              `json:"skipped"`
	KnownUsers  int              `json:"known_users"`
	VocabSize   int              `json:"vocab_size"`
	Frozen      bool             `json:"frozen"`
	LastTime    *int             `json:"last_time,omitempty"`
	Convergence *convergenceJSON `json:"convergence,omitempty"`
}

type tweetSpec struct {
	Text      string   `json:"text,omitempty"`
	Tokens    []string `json:"tokens,omitempty"`
	User      int      `json:"user"`
	Time      *int     `json:"time,omitempty"`       // default: the batch time
	RetweetOf *int     `json:"retweet_of,omitempty"` // batch-local index; default none
}

type batchRequest struct {
	Time   int         `json:"time"`
	Tweets []tweetSpec `json:"tweets"`
}

type sentimentJSON struct {
	Class      int     `json:"class"`
	ClassName  string  `json:"class_name"`
	Confidence float64 `json:"confidence"`
}

type userSentimentJSON struct {
	User int `json:"user"`
	sentimentJSON
}

type batchResponse struct {
	Time       int                 `json:"time"`
	Skipped    bool                `json:"skipped"`
	Iterations int                 `json:"iterations"`
	Converged  bool                `json:"converged"`
	Tweets     []sentimentJSON     `json:"tweets"`
	Users      []userSentimentJSON `json:"users"`
	// Conformance is the batch's verdict against the topic's learned
	// stream profile; present in flag/enforce mode once the profile has
	// warmed up.
	Conformance *verdictJSON `json:"conformance,omitempty"`
}

type vocabRequest struct {
	// Texts are warmed up through the topic's tokenizer; Docs are
	// pre-tokenized documents. Both may be given.
	Texts []string   `json:"texts,omitempty"`
	Docs  [][]string `json:"docs,omitempty"`
	// Freeze fixes the vocabulary right after folding the documents in.
	Freeze bool `json:"freeze,omitempty"`
}

type vocabResponse struct {
	Frozen    bool `json:"frozen"`
	VocabSize int  `json:"vocab_size"`
}

type featuresResponse struct {
	Vocabulary  []string         `json:"vocabulary"`
	Features    []sentimentJSON  `json:"features"`
	Convergence *convergenceJSON `json:"convergence,omitempty"`
}

// ——— handlers ———

// readBody buffers a request body (already bounded by -max-body-bytes in
// ServeHTTP) so handlers can decode it and still forward it intact to
// another shard. On failure the error response — 413 for an oversized
// body, 400 otherwise — is written and ok is false.
func (s *server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, ok bool) {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		status, code := requestErrorStatus(err)
		writeError(w, status, code, fmt.Errorf("read body: %w", err))
		return nil, false
	}
	return buf.Bytes(), true
}

func (s *server) createTopic(w http.ResponseWriter, r *http.Request) {
	if _, ok := requireMediaType(w, r, mediaTypeJSON); !ok {
		return
	}
	// The topic name lives in the body, so routing needs the body decoded
	// first; it is buffered so a mis-routed create can be proxied onward
	// intact.
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req createTopicRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if err := validTopicName(req.Name); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidName, err)
		return
	}
	if !s.routeTopic(w, r, req.Name, body) {
		return
	}
	if status, code, err := s.storage.shardGate(); code != "" {
		s.retryAfter(w, code)
		writeError(w, status, code, err)
		return
	}
	if len(req.Users) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, errors.New("missing user universe"))
		return
	}
	users := make([]triclust.User, len(req.Users))
	for i, name := range req.Users {
		users[i] = triclust.User{Name: name, Label: triclust.NoLabel}
	}
	tr, err := triclust.NewTopic(users,
		triclust.WithSolverConfig(req.Options.onlineConfig()),
		triclust.WithMinDF(req.Options.MinDF),
		triclust.WithLexiconHit(req.Options.LexiconHit))
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidConfig, err)
		return
	}
	tr.SetConformanceMode(s.conform)
	tp := &topic{name: req.Name, created: time.Now().UTC()}
	tp.engp.Store(tr)
	if !s.register(w, tp, 0) {
		return
	}
	if !s.persistNew(w, tp) {
		return
	}
	writeJSON(w, http.StatusCreated, tp.summary())
}

// restoreTopic implements PUT /v1/topics/{topic}: the request body is a
// binary snapshot (from GET …/snapshot or triclust.Topic.Snapshot); the
// topic resumes exactly where the snapshot was taken. In cluster mode the
// same endpoint is the hand-off installation path: a move's PUT carries
// the handoff header, which pins the topic to this shard regardless of
// ring placement. Either way the snapshot's ownership epoch must beat any
// tombstone this shard holds for the name.
func (s *server) restoreTopic(w http.ResponseWriter, r *http.Request) {
	if _, ok := requireMediaType(w, r, mediaTypeSnapshot); !ok {
		return
	}
	name := r.PathValue("topic")
	if err := validTopicName(name); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidName, err)
		return
	}
	// The body is buffered (bounded by -max-body-bytes) so an oversized
	// upload maps to 413 instead of a generic snapshot-corruption error,
	// and so a mis-routed restore can be proxied onward.
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if !s.routeTopic(w, r, name, body) {
		return
	}
	if status, code, err := s.storage.shardGate(); code != "" {
		s.retryAfter(w, code)
		writeError(w, status, code, err)
		return
	}
	tr, err := triclust.Restore(bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadRequest, snapshotErrorCode(err), err)
		return
	}
	tr.SetConformanceMode(s.conform)
	tp := &topic{name: name, created: time.Now().UTC()}
	tp.engp.Store(tr)
	if !s.register(w, tp, tr.Epoch()) {
		return
	}
	if !s.persistNew(w, tp) {
		return
	}
	writeJSON(w, http.StatusCreated, tp.summary())
}

// lockName acquires the per-name snapshot-file lock, creating it on
// first use. Pair with unlockName, which drops the map entry when the
// last holder or waiter releases it.
func (s *server) lockName(name string) *nameLock {
	s.nameMu.Lock()
	l := s.nameLocks[name]
	if l == nil {
		l = new(nameLock)
		s.nameLocks[name] = l
	}
	l.refs++
	s.nameMu.Unlock()
	l.mu.Lock()
	return l
}

func (s *server) unlockName(name string, l *nameLock) {
	l.mu.Unlock()
	s.nameMu.Lock()
	if l.refs--; l.refs == 0 {
		delete(s.nameLocks, name)
	}
	s.nameMu.Unlock()
}

// saveIfCurrent persists tp's snapshot if tp is still the topic the
// registry serves under its name, reporting whether it was. Holding the
// per-name lock across the registry re-check and the write orders the
// save against concurrent removes and against saves of other same-named
// instances, so <name>.snap always holds the state of the topic a
// restarted daemon would be expected to serve under that name. Lock
// order here and in every other path is tp.mu → name lock → s.mu; every
// caller holds tp.mu, which also guards the journal rotation.
//
// A successful snapshot save is a compaction point: the journal is
// truncated and re-headed with the new snapshot's identity, so recovery
// cost is bounded by the records since the last snapshot.
func (s *server) saveIfCurrent(tp *topic) (bool, error) {
	if s.store == nil {
		return true, nil
	}
	l := s.lockName(tp.name)
	defer s.unlockName(tp.name, l)
	s.mu.RLock()
	current := s.topics[tp.name] == tp
	s.mu.RUnlock()
	if !current {
		return false, nil
	}
	crc, err := s.store.save(tp.name, tp.eng())
	if err != nil {
		s.storage.noteFailure(tp, err)
		return true, err
	}
	s.storage.noteSuccess(tp)
	tp.saved = true
	s.rotateJournal(tp, crc)
	return true, nil
}

// rotateJournal starts a fresh journal extending the snapshot just
// written. An open journal rotates in place on its own descriptor (the
// hand-off/compaction hook, journal.Writer.Rotate); otherwise a new file
// is created. On failure the daemon degrades to snapshot-on-every-batch
// for this topic (jw stays nil) instead of serving without durability.
// Called with tp.mu and the per-name lock held.
func (s *server) rotateJournal(tp *topic, snapCRC uint32) {
	if !s.store.journaling() {
		return
	}
	tp.jRecords = 0
	if tp.jw != nil {
		if err := tp.jw.Rotate(snapCRC); err == nil {
			return
		} else {
			s.logf("journal rotate %q: %v (recreating)", tp.name, err)
			tp.jw.Close()
			tp.jw = nil
		}
	}
	jw, err := journal.Create(s.store.fs, s.store.journalPath(tp.name), snapCRC)
	if err != nil {
		s.logf("journal create %q: %v (falling back to snapshot-per-batch)", tp.name, err)
		return
	}
	if err := s.store.syncDir(); err != nil {
		s.logf("journal dir sync %q: %v (falling back to snapshot-per-batch)", tp.name, err)
		jw.Close()
		return
	}
	tp.jw = jw
}

// removeStale deletes <name>.snap unless the file belongs to the
// currently registered topic, i.e. unless that topic has completed a
// save under the per-name lock. This covers both the deleted-name case
// (no registered topic) and the re-created-but-not-yet-persisted case:
// there the file still holds a previous, deleted incarnation's state,
// and keeping it would resurrect that topic if the daemon crashed
// before the new topic's first save.
func (s *server) removeStale(name string) {
	if s.store == nil {
		return
	}
	l := s.lockName(name)
	defer s.unlockName(name, l)
	s.mu.RLock()
	cur := s.topics[name]
	s.mu.RUnlock()
	if cur == nil || !cur.saved {
		s.store.remove(name)
	}
}

// persistNew writes a freshly registered topic's first snapshot. A 201
// must imply durability when -data-dir is set, so on failure the topic
// is unregistered again and the request fails with storage_error; a
// DELETE racing in between register and this save must not leave an
// orphan snapshot that resurrects the topic on the next restart.
func (s *server) persistNew(w http.ResponseWriter, tp *topic) bool {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	ok, err := s.saveIfCurrent(tp)
	if err != nil {
		s.mu.Lock()
		// Unregister only if the entry is still this topic; the name may
		// have been deleted and re-created concurrently.
		if s.topics[tp.name] == tp {
			delete(s.topics, tp.name)
		}
		s.mu.Unlock()
		// With this topic unregistered, any snapshot file left on disk
		// belongs to an earlier, deleted incarnation of the name (the
		// name was free when this topic registered): drop it so the
		// failed create cannot resurrect that topic on restart.
		s.removeStale(tp.name)
		writeError(w, http.StatusInternalServerError, codeStorage,
			fmt.Errorf("topic not persisted: %w", err))
		return false
	}
	if !ok {
		writeError(w, http.StatusNotFound, codeTopicNotFound,
			fmt.Errorf("topic %q was deleted while being created", tp.name))
		return false
	}
	// Seed the topic's followers with its base snapshot before the 201:
	// a replicated topic's creation ack implies RF copies exist (or are
	// at least queued for resync). Only a fencing verdict fails the
	// request — this shard learned it does not own the name after all.
	if status, code, err := s.replShip(tp, nil, 0, 0, false); err != nil {
		writeError(w, status, code, err)
		return false
	}
	return true
}

// register installs a topic in the registry, writing the 409 response
// itself when the name is taken or a tombstone fences the epoch (the
// HTTP wrapper around tryRegister).
func (s *server) register(w http.ResponseWriter, tp *topic, epoch uint64) bool {
	if code, err := s.tryRegister(tp, epoch); err != nil {
		writeError(w, http.StatusConflict, code, err)
		return false
	}
	return true
}

// tryRegister installs a topic in the registry, failing with a stable
// error code if the name is taken or if a hand-off tombstone fences the
// topic's epoch. epoch is the ownership epoch the topic arrives with (0
// for a fresh create): a shard that handed the topic away at epoch E
// accepts it back only at a strictly greater epoch, so a stale pre-move
// snapshot can never resurrect forked state. Registering at a valid
// epoch clears the tombstone — the topic legitimately lives here again.
func (s *server) tryRegister(tp *topic, epoch uint64) (string, error) {
	s.mu.Lock()
	if mv, ok := s.moved[tp.name]; ok && epoch <= mv.Epoch {
		s.mu.Unlock()
		return codeEpochMismatch,
			fmt.Errorf("topic %q was handed off to %s at epoch %d; refusing state at epoch %d",
				tp.name, mv.Target, mv.Epoch, epoch)
	}
	if _, exists := s.topics[tp.name]; exists {
		s.mu.Unlock()
		return codeTopicExists, fmt.Errorf("topic %q already exists", tp.name)
	}
	s.topics[tp.name] = tp
	_, wasMoved := s.moved[tp.name]
	delete(s.moved, tp.name)
	s.mu.Unlock()
	if wasMoved && s.store != nil {
		l := s.lockName(tp.name)
		if err := cluster.RemoveTombstone(s.store.fs, s.store.dir, tp.name); err != nil {
			s.logf("remove tombstone %q: %v", tp.name, err)
		}
		s.unlockName(tp.name, l)
	}
	return "", nil
}

// lookup resolves the request's topic, routing it to the owning shard
// first in cluster mode: a request for a topic this shard neither holds
// nor owns is redirected (or proxied) and lookup returns nil with the
// response already written.
func (s *server) lookup(w http.ResponseWriter, r *http.Request) *topic {
	name := r.PathValue("topic")
	if !s.routeTopic(w, r, name, nil) {
		return nil
	}
	s.mu.RLock()
	tp := s.topics[name]
	s.mu.RUnlock()
	if tp == nil {
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("unknown topic %q", name))
	}
	return tp
}

func (s *server) listTopics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	topics := make([]*topic, 0, len(s.topics))
	for _, tp := range s.topics {
		topics = append(topics, tp)
	}
	s.mu.RUnlock()
	out := make([]topicSummary, len(topics))
	for i, tp := range topics {
		out[i] = tp.summary()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) deleteTopic(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("topic")
	if !s.routeTopic(w, r, name, nil) {
		return
	}
	s.mu.Lock()
	tp, ok := s.topics[name]
	delete(s.topics, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("unknown topic %q", name))
		return
	}
	// Mark the topic deleted under its own lock so an in-flight batch
	// that already passed lookup cannot re-apply in memory afterwards,
	// and release its journal handle.
	tp.mu.Lock()
	tp.deleted = true
	if tp.jw != nil {
		tp.jw.Close()
		tp.jw = nil
	}
	tp.mu.Unlock()
	// Remove the deleted topic's snapshot file. A save racing this
	// delete re-checks the registry under the same per-name lock, so it
	// either belongs to this (now unregistered) topic and is skipped, or
	// to a re-created topic whose own save marks its file current.
	s.removeStale(name)
	if s.repl != nil {
		// Best-effort: tell the followers their cold replicas are garbage.
		// A follower that misses the drop keeps a stale replica, which the
		// epoch fence retires if the name is ever re-created.
		s.repl.dropReplicas(name, tp.eng().Epoch())
	}
	w.WriteHeader(http.StatusNoContent)
}

// batchScratch is the pooled per-request decode/encode state of the
// batch endpoint: the request struct (whose tweet slice encoding/json
// refills in place), the assembled solver batch and the response
// skeleton. Pooling it makes the daemon's own bookkeeping on the hot
// POST path allocation-free in steady state; what remains is the JSON
// string data itself and the solver's escaping results.
type batchScratch struct {
	body   bytes.Buffer
	req    batchRequest
	tweets []triclust.Tweet
	resp   batchResponse
	// Binary-response scratch (Accept: application/x-triclust-batch):
	// the encoded frame and the sentiment slices it is built from. No
	// reset needed — every use rebuilds from [:0].
	bin  []byte
	binT []codec.BatchSentiment
	binU []codec.BatchUserSentiment
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// reset clears every field a previous request may have left behind.
// encoding/json merges into existing slice elements, so stale tweetSpec
// fields (pointers especially) must be zeroed up to capacity.
func (sc *batchScratch) reset() {
	sc.body.Reset()
	full := sc.req.Tweets[:cap(sc.req.Tweets)]
	clear(full)
	sc.req = batchRequest{Tweets: full[:0]}
	sc.tweets = sc.tweets[:0]
	// The response slices must start non-nil so an empty batch still
	// marshals as "tweets":[] — exactly what the pre-pooling make()
	// calls produced — instead of null on a fresh pool object.
	tweets, users := sc.resp.Tweets, sc.resp.Users
	if tweets == nil {
		tweets = []sentimentJSON{}
	}
	if users == nil {
		users = []userSentimentJSON{}
	}
	sc.resp = batchResponse{Tweets: tweets[:0], Users: users[:0]}
}

func (s *server) processBatch(w http.ResponseWriter, r *http.Request) {
	// Content negotiation happens before routing so a request in a format
	// no shard decodes is refused here instead of bouncing off the owner;
	// every shard runs the same build, so local validation is cluster
	// validation.
	format, ok := requireMediaType(w, r, mediaTypeJSON, mediaTypeBatch)
	if !ok {
		return
	}
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	sc := batchPool.Get().(*batchScratch)
	defer batchPool.Put(sc)
	sc.reset()
	if _, err := sc.body.ReadFrom(r.Body); err != nil {
		status, code := requestErrorStatus(err)
		writeError(w, status, code, fmt.Errorf("read body: %w", err))
		return
	}
	var batchTime int
	if format == mediaTypeBatch {
		// The binary frame carries ready-to-solve tweets: no tweetSpec
		// intermediary, no per-field defaulting. Decode appends fully
		// assigned elements into the pooled slice, so scratch reuse across
		// formats cannot surface a prior request's tokens. Every decode
		// failure — truncation, bit flip, version skew, trailing bytes —
		// is the same 400 the JSON path gives malformed bodies.
		ts, tweets, err := codec.DecodeBatchRequest(sc.body.Bytes(), sc.tweets[:0])
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode batch frame: %w", err))
			return
		}
		batchTime, sc.tweets = ts, tweets
	} else {
		if err := decodeStrict(sc.body.Bytes(), &sc.req); err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode: %w", err))
			return
		}
		req := &sc.req
		batchTime = req.Time
		for _, ts := range req.Tweets {
			tw := triclust.Tweet{
				Text:      ts.Text,
				Tokens:    ts.Tokens,
				User:      ts.User,
				Time:      req.Time,
				RetweetOf: -1,
				Label:     triclust.NoLabel,
			}
			if ts.Time != nil {
				tw.Time = *ts.Time
			}
			if ts.RetweetOf != nil {
				tw.RetweetOf = *ts.RetweetOf
			}
			sc.tweets = append(sc.tweets, tw)
		}
	}

	out, status, code, err := s.runBatch(tp, batchTime, sc.tweets)
	if err != nil {
		// A batch can lose the race against a hand-off: lookup succeeded,
		// then the move committed while the batch waited on the topic
		// lock. The topic is not gone — it lives on another shard now —
		// so forward the client instead of reporting 404.
		if code == codeTopicNotFound && s.cluster != nil {
			s.mu.RLock()
			mv, movedOK := s.moved[tp.name]
			s.mu.RUnlock()
			if movedOK {
				s.forward(w, r, mv.Target, sc.body.Bytes())
				return
			}
		}
		// A conformance rejection carries its structured verdict in the
		// error body, so the client sees which invariant broke and by how
		// many sigma without parsing the message text.
		var ce *triclust.ConformanceError
		if errors.As(err, &ce) {
			writeJSON(w, status, errorBody{Error: errorDetail{
				Code: code, Message: err.Error(), Conformance: verdictOf(&ce.Verdict),
			}})
			return
		}
		s.retryAfter(w, code)
		writeError(w, status, code, err)
		return
	}

	if acceptsBatch(r) {
		writeBatchBinary(w, sc, out, batchTime)
		return
	}
	sc.resp.Time = batchTime
	sc.resp.Skipped = out.Skipped
	sc.resp.Iterations = out.Iterations
	sc.resp.Converged = out.Converged
	// Flag mode annotates accepted batches with their verdict (off mode
	// scores too, but surfaces nothing — byte-identical responses).
	if s.conform != triclust.ConformOff {
		sc.resp.Conformance = verdictOf(out.Conformance)
	}
	sc.resp.Tweets = appendJSON(sc.resp.Tweets, out.TweetSentiments)
	for i, sen := range out.UserSentiments {
		sc.resp.Users = append(sc.resp.Users, userSentimentJSON{User: out.ActiveUsers[i], sentimentJSON: oneJSON(sen)})
	}
	writeJSON(w, http.StatusOK, &sc.resp)
}

// writeBatchBinary writes the Accept-negotiated binary batch response:
// the same fields the JSON body carries (class names derive from the
// class index on the client side; the flag-mode conformance annotation
// is JSON-only, as documented in the README's wire-format section).
func writeBatchBinary(w http.ResponseWriter, sc *batchScratch, out *triclust.StreamResult, batchTime int) {
	sc.binT = sc.binT[:0]
	for _, sen := range out.TweetSentiments {
		sc.binT = append(sc.binT, codec.BatchSentiment{Class: sen.Class, Confidence: sen.Confidence})
	}
	sc.binU = sc.binU[:0]
	for i, sen := range out.UserSentiments {
		sc.binU = append(sc.binU, codec.BatchUserSentiment{
			User: out.ActiveUsers[i], Class: sen.Class, Confidence: sen.Confidence,
		})
	}
	res := codec.BatchResult{
		Time:       batchTime,
		Skipped:    out.Skipped,
		Converged:  out.Converged,
		Iterations: out.Iterations,
		Tweets:     sc.binT,
		Users:      sc.binU,
	}
	sc.bin = codec.AppendBatchResponse(sc.bin[:0], &res)
	w.Header().Set("Content-Type", mediaTypeBatch)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.bin)
}

// runBatch solves one batch under the topic lock. On failure it returns
// the HTTP status and stable error code to respond with. The lock is
// released by defer so that a panic anywhere below — the solver, the
// store — unwinds instead of wedging the topic (and every later request
// on it) forever; response writing happens in the caller, off the lock,
// so a slow client cannot stall the topic either.
//
// Durability before acknowledgement, two ways: with journaling on, the
// batch delta is fsync-appended to the topic's journal — O(batch) bytes —
// and the O(state) snapshot is rewritten only at compaction points
// (every -journal-every batches, or when the journal exceeds
// -journal-max-bytes); otherwise every batch rewrites the snapshot.
func (s *server) runBatch(tp *topic, ts int, tweets []triclust.Tweet) (*triclust.StreamResult, int, string, error) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.deleted {
		return nil, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("topic %q was deleted", tp.name)
	}
	// Fail fast while storage is degraded: the disk already proved it
	// drops writes, so don't burn a solve (or worse, another rollback
	// reload) on a batch that cannot be made durable.
	if status, code, err := s.storage.writeGate(tp); code != "" {
		return nil, status, code, err
	}
	if last, ok := tp.eng().LastTime(); ok && len(tweets) > 0 && ts <= last {
		return nil, http.StatusConflict, codeStaleTimestamp,
			fmt.Errorf("time %d not after last processed %d", ts, last)
	}
	out, err := tp.eng().Process(ts, tweets)
	if err != nil {
		// An enforce-mode conformance rejection happened before any state
		// advanced — before the journal append in particular, so the
		// refused batch is not in durable history and a corrected retry is
		// safe. It gets its own stable code (the verdict rides in the
		// error body, see processBatch) and is tracked for healthz.
		var ce *triclust.ConformanceError
		if errors.As(err, &ce) {
			s.conformRejected.Add(1)
			tp.noteViolation(ts, &ce.Verdict)
			return nil, http.StatusUnprocessableEntity, codeBatchNonconforming, err
		}
		return nil, http.StatusUnprocessableEntity, codeInvalidBatch, err
	}
	// Flag-mode bookkeeping: an accepted batch whose verdict was flagged
	// or quarantined still shows up in the healthz census.
	tp.noteViolation(ts, out.Conformance)
	if !out.Skipped && s.store != nil {
		if tp.jw != nil {
			batches, draws := tp.eng().StreamPos()
			rec := journal.Record{Time: ts, Tweets: tweets, Batches: batches, RandDraws: draws}
			frame, err := journal.EncodeFrame(&rec)
			if err == nil {
				err = tp.jw.AppendFrames(frame)
			}
			if err != nil {
				return s.failJournalAppend(tp, err)
			}
			tp.degraded.Store(false)
			s.storage.noteSuccess(tp)
			tp.jRecords++
			if tp.jRecords < s.store.opts.Every && tp.jw.Size() < s.store.opts.MaxBytes {
				// The frame just fsynced locally ships to the followers
				// before the ack — the same bytes, so they verify and store
				// it without re-encoding.
				if status, code, err := s.replShip(tp, frame, batches, draws, false); err != nil {
					return nil, status, code, err
				}
				return out, 0, "", nil
			}
			// Compaction point: fold the journal into a fresh snapshot.
		}
		// Snapshot durability: the new state is persisted before the
		// response is sent, so an acknowledged batch survives a restart.
		ok, err := s.saveIfCurrent(tp)
		if err != nil {
			return nil, http.StatusInternalServerError, codeStorage,
				fmt.Errorf("batch applied in memory but snapshot not persisted: %w", err)
		}
		if !ok {
			return nil, http.StatusNotFound, codeTopicNotFound,
				fmt.Errorf("topic %q was deleted", tp.name)
		}
		tp.degraded.Store(false)
		// A compaction re-bases the followers too: ship the fresh snapshot
		// so their replica journals restart as bounded tails (and so the
		// snapshot-per-batch mode replicates at all).
		if status, code, err := s.replShip(tp, nil, 0, 0, false); err != nil {
			return nil, status, code, err
		}
	}
	return out, 0, "", nil
}

// failJournalAppend resolves a failed journal append + fsync (disk full,
// I/O error). The batch already ran in memory, but acknowledging it
// would promise durability the disk refused — so the topic is rolled
// back to exactly what disk vouches for (snapshot + intact journal
// records), the on-disk tail is truncated so the failed append leaves no
// ambiguous torn frame for recovery to guess about, and the batch fails
// with 503 journal_write_failed. The topic stays served (reads, retries)
// but is reported degraded by healthz until an append or save succeeds.
//
// If the rollback reload itself fails, the in-memory engine is ahead of
// anything disk vouches for and there is no trustworthy state to fall
// back to: the topic is parked — reads and writes both refuse — until a
// storage probe re-reads disk successfully. (File-level quarantine of
// undecodable snapshots/journals already happens inside reloadTopic;
// parking covers the unreadable-disk case, where renaming files aside
// could destroy a perfectly good snapshot over a transient read error.)
func (s *server) failJournalAppend(tp *topic, cause error) (*triclust.StreamResult, int, string, error) {
	tp.degraded.Store(true)
	if terr := tp.jw.TruncateTail(); terr != nil {
		// The tail could not even be truncated; close the writer so the
		// next batch re-resolves durability (journal re-create, or the
		// snapshot path) instead of appending after an ambiguous tail.
		s.logf("journal truncate %q after failed append: %v", tp.name, terr)
		tp.jw.Close()
		tp.jw = nil
	}
	epoch := tp.eng().Epoch()
	fresh, rerr := s.store.reloadTopic(tp.name, s.logf)
	if rerr != nil {
		if tp.jw != nil {
			tp.jw.Close()
			tp.jw = nil
		}
		s.storage.park(tp, rerr)
		return nil, http.StatusServiceUnavailable, codeStorageDegraded,
			fmt.Errorf("batch processed but not durable, and the rollback re-read failed (%v): %w", rerr, cause)
	}
	fresh.SetEpoch(epoch)
	fresh.SetConformanceMode(s.conform)
	tp.engp.Store(fresh)
	s.storage.noteFailure(tp, cause)
	return nil, http.StatusServiceUnavailable, codeJournalWriteFailed,
		fmt.Errorf("batch processed but not durable: %w", cause)
}

// warmupVocab implements POST /v1/topics/{topic}/vocab: fold warm-up
// documents into the vocabulary before the first batch freezes it, and
// optionally freeze it explicitly.
func (s *server) warmupVocab(w http.ResponseWriter, r *http.Request) {
	if _, ok := requireMediaType(w, r, mediaTypeJSON); !ok {
		return
	}
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	// Buffer-then-decodeStrict, like every JSON endpoint: the streaming
	// json.Decoder this handler used to construct stopped at the first
	// complete value and silently accepted trailing garbage, a laxness no
	// other endpoint shared.
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	var req vocabRequest
	if err := decodeStrict(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, fmt.Errorf("decode: %w", err))
		return
	}
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.deleted {
		writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("topic %q was deleted", tp.name))
		return
	}
	if status, code, err := s.storage.writeGate(tp); code != "" {
		s.retryAfter(w, code)
		writeError(w, status, code, err)
		return
	}
	changed := false
	if len(req.Texts) > 0 {
		if err := tp.eng().WarmupVocabulary(req.Texts...); err != nil {
			writeError(w, http.StatusConflict, codeVocabFrozen, err)
			return
		}
		changed = true
	}
	if len(req.Docs) > 0 {
		if err := tp.eng().WarmupTokenized(req.Docs); err != nil {
			writeError(w, http.StatusConflict, codeVocabFrozen, err)
			return
		}
		changed = true
	}
	if req.Freeze {
		if err := tp.eng().Freeze(); err != nil {
			// Freeze fails for two distinct reasons: the vocabulary is
			// already frozen (a conflict) or the warm-up counts yield no
			// words at MinDF (a bad request, fixed by sending more docs).
			if tp.eng().Frozen() {
				writeError(w, http.StatusConflict, codeVocabFrozen, err)
			} else {
				writeError(w, http.StatusUnprocessableEntity, codeInvalidRequest, err)
			}
			return
		}
		changed = true
	}
	// A no-op request (nothing folded in, no freeze) changed no state, so
	// there is nothing to persist: skipping the save keeps repeated empty
	// POSTs from re-writing a potentially large snapshot on every call.
	if changed {
		ok, err := s.saveIfCurrent(tp)
		if err != nil {
			writeError(w, http.StatusInternalServerError, codeStorage, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, codeTopicNotFound, fmt.Errorf("topic %q was deleted", tp.name))
			return
		}
		// Vocabulary warm-up mutates state outside the journal, so the
		// followers need the new base snapshot.
		if status, code, err := s.replShip(tp, nil, 0, 0, false); err != nil {
			writeError(w, status, code, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, vocabResponse{
		Frozen:    tp.eng().Frozen(),
		VocabSize: tp.eng().VocabSize(),
	})
}

// exportSnapshot implements GET /v1/topics/{topic}/snapshot: the durable
// binary export. The body round-trips through PUT /v1/topics/{name} (on
// this or another daemon) and through triclust.Restore.
func (s *server) exportSnapshot(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	if !s.readGate(w, tp) {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", tp.name+".snap"))
	if err := tp.eng().Snapshot(w); err != nil {
		// Headers are committed; all we can do is drop the connection so
		// the client sees a truncated (checksum-failing) body.
		s.logf("snapshot %q: %v", tp.name, err)
		panic(http.ErrAbortHandler)
	}
}

// marshalFeatures builds the /features response body for one view: the
// frozen vocabulary plus the view's feature labels. Called only when the
// topic's cached body is for a different ETag, i.e. at most once per
// committed batch per topic.
func marshalFeatures(tp *topic, v triclust.ReadView) ([]byte, error) {
	return json.Marshal(featuresResponse{
		Vocabulary:  tp.eng().Vocabulary(),
		Features:    toJSON(v.FeatureSentiments()),
		Convergence: convergenceOf(v),
	})
}

// snapshotAll persists every topic (used for the final snapshot during
// graceful shutdown). It reports the first error but keeps going.
func (s *server) snapshotAll() error {
	if s.store == nil {
		return nil
	}
	s.mu.RLock()
	topics := make([]*topic, 0, len(s.topics))
	for _, tp := range s.topics {
		topics = append(topics, tp)
	}
	s.mu.RUnlock()
	var first error
	for _, tp := range topics {
		tp.mu.Lock()
		var err error
		if !tp.deleted {
			_, err = s.saveIfCurrent(tp)
		}
		tp.mu.Unlock()
		if err != nil {
			s.logf("final snapshot %q: %v", tp.name, err)
			if first == nil {
				first = err
			}
		}
	}
	return first
}

// ——— helpers ———

func (tp *topic) summary() topicSummary {
	return tp.summaryView(tp.eng().ReadView())
}

// summaryView builds the summary from one read view, so a handler that
// already loaded a view (and derived its ETag from it) reports exactly
// that view's counters, not those of a batch that committed in between.
func (tp *topic) summaryView(v triclust.ReadView) topicSummary {
	sum := topicSummary{
		Name:        tp.name,
		Created:     tp.created,
		Users:       v.Users(),
		Batches:     v.Batches(),
		Skipped:     v.SkippedBatches(),
		KnownUsers:  v.KnownUsers(),
		VocabSize:   v.VocabSize(),
		Frozen:      v.Frozen(),
		Convergence: convergenceOf(v),
	}
	if last, ok := v.LastTime(); ok {
		sum.LastTime = &last
	}
	return sum
}

func oneJSON(s triclust.Sentiment) sentimentJSON {
	return sentimentJSON{
		Class:      s.Class,
		ClassName:  triclust.ClassName(s.Class),
		Confidence: s.Confidence,
	}
}

func toJSON(ss []triclust.Sentiment) []sentimentJSON {
	return appendJSON(make([]sentimentJSON, 0, len(ss)), ss)
}

func appendJSON(dst []sentimentJSON, ss []triclust.Sentiment) []sentimentJSON {
	for _, s := range ss {
		dst = append(dst, oneJSON(s))
	}
	return dst
}

// eng returns the topic's engine. Writers mutate the engine only under
// tp.mu; the atomic load lets the lock-free read plane observe the
// rollback swap in failJournalAppend without a lock.
func (tp *topic) eng() *triclust.Topic { return tp.engp.Load() }
