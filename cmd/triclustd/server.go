package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"triclust/internal/core"
	"triclust/internal/engine"
	"triclust/internal/tgraph"
)

// server is the HTTP façade over a registry of named topic sessions.
// Registry lookups take the read lock; create/delete take the write lock.
// Each topic serializes its own batch processing with a per-topic mutex,
// so batches for independent topics are solved concurrently.
type server struct {
	mu     sync.RWMutex
	topics map[string]*topic
}

type topic struct {
	name    string
	created time.Time

	mu       sync.Mutex // serializes Process + metadata updates
	sess     *engine.Session
	lastT    int
	hasLast  bool
	features []engine.Sentiment // learned feature sentiments of the last batch
}

func newServer() http.Handler {
	s := &server{topics: make(map[string]*topic)}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("POST /v1/topics", s.createTopic)
	mux.HandleFunc("GET /v1/topics", s.listTopics)
	mux.HandleFunc("GET /v1/topics/{topic}", s.topicInfo)
	mux.HandleFunc("DELETE /v1/topics/{topic}", s.deleteTopic)
	mux.HandleFunc("POST /v1/topics/{topic}/batches", s.processBatch)
	mux.HandleFunc("GET /v1/topics/{topic}/users/{user}", s.userEstimate)
	mux.HandleFunc("GET /v1/topics/{topic}/snapshot", s.exportSnapshot)
	return mux
}

// ——— wire types ———

type topicOptions struct {
	K          int      `json:"k,omitempty"`
	Alpha      *float64 `json:"alpha,omitempty"`
	Beta       *float64 `json:"beta,omitempty"`
	Gamma      *float64 `json:"gamma,omitempty"`
	Tau        *float64 `json:"tau,omitempty"`
	Window     int      `json:"window,omitempty"`
	MaxIter    int      `json:"max_iter,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	MinDF      int      `json:"min_df,omitempty"`
	LexiconHit float64  `json:"lexicon_hit,omitempty"`
}

func (o topicOptions) onlineConfig() core.OnlineConfig {
	cfg := core.DefaultOnlineConfig()
	if o.K != 0 {
		cfg.K = o.K
	}
	if o.Alpha != nil {
		cfg.Alpha = *o.Alpha
	}
	if o.Beta != nil {
		cfg.Beta = *o.Beta
	}
	if o.Gamma != nil {
		cfg.Gamma = *o.Gamma
	}
	if o.Tau != nil {
		cfg.Tau = *o.Tau
	}
	if o.Window != 0 {
		cfg.Window = o.Window
	}
	if o.MaxIter != 0 {
		cfg.MaxIter = o.MaxIter
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	return cfg
}

type createTopicRequest struct {
	Name string `json:"name"`
	// Users is the fixed user universe; tweets refer to users by index.
	Users   []string     `json:"users"`
	Options topicOptions `json:"options"`
}

type topicSummary struct {
	Name       string    `json:"name"`
	Created    time.Time `json:"created"`
	Users      int       `json:"users"`
	Batches    int       `json:"batches"`
	Skipped    int       `json:"skipped"`
	KnownUsers int       `json:"known_users"`
	VocabSize  int       `json:"vocab_size"`
	LastTime   *int      `json:"last_time,omitempty"`
}

type tweetSpec struct {
	Text      string   `json:"text,omitempty"`
	Tokens    []string `json:"tokens,omitempty"`
	User      int      `json:"user"`
	Time      *int     `json:"time,omitempty"`       // default: the batch time
	RetweetOf *int     `json:"retweet_of,omitempty"` // batch-local index; default none
}

type batchRequest struct {
	Time   int         `json:"time"`
	Tweets []tweetSpec `json:"tweets"`
}

type sentimentJSON struct {
	Class      int     `json:"class"`
	ClassName  string  `json:"class_name"`
	Confidence float64 `json:"confidence"`
}

type userSentimentJSON struct {
	User int `json:"user"`
	sentimentJSON
}

type batchResponse struct {
	Time       int                 `json:"time"`
	Skipped    bool                `json:"skipped"`
	Iterations int                 `json:"iterations"`
	Converged  bool                `json:"converged"`
	Tweets     []sentimentJSON     `json:"tweets"`
	Users      []userSentimentJSON `json:"users"`
}

type snapshotResponse struct {
	topicSummary
	Vocabulary []string        `json:"vocabulary"`
	Features   []sentimentJSON `json:"features"`
}

// ——— handlers ———

func (s *server) createTopic(w http.ResponseWriter, r *http.Request) {
	var req createTopicRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing topic name"))
		return
	}
	if len(req.Users) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("missing user universe"))
		return
	}
	users := make([]tgraph.User, len(req.Users))
	for i, name := range req.Users {
		users[i] = tgraph.User{Name: name, Label: tgraph.NoLabel}
	}
	model := engine.NewModel(engine.Config{
		Online:     req.Options.onlineConfig(),
		LexiconHit: req.Options.LexiconHit,
		MinDF:      req.Options.MinDF,
	})
	tp := &topic{name: req.Name, created: time.Now().UTC(), sess: model.NewSession(users)}

	s.mu.Lock()
	if _, exists := s.topics[req.Name]; exists {
		s.mu.Unlock()
		httpError(w, http.StatusConflict, fmt.Errorf("topic %q already exists", req.Name))
		return
	}
	s.topics[req.Name] = tp
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, tp.summary())
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *topic {
	name := r.PathValue("topic")
	s.mu.RLock()
	tp := s.topics[name]
	s.mu.RUnlock()
	if tp == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown topic %q", name))
	}
	return tp
}

func (s *server) listTopics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	topics := make([]*topic, 0, len(s.topics))
	for _, tp := range s.topics {
		topics = append(topics, tp)
	}
	s.mu.RUnlock()
	out := make([]topicSummary, len(topics))
	for i, tp := range topics {
		out[i] = tp.summary()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) topicInfo(w http.ResponseWriter, r *http.Request) {
	if tp := s.lookup(w, r); tp != nil {
		writeJSON(w, http.StatusOK, tp.summary())
	}
}

func (s *server) deleteTopic(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("topic")
	s.mu.Lock()
	_, ok := s.topics[name]
	delete(s.topics, name)
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown topic %q", name))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *server) processBatch(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	tweets := make([]tgraph.Tweet, len(req.Tweets))
	for i, ts := range req.Tweets {
		tw := tgraph.Tweet{
			Text:      ts.Text,
			Tokens:    ts.Tokens,
			User:      ts.User,
			Time:      req.Time,
			RetweetOf: -1,
			Label:     tgraph.NoLabel,
		}
		if ts.Time != nil {
			tw.Time = *ts.Time
		}
		if ts.RetweetOf != nil {
			tw.RetweetOf = *ts.RetweetOf
		}
		tweets[i] = tw
	}

	tp.mu.Lock()
	if tp.hasLast && len(tweets) > 0 && req.Time <= tp.lastT {
		tp.mu.Unlock()
		httpError(w, http.StatusConflict,
			fmt.Errorf("time %d not after last processed %d", req.Time, tp.lastT))
		return
	}
	out, err := tp.sess.Process(req.Time, tweets)
	if err != nil {
		tp.mu.Unlock()
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !out.Skipped {
		tp.lastT, tp.hasLast = req.Time, true
		tp.features = out.FeatureSentiments
	}
	tp.mu.Unlock()

	resp := batchResponse{
		Time:    req.Time,
		Skipped: out.Skipped,
		Tweets:  toJSON(out.TweetSentiments),
		Users:   make([]userSentimentJSON, len(out.UserSentiments)),
	}
	if out.Res != nil {
		resp.Iterations = out.Res.Iterations
		resp.Converged = out.Res.Converged
	}
	for i, sen := range out.UserSentiments {
		resp.Users[i] = userSentimentJSON{User: out.Active[i], sentimentJSON: oneJSON(sen)}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) userEstimate(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	user, err := strconv.Atoi(r.PathValue("user"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad user id: %w", err))
		return
	}
	est, ok := tp.sess.UserEstimate(user)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("user %d has no history", user))
		return
	}
	writeJSON(w, http.StatusOK, userSentimentJSON{User: user, sentimentJSON: oneJSON(est)})
}

func (s *server) exportSnapshot(w http.ResponseWriter, r *http.Request) {
	tp := s.lookup(w, r)
	if tp == nil {
		return
	}
	resp := snapshotResponse{topicSummary: tp.summary()}
	if v := tp.sess.Model().Vocabulary(); v != nil {
		resp.Vocabulary = v.Words()
	}
	tp.mu.Lock()
	resp.Features = toJSON(tp.features)
	tp.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// ——— helpers ———

func (tp *topic) summary() topicSummary {
	sum := topicSummary{
		Name:       tp.name,
		Created:    tp.created,
		Users:      tp.sess.NumUsers(),
		Batches:    tp.sess.Batches(),
		Skipped:    tp.sess.Skipped(),
		KnownUsers: tp.sess.KnownUsers(),
	}
	if v := tp.sess.Model().Vocabulary(); v != nil {
		sum.VocabSize = v.Len()
	}
	tp.mu.Lock()
	if tp.hasLast {
		last := tp.lastT
		sum.LastTime = &last
	}
	tp.mu.Unlock()
	return sum
}

func classNameOf(c int) string {
	switch c {
	case 0:
		return "positive"
	case 1:
		return "negative"
	case 2:
		return "neutral"
	default:
		return fmt.Sprintf("class%d", c)
	}
}

func oneJSON(s engine.Sentiment) sentimentJSON {
	return sentimentJSON{Class: s.Class, ClassName: classNameOf(s.Class), Confidence: s.Confidence}
}

func toJSON(ss []engine.Sentiment) []sentimentJSON {
	out := make([]sentimentJSON, len(ss))
	for i, s := range ss {
		out[i] = oneJSON(s)
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
