// Command triclustd serves dynamic tripartite sentiment co-clustering
// over a versioned HTTP/JSON API: a registry of named, durable topics,
// each a long-lived triclust.Topic fed one tweet batch per timestamp.
// Independent topics are served concurrently; batches within a topic
// serialize.
//
//	triclustd -addr :8547 -data-dir /var/lib/triclustd
//
// Endpoints (JSON unless noted):
//
//	GET    /healthz                          liveness
//	POST   /v1/topics                        create a topic
//	       {"name":"prop37","users":["a","b"],"options":{"k":3,"max_iter":40}}
//	GET    /v1/topics                        list topic summaries
//	GET    /v1/topics/{topic}                one topic's summary
//	PUT    /v1/topics/{topic}                restore a topic from a binary snapshot body
//	DELETE /v1/topics/{topic}                drop a topic (and its stored snapshot)
//	POST   /v1/topics/{topic}/batches        process one timestamped batch
//	       {"time":3,"tweets":[{"text":"love this","user":0}]}
//	POST   /v1/topics/{topic}/vocab          vocabulary warm-up before the freeze
//	       {"texts":["seed doc", ...],"freeze":false}
//	GET    /v1/topics/{topic}/users/{user}   latest sentiment estimate
//	GET    /v1/topics/{topic}/snapshot       durable binary snapshot (octet-stream)
//	GET    /v1/topics/{topic}/features       vocabulary + learned feature sentiments
//
// Errors carry structured bodies with stable codes:
//
//	{"error":{"code":"stale_timestamp","message":"time 3 not after last processed 4"}}
//
// Body-carrying endpoints validate Content-Type (415
// unsupported_media_type otherwise; an absent header selects the
// endpoint's default), and JSON request decoding is strict — trailing
// bytes after the JSON value are a 400. The batches endpoint also
// accepts application/x-triclust-batch, a CRC-framed binary batch
// request (see internal/codec), with identical semantics and error
// codes to the JSON form; Accept: application/x-triclust-batch selects
// the binary response frame on success. cmd/loadgen measures the two
// formats against each other over real HTTP.
//
// With -data-dir set the daemon is durable: every accepted batch (and
// create/restore/warm-up) is persisted before the response is sent, the
// files are reloaded on startup, and SIGINT/SIGTERM triggers a graceful
// shutdown — in-flight batches drain, then every topic is snapshotted
// one final time. A restarted daemon serves the same user estimates it
// did before the restart.
//
// Durability is amortized: each batch fsync-appends an O(batch) record
// to <dir>/<topic>.journal, and the full O(state) snapshot
// <dir>/<topic>.snap is rewritten only every -journal-every batches (or
// when the journal exceeds -journal-max-bytes), after which the journal
// is truncated. Startup recovery loads the snapshot and replays the
// journal tail through the same deterministic pipeline, verifying each
// record's post-batch fingerprint — recovered state is bit-identical to
// the pre-crash stream. A torn final record (crash mid-append) is
// truncated: it was never acknowledged. -journal-every 1 restores the
// plain snapshot-per-batch mode; data dirs written by either mode (or by
// older snapshot-only builds) load unchanged.
//
// The first non-empty batch of a topic freezes its vocabulary (the online
// algorithm requires comparable feature spaces across snapshots) unless a
// vocab warm-up with "freeze":true fixed it earlier; batch times must
// strictly increase per topic; an empty batch is a recorded no-op. Batch
// results are independent of tweet ordering within a batch.
//
// # Conformance gate
//
// Every topic synthesizes a conformance profile from the batches it has
// accepted — token rate, OOV rate, tokens-per-tweet shape, user-activity
// concentration, duplicate rate, timestamp step and in-batch time
// spread — and scores each incoming batch against it. -conform-mode
// selects what a verdict does: "off" (default) scores silently, "flag"
// annotates batch responses (and the healthz census) with verdicts, and
// "enforce" rejects quarantined batches with 422 batch_nonconforming
// before the journal append — the refused batch leaves no durable
// trace, so a corrected retry is safe. The profile is part of the
// topic's snapshot state and survives restarts, journal replay and
// replica promotion bit-identically; the mode is a per-shard runtime
// policy. GET /v1/healthz reports the mode, the enforce-mode rejection
// count and each topic's drift trend and last violation.
//
// # Cluster mode
//
// With -peers and -self set, the daemon serves one shard of a
// consistent-hash cluster: every shard builds the same ring from the
// static peer list (-vnodes virtual nodes per peer), so topic placement
// is deterministic with no coordination traffic. A topic request
// arriving at the wrong shard is answered 307 with a Location on the
// owning shard and an X-Triclust-Shard header (or transparently proxied
// with -cluster-proxy). Additional endpoints:
//
//	GET  /v1/healthz        readiness: topic count, startup-quarantine count, cluster view
//	GET  /v1/cluster/info   ring membership; ?topic=t resolves t's placement
//	POST /v1/cluster/move   operator rebalance: {"topic":"t","target":"http://shard-b:8547"}
//
// A move drains the topic (in-flight batch finishes, new ones block),
// compacts its journal into a final snapshot, bumps the topic's
// ownership epoch, installs the snapshot on the target over the restore
// endpoint, and drops the local copy, leaving a persisted tombstone
// (<topic>.moved) that refuses the topic's writes at stale epochs and
// redirects clients — across restarts — to the new owner.
//
// # Replication and failover
//
// With -replication-factor N (N >= 2, requires cluster mode and a
// -data-dir), every topic also lives as a *cold replica* on its N-1 ring
// successors: after each acknowledged batch the owning shard ships the
// batch's journal frame to the followers (POST /v1/replica/{topic}/append),
// which verify it — CRC, epoch, and the recorded batch/random-stream
// fingerprints — and fsync it to <topic>.rsnap + <topic>.rjournal without
// ever opening the topic. Each shard probes its peers' /v1/healthz
// (-probe-interval, -probe-timeout, -probe-failures); when a peer is
// declared down, the first live member of each affected topic's replica
// set promotes its replica by replaying the tail through the
// deterministic pipeline, bumps the ownership epoch, and serves the topic
// from where the dead primary stopped. A zombie primary (still running,
// merely partitioned) is fenced on its next ship by 409 epoch_mismatch
// and redirects its clients to the new owner. -auto-rebalance drives
// held topics back onto the ring as peers die and return. GET /v1/healthz
// reports the replication factor, down peers, held replicas and
// per-follower shipping lag; a topic whose journal append fails (disk
// full) answers 503 journal_write_failed and is listed as degraded.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"triclust"
	"triclust/internal/par"
)

func main() {
	addr := flag.String("addr", ":8547", "listen address")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0), "parallelism width of the compute kernels")
	dataDir := flag.String("data-dir", "", "directory for durable topic snapshots (empty: in-memory only)")
	journalEvery := flag.Int("journal-every", 64,
		"rewrite a topic's full snapshot every N batches, journaling the batches in between (1: snapshot every batch)")
	journalMaxBytes := flag.Int64("journal-max-bytes", 8<<20,
		"also compact a topic's journal into a snapshot when it exceeds this size")
	maxBody := flag.Int64("max-body-bytes", 0,
		"reject request bodies larger than this with 413 body_too_large (0: 256 MiB default)")
	peers := flag.String("peers", "",
		"comma-separated base URLs of every cluster shard (empty: single-process mode)")
	self := flag.String("self", "",
		"this shard's base URL; must be listed in -peers")
	vnodes := flag.Int("vnodes", 0,
		"virtual nodes per shard on the consistent-hash ring (0: default)")
	clusterProxy := flag.Bool("cluster-proxy", false,
		"proxy mis-routed topic requests to the owning shard instead of 307-redirecting")
	peerTimeout := flag.Duration("peer-timeout", 0,
		"deadline for each inter-shard request: proxy hop, hand-off PUT, replica ship (0: 30s default)")
	replFactor := flag.Int("replication-factor", 1,
		"copies of every topic across the cluster: the primary plus N-1 cold replicas on ring successors (1: off)")
	probeInterval := flag.Duration("probe-interval", time.Second,
		"peer failure-detector probe cadence")
	probeTimeout := flag.Duration("probe-timeout", 0,
		"deadline for one failure-detector probe (0: the probe interval)")
	probeFailures := flag.Int("probe-failures", 3,
		"consecutive probe failures before a peer is declared down")
	autoRebalance := flag.Bool("auto-rebalance", false,
		"periodically move held topics back to their ring owners as peers die and return")
	rebalanceInterval := flag.Duration("rebalance-interval", 10*time.Second,
		"cadence of the -auto-rebalance convergence check")
	conformMode := flag.String("conform-mode", "off",
		"stream-conformance gate: off (score silently), flag (annotate batch responses with verdicts), enforce (reject quarantined batches with 422 batch_nonconforming before the journal append)")
	degradeAfter := flag.Int("degrade-after", 3,
		"consecutive durable-write failures before a topic turns read-only with 503 storage_degraded (ENOSPC degrades immediately)")
	shardDegradeAfter := flag.Int("shard-degrade-after", 2,
		"degraded topics before the whole shard refuses writes with 503 storage_readonly")
	storageProbeInterval := flag.Duration("storage-probe-interval", 5*time.Second,
		"write-probe cadence while storage is degraded (also the Retry-After hint on refused writes)")
	drain := flag.Duration("shutdown-timeout", 30*time.Second, "graceful-shutdown drain timeout")
	flag.Parse()
	par.SetProcs(*procs)

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "triclustd: "+format+"\n", args...)
	}
	conform, err := triclust.ParseConformanceMode(*conformMode)
	if err != nil {
		logf("startup: %v", err)
		os.Exit(1)
	}
	opts := serverOptions{
		journal: journalOptions{Every: *journalEvery, MaxBytes: *journalMaxBytes},
		maxBody: *maxBody,
		conform: conform,
		storage: storageOptions{
			DegradeAfter:  *degradeAfter,
			ShardAfter:    *shardDegradeAfter,
			ProbeInterval: *storageProbeInterval,
		},
	}
	if *peers != "" || *self != "" {
		cc, err := newClusterConfig(*self, *peers, *vnodes, *clusterProxy)
		if err != nil {
			logf("startup: %v", err)
			os.Exit(1)
		}
		cc.peerTimeout = *peerTimeout
		opts.cluster = cc
	}
	if *replFactor >= 2 {
		opts.repl = &replOptions{
			Factor:            *replFactor,
			ProbeInterval:     *probeInterval,
			ProbeTimeout:      *probeTimeout,
			ProbeFailures:     *probeFailures,
			ShipTimeout:       *peerTimeout,
			AutoRebalance:     *autoRebalance,
			RebalanceInterval: *rebalanceInterval,
		}
	}
	handler, err := newServer(*dataDir, opts, logf)
	if err != nil {
		logf("startup: %v", err)
		os.Exit(1)
	}
	handler.start()

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Bound header/body reads so idle or slow-drip clients cannot
		// pin connections forever; batch *processing* time is not under
		// these timeouts (they cover the request read only).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("triclustd listening on %s (kernel procs=%d, data-dir=%q)\n",
		*addr, par.Procs(), *dataDir)
	if cc := opts.cluster; cc != nil {
		logf("cluster mode: self=%s peers=%v vnodes=%d proxy=%v",
			cc.self, cc.ring.Peers(), cc.ring.VirtualNodes(), cc.proxy)
	}

	select {
	case err := <-errCh:
		logf("%v", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight batches (each
	// of which persists its own snapshot before responding), then write
	// a final snapshot of every topic.
	logf("signal received, draining (timeout %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("shutdown: %v", err)
	}
	// Stop the replication machinery (detector, resync worker, rebalancer)
	// before the final snapshot pass so nothing ships or promotes mid-exit.
	if err := handler.Close(); err != nil {
		logf("close: %v", err)
	}
	if err := handler.snapshotAll(); err != nil {
		logf("final snapshot: %v", err)
		os.Exit(1)
	}
	logf("shutdown complete")
}
