// Command triclustd serves dynamic tripartite sentiment co-clustering
// over HTTP/JSON: a registry of named topic sessions, each a long-lived
// engine.Session fed one tweet batch per timestamp. Independent topics
// are served concurrently; batches within a topic serialize.
//
//	triclustd -addr :8547
//
// Endpoints (all JSON):
//
//	GET    /healthz                          liveness
//	POST   /v1/topics                        create a topic session
//	       {"name":"prop37","users":["a","b"],"options":{"k":3,"max_iter":40}}
//	GET    /v1/topics                        list topic summaries
//	GET    /v1/topics/{topic}                one topic's summary
//	DELETE /v1/topics/{topic}                drop a topic session
//	POST   /v1/topics/{topic}/batches        process one timestamped batch
//	       {"time":3,"tweets":[{"text":"love this","user":0}]}
//	GET    /v1/topics/{topic}/users/{user}   latest sentiment estimate
//	GET    /v1/topics/{topic}/snapshot       vocabulary + learned feature sentiments
//
// The first non-empty batch of a topic freezes its vocabulary (the online
// algorithm requires comparable feature spaces across snapshots); batch
// times must strictly increase per topic; an empty batch is a recorded
// no-op. Batch results are independent of tweet ordering within a batch.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"time"

	"triclust/internal/par"
)

func main() {
	addr := flag.String("addr", ":8547", "listen address")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0), "parallelism width of the compute kernels")
	flag.Parse()
	par.SetProcs(*procs)

	srv := &http.Server{
		Addr:    *addr,
		Handler: newServer(),
		// Bound header/body reads so idle or slow-drip clients cannot
		// pin connections forever; batch *processing* time is not under
		// these timeouts (they cover the request read only).
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}
	fmt.Printf("triclustd listening on %s (kernel procs=%d)\n", *addr, par.Procs())
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintf(os.Stderr, "triclustd: %v\n", err)
		os.Exit(1)
	}
}
