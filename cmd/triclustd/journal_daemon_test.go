package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalTopicName is the fixed topic every journal test drives.
const journalTopicName = "jtopic"

// jtCreateReq returns a deterministic create request over a small user
// universe with a low iteration budget (the tests measure persistence,
// not solver quality).
func jtCreateReq() createTopicRequest {
	users := make([]string, 12)
	for i := range users {
		users[i] = fmt.Sprintf("user%02d", i)
	}
	return createTopicRequest{
		Name:    journalTopicName,
		Users:   users,
		Options: topicOptions{MaxIter: 4, Seed: 7, MinDF: 1},
	}
}

// jtBatch returns the deterministic batch for timestamp day: raw-text
// tweets (exercising the tokenizer on replay) plus one retweet edge.
func jtBatch(day int) batchRequest {
	texts := []string{
		"love the #prop37 labeling win great news",
		"no on prop37 bad law hurts local farmers",
		"the measure reads like pure corporate greed",
		"proud to stand with science on labeling",
	}
	var tweets []tweetSpec
	for i := 0; i < 4; i++ {
		tweets = append(tweets, tweetSpec{
			Text: texts[(i+day)%len(texts)],
			User: (i*5 + day) % 12,
		})
	}
	rt := 0
	tweets = append(tweets, tweetSpec{Text: "boosting this", User: (day + 7) % 12, RetweetOf: &rt})
	return batchRequest{Time: day, Tweets: tweets}
}

func jtCreate(t *testing.T, client *http.Client, url string) {
	t.Helper()
	code, err := doJSON(client, "POST", url+"/v1/topics", jtCreateReq(), nil)
	if err != nil || code != http.StatusCreated {
		t.Fatalf("create: status %d err %v", code, err)
	}
}

func jtFeed(t *testing.T, client *http.Client, url string, from, to int) {
	t.Helper()
	for day := from; day < to; day++ {
		var resp batchResponse
		code, err := doJSON(client, "POST", url+"/v1/topics/"+journalTopicName+"/batches", jtBatch(day), &resp)
		if err != nil || code != http.StatusOK {
			t.Fatalf("batch %d: status %d err %v", day, code, err)
		}
		if resp.Skipped {
			t.Fatalf("batch %d skipped", day)
		}
	}
}

func jtSnapshotBytes(t *testing.T, client *http.Client, url string) []byte {
	t.Helper()
	resp, err := client.Get(url + "/v1/topics/" + journalTopicName + "/snapshot")
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("snapshot read: %v", err)
	}
	return buf.Bytes()
}

func jtSummary(t *testing.T, client *http.Client, url string) topicSummary {
	t.Helper()
	var sum topicSummary
	code, err := doJSON(client, "GET", url+"/v1/topics/"+journalTopicName, nil, &sum)
	if err != nil || code != http.StatusOK {
		t.Fatalf("summary: status %d err %v", code, err)
	}
	return sum
}

// TestDaemonJournalCrashRecoveryBitIdentical is the end-to-end crash
// drill: a daemon journaling its batches is killed mid-append (torn
// final record), restarted, and fed the remainder of the stream. The
// recovered daemon's final snapshot must be byte-identical to that of a
// daemon that processed the whole stream uninterrupted — replay drift
// zero, not just within tolerance.
func TestDaemonJournalCrashRecoveryBitIdentical(t *testing.T) {
	const crashAt, total = 10, 14
	opts := journalOptions{Every: 1 << 20, MaxBytes: 1 << 40} // no compaction during the test

	// Reference: the uninterrupted stream.
	_, refSrv := testServerOpts(t, t.TempDir(), opts)
	jtCreate(t, refSrv.Client(), refSrv.URL)
	jtFeed(t, refSrv.Client(), refSrv.URL, 0, total)
	want := jtSnapshotBytes(t, refSrv.Client(), refSrv.URL)

	// Crash run: process through crashAt, then die mid-append.
	dir := t.TempDir()
	_, srvA := testServerOpts(t, dir, opts)
	jtCreate(t, srvA.Client(), srvA.URL)
	jtFeed(t, srvA.Client(), srvA.URL, 0, crashAt)
	srvA.Close()

	// Tear the final record as a crash between write and ack would:
	// batch crashAt-1 is acknowledged and intact, then a partial frame of
	// the never-acknowledged next batch lands in the file.
	jp := filepath.Join(dir, journalTopicName+".journal")
	info, err := os.Stat(jp)
	if err != nil {
		t.Fatalf("journal stat: %v", err)
	}
	f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 0xFF, 0x03, 0, 0, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: the torn tail is truncated, the intact records replayed.
	_, srvB := testServerOpts(t, dir, opts)
	if sum := jtSummary(t, srvB.Client(), srvB.URL); sum.Batches != crashAt {
		t.Fatalf("recovered %d batches, want %d (journal was %d bytes before tear)",
			sum.Batches, crashAt, info.Size())
	}

	// The stream resumes where the acknowledged prefix ended.
	jtFeed(t, srvB.Client(), srvB.URL, crashAt, total)
	got := jtSnapshotBytes(t, srvB.Client(), srvB.URL)
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered stream diverged: snapshot %d bytes vs %d, equal=false", len(got), len(want))
	}
}

// TestDaemonJournalRestartWithoutTear is the plain restart drill: stop
// after an acknowledged batch, restart, finish the stream, and compare
// snapshots byte-for-byte with an uninterrupted run.
func TestDaemonJournalRestartWithoutTear(t *testing.T) {
	const stopAt, total = 5, 9
	opts := journalOptions{Every: 3, MaxBytes: 1 << 40} // compaction mid-stream too

	_, refSrv := testServerOpts(t, t.TempDir(), opts)
	jtCreate(t, refSrv.Client(), refSrv.URL)
	jtFeed(t, refSrv.Client(), refSrv.URL, 0, total)
	want := jtSnapshotBytes(t, refSrv.Client(), refSrv.URL)

	dir := t.TempDir()
	_, srvA := testServerOpts(t, dir, opts)
	jtCreate(t, srvA.Client(), srvA.URL)
	jtFeed(t, srvA.Client(), srvA.URL, 0, stopAt)
	srvA.Close()

	_, srvB := testServerOpts(t, dir, opts)
	if sum := jtSummary(t, srvB.Client(), srvB.URL); sum.Batches != stopAt {
		t.Fatalf("recovered %d batches, want %d", sum.Batches, stopAt)
	}
	jtFeed(t, srvB.Client(), srvB.URL, stopAt, total)
	if got := jtSnapshotBytes(t, srvB.Client(), srvB.URL); !bytes.Equal(got, want) {
		t.Fatal("restarted stream's snapshot differs from the uninterrupted run")
	}
}

// TestDaemonJournalBytesPerBatch pins the amortized-durability contract:
// between compactions each batch appends O(batch) bytes to the journal —
// the same amount for identical batches no matter how much state has
// accumulated — and the O(state) snapshot file is not rewritten at all.
// At the compaction point the snapshot is rewritten once and the journal
// truncates back to its header.
func TestDaemonJournalBytesPerBatch(t *testing.T) {
	const every = 8
	dir := t.TempDir()
	_, srv := testServerOpts(t, dir, journalOptions{Every: every, MaxBytes: 1 << 40})
	client := srv.Client()
	jtCreate(t, client, srv.URL)

	snapPath := filepath.Join(dir, journalTopicName+".snap")
	jourPath := filepath.Join(dir, journalTopicName+".journal")
	snapAfterCreate, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("snapshot after create: %v", err)
	}

	// Identical-shaped batches (same texts, shifted users) so their
	// journal records have identical encoded size.
	batchFor := func(day int) batchRequest {
		var tweets []tweetSpec
		for i := 0; i < 3; i++ {
			tweets = append(tweets, tweetSpec{Text: "steady state batch tokens here", User: (i + day) % 12})
		}
		return batchRequest{Time: day, Tweets: tweets}
	}
	var deltas []int64
	prev := int64(0)
	if info, err := os.Stat(jourPath); err == nil {
		prev = info.Size()
	}
	for day := 0; day < every-1; day++ {
		code, err := doJSON(client, "POST", srv.URL+"/v1/topics/"+journalTopicName+"/batches", batchFor(day), nil)
		if err != nil || code != http.StatusOK {
			t.Fatalf("batch %d: status %d err %v", day, code, err)
		}
		info, err := os.Stat(jourPath)
		if err != nil {
			t.Fatalf("journal stat: %v", err)
		}
		deltas = append(deltas, info.Size()-prev)
		prev = info.Size()
	}
	for i, d := range deltas {
		if d != deltas[0] {
			t.Fatalf("batch %d appended %d bytes, batch 0 appended %d — per-batch cost grew with state", i, d, deltas[0])
		}
	}
	// State accumulated (vocabulary, histories), yet the snapshot file
	// was not rewritten between compactions.
	snapNow, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snapNow, snapAfterCreate) {
		t.Fatal("snapshot file rewritten between compactions")
	}

	// The next batch crosses -journal-every: snapshot rewritten once,
	// journal truncated to its bare header.
	code, err := doJSON(client, "POST", srv.URL+"/v1/topics/"+journalTopicName+"/batches", batchFor(every-1), nil)
	if err != nil || code != http.StatusOK {
		t.Fatalf("compaction batch: status %d err %v", code, err)
	}
	snapAfter, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(snapAfter, snapAfterCreate) {
		t.Fatal("compaction did not rewrite the snapshot")
	}
	info, err := os.Stat(jourPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() >= deltas[0] {
		t.Fatalf("journal not truncated at compaction: %d bytes", info.Size())
	}
}

// TestDaemonJournalMaxBytesCompaction verifies the size-based compaction
// trigger: a tiny -journal-max-bytes compacts on (nearly) every batch.
func TestDaemonJournalMaxBytesCompaction(t *testing.T) {
	dir := t.TempDir()
	_, srv := testServerOpts(t, dir, journalOptions{Every: 1 << 20, MaxBytes: 64})
	jtCreate(t, srv.Client(), srv.URL)
	jtFeed(t, srv.Client(), srv.URL, 0, 3)
	info, err := os.Stat(filepath.Join(dir, journalTopicName+".journal"))
	if err != nil {
		t.Fatal(err)
	}
	// Every batch exceeds 64 bytes, so each one compacts: the journal
	// holds at most the header (18 bytes) after each acknowledged batch.
	if info.Size() > 64 {
		t.Fatalf("journal grew to %d bytes despite MaxBytes=64", info.Size())
	}
}

// TestDaemonJournalModeMigration drives the same data dir through
// snapshot-per-batch and journal modes in both directions: plain
// snapshot dirs load unchanged under journaling, and a journal-mode dir
// (including its journal tail) loads correctly in snapshot mode.
func TestDaemonJournalModeMigration(t *testing.T) {
	dir := t.TempDir()

	// Plain snapshot-per-batch era.
	_, srvA := testServerOpts(t, dir, journalOptions{Every: 1})
	jtCreate(t, srvA.Client(), srvA.URL)
	jtFeed(t, srvA.Client(), srvA.URL, 0, 2)
	srvA.Close()

	// Upgrade to journal mode: the plain dir loads unchanged.
	_, srvB := testServerOpts(t, dir, journalOptions{Every: 100, MaxBytes: 1 << 40})
	if sum := jtSummary(t, srvB.Client(), srvB.URL); sum.Batches != 2 {
		t.Fatalf("after upgrade: %d batches, want 2", sum.Batches)
	}
	jtFeed(t, srvB.Client(), srvB.URL, 2, 4)
	srvB.Close()

	// Roll back to snapshot mode: the journal tail must still be
	// replayed, not dropped.
	_, srvC := testServerOpts(t, dir, journalOptions{Every: 1})
	if sum := jtSummary(t, srvC.Client(), srvC.URL); sum.Batches != 4 {
		t.Fatalf("after rollback: %d batches, want 4", sum.Batches)
	}
}

// TestDaemonJournalQuarantine corrupts a journal's header and restarts:
// the daemon must serve the topic from its snapshot, move the
// undecodable journal aside, and keep running.
func TestDaemonJournalQuarantine(t *testing.T) {
	dir := t.TempDir()
	opts := journalOptions{Every: 1 << 20, MaxBytes: 1 << 40}
	_, srvA := testServerOpts(t, dir, opts)
	jtCreate(t, srvA.Client(), srvA.URL)
	jtFeed(t, srvA.Client(), srvA.URL, 0, 3)
	srvA.Close()

	jp := filepath.Join(dir, journalTopicName+".journal")
	data, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "GARBAGE!")
	if err := os.WriteFile(jp, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, srvB := testServerOpts(t, dir, opts)
	// The snapshot predates every journaled batch (create-time state).
	if sum := jtSummary(t, srvB.Client(), srvB.URL); sum.Batches != 0 {
		t.Fatalf("quarantined journal still applied: %d batches", sum.Batches)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), journalTopicName+".journal.corrupt") {
			found = true
		}
	}
	if !found {
		t.Fatal("undecodable journal was not quarantined")
	}
	// The daemon stays writable after quarantine.
	jtFeed(t, srvB.Client(), srvB.URL, 0, 1)
}
