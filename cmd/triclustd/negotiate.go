package main

import (
	"encoding/json"
	"fmt"
	"mime"
	"net/http"
	"strings"
)

// Media types of the v1 API. Body-carrying endpoints validate the
// request's Content-Type against the formats they decode (absent means
// the endpoint's default — JSON everywhere except the snapshot-bodied
// endpoints); anything else is 415 unsupported_media_type. Before two
// request formats existed the header was ignored, which was merely lax;
// with JSON and the binary batch frame sharing one route it would be
// ambiguous, so the contract is explicit now.
const (
	mediaTypeJSON     = "application/json"
	mediaTypeBatch    = "application/x-triclust-batch"
	mediaTypeSnapshot = "application/octet-stream"
)

// requireMediaType validates the request's Content-Type against the
// media types the endpoint accepts. An absent header selects the first
// (the endpoint's default); parameters like charset are tolerated and
// ignored. On rejection the 415 response is written and ok is false.
func requireMediaType(w http.ResponseWriter, r *http.Request, accepted ...string) (mt string, ok bool) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return accepted[0], true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMediaType,
			fmt.Errorf("malformed Content-Type %q: %v", ct, err))
		return "", false
	}
	for _, a := range accepted {
		if mt == a {
			return mt, true
		}
	}
	writeError(w, http.StatusUnsupportedMediaType, codeUnsupportedMediaType,
		fmt.Errorf("Content-Type %q is not accepted here (expected %s)", mt, strings.Join(accepted, " or ")))
	return "", false
}

// acceptsBatch reports whether the request negotiates the binary batch
// response format: any element of the Accept list whose media range is
// exactly application/x-triclust-batch selects it (quality factors are
// not weighed — a client that lists the type wants it). Everything else,
// including an absent header, gets JSON, and error responses are always
// JSON regardless of Accept.
func acceptsBatch(r *http.Request) bool {
	for part := range strings.SplitSeq(r.Header.Get("Accept"), ",") {
		mt := part
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = mt[:i]
		}
		if strings.EqualFold(strings.TrimSpace(mt), mediaTypeBatch) {
			return true
		}
	}
	return false
}

// decodeStrict unmarshals a buffered request body under the daemon's
// body contract: exactly one JSON value with nothing after it.
// json.Unmarshal enforces that by construction — unlike
// json.Decoder.Decode, which reads one value and silently leaves
// trailing garbage unread — so every JSON endpoint funnels through this
// helper instead of constructing its own decoder.
func decodeStrict(body []byte, v any) error {
	return json.Unmarshal(body, v)
}
