package main

// The crash-point recovery matrix: every failpoint site the durable-write
// paths actually traverse is discovered at runtime (a rule-less
// fault.Script records the sites it sees), then each discovered site is
// killed at its first hit and the daemon is rebooted over the surviving
// disk image. No hand-maintained site list — a new write site added
// anywhere in the store automatically enters the matrix, and the floor
// assertion at the bottom fails the build if instrumentation is ever
// ripped out wholesale.
//
// Three workloads cover the three durable-write planes:
//
//   - batch commit + compaction on a single shard (create, journal
//     appends, periodic snapshot + rotate),
//   - an operator-driven cluster move (final compaction, tombstone
//     fencing, post-install file removal),
//   - replica installation on a follower (base snapshot, replica
//     journal, meta).
//
// The invariant after every kill+reopen: acked ≤ recovered ≤ attempted —
// every acknowledged batch survives, nothing beyond what was attempted
// appears, recovery itself never fails, the recovered state is
// byte-identical to a control run at the same position, a second restart
// reproduces it bit-for-bit, and the reopened daemon accepts writes.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"triclust/internal/codec"
	"triclust/internal/fault"
)

const (
	mxTopic = "mx"
	mxDays  = 7
)

func matrixJournalOpts() journalOptions {
	// Every:3 puts compactions at batches 3 and 6, so the 7-day workload
	// crosses append-only stretches and two snapshot+rotate points.
	return journalOptions{Every: 3, MaxBytes: 1 << 40}
}

// matrixServe sends one request straight through ServeHTTP — no TCP, no
// net/http panic recovery — so a scripted *Crash panic propagates to the
// matrix driver exactly like a kill -9 unwinds the process.
func matrixServe(t *testing.T, s *server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal %T: %v", body, err)
		}
		rd = bytes.NewReader(data)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// runMatrixWorkload drives create + mxDays batches, reporting progress as
// batch-count states: -1 = nothing, 0 = topic created, i = batch i acked.
// A scripted crash is recovered and returned; any other panic is a test
// bug and re-panics.
func runMatrixWorkload(t *testing.T, s *server) (acked, attempted int, crash *fault.Crash) {
	acked, attempted = -1, -1
	defer func() {
		if r := recover(); r != nil {
			c, ok := fault.AsCrash(r)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	attempted = 0
	if rec := matrixServe(t, s, "POST", "/v1/topics", degradeCreateReq(mxTopic)); rec.Code != http.StatusCreated {
		return
	}
	acked = 0
	for day := 1; day <= mxDays; day++ {
		attempted = day
		if rec := matrixServe(t, s, "POST", "/v1/topics/"+mxTopic+"/batches", degradeBatch(day)); rec.Code != http.StatusOK {
			return
		}
		acked = day
	}
	return
}

// engineState captures a topic's externally observable durable identity:
// stream position plus full snapshot bytes.
type engineState struct {
	batches int
	draws   uint64
	snap    []byte
}

func captureTopic(t *testing.T, s *server, name string) *engineState {
	t.Helper()
	s.mu.RLock()
	tp := s.topics[name]
	s.mu.RUnlock()
	if tp == nil {
		return nil
	}
	st := &engineState{}
	st.batches, st.draws = tp.eng().StreamPos()
	var buf bytes.Buffer
	if err := tp.eng().Snapshot(&buf); err != nil {
		t.Fatalf("snapshot %q: %v", name, err)
	}
	st.snap = buf.Bytes()
	return st
}

func TestCrashPointMatrix(t *testing.T) {
	// Union of every failpoint site any workload discovered; the floor
	// assertion at the bottom is the tentpole's coverage guarantee.
	allSites := map[string]bool{}
	noteSites := func(sites []string) {
		for _, site := range sites {
			allSites[site] = true
		}
	}

	t.Run("BatchCommitAndCompaction", func(t *testing.T) {
		// Control run: the states a crash-free daemon passes through,
		// indexed by batch count.
		ctrl, err := newServer(t.TempDir(), serverOptions{journal: matrixJournalOpts()}, t.Logf)
		if err != nil {
			t.Fatalf("control server: %v", err)
		}
		defer ctrl.Close()
		controls := make([]*engineState, 0, mxDays+1)
		if rec := matrixServe(t, ctrl, "POST", "/v1/topics", degradeCreateReq(mxTopic)); rec.Code != http.StatusCreated {
			t.Fatalf("control create: %d", rec.Code)
		}
		controls = append(controls, captureTopic(t, ctrl, mxTopic))
		for day := 1; day <= mxDays; day++ {
			if rec := matrixServe(t, ctrl, "POST", "/v1/topics/"+mxTopic+"/batches", degradeBatch(day)); rec.Code != http.StatusOK {
				t.Fatalf("control batch %d: %d", day, rec.Code)
			}
			controls = append(controls, captureTopic(t, ctrl, mxTopic))
		}

		// Discovery: the same workload under a recording script, plus a
		// recorded reopen so load-side sites count toward the floor.
		dir := t.TempDir()
		disc := fault.NewScript()
		ds, err := newServer(dir, serverOptions{journal: matrixJournalOpts(), fs: disc}, t.Logf)
		if err != nil {
			t.Fatalf("discovery server: %v", err)
		}
		if acked, _, crash := runMatrixWorkload(t, ds); crash != nil || acked != mxDays {
			t.Fatalf("rule-less discovery run: acked=%d crash=%v", acked, crash)
		}
		ds.Close()
		sites := disc.Sites()
		noteSites(sites)
		reload := fault.NewScript()
		rs, err := newServer(dir, serverOptions{journal: matrixJournalOpts(), fs: reload}, t.Logf)
		if err != nil {
			t.Fatalf("discovery reopen: %v", err)
		}
		rs.Close()
		noteSites(reload.Sites())
		if len(sites) == 0 {
			t.Fatal("discovery found no failpoint sites — instrumentation is gone")
		}

		for _, site := range sites {
			for _, tail := range []fault.TailMode{fault.KeepTail, fault.DropTail, fault.TornTail} {
				t.Run(fmt.Sprintf("%s/tail=%d", site, tail), func(t *testing.T) {
					dir := t.TempDir()
					script := fault.NewScript(fault.Rule{Site: site, Hit: 1, Crash: true, Tail: tail})
					s, err := newServer(dir, serverOptions{journal: matrixJournalOpts(), fs: script}, t.Logf)
					if err != nil {
						t.Fatalf("newServer: %v", err)
					}
					acked, attempted, crash := runMatrixWorkload(t, s)
					_ = s.Close()
					if crash == nil {
						t.Fatalf("site %s was hit in discovery but the workload finished without crashing (acked=%d)", site, acked)
					}

					// Reboot over the frozen disk image. Recovery must never
					// fail, whatever the crash left behind.
					s2, err := newServer(dir, serverOptions{journal: matrixJournalOpts()}, t.Logf)
					if err != nil {
						t.Fatalf("recovery after crash at %s failed: %v", site, err)
					}
					got := captureTopic(t, s2, mxTopic)
					recovered := -1
					if got != nil {
						recovered = got.batches
					}
					if recovered < acked || recovered > attempted {
						t.Fatalf("crash at %s: recovered %d batches, want acked %d <= recovered <= attempted %d",
							site, recovered, acked, attempted)
					}
					if got != nil {
						want := controls[recovered]
						if got.draws != want.draws || !bytes.Equal(got.snap, want.snap) {
							t.Fatalf("crash at %s: recovered state at %d batches diverges from the control run (draws %d vs %d, snap equal=%v)",
								site, recovered, got.draws, want.draws, bytes.Equal(got.snap, want.snap))
						}
					}
					_ = s2.Close()

					// Second restart: recovery must be idempotent — replay,
					// quarantine and compaction decisions settle to the same
					// bytes, not a state that drifts per reboot.
					s3, err := newServer(dir, serverOptions{journal: matrixJournalOpts()}, t.Logf)
					if err != nil {
						t.Fatalf("second reopen after crash at %s failed: %v", site, err)
					}
					defer s3.Close()
					again := captureTopic(t, s3, mxTopic)
					switch {
					case (got == nil) != (again == nil):
						t.Fatalf("crash at %s: topic presence differs between restarts", site)
					case got != nil && (again.batches != got.batches || again.draws != got.draws || !bytes.Equal(again.snap, got.snap)):
						t.Fatalf("crash at %s: second restart recovered (%d,%d), first (%d,%d), snap equal=%v",
							site, again.batches, again.draws, got.batches, got.draws, bytes.Equal(again.snap, got.snap))
					}

					// The recovered daemon must accept writes again.
					if got == nil {
						if rec := matrixServe(t, s3, "POST", "/v1/topics", degradeCreateReq(mxTopic)); rec.Code != http.StatusCreated {
							t.Fatalf("re-create after crash at %s: %d", site, rec.Code)
						}
					}
					if rec := matrixServe(t, s3, "POST", "/v1/topics/"+mxTopic+"/batches", degradeBatch(50)); rec.Code != http.StatusOK {
						t.Fatalf("batch after recovery from crash at %s: %d %s", site, rec.Code, rec.Body.String())
					}
				})
			}
		}
	})

	t.Run("ClusterMove", func(t *testing.T) {
		// One clean move discovers the hand-off's write sites (final
		// compaction, tombstone fence, post-install removal); then each is
		// crashed and the move is retried against the rebooted source.
		script, _, servers, urls, _, name := setupMoveCluster(t)
		pre := map[string]int{}
		for _, site := range script.Sites() {
			pre[site] = script.Hits(site)
		}
		if rec := matrixServe(t, servers[0], "POST", "/v1/cluster/move",
			moveRequest{Topic: name, Target: urls[1]}); rec.Code != http.StatusOK {
			t.Fatalf("clean discovery move: %d %s", rec.Code, rec.Body.String())
		}
		var moveSites []string
		for _, site := range script.Sites() {
			if script.Hits(site) > pre[site] {
				moveSites = append(moveSites, site)
			}
		}
		sort.Strings(moveSites)
		noteSites(moveSites)
		if len(moveSites) == 0 {
			t.Fatal("the hand-off traversed no failpoint sites")
		}
		// The fence-to-removal window must be part of the matrix: its
		// crash is the one that forks a topic if resume is broken.
		for _, must := range []string{"tombstone.rename", "persist.remove.snap"} {
			found := false
			for _, site := range moveSites {
				found = found || site == must
			}
			if !found {
				t.Fatalf("move sites %v miss %s", moveSites, must)
			}
		}

		for _, site := range moveSites {
			t.Run(site, func(t *testing.T) {
				script, srcDir, servers, urls, handlers, name := setupMoveCluster(t)
				want := captureTopic(t, servers[0], name)
				script.AddRule(fault.Rule{Site: site, Hit: script.Hits(site) + 1, Crash: true, Tail: fault.DropTail})

				crashed := false
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := fault.AsCrash(r); !ok {
								panic(r)
							}
							crashed = true
						}
					}()
					matrixServe(t, servers[0], "POST", "/v1/cluster/move",
						moveRequest{Topic: name, Target: urls[1]})
				}()
				if !crashed {
					t.Fatalf("site %s was hit by the clean move but this move finished without crashing", site)
				}
				_ = servers[0].Close()

				// Reboot the source shard over the frozen image and point
				// its public URL at the new instance.
				cc, err := newClusterConfig(urls[0], strings.Join(urls[:], ","), 32, true)
				if err != nil {
					t.Fatalf("cluster config: %v", err)
				}
				s0b, err := newServer(srcDir, serverOptions{journal: matrixJournalOpts(), cluster: cc}, t.Logf)
				if err != nil {
					t.Fatalf("source reboot after crash at %s failed: %v", site, err)
				}
				defer s0b.Close()
				handlers[0].swap(s0b)

				// Retry the move. Depending on where the crash fell this is
				// a fresh hand-off, a resume of the interrupted one, or a
				// no-op because the topic already completed its journey —
				// never a fork, never a stuck topic.
				rec := matrixServe(t, s0b, "POST", "/v1/cluster/move",
					moveRequest{Topic: name, Target: urls[1]})
				switch {
				case rec.Code == http.StatusOK:
				case rec.Code == http.StatusBadRequest && strings.Contains(rec.Body.String(), "already lives"):
					// Forwarded to the target, which already owns it: the
					// crashed move had fully completed.
				default:
					t.Fatalf("move retry after crash at %s: %d %s", site, rec.Code, rec.Body.String())
				}

				// Exactly one shard serves the topic, at the pre-move
				// position — acked batches crossed the hand-off intact.
				holders := 0
				var holder *server
				for _, sv := range []*server{s0b, servers[1]} {
					var info clusterInfoResponse
					rec := matrixServe(t, sv, "GET", "/v1/cluster/info?topic="+name, nil)
					if rec.Code != http.StatusOK {
						t.Fatalf("cluster info: %d", rec.Code)
					}
					if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
						t.Fatalf("decode cluster info: %v", err)
					}
					if info.Topic != nil && info.Topic.Local {
						holders++
						holder = sv
					}
				}
				if holders != 1 {
					t.Fatalf("crash at %s: %d shards serve %q after the retried move, want exactly 1 (fork or loss)", site, holders, name)
				}
				got := captureTopic(t, holder, name)
				if got.batches != want.batches || got.draws != want.draws {
					t.Fatalf("crash at %s: topic at (%d,%d) after the move, want pre-move (%d,%d)",
						site, got.batches, got.draws, want.batches, want.draws)
				}

				// And the topic keeps taking writes wherever it landed —
				// routed through the rebooted source, following the fence.
				if rec := matrixServe(t, s0b, "POST", "/v1/topics/"+name+"/batches", degradeBatch(50)); rec.Code != http.StatusOK {
					t.Fatalf("batch after crash at %s: %d %s", site, rec.Code, rec.Body.String())
				}
			})
		}
	})

	t.Run("ReplicaInstall", func(t *testing.T) {
		// Discovery: one base install plus two incremental tails on a
		// follower under a recording script.
		dir := t.TempDir()
		disc := fault.NewScript()
		s := replicaMatrixServer(t, dir, disc)
		if acked, crash := shipReplicaFrames(t, s); crash != nil || acked != 3 {
			t.Fatalf("rule-less replica discovery: acked=%d crash=%v", acked, crash)
		}
		_ = s.Close()
		sites := disc.Sites()
		noteSites(sites)
		if len(sites) == 0 {
			t.Fatal("the replica install traversed no failpoint sites")
		}

		for _, site := range sites {
			for _, tail := range []fault.TailMode{fault.KeepTail, fault.DropTail, fault.TornTail} {
				t.Run(fmt.Sprintf("%s/tail=%d", site, tail), func(t *testing.T) {
					dir := t.TempDir()
					script := fault.NewScript(fault.Rule{Site: site, Hit: 1, Crash: true, Tail: tail})
					s := replicaMatrixServer(t, dir, script)
					acked, crash := shipReplicaFrames(t, s)
					_ = s.Close()
					if crash == nil {
						t.Fatalf("site %s was hit in discovery but the frames landed without crashing (acked=%d)", site, acked)
					}

					// Reboot the follower: whatever half-written replica
					// files the crash left, startup must quarantine or
					// adopt them — never fail.
					s2 := replicaMatrixServer(t, dir, nil)
					defer s2.Close()

					// The primary notices the lag and re-ships a full base;
					// the follower must converge on it regardless of the
					// rubble the crash left behind.
					code, ack, ec, _ := postReplFrame(t, s2, mxTopic, &codec.ReplAppend{
						Source: "http://peer.test:8547", Epoch: 0, SnapCRC: replicaMatrixCRC(),
						BaseBatches: 1, BaseRandDraws: 10,
						Batches: 3, RandDraws: 30,
						Snapshot: replicaMatrixSnap(),
						Tail:     append(tailFrame(t, 2, 2, 20), tailFrame(t, 3, 3, 30)...),
					})
					if code != http.StatusOK || ack.Batches != 3 || ack.RandDraws != 30 {
						t.Fatalf("full re-ship after crash at %s: %d %s ack=%+v", site, code, ec, ack)
					}
					if b, d := replicaPos(t, s2, mxTopic); b != 3 || d != 30 {
						t.Fatalf("replica at (%d,%d) after re-ship, want (3,30)", b, d)
					}
				})
			}
		}
	})

	var union []string
	for site := range allSites {
		union = append(union, site)
	}
	sort.Strings(union)
	t.Logf("crash-point matrix covered %d failpoint sites: %v", len(union), union)
	if len(union) < 15 {
		t.Fatalf("the matrix discovered only %d failpoint sites (%v), want >= 15 — durable-write instrumentation has regressed",
			len(union), union)
	}
}

// TestMoveResumeAfterFenceCrash pins the nastiest hand-off window: the
// crash falls after the tombstone fenced the topic and the snapshot was
// installed on the target, but before the source removed its own files.
// On reboot the source must treat the leftover tombstone + snapshot as an
// interrupted hand-off and *resume* it on the next move — finishing the
// local drop — never as a servable topic, which would put two live
// copies of the same name in the cluster (a fork).
func TestMoveResumeAfterFenceCrash(t *testing.T) {
	script, srcDir, servers, urls, handlers, name := setupMoveCluster(t)
	want := captureTopic(t, servers[0], name)
	// First hit of the post-install removal: exactly the fence→removal gap.
	script.AddRule(fault.Rule{Site: "persist.remove.snap", Hit: script.Hits("persist.remove.snap") + 1,
		Crash: true, Tail: fault.DropTail})
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := fault.AsCrash(r); !ok {
					panic(r)
				}
			}
		}()
		matrixServe(t, servers[0], "POST", "/v1/cluster/move", moveRequest{Topic: name, Target: urls[1]})
		t.Error("the move completed without crashing at persist.remove.snap")
	}()
	if t.Failed() {
		return
	}
	_ = servers[0].Close()

	cc, err := newClusterConfig(urls[0], strings.Join(urls[:], ","), 32, true)
	if err != nil {
		t.Fatalf("cluster config: %v", err)
	}
	s0b, err := newServer(srcDir, serverOptions{journal: matrixJournalOpts(), cluster: cc}, t.Logf)
	if err != nil {
		t.Fatalf("source reboot: %v", err)
	}
	defer s0b.Close()
	handlers[0].swap(s0b)

	// The rebooted source must hold the topic fenced, not serve it: a
	// batch routed at it may follow the tombstone to the target, but the
	// source itself must not apply it to the leftover snapshot.
	s0b.mu.RLock()
	_, servesLocally := s0b.topics[name]
	_, fenced := s0b.moved[name]
	s0b.mu.RUnlock()
	if servesLocally || !fenced {
		t.Fatalf("rebooted source: local=%v fenced=%v, want the interrupted hand-off held back (false, true)", servesLocally, fenced)
	}

	// Retrying the move resumes the interrupted hand-off rather than
	// starting a new one (or forking the topic).
	rec := matrixServe(t, s0b, "POST", "/v1/cluster/move", moveRequest{Topic: name, Target: urls[1]})
	if rec.Code != http.StatusOK {
		t.Fatalf("move retry: %d %s", rec.Code, rec.Body.String())
	}
	var mr moveResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mr); err != nil {
		t.Fatalf("decode move response: %v", err)
	}
	if !mr.Resumed {
		t.Fatalf("move retry answered %+v, want Resumed=true — the interrupted hand-off must resume, not restart", mr)
	}
	got := captureTopic(t, servers[1], name)
	if got == nil || got.batches != want.batches || got.draws != want.draws {
		t.Fatalf("target serves %+v after the resumed hand-off, want position (%d,%d)", got, want.batches, want.draws)
	}
	// And the source's leftovers are gone: a second retry has nothing to
	// resume and routes to the target, which refuses the self-move.
	if s0b.store.snapExists(name) {
		t.Fatal("the resumed hand-off left the source's snapshot behind")
	}
	if rec := matrixServe(t, s0b, "POST", "/v1/topics/"+name+"/batches", degradeBatch(50)); rec.Code != http.StatusOK {
		t.Fatalf("batch after resume: %d %s", rec.Code, rec.Body.String())
	}
}

// setupMoveCluster builds a two-shard cluster whose source shard writes
// through a fresh script, creates a topic the ring places on the source,
// and feeds it two batches. Returned ready for a hand-off to urls[1].
func setupMoveCluster(t *testing.T) (*fault.Script, string, [2]*server, [2]string, [2]*shardHandler, string) {
	t.Helper()
	handlers := [2]*shardHandler{{}, {}}
	var urls [2]string
	for i := range handlers {
		hs := httptest.NewServer(handlers[i])
		t.Cleanup(hs.Close)
		urls[i] = hs.URL
	}
	script := fault.NewScript()
	fss := [2]fault.FS{script, nil}
	var servers [2]*server
	srcDir := ""
	for i := range servers {
		// proxy mode: the shard forwards mis-routed requests itself, so
		// the post-crash writability probe can be aimed at the rebooted
		// source and follow the fence wherever the topic landed.
		cc, err := newClusterConfig(urls[i], strings.Join(urls[:], ","), 32, true)
		if err != nil {
			t.Fatalf("cluster config %d: %v", i, err)
		}
		dir := t.TempDir()
		if i == 0 {
			srcDir = dir
		}
		s, err := newServer(dir, serverOptions{journal: matrixJournalOpts(), cluster: cc, fs: fss[i]}, t.Logf)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		t.Cleanup(func() { _ = s.Close() })
		servers[i] = s
		handlers[i].swap(s)
	}
	name := ""
	for i := 0; i < 100; i++ {
		n := fmt.Sprintf("mv%02d", i)
		if servers[0].cluster.ring.Owner(n) == urls[0] {
			name = n
			break
		}
	}
	if name == "" {
		t.Fatal("no topic name owned by shard 0")
	}
	if rec := matrixServe(t, servers[0], "POST", "/v1/topics", degradeCreateReq(name)); rec.Code != http.StatusCreated {
		t.Fatalf("create %s: %d %s", name, rec.Code, rec.Body.String())
	}
	for day := 1; day <= 2; day++ {
		if rec := matrixServe(t, servers[0], "POST", "/v1/topics/"+name+"/batches", degradeBatch(day)); rec.Code != http.StatusOK {
			t.Fatalf("batch %d: %d %s", day, rec.Code, rec.Body.String())
		}
	}
	return script, srcDir, servers, urls, handlers, name
}

// replicaMatrixServer builds a follower whose replica files go through
// fs, with fake ring peers (the replica wire is driven by hand, so no
// peer has to exist). Background machinery stays off.
func replicaMatrixServer(t *testing.T, dir string, fs fault.FS) *server {
	t.Helper()
	self := "http://self.test:8547"
	peer := "http://peer.test:8547"
	cc, err := newClusterConfig(self, self+","+peer, 32, false)
	if err != nil {
		t.Fatalf("newClusterConfig: %v", err)
	}
	s, err := newServer(dir, serverOptions{
		journal: matrixJournalOpts(),
		cluster: cc,
		repl:    &replOptions{Factor: 2, ProbeInterval: time.Hour},
		fs:      fs,
	}, t.Logf)
	if err != nil {
		t.Fatalf("replica server over %s: %v", dir, err)
	}
	return s
}

func replicaMatrixSnap() []byte {
	return []byte("crash-matrix replica base snapshot — opaque to the follower")
}

func replicaMatrixCRC() uint32 {
	return codec.Checksum(replicaMatrixSnap())
}

// shipReplicaFrames drives the follower through a base install at
// (1,10) and incremental tails to (2,20) and (3,30), returning the
// highest acked batch count and the scripted crash, if one fired.
func shipReplicaFrames(t *testing.T, s *server) (acked int, crash *fault.Crash) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			c, ok := fault.AsCrash(r)
			if !ok {
				panic(r)
			}
			crash = c
		}
	}()
	src := "http://peer.test:8547"
	crc := replicaMatrixCRC()
	frames := []*codec.ReplAppend{
		{Source: src, Epoch: 0, SnapCRC: crc,
			BaseBatches: 1, BaseRandDraws: 10, Batches: 1, RandDraws: 10,
			Snapshot: replicaMatrixSnap()},
		{Source: src, Epoch: 0, SnapCRC: crc,
			Batches: 2, RandDraws: 20, Tail: tailFrame(t, 2, 2, 20)},
		{Source: src, Epoch: 0, SnapCRC: crc,
			Batches: 3, RandDraws: 30, Tail: tailFrame(t, 3, 3, 30)},
	}
	for _, fr := range frames {
		var body bytes.Buffer
		if err := codec.EncodeReplAppend(&body, fr); err != nil {
			t.Fatalf("EncodeReplAppend: %v", err)
		}
		req := httptest.NewRequest("POST", "/v1/replica/"+mxTopic+"/append", &body)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("replica frame to (%d,%d): %d %s", fr.Batches, fr.RandDraws, rec.Code, rec.Body.String())
		}
		acked = int(fr.Batches)
	}
	return acked, nil
}
