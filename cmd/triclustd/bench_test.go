package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// benchUsers / benchVocab shape the benchmark topic: a large user
// universe whose history the topic retains forever (the O(state) part a
// snapshot rewrites every time) against a small constant per-batch load
// (the O(batch) part a journal record captures). This is the regime long
// streams converge to: state grows without bound, batches do not.
const (
	benchUsers = 20000
	benchVocab = 400
)

// benchDaemon boots a persistent daemon and warms one topic: a frozen
// vocabulary and one wide batch giving every user recorded history.
func benchDaemon(b *testing.B, opts journalOptions) (*server, *httptest.Server, *int) {
	b.Helper()
	s, err := newServer(b.TempDir(), serverOptions{journal: opts}, nil)
	if err != nil {
		b.Fatalf("newServer: %v", err)
	}
	srv := httptest.NewServer(s)
	b.Cleanup(srv.Close)
	client := srv.Client()

	users := make([]string, benchUsers)
	for i := range users {
		users[i] = fmt.Sprintf("user%05d", i)
	}
	req := createTopicRequest{
		Name:    "bench",
		Users:   users,
		Options: topicOptions{MaxIter: 1, Seed: 1, MinDF: 1},
	}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		b.Fatalf("create: status %d err %v", code, err)
	}
	words := make([][]string, 1)
	for i := 0; i < benchVocab; i++ {
		words[0] = append(words[0], benchWord(i))
	}
	vr := vocabRequest{Docs: words, Freeze: true}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/vocab", vr, nil); err != nil || code != http.StatusOK {
		b.Fatalf("vocab: status %d err %v", code, err)
	}
	// One wide batch: every user tweets once, so every user carries
	// history the snapshot must serialize from now on.
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/batches",
		benchWideBatch(0), nil); err != nil || code != http.StatusOK {
		b.Fatalf("wide warm batch: status %d err %v", code, err)
	}
	day := 1
	for ; day < 3; day++ {
		if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/batches", benchBatch(day), nil); err != nil || code != http.StatusOK {
			b.Fatalf("warm batch %d: status %d err %v", day, code, err)
		}
	}
	return s, srv, &day
}

func benchWord(i int) string { return fmt.Sprintf("word%04d", i) }

// benchWideBatch is one day of the paper's regime: every user tweets,
// so the solve + persistence of the batch is O(users) work — the
// write-side span a reader used to queue behind.
func benchWideBatch(day int) batchRequest {
	tweets := make([]tweetSpec, 0, benchUsers)
	for u := 0; u < benchUsers; u++ {
		tweets = append(tweets, tweetSpec{
			Tokens: []string{benchWord((u + day) % benchVocab), benchWord((u*3 + day) % benchVocab)},
			User:   u,
		})
	}
	return batchRequest{Time: day, Tweets: tweets}
}

// benchBatch is a small constant-shape batch: the per-batch work a
// steady stream pays, dwarfed by full-state snapshots.
func benchBatch(day int) batchRequest {
	var tweets []tweetSpec
	for i := 0; i < 4; i++ {
		tweets = append(tweets, tweetSpec{
			Tokens: []string{
				benchWord((day*17 + i*5) % benchVocab),
				benchWord((day*13 + i*7 + 1) % benchVocab),
				benchWord((day*11 + i*3 + 2) % benchVocab),
			},
			User: (i*19 + day) % benchUsers,
		})
	}
	return batchRequest{Time: day, Tweets: tweets}
}

// BenchmarkDaemonBatchPersist measures the full POST /batches path of a
// durable daemon — solve plus persistence — in the two durability modes.
// snapshot-every-batch rewrites the O(state) snapshot per batch (the
// pre-journal behaviour); journal appends one O(batch) record and
// compacts every 64 batches. Run with -benchtime 500x for the
// 500-batch-stream comparison recorded in ROADMAP.md.
func BenchmarkDaemonBatchPersist(b *testing.B) {
	run := func(b *testing.B, opts journalOptions) {
		_, srv, day := benchDaemon(b, opts)
		client := srv.Client()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/batches", benchBatch(*day), nil)
			if err != nil || code != http.StatusOK {
				b.Fatalf("batch %d: status %d err %v", *day, code, err)
			}
			*day++
		}
	}
	b.Run("snapshot-every-batch", func(b *testing.B) {
		run(b, journalOptions{Every: 1})
	})
	// Note for bench-parsing tools: sub-benchmark names must not end in
	// digits (the GOMAXPROCS suffix is only appended on multi-core
	// runners, so a trailing number would be ambiguous).
	b.Run("journal-amortized", func(b *testing.B) {
		run(b, journalOptions{Every: 64, MaxBytes: 8 << 20})
	})
}

// BenchmarkReadsUnderIngest measures concurrent read latency against a
// topic under continuous ingest — the regime the RCU read plane exists
// for. A background goroutine keeps POSTing batches (solve + journal +
// periodic full-state compaction) while parallel readers poll the
// user-estimate endpoint; reported are ns/op (read throughput), the p99
// and worst-case read latencies, and how many batches ingest landed
// inside the measurement window.
//
// Both variants issue the identical request through the full ServeHTTP
// path, so they pay the same routing and encoding costs. rcu-view is
// the shipping path: the handler answers from the published view and
// takes no lock. topic-locked restores the pre-view serialization by
// wrapping the same request in the daemon's per-topic mutex — the one
// ingest holds across solve + persistence — so a read queues behind
// whatever write (and whatever compaction) is in flight, exactly as it
// did when estimates were read from the solver under its lock.
func BenchmarkReadsUnderIngest(b *testing.B) {
	type variant struct {
		name   string
		locked bool
	}
	for _, v := range []variant{{"rcu-view", false}, {"topic-locked", true}} {
		b.Run(v.name, func(b *testing.B) {
			// Snapshot-every-batch durability: each batch holds the topic
			// lock across the solve AND the O(state) snapshot encode +
			// fsync — the longest span the write path ever serializes —
			// so the lock is held for most of the measurement window.
			s, _, day := benchDaemon(b, journalOptions{Every: 1})

			// Continuous ingest until the readers are done.
			stop := make(chan struct{})
			ingestDone := make(chan error, 1)
			var ingested atomic.Int64
			go func() {
				defer close(ingestDone)
				for {
					select {
					case <-stop:
						return
					default:
					}
					body, err := json.Marshal(benchBatch(*day))
					if err != nil {
						ingestDone <- err
						return
					}
					*day++
					req := httptest.NewRequest("POST", "/v1/topics/bench/batches", bytes.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						ingestDone <- fmt.Errorf("ingest batch: status %d: %s", rec.Code, rec.Body.String())
						return
					}
					ingested.Add(1)
				}
			}()

			s.mu.RLock()
			benchTp := s.topics["bench"]
			s.mu.RUnlock()

			var mu sync.Mutex
			var lats []time.Duration
			b.SetParallelism(8) // 8 readers per core: polls queue, like real clients
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				local := make([]time.Duration, 0, 4096)
				w := &nullResponseWriter{h: make(http.Header)}
				u := 0
				for pb.Next() {
					u = (u + 7919) % benchUsers
					req := httptest.NewRequest("GET", fmt.Sprintf("/v1/topics/bench/users/%d", u), nil)
					start := time.Now()
					if v.locked {
						benchTp.mu.Lock()
						s.ServeHTTP(w, req)
						benchTp.mu.Unlock()
					} else {
						s.ServeHTTP(w, req)
					}
					local = append(local, time.Since(start))
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			})
			b.StopTimer()
			close(stop)
			if err := <-ingestDone; err != nil {
				b.Fatal(err)
			}
			if len(lats) > 0 {
				// The lock shows up as few-but-enormous stalls (one queue
				// of readers per in-flight batch), so the percentile AND
				// the worst case are both reported: p99 demonstrates the
				// steady poll latency stays flat, max-ns exposes how long
				// a reader can be stuck behind a solve + snapshot fsync.
				// batches counts ingest landed while readers ran: under
				// the lock, blocked readers also hand the writer the CPU,
				// so the serialization inflates it — that asymmetry is
				// part of the finding, not noise.
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				b.ReportMetric(float64(lats[len(lats)*99/100].Nanoseconds()), "p99-ns")
				b.ReportMetric(float64(lats[len(lats)-1].Nanoseconds()), "max-ns")
				b.ReportMetric(float64(ingested.Load()), "batches")
			}
		})
	}
}
