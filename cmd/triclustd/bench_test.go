package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchUsers / benchVocab shape the benchmark topic: a large user
// universe whose history the topic retains forever (the O(state) part a
// snapshot rewrites every time) against a small constant per-batch load
// (the O(batch) part a journal record captures). This is the regime long
// streams converge to: state grows without bound, batches do not.
const (
	benchUsers = 20000
	benchVocab = 400
)

// benchDaemon boots a persistent daemon and warms one topic: a frozen
// vocabulary and one wide batch giving every user recorded history.
func benchDaemon(b *testing.B, opts journalOptions) (*httptest.Server, *int) {
	b.Helper()
	s, err := newServer(b.TempDir(), serverOptions{journal: opts}, nil)
	if err != nil {
		b.Fatalf("newServer: %v", err)
	}
	srv := httptest.NewServer(s)
	b.Cleanup(srv.Close)
	client := srv.Client()

	users := make([]string, benchUsers)
	for i := range users {
		users[i] = fmt.Sprintf("user%05d", i)
	}
	req := createTopicRequest{
		Name:    "bench",
		Users:   users,
		Options: topicOptions{MaxIter: 1, Seed: 1, MinDF: 1},
	}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics", req, nil); err != nil || code != http.StatusCreated {
		b.Fatalf("create: status %d err %v", code, err)
	}
	words := make([][]string, 1)
	for i := 0; i < benchVocab; i++ {
		words[0] = append(words[0], benchWord(i))
	}
	vr := vocabRequest{Docs: words, Freeze: true}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/vocab", vr, nil); err != nil || code != http.StatusOK {
		b.Fatalf("vocab: status %d err %v", code, err)
	}
	// One wide batch: every user tweets once, so every user carries
	// history the snapshot must serialize from now on.
	var wide []tweetSpec
	for u := 0; u < benchUsers; u++ {
		wide = append(wide, tweetSpec{Tokens: []string{benchWord(u % benchVocab)}, User: u})
	}
	if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/batches",
		batchRequest{Time: 0, Tweets: wide}, nil); err != nil || code != http.StatusOK {
		b.Fatalf("wide warm batch: status %d err %v", code, err)
	}
	day := 1
	for ; day < 3; day++ {
		if code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/batches", benchBatch(day), nil); err != nil || code != http.StatusOK {
			b.Fatalf("warm batch %d: status %d err %v", day, code, err)
		}
	}
	return srv, &day
}

func benchWord(i int) string { return fmt.Sprintf("word%04d", i) }

// benchBatch is a small constant-shape batch: the per-batch work a
// steady stream pays, dwarfed by full-state snapshots.
func benchBatch(day int) batchRequest {
	var tweets []tweetSpec
	for i := 0; i < 4; i++ {
		tweets = append(tweets, tweetSpec{
			Tokens: []string{
				benchWord((day*17 + i*5) % benchVocab),
				benchWord((day*13 + i*7 + 1) % benchVocab),
				benchWord((day*11 + i*3 + 2) % benchVocab),
			},
			User: (i*19 + day) % benchUsers,
		})
	}
	return batchRequest{Time: day, Tweets: tweets}
}

// BenchmarkDaemonBatchPersist measures the full POST /batches path of a
// durable daemon — solve plus persistence — in the two durability modes.
// snapshot-every-batch rewrites the O(state) snapshot per batch (the
// pre-journal behaviour); journal appends one O(batch) record and
// compacts every 64 batches. Run with -benchtime 500x for the
// 500-batch-stream comparison recorded in ROADMAP.md.
func BenchmarkDaemonBatchPersist(b *testing.B) {
	run := func(b *testing.B, opts journalOptions) {
		srv, day := benchDaemon(b, opts)
		client := srv.Client()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			code, err := doJSON(client, "POST", srv.URL+"/v1/topics/bench/batches", benchBatch(*day), nil)
			if err != nil || code != http.StatusOK {
				b.Fatalf("batch %d: status %d err %v", *day, code, err)
			}
			*day++
		}
	}
	b.Run("snapshot-every-batch", func(b *testing.B) {
		run(b, journalOptions{Every: 1})
	})
	// Note for bench-parsing tools: sub-benchmark names must not end in
	// digits (the GOMAXPROCS suffix is only appended on multi-core
	// runners, so a trailing number would be ambiguous).
	b.Run("journal-amortized", func(b *testing.B) {
		run(b, journalOptions{Every: 64, MaxBytes: 8 << 20})
	})
}
