package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"triclust"
)

// Conformance-gate tests drive a controlled steady stream so the
// profile's invariants are exactly predictable: 12 users, 12 tweets per
// batch (tweet i from user i), three tokens each drawn from a fixed
// five-word rotation, every tweet at the batch time, batch times
// stepping by one. Ten warm batches put every invariant — including
// time_step, which only starts accumulating at the second batch — past
// its MinSamples gate, so batch 11 is scored on all seven.

func conformServer(t *testing.T, mode triclust.ConformanceMode) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer("", serverOptions{journal: journalOptions{Every: 1}, conform: mode}, t.Logf)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(hs.Close)
	return s, hs
}

func steadyCreateReq(name string) createTopicRequest {
	users := make([]string, 12)
	for i := range users {
		users[i] = fmt.Sprintf("u%d", i)
	}
	return createTopicRequest{
		Name:    name,
		Users:   users,
		Options: topicOptions{MaxIter: 5, Seed: 7},
	}
}

func steadyBatch(ts int) batchRequest {
	word := func(k int) string { return fmt.Sprintf("w%d", k%5) }
	tweets := make([]tweetSpec, 12)
	for i := range tweets {
		tweets[i] = tweetSpec{
			Tokens: []string{word(i), word(i + 1), word(i + 2)},
			User:   i,
		}
	}
	return batchRequest{Time: ts, Tweets: tweets}
}

// warmSteady creates the topic and feeds it warm conforming batches at
// ts 1..n, asserting every one is accepted.
func warmSteady(t *testing.T, client *http.Client, base, name string, n int) {
	t.Helper()
	if code, err := doJSON(client, http.MethodPost, base+"/v1/topics", steadyCreateReq(name), nil); err != nil || code != http.StatusCreated {
		t.Fatalf("create %s: code=%d err=%v", name, code, err)
	}
	for ts := 1; ts <= n; ts++ {
		var resp batchResponse
		code, err := doJSON(client, http.MethodPost, base+"/v1/topics/"+name+"/batches", steadyBatch(ts), &resp)
		if err != nil || code != http.StatusOK {
			t.Fatalf("warm batch %d: code=%d err=%v", ts, code, err)
		}
	}
}

// postBatchVerdict sends one batch and returns (status code, error body)
// so callers can inspect both acceptance and rejection shapes.
func postBatchVerdict(t *testing.T, client *http.Client, base, name string, req batchRequest) (int, batchResponse, errorBody) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatalf("encode: %v", err)
	}
	resp, err := client.Post(base+"/v1/topics/"+name+"/batches", "application/json", &buf)
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var ok batchResponse
	var eb errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &ok); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	} else if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	return resp.StatusCode, ok, eb
}

// Injected anomalies against the steady stream. Each perturbs exactly
// the invariants its test names, leaving the rest at their steady
// values.

// oovSpikeBatch: every token is outside the frozen vocabulary.
func oovSpikeBatch(ts int) batchRequest {
	tweets := make([]tweetSpec, 12)
	for i := range tweets {
		tweets[i] = tweetSpec{
			Tokens: []string{"zzz1", "zzz2", "zzz3"},
			User:   i,
		}
	}
	return batchRequest{Time: ts, Tweets: tweets}
}

// dupFloodBatch: twelve byte-identical tweets from one user.
func dupFloodBatch(ts int) batchRequest {
	tweets := make([]tweetSpec, 12)
	for i := range tweets {
		tweets[i] = tweetSpec{Tokens: []string{"w0", "w1", "w2"}, User: 0}
	}
	return batchRequest{Time: ts, Tweets: tweets}
}

// flagBandBatch widens tweets to five tokens: tokens_per_tweet lands at
// z = 4 and token_rate at z ≈ 6.7 — flag band, below the quarantine
// threshold of 8.
func flagBandBatch(ts int) batchRequest {
	word := func(k int) string { return fmt.Sprintf("w%d", k%5) }
	tweets := make([]tweetSpec, 12)
	for i := range tweets {
		tweets[i] = tweetSpec{
			Tokens: []string{word(i), word(i + 1), word(i + 2), word(i + 3), word(i + 4)},
			User:   i,
		}
	}
	return batchRequest{Time: ts, Tweets: tweets}
}

// TestConformEnforceRejectsAnomalies: in enforce mode each injected
// anomaly is refused with 422 batch_nonconforming naming the violated
// invariant in the structured verdict, the rejection leaves no durable
// trace (the same timestamp retries cleanly), and the healthz census
// reports the rejections.
func TestConformEnforceRejectsAnomalies(t *testing.T) {
	_, srv := conformServer(t, triclust.ConformEnforce)
	client := srv.Client()
	const name = "gate"
	warmSteady(t, client, srv.URL, name, 10)

	cases := []struct {
		label     string
		req       batchRequest
		invariant string
	}{
		{"oov spike", oovSpikeBatch(11), "oov_rate"},
		{"duplicate flood", dupFloodBatch(11), "dup_rate"},
		{"timestamp jump", batchRequest{Time: 1000, Tweets: steadyBatch(11).Tweets}, "time_step"},
	}
	for _, tc := range cases {
		code, _, eb := postBatchVerdict(t, client, srv.URL, name, tc.req)
		if code != http.StatusUnprocessableEntity || eb.Error.Code != codeBatchNonconforming {
			t.Fatalf("%s: got code=%d %q, want 422 %s", tc.label, code, eb.Error.Code, codeBatchNonconforming)
		}
		v := eb.Error.Conformance
		if v == nil {
			t.Fatalf("%s: rejection body carries no verdict", tc.label)
		}
		if v.Status != string(triclust.Quarantined) {
			t.Fatalf("%s: verdict status %q, want quarantined", tc.label, v.Status)
		}
		if !slices.Contains(v.Violated, tc.invariant) {
			t.Fatalf("%s: violated %v does not name %s", tc.label, v.Violated, tc.invariant)
		}
		if len(v.Scores) == 0 {
			t.Fatalf("%s: verdict carries no per-invariant scores", tc.label)
		}
	}
	// The timestamp-jump rejection must name time_step as the worst
	// offender outright (every other invariant is at its steady value).
	code, _, eb := postBatchVerdict(t, client, srv.URL, name, batchRequest{Time: 1000, Tweets: steadyBatch(11).Tweets})
	if code != http.StatusUnprocessableEntity || eb.Error.Conformance == nil {
		t.Fatalf("repeat jump: code=%d", code)
	}
	if eb.Error.Conformance.Worst != "time_step" {
		t.Fatalf("jump worst = %q, want time_step", eb.Error.Conformance.Worst)
	}

	// Rejected batches left no durable trace: ts 11 is still free, and a
	// conforming batch at it is accepted.
	code, ok, _ := postBatchVerdict(t, client, srv.URL, name, steadyBatch(11))
	if code != http.StatusOK {
		t.Fatalf("retry after rejection: code=%d, want 200", code)
	}
	if ok.Conformance == nil || ok.Conformance.Status != string(triclust.Conforming) {
		t.Fatalf("retry verdict %+v, want conforming annotation", ok.Conformance)
	}

	// Healthz census: enforce mode, four rejections, and the topic's
	// last violation is the repeat timestamp jump.
	var hr healthResponse
	if code, err := doJSON(client, http.MethodGet, srv.URL+"/v1/healthz", nil, &hr); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: code=%d err=%v", code, err)
	}
	ch := hr.Conformance
	if ch == nil {
		t.Fatal("healthz has no conformance section")
	}
	if ch.Mode != "enforce" || ch.RejectedBatches != 4 {
		t.Fatalf("census mode=%q rejected=%d, want enforce/4", ch.Mode, ch.RejectedBatches)
	}
	if len(ch.Topics) != 1 {
		t.Fatalf("census topics = %d, want 1", len(ch.Topics))
	}
	row := ch.Topics[0]
	if row.Name != name || !row.Ready || row.Observed != 11 || row.Quarantined != 0 {
		t.Fatalf("census row %+v: want ready, observed 11, zero applied quarantines", row)
	}
	if row.LastViolation == nil || row.LastViolation.Worst != "time_step" || row.LastViolation.Time != 1000 {
		t.Fatalf("last violation %+v, want time_step at 1000", row.LastViolation)
	}
}

// TestConformFlagAnnotates: flag mode accepts everything but annotates
// responses with the verdict, counts the applied quarantine in the
// census, and keeps scoring the stream afterwards.
func TestConformFlagAnnotates(t *testing.T) {
	_, srv := conformServer(t, triclust.ConformFlag)
	client := srv.Client()
	const name = "advisory"
	warmSteady(t, client, srv.URL, name, 10)

	code, ok, _ := postBatchVerdict(t, client, srv.URL, name, oovSpikeBatch(11))
	if code != http.StatusOK {
		t.Fatalf("flag-mode anomaly: code=%d, want 200", code)
	}
	if ok.Conformance == nil || ok.Conformance.Status != string(triclust.Quarantined) {
		t.Fatalf("flag-mode verdict %+v, want quarantined annotation", ok.Conformance)
	}
	if ok.Conformance.Worst != "oov_rate" {
		t.Fatalf("flag-mode worst %q, want oov_rate", ok.Conformance.Worst)
	}

	// The stream continues: the next steady batch is conforming (the
	// applied anomaly widened the profile, it did not wedge it).
	code, ok, _ = postBatchVerdict(t, client, srv.URL, name, steadyBatch(12))
	if code != http.StatusOK || ok.Conformance == nil || ok.Conformance.Status != string(triclust.Conforming) {
		t.Fatalf("post-anomaly steady batch: code=%d verdict=%+v", code, ok.Conformance)
	}

	var hr healthResponse
	if code, err := doJSON(client, http.MethodGet, srv.URL+"/v1/healthz", nil, &hr); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: code=%d err=%v", code, err)
	}
	ch := hr.Conformance
	if ch == nil || ch.Mode != "flag" || ch.RejectedBatches != 0 {
		t.Fatalf("census %+v, want flag mode with zero rejections", ch)
	}
	row := ch.Topics[0]
	if row.Quarantined != 1 || row.Observed != 12 {
		t.Fatalf("census row %+v: want 1 applied quarantine over 12 observed", row)
	}
	if row.LastViolation == nil || row.LastViolation.Worst != "oov_rate" || row.LastViolation.Time != 11 {
		t.Fatalf("last violation %+v, want oov_rate at 11", row.LastViolation)
	}
}

// TestConformOffScoresSilently: off mode accepts and does not annotate,
// but the profile still accumulates — healthz shows the census and a
// later mode flip would score against the full history.
func TestConformOffScoresSilently(t *testing.T) {
	_, srv := conformServer(t, triclust.ConformOff)
	client := srv.Client()
	const name = "silent"
	warmSteady(t, client, srv.URL, name, 10)

	code, ok, _ := postBatchVerdict(t, client, srv.URL, name, flagBandBatch(11))
	if code != http.StatusOK {
		t.Fatalf("off-mode batch: code=%d", code)
	}
	if ok.Conformance != nil {
		t.Fatalf("off-mode response annotated: %+v", ok.Conformance)
	}

	var hr healthResponse
	if code, err := doJSON(client, http.MethodGet, srv.URL+"/v1/healthz", nil, &hr); err != nil || code != http.StatusOK {
		t.Fatalf("healthz: code=%d err=%v", code, err)
	}
	if hr.Conformance == nil || hr.Conformance.Mode != "off" {
		t.Fatalf("census %+v, want off mode section present", hr.Conformance)
	}
	row := hr.Conformance.Topics[0]
	if row.Observed != 11 || row.Scored == 0 {
		t.Fatalf("census row %+v: profile must accumulate and score in off mode", row)
	}
}

// TestConformFlaggedBatchKeepsETagParity: a flagged-but-accepted batch
// must advance the read plane's ETag validator exactly like a clean one
// — flagging annotates, it never touches the solver stream. Two daemons
// (off and flag) fed the identical stream, where the last batch lands in
// the flag band on the flag server, end with byte-identical snapshots
// and equal user-estimate ETags.
func TestConformFlaggedBatchKeepsETagParity(t *testing.T) {
	const name = "parity"
	feed := func(mode triclust.ConformanceMode) (etag string, snap []byte, last batchResponse) {
		_, srv := conformServer(t, mode)
		client := srv.Client()
		warmSteady(t, client, srv.URL, name, 10)
		code, ok, _ := postBatchVerdict(t, client, srv.URL, name, flagBandBatch(11))
		if code != http.StatusOK {
			t.Fatalf("mode %v flag-band batch: code=%d", mode, code)
		}
		resp, err := client.Get(srv.URL + "/v1/topics/" + name + "/users/0")
		if err != nil {
			t.Fatalf("user estimate: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("user estimate: code=%d", resp.StatusCode)
		}
		sresp, err := client.Get(srv.URL + "/v1/topics/" + name + "/snapshot")
		if err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		snap, err = io.ReadAll(sresp.Body)
		sresp.Body.Close()
		if err != nil || sresp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot: code=%d err=%v", sresp.StatusCode, err)
		}
		return resp.Header.Get("ETag"), snap, ok
	}

	offTag, offSnap, _ := feed(triclust.ConformOff)
	flagTag, flagSnap, flagged := feed(triclust.ConformFlag)

	if flagged.Conformance == nil || flagged.Conformance.Status != string(triclust.Flagged) {
		t.Fatalf("final batch verdict %+v, want flagged", flagged.Conformance)
	}
	if offTag == "" || offTag != flagTag {
		t.Fatalf("ETag diverged: off %q vs flag %q", offTag, flagTag)
	}
	if !bytes.Equal(offSnap, flagSnap) {
		t.Fatalf("snapshots diverged: off %d bytes vs flag %d bytes", len(offSnap), len(flagSnap))
	}
}
