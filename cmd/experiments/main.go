// Command experiments regenerates the paper's tables and figures on the
// synthetic corpora.
//
//	experiments -run all -scale 4
//	experiments -run t4,t5 -scale 2
//
// Experiment ids: t2 t3 f4 f6f7 f8 t4 t5 f9 f10 f11 f12 ablation multiseed
// (or "all").
// -scale divides the preset corpus sizes (1 = paper scale; larger is
// faster). Results print to stdout in the paper's row/series layout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"triclust/internal/core"
	"triclust/internal/experiments"
	"triclust/internal/par"
)

func main() {
	run := flag.String("run", "all", "comma-separated experiment ids or 'all'")
	scale := flag.Int("scale", 4, "divide preset corpus sizes by this factor")
	iters := flag.Int("iters", 40, "solver iteration budget per fit")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0), "parallelism width of the compute kernels")
	flag.Parse()
	par.SetProcs(*procs)

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	enabled := func(id string) bool { return all || want[id] }

	s30, err := experiments.NewSetup(experiments.Prop30, *scale)
	check(err)
	s37, err := experiments.NewSetup(experiments.Prop37, *scale)
	check(err)
	w := os.Stdout

	if enabled("t2") {
		experiments.RenderTable2(w, experiments.Table2TopWords(s37, 8))
		fmt.Fprintln(w)
	}
	if enabled("t3") {
		experiments.RenderTable3(w, []experiments.Table3Row{
			experiments.Table3Stats(s30), experiments.Table3Stats(s37),
		})
		fmt.Fprintln(w)
	}
	if enabled("f4") {
		experiments.RenderFigure4(w, experiments.Figure4FeatureEvolution(s30))
		fmt.Fprintln(w)
	}
	if enabled("f6f7") || enabled("f6") || enabled("f7") {
		alphas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
		betas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
		sweep, err := experiments.Figure6and7ParamSweep(s30, alphas, betas, *iters)
		check(err)
		experiments.RenderSweep(w, sweep, alphas, betas)
		bestU := sweep.Best(func(c experiments.SweepCell) float64 { return c.User.Accuracy })
		bestT := sweep.Best(func(c experiments.SweepCell) float64 { return c.Tweet.Accuracy })
		fmt.Fprintf(w, "best user-level cell: α=%.1f β=%.1f acc=%.2f%%\n", bestU.Alpha, bestU.Beta, bestU.User.Accuracy*100)
		fmt.Fprintf(w, "best tweet-level cell: α=%.1f β=%.1f acc=%.2f%%\n\n", bestT.Alpha, bestT.Beta, bestT.Tweet.Accuracy*100)
	}
	if enabled("f8") {
		conv, err := experiments.Figure8Convergence(s30, 100)
		check(err)
		experiments.RenderFigure8(w, conv)
		fmt.Fprintln(w)
	}
	if enabled("t4") {
		r30, err := experiments.Table4TweetLevel(s30, false)
		check(err)
		r37, err := experiments.Table4TweetLevel(s37, false)
		check(err)
		experiments.RenderComparison(w, "Table 4: tweet-level sentiment analysis comparison",
			[]*experiments.ComparisonResult{r30, r37})
		fmt.Fprintln(w)
	}
	if enabled("t5") {
		r30, err := experiments.Table5UserLevel(s30, false)
		check(err)
		r37, err := experiments.Table5UserLevel(s37, false)
		check(err)
		experiments.RenderComparison(w, "Table 5: user-level sentiment analysis comparison",
			[]*experiments.ComparisonResult{r30, r37})
		fmt.Fprintln(w)
	}
	if enabled("f9") {
		grid := []float64{0, 0.3, 0.6, 0.9}
		cells, err := experiments.Figure9OnlineAlphaTau(s30, grid, grid, *iters)
		// τ weighs recency inside the window; the sweep runs at the
		// harness window (w=4) where multiple snapshots contribute.
		check(err)
		experiments.RenderOnlineSweep(w, "Figure 9: online accuracy when varying α and τ (Prop 30)", cells, false)
		fmt.Fprintln(w)
	}
	if enabled("f10") {
		cells, err := experiments.Figure10Gamma(s30, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}, *iters)
		check(err)
		experiments.RenderOnlineSweep(w, "Figure 10: accuracy when varying γ (Prop 30)", cells, true)
		fmt.Fprintln(w)
	}
	if enabled("f11") {
		cfg := core.DefaultOnlineConfig()
		cfg.Window = 4 // thin synthetic days; see experiments.Table4TweetLevel
		cfg.MaxIter = *iters
		tl, err := experiments.Figure11and12Online(s30, cfg, 1)
		check(err)
		experiments.RenderTimeline(w, tl)
		fmt.Fprintln(w)
	}
	if enabled("f12") {
		cfg := core.DefaultOnlineConfig()
		cfg.Window = 4
		cfg.MaxIter = *iters
		tl, err := experiments.Figure11and12Online(s37, cfg, 1)
		check(err)
		experiments.RenderTimeline(w, tl)
		fmt.Fprintln(w)
	}
	if enabled("ablation") {
		rows, err := experiments.Ablation(s30, *iters)
		check(err)
		experiments.RenderAblation(w, experiments.Prop30, rows)
		fmt.Fprintln(w)
	}
	if enabled("multiseed") {
		r, err := experiments.MultiSeed(experiments.Prop30, *scale, []int64{1, 2, 3, 4, 5}, *iters < 60)
		check(err)
		experiments.RenderMultiSeed(w, r)
		fmt.Fprintln(w)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
