// Command datagen emits a synthetic topic corpus as JSON on stdout (or to
// -out). Presets mirror the paper's two evaluation topics.
//
// Usage:
//
//	datagen -preset prop37 -scale 4 -seed 7 -out corpus.json
package main

import (
	"flag"
	"fmt"
	"os"

	"triclust/internal/synth"
	"triclust/internal/tgraph"
)

func main() {
	preset := flag.String("preset", "default", "corpus preset: default, prop30, prop37")
	scale := flag.Int("scale", 1, "shrink preset sizes by this factor (1 = full)")
	seed := flag.Int64("seed", 0, "override the preset's RNG seed (0 keeps it)")
	out := flag.String("out", "", "output path (default stdout)")
	stats := flag.Bool("stats", false, "print corpus statistics to stderr")
	flag.Parse()

	var cfg synth.Config
	switch *preset {
	case "default":
		cfg = synth.DefaultConfig()
	case "prop30":
		cfg = synth.Prop30Config()
	case "prop37":
		cfg = synth.Prop37Config()
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown preset %q\n", *preset)
		os.Exit(2)
	}
	cfg = synth.Scaled(cfg, *scale)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	d, err := synth.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tgraph.WriteJSON(w, d.Corpus); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if *stats {
		lo, hi, _ := d.Corpus.TimeRange()
		fmt.Fprintf(os.Stderr, "users=%d tweets=%d days=[%d,%d]\n",
			d.Corpus.NumUsers(), d.Corpus.NumTweets(), lo, hi)
	}
}
