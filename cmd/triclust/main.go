// Command triclust runs tripartite sentiment co-clustering on a corpus.
//
// Offline over a whole corpus:
//
//	triclust -in corpus.json
//
// Online over daily snapshots:
//
//	triclust -in corpus.json -online
//
// -in accepts .json (cmd/datagen output), .csv or .tsv
// (user,time,text[,retweet_of[,label]] with a header row).
// Without -in it generates a small synthetic demo corpus. When the corpus
// carries ground-truth labels, accuracy and NMI are reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"triclust"
	"triclust/internal/core"
	"triclust/internal/eval"
	"triclust/internal/par"
	"triclust/internal/synth"
	"triclust/internal/tgraph"
)

func main() {
	in := flag.String("in", "", "corpus JSON (default: generate a demo corpus)")
	online := flag.Bool("online", false, "run the online algorithm over daily snapshots")
	k := flag.Int("k", 3, "number of sentiment classes (2 or 3)")
	alpha := flag.Float64("alpha", -1, "lexicon/temporal-feature weight α (default per mode)")
	beta := flag.Float64("beta", 0.8, "user-graph weight β")
	gamma := flag.Float64("gamma", 0.2, "user temporal weight γ (online)")
	tau := flag.Float64("tau", 0.9, "history decay τ (online)")
	maxIter := flag.Int("iters", 100, "maximum update sweeps")
	seed := flag.Int64("seed", 1, "solver RNG seed")
	top := flag.Int("top", 5, "show this many example tweets per class")
	procs := flag.Int("procs", runtime.GOMAXPROCS(0), "parallelism width of the compute kernels")
	flag.Parse()
	par.SetProcs(*procs)

	corpus, err := loadCorpus(*in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("corpus: %d tweets, %d users\n", corpus.NumTweets(), corpus.NumUsers())

	if *online {
		runOnline(corpus, *k, *alpha, *beta, *gamma, *tau, *maxIter, *seed)
		return
	}
	runOffline(corpus, *k, *alpha, *beta, *maxIter, *seed, *top)
}

func loadCorpus(path string) (*triclust.Corpus, error) {
	if path == "" {
		cfg := synth.DefaultConfig()
		d, err := synth.Generate(cfg)
		if err != nil {
			return nil, err
		}
		fmt.Println("no -in given: generated a synthetic demo corpus (see cmd/datagen)")
		return d.Corpus, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".csv"):
		return tgraph.ReadCSV(f, tgraph.CSVOptions{HasHeader: true})
	case strings.HasSuffix(path, ".tsv"):
		return tgraph.ReadCSV(f, tgraph.CSVOptions{Comma: '\t', HasHeader: true})
	default:
		return tgraph.ReadJSON(f)
	}
}

func runOffline(corpus *triclust.Corpus, k int, alpha, beta float64, maxIter int, seed int64, top int) {
	opts := triclust.DefaultOptions()
	opts.Config.K = k
	if alpha >= 0 {
		opts.Config.Alpha = alpha
	}
	opts.Config.Beta = beta
	opts.Config.MaxIter = maxIter
	opts.Config.Seed = seed

	start := time.Now()
	res, err := triclust.Fit(corpus, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("offline fit: %d iterations (converged=%v) in %v\n",
		res.Iterations, res.Converged, time.Since(start).Round(time.Millisecond))

	reportAccuracy(res, corpus)
	showExamples(res, corpus, top)
}

func runOnline(corpus *triclust.Corpus, k int, alpha, beta, gamma, tau float64, maxIter int, seed int64) {
	cfg := core.DefaultOnlineConfig()
	cfg.K = k
	if alpha >= 0 {
		cfg.Alpha = alpha
	}
	cfg.Beta = beta
	cfg.Gamma = gamma
	cfg.Tau = tau
	cfg.MaxIter = maxIter
	cfg.Seed = seed
	sopts := triclust.DefaultStreamOptions()
	sopts.Config = cfg

	st, err := triclust.NewStream(corpus.Users, sopts)
	if err != nil {
		fatal(err)
	}
	lo, hi, ok := corpus.TimeRange()
	if !ok {
		fatal(fmt.Errorf("empty corpus"))
	}
	total := time.Duration(0)
	for day := lo; day <= hi; day++ {
		var batch []triclust.Tweet
		for _, tw := range corpus.Tweets {
			if tw.Time == day {
				tw.RetweetOf = -1
				batch = append(batch, tw)
			}
		}
		if len(batch) == 0 {
			continue
		}
		start := time.Now()
		out, err := st.Process(day, batch)
		if err != nil {
			fatal(err)
		}
		el := time.Since(start)
		total += el
		pred := make([]int, len(batch))
		truth := make([]int, len(batch))
		for i := range batch {
			pred[i] = out.TweetSentiments[i].Class
			truth[i] = batch[i].Label
		}
		acc := eval.Accuracy(pred, truth)
		fmt.Printf("day %3d: n(t)=%4d users=%4d iters=%3d time=%8s tweet-acc=%5.1f%%\n",
			day, len(batch), len(out.ActiveUsers), out.Iterations,
			el.Round(time.Millisecond), acc*100)
	}
	fmt.Printf("total online time: %v\n", total.Round(time.Millisecond))
}

func reportAccuracy(res *triclust.Result, corpus *triclust.Corpus) {
	tweetPred := make([]int, len(res.TweetSentiments))
	for i, s := range res.TweetSentiments {
		tweetPred[i] = s.Class
	}
	tweetTruth := corpus.TweetLabels()
	if m := eval.Evaluate(tweetPred, tweetTruth); m.Accuracy > 0 {
		fmt.Printf("tweet-level: accuracy %.2f%%, NMI %.2f%%\n", m.Accuracy*100, m.NMI*100)
	}
	userPred := make([]int, len(res.UserSentiments))
	for i, s := range res.UserSentiments {
		userPred[i] = s.Class
	}
	if m := eval.Evaluate(userPred, corpus.UserLabels()); m.Accuracy > 0 {
		fmt.Printf("user-level:  accuracy %.2f%%, NMI %.2f%%\n", m.Accuracy*100, m.NMI*100)
	}
}

func showExamples(res *triclust.Result, corpus *triclust.Corpus, top int) {
	if top <= 0 {
		return
	}
	for cls := 0; cls < 3; cls++ {
		fmt.Printf("examples (%s):\n", triclust.ClassName(cls))
		shown := 0
		for i, s := range res.TweetSentiments {
			if s.Class != cls || shown >= top {
				continue
			}
			toks := corpus.Tweets[i].Tokens
			if len(toks) > 8 {
				toks = toks[:8]
			}
			fmt.Printf("  [%.2f] %v\n", s.Confidence, toks)
			shown++
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "triclust: %v\n", err)
	os.Exit(1)
}
