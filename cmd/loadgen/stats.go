package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// recorder accumulates one op-kind's outcomes for one run. Latencies are
// recorded in microseconds from the op's *scheduled* arrival time (open
// loop) or its issue time (closed loop); measuring open-loop latency
// from the scheduled arrival includes the queueing delay a saturated
// server imposes, which is exactly the coordinated-omission error a
// closed-loop measurement hides.
type recorder struct {
	mu   sync.Mutex
	lat  []float64
	errs map[string]int
}

func newRecorder() *recorder {
	return &recorder{errs: make(map[string]int)}
}

// add records one completed op: its latency and, for a non-2xx/304
// response, the stable error code (or synthesized status key) it failed
// with. Failed ops count toward latency too — a slow failure is not a
// fast success.
func (r *recorder) add(us float64, errKey string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lat = append(r.lat, us)
	if errKey != "" {
		r.errs[errKey]++
	}
}

// latencySummary is the histogram digest of one op-kind.
type latencySummary struct {
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// opReport is the artifact entry for one op-kind of one run.
type opReport struct {
	Count          int            `json:"count"`
	Errors         int            `json:"errors"`
	ErrorCodes     map[string]int `json:"error_codes,omitempty"`
	ThroughputPerS float64        `json:"throughput_per_s"`
	LatencyMicros  latencySummary `json:"latency_us"`
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// report digests the recorder into its artifact entry. durationS is the
// run's measured wall-clock, from which the achieved throughput derives.
func (r *recorder) report(durationS float64) opReport {
	r.mu.Lock()
	defer r.mu.Unlock()
	sorted := append([]float64(nil), r.lat...)
	sort.Float64s(sorted)
	nerr := 0
	for _, n := range r.errs {
		nerr += n
	}
	rep := opReport{
		Count:  len(sorted),
		Errors: nerr,
		LatencyMicros: latencySummary{
			P50:  percentile(sorted, 0.50),
			P99:  percentile(sorted, 0.99),
			P999: percentile(sorted, 0.999),
			Max:  percentile(sorted, 1.0),
		},
	}
	if durationS > 0 {
		rep.ThroughputPerS = float64(len(sorted)) / durationS
	}
	if len(r.errs) > 0 {
		rep.ErrorCodes = make(map[string]int, len(r.errs))
		for k, v := range r.errs {
			rep.ErrorCodes[k] = v
		}
	}
	return rep
}

// runReport is one (format, mode) leg of the comparison.
type runReport struct {
	Format      string              `json:"format"`       // json | binary
	Mode        string              `json:"mode"`         // closed | open
	OfferedRate float64             `json:"offered_rate"` // ops/s; 0 in closed mode
	DurationS   float64             `json:"duration_s"`
	Ops         map[string]opReport `json:"ops"`
}

func (rr runReport) batch() opReport { return rr.Ops["batch"] }

func (rr runReport) errorCount() int {
	n := 0
	for _, op := range rr.Ops {
		n += op.Errors
	}
	return n
}

// comparison is the headline JSON-vs-binary digest ROADMAP reads.
type comparison struct {
	// IngestThroughputRatio is binary over JSON closed-loop batch
	// throughput (higher is better for binary).
	IngestThroughputRatio float64 `json:"ingest_throughput_ratio,omitempty"`
	// P99Ratio is JSON over binary open-loop batch p99 at the same
	// offered rate (higher means binary's tail is that many times lower).
	P99Ratio float64 `json:"p99_ratio,omitempty"`
}

type artifact struct {
	Schema     string      `json:"schema"`
	Config     configJSON  `json:"config"`
	Runs       []runReport `json:"runs"`
	Comparison *comparison `json:"comparison,omitempty"`
}

const artifactSchema = "triclust-loadgen/v1"

type configJSON struct {
	Targets        []string `json:"targets"`
	Topics         int      `json:"topics"`
	Users          int      `json:"users"`
	TweetsPerBatch int      `json:"tweets_per_batch"`
	Batches        int      `json:"batches"`
	ReadRatio      float64  `json:"read_ratio"`
	SnapshotRatio  float64  `json:"snapshot_ratio"`
	Seed           int64    `json:"seed"`
}

// validateArtifact checks a written artifact against the schema contract
// the loadgen-smoke CI job asserts: schema id, at least one run, and for
// every run a batch op with a positive count and a coherent histogram.
func validateArtifact(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return fmt.Errorf("artifact is not valid JSON: %w", err)
	}
	if a.Schema != artifactSchema {
		return fmt.Errorf("schema %q, want %q", a.Schema, artifactSchema)
	}
	if len(a.Runs) == 0 {
		return fmt.Errorf("artifact has no runs")
	}
	for i, run := range a.Runs {
		if run.Format != "json" && run.Format != "binary" {
			return fmt.Errorf("run %d: format %q", i, run.Format)
		}
		if run.Mode != "closed" && run.Mode != "open" {
			return fmt.Errorf("run %d: mode %q", i, run.Mode)
		}
		b, ok := run.Ops["batch"]
		if !ok || b.Count == 0 {
			return fmt.Errorf("run %d (%s/%s): no batch ops", i, run.Format, run.Mode)
		}
		ls := b.LatencyMicros
		if !(ls.P50 > 0 && ls.P50 <= ls.P99 && ls.P99 <= ls.P999 && ls.P999 <= ls.Max) {
			return fmt.Errorf("run %d (%s/%s): incoherent batch histogram %+v", i, run.Format, run.Mode, ls)
		}
		if b.ThroughputPerS <= 0 {
			return fmt.Errorf("run %d (%s/%s): no batch throughput", i, run.Format, run.Mode)
		}
	}
	return nil
}
