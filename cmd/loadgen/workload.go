package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"time"

	"triclust/internal/codec"
	"triclust/internal/synth"
	"triclust/internal/tgraph"
)

// ltopic is one topic's pre-built traffic: the same logical batch
// stream encoded once per wire format, so client-side encoding cost is
// excluded from every measured run and the JSON and binary legs offer
// byte-for-byte-comparable work to the server.
type ltopic struct {
	name    string
	users   []string
	vocab   [][]string // warmup docs (unique token universe)
	warmup  []byte     // day-0 JSON batch touching every user
	dayJSON [][]byte   // dayJSON[d] is the day d+1 batch, JSON-encoded
	dayBin  [][]byte   // same batches, binary-framed
}

// buildTopics derives deterministic per-topic workloads from the synth
// generator. Each topic gets its own seeded dataset so shards see
// distinct vocabularies and user graphs, like real multi-topic traffic.
func buildTopics(cfg configJSON, prefix string) ([]*ltopic, error) {
	batchesPer := (cfg.Batches + cfg.Topics - 1) / cfg.Topics
	topics := make([]*ltopic, 0, cfg.Topics)
	remaining := cfg.Batches
	for i := 0; i < cfg.Topics; i++ {
		n := batchesPer
		if n > remaining {
			n = remaining
		}
		if n == 0 {
			break
		}
		remaining -= n
		sc := synth.DefaultConfig()
		sc.Seed = cfg.Seed + int64(i)
		sc.NumUsers = cfg.Users
		ds, err := synth.Generate(sc)
		if err != nil {
			return nil, fmt.Errorf("synth topic %d: %w", i, err)
		}
		tp, err := buildTopic(fmt.Sprintf("%s-t%d", prefix, i), ds, n, cfg.TweetsPerBatch)
		if err != nil {
			return nil, fmt.Errorf("build topic %d: %w", i, err)
		}
		topics = append(topics, tp)
	}
	return topics, nil
}

func buildTopic(name string, ds *synth.Dataset, batches, perBatch int) (*ltopic, error) {
	corpus := ds.Corpus
	tp := &ltopic{name: name}
	tp.users = make([]string, len(corpus.Users))
	for i, u := range corpus.Users {
		tp.users[i] = u.Name
	}

	// Unique token universe, sorted for determinism: one warmup doc per
	// 64 words keeps individual docs modest while covering everything.
	seen := make(map[string]bool)
	for _, tw := range corpus.Tweets {
		for _, tok := range tw.Tokens {
			seen[tok] = true
		}
	}
	words := make([]string, 0, len(seen))
	for w := range seen {
		words = append(words, w)
	}
	sort.Strings(words)
	for off := 0; off < len(words); off += 64 {
		end := min(off+64, len(words))
		tp.vocab = append(tp.vocab, words[off:end])
	}

	// Day-0 warmup batch: one tweet per user so every subsequent read
	// of any user index resolves (no user starts cold at 404-adjacent
	// "never seen" states) — it is part of setup, never measured.
	warm := make([]tgraph.Tweet, len(tp.users))
	for u := range warm {
		warm[u] = tgraph.Tweet{
			Tokens:    []string{words[u%len(words)], words[(u*7)%len(words)]},
			User:      u,
			Time:      0,
			RetweetOf: -1,
			Label:     tgraph.NoLabel,
		}
	}
	var err error
	if tp.warmup, err = jsonBatchBody(0, warm); err != nil {
		return nil, err
	}

	// Measured batches: chunk the corpus into perBatch groups, cycling
	// when the stream outlives the dataset. Labels are stripped (the
	// binary frame rejects labeled tweets by design) and retweet links
	// cleared — cross-batch retweet indices would not survive
	// re-chunking. Tokens are kept so the JSON leg pays the
	// token-array decode the binary frame is designed to undercut.
	pos := 0
	for d := 1; d <= batches; d++ {
		chunk := make([]tgraph.Tweet, perBatch)
		for j := range chunk {
			src := corpus.Tweets[pos%len(corpus.Tweets)]
			pos++
			chunk[j] = tgraph.Tweet{
				Tokens:    src.Tokens,
				User:      src.User,
				Time:      d,
				RetweetOf: -1,
				Label:     tgraph.NoLabel,
			}
		}
		jb, err := jsonBatchBody(d, chunk)
		if err != nil {
			return nil, err
		}
		bb, err := codec.EncodeBatchRequest(d, chunk)
		if err != nil {
			return nil, err
		}
		tp.dayJSON = append(tp.dayJSON, jb)
		tp.dayBin = append(tp.dayBin, bb)
	}
	return tp, nil
}

// jsonBatchBody mirrors the daemon's batchRequest schema.
func jsonBatchBody(day int, tweets []tgraph.Tweet) ([]byte, error) {
	type tweetSpec struct {
		Tokens []string `json:"tokens,omitempty"`
		Text   string   `json:"text,omitempty"`
		User   int      `json:"user"`
		Time   *int     `json:"time,omitempty"`
	}
	type batchRequest struct {
		Time   int         `json:"time"`
		Tweets []tweetSpec `json:"tweets"`
	}
	req := batchRequest{Time: day, Tweets: make([]tweetSpec, len(tweets))}
	for i, tw := range tweets {
		t := tw.Time
		req.Tweets[i] = tweetSpec{Tokens: tw.Tokens, Text: tw.Text, User: tw.User, Time: &t}
	}
	return json.Marshal(req)
}

// client wraps target selection and request issuing.
type client struct {
	http    *http.Client
	targets []string
}

func newClient(targets []string) *client {
	tr := &http.Transport{
		MaxIdleConns:        512,
		MaxIdleConnsPerHost: 256,
		IdleConnTimeout:     30 * time.Second,
	}
	return &client{
		http:    &http.Client{Transport: tr, Timeout: 60 * time.Second},
		targets: targets,
	}
}

// target spreads connections across the cluster round-robin by key; the
// daemons' own routing (307 redirects or proxying) lands each request on
// the owning shard regardless of which one we hit.
func (c *client) target(key int) string {
	return c.targets[key%len(c.targets)]
}

// errorKey classifies a response: "" for success (2xx and 304), the
// body's stable error code when one decodes, else a synthetic status
// key. The body is always drained so connections are reused.
func errorKey(resp *http.Response) string {
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 == 2 || resp.StatusCode == http.StatusNotModified {
		return ""
	}
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error.Code != "" {
		return eb.Error.Code
	}
	return fmt.Sprintf("status_%d", resp.StatusCode)
}

func (c *client) do(method, url, contentType, accept string, body []byte) (string, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return "", err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	return errorKey(resp), nil
}

// setup creates the run's topics on the cluster: create, vocabulary
// warmup + freeze, then the day-0 batch. Any failure aborts the run —
// measuring against a half-created fleet would be noise.
func (c *client) setup(topics []*ltopic, opts topicOptions) error {
	for i, tp := range topics {
		base := c.target(i)
		create := struct {
			Name    string       `json:"name"`
			Users   []string     `json:"users"`
			Options topicOptions `json:"options"`
		}{Name: tp.name, Users: tp.users, Options: opts}
		cb, err := json.Marshal(create)
		if err != nil {
			return err
		}
		if err := c.mustOK("POST", base+"/v1/topics", mtJSON, cb); err != nil {
			return fmt.Errorf("create %s: %w", tp.name, err)
		}
		vb, err := json.Marshal(struct {
			Docs   [][]string `json:"docs"`
			Freeze bool       `json:"freeze"`
		}{Docs: tp.vocab, Freeze: true})
		if err != nil {
			return err
		}
		if err := c.mustOK("POST", base+"/v1/topics/"+tp.name+"/vocab", mtJSON, vb); err != nil {
			return fmt.Errorf("vocab %s: %w", tp.name, err)
		}
		if err := c.mustOK("POST", base+"/v1/topics/"+tp.name+"/batches", mtJSON, tp.warmup); err != nil {
			return fmt.Errorf("warmup %s: %w", tp.name, err)
		}
	}
	return nil
}

func (c *client) mustOK(method, url, contentType string, body []byte) error {
	key, err := c.do(method, url, contentType, "", body)
	if err != nil {
		return err
	}
	if key != "" {
		return fmt.Errorf("server error %s", key)
	}
	return nil
}

// topicOptions mirrors the daemon's create options; loadgen keeps the
// solve cheap and deterministic so measured cost is dominated by the
// request path, not solver iterations.
type topicOptions struct {
	MaxIter int   `json:"max_iter,omitempty"`
	Seed    int64 `json:"seed,omitempty"`
	MinDF   int   `json:"min_df,omitempty"`
}

const (
	mtJSON  = "application/json"
	mtBatch = "application/x-triclust-batch"
)

// op is one scheduled request of a run.
type op struct {
	kind  string // batch | read | snapshot
	topic *ltopic
	day   int // batch: index into dayJSON/dayBin
	user  int // read: user index
	seq   int // target-spreading key
	// prev/done chain batches of one topic: a batch may not be issued
	// before its predecessor completed (timestamps must be strictly
	// increasing), but its latency still counts from its scheduled
	// arrival — under saturation that chain wait IS the latency.
	prev, done chan struct{}
}

// buildOps lays out one run's schedule: every topic's batches in global
// round-robin day order, with reads and snapshots spliced in at evenly
// spaced positions, targets and users drawn from a seeded RNG.
func buildOps(topics []*ltopic, readRatio, snapRatio float64, seed int64) []*op {
	rng := rand.New(rand.NewSource(seed))
	var batches []*op
	maxDays := 0
	for _, tp := range topics {
		if len(tp.dayJSON) > maxDays {
			maxDays = len(tp.dayJSON)
		}
	}
	chains := make(map[*ltopic]chan struct{}, len(topics))
	ready := make(chan struct{})
	close(ready)
	for _, tp := range topics {
		chains[tp] = ready
	}
	for d := 0; d < maxDays; d++ {
		for _, tp := range topics {
			if d >= len(tp.dayJSON) {
				continue
			}
			done := make(chan struct{})
			batches = append(batches, &op{
				kind: "batch", topic: tp, day: d,
				prev: chains[tp], done: done,
			})
			chains[tp] = done
		}
	}

	nb := len(batches)
	batchFrac := 1 - readRatio - snapRatio
	total := nb
	if batchFrac > 0 {
		total = int(float64(nb) / batchFrac)
	}
	nr := int(float64(total) * readRatio)
	ns := total - nb - nr

	extras := make([]*op, 0, nr+ns)
	for i := 0; i < nr; i++ {
		tp := topics[rng.Intn(len(topics))]
		extras = append(extras, &op{kind: "read", topic: tp, user: rng.Intn(len(tp.users))})
	}
	for i := 0; i < ns; i++ {
		extras = append(extras, &op{kind: "snapshot", topic: topics[rng.Intn(len(topics))]})
	}

	// Merge: keep batch order, spread extras evenly through the tail.
	ops := make([]*op, 0, nb+len(extras))
	ei := 0
	for i, b := range batches {
		ops = append(ops, b)
		want := (i + 1) * len(extras) / nb
		for ei < want {
			ops = append(ops, extras[ei])
			ei++
		}
	}
	ops = append(ops, extras[ei:]...)
	for i, o := range ops {
		o.seq = i
	}
	return ops
}

// issue sends one op and returns its error key.
func (c *client) issue(o *op, format string) (string, error) {
	base := c.target(o.seq)
	switch o.kind {
	case "batch":
		url := base + "/v1/topics/" + o.topic.name + "/batches"
		if format == "binary" {
			return c.do("POST", url, mtBatch, mtBatch, o.topic.dayBin[o.day])
		}
		return c.do("POST", url, mtJSON, "", o.topic.dayJSON[o.day])
	case "read":
		return c.do("GET", fmt.Sprintf("%s/v1/topics/%s/users/%d", base, o.topic.name, o.user), "", "", nil)
	default: // snapshot
		return c.do("GET", base+"/v1/topics/"+o.topic.name+"/snapshot", "", "", nil)
	}
}
