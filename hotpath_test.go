// Steady-state ingest-path acceptance tests and benchmark: a warm Topic
// fed structurally identical batches must not heap-allocate in the
// tokenize → canonicalize → graph-build → persist-adjacent bookkeeping —
// only the per-batch results that escape to the caller.
package triclust_test

import (
	"fmt"
	"testing"

	"triclust"
)

// hotTopic builds a warmed-up Topic plus a batch generator that feeds it
// structurally identical batches at increasing timestamps, so steady-state
// per-Process allocation can be measured with testing.AllocsPerRun.
func hotTopic(tb testing.TB, batchTweets int) (*triclust.Topic, func() []triclust.Tweet, *int) {
	tb.Helper()
	const numUsers = 24
	users := make([]triclust.User, numUsers)
	for i := range users {
		users[i] = triclust.User{Name: fmt.Sprintf("u%d", i), Label: triclust.NoLabel}
	}
	cfg := triclust.DefaultStreamOptions().Config
	cfg.MaxIter = 3
	tp, err := triclust.NewTopic(users, triclust.WithSolverConfig(cfg), triclust.WithMinDF(1))
	if err != nil {
		tb.Fatal(err)
	}
	texts := []string{
		"love the #prop37 labeling initiative great win",
		"no on prop37 bad law hurts farmers vote no",
		"the measure text reads like corporate greed honestly",
		"support local growers label gmo food now #yeson37",
		"this proposition is a mess of hidden costs",
		"proud to stand with science against fear mongering",
	}
	ts := 0
	next := func() []triclust.Tweet {
		tweets := make([]triclust.Tweet, batchTweets)
		for i := range tweets {
			tweets[i] = triclust.Tweet{
				Text:      texts[i%len(texts)],
				User:      (i*7 + ts) % numUsers,
				Time:      ts,
				RetweetOf: -1,
				Label:     triclust.NoLabel,
			}
			if i%5 == 4 {
				tweets[i].RetweetOf = i - 1
			}
		}
		return tweets
	}
	// Warm up: freeze the vocabulary and let every pooled buffer reach its
	// steady-state capacity.
	for i := 0; i < 8; i++ {
		if _, err := tp.Process(ts, next()); err != nil {
			tb.Fatal(err)
		}
		ts++
	}
	return tp, next, &ts
}

// TestProcessSteadyStateAllocs pins the allocation-free ingest path:
// tokenize → canonicalize → graph build → solve on a warm Topic must
// allocate only the escaping per-batch results. Before the pooled
// tokenizer, arena-backed snapshot builder and persistent solver scratch
// this measured ~346 allocations per call at this batch shape; the bound
// asserts the required ≥5× reduction with headroom (measured: ~28, plus
// 4 from the conformance gate — the escaping verdict, its score list,
// and the per-view report — which had a +8 budget).
func TestProcessSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; absolute counts only hold without -race")
	}
	tp, next, ts := hotTopic(t, 20)
	batch := next()
	// 200 runs, not 50: a GC landing mid-measurement (likelier when the
	// whole test tree shares one CPU) clears the pools, and the one-time
	// refill must amortize below the bound instead of tripping it.
	allocs := testing.AllocsPerRun(200, func() {
		for i := range batch {
			batch[i].Tokens = nil
		}
		if _, err := tp.Process(*ts, batch); err != nil {
			t.Fatal(err)
		}
		*ts++
	})
	t.Logf("allocs per Process (warm topic, 20 tweets): %.1f", allocs)
	if allocs > 64 {
		t.Fatalf("warm Topic.Process allocates %.1f times per batch, want <= 64 (seed behaviour was ~346)", allocs)
	}
}

// TestReadPathAllocs pins the lock-free read path: loading a view and
// answering a user-estimate query from it is a pointer load plus array
// indexing — zero heap allocations, even while the topic keeps ingesting
// between measurements.
func TestReadPathAllocs(t *testing.T) {
	tp, next, ts := hotTopic(t, 20)
	if _, err := tp.Process(*ts, next()); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		v := tp.ReadView()
		for u := 0; u < v.Users(); u++ {
			if _, ok := v.UserEstimate(u); ok {
				_ = v.Convergence()
			}
		}
		_, _ = v.StreamPos()
		_ = v.FeatureSentiments()
	})
	if allocs > 0 {
		t.Fatalf("read path allocates %.1f times per full view scan, want 0", allocs)
	}
}

func BenchmarkProcessWarm(b *testing.B) {
	tp, next, ts := hotTopic(b, 20)
	batch := next()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j].Tokens = nil
		}
		if _, err := tp.Process(*ts, batch); err != nil {
			b.Fatal(err)
		}
		*ts++
	}
}
