package core

import (
	"testing"

	"triclust/internal/eval"
	"triclust/internal/sparse"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

func TestFoldInTweetsMatchesTraining(t *testing.T) {
	d, g := smallDataset(t, 33)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 40
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fold the training tweets back in: accuracy should be in the same
	// ballpark as the fitted assignments.
	sp, err := FoldInTweets(&res.Factors, g.Xp)
	if err != nil {
		t.Fatal(err)
	}
	foldAcc := eval.Accuracy(sp.RowArgMax(), d.TweetClass)
	fitAcc := eval.Accuracy(res.TweetClusters(), d.TweetClass)
	if foldAcc < fitAcc-0.15 {
		t.Fatalf("fold-in accuracy %.3f far below fit accuracy %.3f", foldAcc, fitAcc)
	}
}

func TestFoldInUnseenTweets(t *testing.T) {
	// Fit on the first half of the corpus, fold in the second half.
	d, _ := smallDataset(t, 35)
	lo, hi, _ := d.Corpus.TimeRange()
	mid := (lo + hi) / 2
	trainC, trainIdx := d.Corpus.Slice(lo, mid)
	testC, testIdx := d.Corpus.Slice(mid, hi+1)
	if len(trainIdx) < 50 || len(testIdx) < 50 {
		t.Skip("corpus too small to split")
	}
	g := tgraph.Build(trainC, tgraph.BuildOptions{Weighting: text.TFIDF, MinDF: 2})
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 40
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xpTest := text.DocFeatureMatrix(testC.TokenDocs(), g.Vocab, text.TFIDF)
	sp, err := FoldInTweets(&res.Factors, xpTest)
	if err != nil {
		t.Fatal(err)
	}
	truth := make([]int, len(testIdx))
	for i, gi := range testIdx {
		truth[i] = d.TweetClass[gi]
	}
	if acc := eval.Accuracy(sp.RowArgMax(), truth); acc < 0.6 {
		t.Fatalf("unseen fold-in accuracy = %.3f", acc)
	}
}

func TestFoldInUsers(t *testing.T) {
	d, g := smallDataset(t, 37)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 40
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	su, err := FoldInUsers(&res.Factors, g.Xu)
	if err != nil {
		t.Fatal(err)
	}
	foldAcc := eval.Accuracy(su.RowArgMax(), d.Corpus.UserLabels())
	fitAcc := eval.Accuracy(res.UserClusters(), d.Corpus.UserLabels())
	if foldAcc < fitAcc-0.2 {
		t.Fatalf("user fold-in accuracy %.3f far below fit %.3f", foldAcc, fitAcc)
	}
}

func TestFoldInDimensionMismatch(t *testing.T) {
	d, g := smallDataset(t, 39)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 3
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FoldInTweets(&res.Factors, sparse.Zeros(2, 1)); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := FoldInUsers(&res.Factors, sparse.Zeros(2, 1)); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestFoldInRowsAreDistributions(t *testing.T) {
	d, g := smallDataset(t, 41)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 10
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := FoldInTweets(&res.Factors, g.Xp)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sp.Rows(); i++ {
		var sum float64
		for _, v := range sp.Row(i) {
			if v < 0 {
				t.Fatal("negative membership")
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}
