package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// exactProblem builds X matrices that are *exactly* factorizable by known
// factors, so update rules can be checked against their fixed points.
func exactProblem(rng *rand.Rand, n, m, l, k int) (*Problem, Factors) {
	sp := mat.RandomNonNegative(rng, n, k, 0.1, 1)
	su := mat.RandomNonNegative(rng, m, k, 0.1, 1)
	sf := mat.RandomNonNegative(rng, l, k, 0.1, 1)
	hp := mat.RandomNonNegative(rng, k, k, 0.1, 1)
	hu := mat.RandomNonNegative(rng, k, k, 0.1, 1)

	xp := mat.NewDense(n, l)
	xp.MulABT(mat.Product(sp, hp), sf)
	xu := mat.NewDense(m, l)
	xu.MulABT(mat.Product(su, hu), sf)
	xr := mat.NewDense(m, n)
	xr.MulABT(su, sp)

	toCSR := func(d *mat.Dense) *sparse.CSR {
		b := sparse.NewCOO(d.Rows(), d.Cols())
		for i := 0; i < d.Rows(); i++ {
			for j, v := range d.Row(i) {
				b.Add(i, j, v)
			}
		}
		return b.ToCSR()
	}
	p := &Problem{Xp: toCSR(xp), Xu: toCSR(xu), Xr: toCSR(xr)}
	return p, Factors{Sp: sp, Su: su, Sf: sf, Hp: hp, Hu: hu}
}

func TestHpUpdateFixedPointOnExactFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	before := f.Hp.Clone()
	updateHp(p, &f, mat.NewWorkspace())
	// At an exact factorization, Spᵀ Xp Sf = Spᵀ Sp Hp Sfᵀ Sf, so the
	// multiplicative ratio is 1 and Hp must not move.
	if !mat.Equal(f.Hp, before, 1e-8) {
		t.Fatalf("Hp moved at fixed point:\n%v\n%v", f.Hp, before)
	}
}

func TestHuUpdateFixedPointOnExactFactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	before := f.Hu.Clone()
	updateHu(p, &f, mat.NewWorkspace())
	if !mat.Equal(f.Hu, before, 1e-8) {
		t.Fatal("Hu moved at fixed point")
	}
}

func TestHpUpdateReducesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	// Perturb Hp away from the solution; updates must reduce the
	// tweet–feature residual.
	mat.PerturbPositive(rng, f.Hp, 2)
	before := p.Xp.ResidualFrobeniusSq(f.Sp, f.Hp, f.Sf)
	for i := 0; i < 5; i++ {
		updateHp(p, &f, mat.NewWorkspace())
	}
	after := p.Xp.ResidualFrobeniusSq(f.Sp, f.Hp, f.Sf)
	if after >= before {
		t.Fatalf("Hp updates did not reduce residual: %.4f → %.4f", before, after)
	}
}

func TestSfUpdateReducesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	mat.PerturbPositive(rng, f.Sf, 1)
	cfg := Config{K: 3}.withDefaults()
	loss := func() float64 {
		return p.Xp.ResidualFrobeniusSq(f.Sp, f.Hp, f.Sf) +
			p.Xu.ResidualFrobeniusSq(f.Su, f.Hu, f.Sf)
	}
	before := loss()
	for i := 0; i < 5; i++ {
		updateSf(p, &f, cfg, nil, mat.NewWorkspace())
	}
	after := loss()
	if after >= before {
		t.Fatalf("Sf updates did not reduce residual: %.4f → %.4f", before, after)
	}
}

func TestSpUpdateReducesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	mat.PerturbPositive(rng, f.Sp, 1)
	cfg := Config{K: 3}.withDefaults()
	loss := func() float64 {
		return p.Xp.ResidualFrobeniusSq(f.Sp, f.Hp, f.Sf) +
			p.Xr.ResidualFrobeniusSq(f.Su, nil, f.Sp)
	}
	before := loss()
	for i := 0; i < 5; i++ {
		updateSp(p, &f, cfg, mat.NewWorkspace())
	}
	after := loss()
	if after >= before {
		t.Fatalf("Sp updates did not reduce residual: %.4f → %.4f", before, after)
	}
}

func TestSuUpdateReducesResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	mat.PerturbPositive(rng, f.Su, 1)
	cfg := Config{K: 3}.withDefaults()
	loss := func() float64 {
		return p.Xu.ResidualFrobeniusSq(f.Su, f.Hu, f.Sf) +
			p.Xr.ResidualFrobeniusSq(f.Su, nil, f.Sp)
	}
	before := loss()
	for i := 0; i < 5; i++ {
		updateSu(p, &f, cfg, nil, mat.NewWorkspace())
	}
	after := loss()
	if after >= before {
		t.Fatalf("Su updates did not reduce residual: %.4f → %.4f", before, after)
	}
}

func TestGammaPullsSuTowardHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	target := mat.RandomNonNegative(rng, 6, 3, 0.1, 1)
	_, _, gScale := regScales(p)
	tr := &temporalUser{
		gamma:   50 * gScale,
		suw:     target,
		hasHist: []bool{true, true, true, true, true, true},
	}
	cfg := Config{K: 3}.withDefaults()
	before := mat.DiffFrobeniusSq(f.Su, target)
	for i := 0; i < 50; i++ {
		updateSu(p, &f, cfg, tr, mat.NewWorkspace())
	}
	after := mat.DiffFrobeniusSq(f.Su, target)
	if after >= before {
		t.Fatalf("strong γ did not pull Su toward Suw: %.4f → %.4f", before, after)
	}
}

func TestGammaIgnoresRowsWithoutHistory(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, f := exactProblem(rng, 12, 6, 9, 3)
	target := mat.RandomNonNegative(rng, 6, 3, 5, 6) // far away
	_, _, gScale := regScales(p)
	hasHist := []bool{true, false, true, false, true, false}
	tr := &temporalUser{gamma: 10 * gScale, suw: target, hasHist: hasHist}
	cfg := Config{K: 3}.withDefaults()

	noHistBefore := make([]float64, 0)
	for i, ok := range hasHist {
		if !ok {
			noHistBefore = append(noHistBefore, rowDist(f.Su.Row(i), target.Row(i)))
		}
	}
	for i := 0; i < 10; i++ {
		updateSu(p, &f, cfg, tr, mat.NewWorkspace())
	}
	// Rows with history must approach the target; rows without must not
	// be dragged toward the (far) target rows.
	idx := 0
	for i, ok := range hasHist {
		if ok {
			continue
		}
		after := rowDist(f.Su.Row(i), target.Row(i))
		if after < 0.2*noHistBefore[idx] {
			t.Fatalf("history-free row %d was dragged toward Suw", i)
		}
		idx++
	}
}

func rowDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestRegScalesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p, _ := exactProblem(rng, 12, 6, 9, 3)
	a, b, g := regScales(p)
	if a <= 0 || b <= 0 || g <= 0 {
		t.Fatalf("scales must be positive: %v %v %v", a, b, g)
	}
	// Doubling the data magnitude doubles every scale (×4 in Frobenius²).
	p2 := &Problem{
		Xp: p.Xp.ScaleRows(constSlice(p.Xp.Rows(), 2)),
		Xu: p.Xu.ScaleRows(constSlice(p.Xu.Rows(), 2)),
		Xr: p.Xr.ScaleRows(constSlice(p.Xr.Rows(), 2)),
	}
	a2, b2, g2 := regScales(p2)
	for _, pair := range [][2]float64{{a, a2}, {b, b2}, {g, g2}} {
		if math.Abs(pair[1]/pair[0]-4) > 1e-9 {
			t.Fatalf("scale ratio = %v, want 4", pair[1]/pair[0])
		}
	}
	// Empty problem: scales are 1.
	empty := &Problem{Xp: sparse.Zeros(2, 3), Xu: sparse.Zeros(2, 3), Xr: sparse.Zeros(2, 2)}
	if ea, eb, eg := regScales(empty); ea != 1 || eb != 1 || eg != 1 {
		t.Fatal("empty problem scales should be 1")
	}
}

func constSlice(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestUpdatesPreserveNonNegativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, fac := exactProblem(rng, 6, 4, 5, 2)
		mat.PerturbPositive(rng, fac.Sp, 1)
		mat.PerturbPositive(rng, fac.Su, 1)
		mat.PerturbPositive(rng, fac.Sf, 1)
		cfg := Config{K: 2}.withDefaults()
		ws := mat.NewWorkspace()
		for i := 0; i < 3; i++ {
			updateSp(p, &fac, cfg, ws)
			updateHp(p, &fac, ws)
			updateSu(p, &fac, cfg, nil, ws)
			updateHu(p, &fac, ws)
			updateSf(p, &fac, cfg, nil, ws)
		}
		for _, m := range []*mat.Dense{fac.Sp, fac.Su, fac.Sf, fac.Hp, fac.Hu} {
			if !m.IsFinite() {
				return false
			}
			for _, v := range m.Data() {
				if v < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
