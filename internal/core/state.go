package core

import (
	"fmt"
	"math/rand"

	"triclust/internal/mat"
)

// countingSource wraps the standard library's seeded source and counts
// raw draws, which makes the solver's random stream replayable: a restored
// solver re-seeds from Config.Seed and discards the recorded number of
// draws, after which it emits exactly the values the original would have.
// Counting raw source draws (rather than high-level calls) is what makes
// this exact: every Float64/Intn the solver performs bottoms out in one
// Int63/Uint64 draw here, regardless of which convenience method drew it.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.n = 0
}

// skip fast-forwards the source by n draws without counting them twice.
func (s *countingSource) skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		s.src.Uint64()
	}
	s.n = n
}

// SfSnapshotState is the serializable form of one retained feature
// snapshot (Sf(t−i) with its evidence mask).
type SfSnapshotState struct {
	Time int
	Sf   *mat.Dense
	Seen []bool
}

// UserSnapshotState is the serializable form of one retained user row.
type UserSnapshotState struct {
	Time int
	Row  []float64
}

// OnlineState is the complete mutable state of an Online solver: the
// temporal history that feeds Sfw/Suw, the warm-start association cores,
// and the position in the seeded random stream. Together with the
// solver's OnlineConfig it determines every future Step bit-for-bit (at a
// fixed kernel parallelism width), which is what makes durable
// snapshot/restore of a stream possible.
type OnlineState struct {
	// RandDraws is the number of raw draws consumed from the seeded
	// source so far; restore replays the stream to this position.
	RandDraws uint64
	// LastHp / LastHu warm-start the association cores (nil before the
	// first step).
	LastHp, LastHu *mat.Dense
	// SfHist holds the retained feature snapshots, oldest first.
	SfHist []SfSnapshotState
	// UserHist holds the retained Su rows per global user id.
	UserHist map[int][]UserSnapshotState
}

// ExportState deep-copies the solver's mutable state. The solver remains
// usable; the returned state is independent of later Steps.
func (o *Online) ExportState() *OnlineState {
	st := &OnlineState{
		RandDraws: o.src.n,
		UserHist:  make(map[int][]UserSnapshotState, len(o.userHist)),
	}
	if o.lastHp != nil {
		st.LastHp = o.lastHp.Clone()
		st.LastHu = o.lastHu.Clone()
	}
	st.SfHist = make([]SfSnapshotState, len(o.sfHist))
	for i, s := range o.sfHist {
		st.SfHist[i] = SfSnapshotState{
			Time: s.time,
			Sf:   s.sf.Clone(),
			Seen: append([]bool(nil), s.seen...),
		}
	}
	for g, hist := range o.userHist {
		rows := make([]UserSnapshotState, len(hist))
		for i, h := range hist {
			rows[i] = UserSnapshotState{Time: h.time, Row: append([]float64(nil), h.row...)}
		}
		st.UserHist[g] = rows
	}
	return st
}

// NewOnlineFromState rebuilds a solver that continues exactly where the
// exported one stopped: same configuration, same history, and the seeded
// random stream fast-forwarded to the recorded position. The state is
// deep-copied.
func NewOnlineFromState(cfg OnlineConfig, st *OnlineState) (*Online, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil online state")
	}
	if (st.LastHp == nil) != (st.LastHu == nil) {
		return nil, fmt.Errorf("core: inconsistent warm-start cores in state")
	}
	o := NewOnline(cfg)
	o.src.skip(st.RandDraws)
	if st.LastHp != nil {
		o.lastHp = st.LastHp.Clone()
		o.lastHu = st.LastHu.Clone()
	}
	o.sfHist = make([]sfSnapshot, len(st.SfHist))
	for i, s := range st.SfHist {
		if s.Sf == nil {
			return nil, fmt.Errorf("core: feature snapshot %d has no matrix", i)
		}
		if i > 0 && st.SfHist[i-1].Time >= s.Time {
			return nil, fmt.Errorf("core: feature history times not increasing at %d", i)
		}
		o.sfHist[i] = sfSnapshot{
			time: s.Time,
			sf:   s.Sf.Clone(),
			seen: append([]bool(nil), s.Seen...),
		}
	}
	for g, hist := range st.UserHist {
		rows := make([]userSnapshot, len(hist))
		for i, h := range hist {
			rows[i] = userSnapshot{time: h.Time, row: append([]float64(nil), h.Row...)}
		}
		o.userHist[g] = rows
	}
	return o, nil
}
