package core

import (
	"fmt"

	"triclust/internal/mat"
)

// countingSource is a seekable, draw-counting random source (SplitMix64),
// which makes the solver's random stream replayable: a restored solver
// re-seeds from Config.Seed and seeks to the recorded draw position, after
// which it emits exactly the values the original would have. Counting raw
// source draws (rather than high-level calls) is what makes this exact:
// every Float64/Intn the solver performs bottoms out in one Int63/Uint64
// draw here, regardless of which convenience method drew it.
//
// SplitMix64 is used instead of the standard library's source because its
// state after n draws is a closed form (init + n·γ), so seeking is O(1)
// for any position. Replaying draw-by-draw would let a crafted snapshot
// with RandDraws near 2⁶⁴ pin a CPU effectively forever during restore.
type countingSource struct {
	init  uint64 // state right after seeding (position zero)
	state uint64
	n     uint64
}

// splitmixGamma is SplitMix64's Weyl-sequence increment (the odd constant
// ⌊2⁶⁴/φ⌋); state advances by it on every draw, wrapping mod 2⁶⁴.
const splitmixGamma = 0x9E3779B97F4A7C15

// splitmix64 is the SplitMix64 output function (Steele, Lea & Flood 2014):
// a bijective scramble of the Weyl state.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func newCountingSource(seed int64) *countingSource {
	s := &countingSource{}
	s.Seed(seed)
	return s
}

func (s *countingSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

func (s *countingSource) Uint64() uint64 {
	s.state += splitmixGamma
	s.n++
	return splitmix64(s.state)
}

func (s *countingSource) Seed(seed int64) {
	// Scramble the raw seed so nearby seeds (0, 1, 2, …) do not start in
	// states one Weyl step apart, which would make their streams overlap
	// with an offset of one draw.
	s.init = splitmix64(uint64(seed) * splitmixGamma)
	s.state = s.init
	s.n = 0
}

// skip seeks the source to absolute draw position n in constant time.
func (s *countingSource) skip(n uint64) {
	s.state = s.init + n*splitmixGamma
	s.n = n
}

// SfSnapshotState is the serializable form of one retained feature
// snapshot (Sf(t−i) with its evidence mask).
type SfSnapshotState struct {
	Time int
	Sf   *mat.Dense
	Seen []bool
}

// UserSnapshotState is the serializable form of one retained user row.
type UserSnapshotState struct {
	Time int
	Row  []float64
}

// OnlineState is the complete mutable state of an Online solver: the
// temporal history that feeds Sfw/Suw, the warm-start association cores,
// and the position in the seeded random stream. Together with the
// solver's OnlineConfig it determines every future Step bit-for-bit (at a
// fixed kernel parallelism width), which is what makes durable
// snapshot/restore of a stream possible.
type OnlineState struct {
	// RandDraws is the number of raw draws consumed from the seeded
	// source so far; restore replays the stream to this position.
	RandDraws uint64
	// LastHp / LastHu warm-start the association cores (nil before the
	// first step).
	LastHp, LastHu *mat.Dense
	// SfHist holds the retained feature snapshots, oldest first.
	SfHist []SfSnapshotState
	// UserHist holds the retained Su rows per global user id.
	UserHist map[int][]UserSnapshotState
}

// ExportState deep-copies the solver's mutable state. The solver remains
// usable; the returned state is independent of later Steps.
func (o *Online) ExportState() *OnlineState {
	st := &OnlineState{
		RandDraws: o.src.n,
		UserHist:  make(map[int][]UserSnapshotState, len(o.userHist)),
	}
	if o.lastHp != nil {
		st.LastHp = o.lastHp.Clone()
		st.LastHu = o.lastHu.Clone()
	}
	st.SfHist = make([]SfSnapshotState, len(o.sfHist))
	for i, s := range o.sfHist {
		st.SfHist[i] = SfSnapshotState{
			Time: s.time,
			Sf:   s.sf.Clone(),
			Seen: append([]bool(nil), s.seen...),
		}
	}
	for g, hist := range o.userHist {
		rows := make([]UserSnapshotState, len(hist))
		for i, h := range hist {
			rows[i] = UserSnapshotState{Time: h.time, Row: append([]float64(nil), h.row...)}
		}
		st.UserHist[g] = rows
	}
	return st
}

// NewOnlineFromState rebuilds a solver that continues exactly where the
// exported one stopped: same configuration, same history, and the seeded
// random stream fast-forwarded to the recorded position. The state is
// deep-copied.
func NewOnlineFromState(cfg OnlineConfig, st *OnlineState) (*Online, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil online state")
	}
	if (st.LastHp == nil) != (st.LastHu == nil) {
		return nil, fmt.Errorf("core: inconsistent warm-start cores in state")
	}
	o := NewOnline(cfg)
	k := o.cfg.K
	// A snapshot's checksum only proves the bytes arrived intact, not that
	// the state is coherent; every shape the solver will later feed to a
	// kernel is validated here so a crafted snapshot fails the restore, not
	// a panic inside Step.
	if st.LastHp != nil {
		if !st.LastHp.Dims(k, k) || !st.LastHu.Dims(k, k) {
			return nil, fmt.Errorf("core: warm-start cores are %dx%d / %dx%d, want %dx%d",
				st.LastHp.Rows(), st.LastHp.Cols(), st.LastHu.Rows(), st.LastHu.Cols(), k, k)
		}
	}
	o.src.skip(st.RandDraws)
	if st.LastHp != nil {
		o.lastHp = st.LastHp.Clone()
		o.lastHu = st.LastHu.Clone()
	}
	o.sfHist = make([]sfSnapshot, len(st.SfHist))
	for i, s := range st.SfHist {
		if s.Sf == nil {
			return nil, fmt.Errorf("core: feature snapshot %d has no matrix", i)
		}
		if s.Sf.Cols() != k {
			return nil, fmt.Errorf("core: feature snapshot %d has %d columns, want k=%d", i, s.Sf.Cols(), k)
		}
		if i > 0 && st.SfHist[0].Sf.Rows() != s.Sf.Rows() {
			return nil, fmt.Errorf("core: feature snapshot %d has %d rows, snapshot 0 has %d",
				i, s.Sf.Rows(), st.SfHist[0].Sf.Rows())
		}
		if len(s.Seen) != s.Sf.Rows() {
			return nil, fmt.Errorf("core: feature snapshot %d has %d seen flags for %d rows",
				i, len(s.Seen), s.Sf.Rows())
		}
		if i > 0 && st.SfHist[i-1].Time >= s.Time {
			return nil, fmt.Errorf("core: feature history times not increasing at %d", i)
		}
		o.sfHist[i] = sfSnapshot{
			time: s.Time,
			sf:   s.Sf.Clone(),
			seen: append([]bool(nil), s.Seen...),
		}
	}
	for g, hist := range st.UserHist {
		rows := make([]userSnapshot, len(hist))
		for i, h := range hist {
			if len(h.Row) != k {
				return nil, fmt.Errorf("core: user %d history row %d has %d entries, want k=%d",
					g, i, len(h.Row), k)
			}
			rows[i] = userSnapshot{time: h.Time, row: append([]float64(nil), h.Row...)}
		}
		o.userHist[g] = rows
	}
	return o, nil
}
