package core

import (
	"math"
	"math/rand"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// PGOptions tune the projected-gradient solver.
type PGOptions struct {
	// InitialStep is the first trial step size per factor update.
	InitialStep float64
	// Backtracks bounds the step-halving attempts per update.
	Backtracks int
	// StepGrowth re-expands the accepted step between sweeps.
	StepGrowth float64
}

// DefaultPGOptions returns a robust configuration.
func DefaultPGOptions() PGOptions {
	return PGOptions{InitialStep: 1e-3, Backtracks: 20, StepGrowth: 2}
}

// FitOfflinePG minimizes the offline objective (Eq. 1, without the
// orthogonality penalties) by alternating *projected gradient descent*
// with backtracking line search on each factor — the solver family the
// paper's related work attributes to Lin [21] as the main alternative to
// Lee–Seung multiplicative updates. It exists for cross-checking the
// multiplicative solver and for the solver-choice ablation bench; the
// multiplicative algorithm (FitOffline) is the paper's method.
func FitOfflinePG(p *Problem, cfg Config, opts PGOptions) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := p.Validate(cfg.K); err != nil {
		return nil, err
	}
	aScale, bScale, _ := regScales(p)
	cfg.Alpha *= aScale
	cfg.Beta *= bScale
	if opts.InitialStep <= 0 {
		opts.InitialStep = 1e-3
	}
	if opts.Backtracks <= 0 {
		opts.Backtracks = 20
	}
	if opts.StepGrowth <= 1 {
		opts.StepGrowth = 2
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	f := initFactors(p, cfg, rng)
	res := &Result{Factors: f}

	// Per-factor adaptive step sizes.
	steps := map[string]float64{"Sp": opts.InitialStep, "Su": opts.InitialStep,
		"Sf": opts.InitialStep, "Hp": opts.InitialStep, "Hu": opts.InitialStep}

	objective := func() float64 { return Loss(p, &f, cfg, nil).Total }

	descend := func(name string, factor *mat.Dense, grad *mat.Dense) {
		cur := objective()
		step := steps[name]
		backup := factor.Clone()
		for try := 0; try < opts.Backtracks; try++ {
			factor.CopyFrom(backup)
			factor.AddScaled(factor, -step, grad)
			factor.ClampNonNegative()
			if objective() < cur {
				steps[name] = step * opts.StepGrowth
				return
			}
			step /= 2
		}
		// No improving step found: restore and shrink future trials.
		factor.CopyFrom(backup)
		steps[name] = step
	}

	prev := math.Inf(1)
	for it := 0; it < cfg.MaxIter; it++ {
		descend("Sp", f.Sp, gradSp(p, &f))
		descend("Hp", f.Hp, gradHp(p, &f))
		descend("Su", f.Su, gradSu(p, &f, cfg))
		descend("Hu", f.Hu, gradHu(p, &f))
		descend("Sf", f.Sf, gradSf(p, &f, cfg))

		lb := Loss(p, &f, cfg, nil)
		res.History = append(res.History, lb)
		res.Iterations = it + 1
		if relChange(prev, lb.Total) < cfg.Tol {
			res.Converged = true
			break
		}
		prev = lb.Total
	}
	return res, nil
}

// gradSp = −2XpSfHpᵀ + 2SpHpGram(Sf)Hpᵀ − 2XrᵀSu + 2SpGram(Su).
func gradSp(p *Problem, f *Factors) *mat.Dense {
	k := f.Sp.Cols()
	sfHpT := mat.NewDense(f.Sf.Rows(), k)
	sfHpT.MulABT(f.Sf, f.Hp)
	g := p.Xp.MulDense(sfHpT)
	g.Add(g, p.Xr.MulTDense(f.Su))
	g.Scale(-2, g)

	d := mat.NewDense(k, k)
	tmp := mat.Product(f.Hp, mat.Gram(f.Sf))
	d.MulABT(tmp, f.Hp)
	d.Add(d, mat.Gram(f.Su))
	g.AddScaled(g, 2, mat.Product(f.Sp, d))
	return g
}

// gradSu = −2XuSfHuᵀ + 2SuHuGram(Sf)Huᵀ − 2XrSp + 2SuGram(Sp) + 2βLuSu.
func gradSu(p *Problem, f *Factors, cfg Config) *mat.Dense {
	k := f.Su.Cols()
	sfHuT := mat.NewDense(f.Sf.Rows(), k)
	sfHuT.MulABT(f.Sf, f.Hu)
	g := p.Xu.MulDense(sfHuT)
	g.Add(g, p.Xr.MulDense(f.Sp))
	g.Scale(-2, g)

	d := mat.NewDense(k, k)
	tmp := mat.Product(f.Hu, mat.Gram(f.Sf))
	d.MulABT(tmp, f.Hu)
	d.Add(d, mat.Gram(f.Sp))
	g.AddScaled(g, 2, mat.Product(f.Su, d))
	if cfg.Beta > 0 && p.Gu != nil {
		g.AddScaled(g, 2*cfg.Beta, sparse.LaplacianMulDense(p.Gu, f.Su))
	}
	return g
}

// gradSf = −2XpᵀSpHp + 2SfHpᵀGram(Sp)Hp − 2XuᵀSuHu + 2SfHuᵀGram(Su)Hu
// + 2α(Sf − Sf0).
func gradSf(p *Problem, f *Factors, cfg Config) *mat.Dense {
	k := f.Sf.Cols()
	g := p.Xp.MulTDense(mat.Product(f.Sp, f.Hp))
	g.Add(g, p.Xu.MulTDense(mat.Product(f.Su, f.Hu)))
	g.Scale(-2, g)

	b := mat.NewDense(k, k)
	b.MulATB(f.Hp, mat.Product(mat.Gram(f.Sp), f.Hp))
	b2 := mat.NewDense(k, k)
	b2.MulATB(f.Hu, mat.Product(mat.Gram(f.Su), f.Hu))
	b.Add(b, b2)
	g.AddScaled(g, 2, mat.Product(f.Sf, b))
	if cfg.Alpha > 0 && p.Sf0 != nil {
		diff := f.Sf.Clone()
		diff.Sub(diff, p.Sf0)
		g.AddScaled(g, 2*cfg.Alpha, diff)
	}
	return g
}

// gradHp = −2SpᵀXpSf + 2Gram(Sp)HpGram(Sf).
func gradHp(p *Problem, f *Factors) *mat.Dense {
	k := f.Hp.Rows()
	g := mat.NewDense(k, k)
	g.MulATB(f.Sp, p.Xp.MulDense(f.Sf))
	g.Scale(-2, g)
	g.AddScaled(g, 2, mat.Product(mat.Product(mat.Gram(f.Sp), f.Hp), mat.Gram(f.Sf)))
	return g
}

// gradHu = −2SuᵀXuSf + 2Gram(Su)HuGram(Sf).
func gradHu(p *Problem, f *Factors) *mat.Dense {
	k := f.Hu.Rows()
	g := mat.NewDense(k, k)
	g.MulATB(f.Su, p.Xu.MulDense(f.Sf))
	g.Scale(-2, g)
	g.AddScaled(g, 2, mat.Product(mat.Product(mat.Gram(f.Su), f.Hu), mat.Gram(f.Sf)))
	return g
}
