package core

import (
	"math"
	"math/rand"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// PGOptions tune the projected-gradient solver.
type PGOptions struct {
	// InitialStep is the first trial step size per factor update.
	InitialStep float64
	// Backtracks bounds the step-halving attempts per update.
	Backtracks int
	// StepGrowth re-expands the accepted step between sweeps.
	StepGrowth float64
}

// DefaultPGOptions returns a robust configuration.
func DefaultPGOptions() PGOptions {
	return PGOptions{InitialStep: 1e-3, Backtracks: 20, StepGrowth: 2}
}

// FitOfflinePG minimizes the offline objective (Eq. 1, without the
// orthogonality penalties) by alternating *projected gradient descent*
// with backtracking line search on each factor — the solver family the
// paper's related work attributes to Lin [21] as the main alternative to
// Lee–Seung multiplicative updates. It exists for cross-checking the
// multiplicative solver and for the solver-choice ablation bench; the
// multiplicative algorithm (FitOffline) is the paper's method.
//
// Like FitOffline it draws all per-sweep temporaries (gradients, line
// search backups, loss scratch) from one workspace, so the iteration loop
// is allocation-free after the first sweep.
func FitOfflinePG(p *Problem, cfg Config, opts PGOptions) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := p.Validate(cfg.K); err != nil {
		return nil, err
	}
	aScale, bScale, _ := regScales(p)
	cfg.Alpha *= aScale
	cfg.Beta *= bScale
	if opts.InitialStep <= 0 {
		opts.InitialStep = 1e-3
	}
	if opts.Backtracks <= 0 {
		opts.Backtracks = 20
	}
	if opts.StepGrowth <= 1 {
		opts.StepGrowth = 2
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	f := initFactors(p, cfg, rng)
	res := &Result{Factors: f, History: make([]LossBreakdown, 0, cfg.MaxIter)}
	ws := mat.NewWorkspace()

	// Per-factor adaptive step sizes.
	steps := map[string]float64{"Sp": opts.InitialStep, "Su": opts.InitialStep,
		"Sf": opts.InitialStep, "Hp": opts.InitialStep, "Hu": opts.InitialStep}

	objective := func() float64 { return Loss(p, &f, cfg, nil, ws).Total }

	descend := func(name string, factor *mat.Dense, grad *mat.Dense) {
		cur := objective()
		step := steps[name]
		backup := ws.Get(factor.Rows(), factor.Cols())
		backup.CopyFrom(factor)
		for try := 0; try < opts.Backtracks; try++ {
			factor.CopyFrom(backup)
			factor.AddScaled(factor, -step, grad)
			factor.ClampNonNegative()
			if objective() < cur {
				steps[name] = step * opts.StepGrowth
				ws.Put(backup, grad)
				return
			}
			step /= 2
		}
		// No improving step found: restore and shrink future trials.
		factor.CopyFrom(backup)
		steps[name] = step
		ws.Put(backup, grad)
	}

	prev := math.Inf(1)
	for it := 0; it < cfg.MaxIter; it++ {
		descend("Sp", f.Sp, gradSp(p, &f, ws))
		descend("Hp", f.Hp, gradHp(p, &f, ws))
		descend("Su", f.Su, gradSu(p, &f, cfg, ws))
		descend("Hu", f.Hu, gradHu(p, &f, ws))
		descend("Sf", f.Sf, gradSf(p, &f, cfg, ws))

		lb := Loss(p, &f, cfg, nil, ws)
		res.History = append(res.History, lb)
		res.Iterations = it + 1
		if relChange(prev, lb.Total) < cfg.Tol {
			res.Converged = true
			break
		}
		prev = lb.Total
	}
	return res, nil
}

// gradSp = −2XpSfHpᵀ + 2SpHpGram(Sf)Hpᵀ − 2XrᵀSu + 2SpGram(Su).
// The returned matrix belongs to ws; the caller puts it back.
func gradSp(p *Problem, f *Factors, ws *mat.Workspace) *mat.Dense {
	k := f.Sp.Cols()
	n, l := f.Sp.Rows(), f.Sf.Rows()
	sfHpT := ws.Get(l, k)
	sfHpT.MulABT(f.Sf, f.Hp)
	g := p.Xp.MulDenseInto(ws.Get(n, k), sfHpT)
	xrtSu := p.XrT().MulDenseInto(ws.Get(n, k), f.Su)
	g.Add(g, xrtSu)
	g.Scale(-2, g)

	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	hpGram := mat.ProductInto(ws.Get(k, k), f.Hp, gramSf)
	d := ws.Get(k, k)
	d.MulABT(hpGram, f.Hp)
	gramSu := mat.GramInto(ws.Get(k, k), f.Su)
	d.Add(d, gramSu)
	spD := mat.ProductInto(ws.Get(n, k), f.Sp, d)
	g.AddScaled(g, 2, spD)
	ws.Put(sfHpT, xrtSu, gramSf, hpGram, d, gramSu, spD)
	return g
}

// gradSu = −2XuSfHuᵀ + 2SuHuGram(Sf)Huᵀ − 2XrSp + 2SuGram(Sp) + 2βLuSu.
func gradSu(p *Problem, f *Factors, cfg Config, ws *mat.Workspace) *mat.Dense {
	k := f.Su.Cols()
	m, l := f.Su.Rows(), f.Sf.Rows()
	sfHuT := ws.Get(l, k)
	sfHuT.MulABT(f.Sf, f.Hu)
	g := p.Xu.MulDenseInto(ws.Get(m, k), sfHuT)
	xrSp := p.Xr.MulDenseInto(ws.Get(m, k), f.Sp)
	g.Add(g, xrSp)
	g.Scale(-2, g)

	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	huGram := mat.ProductInto(ws.Get(k, k), f.Hu, gramSf)
	d := ws.Get(k, k)
	d.MulABT(huGram, f.Hu)
	gramSp := mat.GramInto(ws.Get(k, k), f.Sp)
	d.Add(d, gramSp)
	suD := mat.ProductInto(ws.Get(m, k), f.Su, d)
	g.AddScaled(g, 2, suD)
	if cfg.Beta > 0 && p.Gu != nil {
		lus := sparse.LaplacianMulDenseInto(ws.Get(m, k), p.Gu, p.GuDegrees(), f.Su)
		g.AddScaled(g, 2*cfg.Beta, lus)
		ws.Put(lus)
	}
	ws.Put(sfHuT, xrSp, gramSf, huGram, d, gramSp, suD)
	return g
}

// gradSf = −2XpᵀSpHp + 2SfHpᵀGram(Sp)Hp − 2XuᵀSuHu + 2SfHuᵀGram(Su)Hu
// + 2α(Sf − Sf0).
func gradSf(p *Problem, f *Factors, cfg Config, ws *mat.Workspace) *mat.Dense {
	k := f.Sf.Cols()
	n, m, l := f.Sp.Rows(), f.Su.Rows(), f.Sf.Rows()
	spHp := mat.ProductInto(ws.Get(n, k), f.Sp, f.Hp)
	suHu := mat.ProductInto(ws.Get(m, k), f.Su, f.Hu)
	g := p.XpT().MulDenseInto(ws.Get(l, k), spHp)
	xutSuHu := p.XuT().MulDenseInto(ws.Get(l, k), suHu)
	g.Add(g, xutSuHu)
	g.Scale(-2, g)

	gramSp := mat.GramInto(ws.Get(k, k), f.Sp)
	gramSpHp := mat.ProductInto(ws.Get(k, k), gramSp, f.Hp)
	b := ws.Get(k, k)
	b.MulATB(f.Hp, gramSpHp)
	gramSu := mat.GramInto(ws.Get(k, k), f.Su)
	gramSuHu := mat.ProductInto(ws.Get(k, k), gramSu, f.Hu)
	b2 := ws.Get(k, k)
	b2.MulATB(f.Hu, gramSuHu)
	b.Add(b, b2)
	sfB := mat.ProductInto(ws.Get(l, k), f.Sf, b)
	g.AddScaled(g, 2, sfB)
	if cfg.Alpha > 0 && p.Sf0 != nil {
		diff := ws.Get(l, k)
		diff.Sub(f.Sf, p.Sf0)
		g.AddScaled(g, 2*cfg.Alpha, diff)
		ws.Put(diff)
	}
	ws.Put(spHp, suHu, xutSuHu, gramSp, gramSpHp, b, gramSu, gramSuHu, b2, sfB)
	return g
}

// gradHp = −2SpᵀXpSf + 2Gram(Sp)HpGram(Sf).
func gradHp(p *Problem, f *Factors, ws *mat.Workspace) *mat.Dense {
	k := f.Hp.Rows()
	n := f.Sp.Rows()
	xpSf := p.Xp.MulDenseInto(ws.Get(n, k), f.Sf)
	g := ws.Get(k, k)
	g.MulATB(f.Sp, xpSf)
	g.Scale(-2, g)
	gramSp := mat.GramInto(ws.Get(k, k), f.Sp)
	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	gh := mat.ProductInto(ws.Get(k, k), gramSp, f.Hp)
	ghg := mat.ProductInto(ws.Get(k, k), gh, gramSf)
	g.AddScaled(g, 2, ghg)
	ws.Put(xpSf, gramSp, gramSf, gh, ghg)
	return g
}

// gradHu = −2SuᵀXuSf + 2Gram(Su)HuGram(Sf).
func gradHu(p *Problem, f *Factors, ws *mat.Workspace) *mat.Dense {
	k := f.Hu.Rows()
	m := f.Su.Rows()
	xuSf := p.Xu.MulDenseInto(ws.Get(m, k), f.Sf)
	g := ws.Get(k, k)
	g.MulATB(f.Su, xuSf)
	g.Scale(-2, g)
	gramSu := mat.GramInto(ws.Get(k, k), f.Su)
	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	gh := mat.ProductInto(ws.Get(k, k), gramSu, f.Hu)
	ghg := mat.ProductInto(ws.Get(k, k), gh, gramSf)
	g.AddScaled(g, 2, ghg)
	ws.Put(xuSf, gramSu, gramSf, gh, ghg)
	return g
}
