package core

import (
	"math/rand"
	"testing"

	"triclust/internal/eval"
	"triclust/internal/mat"
)

func TestPGObjectiveStrictlyNonIncreasing(t *testing.T) {
	d, g := smallDataset(t, 51)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 30
	cfg.Tol = -1
	res, err := FitOfflinePG(p, cfg, DefaultPGOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Backtracking line search guarantees monotone descent (each factor
	// step is only accepted when it improves the full objective).
	for i := 1; i < len(res.History); i++ {
		if res.History[i].Total > res.History[i-1].Total+1e-9 {
			t.Fatalf("PG objective rose at iter %d: %.6f → %.6f",
				i, res.History[i-1].Total, res.History[i].Total)
		}
	}
	if res.History[len(res.History)-1].Total >= res.History[0].Total {
		t.Fatal("PG objective did not decrease")
	}
}

func TestPGRecoversPlantedClusters(t *testing.T) {
	d, g := smallDataset(t, 53)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 60
	res, err := FitOfflinePG(p, cfg, DefaultPGOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := eval.Accuracy(res.TweetClusters(), d.TweetClass); acc < 0.65 {
		t.Fatalf("PG tweet accuracy = %.3f", acc)
	}
}

func TestPGComparableToMultiplicative(t *testing.T) {
	d, g := smallDataset(t, 55)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 50

	mu, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := FitOfflinePG(p, cfg, DefaultPGOptions())
	if err != nil {
		t.Fatal(err)
	}
	accMU := eval.Accuracy(mu.TweetClusters(), d.TweetClass)
	accPG := eval.Accuracy(pg.TweetClusters(), d.TweetClass)
	if accPG < accMU-0.15 {
		t.Fatalf("PG (%.3f) far below multiplicative (%.3f)", accPG, accMU)
	}
}

func TestPGFactorsNonNegativeFinite(t *testing.T) {
	d, g := smallDataset(t, 57)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 20
	res, err := FitOfflinePG(p, cfg, DefaultPGOptions())
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*mat.Dense{
		"Sp": res.Sp, "Su": res.Su, "Sf": res.Sf, "Hp": res.Hp, "Hu": res.Hu,
	} {
		if !m.IsFinite() {
			t.Fatalf("%s non-finite", name)
		}
		for _, v := range m.Data() {
			if v < 0 {
				t.Fatalf("%s negative after projection", name)
			}
		}
	}
}

func TestPGValidates(t *testing.T) {
	p := &Problem{} // nil matrices → panic would be a bug; Validate errors first
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panicked instead of returning error: %v", r)
		}
	}()
	bad, f := exactProblem(rand.New(rand.NewSource(1)), 4, 3, 5, 2)
	_ = f
	bad.Sf0 = mat.NewDense(99, 2) // wrong prior shape
	if _, err := FitOfflinePG(bad, DefaultConfig(), DefaultPGOptions()); err == nil {
		t.Fatal("expected validation error")
	}
	_ = p
}

func TestGradientsMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	p, f := exactProblem(rng, 6, 4, 5, 2)
	mat.PerturbPositive(rng, f.Sp, 0.5)
	mat.PerturbPositive(rng, f.Su, 0.5)
	mat.PerturbPositive(rng, f.Sf, 0.5)
	cfg := Config{K: 2, Alpha: 0, Beta: 0}.withDefaults()

	loss := func() float64 {
		return p.Xp.ResidualFrobeniusSq(f.Sp, f.Hp, f.Sf) +
			p.Xu.ResidualFrobeniusSq(f.Su, f.Hu, f.Sf) +
			p.Xr.ResidualFrobeniusSq(f.Su, nil, f.Sp)
	}

	const h = 1e-6
	check := func(name string, factor *mat.Dense, grad *mat.Dense) {
		for _, idx := range [][2]int{{0, 0}, {1, 1}} {
			i, j := idx[0], idx[1]
			orig := factor.At(i, j)
			factor.Set(i, j, orig+h)
			up := loss()
			factor.Set(i, j, orig-h)
			down := loss()
			factor.Set(i, j, orig)
			numeric := (up - down) / (2 * h)
			analytic := grad.At(i, j)
			if diff := numeric - analytic; diff > 1e-3*(1+abs(numeric)) || -diff > 1e-3*(1+abs(numeric)) {
				t.Fatalf("%s grad(%d,%d): analytic %.6f vs numeric %.6f", name, i, j, analytic, numeric)
			}
		}
	}
	ws := mat.NewWorkspace()
	check("Sp", f.Sp, gradSp(p, &f, ws))
	check("Su", f.Su, gradSu(p, &f, cfg, ws))
	check("Sf", f.Sf, gradSf(p, &f, cfg, ws))
	check("Hp", f.Hp, gradHp(p, &f, ws))
	check("Hu", f.Hu, gradHu(p, &f, ws))
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
