package core

import (
	"math"
	"math/rand"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// regScales computes the internal multipliers that turn the user-facing
// relative weights α, β, γ ∈ [0,1] into absolute objective weights.
//
// The data-fidelity residuals are O(‖X‖²_F) while the regularizers are
// O(l) (lexicon), O(nnz(Gu)) (graph) and O(m) (temporal) — several orders
// of magnitude smaller on real corpora. The paper treats α and β as
// *contribution* weights ("parameters α, β ∈ [0,1] to weigh the
// contributions", §3) whose full range visibly moves the solution
// (Figures 6–7), which is only possible if the terms are on a common
// scale; we therefore scale each regularizer so that weight 1 makes it
// comparable to one data term.
func regScales(p *Problem) (alphaScale, betaScale, gammaScale float64) {
	data := (p.Xp.FrobeniusSq() + p.Xu.FrobeniusSq() + p.Xr.FrobeniusSq()) / 3
	if data <= 0 {
		return 1, 1, 1
	}
	l := p.Xp.Cols()
	if l < 1 {
		l = 1
	}
	alphaScale = data / float64(l)
	edges := 1
	if p.Gu != nil && p.Gu.NNZ() > 0 {
		edges = p.Gu.NNZ()
	}
	betaScale = data / float64(edges)
	m := p.Xu.Rows()
	if m < 1 {
		m = 1
	}
	gammaScale = data / float64(m)
	return alphaScale, betaScale, gammaScale
}

// FitOffline runs Algorithm 1: alternating multiplicative updates of
// Sp (Eq. 9), Hp (Eq. 12), Su (Eq. 11), Hu (Eq. 13) and Sf (Eq. 7) until
// the relative change of the objective (Eq. 1) falls below cfg.Tol or
// cfg.MaxIter sweeps complete.
//
// All per-sweep temporaries live in one mat.Workspace, so after the first
// sweep the iteration loop performs (near) zero heap allocations; the
// large sparse products run on the parallel kernels of packages mat and
// sparse against the Problem's cached transposes.
func FitOffline(p *Problem, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := p.Validate(cfg.K); err != nil {
		return nil, err
	}
	aScale, bScale, _ := regScales(p)
	cfg.Alpha *= aScale
	cfg.Beta *= bScale
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := initFactors(p, cfg, rng)
	res := &Result{Factors: f, History: make([]LossBreakdown, 0, cfg.MaxIter)}
	ws := mat.NewWorkspace()

	prev := math.Inf(1)
	for it := 0; it < cfg.MaxIter; it++ {
		updateSp(p, &f, cfg, ws)
		updateHp(p, &f, ws)
		updateSu(p, &f, cfg, nil, ws)
		updateHu(p, &f, ws)
		updateSf(p, &f, cfg, p.Sf0, ws)

		loss := Loss(p, &f, cfg, nil, ws)
		res.History = append(res.History, loss)
		res.Iterations = it + 1
		if relChange(prev, loss.Total) < cfg.Tol {
			res.Converged = true
			break
		}
		prev = loss.Total
	}
	return res, nil
}

func relChange(prev, cur float64) float64 {
	if math.IsInf(prev, 1) {
		return math.Inf(1)
	}
	denom := math.Abs(prev)
	if denom < 1 {
		denom = 1
	}
	return math.Abs(prev-cur) / denom
}

// updateSp applies Eq. 9:
//
//	Sp ← Sp ∘ √( (Xp Sf Hpᵀ + Xrᵀ Su + Sp Δ⁻) /
//	             (Sp Hp Sfᵀ Sf Hpᵀ + Sp Suᵀ Su + Sp Δ⁺) )
//
// with Δ = Spᵀ Xp Sf Hpᵀ − Hp Sfᵀ Sf Hpᵀ + Spᵀ Xrᵀ Su − Suᵀ Su.
func updateSp(p *Problem, f *Factors, cfg Config, ws *mat.Workspace) {
	k := f.Sp.Cols()
	n, l := f.Sp.Rows(), f.Sf.Rows()
	sfHpT := ws.Get(l, k)
	sfHpT.MulABT(f.Sf, f.Hp)
	c := p.Xp.MulDenseInto(ws.Get(n, k), sfHpT)    // n×k: Xp Sf Hpᵀ
	c2 := p.XrT().MulDenseInto(ws.Get(n, k), f.Su) // n×k: Xrᵀ Su
	c.Add(c, c2)

	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	hpGram := mat.ProductInto(ws.Get(k, k), f.Hp, gramSf)
	d1 := ws.Get(k, k) // Hp Gram(Sf) Hpᵀ
	d1.MulABT(hpGram, f.Hp)
	d2 := mat.GramInto(ws.Get(k, k), f.Su)
	d := ws.Get(k, k)
	d.Add(d1, d2)

	delta := ws.Get(k, k) // Spᵀ(C) − D
	delta.MulATB(f.Sp, c)
	delta.Sub(delta, d)
	dPos, dNeg := ws.Get(k, k), ws.Get(k, k)
	mat.SplitPosNegInto(dPos, dNeg, delta)

	numer := mat.ProductInto(ws.Get(n, k), f.Sp, dNeg)
	numer.Add(numer, c)
	denom := mat.ProductInto(ws.Get(n, k), f.Sp, d)
	spPos := mat.ProductInto(ws.Get(n, k), f.Sp, dPos)
	denom.Add(denom, spPos)

	applyExtensions(numer, denom, f.Sp, cfg, cfg.GuidedTweetLabels, ws)
	mat.MulUpdate(f.Sp, numer, denom)
	ws.Put(sfHpT, c, c2, gramSf, hpGram, d1, d2, d, delta, dPos, dNeg, numer, denom, spPos)
}

// updateSu applies Eq. 11 (offline; suw == nil) or Eqs. 24/26 (online;
// suw carries the γ-weighted history rows and evolving marks which rows
// have one):
//
//	Su ← Su ∘ √( (Xu Sf Huᵀ + Xr Sp + β Gu Su + Su Δ⁻ [+ γ Suw]) /
//	             (Su Hu Sfᵀ Sf Huᵀ + Su Spᵀ Sp + β Du Su + Su Δ⁺ [+ γ Su]) )
func updateSu(p *Problem, f *Factors, cfg Config, tr *temporalUser, ws *mat.Workspace) {
	k := f.Su.Cols()
	m, l := f.Su.Rows(), f.Sf.Rows()
	sfHuT := ws.Get(l, k)
	sfHuT.MulABT(f.Sf, f.Hu)
	e := p.Xu.MulDenseInto(ws.Get(m, k), sfHuT) // m×k: Xu Sf Huᵀ
	e2 := p.Xr.MulDenseInto(ws.Get(m, k), f.Sp) // m×k: Xr Sp
	e.Add(e, e2)

	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	huGram := mat.ProductInto(ws.Get(k, k), f.Hu, gramSf)
	f1 := ws.Get(k, k) // Hu Gram(Sf) Huᵀ
	f1.MulABT(huGram, f.Hu)
	f2 := mat.GramInto(ws.Get(k, k), f.Sp)
	fd := ws.Get(k, k)
	fd.Add(f1, f2)

	delta := ws.Get(k, k) // Suᵀ(E) − F − β SuᵀLuSu [− γ Suᵀ(Su−Suw)]
	delta.MulATB(f.Su, e)
	delta.Sub(delta, fd)

	var gus, dus *mat.Dense
	if cfg.Beta > 0 && p.Gu != nil {
		deg := p.GuDegrees()
		lus := sparse.LaplacianMulDenseInto(ws.Get(m, k), p.Gu, deg, f.Su)
		lap := ws.Get(k, k)
		lap.MulATB(f.Su, lus)
		delta.AddScaled(delta, -cfg.Beta, lap)
		gus = p.Gu.MulDenseInto(ws.Get(m, k), f.Su)
		dus = sparse.DegreeMulDenseInto(ws.Get(m, k), p.Gu, deg, f.Su)
		ws.Put(lus, lap)
	}
	if tr != nil && tr.gamma > 0 {
		// −γ Suᵀ(Su − Suw) restricted to rows with history.
		diff := ws.Get(m, k)
		diff.Sub(f.Su, tr.suw)
		tr.maskRowsWithoutHistory(diff)
		g := ws.Get(k, k)
		g.MulATB(f.Su, diff)
		delta.AddScaled(delta, -tr.gamma, g)
		ws.Put(diff, g)
	}
	dPos, dNeg := ws.Get(k, k), ws.Get(k, k)
	mat.SplitPosNegInto(dPos, dNeg, delta)

	numer := mat.ProductInto(ws.Get(m, k), f.Su, dNeg)
	numer.Add(numer, e)
	denom := mat.ProductInto(ws.Get(m, k), f.Su, fd)
	suPos := mat.ProductInto(ws.Get(m, k), f.Su, dPos)
	denom.Add(denom, suPos)
	if gus != nil {
		numer.AddScaled(numer, cfg.Beta, gus)
		denom.AddScaled(denom, cfg.Beta, dus)
		ws.Put(gus, dus)
	}
	if tr != nil && tr.gamma > 0 {
		// Eq. 26: + γ Suw in the numerator, + γ Su in the denominator,
		// only for rows with history (evolving users, Eq. 24 otherwise).
		tr.addTemporalTerms(numer, denom, f.Su)
	}

	applyExtensions(numer, denom, f.Su, cfg, cfg.GuidedUserLabels, ws)
	mat.MulUpdate(f.Su, numer, denom)
	ws.Put(sfHuT, e, e2, gramSf, huGram, f1, f2, fd, delta, dPos, dNeg, numer, denom, suPos)
}

// updateSf applies Eq. 7 (offline; prior = Sf0) and Eq. 23 (online;
// prior = Sfw):
//
//	Sf ← Sf ∘ √( (Xuᵀ Su Hu + Xpᵀ Sp Hp + α·prior + Sf Δ⁻) /
//	             (Sf Huᵀ Suᵀ Su Hu + Sf Hpᵀ Spᵀ Sp Hp + α Sf + Sf Δ⁺) )
func updateSf(p *Problem, f *Factors, cfg Config, prior *mat.Dense, ws *mat.Workspace) {
	k := f.Sf.Cols()
	n, m, l := f.Sp.Rows(), f.Su.Rows(), f.Sf.Rows()
	spHp := mat.ProductInto(ws.Get(n, k), f.Sp, f.Hp)
	suHu := mat.ProductInto(ws.Get(m, k), f.Su, f.Hu)
	a := p.XpT().MulDenseInto(ws.Get(l, k), spHp)  // l×k: Xpᵀ Sp Hp
	a2 := p.XuT().MulDenseInto(ws.Get(l, k), suHu) // l×k: Xuᵀ Su Hu
	a.Add(a, a2)

	gramSp := mat.GramInto(ws.Get(k, k), f.Sp)
	gramSpHp := mat.ProductInto(ws.Get(k, k), gramSp, f.Hp)
	b1 := ws.Get(k, k) // Hpᵀ Gram(Sp) Hp
	b1.MulATB(f.Hp, gramSpHp)
	gramSu := mat.GramInto(ws.Get(k, k), f.Su)
	gramSuHu := mat.ProductInto(ws.Get(k, k), gramSu, f.Hu)
	b2 := ws.Get(k, k) // Huᵀ Gram(Su) Hu
	b2.MulATB(f.Hu, gramSuHu)
	b := ws.Get(k, k)
	b.Add(b1, b2)

	delta := ws.Get(k, k) // Sfᵀ(A) − B − α Sfᵀ(Sf − prior)
	delta.MulATB(f.Sf, a)
	delta.Sub(delta, b)
	if cfg.Alpha > 0 && prior != nil {
		diff := ws.Get(l, k)
		diff.Sub(f.Sf, prior)
		g := ws.Get(k, k)
		g.MulATB(f.Sf, diff)
		delta.AddScaled(delta, -cfg.Alpha, g)
		ws.Put(diff, g)
	}
	dPos, dNeg := ws.Get(k, k), ws.Get(k, k)
	mat.SplitPosNegInto(dPos, dNeg, delta)

	numer := mat.ProductInto(ws.Get(l, k), f.Sf, dNeg)
	numer.Add(numer, a)
	denom := mat.ProductInto(ws.Get(l, k), f.Sf, b)
	sfPos := mat.ProductInto(ws.Get(l, k), f.Sf, dPos)
	denom.Add(denom, sfPos)
	if cfg.Alpha > 0 && prior != nil {
		numer.AddScaled(numer, cfg.Alpha, prior)
		denom.AddScaled(denom, cfg.Alpha, f.Sf)
	}

	applyExtensions(numer, denom, f.Sf, cfg, nil, ws)
	mat.MulUpdate(f.Sf, numer, denom)
	ws.Put(spHp, suHu, a, a2, gramSp, gramSpHp, b1, b2, gramSu, gramSuHu, b,
		delta, dPos, dNeg, numer, denom, sfPos)
}

// updateHp applies Eq. 12: Hp ← Hp ∘ √(Spᵀ Xp Sf / Spᵀ Sp Hp Sfᵀ Sf).
func updateHp(p *Problem, f *Factors, ws *mat.Workspace) {
	k := f.Hp.Rows()
	n := f.Sp.Rows()
	xpSf := p.Xp.MulDenseInto(ws.Get(n, k), f.Sf)
	numer := ws.Get(k, k)
	numer.MulATB(f.Sp, xpSf)
	gramSp := mat.GramInto(ws.Get(k, k), f.Sp)
	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	gh := mat.ProductInto(ws.Get(k, k), gramSp, f.Hp)
	denom := mat.ProductInto(ws.Get(k, k), gh, gramSf)
	mat.MulUpdate(f.Hp, numer, denom)
	ws.Put(xpSf, numer, gramSp, gramSf, gh, denom)
}

// updateHu applies Eq. 13: Hu ← Hu ∘ √(Suᵀ Xu Sf / Suᵀ Su Hu Sfᵀ Sf).
func updateHu(p *Problem, f *Factors, ws *mat.Workspace) {
	k := f.Hu.Rows()
	m := f.Su.Rows()
	xuSf := p.Xu.MulDenseInto(ws.Get(m, k), f.Sf)
	numer := ws.Get(k, k)
	numer.MulATB(f.Su, xuSf)
	gramSu := mat.GramInto(ws.Get(k, k), f.Su)
	gramSf := mat.GramInto(ws.Get(k, k), f.Sf)
	gh := mat.ProductInto(ws.Get(k, k), gramSu, f.Hu)
	denom := mat.ProductInto(ws.Get(k, k), gh, gramSf)
	mat.MulUpdate(f.Hu, numer, denom)
	ws.Put(xuSf, numer, gramSu, gramSf, gh, denom)
}

// applyExtensions adds the §7 optional regularizer terms to a factor's
// multiplicative numerator/denominator. labels may be nil (no guidance for
// this factor).
func applyExtensions(numer, denom, s *mat.Dense, cfg Config, labels []int, ws *mat.Workspace) {
	if cfg.SparsityLambda > 0 {
		// ∂(λ‖S‖₁)/∂S = λ → pure denominator (shrinkage) term.
		d := denom.Data()
		for i := range d {
			d[i] += cfg.SparsityLambda
		}
	}
	if cfg.DiversityLambda > 0 {
		// λ tr(Sᵀ S (𝟙𝟙ᵀ − I)): gradient 2λ S(𝟙𝟙ᵀ−I) ≥ 0 → denominator.
		k := s.Cols()
		ones := ws.Get(k, k)
		ones.Fill(1)
		for i := 0; i < k; i++ {
			ones.Set(i, i, 0)
		}
		sOnes := mat.ProductInto(ws.Get(s.Rows(), k), s, ones)
		denom.AddScaled(denom, cfg.DiversityLambda, sOnes)
		ws.Put(ones, sOnes)
	}
	if cfg.GuidedLambda > 0 && labels != nil {
		// λ‖S(i) − e_y(i)‖² on labeled rows: numerator += λ e_y(i),
		// denominator += λ S(i).
		k := s.Cols()
		for i, y := range labels {
			if y < 0 || y >= k || i >= s.Rows() {
				continue
			}
			numer.Set(i, y, numer.At(i, y)+cfg.GuidedLambda)
			srow := s.Row(i)
			drow := denom.Row(i)
			for j := range drow {
				drow[j] += cfg.GuidedLambda * srow[j]
			}
		}
	}
}

// Loss evaluates every term of the objective. tr is nil for the offline
// objective (Eq. 1); online (Eq. 19) it supplies the temporal user term,
// and the Lexicon field then measures α‖Sf − Sfw‖² via the prior recorded
// in tr. ws provides scratch space (nil allocates fresh temporaries).
func Loss(p *Problem, f *Factors, cfg Config, tr *temporalUser, ws *mat.Workspace) LossBreakdown {
	if ws == nil {
		ws = mat.NewWorkspace()
	}
	var lb LossBreakdown
	lb.TweetFeature = p.Xp.ResidualFrobeniusSqWS(f.Sp, f.Hp, f.Sf, ws)
	lb.UserFeature = p.Xu.ResidualFrobeniusSqWS(f.Su, f.Hu, f.Sf, ws)
	lb.UserTweet = p.Xr.ResidualFrobeniusSqWS(f.Su, nil, f.Sp, ws)

	prior := p.Sf0
	if tr != nil && tr.sfPrior != nil {
		prior = tr.sfPrior
	}
	if cfg.Alpha > 0 && prior != nil {
		lb.Lexicon = cfg.Alpha * mat.DiffFrobeniusSq(f.Sf, prior)
	}
	if cfg.Beta > 0 && p.Gu != nil {
		lb.GraphReg = cfg.Beta * sparse.GraphRegularizationWS(p.Gu, p.GuDegrees(), f.Su, ws)
	}
	if tr != nil && tr.gamma > 0 {
		diff := ws.Get(f.Su.Rows(), f.Su.Cols())
		diff.Sub(f.Su, tr.suw)
		tr.maskRowsWithoutHistory(diff)
		lb.Temporal = tr.gamma * diff.FrobeniusSq()
		ws.Put(diff)
	}
	if cfg.SparsityLambda > 0 {
		lb.Sparsity = cfg.SparsityLambda * (f.Sp.Sum() + f.Su.Sum() + f.Sf.Sum())
	}
	if cfg.DiversityLambda > 0 {
		lb.Diversity = cfg.DiversityLambda * (diversityPenalty(f.Sp, ws) + diversityPenalty(f.Su, ws) + diversityPenalty(f.Sf, ws))
	}
	if cfg.GuidedLambda > 0 {
		lb.Guided = cfg.GuidedLambda * (guidedPenalty(f.Sp, cfg.GuidedTweetLabels) + guidedPenalty(f.Su, cfg.GuidedUserLabels))
	}
	lb.Total = lb.TweetFeature + lb.UserFeature + lb.UserTweet +
		lb.Lexicon + lb.GraphReg + lb.Temporal + lb.Sparsity + lb.Diversity + lb.Guided
	return lb
}

func diversityPenalty(s *mat.Dense, ws *mat.Workspace) float64 {
	g := mat.GramInto(ws.Get(s.Cols(), s.Cols()), s)
	var off float64
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if i != j {
				off += g.At(i, j)
			}
		}
	}
	ws.Put(g)
	return off
}

func guidedPenalty(s *mat.Dense, labels []int) float64 {
	if labels == nil {
		return 0
	}
	var sum float64
	k := s.Cols()
	for i, y := range labels {
		if y < 0 || y >= k || i >= s.Rows() {
			continue
		}
		row := s.Row(i)
		for j, v := range row {
			d := v
			if j == y {
				d = v - 1
			}
			sum += d * d
		}
	}
	return sum
}
