package core

import (
	"math"
	"math/rand"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// regScales computes the internal multipliers that turn the user-facing
// relative weights α, β, γ ∈ [0,1] into absolute objective weights.
//
// The data-fidelity residuals are O(‖X‖²_F) while the regularizers are
// O(l) (lexicon), O(nnz(Gu)) (graph) and O(m) (temporal) — several orders
// of magnitude smaller on real corpora. The paper treats α and β as
// *contribution* weights ("parameters α, β ∈ [0,1] to weigh the
// contributions", §3) whose full range visibly moves the solution
// (Figures 6–7), which is only possible if the terms are on a common
// scale; we therefore scale each regularizer so that weight 1 makes it
// comparable to one data term.
func regScales(p *Problem) (alphaScale, betaScale, gammaScale float64) {
	data := (p.Xp.FrobeniusSq() + p.Xu.FrobeniusSq() + p.Xr.FrobeniusSq()) / 3
	if data <= 0 {
		return 1, 1, 1
	}
	l := p.Xp.Cols()
	if l < 1 {
		l = 1
	}
	alphaScale = data / float64(l)
	edges := 1
	if p.Gu != nil && p.Gu.NNZ() > 0 {
		edges = p.Gu.NNZ()
	}
	betaScale = data / float64(edges)
	m := p.Xu.Rows()
	if m < 1 {
		m = 1
	}
	gammaScale = data / float64(m)
	return alphaScale, betaScale, gammaScale
}

// FitOffline runs Algorithm 1: alternating multiplicative updates of
// Sp (Eq. 9), Hp (Eq. 12), Su (Eq. 11), Hu (Eq. 13) and Sf (Eq. 7) until
// the relative change of the objective (Eq. 1) falls below cfg.Tol or
// cfg.MaxIter sweeps complete.
func FitOffline(p *Problem, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := p.Validate(cfg.K); err != nil {
		return nil, err
	}
	aScale, bScale, _ := regScales(p)
	cfg.Alpha *= aScale
	cfg.Beta *= bScale
	rng := rand.New(rand.NewSource(cfg.Seed))
	f := initFactors(p, cfg, rng)
	res := &Result{Factors: f}

	prev := math.Inf(1)
	for it := 0; it < cfg.MaxIter; it++ {
		updateSp(p, &f, cfg)
		updateHp(p, &f)
		updateSu(p, &f, cfg, nil)
		updateHu(p, &f)
		updateSf(p, &f, cfg, p.Sf0)

		loss := Loss(p, &f, cfg, nil)
		res.History = append(res.History, loss)
		res.Iterations = it + 1
		if relChange(prev, loss.Total) < cfg.Tol {
			res.Converged = true
			break
		}
		prev = loss.Total
	}
	return res, nil
}

func relChange(prev, cur float64) float64 {
	if math.IsInf(prev, 1) {
		return math.Inf(1)
	}
	denom := math.Abs(prev)
	if denom < 1 {
		denom = 1
	}
	return math.Abs(prev-cur) / denom
}

// updateSp applies Eq. 9:
//
//	Sp ← Sp ∘ √( (Xp Sf Hpᵀ + Xrᵀ Su + Sp Δ⁻) /
//	             (Sp Hp Sfᵀ Sf Hpᵀ + Sp Suᵀ Su + Sp Δ⁺) )
//
// with Δ = Spᵀ Xp Sf Hpᵀ − Hp Sfᵀ Sf Hpᵀ + Spᵀ Xrᵀ Su − Suᵀ Su.
func updateSp(p *Problem, f *Factors, cfg Config) {
	k := f.Sp.Cols()
	sfHpT := mat.NewDense(f.Sf.Rows(), k)
	sfHpT.MulABT(f.Sf, f.Hp)
	c1 := p.Xp.MulDense(sfHpT) // n×k: Xp Sf Hpᵀ
	c2 := p.Xr.MulTDense(f.Su) // n×k: Xrᵀ Su
	c := mat.NewDense(c1.Rows(), k)
	c.Add(c1, c2)

	d1 := mat.NewDense(k, k) // Hp Gram(Sf) Hpᵀ
	tmp := mat.Product(f.Hp, mat.Gram(f.Sf))
	d1.MulABT(tmp, f.Hp)
	d2 := mat.Gram(f.Su)
	d := mat.NewDense(k, k)
	d.Add(d1, d2)

	delta := mat.NewDense(k, k) // Spᵀ(C) − D
	delta.MulATB(f.Sp, c)
	delta.Sub(delta, d)
	dPos, dNeg := mat.SplitPosNeg(delta)

	numer := mat.Product(f.Sp, dNeg)
	numer.Add(numer, c)
	denom := mat.NewDense(f.Sp.Rows(), k)
	denom.Mul(f.Sp, d)
	denom.Add(denom, mat.Product(f.Sp, dPos))

	applyExtensions(numer, denom, f.Sp, cfg, cfg.GuidedTweetLabels)
	mat.MulUpdate(f.Sp, numer, denom)
}

// updateSu applies Eq. 11 (offline; suw == nil) or Eqs. 24/26 (online;
// suw carries the γ-weighted history rows and evolving marks which rows
// have one):
//
//	Su ← Su ∘ √( (Xu Sf Huᵀ + Xr Sp + β Gu Su + Su Δ⁻ [+ γ Suw]) /
//	             (Su Hu Sfᵀ Sf Huᵀ + Su Spᵀ Sp + β Du Su + Su Δ⁺ [+ γ Su]) )
func updateSu(p *Problem, f *Factors, cfg Config, tr *temporalUser) {
	k := f.Su.Cols()
	sfHuT := mat.NewDense(f.Sf.Rows(), k)
	sfHuT.MulABT(f.Sf, f.Hu)
	e1 := p.Xu.MulDense(sfHuT) // m×k: Xu Sf Huᵀ
	e2 := p.Xr.MulDense(f.Sp)  // m×k: Xr Sp
	e := mat.NewDense(e1.Rows(), k)
	e.Add(e1, e2)

	f1 := mat.NewDense(k, k) // Hu Gram(Sf) Huᵀ
	tmp := mat.Product(f.Hu, mat.Gram(f.Sf))
	f1.MulABT(tmp, f.Hu)
	f2 := mat.Gram(f.Sp)
	fd := mat.NewDense(k, k)
	fd.Add(f1, f2)

	delta := mat.NewDense(k, k) // Suᵀ(E) − F − β SuᵀLuSu [− γ Suᵀ(Su−Suw)]
	delta.MulATB(f.Su, e)
	delta.Sub(delta, fd)

	var gus, dus *mat.Dense
	if cfg.Beta > 0 && p.Gu != nil {
		lus := sparse.LaplacianMulDense(p.Gu, f.Su)
		lap := mat.NewDense(k, k)
		lap.MulATB(f.Su, lus)
		delta.AddScaled(delta, -cfg.Beta, lap)
		gus = p.Gu.MulDense(f.Su)
		dus = sparse.DegreeMulDense(p.Gu, f.Su)
	}
	if tr != nil && tr.gamma > 0 {
		// −γ Suᵀ(Su − Suw) restricted to rows with history.
		diff := f.Su.Clone()
		diff.Sub(diff, tr.suw)
		tr.maskRowsWithoutHistory(diff)
		g := mat.NewDense(k, k)
		g.MulATB(f.Su, diff)
		delta.AddScaled(delta, -tr.gamma, g)
	}
	dPos, dNeg := mat.SplitPosNeg(delta)

	numer := mat.Product(f.Su, dNeg)
	numer.Add(numer, e)
	denom := mat.NewDense(f.Su.Rows(), k)
	denom.Mul(f.Su, fd)
	denom.Add(denom, mat.Product(f.Su, dPos))
	if gus != nil {
		numer.AddScaled(numer, cfg.Beta, gus)
		denom.AddScaled(denom, cfg.Beta, dus)
	}
	if tr != nil && tr.gamma > 0 {
		// Eq. 26: + γ Suw in the numerator, + γ Su in the denominator,
		// only for rows with history (evolving users, Eq. 24 otherwise).
		tr.addTemporalTerms(numer, denom, f.Su)
	}

	applyExtensions(numer, denom, f.Su, cfg, cfg.GuidedUserLabels)
	mat.MulUpdate(f.Su, numer, denom)
}

// updateSf applies Eq. 7 (offline; prior = Sf0) and Eq. 23 (online;
// prior = Sfw):
//
//	Sf ← Sf ∘ √( (Xuᵀ Su Hu + Xpᵀ Sp Hp + α·prior + Sf Δ⁻) /
//	             (Sf Huᵀ Suᵀ Su Hu + Sf Hpᵀ Spᵀ Sp Hp + α Sf + Sf Δ⁺) )
func updateSf(p *Problem, f *Factors, cfg Config, prior *mat.Dense) {
	k := f.Sf.Cols()
	a1 := p.Xp.MulTDense(mat.Product(f.Sp, f.Hp)) // l×k: Xpᵀ Sp Hp
	a2 := p.Xu.MulTDense(mat.Product(f.Su, f.Hu)) // l×k: Xuᵀ Su Hu
	a := mat.NewDense(a1.Rows(), k)
	a.Add(a1, a2)

	b1 := mat.NewDense(k, k) // Hpᵀ Gram(Sp) Hp
	b1.MulATB(f.Hp, mat.Product(mat.Gram(f.Sp), f.Hp))
	b2 := mat.NewDense(k, k) // Huᵀ Gram(Su) Hu
	b2.MulATB(f.Hu, mat.Product(mat.Gram(f.Su), f.Hu))
	b := mat.NewDense(k, k)
	b.Add(b1, b2)

	delta := mat.NewDense(k, k) // Sfᵀ(A) − B − α Sfᵀ(Sf − prior)
	delta.MulATB(f.Sf, a)
	delta.Sub(delta, b)
	if cfg.Alpha > 0 && prior != nil {
		diff := f.Sf.Clone()
		diff.Sub(diff, prior)
		g := mat.NewDense(k, k)
		g.MulATB(f.Sf, diff)
		delta.AddScaled(delta, -cfg.Alpha, g)
	}
	dPos, dNeg := mat.SplitPosNeg(delta)

	numer := mat.Product(f.Sf, dNeg)
	numer.Add(numer, a)
	denom := mat.NewDense(f.Sf.Rows(), k)
	denom.Mul(f.Sf, b)
	denom.Add(denom, mat.Product(f.Sf, dPos))
	if cfg.Alpha > 0 && prior != nil {
		numer.AddScaled(numer, cfg.Alpha, prior)
		denom.AddScaled(denom, cfg.Alpha, f.Sf)
	}

	applyExtensions(numer, denom, f.Sf, cfg, nil)
	mat.MulUpdate(f.Sf, numer, denom)
}

// updateHp applies Eq. 12: Hp ← Hp ∘ √(Spᵀ Xp Sf / Spᵀ Sp Hp Sfᵀ Sf).
func updateHp(p *Problem, f *Factors) {
	k := f.Hp.Rows()
	numer := mat.NewDense(k, k)
	numer.MulATB(f.Sp, p.Xp.MulDense(f.Sf))
	denom := mat.Product(mat.Product(mat.Gram(f.Sp), f.Hp), mat.Gram(f.Sf))
	mat.MulUpdate(f.Hp, numer, denom)
}

// updateHu applies Eq. 13: Hu ← Hu ∘ √(Suᵀ Xu Sf / Suᵀ Su Hu Sfᵀ Sf).
func updateHu(p *Problem, f *Factors) {
	k := f.Hu.Rows()
	numer := mat.NewDense(k, k)
	numer.MulATB(f.Su, p.Xu.MulDense(f.Sf))
	denom := mat.Product(mat.Product(mat.Gram(f.Su), f.Hu), mat.Gram(f.Sf))
	mat.MulUpdate(f.Hu, numer, denom)
}

// applyExtensions adds the §7 optional regularizer terms to a factor's
// multiplicative numerator/denominator. labels may be nil (no guidance for
// this factor).
func applyExtensions(numer, denom, s *mat.Dense, cfg Config, labels []int) {
	if cfg.SparsityLambda > 0 {
		// ∂(λ‖S‖₁)/∂S = λ → pure denominator (shrinkage) term.
		d := denom.Data()
		for i := range d {
			d[i] += cfg.SparsityLambda
		}
	}
	if cfg.DiversityLambda > 0 {
		// λ tr(Sᵀ S (𝟙𝟙ᵀ − I)): gradient 2λ S(𝟙𝟙ᵀ−I) ≥ 0 → denominator.
		k := s.Cols()
		ones := mat.NewDense(k, k)
		ones.Fill(1)
		for i := 0; i < k; i++ {
			ones.Set(i, i, 0)
		}
		denom.AddScaled(denom, cfg.DiversityLambda, mat.Product(s, ones))
	}
	if cfg.GuidedLambda > 0 && labels != nil {
		// λ‖S(i) − e_y(i)‖² on labeled rows: numerator += λ e_y(i),
		// denominator += λ S(i).
		k := s.Cols()
		for i, y := range labels {
			if y < 0 || y >= k || i >= s.Rows() {
				continue
			}
			numer.Set(i, y, numer.At(i, y)+cfg.GuidedLambda)
			srow := s.Row(i)
			drow := denom.Row(i)
			for j := range drow {
				drow[j] += cfg.GuidedLambda * srow[j]
			}
		}
	}
}

// Loss evaluates every term of the objective. tr is nil for the offline
// objective (Eq. 1); online (Eq. 19) it supplies the temporal user term,
// and the Lexicon field then measures α‖Sf − Sfw‖² via the prior recorded
// in tr.
func Loss(p *Problem, f *Factors, cfg Config, tr *temporalUser) LossBreakdown {
	var lb LossBreakdown
	lb.TweetFeature = p.Xp.ResidualFrobeniusSq(f.Sp, f.Hp, f.Sf)
	lb.UserFeature = p.Xu.ResidualFrobeniusSq(f.Su, f.Hu, f.Sf)
	lb.UserTweet = p.Xr.ResidualFrobeniusSq(f.Su, nil, f.Sp)

	prior := p.Sf0
	if tr != nil && tr.sfPrior != nil {
		prior = tr.sfPrior
	}
	if cfg.Alpha > 0 && prior != nil {
		lb.Lexicon = cfg.Alpha * mat.DiffFrobeniusSq(f.Sf, prior)
	}
	if cfg.Beta > 0 && p.Gu != nil {
		lb.GraphReg = cfg.Beta * sparse.GraphRegularization(p.Gu, f.Su)
	}
	if tr != nil && tr.gamma > 0 {
		diff := f.Su.Clone()
		diff.Sub(diff, tr.suw)
		tr.maskRowsWithoutHistory(diff)
		lb.Temporal = tr.gamma * diff.FrobeniusSq()
	}
	if cfg.SparsityLambda > 0 {
		lb.Sparsity = cfg.SparsityLambda * (f.Sp.Sum() + f.Su.Sum() + f.Sf.Sum())
	}
	if cfg.DiversityLambda > 0 {
		lb.Diversity = cfg.DiversityLambda * (diversityPenalty(f.Sp) + diversityPenalty(f.Su) + diversityPenalty(f.Sf))
	}
	if cfg.GuidedLambda > 0 {
		lb.Guided = cfg.GuidedLambda * (guidedPenalty(f.Sp, cfg.GuidedTweetLabels) + guidedPenalty(f.Su, cfg.GuidedUserLabels))
	}
	lb.Total = lb.TweetFeature + lb.UserFeature + lb.UserTweet +
		lb.Lexicon + lb.GraphReg + lb.Temporal + lb.Sparsity + lb.Diversity + lb.Guided
	return lb
}

func diversityPenalty(s *mat.Dense) float64 {
	g := mat.Gram(s)
	var off float64
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			if i != j {
				off += g.At(i, j)
			}
		}
	}
	return off
}

func guidedPenalty(s *mat.Dense, labels []int) float64 {
	if labels == nil {
		return 0
	}
	var sum float64
	k := s.Cols()
	for i, y := range labels {
		if y < 0 || y >= k || i >= s.Rows() {
			continue
		}
		row := s.Row(i)
		for j, v := range row {
			d := v
			if j == y {
				d = v - 1
			}
			sum += d * d
		}
	}
	return sum
}
