package core

import (
	"math"
	"testing"

	"triclust/internal/mat"
)

func TestCountingSourceSkipMatchesReplay(t *testing.T) {
	a := newCountingSource(7)
	want := make([]uint64, 100)
	for i := range want {
		want[i] = a.Uint64()
	}
	for _, pos := range []uint64{0, 1, 40, 99} {
		b := newCountingSource(7)
		b.skip(pos)
		for i := pos; i < uint64(len(want)); i++ {
			if got := b.Uint64(); got != want[i] {
				t.Fatalf("skip(%d): draw %d = %d, replay gives %d", pos, i, got, want[i])
			}
		}
		if b.n != uint64(len(want)) {
			t.Fatalf("skip(%d): draw count %d, want %d", pos, b.n, len(want))
		}
	}
}

func TestCountingSourceSeedsDiverge(t *testing.T) {
	a, b := newCountingSource(1), newCountingSource(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 identical draws across different seeds", same)
	}
}

// TestCountingSourceSkipConstantTime seeks to the largest possible draw
// position. A snapshot's RandDraws is attacker-controlled (the checksum is
// computable), so seeking must be O(1) — a linear replay would pin a CPU
// effectively forever on restore.
func TestCountingSourceSkipConstantTime(t *testing.T) {
	s := newCountingSource(3)
	s.skip(math.MaxUint64)
	if s.n != math.MaxUint64 {
		t.Fatalf("position %d after skip", s.n)
	}
	_ = s.Uint64() // position wraps; drawing must still work
}

func TestNewOnlineFromStateHugeRandDraws(t *testing.T) {
	o := NewOnline(DefaultOnlineConfig())
	st := o.ExportState()
	st.RandDraws = math.MaxUint64
	if _, err := NewOnlineFromState(DefaultOnlineConfig(), st); err != nil {
		t.Fatalf("restore with max draw position: %v", err)
	}
}

// steppedOnline runs two snapshots through a solver so its exported state
// carries warm-start cores, feature history and user history.
func steppedOnline(t *testing.T) *Online {
	t.Helper()
	_, snaps, lex := onlineFixture(t, 3)
	cfg := DefaultOnlineConfig()
	cfg.MaxIter = 5
	o := NewOnline(cfg)
	steps := 0
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		if _, err := o.Step(ti, snapshotProblem(s, lex, cfg.K), s.Active); err != nil {
			t.Fatalf("Step %d: %v", ti, err)
		}
		if steps++; steps == 2 {
			break
		}
	}
	if steps < 2 {
		t.Fatal("fixture yielded fewer than 2 non-empty snapshots")
	}
	return o
}

func TestNewOnlineFromStateRejectsIncoherentState(t *testing.T) {
	o := steppedOnline(t)
	cfg := o.Config()
	k := cfg.K
	if _, err := NewOnlineFromState(cfg, o.ExportState()); err != nil {
		t.Fatalf("unmutated state must restore: %v", err)
	}
	anyUser := func(st *OnlineState) int {
		for g, hist := range st.UserHist {
			if len(hist) > 0 {
				return g
			}
		}
		t.Fatal("no user history in state")
		return -1
	}
	cases := []struct {
		name   string
		mutate func(st *OnlineState)
	}{
		{"core dims", func(st *OnlineState) {
			st.LastHp = mat.NewDense(k+1, k)
			st.LastHu = mat.NewDense(k+1, k)
		}},
		{"one core missing", func(st *OnlineState) { st.LastHu = nil }},
		{"history cols", func(st *OnlineState) {
			st.SfHist[0].Sf = mat.NewDense(st.SfHist[0].Sf.Rows(), k+1)
		}},
		{"history rows mismatch", func(st *OnlineState) {
			if len(st.SfHist) < 2 {
				t.Skip("window kept only one snapshot")
			}
			last := len(st.SfHist) - 1
			st.SfHist[last].Sf = mat.NewDense(st.SfHist[0].Sf.Rows()+1, k)
			st.SfHist[last].Seen = make([]bool, st.SfHist[0].Sf.Rows()+1)
		}},
		{"seen length", func(st *OnlineState) {
			st.SfHist[0].Seen = st.SfHist[0].Seen[:len(st.SfHist[0].Seen)-1]
		}},
		{"user row length", func(st *OnlineState) {
			g := anyUser(st)
			st.UserHist[g][0].Row = []float64{1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := o.ExportState()
			tc.mutate(st)
			if _, err := NewOnlineFromState(cfg, st); err == nil {
				t.Fatal("incoherent state restored without error")
			}
		})
	}
}
