package core

import (
	"math"
	"math/rand"
	"testing"

	"triclust/internal/eval"
	"triclust/internal/lexicon"
	"triclust/internal/mat"
	"triclust/internal/sparse"
	"triclust/internal/synth"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// smallDataset builds a modest planted corpus and its tripartite graph.
func smallDataset(t testing.TB, seed int64) (*synth.Dataset, *tgraph.Graph) {
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.NumUsers = 80
	cfg.Days = 10
	cfg.ElectionDay = 7
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	g := tgraph.Build(d.Corpus, tgraph.BuildOptions{Weighting: text.TFIDF, MinDF: 2})
	return d, g
}

func problemFor(d *synth.Dataset, g *tgraph.Graph, k int) *Problem {
	lex := d.PlantedLexicon(0.4, 0.05, 11)
	lex.Merge(lexicon.Builtin())
	return &Problem{
		Xp:  g.Xp,
		Xu:  g.Xu,
		Xr:  g.Xr,
		Gu:  g.Gu,
		Sf0: lex.Sf0(g.Vocab, k, 0.8),
	}
}

func TestFitOfflineRecoversPlantedClusters(t *testing.T) {
	d, g := smallDataset(t, 42)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 60
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatalf("FitOffline: %v", err)
	}
	tweetAcc := eval.Accuracy(res.TweetClusters(), d.TweetClass)
	if tweetAcc < 0.70 {
		t.Fatalf("tweet accuracy = %.3f, want ≥ 0.70", tweetAcc)
	}
	userAcc := eval.Accuracy(res.UserClusters(), d.Corpus.UserLabels())
	if userAcc < 0.65 {
		t.Fatalf("user accuracy = %.3f, want ≥ 0.65", userAcc)
	}
}

func TestFitOfflineObjectiveNonIncreasing(t *testing.T) {
	d, g := smallDataset(t, 7)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 30
	cfg.Tol = -1 // run all sweeps
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 10 {
		t.Fatalf("history too short: %d", len(res.History))
	}
	// The multiplicative updates should drive the objective down. The
	// orthogonality Δ-terms make per-sweep monotonicity only approximate
	// (the paper's Figure 8 shows the same component-level wiggles), so
	// allow small excursions of up to 2%.
	for i := 1; i < len(res.History); i++ {
		prev, cur := res.History[i-1].Total, res.History[i].Total
		if cur > prev*1.02 {
			t.Fatalf("objective rose at iter %d: %.4f → %.4f", i, prev, cur)
		}
	}
	first, last := res.History[0].Total, res.History[len(res.History)-1].Total
	if last >= first {
		t.Fatalf("objective did not decrease: %.4f → %.4f", first, last)
	}
}

func TestFitOfflineFactorsStayNonNegativeAndFinite(t *testing.T) {
	d, g := smallDataset(t, 3)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 25
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range map[string]*mat.Dense{
		"Sp": res.Sp, "Su": res.Su, "Sf": res.Sf, "Hp": res.Hp, "Hu": res.Hu,
	} {
		if !m.IsFinite() {
			t.Fatalf("%s has non-finite entries", name)
		}
		for _, v := range m.Data() {
			if v < 0 {
				t.Fatalf("%s has negative entry %v", name, v)
			}
		}
	}
}

func TestFitOfflineConvergesBeforeMaxIter(t *testing.T) {
	d, g := smallDataset(t, 5)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 200
	cfg.Tol = 1e-3
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge in 200 iterations at tol 1e-3")
	}
	// Paper: r is around 10 to 100.
	if res.Iterations > 150 {
		t.Fatalf("took %d iterations", res.Iterations)
	}
}

func TestFitOfflineDeterministicGivenSeed(t *testing.T) {
	d, g := smallDataset(t, 9)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.MaxIter = 10
	a, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(a.Sp, b.Sp, 0) || !mat.Equal(a.Su, b.Su, 0) {
		t.Fatal("same seed produced different factors")
	}
}

func TestFitOfflineK2(t *testing.T) {
	d, g := smallDataset(t, 21)
	p := problemFor(d, g, 2)
	cfg := DefaultConfig()
	cfg.K = 2
	cfg.MaxIter = 40
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Score only pos/neg items.
	truth := make([]int, len(d.TweetClass))
	for i, c := range d.TweetClass {
		if c == lexicon.Neu {
			truth[i] = -1
		} else {
			truth[i] = c
		}
	}
	if acc := eval.Accuracy(res.TweetClusters(), truth); acc < 0.7 {
		t.Fatalf("k=2 accuracy = %.3f", acc)
	}
}

func TestFitOfflineValidatesProblem(t *testing.T) {
	p := &Problem{
		Xp: sparse.Zeros(3, 4),
		Xu: sparse.Zeros(2, 5), // wrong feature count
		Xr: sparse.Zeros(2, 3),
	}
	if _, err := FitOffline(p, DefaultConfig()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestFitOfflineEmptyGraphDoesNotCrash(t *testing.T) {
	p := &Problem{
		Xp: sparse.Zeros(4, 6),
		Xu: sparse.Zeros(3, 6),
		Xr: sparse.Zeros(3, 4),
	}
	cfg := DefaultConfig()
	cfg.MaxIter = 5
	cfg.LexiconInit = false
	cfg.Alpha = 0
	cfg.Beta = 0
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sp.IsFinite() || !res.Su.IsFinite() || !res.Sf.IsFinite() {
		t.Fatal("factors not finite on empty data")
	}
}

func TestFitOfflineNoRegularizers(t *testing.T) {
	d, g := smallDataset(t, 13)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.Alpha = 0
	cfg.Beta = 0
	cfg.MaxIter = 30
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb := res.FinalLoss()
	if lb.Lexicon != 0 || lb.GraphReg != 0 {
		t.Fatalf("regularizer losses should vanish: %+v", lb)
	}
}

func TestGraphRegularizationDisambiguatesUsers(t *testing.T) {
	// Four users, k=2. Users 2 and 3 are clearly positive/negative from
	// their words; users 0 and 1 post only ambiguous tweets, and their
	// *only* disambiguating signal is a retweet edge to user 2 / user 3
	// respectively. With β > 0 the Laplacian term must pull user 0 into
	// user 2's cluster and user 1 into user 3's.
	xp := sparse.FromDenseRows([][]float64{
		{4, 0},     // tweet 0 (user 2): positive words
		{0, 4},     // tweet 1 (user 3): negative words
		{0.5, 0.5}, // tweet 2 (user 0): ambiguous
		{0.5, 0.5}, // tweet 3 (user 1): ambiguous
	})
	xu := sparse.FromDenseRows([][]float64{
		{0.5, 0.5},
		{0.5, 0.5},
		{4, 0},
		{0, 4},
	})
	xr := sparse.FromDenseRows([][]float64{
		{0, 0, 1, 0},
		{0, 0, 0, 1},
		{1, 0, 0, 0},
		{0, 1, 0, 0},
	})
	gu := sparse.FromDenseRows([][]float64{
		{0, 0, 1, 0},
		{0, 0, 0, 1},
		{1, 0, 0, 0},
		{0, 1, 0, 0},
	})
	sf0 := mat.FromRows([][]float64{{0.9, 0.1}, {0.1, 0.9}})
	p := &Problem{Xp: xp, Xu: xu, Xr: xr, Gu: gu, Sf0: sf0}

	cfg := DefaultConfig()
	cfg.K = 2
	cfg.Alpha = 0.1
	cfg.Beta = 0.9
	cfg.MaxIter = 100
	cfg.Seed = 4
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uc := res.UserClusters()
	if uc[2] == uc[3] {
		t.Fatalf("anchor users not separated: %v", uc)
	}
	if uc[0] != uc[2] || uc[1] != uc[3] {
		t.Fatalf("graph regularization did not disambiguate: clusters %v", uc)
	}
}

func TestLossBreakdownSumsToTotal(t *testing.T) {
	d, g := smallDataset(t, 23)
	p := problemFor(d, g, 3)
	cfg := DefaultConfig()
	cfg.SparsityLambda = 0.01
	cfg.DiversityLambda = 0.01
	cfg.MaxIter = 5
	res, err := FitOffline(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb := res.FinalLoss()
	sum := lb.TweetFeature + lb.UserFeature + lb.UserTweet + lb.Lexicon +
		lb.GraphReg + lb.Temporal + lb.Sparsity + lb.Diversity + lb.Guided
	if math.Abs(sum-lb.Total) > 1e-9*(1+lb.Total) {
		t.Fatalf("breakdown sum %.6f != total %.6f", sum, lb.Total)
	}
}

func TestGuidedRegularizationImprovesAccuracy(t *testing.T) {
	d, g := smallDataset(t, 29)
	p := problemFor(d, g, 3)

	base := DefaultConfig()
	base.MaxIter = 40
	base.Seed = 2
	base.LexiconInit = false // make the task harder so guidance matters
	resBase, err := FitOffline(p, base)
	if err != nil {
		t.Fatal(err)
	}

	guided := base
	guided.GuidedLambda = 5
	// Reveal 30% of tweet labels.
	rng := rand.New(rand.NewSource(1))
	labels := make([]int, len(d.TweetClass))
	for i := range labels {
		if rng.Float64() < 0.3 {
			labels[i] = d.TweetClass[i]
		} else {
			labels[i] = -1
		}
	}
	guided.GuidedTweetLabels = labels
	resGuided, err := FitOffline(p, guided)
	if err != nil {
		t.Fatal(err)
	}

	accBase := eval.Accuracy(resBase.TweetClusters(), d.TweetClass)
	accGuided := eval.Accuracy(resGuided.TweetClusters(), d.TweetClass)
	if accGuided < accBase-0.02 {
		t.Fatalf("guidance hurt accuracy: %.3f vs %.3f", accGuided, accBase)
	}
}

func TestSparsityRegularizationShrinksFactors(t *testing.T) {
	d, g := smallDataset(t, 31)
	p := problemFor(d, g, 3)
	base := DefaultConfig()
	base.MaxIter = 20
	resBase, err := FitOffline(p, base)
	if err != nil {
		t.Fatal(err)
	}
	sp := base
	sp.SparsityLambda = 10
	resSp, err := FitOffline(p, sp)
	if err != nil {
		t.Fatal(err)
	}
	if resSp.Sp.Sum() >= resBase.Sp.Sum() {
		t.Fatalf("sparsity did not shrink Sp: %.2f vs %.2f", resSp.Sp.Sum(), resBase.Sp.Sum())
	}
}

func TestRelChange(t *testing.T) {
	if relChange(100, 99) != 0.01 {
		t.Fatalf("relChange = %v", relChange(100, 99))
	}
	if !math.IsInf(relChange(math.Inf(1), 5), 1) {
		t.Fatal("relChange from Inf should be Inf")
	}
	if relChange(0.5, 0.4) > 0.11 {
		t.Fatal("small-denominator guard broken")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.K != 3 || c.MaxIter != 100 || c.Tol != 1e-4 {
		t.Fatalf("withDefaults = %+v", c)
	}
}

func TestResultClusterAccessors(t *testing.T) {
	r := &Result{Factors: Factors{
		Sp: mat.FromRows([][]float64{{0.9, 0.1}, {0.2, 0.8}}),
		Su: mat.FromRows([][]float64{{0.1, 0.9}}),
		Sf: mat.FromRows([][]float64{{0.7, 0.3}}),
	}}
	if got := r.TweetClusters(); got[0] != 0 || got[1] != 1 {
		t.Fatalf("TweetClusters = %v", got)
	}
	if r.UserClusters()[0] != 1 || r.FeatureClusters()[0] != 0 {
		t.Fatal("cluster accessors wrong")
	}
	if r.FinalLoss().Total != 0 {
		t.Fatal("FinalLoss of empty history should be zero")
	}
}
