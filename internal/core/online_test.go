package core

import (
	"testing"

	"triclust/internal/eval"
	"triclust/internal/lexicon"
	"triclust/internal/mat"
	"triclust/internal/sparse"
	"triclust/internal/synth"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// onlineFixture generates a corpus and its per-day snapshots.
func onlineFixture(t testing.TB, seed int64) (*synth.Dataset, []*tgraph.Snapshot, *lexicon.Lexicon) {
	cfg := synth.DefaultConfig()
	cfg.Seed = seed
	cfg.NumUsers = 70
	cfg.Days = 8
	cfg.ElectionDay = 6
	cfg.TweetsPerUserDay = 1.2
	d, err := synth.Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	snaps := tgraph.SnapshotSeries(d.Corpus, 1, 2, text.TFIDF)
	lex := d.PlantedLexicon(0.4, 0.05, 5)
	lex.Merge(lexicon.Builtin())
	return d, snaps, lex
}

func snapshotProblem(s *tgraph.Snapshot, lex *lexicon.Lexicon, k int) *Problem {
	return &Problem{
		Xp:  s.Graph.Xp,
		Xu:  s.Graph.Xu,
		Xr:  s.Graph.Xr,
		Gu:  s.Graph.Gu,
		Sf0: lex.Sf0(s.Graph.Vocab, k, 0.8),
	}
}

func TestOnlineStepsAccumulateHistory(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 1)
	o := NewOnline(DefaultOnlineConfig())
	steps := 0
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		res, err := o.Step(ti, snapshotProblem(s, lex, 3), s.Active)
		if err != nil {
			t.Fatalf("Step %d: %v", ti, err)
		}
		if res.Iterations == 0 {
			t.Fatalf("Step %d did no work", ti)
		}
		steps++
	}
	if steps < 4 {
		t.Fatalf("only %d non-empty snapshots", steps)
	}
	if o.HistoryLen() == 0 || o.HistoryLen() >= o.Config().Window+1 {
		t.Fatalf("HistoryLen = %d, want in [1, %d]", o.HistoryLen(), o.Config().Window)
	}
	if o.KnownUsers() == 0 {
		t.Fatal("no user history recorded")
	}
}

func TestOnlineRejectsNonIncreasingTime(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 2)
	o := NewOnline(DefaultOnlineConfig())
	var first *tgraph.Snapshot
	for _, s := range snaps {
		if s.Graph.Xp.Rows() > 0 {
			first = s
			break
		}
	}
	if _, err := o.Step(5, snapshotProblem(first, lex, 3), first.Active); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Step(5, snapshotProblem(first, lex, 3), first.Active); err == nil {
		t.Fatal("expected error for repeated timestamp")
	}
	if _, err := o.Step(3, snapshotProblem(first, lex, 3), first.Active); err == nil {
		t.Fatal("expected error for earlier timestamp")
	}
}

func TestOnlineRejectsActiveMismatch(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 3)
	o := NewOnline(DefaultOnlineConfig())
	var s *tgraph.Snapshot
	for _, c := range snaps {
		if c.Graph.Xp.Rows() > 0 {
			s = c
			break
		}
	}
	if _, err := o.Step(0, snapshotProblem(s, lex, 3), s.Active[:1]); err == nil {
		t.Fatal("expected active-length error")
	}
}

func TestOnlineAccuracyReasonable(t *testing.T) {
	d, snaps, lex := onlineFixture(t, 4)
	o := NewOnline(DefaultOnlineConfig())
	var accSum float64
	var count int
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() < 10 {
			continue
		}
		res, err := o.Step(ti, snapshotProblem(s, lex, 3), s.Active)
		if err != nil {
			t.Fatal(err)
		}
		truth := make([]int, len(s.TweetIdx))
		for i, g := range s.TweetIdx {
			truth[i] = d.TweetClass[g]
		}
		accSum += eval.Accuracy(res.TweetClusters(), truth)
		count++
	}
	if count == 0 {
		t.Skip("no usable snapshots")
	}
	if avg := accSum / float64(count); avg < 0.65 {
		t.Fatalf("average online tweet accuracy = %.3f", avg)
	}
}

func TestOnlineBeatsColdStartOnUsers(t *testing.T) {
	// The temporal history should make user-level accuracy on later
	// snapshots at least as good as independently clustering each
	// snapshot (the mini-batch extreme).
	d, snaps, lex := onlineFixture(t, 6)

	userAccuracy := func(res *Result, s *tgraph.Snapshot, day int) (float64, int) {
		truth := make([]int, len(s.Active))
		for i, g := range s.Active {
			truth[i] = d.StanceAt(g, day)
		}
		return eval.Accuracy(res.UserClusters(), truth), len(truth)
	}

	onlineCfg := DefaultOnlineConfig()
	onlineCfg.MaxIter = 40
	o := NewOnline(onlineCfg)
	var onlineSum, miniSum float64
	var weight float64
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() < 10 {
			continue
		}
		p := snapshotProblem(s, lex, 3)
		resOnline, err := o.Step(ti, p, s.Active)
		if err != nil {
			t.Fatal(err)
		}
		miniCfg := DefaultConfig()
		miniCfg.MaxIter = 40
		resMini, err := FitOffline(p, miniCfg)
		if err != nil {
			t.Fatal(err)
		}
		if ti < 2 {
			continue // let history accumulate before comparing
		}
		ao, n := userAccuracy(resOnline, s, ti)
		am, _ := userAccuracy(resMini, s, ti)
		onlineSum += ao * float64(n)
		miniSum += am * float64(n)
		weight += float64(n)
	}
	if weight == 0 {
		t.Skip("no comparable snapshots")
	}
	online, mini := onlineSum/weight, miniSum/weight
	if online < mini-0.05 {
		t.Fatalf("online (%.3f) clearly worse than mini-batch (%.3f)", online, mini)
	}
}

func TestOnlineFactorsFinite(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 8)
	o := NewOnline(DefaultOnlineConfig())
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		res, err := o.Step(ti, snapshotProblem(s, lex, 3), s.Active)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Sp.IsFinite() || !res.Su.IsFinite() || !res.Sf.IsFinite() {
			t.Fatalf("non-finite factors at step %d", ti)
		}
		for _, v := range res.Su.Data() {
			if v < 0 {
				t.Fatal("negative Su entry")
			}
		}
	}
}

func TestOnlineLastUserEstimate(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 9)
	o := NewOnline(DefaultOnlineConfig())
	var tracked int = -1
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		if _, err := o.Step(ti, snapshotProblem(s, lex, 3), s.Active); err != nil {
			t.Fatal(err)
		}
		if tracked < 0 && len(s.Active) > 0 {
			tracked = s.Active[0]
		}
	}
	if tracked < 0 {
		t.Skip("no users")
	}
	est := o.LastUserEstimate(tracked)
	if est == nil || len(est) != 3 {
		t.Fatalf("LastUserEstimate = %v", est)
	}
	if o.LastUserEstimate(999999) != nil {
		t.Fatal("unknown user should return nil")
	}
}

func TestOnlineGammaZeroStillRuns(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 10)
	cfg := DefaultOnlineConfig()
	cfg.Gamma = 0
	o := NewOnline(cfg)
	ran := false
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		if _, err := o.Step(ti, snapshotProblem(s, lex, 3), s.Active); err != nil {
			t.Fatal(err)
		}
		ran = true
	}
	if !ran {
		t.Skip("no snapshots")
	}
}

func TestOnlineWindowPrunesHistory(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 11)
	cfg := DefaultOnlineConfig()
	cfg.Window = 2
	o := NewOnline(cfg)
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		if _, err := o.Step(ti, snapshotProblem(s, lex, 3), s.Active); err != nil {
			t.Fatal(err)
		}
		if o.HistoryLen() > cfg.Window {
			t.Fatalf("history grew beyond window: %d", o.HistoryLen())
		}
	}
}

func TestOnlineLossIncludesTemporalTerm(t *testing.T) {
	_, snaps, lex := onlineFixture(t, 12)
	o := NewOnline(DefaultOnlineConfig())
	sawTemporal := false
	for ti, s := range snaps {
		if s.Graph.Xp.Rows() == 0 {
			continue
		}
		res, err := o.Step(ti, snapshotProblem(s, lex, 3), s.Active)
		if err != nil {
			t.Fatal(err)
		}
		if ti > 0 && res.FinalLoss().Temporal > 0 {
			sawTemporal = true
		}
	}
	if !sawTemporal {
		t.Fatal("temporal loss never observed after the first snapshot")
	}
}

func TestDefaultOnlineConfigMatchesPaper(t *testing.T) {
	cfg := DefaultOnlineConfig()
	if cfg.Alpha != 0.9 || cfg.Tau != 0.9 || cfg.Gamma != 0.2 || cfg.Beta != 0.8 || cfg.Window != 2 {
		t.Fatalf("defaults %+v diverge from §5.2", cfg)
	}
}

func TestOnlinePriorFallsBackPerWord(t *testing.T) {
	// Build two snapshots over a 2-word vocabulary where word 1 never
	// occurs in the first snapshot: the second snapshot's temporal prior
	// must take word 0's row from history but word 1's row from the
	// lexicon prior (there are no intermediate results to reuse for it).
	sf0 := mat.FromRows([][]float64{{0.9, 0.1}, {0.1, 0.9}})
	mk := func(rows [][]float64) *Problem {
		xp := sparse.FromDenseRows(rows)
		return &Problem{
			Xp:  xp,
			Xu:  xp, // one user per tweet for simplicity
			Xr:  sparse.FromDenseRows([][]float64{{1, 0}, {0, 1}}),
			Sf0: sf0,
		}
	}
	cfg := DefaultOnlineConfig()
	cfg.K = 2
	cfg.MaxIter = 10
	o := NewOnline(cfg)

	// Snapshot 0: only word 0 used.
	if _, err := o.Step(0, mk([][]float64{{3, 0}, {2, 0}}), []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Snapshot 1: build the temporal prior and inspect it.
	p1 := mk([][]float64{{1, 1}, {1, 1}})
	tr := o.buildTemporal(1, p1, []int{0, 1})
	if tr.sfPrior == nil {
		t.Fatal("no prior built")
	}
	// Word 1 was unseen: its prior row must equal the lexicon row.
	if tr.sfPrior.At(1, 0) != sf0.At(1, 0) || tr.sfPrior.At(1, 1) != sf0.At(1, 1) {
		t.Fatalf("unseen word prior %v, want lexicon row %v",
			tr.sfPrior.Row(1), sf0.Row(1))
	}
	// Word 0 was seen: its prior row comes from the learned history and
	// will generally differ from the lexicon row.
	if tr.sfPrior.At(0, 0) == sf0.At(0, 0) && tr.sfPrior.At(0, 1) == sf0.At(0, 1) {
		t.Log("seen word row coincides with lexicon row (possible but unlikely)")
	}
}
