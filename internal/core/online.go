package core

import (
	"fmt"
	"math"
	"math/rand"

	"triclust/internal/mat"
)

// OnlineConfig extends Config with the temporal parameters of Eq. 19.
// In the online objective α re-weighs the feature temporal regularizer
// α‖Sf(t) − Sfw(t)‖² (the lexicon only seeds the very first snapshot).
type OnlineConfig struct {
	Config
	// Gamma weighs the user temporal regularizer γ‖Su(d,e)(t) − Suw(t)‖².
	Gamma float64
	// Tau ∈ (0,1] is the exponential decay of past results
	// (Sfw(t)=Σ τⁱ Sf(t−i)).
	Tau float64
	// Window is w: snapshots [t−w, t) contribute to the history
	// aggregates.
	Window int
}

// DefaultOnlineConfig returns the parameters the paper settles on for the
// online experiments (§5.2): α = τ = 0.9, γ = 0.2, β = 0.8, w = 2.
func DefaultOnlineConfig() OnlineConfig {
	cfg := DefaultConfig()
	cfg.Alpha = 0.9
	return OnlineConfig{Config: cfg, Gamma: 0.2, Tau: 0.9, Window: 2}
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	c.Config = c.Config.withDefaults()
	if c.Tau == 0 {
		c.Tau = 0.9
	}
	if c.Window == 0 {
		c.Window = 2
	}
	return c
}

// Validate checks the configuration the solvers would actually run with
// (zero-valued fields are replaced by their defaults before checking, so
// an unset field never fails validation). It returns a descriptive error
// for values the update rules cannot handle: a non-positive window, a
// decay outside (0,1], negative regularizer weights, or a degenerate
// iteration budget.
func (c OnlineConfig) Validate() error {
	d := c.withDefaults()
	if d.K < 1 {
		return fmt.Errorf("core: k must be at least 1 (got %d)", d.K)
	}
	if d.MaxIter < 1 {
		return fmt.Errorf("core: MaxIter must be positive (got %d)", c.MaxIter)
	}
	if d.Alpha < 0 || d.Beta < 0 || d.Gamma < 0 {
		return fmt.Errorf("core: regularizer weights must be non-negative (alpha=%g, beta=%g, gamma=%g)",
			d.Alpha, d.Beta, d.Gamma)
	}
	if d.Tau <= 0 || d.Tau > 1 {
		return fmt.Errorf("core: temporal decay tau must lie in (0,1] (got %g)", c.Tau)
	}
	if d.Window < 1 {
		return fmt.Errorf("core: history window must be positive (got %d)", c.Window)
	}
	if d.SparsityLambda < 0 || d.DiversityLambda < 0 || d.GuidedLambda < 0 {
		return fmt.Errorf("core: extension regularizer weights must be non-negative")
	}
	return nil
}

// temporalUser carries the per-snapshot user history terms consumed by
// updateSu (Eq. 24 for rows without history, Eq. 26 for rows with one)
// and by Loss.
type temporalUser struct {
	gamma   float64
	suw     *mat.Dense // m_t×k; zero rows where hasHist is false
	hasHist []bool
	sfPrior *mat.Dense // Sfw(t); replaces Sf0 in the Sf update and loss
}

// maskRowsWithoutHistory zeroes the rows of d belonging to users without
// history so the γ terms only touch evolving/disappeared users.
func (tr *temporalUser) maskRowsWithoutHistory(d *mat.Dense) {
	for i, ok := range tr.hasHist {
		if ok {
			continue
		}
		row := d.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// addTemporalTerms adds γ·Suw to the numerator and γ·Su to the denominator
// on rows with history (the extra terms of Eq. 26 relative to Eq. 24).
func (tr *temporalUser) addTemporalTerms(numer, denom, su *mat.Dense) {
	for i, ok := range tr.hasHist {
		if !ok {
			continue
		}
		nrow, drow := numer.Row(i), denom.Row(i)
		wrow, srow := tr.suw.Row(i), su.Row(i)
		for j := range nrow {
			nrow[j] += tr.gamma * wrow[j]
			drow[j] += tr.gamma * srow[j]
		}
	}
}

type sfSnapshot struct {
	time int
	sf   *mat.Dense
	// seen[j] is true when feature j actually occurred in the
	// snapshot's data; rows of sf for unseen words carry no evidence.
	seen []bool
}

type userSnapshot struct {
	time int
	row  []float64
}

// Online is the stateful dynamic tri-clustering solver (Algorithm 2).
// Feed it one snapshot per timestamp via Step; it carries the decayed
// history Sfw / Suw across calls.
type Online struct {
	cfg      OnlineConfig
	sfHist   []sfSnapshot
	userHist map[int][]userSnapshot
	lastHp   *mat.Dense
	lastHu   *mat.Dense
	src      *countingSource
	rng      *rand.Rand
}

// NewOnline returns a solver with empty history. Its random stream is
// drawn through a draw-counting source so the solver's exact position in
// the stream can be exported and replayed (see OnlineState).
func NewOnline(cfg OnlineConfig) *Online {
	cfg = cfg.withDefaults()
	src := newCountingSource(cfg.Seed)
	return &Online{
		cfg:      cfg,
		userHist: make(map[int][]userSnapshot),
		src:      src,
		rng:      rand.New(src),
	}
}

// Config returns the solver's configuration.
func (o *Online) Config() OnlineConfig { return o.cfg }

// HistoryLen returns the number of feature snapshots currently retained.
func (o *Online) HistoryLen() int { return len(o.sfHist) }

// Step processes the snapshot at timestamp t. p holds the snapshot's
// matrices with tweets and *active users* locally indexed; active[i] is
// the global id of local user i (so history can follow users across
// snapshots). Timestamps must be strictly increasing across calls.
func (o *Online) Step(t int, p *Problem, active []int) (*Result, error) {
	cfg := o.cfg
	if err := p.Validate(cfg.K); err != nil {
		return nil, err
	}
	if len(active) != p.Xu.Rows() {
		return nil, fmt.Errorf("core: %d active users for %d Xu rows", len(active), p.Xu.Rows())
	}
	if n := len(o.sfHist); n > 0 && o.sfHist[n-1].time >= t {
		return nil, fmt.Errorf("core: non-increasing timestamp %d after %d", t, o.sfHist[n-1].time)
	}

	// Rescale the relative weights to this snapshot's data magnitude
	// (see regScales).
	aScale, bScale, gScale := regScales(p)
	cfg.Alpha *= aScale
	cfg.Beta *= bScale

	tr := o.buildTemporal(t, p, active)
	tr.gamma = o.cfg.Gamma * gScale

	// Line 1 of Algorithm 2: initialize Sf(t) = Sfw(t) and
	// Su(d,e)(t) = Suw(t); line 2: random init for the rest. Beyond the
	// letter of the algorithm we also propagate the *learned* feature
	// sentiments into the Sp/Su seeding (Observation 1: previous feature
	// results improve the clustering of new tweets) and warm-start the
	// association cores from the previous snapshot.
	f := initFactors(p, cfg.Config, o.rng)
	if tr.sfPrior != nil {
		f.Sf = tr.sfPrior.Clone()
		mat.PerturbPositive(o.rng, f.Sf, 0.01)
		if cfg.LexiconInit {
			f.Sp = p.Xp.MulDense(tr.sfPrior)
			f.Sp.NormalizeRowsL1()
			mat.PerturbPositive(o.rng, f.Sp, 0.05)
			f.Su = p.Xu.MulDense(tr.sfPrior)
			f.Su.NormalizeRowsL1()
			mat.PerturbPositive(o.rng, f.Su, 0.05)
		}
	}
	if o.lastHp != nil {
		f.Hp = o.lastHp.Clone()
		f.Hu = o.lastHu.Clone()
	}
	for i, ok := range tr.hasHist {
		if ok {
			copy(f.Su.Row(i), tr.suw.Row(i))
			for j, v := range f.Su.Row(i) {
				if v <= 0 {

					f.Su.Row(i)[j] = 1e-6
				}
			}
		}
	}

	res := &Result{Factors: f, History: make([]LossBreakdown, 0, cfg.MaxIter)}
	ws := mat.NewWorkspace()
	prev := math.Inf(1)
	for it := 0; it < cfg.MaxIter; it++ {
		// Lines 4–8 of Algorithm 2.
		updateSf(p, &f, cfg.Config, tr.sfPrior, ws)
		updateSp(p, &f, cfg.Config, ws)
		updateHp(p, &f, ws)
		updateHu(p, &f, ws)
		updateSu(p, &f, cfg.Config, tr, ws)

		loss := Loss(p, &f, cfg.Config, tr, ws)
		res.History = append(res.History, loss)
		res.Iterations = it + 1
		if relChange(prev, loss.Total) < cfg.Tol {
			res.Converged = true
			break
		}
		prev = loss.Total
	}
	res.Factors = f

	o.lastHp, o.lastHu = f.Hp.Clone(), f.Hu.Clone()
	o.record(t, p, &f, active)
	return res, nil
}

// buildTemporal assembles Sfw(t), Suw(t) and the history mask from the
// retained snapshots within [t−w, t) as the τ-decayed weighted average
//
//	Sfw(t) = Σᵢ τ^(i−1) Sf(t−i) / Σᵢ τ^(i−1)
//
// i.e. τ is a pure recency weight ("an exponential decay is used to
// forget out-of-date results", §4). Eq. 18's literal unnormalized sum
// also scales the target magnitude by Στⁱ, which couples τ to the
// factorization's scale and destabilizes the multiplicative updates
// (small τ shrinks the prior toward zero, collapsing clusters); the
// normalized form keeps the paper's forgetting semantics with the target
// on the scale of one snapshot. τ = 0 degenerates to "previous snapshot
// only"; an empty window falls back to the lexicon prior, matching the
// offline framework's behaviour on the first snapshot.
func (o *Online) buildTemporal(t int, p *Problem, active []int) *temporalUser {
	cfg := o.cfg
	tr := &temporalUser{gamma: cfg.Gamma, hasHist: make([]bool, len(active))}
	tr.suw = mat.NewDense(len(active), cfg.K)

	var totalW float64
	var acc *mat.Dense
	var seenAny []bool
	for _, s := range o.sfHist {
		age := t - s.time
		if age < 1 || age >= cfg.Window {
			continue
		}
		w := math.Pow(cfg.Tau, float64(age-1))
		if acc == nil {
			acc = mat.NewDense(s.sf.Rows(), s.sf.Cols())
			seenAny = make([]bool, s.sf.Rows())
		}
		acc.AddScaled(acc, w, s.sf)
		for j, sj := range s.seen {
			if sj && j < len(seenAny) {
				seenAny[j] = true
			}
		}
		totalW += w
	}
	if acc != nil && totalW > 0 && acc.Rows() == p.Xp.Cols() {
		acc.Scale(1/totalW, acc)
		// Words that never occurred inside the window left no
		// "intermediate clustering results" to utilize — their history
		// rows are pure solver noise. Fall back to the lexicon prior
		// for those rows (the offline behaviour), keeping the learned
		// rows for words with actual evidence.
		if p.Sf0 != nil {
			for j, sj := range seenAny {
				if !sj {
					copy(acc.Row(j), p.Sf0.Row(j))
				}
			}
		}
		tr.sfPrior = acc
	} else if p.Sf0 != nil {
		// First snapshot, τ = 0, or vocabulary mismatch: fall back to
		// the lexicon prior, as in the offline framework.
		tr.sfPrior = p.Sf0
	}

	// Suw rows per active user (same unnormalized decayed sum).
	for i, g := range active {
		hist := o.userHist[g]
		var wsum float64
		row := tr.suw.Row(i)
		for _, h := range hist {
			age := t - h.time
			if age < 1 || age >= cfg.Window {
				continue
			}
			w := math.Pow(cfg.Tau, float64(age-1))
			for j, v := range h.row {
				if j < len(row) {
					row[j] += w * v
				}
			}
			wsum += w
		}
		if wsum > 0 {
			tr.hasHist[i] = true
			for j := range row {
				row[j] /= wsum
			}
		}
	}
	return tr
}

// record retains the snapshot's Sf and the active users' Su rows, pruning
// entries that fell out of the window. Sf is stored row-normalized: on a
// thin snapshot most vocabulary words receive no data evidence and their
// rows only shrink (the denominator's global k×k term applies to every
// row), so recording raw magnitudes would compound into a collapsing
// feature memory across snapshots; the row's class *distribution* is the
// information Observation 1 says persists.
func (o *Online) record(t int, p *Problem, f *Factors, active []int) {
	sf := f.Sf.Clone()
	sf.NormalizeRowsL1()
	seen := make([]bool, p.Xp.Cols())
	for _, cs := range [][]float64{p.Xp.ColSums(), p.Xu.ColSums()} {
		for j, v := range cs {
			if v != 0 {
				seen[j] = true
			}
		}
	}
	o.sfHist = append(o.sfHist, sfSnapshot{time: t, sf: sf, seen: seen})
	minTime := t - o.cfg.Window + 1
	pruned := o.sfHist[:0]
	for _, s := range o.sfHist {
		if s.time >= minTime {
			pruned = append(pruned, s)
		}
	}
	o.sfHist = pruned

	for i, g := range active {
		row := append([]float64(nil), f.Su.Row(i)...)
		hist := append(o.userHist[g], userSnapshot{time: t, row: row})
		kept := hist[:0]
		for _, h := range hist {
			if h.time >= minTime {
				kept = append(kept, h)
			}
		}
		if len(kept) == 0 {
			// Keep the newest row regardless so LastUserEstimate can
			// still report long-disappeared users (it carries no weight
			// in Suw once outside the window).
			kept = append(kept, hist[len(hist)-1])
		}
		o.userHist[g] = kept
	}
}

// LastUserEstimate returns the most recent Su row recorded for global user
// g, or nil if the user has never been active. The experiments use it to
// score disappeared users at later timestamps (their sentiment persists
// per Observation 2).
func (o *Online) LastUserEstimate(g int) []float64 {
	hist := o.userHist[g]
	if len(hist) == 0 {
		return nil
	}
	return append([]float64(nil), hist[len(hist)-1].row...)
}

// KnownUsers returns the number of users with recorded history.
func (o *Online) KnownUsers() int { return len(o.userHist) }

// LastTime returns the timestamp of the most recent processed snapshot,
// or ok = false before the first one. It survives snapshot/restore: the
// retained feature history always includes the latest snapshot.
func (o *Online) LastTime() (t int, ok bool) {
	if n := len(o.sfHist); n > 0 {
		return o.sfHist[n-1].time, true
	}
	return 0, false
}
