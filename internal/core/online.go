package core

import (
	"fmt"
	"math"
	"math/rand"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// OnlineConfig extends Config with the temporal parameters of Eq. 19.
// In the online objective α re-weighs the feature temporal regularizer
// α‖Sf(t) − Sfw(t)‖² (the lexicon only seeds the very first snapshot).
type OnlineConfig struct {
	Config
	// Gamma weighs the user temporal regularizer γ‖Su(d,e)(t) − Suw(t)‖².
	Gamma float64
	// Tau ∈ (0,1] is the exponential decay of past results
	// (Sfw(t)=Σ τⁱ Sf(t−i)).
	Tau float64
	// Window is w: snapshots [t−w, t) contribute to the history
	// aggregates.
	Window int
}

// DefaultOnlineConfig returns the parameters the paper settles on for the
// online experiments (§5.2): α = τ = 0.9, γ = 0.2, β = 0.8, w = 2.
func DefaultOnlineConfig() OnlineConfig {
	cfg := DefaultConfig()
	cfg.Alpha = 0.9
	return OnlineConfig{Config: cfg, Gamma: 0.2, Tau: 0.9, Window: 2}
}

func (c OnlineConfig) withDefaults() OnlineConfig {
	c.Config = c.Config.withDefaults()
	if c.Tau == 0 {
		c.Tau = 0.9
	}
	if c.Window == 0 {
		c.Window = 2
	}
	return c
}

// Validate checks the configuration the solvers would actually run with
// (zero-valued fields are replaced by their defaults before checking, so
// an unset field never fails validation). It returns a descriptive error
// for values the update rules cannot handle: a non-positive window, a
// decay outside (0,1], negative regularizer weights, or a degenerate
// iteration budget.
func (c OnlineConfig) Validate() error {
	d := c.withDefaults()
	if d.K < 1 {
		return fmt.Errorf("core: k must be at least 1 (got %d)", d.K)
	}
	if d.MaxIter < 1 {
		return fmt.Errorf("core: MaxIter must be positive (got %d)", c.MaxIter)
	}
	if d.Alpha < 0 || d.Beta < 0 || d.Gamma < 0 {
		return fmt.Errorf("core: regularizer weights must be non-negative (alpha=%g, beta=%g, gamma=%g)",
			d.Alpha, d.Beta, d.Gamma)
	}
	if d.Tau <= 0 || d.Tau > 1 {
		return fmt.Errorf("core: temporal decay tau must lie in (0,1] (got %g)", c.Tau)
	}
	if d.Window < 1 {
		return fmt.Errorf("core: history window must be positive (got %d)", c.Window)
	}
	if d.SparsityLambda < 0 || d.DiversityLambda < 0 || d.GuidedLambda < 0 {
		return fmt.Errorf("core: extension regularizer weights must be non-negative")
	}
	return nil
}

// temporalUser carries the per-snapshot user history terms consumed by
// updateSu (Eq. 24 for rows without history, Eq. 26 for rows with one)
// and by Loss.
type temporalUser struct {
	gamma   float64
	suw     *mat.Dense // m_t×k; zero rows where hasHist is false
	hasHist []bool
	sfPrior *mat.Dense // Sfw(t); replaces Sf0 in the Sf update and loss
}

// maskRowsWithoutHistory zeroes the rows of d belonging to users without
// history so the γ terms only touch evolving/disappeared users.
func (tr *temporalUser) maskRowsWithoutHistory(d *mat.Dense) {
	for i, ok := range tr.hasHist {
		if ok {
			continue
		}
		row := d.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// addTemporalTerms adds γ·Suw to the numerator and γ·Su to the denominator
// on rows with history (the extra terms of Eq. 26 relative to Eq. 24).
func (tr *temporalUser) addTemporalTerms(numer, denom, su *mat.Dense) {
	for i, ok := range tr.hasHist {
		if !ok {
			continue
		}
		nrow, drow := numer.Row(i), denom.Row(i)
		wrow, srow := tr.suw.Row(i), su.Row(i)
		for j := range nrow {
			nrow[j] += tr.gamma * wrow[j]
			drow[j] += tr.gamma * srow[j]
		}
	}
}

type sfSnapshot struct {
	time int
	sf   *mat.Dense
	// seen[j] is true when feature j actually occurred in the
	// snapshot's data; rows of sf for unseen words carry no evidence.
	seen []bool
}

type userSnapshot struct {
	time int
	row  []float64
}

// Online is the stateful dynamic tri-clustering solver (Algorithm 2).
// Feed it one snapshot per timestamp via Step; it carries the decayed
// history Sfw / Suw across calls.
//
// Beyond the algorithmic state the solver owns the per-step scratch — a
// persistent kernel workspace, the temporal-aggregate buffers and free
// lists recycling pruned history storage — so a long stream of Steps
// allocates only the result factors that escape to the caller.
type Online struct {
	cfg      OnlineConfig
	sfHist   []sfSnapshot
	userHist map[int][]userSnapshot
	lastHp   *mat.Dense
	lastHu   *mat.Dense
	src      *countingSource
	rng      *rand.Rand

	// Reused per-step scratch (never escapes a Step call).
	ws      *mat.Workspace
	tr      temporalUser
	suw     *mat.Dense
	acc     *mat.Dense
	seenAny []bool
	// Free lists recycling the storage of history entries pruned by
	// record, so the bounded-window history reaches a steady state with
	// no per-step allocation.
	sfFree   []*mat.Dense
	seenFree [][]bool
	rowFree  [][]float64
}

// NewOnline returns a solver with empty history. Its random stream is
// drawn through a draw-counting source so the solver's exact position in
// the stream can be exported and replayed (see OnlineState).
func NewOnline(cfg OnlineConfig) *Online {
	cfg = cfg.withDefaults()
	src := newCountingSource(cfg.Seed)
	return &Online{
		cfg:      cfg,
		userHist: make(map[int][]userSnapshot),
		src:      src,
		rng:      rand.New(src),
		ws:       mat.NewWorkspace(),
	}
}

// Config returns the solver's configuration.
func (o *Online) Config() OnlineConfig { return o.cfg }

// RandDraws returns the number of raw draws consumed from the seeded
// random source so far — the solver's exact position in its replayable
// random stream. Journal records store it as a replay fingerprint.
func (o *Online) RandDraws() uint64 { return o.src.n }

// HistoryLen returns the number of feature snapshots currently retained.
func (o *Online) HistoryLen() int { return len(o.sfHist) }

// Step processes the snapshot at timestamp t. p holds the snapshot's
// matrices with tweets and *active users* locally indexed; active[i] is
// the global id of local user i (so history can follow users across
// snapshots). Timestamps must be strictly increasing across calls.
func (o *Online) Step(t int, p *Problem, active []int) (*Result, error) {
	cfg := o.cfg
	if err := p.Validate(cfg.K); err != nil {
		return nil, err
	}
	if len(active) != p.Xu.Rows() {
		return nil, fmt.Errorf("core: %d active users for %d Xu rows", len(active), p.Xu.Rows())
	}
	if n := len(o.sfHist); n > 0 && o.sfHist[n-1].time >= t {
		return nil, fmt.Errorf("core: non-increasing timestamp %d after %d", t, o.sfHist[n-1].time)
	}

	// Rescale the relative weights to this snapshot's data magnitude
	// (see regScales).
	aScale, bScale, gScale := regScales(p)
	cfg.Alpha *= aScale
	cfg.Beta *= bScale

	tr := o.buildTemporal(t, p, active)
	tr.gamma = o.cfg.Gamma * gScale

	// Line 1 of Algorithm 2: initialize Sf(t) = Sfw(t) and
	// Su(d,e)(t) = Suw(t); line 2: random init for the rest. Beyond the
	// letter of the algorithm we also propagate the *learned* feature
	// sentiments into the Sp/Su seeding (Observation 1: previous feature
	// results improve the clustering of new tweets) and warm-start the
	// association cores from the previous snapshot.
	f := o.initStepFactors(p, cfg.Config, tr)
	for i, ok := range tr.hasHist {
		if ok {
			copy(f.Su.Row(i), tr.suw.Row(i))
			for j, v := range f.Su.Row(i) {
				if v <= 0 {

					f.Su.Row(i)[j] = 1e-6
				}
			}
		}
	}

	res := &Result{Factors: f, History: make([]LossBreakdown, 0, cfg.MaxIter)}
	ws := o.ws
	prev := math.Inf(1)
	for it := 0; it < cfg.MaxIter; it++ {
		// Lines 4–8 of Algorithm 2.
		updateSf(p, &f, cfg.Config, tr.sfPrior, ws)
		updateSp(p, &f, cfg.Config, ws)
		updateHp(p, &f, ws)
		updateHu(p, &f, ws)
		updateSu(p, &f, cfg.Config, tr, ws)

		loss := Loss(p, &f, cfg.Config, tr, ws)
		res.History = append(res.History, loss)
		res.Iterations = it + 1
		if relChange(prev, loss.Total) < cfg.Tol {
			res.Converged = true
			break
		}
		prev = loss.Total
	}
	res.Factors = f

	if o.lastHp != nil && o.lastHp.Dims(f.Hp.Rows(), f.Hp.Cols()) {
		o.lastHp.CopyFrom(f.Hp)
		o.lastHu.CopyFrom(f.Hu)
	} else {
		o.lastHp, o.lastHu = f.Hp.Clone(), f.Hu.Clone()
	}
	o.record(t, p, &f, active)
	return res, nil
}

// initStepFactors builds the starting factors of one Step. It computes
// exactly what initFactors plus the Sfw/warm-start overrides used to, but
// skips materializing intermediates that the overrides immediately
// replace. The random stream advances through the skipped initializers
// draw-for-draw (every initializer consumes one uniform draw per matrix
// element regardless of branch), so results are bit-identical to the
// straightforward construction.
func (o *Online) initStepFactors(p *Problem, cfg Config, tr *temporalUser) Factors {
	n, l := p.Xp.Rows(), p.Xp.Cols()
	m := p.Xu.Rows()
	k := cfg.K
	var f Factors

	// Sf: initFactors' version is replaced whenever a temporal prior
	// exists (it almost always does: the lexicon prior is its fallback).
	switch {
	case tr.sfPrior != nil:
		o.skipDraws(l * k)
	case p.Sf0 != nil:
		f.Sf = p.Sf0.Clone()
		mat.PerturbPositive(o.rng, f.Sf, 0.01)
	default:
		f.Sf = mat.RandomNonNegative(o.rng, l, k, 0.1, 1)
	}
	// Sp / Su: the lexicon-vote seeding is recomputed against the
	// temporal prior below; skip the vote against Sf0 it would discard.
	lexVote := cfg.LexiconInit && p.Sf0 != nil
	replaceVotes := tr.sfPrior != nil && cfg.LexiconInit
	switch {
	case replaceVotes:
		o.skipDraws(n*k + m*k)
	case lexVote:
		f.Sp = p.Xp.MulDense(p.Sf0)
		f.Sp.NormalizeRowsL1()
		mat.PerturbPositive(o.rng, f.Sp, 0.05)
		f.Su = p.Xu.MulDense(p.Sf0)
		f.Su.NormalizeRowsL1()
		mat.PerturbPositive(o.rng, f.Su, 0.05)
	default:
		f.Sp = mat.RandomNonNegative(o.rng, n, k, 0.1, 1)
		f.Su = mat.RandomNonNegative(o.rng, m, k, 0.1, 1)
	}
	// Hp / Hu: warm-started from the previous snapshot when one exists.
	if o.lastHp != nil {
		o.skipDraws(2 * k * k)
		f.Hp = o.lastHp.Clone()
		f.Hu = o.lastHu.Clone()
	} else {
		f.Hp = mat.Identity(k)
		mat.PerturbPositive(o.rng, f.Hp, 0.05)
		f.Hu = mat.Identity(k)
		mat.PerturbPositive(o.rng, f.Hu, 0.05)
	}
	// The temporal-prior overrides (the draws initFactors never made).
	if tr.sfPrior != nil {
		f.Sf = tr.sfPrior.Clone()
		mat.PerturbPositive(o.rng, f.Sf, 0.01)
		if cfg.LexiconInit {
			f.Sp = p.Xp.MulDense(tr.sfPrior)
			f.Sp.NormalizeRowsL1()
			mat.PerturbPositive(o.rng, f.Sp, 0.05)
			f.Su = p.Xu.MulDense(tr.sfPrior)
			f.Su.NormalizeRowsL1()
			mat.PerturbPositive(o.rng, f.Su, 0.05)
		}
	}
	return f
}

// skipDraws consumes n uniform draws exactly as the skipped initializer
// would have (one Float64 per matrix element), keeping the replayable
// stream position identical to the unskipped construction.
func (o *Online) skipDraws(n int) {
	for i := 0; i < n; i++ {
		o.rng.Float64()
	}
}

// buildTemporal assembles Sfw(t), Suw(t) and the history mask from the
// retained snapshots within [t−w, t) as the τ-decayed weighted average
//
//	Sfw(t) = Σᵢ τ^(i−1) Sf(t−i) / Σᵢ τ^(i−1)
//
// i.e. τ is a pure recency weight ("an exponential decay is used to
// forget out-of-date results", §4). Eq. 18's literal unnormalized sum
// also scales the target magnitude by Στⁱ, which couples τ to the
// factorization's scale and destabilizes the multiplicative updates
// (small τ shrinks the prior toward zero, collapsing clusters); the
// normalized form keeps the paper's forgetting semantics with the target
// on the scale of one snapshot. τ = 0 degenerates to "previous snapshot
// only"; an empty window falls back to the lexicon prior, matching the
// offline framework's behaviour on the first snapshot.
func (o *Online) buildTemporal(t int, p *Problem, active []int) *temporalUser {
	cfg := o.cfg
	tr := &o.tr
	*tr = temporalUser{gamma: cfg.Gamma, hasHist: reuseBools(tr.hasHist, len(active))}
	o.suw = mat.ReuseDense(o.suw, len(active), cfg.K)
	tr.suw = o.suw

	var totalW float64
	var acc *mat.Dense
	var seenAny []bool
	for _, s := range o.sfHist {
		age := t - s.time
		if age < 1 || age >= cfg.Window {
			continue
		}
		w := math.Pow(cfg.Tau, float64(age-1))
		if acc == nil {
			o.acc = mat.ReuseDense(o.acc, s.sf.Rows(), s.sf.Cols())
			acc = o.acc
			seenAny = reuseBools(o.seenAny, s.sf.Rows())
			o.seenAny = seenAny
		}
		acc.AddScaled(acc, w, s.sf)
		for j, sj := range s.seen {
			if sj && j < len(seenAny) {
				seenAny[j] = true
			}
		}
		totalW += w
	}
	if acc != nil && totalW > 0 && acc.Rows() == p.Xp.Cols() {
		acc.Scale(1/totalW, acc)
		// Words that never occurred inside the window left no
		// "intermediate clustering results" to utilize — their history
		// rows are pure solver noise. Fall back to the lexicon prior
		// for those rows (the offline behaviour), keeping the learned
		// rows for words with actual evidence.
		if p.Sf0 != nil {
			for j, sj := range seenAny {
				if !sj {
					copy(acc.Row(j), p.Sf0.Row(j))
				}
			}
		}
		tr.sfPrior = acc
	} else if p.Sf0 != nil {
		// First snapshot, τ = 0, or vocabulary mismatch: fall back to
		// the lexicon prior, as in the offline framework.
		tr.sfPrior = p.Sf0
	}

	// Suw rows per active user (same unnormalized decayed sum).
	for i, g := range active {
		hist := o.userHist[g]
		var wsum float64
		row := tr.suw.Row(i)
		for _, h := range hist {
			age := t - h.time
			if age < 1 || age >= cfg.Window {
				continue
			}
			w := math.Pow(cfg.Tau, float64(age-1))
			for j, v := range h.row {
				if j < len(row) {
					row[j] += w * v
				}
			}
			wsum += w
		}
		if wsum > 0 {
			tr.hasHist[i] = true
			for j := range row {
				row[j] /= wsum
			}
		}
	}
	return tr
}

// record retains the snapshot's Sf and the active users' Su rows, pruning
// entries that fell out of the window. Sf is stored row-normalized: on a
// thin snapshot most vocabulary words receive no data evidence and their
// rows only shrink (the denominator's global k×k term applies to every
// row), so recording raw magnitudes would compound into a collapsing
// feature memory across snapshots; the row's class *distribution* is the
// information Observation 1 says persists.
func (o *Online) record(t int, p *Problem, f *Factors, active []int) {
	sf := o.getHistSf(f.Sf.Rows(), f.Sf.Cols())
	sf.CopyFrom(f.Sf)
	sf.NormalizeRowsL1()
	seen := o.getHistSeen(p.Xp.Cols())
	markNonzeroCols(seen, p.Xp)
	markNonzeroCols(seen, p.Xu)
	o.sfHist = append(o.sfHist, sfSnapshot{time: t, sf: sf, seen: seen})
	minTime := t - o.cfg.Window + 1
	pruned := o.sfHist[:0]
	for _, s := range o.sfHist {
		if s.time >= minTime {
			pruned = append(pruned, s)
		} else {
			o.putHist(s)
		}
	}
	o.sfHist = pruned

	for i, g := range active {
		row := o.getHistRow(f.Su.Cols())
		copy(row, f.Su.Row(i))
		hist := append(o.userHist[g], userSnapshot{time: t, row: row})
		// The just-appended time-t row always satisfies t >= minTime
		// (Window >= 1), so kept is never empty and LastUserEstimate can
		// still report long-disappeared users from their newest row.
		kept := hist[:0]
		for _, h := range hist {
			if h.time >= minTime {
				kept = append(kept, h)
			} else {
				o.putHistRow(h.row)
			}
		}
		o.userHist[g] = kept
	}
}

// getHistSf / getHistSeen / getHistRow draw history storage from the
// free lists fed by pruning, so the bounded-window history stops
// allocating once warm; putHist returns a pruned snapshot's storage.
func (o *Online) getHistSf(rows, cols int) *mat.Dense {
	for i := len(o.sfFree) - 1; i >= 0; i-- {
		m := o.sfFree[i]
		o.sfFree = o.sfFree[:i]
		if m.Dims(rows, cols) {
			return m
		}
	}
	return mat.NewDense(rows, cols)
}

func (o *Online) getHistSeen(n int) []bool {
	if last := len(o.seenFree) - 1; last >= 0 {
		s := o.seenFree[last]
		o.seenFree = o.seenFree[:last]
		if cap(s) >= n {
			s = s[:n]
			for i := range s {
				s[i] = false
			}
			return s
		}
	}
	return make([]bool, n)
}

func (o *Online) getHistRow(k int) []float64 {
	if last := len(o.rowFree) - 1; last >= 0 {
		r := o.rowFree[last]
		o.rowFree = o.rowFree[:last]
		if cap(r) >= k {
			return r[:k]
		}
	}
	return make([]float64, k)
}

const maxFreeRows = 4096

func (o *Online) putHist(s sfSnapshot) {
	if len(o.sfFree) < 8 {
		o.sfFree = append(o.sfFree, s.sf)
	}
	if len(o.seenFree) < 8 {
		o.seenFree = append(o.seenFree, s.seen)
	}
}

func (o *Online) putHistRow(r []float64) {
	if len(o.rowFree) < maxFreeRows {
		o.rowFree = append(o.rowFree, r)
	}
}

// markNonzeroCols sets seen[j] for every column j holding a non-zero
// entry of m (the allocation-free form of the two ColSums scans).
func markNonzeroCols(seen []bool, m *sparse.CSR) {
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.Row(i)
		for p, j := range cols {
			if vals[p] != 0 && j < len(seen) {
				seen[j] = true
			}
		}
	}
}

// reuseBools returns a false-filled slice of length n, reusing s's
// backing array when possible.
func reuseBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// LastUserEstimate returns the most recent Su row recorded for global user
// g, or nil if the user has never been active. The experiments use it to
// score disappeared users at later timestamps (their sentiment persists
// per Observation 2).
func (o *Online) LastUserEstimate(g int) []float64 {
	hist := o.userHist[g]
	if len(hist) == 0 {
		return nil
	}
	return append([]float64(nil), hist[len(hist)-1].row...)
}

// KnownUsers returns the number of users with recorded history.
func (o *Online) KnownUsers() int { return len(o.userHist) }

// VisitUserEstimates calls fn once per user with recorded history, passing
// the user's global id and most recent Su row. The row is the solver's own
// storage: fn must copy what it keeps and must not mutate it. Iteration
// order is unspecified (map order).
func (o *Online) VisitUserEstimates(fn func(user int, row []float64)) {
	for g, hist := range o.userHist {
		if len(hist) > 0 {
			fn(g, hist[len(hist)-1].row)
		}
	}
}

// LastTime returns the timestamp of the most recent processed snapshot,
// or ok = false before the first one. It survives snapshot/restore: the
// retained feature history always includes the latest snapshot.
func (o *Online) LastTime() (t int, ok bool) {
	if n := len(o.sfHist); n > 0 {
		return o.sfHist[n-1].time, true
	}
	return 0, false
}
