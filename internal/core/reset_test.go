package core

import (
	"testing"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

func denseToCSR(d *mat.Dense) *sparse.CSR {
	b := sparse.NewCOO(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		for j := 0; j < d.Cols(); j++ {
			if v := d.At(i, j); v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.ToCSR()
}

// TestProblemResetClearsDerivedCaches reuses one Problem across two input
// sets and checks the cached transposes track the current inputs.
func TestProblemResetClearsDerivedCaches(t *testing.T) {
	xp1 := denseToCSR(mat.NewDenseData(2, 3, []float64{1, 0, 2, 0, 3, 0}))
	xu1 := denseToCSR(mat.NewDenseData(1, 3, []float64{1, 3, 2}))
	xr1 := denseToCSR(mat.NewDenseData(1, 2, []float64{1, 1}))

	var p Problem
	p.Reset(xp1, xu1, xr1, nil, nil)
	if got := p.XpT(); got.Rows() != 3 || got.Cols() != 2 {
		t.Fatalf("XpT dims %dx%d", got.Rows(), got.Cols())
	}
	if p.GuDegrees() != nil {
		t.Fatal("GuDegrees non-nil without Gu")
	}

	// New shapes: the stale caches must not survive the Reset.
	xp2 := denseToCSR(mat.NewDenseData(4, 2, []float64{1, 0, 0, 2, 3, 0, 0, 4}))
	xu2 := denseToCSR(mat.NewDenseData(2, 2, []float64{1, 2, 3, 4}))
	xr2 := denseToCSR(mat.NewDenseData(2, 4, []float64{1, 0, 0, 1, 0, 1, 1, 0}))
	gu2 := denseToCSR(mat.NewDenseData(2, 2, []float64{0, 2, 2, 0}))
	p.Reset(xp2, xu2, xr2, gu2, nil)
	if got := p.XpT(); got.Rows() != 2 || got.Cols() != 4 {
		t.Fatalf("post-reset XpT dims %dx%d", got.Rows(), got.Cols())
	}
	deg := p.GuDegrees()
	if len(deg) != 2 || deg[0] != 2 || deg[1] != 2 {
		t.Fatalf("post-reset GuDegrees = %v", deg)
	}
	if got := p.XrT(); got.At(3, 0) != 1 {
		t.Fatal("post-reset XrT stale")
	}
}

// TestProblemResetAllocFree asserts the scaffolding reuse itself performs
// no heap allocation (the derived caches are lazily rebuilt on use).
func TestProblemResetAllocFree(t *testing.T) {
	xp := denseToCSR(mat.NewDenseData(2, 2, []float64{1, 0, 0, 1}))
	xu := denseToCSR(mat.NewDenseData(1, 2, []float64{1, 1}))
	xr := denseToCSR(mat.NewDenseData(1, 2, []float64{1, 1}))
	var p Problem
	if avg := testing.AllocsPerRun(100, func() {
		p.Reset(xp, xu, xr, nil, nil)
	}); avg != 0 {
		t.Fatalf("Problem.Reset allocates %.1f times per call", avg)
	}
}
