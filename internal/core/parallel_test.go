package core

import (
	"math"
	"math/rand"
	"testing"

	"triclust/internal/mat"
	"triclust/internal/par"
	"triclust/internal/sparse"
)

// randomProblem builds a Problem large enough that the solver's kernels
// cross the par parallelism threshold.
func randomProblem(seed int64, n, m, l int, k int) *Problem {
	rng := rand.New(rand.NewSource(seed))
	fill := func(rows, cols, nnz int) *sparse.CSR {
		b := sparse.NewCOO(rows, cols)
		for e := 0; e < nnz; e++ {
			b.Add(rng.Intn(rows), rng.Intn(cols), 0.1+rng.Float64())
		}
		return b.ToCSR()
	}
	gu := fill(m, m, 4*m)
	return &Problem{
		Xp:  fill(n, l, 10*n),
		Xu:  fill(m, l, 10*m),
		Xr:  fill(m, n, 5*m),
		Gu:  sparse.Symmetrize(gu),
		Sf0: mat.RandomNonNegative(rng, l, k, 0.1, 1),
	}
}

// TestFitOfflineSerialParallelEquivalent runs the full solver at
// parallelism 1 and 4 on the same problem and requires the factor outputs
// to agree within 1e-10 — the parallel engine must not change results.
func TestFitOfflineSerialParallelEquivalent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxIter = 4
	cfg.Tol = -1

	run := func(procs int) *Result {
		par.SetProcs(procs)
		defer par.SetProcs(0)
		// Fresh Problem per run: the transpose caches are shared state.
		res, err := FitOffline(randomProblem(42, 6000, 800, 400, 3), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)

	pairs := []struct {
		name string
		s, p *mat.Dense
	}{
		{"Sp", serial.Sp, parallel.Sp},
		{"Su", serial.Su, parallel.Su},
		{"Sf", serial.Sf, parallel.Sf},
		{"Hp", serial.Hp, parallel.Hp},
		{"Hu", serial.Hu, parallel.Hu},
	}
	for _, pr := range pairs {
		if !mat.Equal(pr.s, pr.p, 1e-10) {
			t.Fatalf("%s: serial and parallel runs diverged beyond 1e-10", pr.name)
		}
	}
	st, pt := serial.FinalLoss().Total, parallel.FinalLoss().Total
	if d := math.Abs(st - pt); d > 1e-10*(1+math.Abs(st)) {
		t.Fatalf("loss diverged: serial %v vs parallel %v", st, pt)
	}
}

// TestProblemDerivedCaches checks the cached transposes and degrees
// against their direct computation.
func TestProblemDerivedCaches(t *testing.T) {
	p := randomProblem(7, 50, 20, 30, 3)
	if got, want := p.XpT().ToDense(), p.Xp.T().ToDense(); !mat.Equal(got, want, 0) {
		t.Fatal("XpT cache mismatch")
	}
	if got, want := p.XuT().ToDense(), p.Xu.T().ToDense(); !mat.Equal(got, want, 0) {
		t.Fatal("XuT cache mismatch")
	}
	if got, want := p.XrT().ToDense(), p.Xr.T().ToDense(); !mat.Equal(got, want, 0) {
		t.Fatal("XrT cache mismatch")
	}
	deg := p.GuDegrees()
	want := sparse.Degrees(p.Gu)
	for i := range deg {
		if deg[i] != want[i] {
			t.Fatal("GuDegrees cache mismatch")
		}
	}
	// Second access returns the same cached objects.
	if p.XpT() != p.XpT() {
		t.Fatal("XpT not cached")
	}
}
