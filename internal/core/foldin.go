package core

import (
	"fmt"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// FoldInTweets classifies tweets that were not part of the fitted corpus
// without re-running the solver, by projecting their feature rows onto the
// learned feature space:
//
//	Sp_new = normalize(Xp_new · Sf · Hpᵀ)
//
// This is the standard NMF fold-in: with Sf and Hp fixed, the
// least-squares-optimal non-negative membership of a new row x is
// approximated by one multiplicative step from a uniform start, which for
// a single row reduces to the projection above. xpNew must have the same
// feature dimension as the training corpus.
func FoldInTweets(f *Factors, xpNew *sparse.CSR) (*mat.Dense, error) {
	if xpNew.Cols() != f.Sf.Rows() {
		return nil, fmt.Errorf("core: fold-in features %d != trained %d", xpNew.Cols(), f.Sf.Rows())
	}
	proj := mat.NewDense(f.Sf.Rows(), f.Sf.Cols())
	proj.MulABT(f.Sf, f.Hp) // l×k: Sf·Hpᵀ
	sp := xpNew.MulDense(proj)
	sp.ClampNonNegative()
	sp.NormalizeRowsL1()
	return sp, nil
}

// FoldInUsers is the user-side analogue using Hu:
//
//	Su_new = normalize(Xu_new · Sf · Huᵀ)
func FoldInUsers(f *Factors, xuNew *sparse.CSR) (*mat.Dense, error) {
	if xuNew.Cols() != f.Sf.Rows() {
		return nil, fmt.Errorf("core: fold-in features %d != trained %d", xuNew.Cols(), f.Sf.Rows())
	}
	proj := mat.NewDense(f.Sf.Rows(), f.Sf.Cols())
	proj.MulABT(f.Sf, f.Hu)
	su := xuNew.MulDense(proj)
	su.ClampNonNegative()
	su.NormalizeRowsL1()
	return su, nil
}
