// Package core implements the paper's primary contribution: the offline
// tri-clustering framework (Algorithm 1; Eqs. 1, 7, 9, 11, 12, 13) and the
// online dynamic tri-clustering framework (Algorithm 2; Eqs. 19–26), both
// solved by analytical multiplicative update rules, plus the optional
// regularizers sketched in the paper's conclusion (§7): sparsity,
// diversity, and guided (semi-supervised) regularization.
package core

import (
	"fmt"
	"math/rand"
	"sync"

	"triclust/internal/mat"
	"triclust/internal/sparse"
)

// Problem bundles the inputs of the offline objective (Eq. 1).
//
// The matrices are treated as immutable once a solver starts: the hot
// update rules consume cached transposes of Xp, Xu and Xr (see XpT),
// computed lazily on first use, so mutating the inputs mid-solve would
// desynchronize the caches.
type Problem struct {
	// Xp is the n×l tweet–feature matrix.
	Xp *sparse.CSR
	// Xu is the m×l user–feature matrix.
	Xu *sparse.CSR
	// Xr is the m×n user–tweet matrix.
	Xr *sparse.CSR
	// Gu is the m×m symmetric user–user retweet graph (may be nil when
	// β = 0).
	Gu *sparse.CSR
	// Sf0 is the l×k feature-sentiment prior (sentiment lexicon rows).
	Sf0 *mat.Dense

	// Lazily cached derived data. Every mᵀ·b the update rules need is a
	// racy scatter in CSR form; against the cached transpose it becomes a
	// gather (MulDenseInto) that parallelizes over row chunks — and the
	// transposition cost is paid once per problem instead of per sweep.
	derived  sync.Once
	xpT, xuT *sparse.CSR
	xrT      *sparse.CSR
	guDeg    []float64
	// scratch survives Reset so a Problem reused across a session's
	// batches retransposes into the same backing arrays instead of
	// reallocating them.
	scratch *problemScratch
}

// problemScratch holds the reusable backing of the derived caches.
type problemScratch struct {
	xpT, xuT, xrT sparse.CSR
	cursor        []int
	guDeg         []float64
}

func (p *Problem) derive() {
	p.derived.Do(func() {
		if p.scratch == nil {
			p.scratch = &problemScratch{}
		}
		s := p.scratch
		p.xpT = p.Xp.TransposeInto(&s.xpT, &s.cursor)
		p.xuT = p.Xu.TransposeInto(&s.xuT, &s.cursor)
		p.xrT = p.Xr.TransposeInto(&s.xrT, &s.cursor)
		if p.Gu != nil {
			p.guDeg = p.Gu.RowSumsInto(s.guDeg)
			s.guDeg = p.guDeg
		}
	})
}

// Reset repoints the problem at a new set of input matrices and clears
// every lazily derived cache (keeping its backing storage for reuse), so
// one Problem value can be reused across the snapshots of a long-lived
// session without per-batch allocation of the scaffolding. The previous
// inputs are released.
func (p *Problem) Reset(xp, xu, xr, gu *sparse.CSR, sf0 *mat.Dense) {
	scratch := p.scratch
	*p = Problem{Xp: xp, Xu: xu, Xr: xr, Gu: gu, Sf0: sf0, scratch: scratch}
}

// XpT returns the cached transpose of Xp (l×n).
func (p *Problem) XpT() *sparse.CSR { p.derive(); return p.xpT }

// XuT returns the cached transpose of Xu (l×m).
func (p *Problem) XuT() *sparse.CSR { p.derive(); return p.xuT }

// XrT returns the cached transpose of Xr (n×m).
func (p *Problem) XrT() *sparse.CSR { p.derive(); return p.xrT }

// GuDegrees returns the cached degree vector of Gu (nil when Gu is nil).
func (p *Problem) GuDegrees() []float64 { p.derive(); return p.guDeg }

// Validate checks dimension consistency.
func (p *Problem) Validate(k int) error {
	n, l := p.Xp.Rows(), p.Xp.Cols()
	m := p.Xu.Rows()
	if p.Xu.Cols() != l {
		return fmt.Errorf("core: Xu has %d features, Xp has %d", p.Xu.Cols(), l)
	}
	if p.Xr.Rows() != m || p.Xr.Cols() != n {
		return fmt.Errorf("core: Xr is %dx%d, want %dx%d", p.Xr.Rows(), p.Xr.Cols(), m, n)
	}
	if p.Gu != nil && (p.Gu.Rows() != m || p.Gu.Cols() != m) {
		return fmt.Errorf("core: Gu is %dx%d, want %dx%d", p.Gu.Rows(), p.Gu.Cols(), m, m)
	}
	if p.Sf0 != nil && (!p.Sf0.Dims(l, k)) {
		return fmt.Errorf("core: Sf0 is %dx%d, want %dx%d", p.Sf0.Rows(), p.Sf0.Cols(), l, k)
	}
	if k < 1 {
		return fmt.Errorf("core: k = %d", k)
	}
	return nil
}

// Config holds the hyper-parameters shared by the offline and online
// solvers.
type Config struct {
	// K is the number of sentiment classes (2 or 3 in the paper).
	K int
	// Alpha ∈ [0,1] weighs the feature-lexicon regularizer
	// α‖Sf − Sf0‖² *relative to the data terms*: the solvers scale it
	// internally so that α = 1 makes the regularizer comparable to one
	// data-fidelity term (see regScales).
	Alpha float64
	// Beta ∈ [0,1] weighs the user-graph regularizer β·tr(SuᵀLuSu),
	// relative like Alpha.
	Beta float64
	// MaxIter bounds the multiplicative update sweeps (paper: r≈10–100).
	MaxIter int
	// Tol stops iteration when the relative objective change drops
	// below it. Zero selects the default (1e-4); a negative value
	// disables the convergence check so exactly MaxIter sweeps run.
	Tol float64
	// Seed drives factor initialization.
	Seed int64
	// LexiconInit seeds Sp and Su from lexicon votes (Xp·Sf0, Xu·Sf0)
	// instead of pure random, aligning cluster j with sentiment class j.
	LexiconInit bool

	// ——— §7 extension regularizers (all zero by default) ———

	// SparsityLambda adds an L1 shrinkage λ·‖S‖₁ on Sp, Su and Sf.
	SparsityLambda float64
	// DiversityLambda penalizes overlapping clusters via
	// λ·tr(Sᵀ S (𝟙𝟙ᵀ − I)) on Sp, Su and Sf.
	DiversityLambda float64
	// GuidedLambda weighs the semi-supervised guidance ‖S(i) − e_y(i)‖²
	// on rows with observed labels.
	GuidedLambda float64
	// GuidedTweetLabels / GuidedUserLabels supply those labels
	// (len n / len m, entries are class indices or −1 for unlabeled).
	GuidedTweetLabels []int
	GuidedUserLabels  []int
}

// DefaultConfig returns the configuration used in the paper's offline
// experiments: k = 3, α = 0.05, β = 0.8 (§5.1: "to balance between the
// tweet-level performance and user-level performance").
func DefaultConfig() Config {
	return Config{
		K:           3,
		Alpha:       0.05,
		Beta:        0.8,
		MaxIter:     100,
		Tol:         1e-4,
		Seed:        1,
		LexiconInit: true,
	}
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 3
	}
	if c.MaxIter == 0 {
		c.MaxIter = 100
	}
	if c.Tol == 0 {
		c.Tol = 1e-4
	}
	return c
}

// Factors are the five factor matrices of the tri-factorization.
type Factors struct {
	// Sp (n×k), Su (m×k), Sf (l×k) are the tweet, user, and feature
	// cluster-membership matrices.
	Sp, Su, Sf *mat.Dense
	// Hp, Hu (k×k) are the tweet-class and user-class association cores.
	Hp, Hu *mat.Dense
}

// LossBreakdown records every term of the objective at one iteration.
// The first three fields are squared Frobenius residuals (the paper's
// Figure 8 plots their square roots).
type LossBreakdown struct {
	TweetFeature float64 // ‖Xp − Sp Hp Sfᵀ‖²
	UserFeature  float64 // ‖Xu − Su Hu Sfᵀ‖²
	UserTweet    float64 // ‖Xr − Su Spᵀ‖²
	Lexicon      float64 // α‖Sf − Sf0‖²  (temporal feature term online)
	GraphReg     float64 // β·tr(SuᵀLuSu)
	Temporal     float64 // γ‖Su(d,e) − Suw‖² (online only)
	Sparsity     float64
	Diversity    float64
	Guided       float64
	Total        float64
}

// Result is the output of a solver run.
type Result struct {
	Factors
	// Iterations is the number of completed update sweeps.
	Iterations int
	// Converged reports whether the tolerance (rather than MaxIter)
	// stopped the run.
	Converged bool
	// History holds the loss breakdown after every sweep.
	History []LossBreakdown
}

// TweetClusters returns the hard cluster assignment of each tweet.
func (r *Result) TweetClusters() []int { return r.Sp.RowArgMax() }

// UserClusters returns the hard cluster assignment of each user.
func (r *Result) UserClusters() []int { return r.Su.RowArgMax() }

// FeatureClusters returns the hard cluster assignment of each feature.
func (r *Result) FeatureClusters() []int { return r.Sf.RowArgMax() }

// FinalLoss returns the last recorded loss breakdown (zero value when the
// solver did not iterate).
func (r *Result) FinalLoss() LossBreakdown {
	if len(r.History) == 0 {
		return LossBreakdown{}
	}
	return r.History[len(r.History)-1]
}

// initFactors builds the starting factors. With LexiconInit, Sp and Su are
// seeded by propagating lexicon votes through the data matrices, which
// keeps cluster index j aligned with sentiment class j (the emotion
// consistency the Sf0 regularizer then maintains); otherwise they are
// random positive matrices.
func initFactors(p *Problem, cfg Config, rng *rand.Rand) Factors {
	n, l := p.Xp.Rows(), p.Xp.Cols()
	m := p.Xu.Rows()
	k := cfg.K

	var sf *mat.Dense
	if p.Sf0 != nil {
		sf = p.Sf0.Clone()
		mat.PerturbPositive(rng, sf, 0.01)
	} else {
		sf = mat.RandomNonNegative(rng, l, k, 0.1, 1)
	}

	var sp, su *mat.Dense
	if cfg.LexiconInit && p.Sf0 != nil {
		sp = p.Xp.MulDense(p.Sf0) // n×k lexicon vote per tweet
		sp.NormalizeRowsL1()
		mat.PerturbPositive(rng, sp, 0.05)
		su = p.Xu.MulDense(p.Sf0) // m×k lexicon vote per user
		su.NormalizeRowsL1()
		mat.PerturbPositive(rng, su, 0.05)
	} else {
		sp = mat.RandomNonNegative(rng, n, k, 0.1, 1)
		su = mat.RandomNonNegative(rng, m, k, 0.1, 1)
	}

	hp := mat.Identity(k)
	mat.PerturbPositive(rng, hp, 0.05)
	hu := mat.Identity(k)
	mat.PerturbPositive(rng, hu, 0.05)
	return Factors{Sp: sp, Su: su, Sf: sf, Hp: hp, Hu: hu}
}
