// Package synth generates synthetic topic-focused Twitter corpora with the
// statistical structure the paper's method exploits: class-conditional
// vocabularies with Zipfian frequencies, latent user stances, power-law
// user activity, retweet homophily, daily timestamps with an election-day
// volume burst, and new / evolving / disappearing users.
//
// It substitutes for the (non-redistributable) California-ballot corpus of
// §5; the presets Prop30Config and Prop37Config match Table 3's scale and
// class skew.
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"triclust/internal/lexicon"
	"triclust/internal/tgraph"
)

// Config controls corpus generation. Zero values are replaced by
// the documented defaults in Generate.
type Config struct {
	// Seed drives all randomness.
	Seed int64
	// NumUsers is the user population size m.
	NumUsers int
	// Days is the number of daily timestamps (0 .. Days−1).
	Days int
	// ElectionDay is the center of the volume burst (−1 disables it).
	ElectionDay int
	// BurstMultiplier scales tweet volume at the burst peak
	// (1 = no burst).
	BurstMultiplier float64
	// BurstWidth is the Gaussian σ of the burst in days.
	BurstWidth float64
	// TweetsPerUserDay is the mean number of tweets an average active
	// user posts per day.
	TweetsPerUserDay float64
	// ClassProbs is the user stance prior over {Pos, Neg, Neu}; it must
	// sum to ~1. The Neu entry may be 0.
	ClassProbs [3]float64
	// PolarWordsPerClass / NeutralWords size the planted vocabulary.
	PolarWordsPerClass int
	NeutralWords       int
	// WordsPerTweet is the mean tweet length in retained tokens.
	WordsPerTweet int
	// NeutralWordProb is the chance each token is topical-neutral.
	NeutralWordProb float64
	// OppositeWordProb is the chance a non-neutral token comes from a
	// different class's list (the "Monsanto is pure evil" noise).
	OppositeWordProb float64
	// TweetNoiseProb flips a tweet's sentiment away from its author's
	// stance.
	TweetNoiseProb float64
	// RetweetProb is the chance a tweet is a retweet of a recent tweet.
	RetweetProb float64
	// Homophily is the chance a retweet's source author shares the
	// retweeter's stance.
	Homophily float64
	// EvolveFrac is the fraction of users that flip stance once at a
	// uniform random day (user Adam of Figure 1).
	EvolveFrac float64
	// ChurnFrac is the fraction of users with a limited activity span
	// (they arrive late and/or disappear early), creating the
	// new/disappeared categories of §4.
	ChurnFrac float64
	// LabeledUserFrac / LabeledTweetFrac control ground-truth coverage
	// (Table 3: not every user has label information).
	LabeledUserFrac  float64
	LabeledTweetFrac float64
	// ZipfS is the Zipf exponent of within-class word frequencies.
	ZipfS float64
	// FrequencyDrift rotates each class's word-popularity ranking by
	// this many ranks per day: which words are *popular* changes over
	// time while their class membership (sentiment) stays fixed —
	// exactly Observation 1 of the paper ("the frequency distribution of
	// vocabularies changes over time; however, the sentiments of
	// vocabularies do not change"). Zero disables drift.
	FrequencyDrift float64
}

// Validate reports the first configuration problem.
func (c Config) Validate() error {
	sum := c.ClassProbs[0] + c.ClassProbs[1] + c.ClassProbs[2]
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("synth: ClassProbs sum to %v", sum)
	}
	if c.NumUsers <= 0 || c.Days <= 0 {
		return fmt.Errorf("synth: NumUsers=%d Days=%d must be positive", c.NumUsers, c.Days)
	}
	for _, p := range []float64{c.NeutralWordProb, c.OppositeWordProb, c.TweetNoiseProb,
		c.RetweetProb, c.Homophily, c.EvolveFrac, c.ChurnFrac, c.LabeledUserFrac, c.LabeledTweetFrac} {
		if p < 0 || p > 1 {
			return fmt.Errorf("synth: probability %v out of [0,1]", p)
		}
	}
	return nil
}

// DefaultConfig returns a small balanced corpus suitable for tests.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		NumUsers:           120,
		Days:               20,
		ElectionDay:        14,
		BurstMultiplier:    3,
		BurstWidth:         2,
		TweetsPerUserDay:   0.8,
		ClassProbs:         [3]float64{0.45, 0.35, 0.20},
		PolarWordsPerClass: 60,
		NeutralWords:       200,
		WordsPerTweet:      8,
		NeutralWordProb:    0.45,
		OppositeWordProb:   0.10,
		TweetNoiseProb:     0.08,
		RetweetProb:        0.30,
		Homophily:          0.85,
		EvolveFrac:         0.05,
		ChurnFrac:          0.30,
		LabeledUserFrac:    0.4,
		LabeledTweetFrac:   1.0,
		ZipfS:              1.1,
	}
}

// Prop30Config mirrors the scale and skew of the Proposition 30 dataset in
// Table 3: ≈13.8k labeled tweets at a 64/36 pos/neg split, ≈840 users of
// which ≈41% carry labels.
func Prop30Config() Config {
	c := DefaultConfig()
	c.Seed = 30
	c.NumUsers = 840
	c.Days = 120
	c.ElectionDay = 97 // Nov 6 relative to Aug 1
	c.BurstMultiplier = 6
	c.BurstWidth = 4
	c.TweetsPerUserDay = 0.14
	c.ClassProbs = [3]float64{0.52, 0.36, 0.12}
	c.PolarWordsPerClass = 300
	c.NeutralWords = 1200
	c.LabeledUserFrac = 0.41
	return c
}

// Prop37Config mirrors Proposition 37: ≈37.4k tweets at a 93/7 pos/neg
// split, ≈1.9k users, ≈19% labeled users.
func Prop37Config() Config {
	c := DefaultConfig()
	c.Seed = 37
	c.NumUsers = 1930
	c.Days = 120
	c.ElectionDay = 97
	c.BurstMultiplier = 6
	c.BurstWidth = 4
	c.TweetsPerUserDay = 0.16
	c.ClassProbs = [3]float64{0.88, 0.09, 0.03}
	c.TweetNoiseProb = 0.05
	c.PolarWordsPerClass = 350
	c.NeutralWords = 1500
	c.LabeledUserFrac = 0.19
	return c
}

// Scaled returns cfg with users, days, and vocabulary shrunk by factor
// (≥ 1), for fast benches while preserving the corpus shape.
func Scaled(cfg Config, factor int) Config {
	if factor <= 1 {
		return cfg
	}
	cfg.NumUsers = maxInt(20, cfg.NumUsers/factor)
	cfg.Days = maxInt(8, cfg.Days/factor)
	cfg.ElectionDay = cfg.Days * 4 / 5
	cfg.PolarWordsPerClass = maxInt(20, cfg.PolarWordsPerClass/factor)
	cfg.NeutralWords = maxInt(50, cfg.NeutralWords/factor)
	return cfg
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// userState is the latent ground truth of one user.
type userState struct {
	stance    int // initial stance
	evolveDay int // −1 or the day the stance flips
	evolvedTo int
	arrival   int // first active day
	departure int // last active day (inclusive)
	activity  float64
}

// Dataset is a generated corpus plus the planted ground truth the
// experiments score against.
type Dataset struct {
	Corpus *tgraph.Corpus
	Config Config
	// PosWords / NegWords / NeutralWords are the planted vocabularies in
	// within-class rank order (most frequent first).
	PosWords, NegWords, NeutWords []string
	// TweetClass is the planted class of every tweet (always set, even
	// when Corpus labels are hidden).
	TweetClass []int
	users      []userState
}

// seedWords gives the first planted words recognizable names so harness
// output reads like the paper's Table 2.
var posSeeds = []string{"yeson37", "labelgmo", "stopmonsanto", "carighttoknow", "health", "safe", "righttoknow", "labelit"}
var negSeeds = []string{"corn", "farmer", "noprop37", "crop", "million", "feed", "seed", "biotech"}

func wordList(class string, seeds []string, n int) []string {
	out := make([]string, 0, n)
	out = append(out, seeds...)
	for i := len(out); i < n; i++ {
		out = append(out, fmt.Sprintf("%s%03d", class, i))
	}
	return out[:n]
}

// Generate builds a dataset from cfg.
func Generate(cfg Config) (*Dataset, error) {
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}
	if cfg.WordsPerTweet == 0 {
		cfg.WordsPerTweet = 8
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	d := &Dataset{
		Config:    cfg,
		PosWords:  wordList("yesw", posSeeds, cfg.PolarWordsPerClass),
		NegWords:  wordList("now", negSeeds, cfg.PolarWordsPerClass),
		NeutWords: wordList("topic", []string{"gmo", "prop37", "california", "ballot", "vote", "food", "election", "initiative"}, cfg.NeutralWords),
	}

	// ——— users ———
	d.users = make([]userState, cfg.NumUsers)
	for i := range d.users {
		u := &d.users[i]
		u.stance = sampleClass(rng, cfg.ClassProbs)
		u.evolveDay = -1
		if rng.Float64() < cfg.EvolveFrac && u.stance != lexicon.Neu {
			u.evolveDay = 1 + rng.Intn(maxInt(1, cfg.Days-1))
			u.evolvedTo = 1 - u.stance // Pos↔Neg flip
		}
		u.arrival, u.departure = 0, cfg.Days-1
		if rng.Float64() < cfg.ChurnFrac {
			span := 1 + rng.Intn(cfg.Days)
			u.arrival = rng.Intn(cfg.Days - span + 1)
			u.departure = u.arrival + span - 1
		}
		// Pareto-like activity (long tail of super-active users), capped
		// so one user cannot dominate a small corpus.
		u.activity = math.Min(math.Pow(rng.Float64(), -0.6), 12)
	}

	corpus := &tgraph.Corpus{Users: make([]tgraph.User, cfg.NumUsers)}
	for i := range corpus.Users {
		corpus.Users[i] = tgraph.User{Name: fmt.Sprintf("user%04d", i), Label: tgraph.NoLabel}
		if rng.Float64() < cfg.LabeledUserFrac {
			corpus.Users[i].Label = d.finalStance(i)
		}
	}

	// ——— tweets, day by day ———
	zipfPos := newZipf(rng, cfg.ZipfS, len(d.PosWords))
	zipfNeg := newZipf(rng, cfg.ZipfS, len(d.NegWords))
	zipfNeut := newZipf(rng, cfg.ZipfS, len(d.NeutWords))

	// recent[t] holds tweet indices of day t for retweet sourcing.
	recent := make([][]int, cfg.Days)
	for t := 0; t < cfg.Days; t++ {
		burst := 1.0
		if cfg.ElectionDay >= 0 && cfg.BurstMultiplier > 1 && cfg.BurstWidth > 0 {
			dd := float64(t - cfg.ElectionDay)
			burst = 1 + (cfg.BurstMultiplier-1)*math.Exp(-dd*dd/(2*cfg.BurstWidth*cfg.BurstWidth))
		}
		// Active users and their cumulative activity for sampling.
		var activeIdx []int
		var cum []float64
		var total float64
		for i := range d.users {
			if t >= d.users[i].arrival && t <= d.users[i].departure {
				activeIdx = append(activeIdx, i)
				total += d.users[i].activity
				cum = append(cum, total)
			}
		}
		if len(activeIdx) == 0 {
			continue
		}
		mean := cfg.TweetsPerUserDay * float64(len(activeIdx)) * burst
		count := samplePoisson(rng, mean)
		for c := 0; c < count; c++ {
			author := activeIdx[sampleCum(rng, cum, total)]
			stance := d.StanceAt(author, t)
			class := stance
			if rng.Float64() < cfg.TweetNoiseProb {
				class = (class + 1 + rng.Intn(2)) % 3
			}

			tw := tgraph.Tweet{User: author, Time: t, RetweetOf: -1, Label: tgraph.NoLabel}
			if rng.Float64() < cfg.RetweetProb {
				if src := d.pickRetweetSource(rng, recent, t, stance, cfg.Homophily); src >= 0 {
					tw.RetweetOf = src
					class = d.TweetClass[src]
				}
			}
			if tw.RetweetOf >= 0 {
				// Retweets reuse (a sample of) the source's tokens.
				srcTokens := corpus.Tweets[tw.RetweetOf].Tokens
				tw.Tokens = append([]string(nil), srcTokens...)
			} else {
				tw.Tokens = d.sampleTokens(rng, cfg, class, t, zipfPos, zipfNeg, zipfNeut)
			}
			if rng.Float64() < cfg.LabeledTweetFrac {
				tw.Label = class
			}
			idx := len(corpus.Tweets)
			corpus.Tweets = append(corpus.Tweets, tw)
			d.TweetClass = append(d.TweetClass, class)
			recent[t] = append(recent[t], idx)
		}
	}

	d.Corpus = corpus
	if err := corpus.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// sampleTokens draws a tweet's tokens given its planted class and day.
// FrequencyDrift rotates the Zipf ranking so word *popularity* (not word
// sentiment) shifts over time, reproducing Observation 1 / Figure 4. The
// named seed words (the head ranks) are pinned: the paper's Table 2 notes
// that the top hashtags stay popular through the whole collection period.
func (d *Dataset) sampleTokens(rng *rand.Rand, cfg Config, class, day int, zp, zn, zu *zipfSampler) []string {
	const pinnedHead = 8
	drift := func(rank, size int) int {
		if cfg.FrequencyDrift <= 0 || rank < pinnedHead || size <= pinnedHead {
			return rank
		}
		span := size - pinnedHead
		shifted := (rank - pinnedHead + int(cfg.FrequencyDrift*float64(day))) % span
		return pinnedHead + shifted
	}
	n := 1 + samplePoisson(rng, float64(cfg.WordsPerTweet-1))
	out := make([]string, 0, n)
	for w := 0; w < n; w++ {
		if class == lexicon.Neu || rng.Float64() < cfg.NeutralWordProb {
			out = append(out, d.NeutWords[drift(zu.Sample(), len(d.NeutWords))])
			continue
		}
		c := class
		if rng.Float64() < cfg.OppositeWordProb {
			c = 1 - c
		}
		if c == lexicon.Pos {
			out = append(out, d.PosWords[drift(zp.Sample(), len(d.PosWords))])
		} else {
			out = append(out, d.NegWords[drift(zn.Sample(), len(d.NegWords))])
		}
	}
	return out
}

// pickRetweetSource picks a tweet from the last two days whose author's
// stance matches with probability homophily.
func (d *Dataset) pickRetweetSource(rng *rand.Rand, recent [][]int, t, stance int, homophily float64) int {
	var pool []int
	for dt := 0; dt <= 1; dt++ {
		if t-dt >= 0 {
			pool = append(pool, recent[t-dt]...)
		}
	}
	if len(pool) == 0 {
		return -1
	}
	wantSame := rng.Float64() < homophily
	// Rejection-sample a few times, then fall back to any.
	for try := 0; try < 8; try++ {
		cand := pool[rng.Intn(len(pool))]
		if (d.TweetClass[cand] == stance) == wantSame {
			return cand
		}
	}
	return pool[rng.Intn(len(pool))]
}

// StanceAt returns user u's planted stance on day t.
func (d *Dataset) StanceAt(u, t int) int {
	s := d.users[u]
	if s.evolveDay >= 0 && t >= s.evolveDay {
		return s.evolvedTo
	}
	return s.stance
}

// finalStance returns the user's stance at the end of the period (used for
// the static user label, matching how the paper's labels were assigned).
func (d *Dataset) finalStance(u int) int {
	return d.StanceAt(u, d.Config.Days-1)
}

// UserStancesAt returns every user's planted stance on day t.
func (d *Dataset) UserStancesAt(t int) []int {
	out := make([]int, len(d.users))
	for i := range d.users {
		out[i] = d.StanceAt(i, t)
	}
	return out
}

// EvolvingUsers returns the indices of users whose stance flips, with
// their flip day.
func (d *Dataset) EvolvingUsers() map[int]int {
	out := map[int]int{}
	for i, u := range d.users {
		if u.evolveDay >= 0 {
			out[i] = u.evolveDay
		}
	}
	return out
}

// PlantedLexicon builds a sentiment lexicon covering the top coverage
// fraction of each polar word list, with noise fraction of the listed
// words assigned to the wrong class — simulating the automatically built
// (imperfect) "Yes"/"No" lists the paper seeds Sf0 from.
func (d *Dataset) PlantedLexicon(coverage, noise float64, seed int64) *lexicon.Lexicon {
	rng := rand.New(rand.NewSource(seed))
	out := lexicon.New()
	add := func(words []string, class int) {
		n := int(coverage * float64(len(words)))
		for _, w := range words[:n] {
			c := class
			if rng.Float64() < noise {
				c = 1 - c
			}
			out.Set(w, c)
		}
	}
	add(d.PosWords, lexicon.Pos)
	add(d.NegWords, lexicon.Neg)
	return out
}

// ——— small samplers ———

func sampleClass(rng *rand.Rand, probs [3]float64) int {
	r := rng.Float64()
	if r < probs[0] {
		return 0
	}
	if r < probs[0]+probs[1] {
		return 1
	}
	return 2
}

// samplePoisson draws from Poisson(mean) via Knuth for small means and a
// normal approximation for large ones.
func samplePoisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func sampleCum(rng *rand.Rand, cum []float64, total float64) int {
	r := rng.Float64() * total
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// zipfSampler draws ranks 0..n−1 with P(r) ∝ 1/(r+1)^s via the inverse-CDF
// over a precomputed table.
type zipfSampler struct {
	rng *rand.Rand
	cum []float64
}

func newZipf(rng *rand.Rand, s float64, n int) *zipfSampler {
	cum := make([]float64, n)
	var total float64
	for r := 0; r < n; r++ {
		total += math.Pow(float64(r+1), -s)
		cum[r] = total
	}
	for r := range cum {
		cum[r] /= total
	}
	return &zipfSampler{rng: rng, cum: cum}
}

func (z *zipfSampler) Sample() int {
	r := z.rng.Float64()
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
