package synth

import (
	"math"
	"math/rand"
	"testing"

	"triclust/internal/lexicon"
	"triclust/internal/tgraph"
)

func mustGenerate(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	d, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return d
}

func TestGenerateValidCorpus(t *testing.T) {
	d := mustGenerate(t, DefaultConfig())
	if err := d.Corpus.Validate(); err != nil {
		t.Fatalf("corpus invalid: %v", err)
	}
	if d.Corpus.NumTweets() == 0 {
		t.Fatal("no tweets generated")
	}
	if d.Corpus.NumUsers() != DefaultConfig().NumUsers {
		t.Fatalf("users = %d", d.Corpus.NumUsers())
	}
	if len(d.TweetClass) != d.Corpus.NumTweets() {
		t.Fatal("TweetClass length mismatch")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, DefaultConfig())
	b := mustGenerate(t, DefaultConfig())
	if a.Corpus.NumTweets() != b.Corpus.NumTweets() {
		t.Fatal("same seed produced different corpora")
	}
	for i := range a.Corpus.Tweets {
		ta, tb := a.Corpus.Tweets[i], b.Corpus.Tweets[i]
		if ta.User != tb.User || ta.Time != tb.Time || ta.Label != tb.Label {
			t.Fatalf("tweet %d differs", i)
		}
	}
}

func TestGenerateSeedChangesOutput(t *testing.T) {
	cfg := DefaultConfig()
	a := mustGenerate(t, cfg)
	cfg.Seed = 999
	b := mustGenerate(t, cfg)
	if a.Corpus.NumTweets() == b.Corpus.NumTweets() {
		// Counts may coincide; compare first tweet tokens too.
		same := len(a.Corpus.Tweets[0].Tokens) == len(b.Corpus.Tweets[0].Tokens)
		if same {
			for i, tok := range a.Corpus.Tweets[0].Tokens {
				if tok != b.Corpus.Tweets[0].Tokens[i] {
					same = false
					break
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical output")
		}
	}
}

func TestTweetTokensMatchClassDistribution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NeutralWordProb = 0.2
	cfg.OppositeWordProb = 0.05
	d := mustGenerate(t, cfg)
	posSet := map[string]bool{}
	for _, w := range d.PosWords {
		posSet[w] = true
	}
	negSet := map[string]bool{}
	for _, w := range d.NegWords {
		negSet[w] = true
	}
	// Original (non-retweet) Pos tweets should contain more pos words
	// than neg words on aggregate.
	var posHits, negHits int
	for i, tw := range d.Corpus.Tweets {
		if tw.RetweetOf >= 0 || d.TweetClass[i] != lexicon.Pos {
			continue
		}
		for _, tok := range tw.Tokens {
			if posSet[tok] {
				posHits++
			}
			if negSet[tok] {
				negHits++
			}
		}
	}
	if posHits <= negHits*2 {
		t.Fatalf("pos tweets not pos-dominated: %d pos vs %d neg tokens", posHits, negHits)
	}
}

func TestRetweetsReferenceEarlierTweets(t *testing.T) {
	d := mustGenerate(t, DefaultConfig())
	sawRetweet := false
	for i, tw := range d.Corpus.Tweets {
		if tw.RetweetOf < 0 {
			continue
		}
		sawRetweet = true
		if tw.RetweetOf >= i {
			t.Fatalf("tweet %d retweets later tweet %d", i, tw.RetweetOf)
		}
		src := d.Corpus.Tweets[tw.RetweetOf]
		if src.Time > tw.Time {
			t.Fatalf("retweet source in the future: %d > %d", src.Time, tw.Time)
		}
	}
	if !sawRetweet {
		t.Fatal("no retweets generated with RetweetProb=0.3")
	}
}

func TestRetweetHomophily(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Homophily = 0.95
	cfg.TweetNoiseProb = 0
	d := mustGenerate(t, cfg)
	var same, total int
	for i, tw := range d.Corpus.Tweets {
		if tw.RetweetOf < 0 {
			continue
		}
		st := d.StanceAt(tw.User, tw.Time)
		if st == lexicon.Neu {
			continue
		}
		total++
		if d.TweetClass[tw.RetweetOf] == st {
			same++
		}
		_ = i
	}
	if total < 20 {
		t.Skip("too few polar retweets to measure")
	}
	if frac := float64(same) / float64(total); frac < 0.6 {
		t.Fatalf("homophily fraction = %v, want > 0.6", frac)
	}
}

func TestBurstRaisesVolume(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChurnFrac = 0
	cfg.BurstMultiplier = 8
	d := mustGenerate(t, cfg)
	perDay := make([]int, cfg.Days)
	for _, tw := range d.Corpus.Tweets {
		perDay[tw.Time]++
	}
	var base, peak float64
	for t0 := 0; t0 < 5; t0++ {
		base += float64(perDay[t0]) / 5
	}
	for t0 := cfg.ElectionDay - 1; t0 <= cfg.ElectionDay+1; t0++ {
		peak += float64(perDay[t0]) / 3
	}
	if peak < 2*base {
		t.Fatalf("burst peak %.1f not well above base %.1f", peak, base)
	}
}

func TestChurnCreatesNewAndDisappearedUsers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ChurnFrac = 0.8
	d := mustGenerate(t, cfg)
	mid := cfg.Days / 2
	first, _ := d.Corpus.Slice(0, mid)
	second, _ := d.Corpus.Slice(mid, cfg.Days)
	newU, _, disappeared := tgraph.CategorizeUsers(first.ActiveUsers(), second.ActiveUsers())
	if len(newU) == 0 {
		t.Fatal("no new users despite churn")
	}
	if len(disappeared) == 0 {
		t.Fatal("no disappeared users despite churn")
	}
}

func TestEvolvingUsersFlip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EvolveFrac = 0.5
	d := mustGenerate(t, cfg)
	ev := d.EvolvingUsers()
	if len(ev) == 0 {
		t.Fatal("no evolving users")
	}
	for u, day := range ev {
		before := d.StanceAt(u, day-1)
		after := d.StanceAt(u, day)
		if before == after {
			t.Fatalf("user %d did not flip at day %d", u, day)
		}
		if after != 1-before {
			t.Fatalf("flip not Pos↔Neg: %d → %d", before, after)
		}
	}
}

func TestUserStancesAtConsistent(t *testing.T) {
	d := mustGenerate(t, DefaultConfig())
	st := d.UserStancesAt(5)
	for u := range st {
		if st[u] != d.StanceAt(u, 5) {
			t.Fatal("UserStancesAt disagrees with StanceAt")
		}
	}
}

func TestLabelCoverage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LabeledUserFrac = 0.5
	cfg.NumUsers = 400
	d := mustGenerate(t, cfg)
	labeled := 0
	for _, u := range d.Corpus.Users {
		if u.Label != tgraph.NoLabel {
			labeled++
		}
	}
	frac := float64(labeled) / float64(len(d.Corpus.Users))
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("labeled user fraction = %v, want ≈ 0.5", frac)
	}
}

func TestPlantedLexicon(t *testing.T) {
	d := mustGenerate(t, DefaultConfig())
	lex := d.PlantedLexicon(0.5, 0, 7)
	wantLen := int(0.5*float64(len(d.PosWords))) + int(0.5*float64(len(d.NegWords)))
	if lex.Len() != wantLen {
		t.Fatalf("lexicon size = %d, want %d", lex.Len(), wantLen)
	}
	if c, ok := lex.Class(d.PosWords[0]); !ok || c != lexicon.Pos {
		t.Fatal("top pos word missing or misclassed")
	}
	// With noise, some words flip.
	noisy := d.PlantedLexicon(1, 0.5, 7)
	flips := 0
	for _, w := range d.PosWords {
		if c, ok := noisy.Class(w); ok && c == lexicon.Neg {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("noise produced no flips")
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClassProbs = [3]float64{0.5, 0.2, 0.1}
	if _, err := Generate(cfg); err == nil {
		t.Fatal("expected class-prob error")
	}
	cfg = DefaultConfig()
	cfg.NumUsers = 0
	if _, err := Generate(cfg); err == nil {
		t.Fatal("expected user-count error")
	}
	cfg = DefaultConfig()
	cfg.RetweetProb = 1.5
	if _, err := Generate(cfg); err == nil {
		t.Fatal("expected probability error")
	}
}

func TestPresetSkews(t *testing.T) {
	p37 := mustGenerate(t, Scaled(Prop37Config(), 4))
	var pos, neg int
	for _, c := range p37.TweetClass {
		switch c {
		case lexicon.Pos:
			pos++
		case lexicon.Neg:
			neg++
		}
	}
	if pos < 4*neg {
		t.Fatalf("Prop37 skew lost: %d pos vs %d neg", pos, neg)
	}
}

func TestScaled(t *testing.T) {
	base := Prop30Config()
	s := Scaled(base, 4)
	if s.NumUsers >= base.NumUsers || s.Days >= base.Days {
		t.Fatal("Scaled did not shrink")
	}
	if s.ElectionDay >= s.Days {
		t.Fatal("Scaled election day out of range")
	}
	if Scaled(base, 1).NumUsers != base.NumUsers {
		t.Fatal("factor 1 should be identity")
	}
}

func TestPoissonSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(samplePoisson(rng, 4))
	}
	if mean := sum / n; math.Abs(mean-4) > 0.15 {
		t.Fatalf("poisson mean = %v, want ≈ 4", mean)
	}
	// Large-mean branch.
	sum = 0
	for i := 0; i < n; i++ {
		sum += float64(samplePoisson(rng, 100))
	}
	if mean := sum / n; math.Abs(mean-100) > 1 {
		t.Fatalf("poisson(100) mean = %v", mean)
	}
	if samplePoisson(rng, 0) != 0 {
		t.Fatal("poisson(0) != 0")
	}
}

func TestZipfSamplerHeadHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z := newZipf(rng, 1.2, 100)
	counts := make([]int, 100)
	for i := 0; i < 10000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) not more frequent than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] < 1000 {
		t.Fatalf("head rank too rare: %d", counts[0])
	}
}

func TestTable2ShapeTopWords(t *testing.T) {
	// The most frequent planted words should be the named seeds, echoing
	// the paper's Table 2.
	d := mustGenerate(t, DefaultConfig())
	counts := map[string]int{}
	for _, tw := range d.Corpus.Tweets {
		for _, tok := range tw.Tokens {
			counts[tok]++
		}
	}
	if counts["yeson37"] == 0 || counts["corn"] == 0 {
		t.Fatal("seed words unused")
	}
	if counts["yeson37"] < counts[d.PosWords[len(d.PosWords)-1]] {
		t.Fatal("top pos word rarer than tail word")
	}
}

func TestFrequencyDriftShiftsDistributions(t *testing.T) {
	base := DefaultConfig()
	base.ChurnFrac = 0
	base.EvolveFrac = 0

	tv := func(cfg Config) float64 {
		d := mustGenerate(t, cfg)
		// Aggregate corpus-wide token histograms for first vs last
		// quarter of days and compare (total-variation distance).
		span := cfg.Days / 4
		early := map[string]float64{}
		late := map[string]float64{}
		var ne, nl float64
		for _, tw := range d.Corpus.Tweets {
			switch {
			case tw.Time < span:
				for _, tok := range tw.Tokens {
					early[tok]++
					ne++
				}
			case tw.Time >= cfg.Days-span:
				for _, tok := range tw.Tokens {
					late[tok]++
					nl++
				}
			}
		}
		keys := map[string]struct{}{}
		for k := range early {
			keys[k] = struct{}{}
		}
		for k := range late {
			keys[k] = struct{}{}
		}
		var dist float64
		for k := range keys {
			dist += math.Abs(early[k]/ne - late[k]/nl)
		}
		return dist / 2
	}

	noDrift := tv(base)
	drifted := base
	drifted.FrequencyDrift = 2
	withDrift := tv(drifted)
	if withDrift <= noDrift {
		t.Fatalf("drift did not increase distribution shift: %.3f vs %.3f", withDrift, noDrift)
	}
}

func TestFrequencyDriftKeepsClassMembership(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrequencyDrift = 3
	cfg.OppositeWordProb = 0
	cfg.TweetNoiseProb = 0
	cfg.RetweetProb = 0
	d := mustGenerate(t, cfg)
	posSet := map[string]bool{}
	for _, w := range d.PosWords {
		posSet[w] = true
	}
	negSet := map[string]bool{}
	for _, w := range d.NegWords {
		negSet[w] = true
	}
	// With all noise off, pos tweets must never contain neg words even
	// under drift (drift moves popularity, not sentiment).
	for i, tw := range d.Corpus.Tweets {
		if d.TweetClass[i] != lexicon.Pos {
			continue
		}
		for _, tok := range tw.Tokens {
			if negSet[tok] {
				t.Fatalf("drift leaked %q into a positive tweet", tok)
			}
		}
	}
}

func TestFrequencyDriftPinsSeedWords(t *testing.T) {
	cfg := DefaultConfig()
	cfg.FrequencyDrift = 5
	d := mustGenerate(t, cfg)
	counts := map[string]int{}
	for _, tw := range d.Corpus.Tweets {
		for _, tok := range tw.Tokens {
			counts[tok]++
		}
	}
	// The pinned head words remain the most frequent polar words.
	if counts["yeson37"] < counts[d.PosWords[len(d.PosWords)-1]] {
		t.Fatal("drift displaced the pinned head word")
	}
}
