package text

import (
	"math"
	"reflect"
	"testing"
)

func defTok() *Tokenizer { return NewTokenizer(DefaultTokenizerOptions()) }

func TestTokenizeBasic(t *testing.T) {
	got := defTok().Tokenize("Support the #California #GMO Labeling Ballot Initiative #prop37")
	want := []string{"support", "california", "gmo", "labeling", "ballot", "initiative", "prop37"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropsURLsAndMentions(t *testing.T) {
	got := defTok().Tokenize("RT @alice check https://example.com/x and www.foo.org now!")
	want := []string{"check"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeKeepMentions(t *testing.T) {
	opts := DefaultTokenizerOptions()
	opts.KeepMentions = true
	got := NewTokenizer(opts).Tokenize("@Alice hello")
	want := []string{"alice", "hello"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropHashtags(t *testing.T) {
	opts := DefaultTokenizerOptions()
	opts.KeepHashtags = false
	got := NewTokenizer(opts).Tokenize("vote #prop37 today")
	want := []string{"vote", "today"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizePunctuationTrim(t *testing.T) {
	got := defTok().Tokenize("Monsanto is pure evil!!! :)")
	want := []string{"monsanto", "pure", "evil"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeStopwordsRetainedWhenDisabled(t *testing.T) {
	opts := DefaultTokenizerOptions()
	opts.RemoveStopwords = false
	got := NewTokenizer(opts).Tokenize("this is gmo")
	want := []string{"this", "is", "gmo"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeMinLen(t *testing.T) {
	got := defTok().Tokenize("x yz abc")
	want := []string{"yz", "abc"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := defTok().Tokenize("   "); len(got) != 0 {
		t.Fatalf("Tokenize(blank) = %v", got)
	}
}

func TestTokenizeNumericHashtag(t *testing.T) {
	got := defTok().Tokenize("#37 matters")
	want := []string{"37", "matters"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("the") || IsStopword("gmo") {
		t.Fatal("IsStopword misclassifies")
	}
}

func TestVocabularyAddAndLookup(t *testing.T) {
	v := NewVocabulary()
	a := v.AddWord("apple")
	b := v.AddWord("banana")
	if a == b {
		t.Fatal("distinct words share an index")
	}
	if v.AddWord("apple") != a {
		t.Fatal("re-adding changed index")
	}
	if v.ID("apple") != a || v.ID("zzz") != -1 {
		t.Fatal("ID lookup wrong")
	}
	if v.Word(b) != "banana" {
		t.Fatal("Word lookup wrong")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
}

func TestBuildVocabularyMinDF(t *testing.T) {
	docs := [][]string{
		{"common", "rare"},
		{"common", "common"}, // duplicate within doc counts once for DF
		{"common", "other"},
	}
	v := BuildVocabulary(docs, 2)
	if v.ID("common") < 0 {
		t.Fatal("common dropped")
	}
	if v.ID("rare") >= 0 || v.ID("other") >= 0 {
		t.Fatal("minDF not applied")
	}
}

func TestBuildVocabularyDeterministicOrder(t *testing.T) {
	docs := [][]string{{"b", "a", "c"}}
	v := BuildVocabulary(docs, 1)
	if !reflect.DeepEqual(v.Words(), []string{"a", "b", "c"}) {
		t.Fatalf("Words = %v", v.Words())
	}
}

func TestDocFeatureMatrixTF(t *testing.T) {
	v := NewVocabulary()
	v.AddWord("gmo")
	v.AddWord("label")
	docs := [][]string{{"gmo", "gmo", "label"}, {"unknown"}}
	x := DocFeatureMatrix(docs, v, TF)
	if x.Rows() != 2 || x.Cols() != 2 {
		t.Fatalf("dims %dx%d", x.Rows(), x.Cols())
	}
	if x.At(0, 0) != 2 || x.At(0, 1) != 1 || x.RowNNZ(1) != 0 {
		t.Fatalf("TF values wrong: %v", x.ToDense())
	}
}

func TestDocFeatureMatrixBinary(t *testing.T) {
	v := NewVocabulary()
	v.AddWord("gmo")
	docs := [][]string{{"gmo", "gmo", "gmo"}}
	x := DocFeatureMatrix(docs, v, Binary)
	if x.At(0, 0) != 1 {
		t.Fatalf("Binary value = %v", x.At(0, 0))
	}
}

func TestDocFeatureMatrixTFIDF(t *testing.T) {
	v := NewVocabulary()
	v.AddWord("everywhere")
	v.AddWord("once")
	docs := [][]string{
		{"everywhere", "once"},
		{"everywhere"},
		{"everywhere"},
	}
	x := DocFeatureMatrix(docs, v, TFIDF)
	// "once" is rarer so its weight in doc 0 must exceed "everywhere"'s.
	if !(x.At(0, 1) > x.At(0, 0)) {
		t.Fatalf("IDF ordering wrong: once=%v everywhere=%v", x.At(0, 1), x.At(0, 0))
	}
}

func TestInverseDocumentFrequencyValues(t *testing.T) {
	v := NewVocabulary()
	v.AddWord("w")
	docs := [][]string{{"w"}, {"w"}}
	tf := DocFeatureMatrix(docs, v, TF)
	idf := InverseDocumentFrequency(tf)
	want := math.Log(3.0/3.0) + 1
	if math.Abs(idf[0]-want) > 1e-12 {
		t.Fatalf("idf = %v, want %v", idf[0], want)
	}
}

func TestUserFeatureMatrixAggregation(t *testing.T) {
	v := NewVocabulary()
	v.AddWord("gmo")
	v.AddWord("tax")
	docs := [][]string{{"gmo"}, {"gmo", "tax"}, {"tax"}}
	xp := DocFeatureMatrix(docs, v, TF)
	owner := []int{0, 0, 1}
	xu := UserFeatureMatrix(xp, owner, 2)
	if xu.At(0, 0) != 2 || xu.At(0, 1) != 1 || xu.At(1, 1) != 1 || xu.At(1, 0) != 0 {
		t.Fatalf("Xu wrong: %v", xu.ToDense())
	}
}

func TestUserFeatureMatrixSkipsUnowned(t *testing.T) {
	v := NewVocabulary()
	v.AddWord("gmo")
	xp := DocFeatureMatrix([][]string{{"gmo"}}, v, TF)
	xu := UserFeatureMatrix(xp, []int{-1}, 1)
	if xu.NNZ() != 0 {
		t.Fatal("unowned tweet aggregated")
	}
}

func TestUserFeatureMatrixLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	v := NewVocabulary()
	v.AddWord("x")
	xp := DocFeatureMatrix([][]string{{"x"}}, v, TF)
	UserFeatureMatrix(xp, []int{0, 1}, 2)
}

func TestStem(t *testing.T) {
	for in, want := range map[string]string{
		"farmers":  "farmer",
		"labeling": "label",
		"crops":    "crop",
		"parties":  "party",
		"walked":   "walk",
		"quickly":  "quick",
		"glass":    "glass", // -ss protected
		"virus":    "virus", // -us protected
		"gmo":      "gmo",   // too short to strip
		"feed":     "feed",  // -eed protected ('e' before "ed")
	} {
		if got := Stem(in); got != want {
			t.Fatalf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenizeWithStemming(t *testing.T) {
	opts := DefaultTokenizerOptions()
	opts.Stem = true
	got := NewTokenizer(opts).Tokenize("farmers labeling crops")
	want := []string{"farmer", "label", "crop"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestStemNeverBelowThreeRunes(t *testing.T) {
	for _, in := range []string{"as", "is", "bed", "its", "gas"} {
		if got := Stem(in); len(got) < len(in) && len(got) < 3 {
			t.Fatalf("Stem(%q) = %q too short", in, got)
		}
	}
}
