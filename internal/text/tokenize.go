// Package text implements the light-weight NLP pipeline the paper relies
// on: tweet tokenization, normalization, stopword filtering, vocabulary
// construction, and TF / TF-IDF feature-matrix builders.
//
// The paper uses "tf-idf term vector representation" (§5.1) over a
// hashtag-aware Twitter tokenizer; this package reproduces that behaviour
// with the Go standard library only.
package text

import (
	"strings"
	"unicode"
)

// TokenizerOptions control tweet normalization.
type TokenizerOptions struct {
	// KeepHashtags retains hashtag tokens with the '#' stripped
	// ("#prop37" → "prop37"); otherwise hashtags are dropped entirely.
	KeepHashtags bool
	// KeepMentions retains @-mentions with the '@' stripped; otherwise
	// mentions are dropped (the paper's features are content words).
	KeepMentions bool
	// RemoveStopwords drops common English function words.
	RemoveStopwords bool
	// MinTokenLen drops tokens shorter than this many runes (after
	// normalization). Zero means no minimum.
	MinTokenLen int
	// Stem applies a light suffix stemmer (plural/-ing/-ed/-ly), merging
	// inflected forms of topical words ("farmers"→"farmer",
	// "labeling"→"label"). Off by default: the paper's features are raw
	// hashtags and words.
	Stem bool
}

// DefaultTokenizerOptions matches the preprocessing described in the paper:
// hashtags are first-class features (Table 2 lists "yeson37", "noprop37"),
// mentions are dropped, stopwords removed, single-character tokens dropped.
func DefaultTokenizerOptions() TokenizerOptions {
	return TokenizerOptions{
		KeepHashtags:    true,
		KeepMentions:    false,
		RemoveStopwords: true,
		MinTokenLen:     2,
	}
}

// Tokenizer converts raw tweet text to normalized feature tokens.
type Tokenizer struct {
	opts TokenizerOptions
}

// NewTokenizer returns a tokenizer with the given options.
func NewTokenizer(opts TokenizerOptions) *Tokenizer { return &Tokenizer{opts: opts} }

// Options returns the tokenizer's configuration.
func (t *Tokenizer) Options() TokenizerOptions { return t.opts }

// Tokenize splits, normalizes and filters a tweet.
func (t *Tokenizer) Tokenize(s string) []string {
	fields := strings.Fields(s)
	out := make([]string, 0, len(fields))
	for _, f := range fields {
		tok, ok := t.normalize(f)
		if !ok {
			continue
		}
		if t.opts.MinTokenLen > 0 && len([]rune(tok)) < t.opts.MinTokenLen {
			continue
		}
		if t.opts.RemoveStopwords && IsStopword(tok) {
			continue
		}
		if t.opts.Stem {
			tok = Stem(tok)
		}
		out = append(out, tok)
	}
	return out
}

// normalize lowercases a raw whitespace-delimited field, strips URLs,
// handles the #/@ prefixes, and trims punctuation. The boolean result is
// false when the field should be discarded.
func (t *Tokenizer) normalize(f string) (string, bool) {
	f = strings.ToLower(f)
	if strings.HasPrefix(f, "http://") || strings.HasPrefix(f, "https://") || strings.HasPrefix(f, "www.") {
		return "", false
	}
	if strings.HasPrefix(f, "#") {
		if !t.opts.KeepHashtags {
			return "", false
		}
		f = f[1:]
	} else if strings.HasPrefix(f, "@") {
		if !t.opts.KeepMentions {
			return "", false
		}
		f = f[1:]
	} else if strings.HasPrefix(f, "rt") && len(f) == 2 {
		// Bare retweet marker.
		return "", false
	}
	f = strings.TrimFunc(f, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r)
	})
	if f == "" {
		return "", false
	}
	// Reject tokens with no letters at all (pure numbers/punctuation runs)
	// unless they are short numeric hashtags like "37" which do carry
	// stance signal; we keep digits-only tokens of length ≥ 2.
	hasLetter := false
	for _, r := range f {
		if unicode.IsLetter(r) {
			hasLetter = true
			break
		}
	}
	if !hasLetter && len(f) < 2 {
		return "", false
	}
	return f, true
}

// stopwords is a compact English stopword list adequate for feature
// pruning; the exact list is not behaviour-critical.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "as", "at", "be", "because", "been",
		"before", "being", "below", "between", "both", "but", "by", "can",
		"cannot", "could", "did", "do", "does", "doing", "down", "during",
		"each", "few", "for", "from", "further", "had", "has", "have",
		"having", "he", "her", "here", "hers", "herself", "him", "himself",
		"his", "how", "i", "if", "in", "into", "is", "it", "its", "itself",
		"just", "me", "more", "most", "my", "myself", "no", "nor", "not",
		"now", "of", "off", "on", "once", "only", "or", "other", "our",
		"ours", "ourselves", "out", "over", "own", "same", "she", "should",
		"so", "some", "such", "than", "that", "the", "their", "theirs",
		"them", "themselves", "then", "there", "these", "they", "this",
		"those", "through", "to", "too", "under", "until", "up", "very",
		"was", "we", "were", "what", "when", "where", "which", "while",
		"who", "whom", "why", "will", "with", "you", "your", "yours",
		"yourself", "yourselves", "rt", "via", "amp",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (already lowercased) token is a stopword.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

// Stem applies a conservative suffix stemmer adequate for merging the
// inflections seen in topical tweet vocabularies. It never shortens a
// token below three runes and only strips one suffix.
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 5 && strings.HasSuffix(tok, "ingly"):
		return tok[:n-5]
	case n > 4 && strings.HasSuffix(tok, "ings"):
		return tok[:n-4]
	case n > 4 && strings.HasSuffix(tok, "edly"):
		return tok[:n-4]
	case n > 5 && strings.HasSuffix(tok, "ing"):
		return tok[:n-3]
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && strings.HasSuffix(tok, "es") && !strings.HasSuffix(tok, "ses"):
		return tok[:n-1] // "crates"→"crate" style: drop the final s only
	case n > 4 && strings.HasSuffix(tok, "ed") && tok[n-3] != 'e':
		return tok[:n-2]
	case n > 4 && strings.HasSuffix(tok, "ly"):
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us"):
		return tok[:n-1]
	default:
		return tok
	}
}
