// Package text implements the light-weight NLP pipeline the paper relies
// on: tweet tokenization, normalization, stopword filtering, vocabulary
// construction, and TF / TF-IDF feature-matrix builders.
//
// The paper uses "tf-idf term vector representation" (§5.1) over a
// hashtag-aware Twitter tokenizer; this package reproduces that behaviour
// with the Go standard library only.
package text

import (
	"strings"
	"unicode"
)

// TokenizerOptions control tweet normalization.
type TokenizerOptions struct {
	// KeepHashtags retains hashtag tokens with the '#' stripped
	// ("#prop37" → "prop37"); otherwise hashtags are dropped entirely.
	KeepHashtags bool
	// KeepMentions retains @-mentions with the '@' stripped; otherwise
	// mentions are dropped (the paper's features are content words).
	KeepMentions bool
	// RemoveStopwords drops common English function words.
	RemoveStopwords bool
	// MinTokenLen drops tokens shorter than this many runes (after
	// normalization). Zero means no minimum.
	MinTokenLen int
	// Stem applies a light suffix stemmer (plural/-ing/-ed/-ly), merging
	// inflected forms of topical words ("farmers"→"farmer",
	// "labeling"→"label"). Off by default: the paper's features are raw
	// hashtags and words.
	Stem bool
}

// DefaultTokenizerOptions matches the preprocessing described in the paper:
// hashtags are first-class features (Table 2 lists "yeson37", "noprop37"),
// mentions are dropped, stopwords removed, single-character tokens dropped.
func DefaultTokenizerOptions() TokenizerOptions {
	return TokenizerOptions{
		KeepHashtags:    true,
		KeepMentions:    false,
		RemoveStopwords: true,
		MinTokenLen:     2,
	}
}

// Tokenizer converts raw tweet text to normalized feature tokens.
type Tokenizer struct {
	opts TokenizerOptions
}

// NewTokenizer returns a tokenizer with the given options.
func NewTokenizer(opts TokenizerOptions) *Tokenizer { return &Tokenizer{opts: opts} }

// Options returns the tokenizer's configuration.
func (t *Tokenizer) Options() TokenizerOptions { return t.opts }

// Tokenize splits, normalizes and filters a tweet.
func (t *Tokenizer) Tokenize(s string) []string {
	return t.AppendTokens(nil, s, nil)
}

// Interner deduplicates token strings across batches: topical streams
// repeat a bounded vocabulary, so after warm-up every token of a new
// tweet is resolved to its canonical string by a byte-keyed map lookup
// with no allocation. The entry count is capped; past the cap unseen
// tokens are plainly allocated (a hostile all-unique stream degrades to
// today's cost instead of growing the table without bound).
//
// An Interner also carries the tokenizer's byte scratch, so it must not
// be shared between goroutines; each engine session owns one.
type Interner struct {
	m       map[string]string
	scratch []byte
}

// maxInternedTokens bounds the intern table (entries, not bytes).
const maxInternedTokens = 1 << 16

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string)}
}

// intern returns the canonical string for the bytes, allocating only the
// first time a token is seen (while the table has room).
func (in *Interner) intern(b []byte) string {
	if s, ok := in.m[string(b)]; ok { // compiler elides the conversion
		return s
	}
	s := string(b)
	if len(in.m) < maxInternedTokens {
		in.m[s] = s
	}
	return s
}

// AppendTokens tokenizes s like Tokenize and appends the tokens to dst,
// returning the extended slice. With a non-nil Interner, ASCII tweets are
// processed zero-copy: fields are normalized into the interner's byte
// scratch and resolved to canonical strings, so a warm steady state
// appends without heap allocation. Non-ASCII input falls back to the
// allocating path (identical results either way).
func (t *Tokenizer) AppendTokens(dst []string, s string, in *Interner) []string {
	if in != nil && isASCII(s) {
		return t.appendTokensASCII(dst, s, in)
	}
	fields := strings.Fields(s)
	if dst == nil {
		dst = make([]string, 0, len(fields))
	}
	for _, f := range fields {
		tok, ok := t.normalize(f)
		if !ok {
			continue
		}
		if t.opts.MinTokenLen > 0 && len([]rune(tok)) < t.opts.MinTokenLen {
			continue
		}
		if t.opts.RemoveStopwords && IsStopword(tok) {
			continue
		}
		if t.opts.Stem {
			tok = Stem(tok)
		}
		dst = append(dst, tok)
	}
	return dst
}

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// asciiSpace mirrors unicode.IsSpace over the ASCII range (the only
// bytes an all-ASCII string can contain).
func asciiSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r'
}

// appendTokensASCII is the zero-copy fast path: every step of normalize
// replayed byte-wise on the interner's scratch buffer.
func (t *Tokenizer) appendTokensASCII(dst []string, s string, in *Interner) []string {
	n := len(s)
	for i := 0; i < n; {
		for i < n && asciiSpace(s[i]) {
			i++
		}
		start := i
		for i < n && !asciiSpace(s[i]) {
			i++
		}
		if start == i {
			break
		}
		b, ok := t.normalizeASCII(s[start:i], in)
		if !ok {
			continue
		}
		// MinTokenLen counts runes; ASCII bytes are runes.
		if t.opts.MinTokenLen > 0 && len(b) < t.opts.MinTokenLen {
			continue
		}
		if t.opts.RemoveStopwords {
			if _, stop := stopwords[string(b)]; stop { // no-alloc lookup
				continue
			}
		}
		tok := in.intern(b)
		if t.opts.Stem {
			tok = Stem(tok)
		}
		dst = append(dst, tok)
	}
	return dst
}

// normalizeASCII is normalize over a lowercased copy of the field in the
// interner's scratch buffer. The returned bytes alias that buffer and
// are only valid until the next call.
func (t *Tokenizer) normalizeASCII(f string, in *Interner) ([]byte, bool) {
	b := in.scratch[:0]
	for i := 0; i < len(f); i++ {
		c := f[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	in.scratch = b[:0]
	if hasBytePrefix(b, "http://") || hasBytePrefix(b, "https://") || hasBytePrefix(b, "www.") {
		return nil, false
	}
	if len(b) > 0 && b[0] == '#' {
		if !t.opts.KeepHashtags {
			return nil, false
		}
		b = b[1:]
	} else if len(b) > 0 && b[0] == '@' {
		if !t.opts.KeepMentions {
			return nil, false
		}
		b = b[1:]
	} else if len(b) == 2 && b[0] == 'r' && b[1] == 't' {
		// Bare retweet marker.
		return nil, false
	}
	lo, hi := 0, len(b)
	for lo < hi && !asciiAlnum(b[lo]) {
		lo++
	}
	for hi > lo && !asciiAlnum(b[hi-1]) {
		hi--
	}
	b = b[lo:hi]
	if len(b) == 0 {
		return nil, false
	}
	hasLetter := false
	for _, c := range b {
		if 'a' <= c && c <= 'z' {
			hasLetter = true
			break
		}
	}
	if !hasLetter && len(b) < 2 {
		return nil, false
	}
	return b, true
}

func asciiAlnum(c byte) bool {
	return ('a' <= c && c <= 'z') || ('0' <= c && c <= '9')
}

func hasBytePrefix(b []byte, prefix string) bool {
	if len(b) < len(prefix) {
		return false
	}
	for i := 0; i < len(prefix); i++ {
		if b[i] != prefix[i] {
			return false
		}
	}
	return true
}

// normalize lowercases a raw whitespace-delimited field, strips URLs,
// handles the #/@ prefixes, and trims punctuation. The boolean result is
// false when the field should be discarded.
func (t *Tokenizer) normalize(f string) (string, bool) {
	f = strings.ToLower(f)
	if strings.HasPrefix(f, "http://") || strings.HasPrefix(f, "https://") || strings.HasPrefix(f, "www.") {
		return "", false
	}
	if strings.HasPrefix(f, "#") {
		if !t.opts.KeepHashtags {
			return "", false
		}
		f = f[1:]
	} else if strings.HasPrefix(f, "@") {
		if !t.opts.KeepMentions {
			return "", false
		}
		f = f[1:]
	} else if strings.HasPrefix(f, "rt") && len(f) == 2 {
		// Bare retweet marker.
		return "", false
	}
	f = strings.TrimFunc(f, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r)
	})
	if f == "" {
		return "", false
	}
	// Reject tokens with no letters at all (pure numbers/punctuation runs)
	// unless they are short numeric hashtags like "37" which do carry
	// stance signal; we keep digits-only tokens of length ≥ 2.
	hasLetter := false
	for _, r := range f {
		if unicode.IsLetter(r) {
			hasLetter = true
			break
		}
	}
	if !hasLetter && len(f) < 2 {
		return "", false
	}
	return f, true
}

// stopwords is a compact English stopword list adequate for feature
// pruning; the exact list is not behaviour-critical.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range []string{
		"a", "about", "above", "after", "again", "against", "all", "am",
		"an", "and", "any", "are", "as", "at", "be", "because", "been",
		"before", "being", "below", "between", "both", "but", "by", "can",
		"cannot", "could", "did", "do", "does", "doing", "down", "during",
		"each", "few", "for", "from", "further", "had", "has", "have",
		"having", "he", "her", "here", "hers", "herself", "him", "himself",
		"his", "how", "i", "if", "in", "into", "is", "it", "its", "itself",
		"just", "me", "more", "most", "my", "myself", "no", "nor", "not",
		"now", "of", "off", "on", "once", "only", "or", "other", "our",
		"ours", "ourselves", "out", "over", "own", "same", "she", "should",
		"so", "some", "such", "than", "that", "the", "their", "theirs",
		"them", "themselves", "then", "there", "these", "they", "this",
		"those", "through", "to", "too", "under", "until", "up", "very",
		"was", "we", "were", "what", "when", "where", "which", "while",
		"who", "whom", "why", "will", "with", "you", "your", "yours",
		"yourself", "yourselves", "rt", "via", "amp",
	} {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (already lowercased) token is a stopword.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

// Stem applies a conservative suffix stemmer adequate for merging the
// inflections seen in topical tweet vocabularies. It never shortens a
// token below three runes and only strips one suffix.
func Stem(tok string) string {
	n := len(tok)
	switch {
	case n > 5 && strings.HasSuffix(tok, "ingly"):
		return tok[:n-5]
	case n > 4 && strings.HasSuffix(tok, "ings"):
		return tok[:n-4]
	case n > 4 && strings.HasSuffix(tok, "edly"):
		return tok[:n-4]
	case n > 5 && strings.HasSuffix(tok, "ing"):
		return tok[:n-3]
	case n > 4 && strings.HasSuffix(tok, "ies"):
		return tok[:n-3] + "y"
	case n > 4 && strings.HasSuffix(tok, "es") && !strings.HasSuffix(tok, "ses"):
		return tok[:n-1] // "crates"→"crate" style: drop the final s only
	case n > 4 && strings.HasSuffix(tok, "ed") && tok[n-3] != 'e':
		return tok[:n-2]
	case n > 4 && strings.HasSuffix(tok, "ly"):
		return tok[:n-2]
	case n > 3 && strings.HasSuffix(tok, "s") && !strings.HasSuffix(tok, "ss") && !strings.HasSuffix(tok, "us"):
		return tok[:n-1]
	default:
		return tok
	}
}
