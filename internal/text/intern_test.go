package text

import (
	"reflect"
	"testing"
)

// tokenizerCases are inputs chosen to hit every branch of normalize:
// URLs, hashtags, mentions, the bare-RT marker, punctuation trims,
// digits-only tokens, stopwords, length filters, mixed case, and
// non-ASCII text (which must route through the fallback path).
var tokenizerCases = []string{
	"",
	"   ",
	"RT @alice Support the #California #GMO Labeling Ballot Initiative #prop37 https://example.com now!!!",
	"plain words only",
	"UPPER Case MiXeD",
	"#yeson37 #NoProp37 @Bob @carol www.example.org http://x.y",
	"37 9 x yz !! ... (parens) [brackets] 'quotes'",
	"rt rt! rt37 #rt @rt",
	"trailing-dash- -leading-dash double--dash",
	"a ab abc the and of",
	"naïve café résumé — em-dash…ellipsis",
	"emoji 🎉 mixed ascii",
	"tab\tseparated\nnewline\rcarriage",
	"#37 #4 ## #",
	"ends.with.dots... #hash.tag",
}

func tokenizerOptionVariants() []TokenizerOptions {
	var out []TokenizerOptions
	for _, keepHash := range []bool{true, false} {
		for _, keepMention := range []bool{true, false} {
			for _, stop := range []bool{true, false} {
				for _, stem := range []bool{true, false} {
					for _, minLen := range []int{0, 2, 4} {
						out = append(out, TokenizerOptions{
							KeepHashtags:    keepHash,
							KeepMentions:    keepMention,
							RemoveStopwords: stop,
							MinTokenLen:     minLen,
							Stem:            stem,
						})
					}
				}
			}
		}
	}
	return out
}

// TestAppendTokensMatchesTokenize pins the zero-copy ASCII fast path to
// the reference implementation across every option combination: interned
// tokenization must be a pure optimization, never a behaviour change.
func TestAppendTokensMatchesTokenize(t *testing.T) {
	for _, opts := range tokenizerOptionVariants() {
		tok := NewTokenizer(opts)
		in := NewInterner()
		for _, s := range tokenizerCases {
			want := tok.Tokenize(s)
			got := tok.AppendTokens(nil, s, in)
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("opts %+v input %q:\ninterned %v\nplain    %v", opts, s, got, want)
			}
			// Re-running over the warm interner must not change results.
			again := tok.AppendTokens(nil, s, in)
			if !reflect.DeepEqual(again, want) {
				t.Fatalf("opts %+v input %q: second pass diverged: %v vs %v", opts, s, again, want)
			}
		}
	}
}

// TestAppendTokensSteadyStateAllocFree asserts the point of the
// interner: tokenizing previously seen ASCII text into a reused buffer
// performs no heap allocation.
func TestAppendTokensSteadyStateAllocFree(t *testing.T) {
	tok := NewTokenizer(DefaultTokenizerOptions())
	in := NewInterner()
	tweet := "RT @alice Support the #California #GMO Labeling Ballot Initiative #prop37 https://example.com now!!!"
	buf := tok.AppendTokens(nil, tweet, in) // warm the interner and buffer
	avg := testing.AllocsPerRun(100, func() {
		buf = tok.AppendTokens(buf[:0], tweet, in)
		if len(buf) == 0 {
			t.Fatal("no tokens")
		}
	})
	if avg != 0 {
		t.Fatalf("warm AppendTokens allocates %.1f times per call, want 0", avg)
	}
}

// TestInternerCapBounds verifies the intern table stops growing at its
// cap instead of letting a hostile all-unique stream expand it forever.
func TestInternerCapBounds(t *testing.T) {
	in := NewInterner()
	if maxInternedTokens > 1<<20 {
		t.Fatalf("unexpected cap %d", maxInternedTokens)
	}
	scratch := make([]byte, 0, 16)
	for i := 0; i < maxInternedTokens+100; i++ {
		scratch = scratch[:0]
		scratch = append(scratch, 't')
		for v := i; v > 0; v /= 10 {
			scratch = append(scratch, byte('0'+v%10))
		}
		in.intern(scratch)
	}
	if len(in.m) > maxInternedTokens {
		t.Fatalf("intern table grew to %d entries past the %d cap", len(in.m), maxInternedTokens)
	}
}
