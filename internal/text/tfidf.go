package text

import (
	"math"

	"triclust/internal/sparse"
)

// Weighting selects the feature weighting scheme for document–feature
// matrices.
type Weighting int

const (
	// TF uses raw term counts.
	TF Weighting = iota
	// TFIDF uses tf · ln((1+N)/(1+df)) + 1 smoothing, the standard
	// smoothed inverse-document-frequency weighting.
	TFIDF
	// Binary uses 0/1 presence indicators.
	Binary
)

// DocFeatureMatrix builds the n×l document–feature matrix (the paper's Xp
// when documents are tweets, or the per-user aggregation source for Xu)
// from tokenized documents under the given vocabulary and weighting.
// Out-of-vocabulary tokens are ignored.
func DocFeatureMatrix(docs [][]string, vocab *Vocabulary, w Weighting) *sparse.CSR {
	var s FeatureScratch
	return s.DocFeatureMatrixInto(nil, docs, vocab, w)
}

// FeatureScratch holds the reusable construction state — the triplet
// builder, the per-document dedup set and the document-frequency buffer —
// so that per-batch feature-matrix builds stop allocating once buffers
// reach their steady size. The zero value is ready to use; not safe for
// concurrent use.
type FeatureScratch struct {
	coo  sparse.COO
	seen map[int]struct{}
	df   []float64
}

// DocFeatureMatrixInto is DocFeatureMatrix emitting into a reusable dst
// (nil allocates one).
func (s *FeatureScratch) DocFeatureMatrixInto(dst *sparse.CSR, docs [][]string, vocab *Vocabulary, w Weighting) *sparse.CSR {
	n, l := len(docs), vocab.Len()
	s.coo.Reset(n, l)
	switch w {
	case Binary:
		if s.seen == nil {
			s.seen = make(map[int]struct{})
		}
		for i, doc := range docs {
			clear(s.seen)
			for _, tok := range doc {
				j := vocab.ID(tok)
				if j < 0 {
					continue
				}
				if _, dup := s.seen[j]; dup {
					continue
				}
				s.seen[j] = struct{}{}
				s.coo.Add(i, j, 1)
			}
		}
		return s.coo.ToCSRInto(dst)
	case TF:
		for i, doc := range docs {
			for _, tok := range doc {
				if j := vocab.ID(tok); j >= 0 {
					s.coo.Add(i, j, 1)
				}
			}
		}
		return s.coo.ToCSRInto(dst)
	case TFIDF:
		tf := s.DocFeatureMatrixInto(dst, docs, vocab, TF)
		s.df = InverseDocumentFrequencyInto(s.df, tf)
		tf.ScaleColsInPlace(s.df)
		return tf
	default:
		panic("text: unknown weighting")
	}
}

// UserFeatureMatrixInto is UserFeatureMatrix emitting into a reusable dst
// (nil allocates one).
func (s *FeatureScratch) UserFeatureMatrixInto(dst *sparse.CSR, xp *sparse.CSR, owner []int, numUsers int) *sparse.CSR {
	if len(owner) != xp.Rows() {
		panic("text: owner length must match tweet count")
	}
	s.coo.Reset(numUsers, xp.Cols())
	for i := 0; i < xp.Rows(); i++ {
		u := owner[i]
		if u < 0 {
			continue
		}
		cols, vals := xp.Row(i)
		for p, j := range cols {
			s.coo.Add(u, j, vals[p])
		}
	}
	return s.coo.ToCSRInto(dst)
}

// InverseDocumentFrequency returns the smoothed IDF vector
// idf(j) = ln((1+N)/(1+df(j))) + 1 for an n×l term-frequency matrix.
func InverseDocumentFrequency(tf *sparse.CSR) []float64 {
	return InverseDocumentFrequencyInto(nil, tf)
}

// InverseDocumentFrequencyInto computes the smoothed IDF vector into dst,
// reusing its backing array when large enough.
func InverseDocumentFrequencyInto(dst []float64, tf *sparse.CSR) []float64 {
	n := tf.Rows()
	l := tf.Cols()
	if cap(dst) < l {
		dst = make([]float64, l)
	} else {
		dst = dst[:l]
		for j := range dst {
			dst[j] = 0
		}
	}
	for i := 0; i < n; i++ {
		cols, _ := tf.Row(i)
		for _, j := range cols {
			dst[j]++
		}
	}
	for j, d := range dst {
		dst[j] = math.Log((1+float64(n))/(1+d)) + 1
	}
	return dst
}

// UserFeatureMatrix aggregates an n×l tweet–feature matrix into the m×l
// user–feature matrix Xu by summing the rows of each user's tweets.
// owner[i] gives the user index of tweet i; tweets with owner -1 are
// skipped.
func UserFeatureMatrix(xp *sparse.CSR, owner []int, numUsers int) *sparse.CSR {
	var s FeatureScratch
	return s.UserFeatureMatrixInto(nil, xp, owner, numUsers)
}
