package text

import (
	"math"

	"triclust/internal/sparse"
)

// Weighting selects the feature weighting scheme for document–feature
// matrices.
type Weighting int

const (
	// TF uses raw term counts.
	TF Weighting = iota
	// TFIDF uses tf · ln((1+N)/(1+df)) + 1 smoothing, the standard
	// smoothed inverse-document-frequency weighting.
	TFIDF
	// Binary uses 0/1 presence indicators.
	Binary
)

// DocFeatureMatrix builds the n×l document–feature matrix (the paper's Xp
// when documents are tweets, or the per-user aggregation source for Xu)
// from tokenized documents under the given vocabulary and weighting.
// Out-of-vocabulary tokens are ignored.
func DocFeatureMatrix(docs [][]string, vocab *Vocabulary, w Weighting) *sparse.CSR {
	n, l := len(docs), vocab.Len()
	b := sparse.NewCOO(n, l)
	switch w {
	case Binary:
		seen := make(map[int]struct{})
		for i, doc := range docs {
			for k := range seen {
				delete(seen, k)
			}
			for _, tok := range doc {
				j := vocab.ID(tok)
				if j < 0 {
					continue
				}
				if _, dup := seen[j]; dup {
					continue
				}
				seen[j] = struct{}{}
				b.Add(i, j, 1)
			}
		}
		return b.ToCSR()
	case TF:
		for i, doc := range docs {
			for _, tok := range doc {
				if j := vocab.ID(tok); j >= 0 {
					b.Add(i, j, 1)
				}
			}
		}
		return b.ToCSR()
	case TFIDF:
		tf := DocFeatureMatrix(docs, vocab, TF)
		idf := InverseDocumentFrequency(tf)
		return tf.ScaleCols(idf)
	default:
		panic("text: unknown weighting")
	}
}

// InverseDocumentFrequency returns the smoothed IDF vector
// idf(j) = ln((1+N)/(1+df(j))) + 1 for an n×l term-frequency matrix.
func InverseDocumentFrequency(tf *sparse.CSR) []float64 {
	n := tf.Rows()
	df := make([]float64, tf.Cols())
	for i := 0; i < n; i++ {
		cols, _ := tf.Row(i)
		for _, j := range cols {
			df[j]++
		}
	}
	idf := make([]float64, len(df))
	for j, d := range df {
		idf[j] = math.Log((1+float64(n))/(1+d)) + 1
	}
	return idf
}

// UserFeatureMatrix aggregates an n×l tweet–feature matrix into the m×l
// user–feature matrix Xu by summing the rows of each user's tweets.
// owner[i] gives the user index of tweet i; tweets with owner -1 are
// skipped.
func UserFeatureMatrix(xp *sparse.CSR, owner []int, numUsers int) *sparse.CSR {
	if len(owner) != xp.Rows() {
		panic("text: owner length must match tweet count")
	}
	b := sparse.NewCOO(numUsers, xp.Cols())
	for i := 0; i < xp.Rows(); i++ {
		u := owner[i]
		if u < 0 {
			continue
		}
		cols, vals := xp.Row(i)
		for p, j := range cols {
			b.Add(u, j, vals[p])
		}
	}
	return b.ToCSR()
}
