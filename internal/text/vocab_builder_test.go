package text

import "testing"

func TestVocabBuilderIncrementalMatchesBatch(t *testing.T) {
	docs := [][]string{
		{"apple", "banana", "apple"},
		{"banana", "cherry"},
		{"cherry", "banana", "durian"},
		{"apple"},
	}
	want := BuildVocabulary(docs, 2)

	b := NewVocabBuilder()
	b.Add(docs[0])
	b.Add(docs[1], docs[2])
	b.Add(docs[3])
	got := b.Build(2)

	if got.Len() != want.Len() {
		t.Fatalf("incremental vocab has %d words, batch has %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.Word(i) != want.Word(i) {
			t.Fatalf("word %d: incremental %q, batch %q", i, got.Word(i), want.Word(i))
		}
	}
	if b.Docs() != len(docs) {
		t.Fatalf("Docs() = %d, want %d", b.Docs(), len(docs))
	}
	if b.Distinct() != 4 {
		t.Fatalf("Distinct() = %d, want 4", b.Distinct())
	}
}

func TestVocabBuilderOrderIndependent(t *testing.T) {
	a := NewVocabBuilder()
	a.Add([]string{"x", "y"}, []string{"y", "z"})
	b := NewVocabBuilder()
	b.Add([]string{"y", "z"}, []string{"x", "y"})
	va, vb := a.Build(1), b.Build(1)
	if va.Len() != vb.Len() {
		t.Fatalf("order-dependent sizes: %d vs %d", va.Len(), vb.Len())
	}
	for i := 0; i < va.Len(); i++ {
		if va.Word(i) != vb.Word(i) {
			t.Fatalf("order-dependent index %d: %q vs %q", i, va.Word(i), vb.Word(i))
		}
	}
}

func TestVocabBuilderReusableAfterBuild(t *testing.T) {
	b := NewVocabBuilder()
	b.Add([]string{"one"})
	if v := b.Build(1); v.Len() != 1 {
		t.Fatalf("first build has %d words", v.Len())
	}
	b.Add([]string{"two"})
	if v := b.Build(1); v.Len() != 2 {
		t.Fatalf("second build has %d words", v.Len())
	}
}
