package text

import "sort"

// Vocabulary maps feature tokens to dense column indices. The zero value is
// not usable; construct with NewVocabulary or BuildVocabulary.
type Vocabulary struct {
	index map[string]int
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// BuildVocabulary constructs a vocabulary from tokenized documents, keeping
// only tokens that occur in at least minDF documents. Tokens are assigned
// indices in lexicographic order for determinism.
func BuildVocabulary(docs [][]string, minDF int) *Vocabulary {
	b := NewVocabBuilder()
	b.Add(docs...)
	return b.Build(minDF)
}

// VocabBuilder accumulates document frequencies incrementally, so a
// vocabulary can be grown from streamed batches before being frozen with
// Build. The resulting vocabulary is identical to BuildVocabulary over the
// concatenation of every Add call (document frequencies are additive and
// the index order is lexicographic, so the arrival order of batches does
// not matter).
type VocabBuilder struct {
	df   map[string]int
	seen map[string]struct{}
	docs int
}

// NewVocabBuilder returns an empty builder.
func NewVocabBuilder() *VocabBuilder {
	return &VocabBuilder{df: make(map[string]int), seen: make(map[string]struct{})}
}

// Add folds tokenized documents into the document-frequency counts.
func (b *VocabBuilder) Add(docs ...[]string) {
	for _, doc := range docs {
		clear(b.seen)
		for _, tok := range doc {
			if _, dup := b.seen[tok]; dup {
				continue
			}
			b.seen[tok] = struct{}{}
			b.df[tok]++
		}
		b.docs++
	}
}

// Docs returns the number of documents added so far.
func (b *VocabBuilder) Docs() int { return b.docs }

// Counts returns a copy of the accumulated document-frequency counts, so
// a builder's pre-freeze state can be serialized.
func (b *VocabBuilder) Counts() map[string]int {
	out := make(map[string]int, len(b.df))
	for tok, n := range b.df {
		out[tok] = n
	}
	return out
}

// NewVocabBuilderFromCounts rebuilds a builder from serialized counts
// (deep-copied). Builds from the restored builder equal builds from the
// original: document frequencies fully determine the vocabulary.
func NewVocabBuilderFromCounts(df map[string]int, docs int) *VocabBuilder {
	b := NewVocabBuilder()
	for tok, n := range df {
		b.df[tok] = n
	}
	b.docs = docs
	return b
}

// NewVocabularyFromWords rebuilds a frozen vocabulary from its word list
// in index order (the inverse of Words).
func NewVocabularyFromWords(words []string) *Vocabulary {
	v := NewVocabulary()
	for _, w := range words {
		v.AddWord(w)
	}
	return v
}

// Distinct returns the number of distinct tokens observed so far.
func (b *VocabBuilder) Distinct() int { return len(b.df) }

// Build freezes the accumulated counts into a Vocabulary, keeping tokens
// that occur in at least minDF documents, in lexicographic index order.
// The builder remains usable (further Adds feed a later Build).
func (b *VocabBuilder) Build(minDF int) *Vocabulary {
	if minDF < 1 {
		minDF = 1
	}
	kept := make([]string, 0, len(b.df))
	for tok, n := range b.df {
		if n >= minDF {
			kept = append(kept, tok)
		}
	}
	sort.Strings(kept)
	v := NewVocabulary()
	for _, tok := range kept {
		v.AddWord(tok)
	}
	return v
}

// AddWord interns a token, returning its index (existing or new).
func (v *Vocabulary) AddWord(tok string) int {
	if id, ok := v.index[tok]; ok {
		return id
	}
	id := len(v.words)
	v.index[tok] = id
	v.words = append(v.words, tok)
	return id
}

// ID returns the index of tok, or -1 if absent.
func (v *Vocabulary) ID(tok string) int {
	if id, ok := v.index[tok]; ok {
		return id
	}
	return -1
}

// Word returns the token at index id.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Len returns the vocabulary size (the paper's l).
func (v *Vocabulary) Len() int { return len(v.words) }

// Words returns a copy of all tokens in index order.
func (v *Vocabulary) Words() []string { return append([]string(nil), v.words...) }
