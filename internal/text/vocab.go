package text

import "sort"

// Vocabulary maps feature tokens to dense column indices. The zero value is
// not usable; construct with NewVocabulary or BuildVocabulary.
type Vocabulary struct {
	index map[string]int
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// BuildVocabulary constructs a vocabulary from tokenized documents, keeping
// only tokens that occur in at least minDF documents. Tokens are assigned
// indices in lexicographic order for determinism.
func BuildVocabulary(docs [][]string, minDF int) *Vocabulary {
	df := make(map[string]int)
	seen := make(map[string]struct{})
	for _, doc := range docs {
		for k := range seen {
			delete(seen, k)
		}
		for _, tok := range doc {
			if _, dup := seen[tok]; dup {
				continue
			}
			seen[tok] = struct{}{}
			df[tok]++
		}
	}
	kept := make([]string, 0, len(df))
	for tok, n := range df {
		if n >= minDF {
			kept = append(kept, tok)
		}
	}
	sort.Strings(kept)
	v := NewVocabulary()
	for _, tok := range kept {
		v.AddWord(tok)
	}
	return v
}

// AddWord interns a token, returning its index (existing or new).
func (v *Vocabulary) AddWord(tok string) int {
	if id, ok := v.index[tok]; ok {
		return id
	}
	id := len(v.words)
	v.index[tok] = id
	v.words = append(v.words, tok)
	return id
}

// ID returns the index of tok, or -1 if absent.
func (v *Vocabulary) ID(tok string) int {
	if id, ok := v.index[tok]; ok {
		return id
	}
	return -1
}

// Word returns the token at index id.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Len returns the vocabulary size (the paper's l).
func (v *Vocabulary) Len() int { return len(v.words) }

// Words returns a copy of all tokens in index order.
func (v *Vocabulary) Words() []string { return append([]string(nil), v.words...) }
