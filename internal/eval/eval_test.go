package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccuracyPerfect(t *testing.T) {
	pred := []int{0, 0, 1, 1, 2}
	if got := Accuracy(pred, pred); got != 1 {
		t.Fatalf("Accuracy(x,x) = %v", got)
	}
}

func TestAccuracyPermutationInvariant(t *testing.T) {
	truth := []int{0, 0, 1, 1, 2, 2}
	pred := []int{2, 2, 0, 0, 1, 1} // relabeled perfect clustering
	if got := Accuracy(pred, truth); got != 1 {
		t.Fatalf("permuted accuracy = %v, want 1", got)
	}
}

func TestAccuracyKnownValue(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 1}
	pred := []int{0, 0, 1, 1, 1, 1}
	// cluster 0 → class 0 (2 right), cluster 1 → class 1 (3 of 4).
	if got := Accuracy(pred, truth); math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 5/6", got)
	}
}

func TestAccuracyIgnoresUnlabeled(t *testing.T) {
	truth := []int{0, -1, 1, -1}
	pred := []int{0, 1, 1, 0}
	if got := Accuracy(pred, truth); got != 1 {
		t.Fatalf("Accuracy with unlabeled = %v", got)
	}
}

func TestAccuracyNoLabels(t *testing.T) {
	if got := Accuracy([]int{0, 1}, []int{-1, -1}); got != 0 {
		t.Fatalf("Accuracy with no labels = %v", got)
	}
}

func TestAccuracyLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Accuracy([]int{0}, []int{0, 1})
}

func TestAccuracyBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(3)
			truth[i] = rng.Intn(3)
		}
		a := Accuracy(pred, truth)
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMajorityMapping(t *testing.T) {
	truth := []int{0, 0, 1}
	pred := []int{5, 5, 7}
	m := MajorityMapping(pred, truth)
	if m[5] != 0 || m[7] != 1 {
		t.Fatalf("MajorityMapping = %v", m)
	}
}

func TestMapClustersUnlabeledClusterKeepsID(t *testing.T) {
	truth := []int{0, -1}
	pred := []int{3, 9} // cluster 9 has no labeled member
	mapped := MapClusters(pred, truth)
	if mapped[0] != 0 || mapped[1] != 9 {
		t.Fatalf("MapClusters = %v", mapped)
	}
}

func TestNMIPerfectIsOne(t *testing.T) {
	x := []int{0, 0, 1, 1, 2, 2}
	if got := NMI(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI(x,x) = %v", got)
	}
}

func TestNMIPermutationInvariant(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{1, 1, 0, 0}
	if got := NMI(pred, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NMI permuted = %v", got)
	}
}

func TestNMIIndependentIsZero(t *testing.T) {
	// pred splits orthogonally to truth → MI = 0.
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 0, 1}
	if got := NMI(pred, truth); math.Abs(got) > 1e-12 {
		t.Fatalf("independent NMI = %v", got)
	}
}

func TestNMISingleClusterIsZero(t *testing.T) {
	if got := NMI([]int{0, 0, 0}, []int{0, 1, 2}); got != 0 {
		t.Fatalf("degenerate NMI = %v", got)
	}
}

func TestNMIBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(4)
			truth[i] = rng.Intn(3)
		}
		v := NMI(pred, truth)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNMISymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		return math.Abs(NMI(a, b)-NMI(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConfusionMatrix(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 1, 1}
	cm := ConfusionMatrix(pred, truth, 2)
	// cluster 0 → class 0; cluster 1 → class 1 (majority 2 vs 1).
	if cm[0][0] != 1 || cm[0][1] != 1 || cm[1][1] != 2 || cm[1][0] != 0 {
		t.Fatalf("ConfusionMatrix = %v", cm)
	}
}

func TestPerClass(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 0, 1, 0}
	s := PerClass(pred, truth, 2)
	if s[0].Recall != 1 || math.Abs(s[0].Precision-2.0/3) > 1e-12 {
		t.Fatalf("class0 = %+v", s[0])
	}
	if s[1].Recall != 0.5 || s[1].Precision != 1 {
		t.Fatalf("class1 = %+v", s[1])
	}
	if s[0].Support != 2 || s[1].Support != 2 {
		t.Fatalf("supports = %+v", s)
	}
}

func TestEvaluateBundle(t *testing.T) {
	x := []int{0, 1, 0, 1}
	m := Evaluate(x, x)
	if m.Accuracy != 1 || math.Abs(m.NMI-1) > 1e-12 {
		t.Fatalf("Evaluate = %+v", m)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.8187); got != "81.87" {
		t.Fatalf("Percent = %q", got)
	}
}

func TestARIIdentical(t *testing.T) {
	x := []int{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI(x,x) = %v", got)
	}
}

func TestARIPermutationInvariant(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{7, 7, 3, 3}
	if got := AdjustedRandIndex(pred, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("relabeled ARI = %v", got)
	}
}

func TestARIRandomNearZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	pred := make([]int, n)
	truth := make([]int, n)
	for i := range pred {
		pred[i] = rng.Intn(3)
		truth[i] = rng.Intn(3)
	}
	if got := AdjustedRandIndex(pred, truth); math.Abs(got) > 0.05 {
		t.Fatalf("random ARI = %v, want ≈ 0", got)
	}
}

func TestARIBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		pred := make([]int, n)
		truth := make([]int, n)
		for i := range pred {
			pred[i] = rng.Intn(3)
			truth[i] = rng.Intn(3)
		}
		v := AdjustedRandIndex(pred, truth)
		return v <= 1+1e-12 && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestARIIgnoresUnlabeled(t *testing.T) {
	truth := []int{0, 0, 1, 1, -1, -1}
	pred := []int{5, 5, 6, 6, 0, 1}
	if got := AdjustedRandIndex(pred, truth); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ARI with unlabeled = %v", got)
	}
}

func TestARIDegenerate(t *testing.T) {
	if AdjustedRandIndex([]int{0}, []int{0}) != 0 {
		t.Fatal("single item should give 0")
	}
	// Both partitions a single cluster: denominator vanishes → 0.
	if AdjustedRandIndex([]int{0, 0, 0}, []int{1, 1, 1}) != 0 {
		t.Fatal("degenerate partitions should give 0")
	}
}

func TestPairwiseF1(t *testing.T) {
	x := []int{0, 0, 1, 1}
	if got := PairwiseF1(x, x); math.Abs(got-1) > 1e-12 {
		t.Fatalf("pairwise F1 identical = %v", got)
	}
	// pred splits one true cluster: tp=1 (pair 0-1), predPairs=1,
	// truthPairs=C(3,2)=3 → P=1, R=1/3, F1=0.5.
	truth := []int{0, 0, 0, 1}
	pred := []int{0, 0, 1, 2}
	if got := PairwiseF1(pred, truth); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("pairwise F1 = %v, want 0.5", got)
	}
	if PairwiseF1([]int{0}, []int{0}) != 0 {
		t.Fatal("degenerate pairwise F1 should be 0")
	}
	if PairwiseF1([]int{0, 1}, []int{0, 1}) != 0 {
		t.Fatal("no positive pairs should give 0")
	}
}
