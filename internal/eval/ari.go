package eval

// AdjustedRandIndex computes the Adjusted Rand Index between a predicted
// clustering and the ground truth over labeled items (truth ≥ 0):
//
//	ARI = (RI − E[RI]) / (max(RI) − E[RI])
//
// using the standard pair-counting formulation on the contingency table.
// It is 1 for identical partitions (up to relabeling), ≈0 for random
// ones, and can be negative for adversarial partitions. Returns 0 when
// fewer than two labeled items exist or a partition is degenerate in a
// way that zeroes the denominator.
func AdjustedRandIndex(pred, truth []int) float64 {
	p, g := filterLabeled(pred, truth)
	n := len(g)
	if n < 2 {
		return 0
	}
	joint := map[[2]int]float64{}
	pc := map[int]float64{}
	gc := map[int]float64{}
	for i := range p {
		joint[[2]int{p[i], g[i]}]++
		pc[p[i]]++
		gc[g[i]]++
	}
	choose2 := func(x float64) float64 { return x * (x - 1) / 2 }

	var sumJoint, sumP, sumG float64
	for _, v := range joint {
		sumJoint += choose2(v)
	}
	for _, v := range pc {
		sumP += choose2(v)
	}
	for _, v := range gc {
		sumG += choose2(v)
	}
	total := choose2(float64(n))
	expected := sumP * sumG / total
	maxIndex := (sumP + sumG) / 2
	denom := maxIndex - expected
	if denom == 0 {
		return 0
	}
	return (sumJoint - expected) / denom
}

// PairwiseF1 computes the pair-counting F1: pairs of items that share a
// cluster in both partitions are true positives. Returns 0 when no
// positive pairs exist on either side.
func PairwiseF1(pred, truth []int) float64 {
	p, g := filterLabeled(pred, truth)
	n := len(g)
	if n < 2 {
		return 0
	}
	var tp, predPairs, truthPairs float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			samePred := p[i] == p[j]
			sameTruth := g[i] == g[j]
			if samePred {
				predPairs++
			}
			if sameTruth {
				truthPairs++
			}
			if samePred && sameTruth {
				tp++
			}
		}
	}
	if predPairs == 0 || truthPairs == 0 {
		return 0
	}
	precision := tp / predPairs
	recall := tp / truthPairs
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}
