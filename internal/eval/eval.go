// Package eval implements the clustering-quality metrics of the paper's
// §5: clustering accuracy under majority-vote cluster→class assignment and
// Normalized Mutual Information (NMI), plus confusion matrices and
// per-class precision/recall/F1 for diagnostics.
//
// All functions ignore items whose ground-truth label is negative
// (unlabeled), matching the paper's evaluation on the labeled subsets of
// Table 3.
package eval

import (
	"fmt"
	"math"
)

// filterLabeled returns the (pred, truth) pairs with truth ≥ 0. Both
// outputs come from one right-sized allocation (the metric functions are
// called once per method per comparison, so repeated append growth was
// measurable in the table harnesses).
func filterLabeled(pred, truth []int) ([]int, []int) {
	if len(pred) != len(truth) {
		panic(fmt.Sprintf("eval: %d predictions vs %d labels", len(pred), len(truth)))
	}
	n := 0
	for _, g := range truth {
		if g >= 0 {
			n++
		}
	}
	buf := make([]int, 0, 2*n)
	for i, g := range truth {
		if g >= 0 {
			buf = append(buf, pred[i])
		}
	}
	fp := buf
	for _, g := range truth {
		if g >= 0 {
			buf = append(buf, g)
		}
	}
	return fp[:n:n], buf[n:]
}

// Accuracy computes the paper's clustering accuracy
//
//	A(C,G) = (1/n) Σ_{o∈C} max_{g∈G} |o ∩ g|
//
// i.e. each output cluster is assigned the ground-truth class it overlaps
// most (majority vote) and the fraction of correctly covered items is
// returned. Items with truth < 0 are ignored; the result is 0 when no
// labeled items exist.
func Accuracy(pred, truth []int) float64 {
	p, g := filterLabeled(pred, truth)
	if len(g) == 0 {
		return 0
	}
	overlap := map[[2]int]int{}
	for i := range p {
		overlap[[2]int{p[i], g[i]}]++
	}
	best := map[int]int{}
	for key, n := range overlap {
		if n > best[key[0]] {
			best[key[0]] = n
		}
	}
	var correct int
	for _, n := range best {
		correct += n
	}
	return float64(correct) / float64(len(g))
}

// MajorityMapping returns, for each output cluster id, the ground-truth
// class it overlaps most (ties to the smaller class id). Clusters with no
// labeled members are absent from the map.
func MajorityMapping(pred, truth []int) map[int]int {
	p, g := filterLabeled(pred, truth)
	counts := map[int]map[int]int{}
	for i := range p {
		m, ok := counts[p[i]]
		if !ok {
			m = map[int]int{}
			counts[p[i]] = m
		}
		m[g[i]]++
	}
	out := map[int]int{}
	for o, m := range counts {
		bestClass, bestCount := -1, -1
		for cls, n := range m {
			if n > bestCount || (n == bestCount && cls < bestClass) {
				bestClass, bestCount = cls, n
			}
		}
		out[o] = bestClass
	}
	return out
}

// MapClusters rewrites cluster ids to ground-truth classes via
// MajorityMapping; clusters without labeled members map to themselves.
func MapClusters(pred, truth []int) []int {
	mapping := MajorityMapping(pred, truth)
	out := make([]int, len(pred))
	for i, c := range pred {
		if cls, ok := mapping[c]; ok {
			out[i] = cls
		} else {
			out[i] = c
		}
	}
	return out
}

// NMI computes the Normalized Mutual Information
//
//	NMI(C,G) = 2·I(C;G) / (H(C)+H(G))
//
// over labeled items. It returns 0 when either partition has zero entropy
// (a single cluster or class) or no labeled items exist.
func NMI(pred, truth []int) float64 {
	p, g := filterLabeled(pred, truth)
	n := len(g)
	if n == 0 {
		return 0
	}
	joint := map[[2]int]float64{}
	pc := map[int]float64{}
	gc := map[int]float64{}
	for i := range p {
		joint[[2]int{p[i], g[i]}]++
		pc[p[i]]++
		gc[g[i]]++
	}
	fn := float64(n)
	var mi float64
	for key, nij := range joint {
		pij := nij / fn
		mi += pij * math.Log(pij/((pc[key[0]]/fn)*(gc[key[1]]/fn)))
	}
	hc := entropy(pc, fn)
	hg := entropy(gc, fn)
	if hc == 0 || hg == 0 {
		return 0
	}
	nmi := 2 * mi / (hc + hg)
	// Clamp tiny numeric excursions outside [0,1].
	if nmi < 0 {
		return 0
	}
	if nmi > 1 {
		return 1
	}
	return nmi
}

func entropy(counts map[int]float64, n float64) float64 {
	var h float64
	for _, c := range counts {
		p := c / n
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// ConfusionMatrix returns counts[class][cluster] over labeled items after
// majority mapping of clusters to classes, with k rows/cols.
func ConfusionMatrix(pred, truth []int, k int) [][]int {
	mapped := MapClusters(pred, truth)
	out := make([][]int, k)
	for i := range out {
		out[i] = make([]int, k)
	}
	for i, g := range truth {
		if g < 0 || g >= k {
			continue
		}
		m := mapped[i]
		if m < 0 || m >= k {
			continue
		}
		out[g][m]++
	}
	return out
}

// ClassScores holds per-class precision, recall and F1.
type ClassScores struct {
	Precision, Recall, F1 float64
	Support               int
}

// PerClass computes precision/recall/F1 per ground-truth class after
// majority mapping.
func PerClass(pred, truth []int, k int) []ClassScores {
	cm := ConfusionMatrix(pred, truth, k)
	out := make([]ClassScores, k)
	for c := 0; c < k; c++ {
		var tp, fp, fn int
		tp = cm[c][c]
		for o := 0; o < k; o++ {
			if o != c {
				fn += cm[c][o]
				fp += cm[o][c]
			}
		}
		s := ClassScores{Support: tp + fn}
		if tp+fp > 0 {
			s.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			s.Recall = float64(tp) / float64(tp+fn)
		}
		if s.Precision+s.Recall > 0 {
			s.F1 = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
		}
		out[c] = s
	}
	return out
}

// Metrics bundles the two headline numbers the paper reports.
type Metrics struct {
	Accuracy float64
	NMI      float64
}

// Evaluate computes both metrics at once.
func Evaluate(pred, truth []int) Metrics {
	return Metrics{Accuracy: Accuracy(pred, truth), NMI: NMI(pred, truth)}
}

// Percent formats a [0,1] metric the way the paper's tables print it.
func Percent(v float64) string { return fmt.Sprintf("%.2f", v*100) }
