// Package fault is the daemon's storage failpoint layer: a filesystem
// interface (FS) that every durable-write site goes through, with each
// call naming the *site* it serves ("journal.append.sync",
// "persist.snap.rename", …). Production code uses the passthrough OS
// implementation — thin wrappers over the os package, no state, no
// allocations, no branches — so the layer costs nothing when disabled.
// Tests substitute a Script (see script.go), which can return scripted
// errors, cut writes short, exhaust a byte budget into ENOSPC, or panic
// with a deterministic Crash at any named site — and which records every
// site it crosses, so a crash-point matrix can *discover* the complete
// set of durable-write failpoints instead of trusting a hand-kept list.
//
// The site string is the failpoint's identity. Sites are dot-separated
// "<area>.<operation>.<syscall>" constants at the call sites; two calls
// sharing a site are the same failpoint. New durable-write code must go
// through an FS with a fresh site name — the crash-point matrix
// auto-discovers whatever the workload crosses, so a bypassed write is
// the only way to dodge coverage.
package fault

import (
	"io"
	"os"
)

// FS is the filesystem surface of the daemon's durable-write sites.
// Every method takes the failpoint site it is called from. Read-side
// methods (ReadFile) are included because recovery paths — the rollback
// reload after a failed append — must be injectable too.
type FS interface {
	// OpenFile opens (or creates) a file for writing; the returned File
	// routes its Write/Sync/Truncate calls back through the failpoint
	// layer.
	OpenFile(site, name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp.
	CreateTemp(site, dir, pattern string) (File, error)
	// Rename mirrors os.Rename — the atomic-commit syscall of the
	// snapshot, tombstone, and replica-meta protocols.
	Rename(site, oldpath, newpath string) error
	// Remove mirrors os.Remove.
	Remove(site, name string) error
	// ReadFile mirrors os.ReadFile.
	ReadFile(site, name string) ([]byte, error)
	// SyncDir fsyncs a directory, making renames and newly created
	// entries durable.
	SyncDir(site, dir string) error
}

// File is the open-file surface of FS: the mutating calls carry their
// failpoint site. Seek and Close are not failpoints — neither makes
// bytes durable, and injecting them has never distinguished a crash
// state from the neighbouring Write/Sync sites.
type File interface {
	Write(site string, p []byte) (n int, err error)
	Sync(site string) error
	Truncate(site string, size int64) error
	Seek(offset int64, whence int) (int64, error)
	Close() error
	Name() string
}

// OS is the passthrough FS used outside tests: direct os calls, site
// strings ignored, zero added allocations on the file hot path.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(_, name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return (*osFile)(f), nil
}

func (osFS) CreateTemp(_, dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return (*osFile)(f), nil
}

func (osFS) Rename(_, oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(_, name string) error             { return os.Remove(name) }
func (osFS) ReadFile(_, name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) SyncDir(_, dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// osFile is *os.File with the File signatures; the conversion is free
// (same representation), so the passthrough adds no allocation per open.
type osFile os.File

func (f *osFile) Write(_ string, p []byte) (int, error)  { return (*os.File)(f).Write(p) }
func (f *osFile) Sync(_ string) error                    { return (*os.File)(f).Sync() }
func (f *osFile) Truncate(_ string, size int64) error    { return (*os.File)(f).Truncate(size) }
func (f *osFile) Seek(off int64, whence int) (int64, error) {
	return (*os.File)(f).Seek(off, whence)
}
func (f *osFile) Close() error { return (*os.File)(f).Close() }
func (f *osFile) Name() string { return (*os.File)(f).Name() }

// SiteWriter adapts a File at a fixed site to io.Writer, so streaming
// encoders (Topic.Snapshot through a CRC tee) can write through the
// failpoint layer.
func SiteWriter(f File, site string) io.Writer { return siteWriter{f: f, site: site} }

type siteWriter struct {
	f    File
	site string
}

func (w siteWriter) Write(p []byte) (int, error) { return w.f.Write(w.site, p) }
