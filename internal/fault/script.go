package fault

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"syscall"
)

// TailMode selects what happens to bytes written but not yet fsynced
// when a scripted Crash fires — the page-cache model of the simulated
// power cut.
type TailMode int

const (
	// KeepTail leaves every written byte in place: the kernel flushed
	// the page cache before the machine died. The optimistic crash.
	KeepTail TailMode = iota
	// DropTail truncates every open scripted file back to its size at
	// its last successful Sync: everything unfsynced is lost. The
	// pessimistic crash, and the one the append protocol must survive.
	DropTail
	// TornTail keeps half of the unsynced tail — a partially flushed
	// page cache, the torn-record crash signature.
	TornTail
)

// A Rule scripts one site's behaviour. The zero value matches nothing;
// a Rule fires when its Site is crossed on the matching hit.
type Rule struct {
	// Site names the failpoint this rule applies to.
	Site string
	// Hit fires the rule on the Nth crossing of Site (1-based);
	// 0 fires on every crossing.
	Hit int
	// Err, when non-nil, is returned from the operation without
	// performing it (after Short bytes for writes).
	Err error
	// Short, for Write sites, is how many leading bytes actually reach
	// the file before Err is returned — a short write.
	Short int
	// Crash, when true, panics with *Crash instead of returning: the
	// simulated kill between two syscalls. The operation does not run —
	// a crash at "x.sync" models dying after the write, before the
	// fsync took effect.
	Crash bool
	// Tail is the page-cache model applied to open files when Crash
	// fires.
	Tail TailMode
}

// Crash is the panic value of a scripted crash point. Harnesses recover
// it (see AsCrash), abandon the faulted store, and re-open the data
// directory with a passthrough FS — the in-process analogue of
// kill -9 + restart.
type Crash struct {
	Site string
	Hit  int
}

func (c *Crash) Error() string {
	return fmt.Sprintf("fault: scripted crash at %s (hit %d)", c.Site, c.Hit)
}

// AsCrash reports whether a recovered panic value is a scripted crash.
func AsCrash(v any) (*Crash, bool) {
	c, ok := v.(*Crash)
	return c, ok
}

// ErrCrashed is returned by every operation after a scripted crash has
// fired: the process is "dead", so nothing may touch the disk again.
// This keeps deferred cleanups and stray goroutines of the abandoned
// store from mutating the post-crash directory image the harness is
// about to recover from.
var ErrCrashed = fmt.Errorf("fault: store already crashed")

// Script is the injecting FS: passthrough to the real filesystem until
// a Rule fires. It also counts every site crossing, which is how the
// crash-point matrix discovers the full failpoint set — run the
// workload once under a rule-less Script and read Sites().
//
// A single mutex serializes all operations; Scripts are built for
// deterministic tests, not throughput.
type Script struct {
	mu      sync.Mutex
	rules   []Rule
	hits    map[string]int
	open    map[*scriptFile]struct{}
	crashed bool
	// budget, when active, is the bytes remaining before the disk is
	// "full": a write that does not fit writes the prefix that fits and
	// returns ENOSPC, and every later write keeps failing until
	// SetBudget lifts it. Syncs still succeed — a full disk fails
	// writes, not flushes.
	budget       int64
	budgetActive bool
}

// NewScript returns a Script with the given rules. With no rules it is
// a pure recorder: passthrough behaviour plus site accounting.
func NewScript(rules ...Rule) *Script {
	return &Script{rules: rules, hits: make(map[string]int), open: make(map[*scriptFile]struct{})}
}

// AddRule appends a rule at runtime (e.g. degrade mid-workload).
func (s *Script) AddRule(r Rule) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = append(s.rules, r)
}

// ClearRules drops all rules, keeping hit counts and open-file state.
func (s *Script) ClearRules() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rules = nil
}

// SetBudget arms (or re-arms) the ENOSPC byte budget: after n more
// written bytes the disk is full. A negative n disarms it.
func (s *Script) SetBudget(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget, s.budgetActive = n, n >= 0
}

// Sites returns every site crossed so far, sorted — the discovered
// failpoint set.
func (s *Script) Sites() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.hits))
	for site := range s.hits {
		out = append(out, site)
	}
	sort.Strings(out)
	return out
}

// Hits returns how many times a site has been crossed.
func (s *Script) Hits(site string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[site]
}

// Crashed reports whether a scripted crash has fired.
func (s *Script) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// enter records a site crossing and returns the first matching rule
// (nil for passthrough). A Crash rule panics with *Crash after applying
// its tail mode; the deferred unlocks on the way out keep the Script
// usable for the post-crash ErrCrashed answers. Must be called with
// s.mu held.
func (s *Script) enter(site string) (*Rule, error) {
	if s.crashed {
		return nil, ErrCrashed
	}
	s.hits[site]++
	n := s.hits[site]
	for i := range s.rules {
		r := &s.rules[i]
		if r.Site != site || (r.Hit != 0 && r.Hit != n) {
			continue
		}
		if r.Crash {
			s.applyTail(r.Tail)
			s.crashed = true
			panic(&Crash{Site: site, Hit: n})
		}
		return r, nil
	}
	return nil, nil
}

// applyTail applies a crash's page-cache model to every open scripted
// file: files keep only what their last successful Sync made durable
// (DropTail), half the unsynced tail (TornTail), or everything
// (KeepTail). Truncates and renames are modelled as immediately
// durable — lost directory metadata is constructed by hand in the
// journal fixture tests instead.
func (s *Script) applyTail(mode TailMode) {
	if mode == KeepTail {
		return
	}
	for sf := range s.open {
		st, err := sf.f.Stat()
		if err != nil {
			continue
		}
		size := st.Size()
		if size <= sf.synced {
			continue
		}
		keep := sf.synced
		if mode == TornTail {
			keep += (size - sf.synced) / 2
		}
		_ = sf.f.Truncate(keep)
	}
}

// op runs fn under the script lock when no error rule fires at site.
func (s *Script) op(site string, fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := s.enter(site)
	if err != nil {
		return err
	}
	if r != nil && r.Err != nil {
		return r.Err
	}
	return fn()
}

func (s *Script) OpenFile(site, name string, flag int, perm os.FileMode) (File, error) {
	var out File
	err := s.op(site, func() error {
		f, err := os.OpenFile(name, flag, perm)
		if err != nil {
			return err
		}
		sf := &scriptFile{s: s, f: f}
		if flag&os.O_TRUNC == 0 {
			// An existing file's current contents are durable as far as
			// this script is concerned: only writes it observes can be
			// lost by a scripted crash.
			if st, serr := f.Stat(); serr == nil {
				sf.synced = st.Size()
			}
		}
		s.open[sf] = struct{}{}
		out = sf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Script) CreateTemp(site, dir, pattern string) (File, error) {
	var out File
	err := s.op(site, func() error {
		f, err := os.CreateTemp(dir, pattern)
		if err != nil {
			return err
		}
		sf := &scriptFile{s: s, f: f}
		s.open[sf] = struct{}{}
		out = sf
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Script) Rename(site, oldpath, newpath string) error {
	return s.op(site, func() error { return os.Rename(oldpath, newpath) })
}

func (s *Script) Remove(site, name string) error {
	return s.op(site, func() error { return os.Remove(name) })
}

func (s *Script) ReadFile(site, name string) ([]byte, error) {
	var out []byte
	err := s.op(site, func() error {
		b, err := os.ReadFile(name)
		out = b
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s *Script) SyncDir(site, dir string) error {
	return s.op(site, func() error {
		d, err := os.Open(dir)
		if err != nil {
			return err
		}
		defer d.Close()
		return d.Sync()
	})
}

// scriptFile tracks the durable watermark (size at last successful
// Sync) of one open file, so a DropTail/TornTail crash can take back
// the unfsynced suffix.
type scriptFile struct {
	s      *Script
	f      *os.File
	synced int64
}

func (sf *scriptFile) Write(site string, p []byte) (int, error) {
	sf.s.mu.Lock()
	defer sf.s.mu.Unlock()
	r, err := sf.s.enter(site)
	if err != nil {
		return 0, err
	}
	if r != nil && r.Err != nil {
		n := 0
		if r.Short > 0 && r.Short < len(p) {
			n, _ = sf.f.Write(p[:r.Short])
		}
		return n, r.Err
	}
	if sf.s.budgetActive {
		if sf.s.budget <= 0 {
			return 0, syscall.ENOSPC
		}
		if int64(len(p)) > sf.s.budget {
			n, _ := sf.f.Write(p[:sf.s.budget])
			sf.s.budget = 0
			return n, syscall.ENOSPC
		}
		sf.s.budget -= int64(len(p))
	}
	return sf.f.Write(p)
}

func (sf *scriptFile) Sync(site string) error {
	return sf.s.op(site, func() error {
		if err := sf.f.Sync(); err != nil {
			return err
		}
		if st, err := sf.f.Stat(); err == nil {
			sf.synced = st.Size()
		}
		return nil
	})
}

func (sf *scriptFile) Truncate(site string, size int64) error {
	return sf.s.op(site, func() error {
		if err := sf.f.Truncate(size); err != nil {
			return err
		}
		if sf.synced > size {
			sf.synced = size
		}
		return nil
	})
}

func (sf *scriptFile) Seek(off int64, whence int) (int64, error) {
	return sf.f.Seek(off, whence)
}

func (sf *scriptFile) Close() error {
	sf.s.mu.Lock()
	delete(sf.s.open, sf)
	sf.s.mu.Unlock()
	return sf.f.Close()
}

func (sf *scriptFile) Name() string { return sf.f.Name() }
