package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func scriptFileAt(t *testing.T, s *Script, name string) File {
	t.Helper()
	f, err := s.OpenFile("t.open", name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return f
}

func TestScriptErrOnNthHit(t *testing.T) {
	boom := errors.New("boom")
	s := NewScript(Rule{Site: "t.write", Hit: 2, Err: boom})
	f := scriptFileAt(t, s, filepath.Join(t.TempDir(), "f"))
	defer f.Close()
	if _, err := f.Write("t.write", []byte("one")); err != nil {
		t.Fatalf("hit 1: %v", err)
	}
	if _, err := f.Write("t.write", []byte("two")); !errors.Is(err, boom) {
		t.Fatalf("hit 2: got %v, want boom", err)
	}
	if _, err := f.Write("t.write", []byte("three")); err != nil {
		t.Fatalf("hit 3: %v", err)
	}
	if got := s.Hits("t.write"); got != 3 {
		t.Fatalf("Hits = %d, want 3", got)
	}
}

func TestScriptShortWrite(t *testing.T) {
	boom := errors.New("io error")
	s := NewScript(Rule{Site: "t.write", Hit: 1, Err: boom, Short: 2})
	path := filepath.Join(t.TempDir(), "f")
	f := scriptFileAt(t, s, path)
	n, err := f.Write("t.write", []byte("hello"))
	if n != 2 || !errors.Is(err, boom) {
		t.Fatalf("short write: n=%d err=%v, want 2, boom", n, err)
	}
	f.Close()
	b, _ := os.ReadFile(path)
	if string(b) != "he" {
		t.Fatalf("on disk %q, want the 2-byte prefix", b)
	}
}

func TestScriptBudgetENOSPC(t *testing.T) {
	s := NewScript()
	path := filepath.Join(t.TempDir(), "f")
	f := scriptFileAt(t, s, path)
	defer f.Close()
	s.SetBudget(4)
	if _, err := f.Write("t.write", []byte("abc")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	// 3 of 4 bytes used: this write fits one more byte, then the disk is
	// full — the fitting prefix lands, ENOSPC comes back.
	n, err := f.Write("t.write", []byte("defg"))
	if n != 1 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over budget: n=%d err=%v, want 1, ENOSPC", n, err)
	}
	if _, err := f.Write("t.write", []byte("h")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("full disk: %v, want ENOSPC", err)
	}
	if err := f.Sync("t.sync"); err != nil {
		t.Fatalf("sync on a full disk must still succeed: %v", err)
	}
	s.SetBudget(-1)
	if _, err := f.Write("t.write", []byte("ok")); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestScriptCrashDropsUnsyncedTail(t *testing.T) {
	s := NewScript(Rule{Site: "t.sync", Hit: 2, Crash: true, Tail: DropTail})
	path := filepath.Join(t.TempDir(), "f")
	f := scriptFileAt(t, s, path)
	if _, err := f.Write("t.write", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync("t.sync"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write("t.write", []byte("-lost")); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			c, ok := AsCrash(recover())
			if !ok {
				t.Fatalf("expected a *Crash panic, got %v", c)
			}
			if c.Site != "t.sync" || c.Hit != 2 {
				t.Fatalf("crash at %s hit %d, want t.sync hit 2", c.Site, c.Hit)
			}
		}()
		_ = f.Sync("t.sync")
	}()
	if !s.Crashed() {
		t.Fatal("script not marked crashed")
	}
	// The dead process may not touch the disk image again.
	if _, err := f.Write("t.write", []byte("zombie")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v, want ErrCrashed", err)
	}
	if _, err := s.OpenFile("t.open", path, os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open: %v, want ErrCrashed", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "durable" {
		t.Fatalf("post-crash image %q, want only the fsynced prefix %q", b, "durable")
	}
}

func TestScriptKeepTailCrash(t *testing.T) {
	s := NewScript(Rule{Site: "t.sync", Hit: 1, Crash: true, Tail: KeepTail})
	path := filepath.Join(t.TempDir(), "f")
	f := scriptFileAt(t, s, path)
	if _, err := f.Write("t.write", []byte("everything")); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if _, ok := AsCrash(recover()); !ok {
				t.Fatal("expected crash")
			}
		}()
		_ = f.Sync("t.sync")
	}()
	b, _ := os.ReadFile(path)
	if string(b) != "everything" {
		t.Fatalf("KeepTail image %q, want all written bytes", b)
	}
}

func TestScriptExistingContentsAreDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewScript(Rule{Site: "t.crash", Crash: true, Tail: DropTail})
	f, err := s.OpenFile("t.open", path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write("t.write", []byte("-new")); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { recover() }()
		_ = s.Rename("t.crash", path, path)
	}()
	b, _ := os.ReadFile(path)
	if string(b) != "old" {
		t.Fatalf("image %q: pre-existing bytes must survive DropTail, unsynced appends must not", b)
	}
}

func TestScriptSitesDiscovery(t *testing.T) {
	s := NewScript()
	dir := t.TempDir()
	f := scriptFileAt(t, s, filepath.Join(dir, "f"))
	_, _ = f.Write("t.write", []byte("x"))
	_ = f.Sync("t.sync")
	f.Close()
	_ = s.Rename("t.rename", filepath.Join(dir, "f"), filepath.Join(dir, "g"))
	got := s.Sites()
	want := []string{"t.open", "t.rename", "t.sync", "t.write"}
	if len(got) != len(want) {
		t.Fatalf("Sites = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites = %v, want %v", got, want)
		}
	}
}

// TestPassthroughZeroAllocs is the PR's zero-overhead guard: the
// passthrough FS must add no allocations to the warm write path. The
// osFile conversion is free and the site string is ignored, so a write
// through fault.OS is exactly a write through *os.File.
func TestPassthroughZeroAllocs(t *testing.T) {
	f, err := OS.OpenFile("t.open", filepath.Join(t.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := []byte("warm write path")
	if n := testing.AllocsPerRun(200, func() {
		if _, err := f.Write("t.write", buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("passthrough Write allocates %v per op, want 0", n)
	}
	w := SiteWriter(f, "t.write")
	if n := testing.AllocsPerRun(200, func() {
		if _, err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("SiteWriter allocates %v per op, want 0", n)
	}
}

// The ns/op companion to the alloc guard: compare with
//
//	go test -bench 'Append(Raw|Passthrough)' ./internal/fault/
//
// The delta is one interface call per op (~ns) against an fsync
// (~ms) — far inside the ≤2% budget.
func BenchmarkAppendRaw(b *testing.B) {
	f, err := os.OpenFile(filepath.Join(b.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Write(buf); err != nil {
			b.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendPassthrough(b *testing.B) {
	f, err := OS.OpenFile("b.open", filepath.Join(b.TempDir(), "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Write("b.write", buf); err != nil {
			b.Fatal(err)
		}
		if err := f.Sync("b.sync"); err != nil {
			b.Fatal(err)
		}
	}
}
