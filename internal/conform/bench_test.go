package conform

import "testing"

// BenchmarkConformScore measures the warm-path cost of scoring one
// 20-tweet batch observation against a ready profile — the per-batch
// overhead the conformance gate adds to Topic.Process (the observation
// itself is computed by the engine from buffers it already walks).
func BenchmarkConformScore(b *testing.B) {
	p := NewProfile(Params{})
	for i := 0; i < 32; i++ {
		o := steadyObs(i > 0)
		o.Tokens = 60 + i%3
		p.Observe(o, nil)
	}
	o := steadyObs(true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, ok := p.Score(o)
		if !ok || v.Status != Conforming {
			b.Fatalf("score: ok=%v status=%s", ok, v.Status)
		}
	}
}
