// Package conform synthesizes stream-conformance invariants from the
// batches a topic has already accepted and scores every incoming batch
// against them, so drifted, mis-routed or garbage feeds are caught at
// ingest instead of silently degrading estimates.
//
// A Profile accumulates per-batch statistics — token rate, OOV rate,
// tokens-per-tweet shape, user-activity concentration, duplicate-tweet
// rate, timestamp step and in-batch time spread — as online mean/variance
// accumulators (Welford). Once MinSamples batches are observed, each new
// batch is scored before it is applied: every invariant gets a z-score
// against the learned distribution (with a per-invariant floor on the
// standard deviation, so constant streams do not quarantine on the first
// epsilon of noise), and the verdict classifies the batch as conforming,
// flagged (|z| >= FlagZ on some invariant) or quarantined
// (|z| >= QuarantineZ).
//
// The profile is part of the topic's durable state: it accumulates
// deterministically from the accepted batch sequence, serializes to a
// versioned binary section (see wire.go) and therefore survives
// snapshot/restore, journal replay and replica promotion bit-identically.
// Scoring itself never mutates the profile — only Observe does, and only
// for batches that were actually applied — so rejecting a batch leaves
// the durable state untouched and modes that merely differ in what they
// do with the verdict (off / flag / enforce) produce byte-identical
// snapshots on a conforming stream.
//
// The package is self-contained on purpose: it imports neither the
// engine nor the daemon (scripts/arch-boundaries-check.sh pins this), so
// the same gate can front any ingestion tier that can phrase a batch as
// an Observation.
package conform

import (
	"fmt"
	"math"
)

// Mode selects what a caller does with a verdict. The mode is a runtime
// setting, not part of the profile: accumulation and scoring run
// identically in every mode, so switching modes never forks the stream.
type Mode int

const (
	// Off scores and accumulates but surfaces nothing.
	Off Mode = iota
	// Flag annotates accepted batches with their verdict.
	Flag
	// Enforce rejects quarantined batches before they are applied.
	Enforce
)

// ParseMode parses the -conform-mode flag values.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "off":
		return Off, nil
	case "flag":
		return Flag, nil
	case "enforce":
		return Enforce, nil
	}
	return Off, fmt.Errorf("conform: unknown mode %q (want off, flag or enforce)", s)
}

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case Flag:
		return "flag"
	case Enforce:
		return "enforce"
	}
	return "off"
}

// Params tune when scoring starts and where the thresholds sit.
// Zero-valued fields select the defaults.
type Params struct {
	// MinSamples is the number of observed batches an invariant needs
	// before it is scored (default 8). Per-invariant: an invariant that
	// starts later (OOV rate needs a frozen vocabulary, the timestamp
	// step needs a previous batch) waits for its own sample count.
	MinSamples int
	// FlagZ is the |z| at or above which a batch is flagged (default 4).
	FlagZ float64
	// QuarantineZ is the |z| at or above which a batch is quarantined
	// (default 8). Must be >= FlagZ.
	QuarantineZ float64
}

// DefaultParams returns the default thresholds.
func DefaultParams() Params {
	return Params{MinSamples: 8, FlagZ: 4, QuarantineZ: 8}
}

func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.MinSamples == 0 {
		p.MinSamples = d.MinSamples
	}
	if p.FlagZ == 0 {
		p.FlagZ = d.FlagZ
	}
	if p.QuarantineZ == 0 {
		p.QuarantineZ = d.QuarantineZ
	}
	return p
}

// Validate reports parameters scoring cannot run with, after filling
// defaults (so zero-valued fields never fail).
func (p Params) Validate() error {
	d := p.withDefaults()
	if d.MinSamples < 1 || d.MinSamples > maxMinSamples {
		return fmt.Errorf("conform: MinSamples must lie in [1, %d] (got %d)", maxMinSamples, d.MinSamples)
	}
	if !(d.FlagZ > 0) || math.IsInf(d.FlagZ, 0) {
		return fmt.Errorf("conform: FlagZ must be a positive finite number (got %g)", d.FlagZ)
	}
	if !(d.QuarantineZ > 0) || math.IsInf(d.QuarantineZ, 0) {
		return fmt.Errorf("conform: QuarantineZ must be a positive finite number (got %g)", d.QuarantineZ)
	}
	if d.FlagZ > d.QuarantineZ {
		return fmt.Errorf("conform: FlagZ (%g) must not exceed QuarantineZ (%g)", d.FlagZ, d.QuarantineZ)
	}
	return nil
}

const maxMinSamples = 1 << 30

// Observation is one batch reduced to the numbers the invariants watch.
// The producer (the engine) computes it from the canonicalized batch; the
// package never sees tweets.
type Observation struct {
	// Tweets and Tokens count the batch's size and total feature tokens.
	Tweets, Tokens int
	// OOVTokens counts tokens absent from the frozen vocabulary; OOVValid
	// reports whether the vocabulary was frozen when the batch arrived
	// (before the freeze every token is "new" by construction, so the
	// rate is meaningless and not observed).
	OOVTokens int
	OOVValid  bool
	// MaxUserTweets is the largest number of tweets any single user
	// contributed to the batch.
	MaxUserTweets int
	// Dups counts tweets identical to their predecessor in the canonical
	// (time, user, tokens) ordering — exact duplicates.
	Dups int
	// TimeStep is the batch timestamp minus the previous non-empty
	// batch's; StepValid reports whether a previous batch existed.
	TimeStep  int
	StepValid bool
	// TimeSpread is the max-minus-min tweet Time within the batch.
	TimeSpread int
}

// The invariants, in wire order. Adding one is a profile wire-format
// change (see wire.go); reordering is forbidden.
const (
	mTokenRate = iota
	mTokensPerTweet
	mOOVRate
	mUserConcentration
	mDupRate
	mTimeStep
	mTimeSpread
	numMetrics
)

var metricNames = [numMetrics]string{
	mTokenRate:         "token_rate",
	mTokensPerTweet:    "tokens_per_tweet",
	mOOVRate:           "oov_rate",
	mUserConcentration: "user_concentration",
	mDupRate:           "dup_rate",
	mTimeStep:          "time_step",
	mTimeSpread:        "time_spread",
}

// stdFloor is the minimum standard deviation used when scoring metric m
// whose learned mean is mean: a warmed-up stream with near-constant shape
// must not quarantine the first batch that differs by an epsilon, so the
// divisor never drops below a scale natural to the metric (0.05 for the
// rate-like metrics, which live in [0, 1]; one token / one time unit,
// or 10% of the mean, for the count-like ones).
func stdFloor(m int, mean float64) float64 {
	switch m {
	case mOOVRate, mUserConcentration, mDupRate:
		return 0.05
	case mTokensPerTweet:
		return math.Max(0.5, 0.1*math.Abs(mean))
	default: // token_rate, time_step, time_spread
		return math.Max(1, 0.1*math.Abs(mean))
	}
}

// metric is one invariant's online accumulator (Welford): n samples with
// running mean, sum of squared deviations (M2), and the observed range.
type metric struct {
	n                uint64
	mean, m2, lo, hi float64
}

func (m *metric) add(x float64) {
	m.n++
	if m.n == 1 {
		m.mean, m.lo, m.hi = x, x, x
		return
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
	if x < m.lo {
		m.lo = x
	}
	if x > m.hi {
		m.hi = x
	}
}

func (m *metric) std() float64 {
	if m.n < 2 {
		return 0
	}
	return math.Sqrt(m.m2 / float64(m.n))
}

// driftAlpha is the EWMA weight of the drift trend: each scored batch's
// worst |z| folds into the running drift signal with this weight.
const driftAlpha = 0.2

// Profile is the synthesized conformance model of one stream: the
// per-invariant accumulators, the scoring thresholds and the verdict
// counters. It is not safe for concurrent use; the owning session
// serializes access (scoring and observation happen under the session
// lock, on the ingest path).
type Profile struct {
	params  Params
	metrics [numMetrics]metric
	// observed counts batches folded in; scored / flagged / quarantined
	// count verdicts of batches that were applied (a batch rejected in
	// enforce mode leaves no trace here, so a rejected request never
	// mutates durable state).
	observed, scored, flagged, quarantined uint64
	// drift is the EWMA of the scored batches' worst |z|; prevDrift is
	// its value before the most recent update (the trend).
	drift, prevDrift float64
}

// NewProfile builds an empty profile with the given thresholds
// (zero-valued fields select the defaults).
func NewProfile(p Params) *Profile {
	return &Profile{params: p.withDefaults()}
}

// Params returns the profile's (defaulted) thresholds.
func (p *Profile) Params() Params { return p.params }

// Clone deep-copies the profile.
func (p *Profile) Clone() *Profile {
	c := *p
	return &c
}

// IsZero reports whether the profile carries no information beyond the
// defaults — nothing observed, default thresholds. Snapshots omit the
// profile section for zero profiles, so pre-conformance snapshots and
// snapshots of fresh topics stay byte-identical to older builds.
func (p *Profile) IsZero() bool {
	if p.observed != 0 || p.scored != 0 || p.drift != 0 || p.prevDrift != 0 {
		return false
	}
	return p.params == DefaultParams()
}

// Samples returns the number of observed batches.
func (p *Profile) Samples() uint64 { return p.observed }

// Ready reports whether enough batches were observed for scoring to
// produce verdicts.
func (p *Profile) Ready() bool {
	return p.observed >= uint64(p.params.MinSamples)
}

// values extracts the per-invariant sample values of one observation;
// ok[i] reports whether invariant i is defined for this batch.
func values(o Observation) (vals [numMetrics]float64, ok [numMetrics]bool) {
	if o.Tweets <= 0 {
		return vals, ok
	}
	tw := float64(o.Tweets)
	vals[mTokenRate], ok[mTokenRate] = float64(o.Tokens), true
	vals[mTokensPerTweet], ok[mTokensPerTweet] = float64(o.Tokens)/tw, true
	if o.OOVValid && o.Tokens > 0 {
		vals[mOOVRate], ok[mOOVRate] = float64(o.OOVTokens)/float64(o.Tokens), true
	}
	vals[mUserConcentration], ok[mUserConcentration] = float64(o.MaxUserTweets)/tw, true
	vals[mDupRate], ok[mDupRate] = float64(o.Dups)/tw, true
	if o.StepValid {
		vals[mTimeStep], ok[mTimeStep] = float64(o.TimeStep), true
	}
	vals[mTimeSpread], ok[mTimeSpread] = float64(o.TimeSpread), true
	return vals, ok
}

// Status classifies a scored batch.
type Status string

const (
	Conforming  Status = "conforming"
	Flagged     Status = "flagged"
	Quarantined Status = "quarantined"
)

// Score is one invariant's z-score against the profile.
type Score struct {
	// Invariant names the constraint (token_rate, oov_rate, ...).
	Invariant string
	// Value is the batch's value; Mean / Std the learned distribution
	// (Std already floored, so Z = |Value-Mean| / Std exactly).
	Value, Mean, Std float64
	// Z is the absolute z-score.
	Z float64
}

// Verdict is the structured result of scoring one batch.
type Verdict struct {
	Status Status
	// Scores lists every invariant that was defined for this batch and
	// had enough samples, in wire order.
	Scores []Score
	// Violated names the invariants at or above the flag threshold,
	// worst first only by wire order; nil when conforming.
	Violated []string
	// Worst is the invariant with the largest |z| ("" if none scored);
	// MaxZ its score.
	Worst string
	MaxZ  float64
}

// Score scores one batch against the profile without mutating it. It
// returns ok = false (and a zero verdict) when no invariant has reached
// MinSamples yet — warm-up batches are observed, never judged.
func (p *Profile) Score(o Observation) (Verdict, bool) {
	var v Verdict
	if !p.Ready() || o.Tweets <= 0 {
		return v, false
	}
	vals, def := values(o)
	minN := uint64(p.params.MinSamples)
	v.Scores = make([]Score, 0, numMetrics)
	for i := 0; i < numMetrics; i++ {
		m := &p.metrics[i]
		if !def[i] || m.n < minN {
			continue
		}
		std := math.Max(stdFloor(i, m.mean), m.std())
		z := math.Abs(vals[i]-m.mean) / std
		v.Scores = append(v.Scores, Score{
			Invariant: metricNames[i],
			Value:     vals[i],
			Mean:      m.mean,
			Std:       std,
			Z:         z,
		})
		if z > v.MaxZ {
			v.MaxZ = z
			v.Worst = metricNames[i]
		}
	}
	if len(v.Scores) == 0 {
		return Verdict{}, false
	}
	v.Status = Conforming
	for _, s := range v.Scores {
		if s.Z >= p.params.FlagZ {
			v.Violated = append(v.Violated, s.Invariant)
			if v.Status != Quarantined {
				v.Status = Flagged
			}
		}
		if s.Z >= p.params.QuarantineZ {
			v.Status = Quarantined
		}
	}
	return v, true
}

// Observe folds an applied batch into the profile: the invariant
// accumulators always, and — when the batch was scored — the verdict
// counters and the drift EWMA. Call it only for batches that were
// actually applied, after Score, so batch k is always judged by the
// profile of batches 1..k-1 and a rejected batch leaves no trace.
func (p *Profile) Observe(o Observation, v *Verdict) {
	if o.Tweets <= 0 {
		return
	}
	vals, def := values(o)
	for i := 0; i < numMetrics; i++ {
		if def[i] {
			p.metrics[i].add(vals[i])
		}
	}
	p.observed++
	if v != nil {
		p.scored++
		switch v.Status {
		case Flagged:
			p.flagged++
		case Quarantined:
			p.quarantined++
		}
		p.prevDrift = p.drift
		p.drift = (1-driftAlpha)*p.drift + driftAlpha*v.MaxZ
	}
}

// MetricStats is one invariant's learned distribution, for reports.
type MetricStats struct {
	Invariant string
	Samples   uint64
	Mean, Std float64
	Min, Max  float64
}

// Report is a read-only summary of the profile, materialized once per
// committed batch for the read plane (healthz, ConformanceReport). It is
// derived purely from the profile, so two topics with equal profiles
// report equal values — on any replica, after any restore or replay.
type Report struct {
	Params Params
	// Ready reports whether scoring has started; Observed / Scored /
	// Flagged / Quarantined are the batch counters (quarantined counts
	// batches whose verdict was quarantine but that were applied anyway —
	// flag or off mode; enforce-rejected batches are not in durable
	// state and are counted by the daemon instead).
	Ready                                  bool
	Observed, Scored, Flagged, Quarantined uint64
	// Drift is the EWMA of the scored batches' worst |z|; Trend reports
	// whether the most recent batch moved it up ("rising"), down
	// ("falling") or not meaningfully ("flat").
	Drift float64
	Trend string
	// Metrics lists the learned per-invariant distributions, in wire
	// order, omitting invariants with no samples yet.
	Metrics []MetricStats
}

// Report materializes the profile's current summary.
func (p *Profile) Report() *Report {
	r := &Report{
		Params:      p.params,
		Ready:       p.Ready(),
		Observed:    p.observed,
		Scored:      p.scored,
		Flagged:     p.flagged,
		Quarantined: p.quarantined,
		Drift:       p.drift,
		Trend:       "flat",
	}
	const eps = 1e-9
	switch {
	case p.drift > p.prevDrift+eps:
		r.Trend = "rising"
	case p.drift < p.prevDrift-eps:
		r.Trend = "falling"
	}
	r.Metrics = make([]MetricStats, 0, numMetrics)
	for i := 0; i < numMetrics; i++ {
		m := &p.metrics[i]
		if m.n == 0 {
			continue
		}
		r.Metrics = append(r.Metrics, MetricStats{
			Invariant: metricNames[i],
			Samples:   m.n,
			Mean:      m.mean,
			Std:       m.std(),
			Min:       m.lo,
			Max:       m.hi,
		})
	}
	return r
}

// BatchError is the typed rejection of a nonconforming batch in enforce
// mode. The batch was not applied: no state advanced, no timestamp was
// consumed, and the profile is exactly as before.
type BatchError struct {
	Verdict Verdict
}

func (e *BatchError) Error() string {
	v := &e.Verdict
	if len(e.Verdict.Violated) > 1 {
		return fmt.Sprintf("conform: batch nonconforming: %s (z=%.1f; violated: %v)",
			v.Worst, v.MaxZ, v.Violated)
	}
	return fmt.Sprintf("conform: batch nonconforming: %s (z=%.1f)", v.Worst, v.MaxZ)
}
