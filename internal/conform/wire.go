// Profile wire format. The profile owns its own serialization (the
// snapshot codec embeds these bytes opaquely in a tagged section), so
// the format can evolve behind its own version byte without touching the
// snapshot version, and the fuzz target lives next to the decoder.
//
// Layout (little-endian, fixed size):
//
//	version      uint8    wire version (currently 1)
//	minSamples   uint64   params
//	flagZ        float64
//	quarantineZ  float64
//	observed     uint64   counters
//	scored       uint64
//	flagged      uint64
//	quarantined  uint64
//	drift        float64
//	prevDrift    float64
//	metricCount  uint8    must equal the build's invariant count
//	metrics      metricCount × { n uint64, mean, m2, min, max float64 }
//
// Every field the encoder writes is decoded verbatim and re-validated,
// so encode∘decode is the identity on accepted byte strings (a fixed
// point — FuzzProfileDecode pins this) and decode∘encode is the identity
// on valid profiles.
package conform

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// wireVersion is the profile serialization version. Bump it when the
// layout or the invariant set changes; decoders reject versions they do
// not implement with ErrProfileVersion, which the snapshot codec maps to
// its recoverable version-skew path.
const wireVersion = 1

// wireSize is the exact encoded size: the format is fixed-width, so a
// length mismatch is corruption by construction.
const wireSize = 1 + 3*8 + 4*8 + 2*8 + 1 + numMetrics*5*8

// maxCounter bounds the batch counters a decoder accepts; real streams
// sit far below it, and the bound keeps hostile counter pairs from
// overflowing the consistency arithmetic in Validate.
const maxCounter = 1 << 62

var (
	// ErrProfile marks profile bytes that fail framing or validation.
	ErrProfile = errors.New("conform: invalid profile")
	// ErrProfileVersion marks an intact profile written by a wire version
	// this build does not implement.
	ErrProfileVersion = errors.New("conform: unsupported profile version")
)

// AppendBinary appends the profile's wire encoding to dst. Equal
// profiles encode to equal bytes (the format has no maps or other
// iteration-order hazards).
func (p *Profile) AppendBinary(dst []byte) []byte {
	dst = append(dst, wireVersion)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(p.params.MinSamples))
	dst = appendFloat(dst, p.params.FlagZ)
	dst = appendFloat(dst, p.params.QuarantineZ)
	dst = binary.LittleEndian.AppendUint64(dst, p.observed)
	dst = binary.LittleEndian.AppendUint64(dst, p.scored)
	dst = binary.LittleEndian.AppendUint64(dst, p.flagged)
	dst = binary.LittleEndian.AppendUint64(dst, p.quarantined)
	dst = appendFloat(dst, p.drift)
	dst = appendFloat(dst, p.prevDrift)
	dst = append(dst, numMetrics)
	for i := range p.metrics {
		m := &p.metrics[i]
		dst = binary.LittleEndian.AppendUint64(dst, m.n)
		dst = appendFloat(dst, m.mean)
		dst = appendFloat(dst, m.m2)
		dst = appendFloat(dst, m.lo)
		dst = appendFloat(dst, m.hi)
	}
	return dst
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// DecodeProfile parses and validates one profile. Truncated, oversized
// or internally inconsistent bytes are rejected with ErrProfile; an
// unknown wire version with ErrProfileVersion. Accepted bytes re-encode
// to themselves.
func DecodeProfile(b []byte) (*Profile, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: empty", ErrProfile)
	}
	if b[0] != wireVersion {
		return nil, fmt.Errorf("%w: profile is wire version %d, this build reads %d",
			ErrProfileVersion, b[0], wireVersion)
	}
	if len(b) != wireSize {
		return nil, fmt.Errorf("%w: %d bytes, want %d", ErrProfile, len(b), wireSize)
	}
	d := wireDecoder{buf: b[1:]}
	p := &Profile{}
	p.params.MinSamples = int(d.uint())
	p.params.FlagZ = d.float()
	p.params.QuarantineZ = d.float()
	p.observed = d.uint()
	p.scored = d.uint()
	p.flagged = d.uint()
	p.quarantined = d.uint()
	p.drift = d.float()
	p.prevDrift = d.float()
	if n := d.byte(); n != numMetrics {
		return nil, fmt.Errorf("%w: %d invariants, this build defines %d", ErrProfile, n, numMetrics)
	}
	for i := range p.metrics {
		m := &p.metrics[i]
		m.n = d.uint()
		m.mean = d.float()
		m.m2 = d.float()
		m.lo = d.float()
		m.hi = d.float()
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// wireDecoder reads the fixed-width layout; bounds were checked up front
// (exact size), so the readers cannot run past the buffer.
type wireDecoder struct{ buf []byte }

func (d *wireDecoder) uint() uint64 {
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *wireDecoder) float() float64 { return math.Float64frombits(d.uint()) }

func (d *wireDecoder) byte() byte {
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

// Validate cross-checks the profile's internals: thresholds the scorer
// can run with, finite accumulators with consistent shapes, and counters
// that respect their arithmetic relations. Decoded profiles pass through
// here, so a valid-checksum but crafted snapshot is rejected at restore
// instead of producing NaN scores or impossible censuses later.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("%w: nil profile", ErrProfile)
	}
	if p.params != p.params.withDefaults() {
		return fmt.Errorf("%w: non-canonical params (zero-valued field)", ErrProfile)
	}
	if err := p.params.Validate(); err != nil {
		return err
	}
	if p.observed > maxCounter || p.flagged > p.scored || p.quarantined > p.scored ||
		p.flagged+p.quarantined > p.scored || p.scored > p.observed {
		return fmt.Errorf("%w: counters out of order (observed=%d scored=%d flagged=%d quarantined=%d)",
			ErrProfile, p.observed, p.scored, p.flagged, p.quarantined)
	}
	if !finite(p.drift) || !finite(p.prevDrift) || p.drift < 0 || p.prevDrift < 0 {
		return fmt.Errorf("%w: drift not a non-negative finite number", ErrProfile)
	}
	for i := range p.metrics {
		m := &p.metrics[i]
		if m.n > p.observed {
			return fmt.Errorf("%w: invariant %s has %d samples over %d observed batches",
				ErrProfile, metricNames[i], m.n, p.observed)
		}
		if m.n == 0 {
			// Canonical zero: an unobserved invariant carries no stats, so
			// equal profiles stay byte-equal.
			if m.mean != 0 || m.m2 != 0 || m.lo != 0 || m.hi != 0 {
				return fmt.Errorf("%w: invariant %s has stats but no samples", ErrProfile, metricNames[i])
			}
			continue
		}
		if !finite(m.mean) || !finite(m.m2) || !finite(m.lo) || !finite(m.hi) {
			return fmt.Errorf("%w: invariant %s has non-finite stats", ErrProfile, metricNames[i])
		}
		if m.m2 < 0 {
			return fmt.Errorf("%w: invariant %s has negative variance accumulator", ErrProfile, metricNames[i])
		}
		if m.lo > m.hi {
			return fmt.Errorf("%w: invariant %s has min %g > max %g", ErrProfile, metricNames[i], m.lo, m.hi)
		}
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
