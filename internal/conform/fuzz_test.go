package conform

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzProfileDecode drives hostile, truncated and bit-flipped bytes
// through the profile decoder. Invariants: no panic, every accepted
// input re-encodes to exactly itself (encode∘decode is a fixed point),
// and an accepted profile survives a score + observe cycle without
// breaking its own validation.
func FuzzProfileDecode(f *testing.F) {
	// Seed with the golden profile section plus systematic mutations of it.
	if raw, err := os.ReadFile(filepath.Join("testdata", "golden_profile_v1.bin")); err == nil {
		f.Add(raw)
		f.Add(raw[:len(raw)/2])
		f.Add(append(append([]byte(nil), raw...), 0xff))
		for _, off := range []int{0, 1, 9, 25, 58, len(raw) - 1} {
			mut := append([]byte(nil), raw...)
			mut[off] ^= 0x40
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{wireVersion})
	f.Add(NewProfile(Params{MinSamples: 2, FlagZ: 1, QuarantineZ: 2}).AppendBinary(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeProfile(data)
		if err != nil {
			if p != nil {
				t.Fatal("decode returned both a profile and an error")
			}
			return
		}
		re := p.AppendBinary(nil)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted %d bytes re-encode to %d different bytes", len(data), len(re))
		}
		// An accepted profile must be internally usable: scoring,
		// observing and reporting a plain batch must not panic, whatever
		// (finite) values the accepted bytes carried.
		o := Observation{Tweets: 5, Tokens: 15, OOVValid: true, MaxUserTweets: 1, TimeSpread: 0}
		if v, ok := p.Score(o); ok {
			p.Observe(o, &v)
		} else {
			p.Observe(o, nil)
		}
		_ = p.Report()
	})
}
