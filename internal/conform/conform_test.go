package conform

import (
	"bytes"
	"errors"
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update-profile-golden", false,
	"rewrite testdata/golden_profile_v1.bin from the current encoder")

// steadyObs is a structurally constant batch: 20 tweets, 3 tokens each,
// no OOV, no duplicates, one tweet per user, unit time step, zero spread.
func steadyObs(step bool) Observation {
	return Observation{
		Tweets: 20, Tokens: 60,
		OOVValid:      true,
		MaxUserTweets: 1,
		TimeStep:      1, StepValid: step,
	}
}

// warm observes n steady batches (the first without a time step, like a
// real stream's first batch).
func warm(p *Profile, n int) {
	for i := 0; i < n; i++ {
		p.Observe(steadyObs(i > 0), nil)
	}
}

func TestScoreNotReadyDuringWarmup(t *testing.T) {
	p := NewProfile(Params{})
	for i := 0; i < 7; i++ {
		if _, ok := p.Score(steadyObs(i > 0)); ok {
			t.Fatalf("batch %d scored with only %d samples (MinSamples=8)", i, p.Samples())
		}
		p.Observe(steadyObs(i > 0), nil)
	}
	if p.Ready() {
		t.Fatal("profile ready at 7 samples")
	}
}

func TestSteadyStreamConforms(t *testing.T) {
	p := NewProfile(Params{})
	// 9 batches so time_step (which starts one batch late) has its own
	// MinSamples=8 samples too.
	warm(p, 9)
	v, ok := p.Score(steadyObs(true))
	if !ok {
		t.Fatal("warmed profile did not score")
	}
	if v.Status != Conforming {
		t.Fatalf("steady batch scored %s (worst %s z=%.2f)", v.Status, v.Worst, v.MaxZ)
	}
	if len(v.Scores) != numMetrics {
		t.Fatalf("scored %d invariants, want %d", len(v.Scores), numMetrics)
	}
	if v.Violated != nil {
		t.Fatalf("conforming verdict lists violations: %v", v.Violated)
	}
}

// TestModerateJitterNotQuarantined pins the std floors: a stream whose
// shape varies a little (batch sizes 15..25) must neither flag nor
// quarantine a batch inside (or slightly outside) the seen range.
func TestModerateJitterNotQuarantined(t *testing.T) {
	p := NewProfile(Params{})
	for i := 0; i < 12; i++ {
		n := 15 + (i*3)%11
		p.Observe(Observation{
			Tweets: n, Tokens: 3 * n, OOVValid: true,
			MaxUserTweets: 1 + i%2, TimeStep: 1, StepValid: i > 0,
		}, nil)
	}
	v, ok := p.Score(Observation{
		Tweets: 27, Tokens: 27 * 3, OOVValid: true,
		MaxUserTweets: 2, TimeStep: 1, StepValid: true,
	})
	if !ok || v.Status != Conforming {
		t.Fatalf("jittered batch scored %s (worst %s z=%.2f), want conforming", v.Status, v.Worst, v.MaxZ)
	}
}

func TestOOVSpikeQuarantined(t *testing.T) {
	p := NewProfile(Params{})
	warm(p, 10)
	bad := steadyObs(true)
	bad.OOVTokens = bad.Tokens // 100% OOV vs learned 0%
	v, ok := p.Score(bad)
	if !ok || v.Status != Quarantined {
		t.Fatalf("OOV spike scored %v %s, want quarantined", ok, v.Status)
	}
	if v.Worst != "oov_rate" {
		t.Fatalf("worst invariant %s, want oov_rate", v.Worst)
	}
}

func TestTimestampJumpQuarantined(t *testing.T) {
	p := NewProfile(Params{})
	warm(p, 10)
	bad := steadyObs(true)
	bad.TimeStep = 1000
	v, _ := p.Score(bad)
	if v.Status != Quarantined || !contains(v.Violated, "time_step") {
		t.Fatalf("time jump scored %s (violated %v), want quarantined time_step", v.Status, v.Violated)
	}
	// A regression (negative step) is just as far from the envelope.
	bad.TimeStep = -500
	if v, _ := p.Score(bad); v.Status != Quarantined || !contains(v.Violated, "time_step") {
		t.Fatalf("time regression scored %s (violated %v), want quarantined time_step", v.Status, v.Violated)
	}
}

func TestDuplicateFloodQuarantined(t *testing.T) {
	p := NewProfile(Params{})
	warm(p, 10)
	bad := steadyObs(true)
	bad.Dups = 19
	bad.MaxUserTweets = 20
	v, _ := p.Score(bad)
	if v.Status != Quarantined || !contains(v.Violated, "dup_rate") {
		t.Fatalf("dup flood scored %s (violated %v), want quarantined dup_rate", v.Status, v.Violated)
	}
}

func TestFlagBetweenThresholds(t *testing.T) {
	// With jittered token counts the learned std is real; a batch ~5
	// sigma out lands between FlagZ=4 and QuarantineZ=8.
	p := NewProfile(Params{})
	for i := 0; i < 16; i++ {
		o := steadyObs(i > 0)
		o.Tokens = 60 + (i % 5) // mean ~62, floored std ~6.2 (10% of mean)
		p.Observe(o, nil)
	}
	o := steadyObs(true)
	o.Tokens = 100
	v, _ := p.Score(o)
	if v.Status != Flagged || !contains(v.Violated, "token_rate") {
		t.Fatalf("scored %s z=%.2f (violated %v), want flagged token_rate", v.Status, v.MaxZ, v.Violated)
	}
}

func TestObserveCountersAndDrift(t *testing.T) {
	p := NewProfile(Params{})
	warm(p, 8)
	v, _ := p.Score(steadyObs(true))
	p.Observe(steadyObs(true), &v)
	bad := steadyObs(true)
	bad.Dups = 19
	vb, _ := p.Score(bad)
	if vb.Status != Quarantined {
		t.Fatalf("expected quarantine verdict, got %s", vb.Status)
	}
	p.Observe(bad, &vb) // flag-mode semantics: applied anyway
	r := p.Report()
	if r.Observed != 10 || r.Scored != 2 || r.Quarantined != 1 || r.Flagged != 0 {
		t.Fatalf("report counters observed=%d scored=%d flagged=%d quarantined=%d",
			r.Observed, r.Scored, r.Flagged, r.Quarantined)
	}
	if r.Drift <= 0 || r.Trend != "rising" {
		t.Fatalf("after a quarantined batch drift=%g trend=%s, want positive and rising", r.Drift, r.Trend)
	}
}

func TestScoreDoesNotMutate(t *testing.T) {
	p := NewProfile(Params{})
	warm(p, 10)
	before := p.AppendBinary(nil)
	bad := steadyObs(true)
	bad.OOVTokens = bad.Tokens
	for i := 0; i < 3; i++ {
		p.Score(bad)
	}
	if !bytes.Equal(before, p.AppendBinary(nil)) {
		t.Fatal("Score mutated the profile")
	}
}

func TestEmptyBatchIgnored(t *testing.T) {
	p := NewProfile(Params{})
	warm(p, 10)
	before := p.AppendBinary(nil)
	p.Observe(Observation{}, nil)
	if _, ok := p.Score(Observation{}); ok {
		t.Fatal("empty batch produced a verdict")
	}
	if !bytes.Equal(before, p.AppendBinary(nil)) {
		t.Fatal("empty batch mutated the profile")
	}
}

func TestParamsValidate(t *testing.T) {
	for _, bad := range []Params{
		{MinSamples: -1},
		{FlagZ: -2},
		{QuarantineZ: math.Inf(1)},
		{FlagZ: 9, QuarantineZ: 3},
		{FlagZ: math.NaN()},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("params %+v validated", bad)
		}
	}
	if err := (Params{}).Validate(); err != nil {
		t.Fatalf("zero params (defaults): %v", err)
	}
	if err := (Params{MinSamples: 3, FlagZ: 2, QuarantineZ: 5}).Validate(); err != nil {
		t.Fatalf("custom params: %v", err)
	}
}

func TestIsZero(t *testing.T) {
	p := NewProfile(Params{})
	if !p.IsZero() {
		t.Fatal("fresh default profile not zero")
	}
	if NewProfile(Params{MinSamples: 3}).IsZero() {
		t.Fatal("custom params counted as zero")
	}
	p.Observe(steadyObs(false), nil)
	if p.IsZero() {
		t.Fatal("observed profile counted as zero")
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := NewProfile(Params{MinSamples: 4, FlagZ: 3, QuarantineZ: 6})
	warm(p, 9)
	v, _ := p.Score(steadyObs(true))
	p.Observe(steadyObs(true), &v)
	enc := p.AppendBinary(nil)
	got, err := DecodeProfile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
	}
	if re := got.AppendBinary(nil); !bytes.Equal(re, enc) {
		t.Fatal("re-encode is not byte-identical (encode∘decode not a fixed point)")
	}
}

func TestDecodeRejectsHostileBytes(t *testing.T) {
	p := NewProfile(Params{})
	warm(p, 8)
	good := p.AppendBinary(nil)

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 1, 10, len(good) - 1} {
			if _, err := DecodeProfile(good[:n]); err == nil {
				t.Errorf("accepted %d-byte truncation", n)
			}
		}
	})
	t.Run("oversized", func(t *testing.T) {
		if _, err := DecodeProfile(append(append([]byte(nil), good...), 0)); err == nil {
			t.Error("accepted trailing byte")
		}
	})
	t.Run("version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 99
		if _, err := DecodeProfile(b); !errors.Is(err, ErrProfileVersion) {
			t.Fatalf("unknown version: got %v, want ErrProfileVersion", err)
		}
	})
	t.Run("counter inversion", func(t *testing.T) {
		b := append([]byte(nil), good...)
		// scored > observed: offset of scored = 1+24+8.
		b[1+24+8] = 0xff
		if _, err := DecodeProfile(b); err == nil {
			t.Error("accepted scored > observed")
		}
	})
	t.Run("nan mean", func(t *testing.T) {
		p2 := p.Clone()
		p2.metrics[0].mean = math.NaN()
		if _, err := DecodeProfile(p2.AppendBinary(nil)); err == nil {
			t.Error("accepted NaN mean")
		}
	})
	t.Run("negative m2", func(t *testing.T) {
		p2 := p.Clone()
		p2.metrics[0].m2 = -1
		if _, err := DecodeProfile(p2.AppendBinary(nil)); err == nil {
			t.Error("accepted negative variance accumulator")
		}
	})
}

// TestGoldenProfileCompat pins the wire format: the checked-in fixture
// written by this PR's encoder must keep decoding (and re-encoding to
// the identical bytes) in every future build, or the wire version must
// be bumped.
func TestGoldenProfileCompat(t *testing.T) {
	path := filepath.Join("testdata", "golden_profile_v1.bin")
	if *updateGolden {
		p := goldenProfile()
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, p.AppendBinary(nil), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden fixture (regenerate with -update-profile-golden): %v", err)
	}
	p, err := DecodeProfile(raw)
	if err != nil {
		t.Fatalf("golden profile no longer decodes: %v", err)
	}
	if !bytes.Equal(p.AppendBinary(nil), raw) {
		t.Fatal("golden profile re-encodes differently")
	}
	if !p.Ready() || p.Samples() != 12 {
		t.Fatalf("golden profile semantics drifted: ready=%v samples=%d", p.Ready(), p.Samples())
	}
	if v, ok := p.Score(steadyObs(true)); !ok || v.Status != Conforming {
		t.Fatalf("steady batch against golden profile: ok=%v status=%s", ok, v.Status)
	}
}

// goldenProfile deterministically reconstructs the fixture's content.
func goldenProfile() *Profile {
	p := NewProfile(Params{})
	for i := 0; i < 12; i++ {
		o := steadyObs(i > 0)
		o.Tokens = 60 + i%3
		if p.Ready() {
			v, ok := p.Score(o)
			if ok {
				p.Observe(o, &v)
				continue
			}
		}
		p.Observe(o, nil)
	}
	return p
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}
