package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	defer SetProcs(0)
	for _, procs := range []int{1, 2, 7} {
		SetProcs(procs)
		for _, n := range []int{0, 1, 5, 1000, 100000} {
			hits := make([]int32, n)
			For(n, 1000, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("procs=%d n=%d: index %d visited %d times", procs, n, i, h)
				}
			}
		}
	}
}

func TestForChunkedChunkIndicesAreDistinct(t *testing.T) {
	SetProcs(4)
	defer SetProcs(0)
	const n = 100000
	seen := make([]int32, MaxChunks())
	used := ForChunked(n, 100, func(chunk, lo, hi int) {
		atomic.AddInt32(&seen[chunk], 1)
	})
	if used < 1 || used > MaxChunks() {
		t.Fatalf("used=%d out of range [1,%d]", used, MaxChunks())
	}
	for c := 0; c < used; c++ {
		if seen[c] != 1 {
			t.Fatalf("chunk %d ran %d times", c, seen[c])
		}
	}
}

func TestSmallWorkRunsSerial(t *testing.T) {
	SetProcs(8)
	defer SetProcs(0)
	// Work below MinParallelWork must stay on the calling goroutine in a
	// single chunk.
	if used := ForChunked(10, 1, func(chunk, lo, hi int) {
		if chunk != 0 || lo != 0 || hi != 10 {
			t.Fatalf("serial path got chunk=%d [%d,%d)", chunk, lo, hi)
		}
	}); used != 1 {
		t.Fatalf("used=%d, want 1", used)
	}
}

func TestNestedForFallsBackToSerial(t *testing.T) {
	SetProcs(4)
	defer SetProcs(0)
	const n = 100000
	var total atomic.Int64
	// The outer loop may fan out; inner loops must detect the active
	// region and run inline rather than deadlock on the shared pool.
	For(n, 10, func(lo, hi int) {
		For(1000, 1000, func(ilo, ihi int) {
			total.Add(int64(ihi - ilo))
		})
	})
	// Each outer chunk contributes one full inner range of 1000.
	if got := total.Load(); got%1000 != 0 || got == 0 {
		t.Fatalf("inner ranges incomplete: total=%d", got)
	}
}

func TestSetProcsClampsAndRestoresDefault(t *testing.T) {
	SetProcs(3)
	if Procs() != 3 {
		t.Fatalf("Procs=%d, want 3", Procs())
	}
	SetProcs(-5)
	if Procs() < 1 {
		t.Fatalf("Procs=%d, want >=1", Procs())
	}
	SetProcs(0)
}
