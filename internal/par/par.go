// Package par provides the chunked data-parallel loop that backs every
// dense and sparse kernel in this repository.
//
// # Model
//
// Run (and its closure conveniences For and ForChunked) splits a row range
// [0, n) into at most Procs() contiguous chunks and executes them on a
// persistent pool of worker goroutines. The pool is sized to the
// parallelism width and reused across calls, so a multiplicative-update
// sweep that issues dozens of kernel launches pays the goroutine start-up
// cost once per process, not once per launch. Hot kernels implement the
// Body interface with small pooled structs instead of closures, which
// keeps a kernel launch free of heap allocation on both the serial and
// the parallel path.
//
// # Threshold heuristic
//
// Handing a chunk to a worker costs on the order of a microsecond
// (channel send, wake-up, cache warm-up on another core). A kernel call
// is only split when its total scalar work — rows × costPerRow, where
// costPerRow approximates the flops per row (e.g. k² for an n×k × k×k
// product, nnz/rows·k for an SpMM) — exceeds MinParallelWork. Below the
// threshold the loop body runs inline on the calling goroutine, so the
// tiny k×k factor-core products of the tri-clustering solvers (k ≤ 8)
// never pay parallel overhead, while the n×k and nnz-sized sweeps over
// tweets, users and features do get split. MinParallelWork = 64·1024
// scalar ops ≈ tens of microseconds of arithmetic, an order of magnitude
// above the hand-off cost.
//
// # Determinism
//
// Chunk boundaries depend only on n and Procs(), never on scheduling, so
// kernels that reduce per-chunk partials in chunk order produce
// bit-identical results across runs at a fixed Procs() and results within
// floating-point reassociation error (≪ 1e-10 relative for the shapes
// used here) of the serial path.
//
// Nested or concurrent parallel regions are detected with an atomic guard
// and run serially inline, which keeps the pool deadlock-free without
// goroutine-local state.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// MinParallelWork is the minimum total scalar work (rows × costPerRow)
// before a loop is split across workers. See the package comment for the
// rationale.
const MinParallelWork = 64 * 1024

// procs holds the configured parallelism width; 0 selects
// runtime.GOMAXPROCS(0).
var procs atomic.Int64

// SetProcs sets the parallelism width used by Run, For and ForChunked.
// n ≤ 0 restores the default (runtime.GOMAXPROCS(0)). Call it during
// startup, before kernels run: kernels size per-chunk storage from
// MaxChunks, so growing the width mid-computation is not supported.
func SetProcs(n int) {
	if n < 0 {
		n = 0
	}
	procs.Store(int64(n))
}

// Procs returns the current parallelism width.
func Procs() int {
	if p := int(procs.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// MaxChunks returns an upper bound on the number of chunks any subsequent
// Run call may use, for sizing per-chunk accumulator storage.
func MaxChunks() int {
	p := Procs()
	if p < 1 {
		p = 1
	}
	return p
}

// Body is a parallel loop body. Range processes rows [lo, hi); chunk is
// the deterministic chunk index (0 on the serial path), letting reduction
// kernels accumulate into per-chunk storage without races. Range must
// treat disjoint row ranges independently.
type Body interface {
	Range(chunk, lo, hi int)
}

// region ties the chunks of one Run call together. Pooled so a parallel
// launch performs no heap allocation in steady state.
type region struct {
	body Body
	wg   sync.WaitGroup
}

var regionPool = sync.Pool{New: func() any { return new(region) }}

type task struct {
	r      *region
	chunk  int
	lo, hi int
}

var (
	poolMu  sync.Mutex
	workCh  chan task
	workers int

	// active guards against nested/concurrent parallel regions: only one
	// Run may fan out at a time, the rest run inline. This keeps the
	// fixed-size pool deadlock-free (a worker never blocks waiting for a
	// chunk that only another busy worker could run).
	active atomic.Int32
)

func ensureWorkers(n int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	if workCh == nil {
		workCh = make(chan task, 256)
	}
	for workers < n {
		go func() {
			for t := range workCh {
				t.r.body.Range(t.chunk, t.lo, t.hi)
				t.r.wg.Done()
			}
		}()
		workers++
	}
}

// Run executes body over [0, n) — split into parallel chunks when the
// total work n×costPerRow clears MinParallelWork and no other region is
// in flight, inline otherwise. It returns the number of chunks used
// (1 on the serial path, ≤ MaxChunks() always).
func Run(n, costPerRow int, body Body) int {
	if n <= 0 {
		return 0
	}
	p := Procs()
	if p <= 1 || costPerRow < 1 || n*costPerRow < MinParallelWork ||
		!active.CompareAndSwap(0, 1) {
		body.Range(0, 0, n)
		return 1
	}
	defer active.Store(0)

	chunks := p
	if chunks > n {
		chunks = n
	}
	ensureWorkers(chunks - 1)
	r := regionPool.Get().(*region)
	r.body = body
	r.wg.Add(chunks - 1)
	// Balanced split: chunk c covers [c·n/chunks, (c+1)·n/chunks), so
	// sizes differ by at most one row and no chunk is empty.
	for c := 0; c < chunks-1; c++ {
		workCh <- task{r: r, chunk: c, lo: c * n / chunks, hi: (c + 1) * n / chunks}
	}
	// The caller runs the final chunk itself, so even a saturated pool
	// makes forward progress.
	body.Range(chunks-1, (chunks-1)*n/chunks, n)
	r.wg.Wait()
	r.body = nil
	regionPool.Put(r)
	return chunks
}

// funcBody adapts a closure to Body for the For/ForChunked conveniences.
type funcBody struct{ fn func(chunk, lo, hi int) }

func (b *funcBody) Range(chunk, lo, hi int) { b.fn(chunk, lo, hi) }

var funcBodyPool = sync.Pool{New: func() any { return new(funcBody) }}

// For runs fn over [0, n) with the chunking and threshold rules of Run.
// Convenient for cold paths; hot kernels implement Body directly so the
// launch does not allocate a closure.
func For(n, costPerRow int, fn func(lo, hi int)) {
	ForChunked(n, costPerRow, func(_, lo, hi int) { fn(lo, hi) })
}

// ForChunked is For with the chunk index exposed, so callers can
// accumulate into per-chunk storage and reduce deterministically (in
// chunk order) afterwards. It returns the number of chunks used.
func ForChunked(n, costPerRow int, fn func(chunk, lo, hi int)) int {
	b := funcBodyPool.Get().(*funcBody)
	b.fn = fn
	chunks := Run(n, costPerRow, b)
	b.fn = nil
	funcBodyPool.Put(b)
	return chunks
}
