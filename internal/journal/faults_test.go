package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"triclust/internal/fault"
)

const (
	rotOldCRC = 0x0DDC0FFE
	rotNewCRC = 0xCAFED00D
)

// rotateWorkloadRecords appends two records against the old snapshot
// identity and returns the writer ready to Rotate.
func rotateWorkload(t *testing.T, fsys fault.FS, path string) *Writer {
	t.Helper()
	w, err := Create(fsys, path, rotOldCRC)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 1; i <= 2; i++ {
		if err := w.Append(&Record{Time: i, Batches: i, RandDraws: uint64(i) * 10}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	return w
}

// TestRotateInterruptedStates kills Rotate at each of its failpoints
// under every tail mode and asserts the surviving file is never
// misparsed: Load either refuses it (the quarantine path — header
// truncated or checksum-failing) or yields one of the two consistent
// states, the intact old journal or a validly empty new one. No mixture
// — never the new header with the old records, never phantom records.
func TestRotateInterruptedStates(t *testing.T) {
	for _, site := range []string{"journal.rotate.truncate", "journal.rotate.write", "journal.rotate.sync"} {
		for _, tm := range []fault.TailMode{fault.KeepTail, fault.DropTail, fault.TornTail} {
			t.Run(fmt.Sprintf("%s/tail=%d", site, tm), func(t *testing.T) {
				path := filepath.Join(t.TempDir(), "j")
				script := fault.NewScript(fault.Rule{Site: site, Hit: 1, Crash: true, Tail: tm})
				w := rotateWorkload(t, script, path)
				crashed := false
				func() {
					defer func() {
						if r := recover(); r != nil {
							if _, ok := fault.AsCrash(r); !ok {
								panic(r)
							}
							crashed = true
						}
					}()
					_ = w.Rotate(rotNewCRC)
				}()
				if !crashed {
					t.Fatalf("rotate did not hit %s", site)
				}

				j, err := Load(fault.OS, path)
				if err != nil {
					// The quarantine path: callers rename the file aside and
					// serve the snapshot alone. Only the sentinel errors are
					// acceptable — an unexpected error class would bubble as
					// a load failure instead of a quarantine.
					if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) {
						t.Fatalf("interrupted rotate left a file Load fails on unquarantinably: %v", err)
					}
					return
				}
				switch {
				case j.SnapCRC == rotOldCRC:
					// The rotate never touched disk: the old journal must be
					// fully intact.
					if len(j.Records) != 2 || j.Torn {
						t.Fatalf("old-identity journal: %d records torn=%v, want the 2 intact ones", len(j.Records), j.Torn)
					}
				case j.SnapCRC == rotNewCRC:
					// The re-header landed: the journal is validly empty
					// against the new snapshot. Old records must be gone —
					// they belong to the old identity and replaying them on
					// the new snapshot would double-apply.
					if len(j.Records) != 0 {
						t.Fatalf("new-identity journal resurrected %d old records", len(j.Records))
					}
				default:
					t.Fatalf("interrupted rotate produced a journal naming snapshot %#x, which never existed", j.SnapCRC)
				}
			})
		}
	}
}

// TestWriterBrokenLatch: once a Rotate or TruncateTail fails, the file's
// real length no longer matches the writer's bookkeeping, so the writer
// must refuse every further append and rotate instead of extending the
// file at an unknowable offset.
func TestWriterBrokenLatch(t *testing.T) {
	boom := errors.New("injected")
	t.Run("rotate", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j")
		script := fault.NewScript(fault.Rule{Site: "journal.rotate.write", Hit: 1, Err: boom})
		w := rotateWorkload(t, script, path)
		defer w.Close()
		if err := w.Rotate(rotNewCRC); !errors.Is(err, boom) {
			t.Fatalf("rotate: %v, want the injected failure", err)
		}
		if err := w.Append(&Record{Time: 3, Batches: 3}); err == nil {
			t.Fatal("append after a failed rotate must be refused")
		}
		if err := w.Rotate(rotNewCRC); err == nil {
			t.Fatal("re-rotate on a broken writer must be refused")
		}
		// The way forward is Close + Create: the recreated journal is
		// coherent again.
		w.Close()
		w2, err := Create(fault.OS, path, rotNewCRC)
		if err != nil {
			t.Fatalf("re-create after broken rotate: %v", err)
		}
		defer w2.Close()
		if err := w2.Append(&Record{Time: 3, Batches: 1, RandDraws: 10}); err != nil {
			t.Fatalf("append after re-create: %v", err)
		}
		j, err := Load(fault.OS, path)
		if err != nil || j.SnapCRC != rotNewCRC || len(j.Records) != 1 {
			t.Fatalf("re-created journal: err=%v crc=%#x records=%d", err, j.SnapCRC, len(j.Records))
		}
	})
	t.Run("truncate", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j")
		script := fault.NewScript(fault.Rule{Site: "journal.truncate.truncate", Hit: 1, Err: boom})
		w := rotateWorkload(t, script, path)
		defer w.Close()
		if err := w.TruncateTail(); !errors.Is(err, boom) {
			t.Fatalf("truncate: %v, want the injected failure", err)
		}
		if err := w.Append(&Record{Time: 3, Batches: 3}); err == nil {
			t.Fatal("append after a failed truncate must be refused")
		}
		// Whatever state the failed truncate left, Load still resolves the
		// file to the intact record prefix — the append-only framing is
		// self-delimiting.
		j, err := Load(fault.OS, path)
		if err != nil {
			t.Fatalf("load after failed truncate: %v", err)
		}
		if j.SnapCRC != rotOldCRC || len(j.Records) != 2 {
			t.Fatalf("after failed truncate: crc=%#x records=%d, want old identity with 2 records", j.SnapCRC, len(j.Records))
		}
	})
}

// journalFaultSites are the Writer's failpoints the fault-injection
// fuzzer can kill — kept in one place so a new Writer site gets added
// here (the crash-point matrix in cmd/triclustd discovers its own sites
// and will not notice a missing entry in this list, but the fuzz corpus
// grows per entry).
var journalFaultSites = []string{
	"journal.create.open", "journal.create.write", "journal.create.sync",
	"journal.append.write", "journal.append.sync",
	"journal.rotate.truncate", "journal.rotate.write", "journal.rotate.sync",
	"journal.truncate.truncate", "journal.truncate.sync",
}

// FuzzJournalFaultInjection drives the full writer lifecycle — create,
// append, rotate, append — under a fuzzer-chosen fault (site, hit, error
// vs crash, tail mode, optional ENOSPC budget) and asserts the recovery
// contract on the surviving file: Load either refuses it with a
// quarantinable error, or yields a consistent journal — the records of
// exactly one snapshot identity, acked ≤ loaded ≤ attempted, in order.
func FuzzJournalFaultInjection(f *testing.F) {
	f.Add(uint8(3), uint8(1), false, uint8(1), int64(-1))
	f.Add(uint8(4), uint8(2), true, uint8(2), int64(-1))
	f.Add(uint8(6), uint8(1), true, uint8(0), int64(-1))
	f.Add(uint8(0), uint8(1), true, uint8(1), int64(-1))
	f.Add(uint8(3), uint8(2), false, uint8(0), int64(40))
	f.Fuzz(func(t *testing.T, siteIdx, hit uint8, crash bool, tailMode uint8, budget int64) {
		site := journalFaultSites[int(siteIdx)%len(journalFaultSites)]
		rule := fault.Rule{Site: site, Hit: int(hit%4) + 1, Tail: fault.TailMode(tailMode % 3)}
		if crash {
			rule.Crash = true
		} else {
			rule.Err = syscall.EIO
		}
		script := fault.NewScript(rule)
		if budget >= 0 {
			script.SetBudget(budget % 4096)
		}
		path := filepath.Join(t.TempDir(), "j")

		// ackedOld/ackedNew count durably acknowledged appends per journal
		// identity; attempted* count appends that were started.
		var ackedOld, attemptedOld, ackedNew, attemptedNew int
		rotated := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := fault.AsCrash(r); !ok {
						panic(r)
					}
				}
			}()
			w, err := Create(script, path, rotOldCRC)
			if err != nil {
				return
			}
			defer w.Close()
			for i := 1; i <= 3; i++ {
				// Mirror production: the batch counter advances only on a
				// durable append, so a failed-then-retried slot re-uses its
				// fingerprint (the rollback re-read restores the position).
				attemptedOld = ackedOld + 1
				if err := w.Append(&Record{Time: i, Batches: ackedOld + 1, RandDraws: uint64(ackedOld+1) * 10}); err != nil {
					// A failed append leaves an ambiguous tail; production
					// truncates it. Stop on a broken writer.
					if w.TruncateTail() != nil {
						return
					}
					attemptedOld = ackedOld
					continue
				}
				ackedOld++
			}
			if err := w.Rotate(rotNewCRC); err != nil {
				return
			}
			rotated = true
			for i := 1; i <= 2; i++ {
				attemptedNew = ackedNew + 1
				if err := w.Append(&Record{Time: 100 + i, Batches: ackedNew + 1, RandDraws: uint64(ackedNew+1) * 7}); err != nil {
					if w.TruncateTail() != nil {
						return
					}
					attemptedNew = ackedNew
					continue
				}
				ackedNew++
			}
		}()

		j, err := Load(fault.OS, path)
		if err != nil {
			if os.IsNotExist(err) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrBadMagic) || errors.Is(err, ErrVersion) {
				return // quarantine (or never-created): recovery serves the snapshot alone
			}
			t.Fatalf("fault at %s left a file Load fails on unquarantinably: %v", site, err)
		}
		var acked, attempted int
		switch j.SnapCRC {
		case rotOldCRC:
			acked, attempted = ackedOld, attemptedOld
			if rotated && rule.Crash {
				// The crash froze the image before the rotate's effects were
				// observable as acks — the old identity surviving is fine,
				// but then all its acked records must be there.
				attempted = 3
			}
		case rotNewCRC:
			acked, attempted = ackedNew, attemptedNew
			if !rotated {
				// The rotate's re-header landed durably even though the
				// crash kept Rotate from returning: a validly empty journal.
				attempted = 0
				acked = 0
			}
		default:
			t.Fatalf("journal names snapshot %#x, which never existed", j.SnapCRC)
		}
		if len(j.Records) < acked || len(j.Records) > attempted {
			t.Fatalf("fault at %s: loaded %d records for identity %#x, want acked %d <= loaded <= attempted %d",
				site, len(j.Records), j.SnapCRC, acked, attempted)
		}
		for i, rec := range j.Records {
			if rec.Batches != i+1 {
				t.Fatalf("record %d carries batch fingerprint %d — out of order or phantom", i, rec.Batches)
			}
		}
	})
}
