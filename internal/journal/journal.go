// Package journal implements the append-only batch journal that gives the
// daemon O(batch) durability between snapshots. Where a snapshot is a full
// copy of a topic's state (O(state) to write), a journal record is the
// *delta* of one processed batch: the batch inputs plus a post-batch
// fingerprint (batch counter and the solver's random-stream position).
// Because a topic's pipeline is deterministic — canonicalized batches, a
// draw-counted random stream — replaying the journal tail through
// Topic.Process after loading the snapshot it extends reproduces the live
// topic bit-for-bit, and the fingerprints verify that it did.
//
// # Format
//
// A journal reuses internal/codec's framing idiom (little-endian
// primitives, CRC-32C):
//
//	magic    [8]byte  "TRICJRNL"
//	version  uint16   journal format version (currently 1)
//	snapCRC  uint32   CRC-32C of the snapshot file this journal extends
//	hdrCRC   uint32   CRC-32C of the 14 header bytes above
//
// followed by zero or more records, each
//
//	kind     uint8    record type (1 = batch)
//	size     uint32   payload length in bytes
//	payload  [size]byte
//	crc      uint32   CRC-32C of kind ‖ size ‖ payload
//
// The batch payload is the wire encoding of (time, tweets, batches,
// randDraws). Appends are fsynced before the batch is acknowledged, so an
// acknowledged batch survives a crash; a crash *during* an append leaves
// a torn final record, which Load tolerates by truncating at the first
// record whose CRC or framing fails (the torn batch was never
// acknowledged). A journal whose header is unreadable is undecodable —
// callers quarantine it and fall back to the snapshot alone.
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"triclust/internal/codec"
	"triclust/internal/fault"
	"triclust/internal/tgraph"
)

// Version is the current journal format version.
const Version = 1

var magic = [8]byte{'T', 'R', 'I', 'C', 'J', 'R', 'N', 'L'}

const (
	recBatch = 1
	// maxRecordSize bounds a single record's payload so a corrupted or
	// hostile length field cannot force a huge allocation.
	maxRecordSize = 1 << 28
)

var (
	// ErrBadMagic marks a file that is not a triclust journal at all.
	ErrBadMagic = errors.New("journal: not a triclust journal (bad magic)")
	// ErrVersion marks a journal written by an unknown format version.
	ErrVersion = errors.New("journal: unsupported journal version")
	// ErrCorrupt marks an undecodable header or record framing.
	ErrCorrupt = errors.New("journal: corrupt journal")
)

// Record is one processed batch's delta: its inputs and the post-batch
// fingerprint used to verify replay.
type Record struct {
	// Time is the batch timestamp passed to Topic.Process.
	Time int
	// Tweets are the batch inputs exactly as processed (Tokens keeps its
	// nil-vs-empty distinction: nil means the text was tokenized).
	Tweets []tgraph.Tweet
	// Batches is the topic's non-empty batch count after this batch.
	Batches int
	// RandDraws is the solver's random-stream position after this batch.
	RandDraws uint64
}

// header is the fixed journal prelude: magic, version, the CRC of the
// snapshot this journal extends, and a CRC over those bytes.
func encodeHeader(snapCRC uint32) []byte {
	buf := make([]byte, 0, 18)
	buf = append(buf, magic[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, snapCRC)
	return binary.LittleEndian.AppendUint32(buf, codec.Checksum(buf))
}

func decodeHeader(buf []byte) (snapCRC uint32, rest []byte, err error) {
	if len(buf) < 18 {
		return 0, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if !bytes.Equal(buf[:8], magic[:]) {
		return 0, nil, ErrBadMagic
	}
	if want := binary.LittleEndian.Uint32(buf[14:18]); codec.Checksum(buf[:14]) != want {
		return 0, nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(buf[8:10]); v != Version {
		return 0, nil, fmt.Errorf("%w: journal is version %d, this build reads %d", ErrVersion, v, Version)
	}
	return binary.LittleEndian.Uint32(buf[10:14]), buf[18:], nil
}

// Writer appends CRC-framed records to a journal file, fsyncing each
// append so an acknowledged record survives a crash. All file I/O goes
// through the fault.FS the Writer was created with, so every durable
// syscall here is a named failpoint the crash-point matrix can hit.
type Writer struct {
	f    fault.File
	size int64
	// broken latches after a failed Rotate or TruncateTail: the file's
	// contents no longer match w.size (a re-header or truncate died
	// half-way), so further appends would land at an unknowable offset.
	// The only way forward is Close + Create (or quarantine at the next
	// Load, whose header checksum catches the half-written state).
	broken bool
}

// Create truncates (or creates) the journal at path, writes a header
// naming the snapshot it extends, and fsyncs it. The caller owns syncing
// the directory if the file is new.
func Create(fsys fault.FS, path string, snapCRC uint32) (*Writer, error) {
	f, err := fsys.OpenFile("journal.create.open", path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := encodeHeader(snapCRC)
	if _, err := f.Write("journal.create.write", hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync("journal.create.sync"); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, size: int64(len(hdr))}, nil
}

// EncodeFrame returns rec's CRC-framed wire encoding — the exact bytes
// Append writes. Exposed so the replication shipper can append a record
// locally and ship the identical frame to follower shards, which verify
// and store it without re-encoding.
func EncodeFrame(rec *Record) ([]byte, error) {
	var buf bytes.Buffer
	enc := codec.NewWireEncoder(&buf)
	enc.Int(int64(rec.Time))
	enc.Uint(uint64(len(rec.Tweets)))
	for i := range rec.Tweets {
		enc.Tweet(&rec.Tweets[i])
	}
	enc.Int(int64(rec.Batches))
	enc.Uint(rec.RandDraws)
	if err := enc.Err(); err != nil {
		return nil, err
	}
	payload := buf.Bytes()
	if len(payload) > maxRecordSize {
		return nil, fmt.Errorf("journal: record payload %d exceeds limit", len(payload))
	}
	frame := make([]byte, 0, 5+len(payload)+4)
	frame = append(frame, recBatch)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, codec.Checksum(frame))
	return frame, nil
}

// DecodeFrame decodes one framed record from the front of buf, returning
// its decoded form and encoded length. ok is false when the frame is
// truncated, its checksum fails, or its payload does not decode.
func DecodeFrame(buf []byte) (rec *Record, n int, ok bool) {
	return decodeRecord(buf)
}

// Append marshals rec, appends it and fsyncs. The record is durable when
// Append returns nil.
func (w *Writer) Append(rec *Record) error {
	frame, err := EncodeFrame(rec)
	if err != nil {
		return err
	}
	return w.AppendFrames(frame)
}

// AppendFrames appends pre-encoded record frames (from EncodeFrame, or
// received off the replication wire after verification) and fsyncs once.
// Callers own frame validity — the bytes are written as given.
func (w *Writer) AppendFrames(frames []byte) error {
	if w.f == nil {
		return errors.New("journal: writer is closed")
	}
	if w.broken {
		return errors.New("journal: writer broken by a failed rotate/truncate")
	}
	if _, err := w.f.Write("journal.append.write", frames); err != nil {
		return err
	}
	if err := w.f.Sync("journal.append.sync"); err != nil {
		return err
	}
	w.size += int64(len(frames))
	return nil
}

// TruncateTail cuts the file back to the last successfully appended
// record. After a failed Append (a partial write, ENOSPC mid-frame) the
// on-disk tail is ambiguous — bytes of a record that was never
// acknowledged; truncating restores the journal to exactly its state
// before the failed append, so recovery never has to guess.
func (w *Writer) TruncateTail() error {
	if w.f == nil {
		return errors.New("journal: writer is closed")
	}
	if err := w.f.Truncate("journal.truncate.truncate", w.size); err != nil {
		w.broken = true
		return err
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.broken = true
		return err
	}
	return w.f.Sync("journal.truncate.sync")
}

// Size returns the current journal file size in bytes.
func (w *Writer) Size() int64 { return w.size }

// Rotate restarts the journal in place: it truncates the file on the open
// descriptor and writes a fresh header naming the snapshot the journal
// extends from now on. This is the compaction hook — after a snapshot
// rewrite (the periodic compaction point, or a topic hand-off's final
// drain) the journal must restart empty against the new snapshot's
// identity, and rotating the existing descriptor avoids the close/reopen
// of Create on every compaction. A crash between the truncate and the
// header fsync leaves an undecodable header, which recovery quarantines
// and serves the (just-written, complete) snapshot alone — the same crash
// window Create has.
func (w *Writer) Rotate(snapCRC uint32) error {
	if w.f == nil {
		return errors.New("journal: writer is closed")
	}
	if w.broken {
		return errors.New("journal: writer broken by a failed rotate/truncate")
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	// From the truncate on, a failure leaves the file half re-headered —
	// mark the writer broken so no append can extend a file whose real
	// length diverged from w.size. Every such half-state is undecodable
	// to Load (truncated or checksum-failing header, or a header whose
	// snapCRC no longer matches any snapshot), so recovery quarantines
	// it rather than misparsing — see TestRotateInterruptedStates.
	if err := w.f.Truncate("journal.rotate.truncate", 0); err != nil {
		w.broken = true
		return err
	}
	hdr := encodeHeader(snapCRC)
	if _, err := w.f.Write("journal.rotate.write", hdr); err != nil {
		w.broken = true
		return err
	}
	if err := w.f.Sync("journal.rotate.sync"); err != nil {
		w.broken = true
		return err
	}
	w.size = int64(len(hdr))
	return nil
}

// Close closes the underlying file. The journal remains on disk.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Open loads an existing journal and returns a Writer positioned to
// append after its last intact record, plus the loaded contents. A torn
// final record (never acknowledged, by the append protocol) is truncated
// away so appended frames always follow intact ones. This is the replica
// store's restart path: a follower resumes appending a primary's shipped
// frames to the tail it already holds.
func Open(fsys fault.FS, path string) (*Writer, *Journal, error) {
	j, err := Load(fsys, path)
	if err != nil {
		return nil, nil, err
	}
	f, err := fsys.OpenFile("journal.open.open", path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if j.Torn {
		if err := f.Truncate("journal.open.truncate", j.Size); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(j.Size, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Writer{f: f, size: j.Size}, j, nil
}

// Journal is the result of loading a journal file for recovery.
type Journal struct {
	// SnapCRC names the snapshot this journal extends: recovery replays
	// the records only on top of the snapshot file with this checksum.
	SnapCRC uint32
	// Records are the decoded batch deltas, in append order.
	Records []*Record
	// Torn reports that trailing bytes after the last intact record
	// failed their CRC or framing — the signature of a crash mid-append.
	// The torn tail was never acknowledged, so recovery proceeds with the
	// intact prefix.
	Torn bool
	// Size is the file offset just past the last intact record — the
	// position Open resumes appending at. It is the offset actually
	// consumed while decoding, so it stays correct even if encode and
	// decode ever disagree about a record's framing.
	Size int64
}

// Load reads a journal file, tolerating a torn final record. It fails
// with ErrBadMagic/ErrVersion/ErrCorrupt only when the header itself is
// undecodable (the caller should quarantine such a file); record-level
// corruption truncates instead, per the append-only crash model.
func Load(fsys fault.FS, path string) (*Journal, error) {
	data, err := fsys.ReadFile("journal.load.read", path)
	if err != nil {
		return nil, err
	}
	snapCRC, rest, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	j := &Journal{SnapCRC: snapCRC, Size: int64(len(data) - len(rest))}
	for len(rest) > 0 {
		rec, n, ok := decodeRecord(rest)
		if !ok {
			j.Torn = true
			break
		}
		j.Records = append(j.Records, rec)
		j.Size += int64(n)
		rest = rest[n:]
	}
	return j, nil
}

// decodeRecord decodes one framed record from the front of buf, returning
// its decoded form and encoded length. ok is false when the frame is
// truncated, its checksum fails, or its payload does not decode — all
// treated as the torn tail.
func decodeRecord(buf []byte) (*Record, int, bool) {
	if len(buf) < 9 {
		return nil, 0, false
	}
	if buf[0] != recBatch {
		return nil, 0, false
	}
	size := binary.LittleEndian.Uint32(buf[1:5])
	if size > maxRecordSize || uint64(len(buf)) < 9+uint64(size) {
		return nil, 0, false
	}
	end := 5 + int(size)
	want := binary.LittleEndian.Uint32(buf[end : end+4])
	if codec.Checksum(buf[:end]) != want {
		return nil, 0, false
	}
	dec := codec.NewWireDecoder(buf[5:end])
	rec := &Record{Time: int(dec.Int())}
	n := dec.Uint()
	// A tweet encodes to at least minTweetBytes, so bound the claimed
	// count by the bytes actually present — a crafted record cannot
	// force an allocation larger than its own payload (CRC-32C detects
	// corruption, not tampering).
	const minTweetBytes = 49
	if dec.Err() != nil || n > uint64(dec.Remaining())/minTweetBytes {
		return nil, 0, false
	}
	rec.Tweets = make([]tgraph.Tweet, 0, n)
	for i := uint64(0); i < n && dec.Err() == nil; i++ {
		rec.Tweets = append(rec.Tweets, dec.Tweet())
	}
	rec.Batches = int(dec.Int())
	rec.RandDraws = dec.Uint()
	if dec.Err() != nil || dec.Remaining() != 0 {
		return nil, 0, false
	}
	return rec, end + 4, true
}

// CRCWriter tees writes to an inner writer while accumulating the
// CRC-32C of everything written, so a snapshot and its journal-header
// identity are produced in one pass.
type CRCWriter struct {
	w   io.Writer
	crc uint32
}

// NewCRCWriter wraps w, tracking the CRC-32C of all bytes written.
func NewCRCWriter(w io.Writer) *CRCWriter {
	return &CRCWriter{w: w}
}

// Write implements io.Writer.
func (c *CRCWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = codec.ChecksumUpdate(c.crc, p[:n])
	return n, err
}

// Sum returns the CRC-32C of everything written so far.
func (c *CRCWriter) Sum() uint32 { return c.crc }
