package journal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"triclust/internal/fault"
	"triclust/internal/tgraph"
)

func testRecords() []*Record {
	return []*Record{
		{
			Time: 3,
			Tweets: []tgraph.Tweet{
				{Text: "love the #prop37 win", User: 0, Time: 3, RetweetOf: -1, Label: -1},
				{Tokens: []string{"no", "on", "37"}, User: 1, Time: 3, RetweetOf: -1, Label: 1},
				{Tokens: []string{}, User: 2, Time: 3, RetweetOf: 0, Label: -1},
			},
			Batches:   1,
			RandDraws: 12345,
		},
		{
			Time:      4,
			Tweets:    []tgraph.Tweet{{Text: "still here", User: 2, Time: 4, RetweetOf: -1, Label: -1}},
			Batches:   2,
			RandDraws: 67890,
		},
	}
}

func writeTestJournal(t *testing.T, path string, snapCRC uint32, recs []*Record) {
	t.Helper()
	w, err := Create(fault.OS, path, snapCRC)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topic.journal")
	recs := testRecords()
	writeTestJournal(t, path, 0xDEADBEEF, recs)

	j, err := Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if j.SnapCRC != 0xDEADBEEF {
		t.Fatalf("SnapCRC = %#x, want 0xDEADBEEF", j.SnapCRC)
	}
	if j.Torn {
		t.Fatal("clean journal reported torn")
	}
	if !reflect.DeepEqual(j.Records, recs) {
		t.Fatalf("records differ:\ngot  %+v\nwant %+v", j.Records, recs)
	}
	// The nil-vs-empty Tokens distinction must survive: nil means
	// "tokenize the text", empty means "tokenized, no features".
	if j.Records[0].Tweets[0].Tokens != nil {
		t.Fatal("nil Tokens decoded as non-nil")
	}
	if j.Records[0].Tweets[2].Tokens == nil {
		t.Fatal("empty Tokens decoded as nil")
	}
}

func TestJournalEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.journal")
	writeTestJournal(t, path, 7, nil)
	j, err := Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(j.Records) != 0 || j.Torn || j.SnapCRC != 7 {
		t.Fatalf("empty journal loaded as %+v", j)
	}
}

// TestJournalTornTail simulates a crash mid-append: every strict prefix
// of the final record must load as the intact prefix with Torn set.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.journal")
	recs := testRecords()
	writeTestJournal(t, full, 1, recs)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	one := filepath.Join(dir, "one.journal")
	writeTestJournal(t, one, 1, recs[:1])
	oneLen, err := os.Stat(one)
	if err != nil {
		t.Fatal(err)
	}

	for cut := int(oneLen.Size()) + 1; cut < len(data); cut += 7 {
		torn := filepath.Join(dir, "torn.journal")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Load(fault.OS, torn)
		if err != nil {
			t.Fatalf("cut %d: Load: %v", cut, err)
		}
		if !j.Torn {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if len(j.Records) != 1 || !reflect.DeepEqual(j.Records[0], recs[0]) {
			t.Fatalf("cut %d: intact prefix not recovered (%d records)", cut, len(j.Records))
		}
	}
}

// TestJournalBitFlips mirrors the codec corruption suite: flipping any
// byte must never decode into different records without detection — it
// either truncates the record stream (torn semantics) or rejects the
// header.
func TestJournalBitFlips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	recs := testRecords()
	writeTestJournal(t, path, 42, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x40
		flip := filepath.Join(dir, "flip.journal")
		if err := os.WriteFile(flip, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Load(fault.OS, flip)
		if off < 18 {
			// Header corruption must be rejected outright.
			if err == nil {
				t.Fatalf("offset %d: corrupted header accepted", off)
			}
			continue
		}
		if err != nil {
			t.Fatalf("offset %d: record corruption should truncate, got %v", off, err)
		}
		// A flipped record byte must drop that record (and everything
		// after it); earlier records stay intact.
		if !j.Torn {
			t.Fatalf("offset %d: corruption not detected", off)
		}
		for i, r := range j.Records {
			if !reflect.DeepEqual(r, recs[i]) {
				t.Fatalf("offset %d: surviving record %d differs", off, i)
			}
		}
	}
}

func TestJournalHeaderRejections(t *testing.T) {
	dir := t.TempDir()

	bad := filepath.Join(dir, "bad.journal")
	if err := os.WriteFile(bad, []byte("NOTAJRNLxxxxxxxxxx"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(fault.OS, bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}

	short := filepath.Join(dir, "short.journal")
	if err := os.WriteFile(short, []byte("TRICJRNL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(fault.OS, short); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header: got %v", err)
	}
}

// TestJournalAppendIsOBatch pins the whole point of the journal: bytes
// appended per batch depend on the batch, not on how much history the
// topic has accumulated. Identical batches appended late in a long
// stream must cost exactly as many bytes as the first one.
func TestJournalAppendIsOBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.journal")
	w, err := Create(fault.OS, path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	rec := testRecords()[0]
	var first int64
	prev := w.Size()
	for i := 0; i < 200; i++ {
		rec.Time = 3 + i
		rec.Batches = 1 + i
		rec.RandDraws = uint64(1000 * i)
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		delta := w.Size() - prev
		prev = w.Size()
		if i == 0 {
			first = delta
			continue
		}
		if delta != first {
			t.Fatalf("append %d wrote %d bytes, first wrote %d — per-batch cost not O(batch)", i, delta, first)
		}
	}
}

// TestJournalRotate covers the in-place compaction hook: after Rotate the
// journal is empty, names the new snapshot, keeps accepting appends on the
// same descriptor, and none of the pre-rotation records survive.
func TestJournalRotate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topic.journal")
	recs := testRecords()
	w, err := Create(fault.OS, path, 0x1111)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer w.Close()
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	before := w.Size()

	if err := w.Rotate(0x2222); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if w.Size() >= before {
		t.Fatalf("rotation did not shrink the journal: %d -> %d", before, w.Size())
	}
	j, err := Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load after rotate: %v", err)
	}
	if j.SnapCRC != 0x2222 || len(j.Records) != 0 || j.Torn {
		t.Fatalf("rotated journal: crc=%#x records=%d torn=%v", j.SnapCRC, len(j.Records), j.Torn)
	}

	// The same writer keeps appending after rotation, and only
	// post-rotation records are visible.
	if err := w.Append(recs[1]); err != nil {
		t.Fatalf("Append after rotate: %v", err)
	}
	j, err = Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(j.Records) != 1 || !reflect.DeepEqual(j.Records[0], recs[1]) {
		t.Fatalf("post-rotation journal holds %d records", len(j.Records))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rotate(0x3333); err == nil {
		t.Fatal("Rotate on a closed writer succeeded")
	}
}
