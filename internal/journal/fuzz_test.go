package journal

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"triclust/internal/fault"
)

// seedJournalBytes builds a well-formed journal in a scratch file and
// returns its bytes, so the fuzzer starts from valid framing.
func seedJournalBytes(f *testing.F, snapCRC uint32, recs []*Record) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.journal")
	w, err := Create(fault.OS, path, snapCRC)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}

// FuzzJournalLoad feeds hostile bytes to the journal loader — the exact
// surface a corrupted disk or crafted data directory presents at daemon
// startup and at cluster hand-off resume. Load must never panic; whatever
// it accepts must round-trip: re-appending the decoded records to a fresh
// journal and loading that must reproduce them exactly.
func FuzzJournalLoad(f *testing.F) {
	full := seedJournalBytes(f, 0xCAFEBABE, testRecords())
	f.Add(full)
	// A truncation (torn tail), a bit-flip, and a bare header as
	// targeted hostile seeds.
	f.Add(full[:len(full)-3])
	flip := append([]byte(nil), full...)
	flip[len(flip)/2] ^= 0x10
	f.Add(flip)
	f.Add(seedJournalBytes(f, 0, nil))
	f.Add([]byte("TRICJRNL"))
	f.Add([]byte{})
	// Rotate-interrupted shapes: a crash mid-Rotate leaves either a
	// truncated header (the re-header write died half-way) or a fresh
	// header sitting on top of stale record bytes a lost truncate should
	// have removed. Both must resolve to quarantine or a clean prefix,
	// never a misparse.
	f.Add(full[:10])
	rehdr := seedJournalBytes(f, 0xFEEDF00D, nil)
	f.Add(append(append([]byte(nil), rehdr...), full[18:]...))
	f.Add(append(append([]byte(nil), rehdr...), full[18:len(full)-5]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Load(fault.OS, path)
		if err != nil {
			return // undecodable header — quarantined by callers
		}
		// Anything Load accepted must survive a re-append round trip
		// bit-for-bit: the records a journal yields are the records a
		// journal written from them yields again.
		rt := filepath.Join(dir, "roundtrip.journal")
		w, err := Create(fault.OS, rt, j.SnapCRC)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range j.Records {
			if err := w.Append(rec); err != nil {
				t.Fatalf("decoded record does not re-append: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := Load(fault.OS, rt)
		if err != nil {
			t.Fatalf("re-written journal does not load: %v", err)
		}
		if j2.Torn {
			t.Fatal("re-written journal reports a torn tail")
		}
		if j2.SnapCRC != j.SnapCRC || len(j2.Records) != len(j.Records) {
			t.Fatalf("round trip: crc %#x→%#x, %d→%d records",
				j.SnapCRC, j2.SnapCRC, len(j.Records), len(j2.Records))
		}
		if len(j.Records) > 0 && !reflect.DeepEqual(j.Records, j2.Records) {
			t.Fatal("round trip altered records")
		}
	})
}
