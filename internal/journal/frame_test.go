package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"triclust/internal/fault"
)

// TestFrameRoundTrip: EncodeFrame/DecodeFrame are inverses, and the
// encoded bytes are exactly what Append writes — so a frame shipped to a
// replica and fsynced there is bit-identical to the primary's journal
// record.
func TestFrameRoundTrip(t *testing.T) {
	for i, rec := range testRecords() {
		frame, err := EncodeFrame(rec)
		if err != nil {
			t.Fatalf("EncodeFrame(%d): %v", i, err)
		}
		got, n, ok := DecodeFrame(frame)
		if !ok {
			t.Fatalf("DecodeFrame(%d) rejected a fresh encoding", i)
		}
		if n != len(frame) {
			t.Fatalf("DecodeFrame(%d) consumed %d of %d bytes", i, n, len(frame))
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got, rec)
		}
	}
}

func TestFrameMatchesAppendBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	recs := testRecords()
	writeTestJournal(t, path, 7, recs)
	appended, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var framed bytes.Buffer
	for _, r := range recs {
		frame, err := EncodeFrame(r)
		if err != nil {
			t.Fatalf("EncodeFrame: %v", err)
		}
		framed.Write(frame)
	}
	if !bytes.Equal(appended[18:], framed.Bytes()) { // 18 = journal header
		t.Fatal("Append wrote different bytes than EncodeFrame for the same records")
	}
}

func TestDecodeFrameRejectsDamage(t *testing.T) {
	frame, err := EncodeFrame(testRecords()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := DecodeFrame(frame[:len(frame)-1]); ok {
		t.Fatal("truncated frame decoded")
	}
	for _, pos := range []int{0, len(frame) / 2, len(frame) - 1} {
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0x40
		if _, _, ok := DecodeFrame(bad); ok {
			t.Fatalf("bit flip at %d decoded", pos)
		}
	}
	// Two frames back to back: the first decode reports its own length so
	// a caller can walk a shipped tail frame by frame.
	second, err := EncodeFrame(testRecords()[1])
	if err != nil {
		t.Fatal(err)
	}
	tail := append(append([]byte(nil), frame...), second...)
	got1, n1, ok := DecodeFrame(tail)
	if !ok {
		t.Fatal("first of two frames rejected")
	}
	if n1 != len(frame) {
		t.Fatalf("first frame length %d, want %d", n1, len(frame))
	}
	got2, n2, ok := DecodeFrame(tail[n1:])
	if !ok {
		t.Fatal("second of two frames rejected")
	}
	if n1+n2 != len(tail) {
		t.Fatalf("frames consumed %d of %d bytes", n1+n2, len(tail))
	}
	want := testRecords()
	if !reflect.DeepEqual(got1, want[0]) || !reflect.DeepEqual(got2, want[1]) {
		t.Fatal("walked frames do not match the encoded records")
	}
}

// TestOpenResumesAfterLastIntactRecord: Open positions the writer after
// the last intact record — a torn tail (crash mid-append, or a replica
// whose fsync failed partway) is cut, and subsequent appends extend the
// journal cleanly.
func TestOpenResumesAfterLastIntactRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	recs := testRecords()
	writeTestJournal(t, path, 42, recs[:1])

	// Tear the tail: append half of the second record's frame.
	frame, err := EncodeFrame(recs[1])
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, j, err := Open(fault.OS, path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !j.Torn || len(j.Records) != 1 {
		t.Fatalf("Open saw torn=%v records=%d, want torn with 1 intact", j.Torn, len(j.Records))
	}
	if err := w.AppendFrames(frame); err != nil {
		t.Fatalf("AppendFrames after Open: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	reloaded, err := Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if reloaded.Torn {
		t.Fatal("journal still torn after Open truncated the tail")
	}
	if !reflect.DeepEqual(reloaded.Records, recs) {
		t.Fatalf("records after torn-tail recovery = %d, want the full stream", len(reloaded.Records))
	}
}

// TestLoadSizeIsConsumedOffset pins Journal.Size — the offset Open
// resumes appending at — to the bytes actually decoded: the whole file
// when intact, the end of the last intact record when torn.
func TestLoadSizeIsConsumedOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	recs := testRecords()
	writeTestJournal(t, path, 42, recs)

	j, err := Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Torn || j.Size != fi.Size() {
		t.Fatalf("intact journal: torn=%v Size=%d, want clean %d (the file size)", j.Torn, j.Size, fi.Size())
	}

	intact := j.Size
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{recBatch, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if j, err = Load(fault.OS, path); err != nil {
		t.Fatalf("Load torn: %v", err)
	}
	if !j.Torn || j.Size != intact {
		t.Fatalf("torn journal: torn=%v Size=%d, want torn at %d (end of last intact record)", j.Torn, j.Size, intact)
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, _, err := Open(fault.OS, filepath.Join(t.TempDir(), "absent.journal")); err == nil {
		t.Fatal("Open of a missing journal succeeded")
	}
}

// TestTruncateTailDiscardsFailedAppend: after a failed append the file
// may hold a torn frame past the writer's acked size; TruncateTail
// restores the exact pre-append state, leaving no ambiguous tail.
func TestTruncateTailDiscardsFailedAppend(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	recs := testRecords()
	w, err := Create(fault.OS, path, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append landing on disk without the writer acking it.
	frame, err := EncodeFrame(recs[1])
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame[:len(frame)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := w.TruncateTail(); err != nil {
		t.Fatalf("TruncateTail: %v", err)
	}
	// The writer continues from the truncated position.
	if err := w.Append(recs[1]); err != nil {
		t.Fatalf("Append after TruncateTail: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if j.Torn || len(j.Records) != 2 {
		t.Fatalf("after truncate+retry: torn=%v records=%d, want clean 2", j.Torn, len(j.Records))
	}
	if !reflect.DeepEqual(j.Records, recs) {
		t.Fatal("records after truncate+retry do not match the stream")
	}
}

func TestAppendFramesMultipleAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.journal")
	recs := testRecords()
	w, err := Create(fault.OS, path, 5)
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, r := range recs {
		frame, err := EncodeFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, frame...)
	}
	if err := w.AppendFrames(all); err != nil {
		t.Fatalf("AppendFrames: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := Load(fault.OS, path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(j.Records) != len(recs) || !reflect.DeepEqual(j.Records, recs) {
		t.Fatalf("multi-frame append loaded %d records, want %d matching", len(j.Records), len(recs))
	}
}
