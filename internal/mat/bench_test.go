package mat

import (
	"fmt"
	"math/rand"
	"testing"
)

// Factor shapes of the tri-clustering solvers: tall-skinny n×k with k ≤ 8
// (k = 3 in the paper), plus the tiny k×k core products. Run with
// `go test -bench . -benchmem ./internal/mat`.

var benchShapes = []struct{ n, k int }{
	{1000, 3},
	{20000, 3},
	{20000, 8},
}

func benchMatrices(n, k int) (a, b, kk *Dense) {
	rng := rand.New(rand.NewSource(1))
	a = RandomNonNegative(rng, n, k, 0.1, 1)
	b = RandomNonNegative(rng, n, k, 0.1, 1)
	kk = RandomNonNegative(rng, k, k, 0.1, 1)
	return a, b, kk
}

func BenchmarkMul(bm *testing.B) {
	for _, s := range benchShapes {
		bm.Run(fmt.Sprintf("%dx%d", s.n, s.k), func(bm *testing.B) {
			a, _, kk := benchMatrices(s.n, s.k)
			out := NewDense(s.n, s.k)
			bm.ResetTimer()
			for i := 0; i < bm.N; i++ {
				out.Mul(a, kk)
			}
		})
	}
}

func BenchmarkMulABT(bm *testing.B) {
	for _, s := range benchShapes {
		bm.Run(fmt.Sprintf("%dx%d", s.n, s.k), func(bm *testing.B) {
			a, _, _ := benchMatrices(s.n, s.k)
			rng := rand.New(rand.NewSource(2))
			bt := RandomNonNegative(rng, 64, s.k, 0.1, 1)
			out := NewDense(s.n, 64)
			bm.ResetTimer()
			for i := 0; i < bm.N; i++ {
				out.MulABT(a, bt)
			}
		})
	}
}

func BenchmarkMulATB(bm *testing.B) {
	for _, s := range benchShapes {
		bm.Run(fmt.Sprintf("%dx%d", s.n, s.k), func(bm *testing.B) {
			a, b, _ := benchMatrices(s.n, s.k)
			out := NewDense(s.k, s.k)
			bm.ResetTimer()
			for i := 0; i < bm.N; i++ {
				out.MulATB(a, b)
			}
		})
	}
}

func BenchmarkMulUpdate(bm *testing.B) {
	for _, s := range benchShapes {
		bm.Run(fmt.Sprintf("%dx%d", s.n, s.k), func(bm *testing.B) {
			a, b, _ := benchMatrices(s.n, s.k)
			dst := a.Clone()
			bm.ResetTimer()
			for i := 0; i < bm.N; i++ {
				MulUpdate(dst, a, b)
			}
		})
	}
}

func BenchmarkGramInto(bm *testing.B) {
	for _, s := range benchShapes {
		bm.Run(fmt.Sprintf("%dx%d", s.n, s.k), func(bm *testing.B) {
			a, _, _ := benchMatrices(s.n, s.k)
			out := NewDense(s.k, s.k)
			bm.ResetTimer()
			for i := 0; i < bm.N; i++ {
				GramInto(out, a)
			}
		})
	}
}

// BenchmarkWorkspaceGetPut measures the arena round-trip that replaces a
// heap allocation in the solver sweeps.
func BenchmarkWorkspaceGetPut(bm *testing.B) {
	ws := NewWorkspace()
	for i := 0; i < bm.N; i++ {
		m := ws.Get(100, 3)
		ws.Put(m)
	}
}
