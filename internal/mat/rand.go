package mat

import "math/rand"

// RandomNonNegative returns a rows×cols matrix with entries drawn uniformly
// from (lo, hi], lo ≥ 0. Multiplicative updates keep zero entries at zero
// forever, so initializers must be strictly positive; callers should pass
// lo > 0 (the constructor enforces a tiny floor regardless).
func RandomNonNegative(rng *rand.Rand, rows, cols int, lo, hi float64) *Dense {
	if lo < 0 || hi < lo {
		panic("mat: RandomNonNegative requires 0 <= lo <= hi")
	}
	const floor = 1e-8
	m := NewDense(rows, cols)
	for i := range m.data {
		v := lo + rng.Float64()*(hi-lo)
		if v < floor {
			v = floor
		}
		m.data[i] = v
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// DiagFromVector returns a square matrix with v on the diagonal.
func DiagFromVector(v []float64) *Dense {
	m := NewDense(len(v), len(v))
	for i, x := range v {
		m.Set(i, i, x)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must share a length;
// an empty input yields a 0×0 matrix.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	cols := len(rows[0])
	m := NewDense(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("mat: FromRows ragged input")
		}
		copy(m.Row(i), r)
	}
	return m
}

// PerturbPositive adds uniform noise from (0, scale] to every entry,
// keeping the matrix strictly positive. Useful to restart factors that
// collapsed to zero columns.
func PerturbPositive(rng *rand.Rand, m *Dense, scale float64) {
	for i := range m.data {
		m.data[i] += rng.Float64() * scale
	}
}
