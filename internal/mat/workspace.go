package mat

// Workspace is a shape-keyed arena of reusable scratch matrices. Solvers
// allocate their per-sweep temporaries from a Workspace and return them
// with Put, so that after the first sweep every Get is satisfied from the
// free list and the steady state performs no heap allocation.
//
// A Workspace is not safe for concurrent use; each solver goroutine owns
// its own. The parallel kernels in this package and package sparse split
// work internally, so a single Workspace per solver is the intended
// pattern.
type Workspace struct {
	free     map[wsKey][]*Dense
	retained int
}

type wsKey struct{ rows, cols int }

// NewWorkspace returns an empty arena.
func NewWorkspace() *Workspace {
	return &Workspace{free: make(map[wsKey][]*Dense)}
}

// Get returns a rows×cols matrix, reusing a previously Put matrix of the
// same shape when one is available.
//
// Hits decrement the retained count so a balanced Get/Put cycle with a
// stable shape set never approaches the trim bound.
//
// The contents are UNSPECIFIED: a fresh matrix is zeroed (Go allocation)
// but a reused one still holds its previous values. Every caller must
// fully overwrite the buffer (Mul/MulATB/MulDenseInto/Sub/CopyFrom/… all
// do); zeroing here would add a redundant memory pass to every solver
// sweep. Call Zero explicitly if accumulation into a clean buffer is
// needed.
func (w *Workspace) Get(rows, cols int) *Dense {
	key := wsKey{rows, cols}
	if list := w.free[key]; len(list) > 0 {
		m := list[len(list)-1]
		w.free[key] = list[:len(list)-1]
		w.retained--
		return m
	}
	return NewDense(rows, cols)
}

// maxFreeMatrices bounds the arena. A workspace owned by a long-lived
// solver sees one shape set per batch size; a stream of ever-varying
// batch sizes must not accumulate one free list per size forever, so
// past the bound the arena is dropped and rebuilt from the live shapes.
const maxFreeMatrices = 256

// Put returns matrices to the arena for reuse. Nil entries are ignored.
// The caller must not use a matrix after putting it back.
func (w *Workspace) Put(ms ...*Dense) {
	for _, m := range ms {
		if m == nil {
			continue
		}
		if w.retained >= maxFreeMatrices {
			w.free = make(map[wsKey][]*Dense)
			w.retained = 0
		}
		key := wsKey{m.rows, m.cols}
		w.free[key] = append(w.free[key], m)
		w.retained++
	}
}
