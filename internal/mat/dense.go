// Package mat provides dense row-major float64 matrices and the small set
// of linear-algebra kernels needed by the tri-clustering algorithms: matrix
// products, Gram matrices, Hadamard (element-wise) operations, Frobenius
// norms, and the guarded multiplicative-update kernel.
//
// All matrices are dense and stored row-major in a single backing slice.
// The factor matrices in this project are tall and skinny (n×k with k ≤ 3),
// so dense storage is cheap; the large data matrices use package sparse.
package mat

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"triclust/internal/par"
)

// Dense is a dense row-major matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix. It panics if either dimension
// is negative.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (len must be rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Data returns the backing slice (row-major). Mutating it mutates the matrix.
func (m *Dense) Data() []float64 { return m.data }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns the i-th row as a sub-slice of the backing storage.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// ReuseDense returns a zeroed rows×cols matrix, reusing m's backing slice
// when it is large enough (m may be nil). Long-lived scratch holders call
// it once per step so the steady state reshapes instead of reallocating.
func ReuseDense(m *Dense, rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if m == nil || cap(m.data) < n {
		return NewDense(rows, cols)
	}
	m.rows, m.cols = rows, cols
	m.data = m.data[:n]
	for i := range m.data {
		m.data[i] = 0
	}
	return m
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(dimErr("CopyFrom", m, src))
	}
	copy(m.data, src.data)
}

// Fill sets every element of m to v.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Zero sets every element of m to 0.
func (m *Dense) Zero() { m.Fill(0) }

// Dims reports whether m has the given shape.
func (m *Dense) Dims(rows, cols int) bool { return m.rows == rows && m.cols == cols }

func dimErr(op string, a, b *Dense) string {
	return fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols)
}

// Add stores a+b into m (m may alias a or b).
func (m *Dense) Add(a, b *Dense) {
	checkSame("Add", a, b)
	checkSame("Add(dst)", m, a)
	for i := range m.data {
		m.data[i] = a.data[i] + b.data[i]
	}
}

// Sub stores a−b into m (m may alias a or b).
func (m *Dense) Sub(a, b *Dense) {
	checkSame("Sub", a, b)
	checkSame("Sub(dst)", m, a)
	for i := range m.data {
		m.data[i] = a.data[i] - b.data[i]
	}
}

// AddScaled stores a + s·b into m (m may alias a or b).
func (m *Dense) AddScaled(a *Dense, s float64, b *Dense) {
	checkSame("AddScaled", a, b)
	checkSame("AddScaled(dst)", m, a)
	for i := range m.data {
		m.data[i] = a.data[i] + s*b.data[i]
	}
}

// Scale stores s·a into m (m may alias a).
func (m *Dense) Scale(s float64, a *Dense) {
	checkSame("Scale", m, a)
	for i := range m.data {
		m.data[i] = s * a.data[i]
	}
}

// Hadamard stores the element-wise product a∘b into m (m may alias a or b).
func (m *Dense) Hadamard(a, b *Dense) {
	checkSame("Hadamard", a, b)
	checkSame("Hadamard(dst)", m, a)
	for i := range m.data {
		m.data[i] = a.data[i] * b.data[i]
	}
}

func checkSame(op string, a, b *Dense) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(dimErr(op, a, b))
	}
}

// Kernel launches must stay allocation-free (solver sweeps run thousands
// of them), so the parallel loop bodies below are small pooled structs
// implementing par.Body rather than closures, which would escape to the
// heap on every call.

type mulBody struct{ dst, a, b *Dense }

func (t *mulBody) Range(_, lo, hi int) {
	a, b, dst := t.a, t.b, t.dst
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		mrow := dst.Row(i)
		for j := range mrow {
			mrow[j] = 0
		}
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(p)
			orow := mrow[:len(brow)]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

var mulBodyPool = sync.Pool{New: func() any { return new(mulBody) }}

// Mul stores a·b into m. m must not alias a or b and must be a.rows×b.cols.
// Large products are split across row blocks by package par.
func (m *Dense) Mul(a, b *Dense) {
	if a.cols != b.rows {
		panic(dimErr("Mul", a, b))
	}
	if m.rows != a.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: Mul dst is %dx%d, want %dx%d", m.rows, m.cols, a.rows, b.cols))
	}
	t := mulBodyPool.Get().(*mulBody)
	t.dst, t.a, t.b = m, a, b
	par.Run(a.rows, a.cols*b.cols, t)
	*t = mulBody{}
	mulBodyPool.Put(t)
}

// Product returns a·b as a freshly allocated matrix.
func Product(a, b *Dense) *Dense {
	out := NewDense(a.rows, b.cols)
	out.Mul(a, b)
	return out
}

// ProductInto stores a·b into dst and returns it; a nil dst allocates.
// Solvers pass workspace matrices here to keep sweeps allocation-free.
func ProductInto(dst *Dense, a, b *Dense) *Dense {
	if dst == nil {
		dst = NewDense(a.rows, b.cols)
	}
	dst.Mul(a, b)
	return dst
}

type abtBody struct{ dst, a, b *Dense }

func (t *abtBody) Range(_, lo, hi int) {
	a, b, dst := t.a, t.b, t.dst
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		mrow := dst.Row(i)
		for j := 0; j < b.rows; j++ {
			brow := b.Row(j)
			var s float64
			for p, av := range arow {
				s += av * brow[p]
			}
			mrow[j] = s
		}
	}
}

var abtBodyPool = sync.Pool{New: func() any { return new(abtBody) }}

// MulABT stores a·bᵀ into m. m must be a.rows×b.rows. Large products are
// split across row blocks by package par.
func (m *Dense) MulABT(a, b *Dense) {
	if a.cols != b.cols {
		panic(dimErr("MulABT", a, b))
	}
	if m.rows != a.rows || m.cols != b.rows {
		panic(fmt.Sprintf("mat: MulABT dst is %dx%d, want %dx%d", m.rows, m.cols, a.rows, b.rows))
	}
	t := abtBodyPool.Get().(*abtBody)
	t.dst, t.a, t.b = m, a, b
	par.Run(a.rows, a.cols*b.rows, t)
	*t = abtBody{}
	abtBodyPool.Put(t)
}

// atbBody accumulates aᵀ·b row chunks into per-chunk private buffers
// (buf[chunk*rc:(chunk+1)*rc]); pooled with its buffer so the parallel
// path stays allocation-free after warmup.
type atbBody struct {
	a, b *Dense
	buf  []float64
	rc   int
}

func (t *atbBody) Range(chunk, lo, hi int) {
	part := t.buf[chunk*t.rc : (chunk+1)*t.rc]
	for i := range part {
		part[i] = 0
	}
	mulATBRange(part, t.a, t.b, lo, hi)
}

var atbBodyPool = sync.Pool{New: func() any { return new(atbBody) }}

// MulATB stores aᵀ·b into m. m must be a.cols×b.cols.
//
// The accumulation pattern scatters into output rows indexed by columns of
// a, so the parallel path gives each row chunk a private accumulator and
// reduces them in chunk order — deterministic for a fixed par.Procs() and
// within floating-point reassociation error of the serial path.
func (m *Dense) MulATB(a, b *Dense) {
	if a.rows != b.rows {
		panic(dimErr("MulATB", a, b))
	}
	if m.rows != a.cols || m.cols != b.cols {
		panic(fmt.Sprintf("mat: MulATB dst is %dx%d, want %dx%d", m.rows, m.cols, a.cols, b.cols))
	}
	costPerRow := a.cols * b.cols
	if par.Procs() == 1 || a.rows*costPerRow < par.MinParallelWork {
		m.Zero()
		mulATBRange(m.data, a, b, 0, a.rows)
		return
	}
	rc := m.rows * m.cols
	t := atbBodyPool.Get().(*atbBody)
	if cap(t.buf) < par.MaxChunks()*rc {
		t.buf = make([]float64, par.MaxChunks()*rc)
	}
	t.buf = t.buf[:cap(t.buf)]
	t.a, t.b, t.rc = a, b, rc
	used := par.Run(a.rows, costPerRow, t)
	m.Zero()
	for c := 0; c < used; c++ {
		part := t.buf[c*rc : (c+1)*rc]
		for i, v := range part {
			m.data[i] += v
		}
	}
	t.a, t.b = nil, nil
	atbBodyPool.Put(t)
}

// mulATBRange accumulates aᵀ·b over rows [lo, hi) of a into the row-major
// dst buffer (a.cols×b.cols).
func mulATBRange(dst []float64, a, b *Dense, lo, hi int) {
	cols := b.cols
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for p, av := range arow {
			if av == 0 {
				continue
			}
			drow := dst[p*cols : (p+1)*cols][:len(brow)]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// Gram returns aᵀ·a (cols×cols), the Gram matrix.
func Gram(a *Dense) *Dense {
	out := NewDense(a.cols, a.cols)
	out.MulATB(a, a)
	return out
}

// GramInto stores aᵀ·a into dst (cols×cols) and returns it; a nil dst
// allocates.
func GramInto(dst *Dense, a *Dense) *Dense {
	if dst == nil {
		dst = NewDense(a.cols, a.cols)
	}
	dst.MulATB(a, a)
	return dst
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.data[j*m.rows+i] = v
		}
	}
	return out
}

// FrobeniusSq returns ||m||_F² = Σ m(i,j)².
func (m *Dense) FrobeniusSq() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return s
}

// Frobenius returns the Frobenius norm ||m||_F.
func (m *Dense) Frobenius() float64 { return math.Sqrt(m.FrobeniusSq()) }

// Trace returns the trace of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: Trace of non-square %dx%d", m.rows, m.cols))
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// Dot returns the Frobenius inner product ⟨a,b⟩ = Σ a(i,j)·b(i,j).
func Dot(a, b *Dense) float64 {
	checkSame("Dot", a, b)
	var s float64
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// DiffFrobeniusSq returns ||a−b||_F² without allocating.
func DiffFrobeniusSq(a, b *Dense) float64 {
	checkSame("DiffFrobeniusSq", a, b)
	var s float64
	for i, v := range a.data {
		d := v - b.data[i]
		s += d * d
	}
	return s
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// Max returns the maximum element. It panics on an empty matrix.
func (m *Dense) Max() float64 {
	if len(m.data) == 0 {
		panic("mat: Max of empty matrix")
	}
	best := m.data[0]
	for _, v := range m.data[1:] {
		if v > best {
			best = v
		}
	}
	return best
}

// SplitPosNeg splits m into Δ⁺=(|m|+m)/2 and Δ⁻=(|m|−m)/2 so that
// m = Δ⁺ − Δ⁻ with both parts non-negative. Used by the Lagrangian terms
// in the multiplicative update rules (Eqs. 7, 9, 11, 26 of the paper).
func SplitPosNeg(m *Dense) (pos, neg *Dense) {
	pos = NewDense(m.rows, m.cols)
	neg = NewDense(m.rows, m.cols)
	SplitPosNegInto(pos, neg, m)
	return pos, neg
}

// SplitPosNegInto is SplitPosNeg writing into caller-provided matrices of
// m's shape (e.g. workspace scratch).
func SplitPosNegInto(pos, neg, m *Dense) {
	checkSame("SplitPosNegInto(pos)", pos, m)
	checkSame("SplitPosNegInto(neg)", neg, m)
	for i, v := range m.data {
		// Equivalent to ((|v|+v)/2, (|v|−v)/2) but immune to overflow.
		if v >= 0 {
			pos.data[i] = v
			neg.data[i] = 0
		} else {
			pos.data[i] = 0
			neg.data[i] = -v
		}
	}
}

// Eps is the guard added to denominators in multiplicative updates.
const Eps = 1e-12

// MulUpdate applies the multiplicative update
//
//	dst(i,j) ← dst(i,j) · sqrt( numer(i,j) / (denom(i,j)+Eps) )
//
// clamping negatives in numer/denom to zero first (they can appear from
// floating-point cancellation). This is the shared kernel of every update
// rule in the paper. dst, numer and denom must have equal shape.
func MulUpdate(dst, numer, denom *Dense) {
	checkSame("MulUpdate", numer, denom)
	checkSame("MulUpdate(dst)", dst, numer)
	t := mulUpdateBodyPool.Get().(*mulUpdateBody)
	t.dst, t.numer, t.denom = dst, numer, denom
	// The per-element sqrt+div makes this compute-bound enough to split;
	// cost 8 ≈ scalar-op equivalent of one sqrt+div pair.
	par.Run(len(dst.data), 8, t)
	*t = mulUpdateBody{}
	mulUpdateBodyPool.Put(t)
}

type mulUpdateBody struct{ dst, numer, denom *Dense }

func (t *mulUpdateBody) Range(_, lo, hi int) {
	dst, numer, denom := t.dst, t.numer, t.denom
	for i := lo; i < hi; i++ {
		n := numer.data[i]
		if n < 0 {
			n = 0
		}
		d := denom.data[i]
		if d < 0 {
			d = 0
		}
		dst.data[i] *= math.Sqrt(n / (d + Eps))
	}
}

var mulUpdateBodyPool = sync.Pool{New: func() any { return new(mulUpdateBody) }}

// ClampNonNegative zeroes any negative entries (defensive; multiplicative
// updates preserve non-negativity but external initializers may not).
func (m *Dense) ClampNonNegative() {
	for i, v := range m.data {
		if v < 0 {
			m.data[i] = 0
		}
	}
}

// RowArgMax returns, for each row, the index of its largest element.
// Ties resolve to the lowest index. Rows of an r×0 matrix map to -1.
func (m *Dense) RowArgMax() []int {
	out := make([]int, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		if len(row) == 0 {
			out[i] = -1
			continue
		}
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[i] = bi
	}
	return out
}

// NormalizeRowsL1 scales each row to sum to 1; all-zero rows become uniform.
func (m *Dense) NormalizeRowsL1() {
	if m.cols == 0 {
		return
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		if s == 0 {
			u := 1.0 / float64(m.cols)
			for j := range row {
				row[j] = u
			}
			continue
		}
		inv := 1.0 / s
		for j := range row {
			row[j] *= inv
		}
	}
}

// NormalizeColsL2 scales each column to unit Euclidean norm; zero columns
// are left untouched.
func (m *Dense) NormalizeColsL2() {
	for j := 0; j < m.cols; j++ {
		var s float64
		for i := 0; i < m.rows; i++ {
			v := m.At(i, j)
			s += v * v
		}
		if s == 0 {
			continue
		}
		inv := 1.0 / math.Sqrt(s)
		for i := 0; i < m.rows; i++ {
			m.Set(i, j, m.At(i, j)*inv)
		}
	}
}

// IsFinite reports whether every element is finite (no NaN/Inf).
func (m *Dense) IsFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same shape and all elements are
// within tol of each other.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Dense) String() string {
	const maxShow = 8
	var b strings.Builder
	fmt.Fprintf(&b, "Dense %dx%d", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return b.String()
	}
	for i := 0; i < m.rows; i++ {
		b.WriteString("\n  ")
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .4f ", m.At(i, j))
		}
	}
	return b.String()
}
