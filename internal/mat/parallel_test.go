package mat

import (
	"math/rand"
	"testing"

	"triclust/internal/par"
)

// withProcs runs fn at the given parallelism width and restores the
// default afterwards.
func withProcs(p int, fn func()) {
	par.SetProcs(p)
	defer par.SetProcs(0)
	fn()
}

// TestParallelKernelsMatchSerial checks that every parallel kernel agrees
// with its serial execution within 1e-10 on shapes large enough to cross
// the par threshold.
func TestParallelKernelsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, k := 4000, 8
	a := RandomNonNegative(rng, n, k, 0.1, 1)
	b := RandomNonNegative(rng, k, k, 0.1, 1)
	bb := RandomNonNegative(rng, 64, k, 0.1, 1)
	wide := RandomNonNegative(rng, n, k, 0.1, 2)

	type kernel struct {
		name string
		run  func() *Dense
	}
	kernels := []kernel{
		{"Mul", func() *Dense {
			out := NewDense(n, k)
			out.Mul(a, b)
			return out
		}},
		{"MulABT", func() *Dense {
			out := NewDense(n, 64)
			out.MulABT(a, bb)
			return out
		}},
		{"MulATB", func() *Dense {
			out := NewDense(k, k)
			out.MulATB(a, wide)
			return out
		}},
		{"MulUpdate", func() *Dense {
			out := wide.Clone()
			MulUpdate(out, a, wide)
			return out
		}},
	}
	for _, kn := range kernels {
		var serial, parallel *Dense
		withProcs(1, func() { serial = kn.run() })
		withProcs(4, func() { parallel = kn.run() })
		if !Equal(serial, parallel, 1e-10) {
			t.Fatalf("%s: serial and parallel outputs differ beyond 1e-10", kn.name)
		}
	}
}

func TestWorkspaceReusesByShape(t *testing.T) {
	ws := NewWorkspace()
	m1 := ws.Get(5, 3)
	for _, v := range m1.Data() {
		if v != 0 {
			t.Fatal("fresh workspace matrices are zeroed by allocation")
		}
	}
	m1.Fill(42)
	ws.Put(m1)
	m2 := ws.Get(5, 3)
	if m2 != m1 {
		t.Fatal("workspace did not reuse the freed matrix")
	}
	m3 := ws.Get(5, 3)
	if m3 == m2 {
		t.Fatal("workspace handed out a checked-out matrix")
	}
	ws.Put(nil, m2, m3) // nil must be tolerated
}

func TestProductIntoAndGramInto(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := RandomNonNegative(rng, 6, 4, 0.1, 1)
	b := RandomNonNegative(rng, 4, 5, 0.1, 1)
	if got, want := ProductInto(nil, a, b), Product(a, b); !Equal(got, want, 0) {
		t.Fatal("ProductInto(nil) != Product")
	}
	dst := NewDense(6, 5)
	dst.Fill(3)
	if got, want := ProductInto(dst, a, b), Product(a, b); !Equal(got, want, 0) {
		t.Fatal("ProductInto(dst) != Product")
	}
	if got, want := GramInto(nil, a), Gram(a); !Equal(got, want, 0) {
		t.Fatal("GramInto(nil) != Gram")
	}
	g := NewDense(4, 4)
	g.Fill(-1)
	if got, want := GramInto(g, a), Gram(a); !Equal(got, want, 0) {
		t.Fatal("GramInto(dst) != Gram")
	}
}

func TestSplitPosNegIntoOverwritesStale(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {-3, 4}})
	pos, neg := NewDense(2, 2), NewDense(2, 2)
	pos.Fill(9)
	neg.Fill(9)
	SplitPosNegInto(pos, neg, m)
	wantPos := FromRows([][]float64{{1, 0}, {0, 4}})
	wantNeg := FromRows([][]float64{{0, 2}, {3, 0}})
	if !Equal(pos, wantPos, 0) || !Equal(neg, wantNeg, 0) {
		t.Fatalf("SplitPosNegInto left stale values: pos=%v neg=%v", pos, neg)
	}
}
