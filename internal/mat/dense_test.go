package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDensePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad data length")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestSetAtRoundTrip(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Fatalf("Row slice = %v, want 7.5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is not deep")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	sum := NewDense(2, 2)
	sum.Add(a, b)
	if !Equal(sum, FromRows([][]float64{{6, 8}, {10, 12}}), 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff := NewDense(2, 2)
	diff.Sub(b, a)
	if !Equal(diff, FromRows([][]float64{{4, 4}, {4, 4}}), 0) {
		t.Fatalf("Sub = %v", diff)
	}
	sc := NewDense(2, 2)
	sc.Scale(2, a)
	if !Equal(sc, FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", sc)
	}
	axpy := NewDense(2, 2)
	axpy.AddScaled(a, -1, a)
	if axpy.FrobeniusSq() != 0 {
		t.Fatalf("AddScaled(a,-1,a) = %v, want zero", axpy)
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	b := FromRows([][]float64{{7, 8}, {9, 10}, {11, 12}})
	got := Product(a, b)
	want := FromRows([][]float64{{58, 64}, {139, 154}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("Product = %v, want %v", got, want)
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected dimension panic")
		}
	}()
	Product(NewDense(2, 3), NewDense(2, 3))
}

func TestMulATBMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomNonNegative(rng, 7, 3, 0, 1)
	b := RandomNonNegative(rng, 7, 2, 0, 1)
	got := NewDense(3, 2)
	got.MulATB(a, b)
	want := Product(a.T(), b)
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MulATB mismatch:\n%v\n%v", got, want)
	}
}

func TestMulABTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandomNonNegative(rng, 5, 4, 0, 1)
	b := RandomNonNegative(rng, 6, 4, 0, 1)
	got := NewDense(5, 6)
	got.MulABT(a, b)
	want := Product(a, b.T())
	if !Equal(got, want, 1e-12) {
		t.Fatalf("MulABT mismatch")
	}
}

func TestGramSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := RandomNonNegative(rng, 10, 3, 0, 1)
	g := Gram(a)
	for i := 0; i < 3; i++ {
		if g.At(i, i) < 0 {
			t.Fatalf("Gram diagonal negative: %v", g.At(i, i))
		}
		for j := 0; j < 3; j++ {
			if !almostEq(g.At(i, j), g.At(j, i), 1e-12) {
				t.Fatalf("Gram not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandomNonNegative(rng, 4, 6, 0, 1)
	if !Equal(a.T().T(), a, 0) {
		t.Fatal("T().T() != identity")
	}
}

func TestTraceAndFrobenius(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if got := m.Trace(); got != 5 {
		t.Fatalf("Trace = %v, want 5", got)
	}
	if got := m.FrobeniusSq(); got != 30 {
		t.Fatalf("FrobeniusSq = %v, want 30", got)
	}
	if !almostEq(m.Frobenius(), math.Sqrt(30), 1e-12) {
		t.Fatalf("Frobenius = %v", m.Frobenius())
	}
}

func TestTraceNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(2, 3).Trace()
}

func TestDotMatchesTraceIdentity(t *testing.T) {
	// ⟨A,B⟩ = tr(AᵀB).
	rng := rand.New(rand.NewSource(5))
	a := RandomNonNegative(rng, 4, 3, 0, 1)
	b := RandomNonNegative(rng, 4, 3, 0, 1)
	atb := NewDense(3, 3)
	atb.MulATB(a, b)
	if !almostEq(Dot(a, b), atb.Trace(), 1e-10) {
		t.Fatalf("Dot = %v, tr(AᵀB) = %v", Dot(a, b), atb.Trace())
	}
}

func TestDiffFrobeniusSq(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{4, 6}})
	if got := DiffFrobeniusSq(a, b); got != 25 {
		t.Fatalf("DiffFrobeniusSq = %v, want 25", got)
	}
}

func TestSplitPosNeg(t *testing.T) {
	m := FromRows([][]float64{{3, -2}, {0, -5}})
	pos, neg := SplitPosNeg(m)
	if !Equal(pos, FromRows([][]float64{{3, 0}, {0, 0}}), 0) {
		t.Fatalf("pos = %v", pos)
	}
	if !Equal(neg, FromRows([][]float64{{0, 2}, {0, 5}}), 0) {
		t.Fatalf("neg = %v", neg)
	}
	// Reconstruction m = pos − neg.
	rec := NewDense(2, 2)
	rec.Sub(pos, neg)
	if !Equal(rec, m, 0) {
		t.Fatal("pos − neg != m")
	}
}

func TestSplitPosNegProperty(t *testing.T) {
	f := func(vals [6]float64) bool {
		m := NewDenseData(2, 3, append([]float64(nil), vals[:]...))
		pos, neg := SplitPosNeg(m)
		for i := range pos.Data() {
			if pos.Data()[i] < 0 || neg.Data()[i] < 0 {
				return false
			}
			if !almostEq(pos.Data()[i]-neg.Data()[i], m.Data()[i], 1e-9*math.Abs(m.Data()[i])+1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMulUpdateFixedPoint(t *testing.T) {
	// When numer == denom the update must leave dst (nearly) unchanged.
	rng := rand.New(rand.NewSource(6))
	dst := RandomNonNegative(rng, 3, 3, 0.1, 1)
	orig := dst.Clone()
	n := RandomNonNegative(rng, 3, 3, 0.5, 1)
	MulUpdate(dst, n, n)
	if !Equal(dst, orig, 1e-6) {
		t.Fatalf("MulUpdate(n,n) moved dst:\n%v\n%v", dst, orig)
	}
}

func TestMulUpdateDirection(t *testing.T) {
	dst := FromRows([][]float64{{1}})
	MulUpdate(dst, FromRows([][]float64{{4}}), FromRows([][]float64{{1}}))
	if !almostEq(dst.At(0, 0), 2, 1e-6) {
		t.Fatalf("grow update = %v, want 2", dst.At(0, 0))
	}
	dst = FromRows([][]float64{{1}})
	MulUpdate(dst, FromRows([][]float64{{1}}), FromRows([][]float64{{4}}))
	if !almostEq(dst.At(0, 0), 0.5, 1e-6) {
		t.Fatalf("shrink update = %v, want 0.5", dst.At(0, 0))
	}
}

func TestMulUpdateGuardsZeroDenominator(t *testing.T) {
	dst := FromRows([][]float64{{1}})
	MulUpdate(dst, FromRows([][]float64{{1}}), FromRows([][]float64{{0}}))
	if math.IsNaN(dst.At(0, 0)) || math.IsInf(dst.At(0, 0), 0) {
		t.Fatalf("update produced non-finite %v", dst.At(0, 0))
	}
}

func TestMulUpdateClampsNegativeInputs(t *testing.T) {
	dst := FromRows([][]float64{{2}})
	MulUpdate(dst, FromRows([][]float64{{-3}}), FromRows([][]float64{{1}}))
	if dst.At(0, 0) != 0 {
		t.Fatalf("negative numerator should zero the entry, got %v", dst.At(0, 0))
	}
}

func TestMulUpdateNonNegativityProperty(t *testing.T) {
	f := func(d, n, m [4]float64) bool {
		dst := NewDenseData(2, 2, []float64{math.Abs(d[0]), math.Abs(d[1]), math.Abs(d[2]), math.Abs(d[3])})
		numer := NewDenseData(2, 2, append([]float64(nil), n[:]...))
		denom := NewDenseData(2, 2, append([]float64(nil), m[:]...))
		MulUpdate(dst, numer, denom)
		for _, v := range dst.Data() {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRowArgMax(t *testing.T) {
	m := FromRows([][]float64{{0.1, 0.9, 0.0}, {0.5, 0.5, 0.4}, {0, 0, 1}})
	got := m.RowArgMax()
	want := []int{1, 0, 2} // ties resolve to lowest index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RowArgMax = %v, want %v", got, want)
		}
	}
}

func TestNormalizeRowsL1(t *testing.T) {
	m := FromRows([][]float64{{2, 2}, {0, 0}, {3, 1}})
	m.NormalizeRowsL1()
	for i := 0; i < m.Rows(); i++ {
		var s float64
		for _, v := range m.Row(i) {
			s += v
		}
		if !almostEq(s, 1, 1e-12) {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
	if !almostEq(m.At(1, 0), 0.5, 0) {
		t.Fatalf("zero row should become uniform, got %v", m.Row(1))
	}
}

func TestNormalizeColsL2(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {4, 0}})
	m.NormalizeColsL2()
	if !almostEq(m.At(0, 0), 0.6, 1e-12) || !almostEq(m.At(1, 0), 0.8, 1e-12) {
		t.Fatalf("col 0 = %v,%v", m.At(0, 0), m.At(1, 0))
	}
	if m.At(0, 1) != 0 || m.At(1, 1) != 0 {
		t.Fatal("zero column must stay zero")
	}
}

func TestClampNonNegative(t *testing.T) {
	m := FromRows([][]float64{{-1, 2}, {3, -4}})
	m.ClampNonNegative()
	if !Equal(m, FromRows([][]float64{{0, 2}, {3, 0}}), 0) {
		t.Fatalf("ClampNonNegative = %v", m)
	}
}

func TestIsFinite(t *testing.T) {
	m := FromRows([][]float64{{1, 2}})
	if !m.IsFinite() {
		t.Fatal("finite matrix reported non-finite")
	}
	m.Set(0, 0, math.NaN())
	if m.IsFinite() {
		t.Fatal("NaN not detected")
	}
	m.Set(0, 0, math.Inf(1))
	if m.IsFinite() {
		t.Fatal("Inf not detected")
	}
}

func TestIdentityAndDiag(t *testing.T) {
	i3 := Identity(3)
	rng := rand.New(rand.NewSource(7))
	a := RandomNonNegative(rng, 3, 3, 0, 1)
	if !Equal(Product(i3, a), a, 1e-12) || !Equal(Product(a, i3), a, 1e-12) {
		t.Fatal("identity is not multiplicative identity")
	}
	d := DiagFromVector([]float64{1, 2, 3})
	got := Product(d, i3)
	if got.At(1, 1) != 2 || got.At(0, 1) != 0 {
		t.Fatalf("DiagFromVector wrong: %v", got)
	}
}

func TestRandomNonNegativeStrictlyPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := RandomNonNegative(rng, 50, 3, 0, 1)
	for _, v := range m.Data() {
		if v <= 0 {
			t.Fatalf("entry %v not strictly positive", v)
		}
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("empty FromRows = %dx%d", m.Rows(), m.Cols())
	}
}

func TestSumMax(t *testing.T) {
	m := FromRows([][]float64{{1, -2}, {3, 4}})
	if m.Sum() != 6 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	if m.Max() != 4 {
		t.Fatalf("Max = %v", m.Max())
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// (AB)C == A(BC) for random small matrices.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		a := RandomNonNegative(rng, 4, 3, 0, 1)
		b := RandomNonNegative(rng, 3, 5, 0, 1)
		c := RandomNonNegative(rng, 5, 2, 0, 1)
		left := Product(Product(a, b), c)
		right := Product(a, Product(b, c))
		if !Equal(left, right, 1e-10) {
			t.Fatalf("associativity violated on trial %d", trial)
		}
	}
}

func TestPerturbPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewDense(3, 3) // all zero
	PerturbPositive(rng, m, 0.1)
	for _, v := range m.Data() {
		if v < 0 || v > 0.1 {
			t.Fatalf("perturbed entry %v out of (0, 0.1]", v)
		}
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}})
	if s := small.String(); len(s) == 0 {
		t.Fatal("empty String for small matrix")
	}
	large := NewDense(100, 100)
	if s := large.String(); s != "Dense 100x100" {
		t.Fatalf("large String = %q", s)
	}
}

func TestCopyFromAndDims(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := NewDense(2, 2)
	b.CopyFrom(a)
	if !Equal(a, b, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("CopyFrom aliased storage")
	}
	if !a.Dims(2, 2) || a.Dims(2, 3) {
		t.Fatal("Dims wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	NewDense(1, 2).CopyFrom(a)
}

func TestHadamard(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	out := NewDense(2, 2)
	out.Hadamard(a, b)
	if !Equal(out, FromRows([][]float64{{5, 12}, {21, 32}}), 0) {
		t.Fatalf("Hadamard = %v", out)
	}
	// Aliasing dst with a is allowed.
	a.Hadamard(a, b)
	if !Equal(a, out, 0) {
		t.Fatal("aliased Hadamard wrong")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if Equal(NewDense(1, 2), NewDense(2, 1), 1) {
		t.Fatal("different shapes reported equal")
	}
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDense(0, 0).Max()
}

func TestRowArgMaxZeroCols(t *testing.T) {
	m := NewDense(2, 0)
	got := m.RowArgMax()
	if got[0] != -1 || got[1] != -1 {
		t.Fatalf("RowArgMax on 0-col = %v", got)
	}
}

func TestNormalizeRowsL1ZeroCols(t *testing.T) {
	m := NewDense(2, 0)
	m.NormalizeRowsL1() // must not panic
}

func TestRandomNonNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomNonNegative(rand.New(rand.NewSource(1)), 2, 2, -1, 1)
}

func TestMulUpdateShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulUpdate(NewDense(1, 1), NewDense(1, 2), NewDense(1, 2))
}
