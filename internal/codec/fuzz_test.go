package codec

import (
	"bytes"
	"os"
	"testing"
)

// FuzzDecode hammers the snapshot decoder with hostile bytes. The corpus
// is seeded from the checked-in golden fixture plus in-memory encodings
// (full and minimal states) and targeted mutations of them, so the fuzzer
// starts inside the format and walks outward — exactly the byte streams
// the cluster hand-off path (PUT restore of an attacker-supplied body)
// must survive. Three properties are enforced on every input:
//
//  1. Decode never panics or over-allocates its way to an OOM (the run
//     itself enforces this);
//  2. whatever Decode accepts must re-encode, and
//  3. the re-encoding must decode again to the identical byte encoding —
//     the determinism contract equal states sign up for.
func FuzzDecode(f *testing.F) {
	if golden, err := os.ReadFile("../../testdata/golden_v2.snap"); err == nil {
		f.Add(golden)
		// A bit-flip and a truncation of the golden fixture as explicit
		// hostile seeds.
		flip := append([]byte(nil), golden...)
		flip[len(flip)/2] ^= 0x40
		f.Add(flip)
		f.Add(golden[:len(golden)*2/3])
	}
	var full bytes.Buffer
	if err := Encode(&full, fullState()); err != nil {
		f.Fatal(err)
	}
	f.Add(full.Bytes())
	var withEpoch bytes.Buffer
	st := fullState()
	st.Epoch = 42
	if err := Encode(&withEpoch, st); err != nil {
		f.Fatal(err)
	}
	f.Add(withEpoch.Bytes())
	f.Add([]byte("TRICSNAP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — the common, correct outcome
		}
		var out bytes.Buffer
		if err := Encode(&out, st); err != nil {
			t.Fatalf("decoded state does not re-encode: %v", err)
		}
		st2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		var out2 bytes.Buffer
		if err := Encode(&out2, st2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point: %d vs %d bytes", out.Len(), out2.Len())
		}
	})
}
