// Package codec serializes the full state of a topic — vocabulary, Sf0
// prior, solver factors and history, user universe, timestamps and
// configuration (an engine.State) — into a self-describing, versioned
// binary snapshot, and restores it.
//
// # Format
//
// A snapshot is:
//
//	magic    [8]byte  "TRICSNAP"
//	version  uint16   format version (currently 2)
//	length   uint64   payload length in bytes
//	payload  [length]byte
//	crc      uint32   CRC-32C (Castagnoli) of the payload
//
// The payload is a sequence of tagged sections, each
//
//	tag      uint8    section identifier
//	size     uint64   body length in bytes
//	body     [size]byte
//
// terminated by tag 0. Decoders skip sections with unknown tags, so later
// format versions can add sections without breaking version-1 readers;
// removing or reshaping an existing section requires a version bump.
// All integers are little-endian; floats are IEEE-754 bit patterns;
// strings and slices are length-prefixed. Map sections are written in
// sorted key order, so encoding is deterministic: equal states produce
// byte-identical snapshots.
//
// The online section names the solver's random generator alongside the
// recorded stream position, because a draw position is only replayable on
// the generator that produced it; decoders reject snapshots recorded
// against a generator they do not implement.
//
// Integrity is checked before any payload parsing: a snapshot whose CRC,
// magic, version or framing does not match is rejected with ErrCorrupt /
// ErrBadMagic / ErrVersion, never partially applied.
package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"triclust/internal/conform"
	"triclust/internal/core"
	"triclust/internal/engine"
	"triclust/internal/mat"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

// Version is the current snapshot format version. Version 2 inserted the
// random-generator identifier into the online section when the solver's
// PRNG moved to SplitMix64; version-1 snapshots recorded stream positions
// of a different generator and are rejected with ErrVersion rather than
// replayed on the wrong stream.
const Version = 2

var magic = [8]byte{'T', 'R', 'I', 'C', 'S', 'N', 'A', 'P'}

// maxPayload bounds the payload length a decoder will accept, guarding
// against absurd allocations from a corrupted or hostile length field.
const maxPayload = 1 << 31

var (
	// ErrBadMagic marks input that is not a triclust snapshot at all.
	ErrBadMagic = errors.New("codec: not a triclust snapshot (bad magic)")
	// ErrVersion marks a snapshot written by an unknown format version.
	ErrVersion = errors.New("codec: unsupported snapshot version")
	// ErrCorrupt marks a snapshot that fails the checksum or framing.
	ErrCorrupt = errors.New("codec: corrupt snapshot")
)

// Section tags of the snapshot format. Tags 1–7 are unchanged since
// version 1; tagEpoch and tagConform were added within version 2 as
// optional sections (absent = epoch 0 / empty conformance profile),
// which older version-2 readers skip by the unknown-tag rule.
const (
	tagEnd     = 0
	tagConfig  = 1
	tagLexicon = 2
	tagVocab   = 3
	tagUsers   = 4
	tagCounter = 5
	tagOnline  = 6
	tagFactors = 7
	tagEpoch   = 8
	tagConform = 9
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// rngSplitMix64 identifies the solver's random generator in the online
// section. The recorded stream position is only meaningful for the exact
// generator that produced it, so the algorithm is part of the format
// contract: replacing the solver's PRNG requires a new identifier here,
// and decoders reject identifiers they do not implement instead of
// silently continuing a stream with different random values.
const rngSplitMix64 = 1

// Encode writes st as a versioned binary snapshot to w.
func Encode(w io.Writer, st *engine.State) error {
	if st == nil {
		return errors.New("codec: nil state")
	}
	var payload bytes.Buffer
	enc := &encoder{w: &payload}
	enc.section(tagConfig, func(e *encoder) { e.config(st.Config, st) })
	enc.section(tagLexicon, func(e *encoder) { e.stringIntMap(st.Lexicon) })
	enc.section(tagVocab, func(e *encoder) {
		e.bool(st.Frozen)
		e.stringSlice(st.VocabWords)
		e.dense(st.Sf0)
		e.stringIntMap(st.VocabCounts)
		e.uint(uint64(st.VocabDocs))
	})
	enc.section(tagUsers, func(e *encoder) {
		e.uint(uint64(len(st.Users)))
		for _, u := range st.Users {
			e.string(u.Name)
			e.int(int64(u.Label))
		}
	})
	enc.section(tagCounter, func(e *encoder) {
		e.uint(uint64(st.Batches))
		e.uint(uint64(st.Skips))
	})
	enc.section(tagOnline, func(e *encoder) { e.online(st.Online) })
	if st.LastFactors != nil {
		enc.section(tagFactors, func(e *encoder) { e.factors(st.LastFactors) })
	}
	// The ownership epoch is written only when set, so snapshots of
	// never-moved topics stay byte-identical to pre-cluster builds (and to
	// the golden fixture). Determinism holds either way: equal states make
	// equal include-or-omit decisions.
	if st.Epoch != 0 {
		enc.section(tagEpoch, func(e *encoder) { e.uint(st.Epoch) })
	}
	// Same rule for the conformance profile: an empty default profile is
	// omitted, so pre-conformance snapshots and snapshots of fresh topics
	// keep their exact bytes. The profile owns its wire format (versioned
	// separately inside the section body, see internal/conform/wire.go).
	if st.Conform != nil && !st.Conform.IsZero() {
		enc.section(tagConform, func(e *encoder) { e.write(st.Conform.AppendBinary(nil)) })
	}
	enc.byte(tagEnd)
	if enc.err != nil {
		return enc.err
	}

	var hdr [18]byte
	copy(hdr[:8], magic[:])
	binary.LittleEndian.PutUint16(hdr[8:10], Version)
	binary.LittleEndian.PutUint64(hdr[10:18], uint64(payload.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload.Bytes(), castagnoli))
	_, err := w.Write(crc[:])
	return err
}

// Decode reads one snapshot from r and reconstructs the engine state. The
// payload checksum is verified before any field is parsed.
func Decode(r io.Reader) (*engine.State, error) {
	var hdr [18]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[8:10]); v != Version {
		return nil, fmt.Errorf("%w: snapshot is version %d, this build reads %d", ErrVersion, v, Version)
	}
	n := binary.LittleEndian.Uint64(hdr[10:18])
	if n > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, n)
	}
	var payload bytes.Buffer
	copied, err := io.Copy(&payload, io.LimitReader(r, int64(n)))
	if err != nil || uint64(copied) != n {
		return nil, fmt.Errorf("%w: truncated payload (%d of %d bytes)", ErrCorrupt, copied, n)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, fmt.Errorf("%w: missing checksum", ErrCorrupt)
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.Checksum(payload.Bytes(), castagnoli); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (payload %08x, trailer %08x)", ErrCorrupt, got, want)
	}

	dec := &decoder{buf: payload.Bytes()}
	st := &engine.State{}
	seen := map[byte]bool{}
	for {
		tag := dec.byte()
		if dec.err != nil {
			return nil, dec.err
		}
		if tag == tagEnd {
			break
		}
		size := dec.uint()
		body := dec.bytes(size)
		if dec.err != nil {
			return nil, dec.err
		}
		if seen[tag] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, tag)
		}
		seen[tag] = true
		sd := &decoder{buf: body}
		switch tag {
		case tagConfig:
			sd.config(&st.Config, st)
		case tagLexicon:
			st.Lexicon = sd.stringIntMap()
		case tagVocab:
			st.Frozen = sd.bool()
			st.VocabWords = sd.stringSlice()
			st.Sf0 = sd.dense()
			st.VocabCounts = sd.stringIntMap()
			st.VocabDocs = int(sd.uint())
		case tagUsers:
			st.Users = sd.users()
		case tagCounter:
			st.Batches = int(sd.uint())
			st.Skips = int(sd.uint())
		case tagOnline:
			st.Online = sd.online()
		case tagFactors:
			st.LastFactors = sd.factors()
		case tagEpoch:
			st.Epoch = sd.uint()
		case tagConform:
			p, err := conform.DecodeProfile(sd.buf)
			if err != nil {
				// An unimplemented profile wire version is version skew
				// (intact snapshot, newer writer), not corruption.
				if errors.Is(err, conform.ErrProfileVersion) {
					return nil, fmt.Errorf("%w: %v", ErrVersion, err)
				}
				return nil, fmt.Errorf("%w: section %d: %v", ErrCorrupt, tag, err)
			}
			st.Conform = p
			sd.buf = nil
		default:
			// Unknown section from a newer minor revision: skip.
			continue
		}
		if sd.err != nil {
			return nil, fmt.Errorf("section %d: %w", tag, sd.err)
		}
		if len(sd.buf) != 0 {
			return nil, fmt.Errorf("%w: %d trailing bytes in section %d", ErrCorrupt, len(sd.buf), tag)
		}
	}
	for _, tag := range []byte{tagConfig, tagLexicon, tagVocab, tagUsers, tagCounter, tagOnline} {
		if !seen[tag] {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, tag)
		}
	}
	return st, nil
}

// ——— encoder ———

type encoder struct {
	w   io.Writer
	err error
}

func (e *encoder) write(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *encoder) byte(b byte) { e.write([]byte{b}) }

func (e *encoder) bool(b bool) {
	if b {
		e.byte(1)
	} else {
		e.byte(0)
	}
}

func (e *encoder) uint(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	e.write(buf[:])
}

func (e *encoder) int(v int64) { e.uint(uint64(v)) }

func (e *encoder) float(v float64) { e.uint(math.Float64bits(v)) }

func (e *encoder) string(s string) {
	e.uint(uint64(len(s)))
	e.write([]byte(s))
}

func (e *encoder) stringSlice(ss []string) {
	e.uint(uint64(len(ss)))
	for _, s := range ss {
		e.string(s)
	}
}

func (e *encoder) floats(fs []float64) {
	e.uint(uint64(len(fs)))
	for _, f := range fs {
		e.float(f)
	}
}

func (e *encoder) ints(vs []int) {
	e.uint(uint64(len(vs)))
	for _, v := range vs {
		e.int(int64(v))
	}
}

func (e *encoder) bools(bs []bool) {
	e.uint(uint64(len(bs)))
	for _, b := range bs {
		e.bool(b)
	}
}

// stringIntMap writes entries in sorted key order for determinism.
func (e *encoder) stringIntMap(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.uint(uint64(len(keys)))
	for _, k := range keys {
		e.string(k)
		e.int(int64(m[k]))
	}
}

func (e *encoder) dense(m *mat.Dense) {
	if m == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.uint(uint64(m.Rows()))
	e.uint(uint64(m.Cols()))
	for _, v := range m.Data() {
		e.float(v)
	}
}

// section buffers a tagged body so its length prefix can be written first.
func (e *encoder) section(tag byte, body func(*encoder)) {
	if e.err != nil {
		return
	}
	var buf bytes.Buffer
	sub := &encoder{w: &buf}
	body(sub)
	if sub.err != nil {
		e.err = sub.err
		return
	}
	e.byte(tag)
	e.uint(uint64(buf.Len()))
	e.write(buf.Bytes())
}

func (e *encoder) config(c core.OnlineConfig, st *engine.State) {
	e.uint(uint64(c.K))
	e.float(c.Alpha)
	e.float(c.Beta)
	e.uint(uint64(c.MaxIter))
	e.float(c.Tol)
	e.int(c.Seed)
	e.bool(c.LexiconInit)
	e.float(c.SparsityLambda)
	e.float(c.DiversityLambda)
	e.float(c.GuidedLambda)
	e.ints(c.GuidedTweetLabels)
	e.ints(c.GuidedUserLabels)
	e.float(c.Gamma)
	e.float(c.Tau)
	e.uint(uint64(c.Window))
	e.uint(uint64(st.Weighting))
	e.uint(uint64(st.MinDF))
	e.float(st.LexiconHit)
	tok := st.Tokenizer
	e.bool(tok.KeepHashtags)
	e.bool(tok.KeepMentions)
	e.bool(tok.RemoveStopwords)
	e.uint(uint64(tok.MinTokenLen))
	e.bool(tok.Stem)
}

func (e *encoder) online(o *core.OnlineState) {
	if o == nil {
		e.bool(false)
		return
	}
	e.bool(true)
	e.byte(rngSplitMix64)
	e.uint(o.RandDraws)
	e.dense(o.LastHp)
	e.dense(o.LastHu)
	e.uint(uint64(len(o.SfHist)))
	for _, s := range o.SfHist {
		e.int(int64(s.Time))
		e.dense(s.Sf)
		e.bools(s.Seen)
	}
	gids := make([]int, 0, len(o.UserHist))
	for g := range o.UserHist {
		gids = append(gids, g)
	}
	sort.Ints(gids)
	e.uint(uint64(len(gids)))
	for _, g := range gids {
		e.int(int64(g))
		hist := o.UserHist[g]
		e.uint(uint64(len(hist)))
		for _, h := range hist {
			e.int(int64(h.Time))
			e.floats(h.Row)
		}
	}
}

func (e *encoder) factors(f *core.Factors) {
	e.dense(f.Sp)
	e.dense(f.Su)
	e.dense(f.Sf)
	e.dense(f.Hp)
	e.dense(f.Hu)
}

// ——— decoder ———

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, msg)
	}
}

func (d *decoder) bytes(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.fail("length past end of data")
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) byte() byte {
	b := d.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) bool() bool {
	switch d.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid boolean")
		return false
	}
}

func (d *decoder) uint() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) int() int64 { return int64(d.uint()) }

func (d *decoder) float() float64 { return math.Float64frombits(d.uint()) }

// count reads a length prefix and sanity-checks it against the bytes that
// remain, given a minimum encoded size per element. The comparison is by
// division, so a hostile count near 2^64 cannot overflow the check and
// reach a huge allocation.
func (d *decoder) count(minElemSize uint64) uint64 {
	n := d.uint()
	if d.err == nil && minElemSize > 0 && n > uint64(len(d.buf))/minElemSize {
		d.fail("element count past end of data")
		return 0
	}
	return n
}

func (d *decoder) string() string { return string(d.bytes(d.uint())) }

func (d *decoder) stringSlice() []string {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = d.string()
	}
	return out
}

func (d *decoder) floats() []float64 {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.float()
	}
	return out
}

func (d *decoder) intSlice() []int {
	n := d.count(8)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.int())
	}
	return out
}

func (d *decoder) bools() []bool {
	n := d.count(1)
	if n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.bool()
	}
	return out
}

// stringIntMap decodes a map section; like the slice decoders it returns
// nil for an empty collection (encoders do not distinguish nil from
// empty, so decoders canonicalize to nil).
func (d *decoder) stringIntMap() map[string]int {
	n := d.count(16)
	if n == 0 {
		return nil
	}
	out := make(map[string]int, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		k := d.string()
		v := int(d.int())
		out[k] = v
	}
	return out
}

func (d *decoder) dense() *mat.Dense {
	if !d.bool() || d.err != nil {
		return nil
	}
	rows, cols := d.uint(), d.uint()
	if d.err != nil {
		return nil
	}
	// Overflow-safe bound: each element takes 8 bytes, so both dimensions
	// and their product must fit in the remaining payload.
	remaining := uint64(len(d.buf)) / 8
	if cols > remaining || rows > maxPayload || (cols != 0 && rows > remaining/cols) {
		d.fail("matrix larger than remaining data")
		return nil
	}
	out := mat.NewDense(int(rows), int(cols))
	data := out.Data()
	for i := range data {
		data[i] = d.float()
	}
	if d.err != nil {
		return nil
	}
	return out
}

func (d *decoder) config(c *core.OnlineConfig, st *engine.State) {
	c.K = int(d.uint())
	c.Alpha = d.float()
	c.Beta = d.float()
	c.MaxIter = int(d.uint())
	c.Tol = d.float()
	c.Seed = d.int()
	c.LexiconInit = d.bool()
	c.SparsityLambda = d.float()
	c.DiversityLambda = d.float()
	c.GuidedLambda = d.float()
	c.GuidedTweetLabels = d.intSlice()
	c.GuidedUserLabels = d.intSlice()
	c.Gamma = d.float()
	c.Tau = d.float()
	c.Window = int(d.uint())
	st.Weighting = text.Weighting(d.uint())
	st.MinDF = int(d.uint())
	st.LexiconHit = d.float()
	st.Tokenizer.KeepHashtags = d.bool()
	st.Tokenizer.KeepMentions = d.bool()
	st.Tokenizer.RemoveStopwords = d.bool()
	st.Tokenizer.MinTokenLen = int(d.uint())
	st.Tokenizer.Stem = d.bool()
}

func (d *decoder) users() []tgraph.User {
	n := d.count(16)
	if n == 0 {
		return nil
	}
	out := make([]tgraph.User, n)
	for i := range out {
		out[i].Name = d.string()
		out[i].Label = int(d.int())
	}
	return out
}

func (d *decoder) online() *core.OnlineState {
	if !d.bool() || d.err != nil {
		return nil
	}
	// An unknown generator id is a version problem, not corruption: the
	// snapshot is intact, this build just cannot replay its stream.
	// ErrVersion keeps it on the same recoverable-skew paths as an
	// unknown format version (quarantine at daemon startup, the
	// unsupported_snapshot_version error code over HTTP).
	if algo := d.byte(); d.err == nil && algo != rngSplitMix64 {
		d.err = fmt.Errorf("%w: snapshot records random generator %d, this build replays generator %d",
			ErrVersion, algo, rngSplitMix64)
		return nil
	}
	o := &core.OnlineState{RandDraws: d.uint()}
	o.LastHp = d.dense()
	o.LastHu = d.dense()
	n := d.count(1)
	if n > 0 {
		o.SfHist = make([]core.SfSnapshotState, 0, n)
	}
	for i := uint64(0); i < n && d.err == nil; i++ {
		s := core.SfSnapshotState{Time: int(d.int())}
		s.Sf = d.dense()
		s.Seen = d.bools()
		o.SfHist = append(o.SfHist, s)
	}
	m := d.count(16)
	// UserHist stays non-nil even when empty: it is the one container the
	// solver mutates in place after restore.
	o.UserHist = make(map[int][]core.UserSnapshotState, m)
	for i := uint64(0); i < m && d.err == nil; i++ {
		g := int(d.int())
		cnt := d.count(16)
		var hist []core.UserSnapshotState
		for j := uint64(0); j < cnt && d.err == nil; j++ {
			hist = append(hist, core.UserSnapshotState{Time: int(d.int()), Row: d.floats()})
		}
		o.UserHist[g] = hist
	}
	return o
}

func (d *decoder) factors() *core.Factors {
	f := &core.Factors{}
	f.Sp = d.dense()
	f.Su = d.dense()
	f.Sf = d.dense()
	f.Hp = d.dense()
	f.Hu = d.dense()
	return f
}
