// repl.go defines the replication wire frame: the body of
// POST /v1/replica/{topic}/append, by which a topic's primary ships its
// journal tail (and, on first contact or after a compaction, the full
// base snapshot) to the topic's ring successors. The frame reuses the
// snapshot format's primitive layer and framing idiom: little-endian
// fields, a magic + version prelude, and a trailing CRC-32C over
// everything before it, so a truncated or corrupted ship is rejected
// whole — a follower never applies half a frame.
package codec

import (
	"encoding/binary"
	"fmt"
	"io"
)

// ReplVersion is the current replication frame version.
const ReplVersion = 1

var replMagic = [8]byte{'T', 'R', 'I', 'C', 'R', 'E', 'P', 'L'}

// maxReplSection bounds the snapshot and tail lengths a decoder will
// allocate for, so a corrupted length field cannot force an OOM. The
// daemon's request-body bound is the real ceiling; this is the decoder's
// own last line.
const maxReplSection = 1 << 31

// ReplAppend is one replication shipment for a topic.
//
// The follower stores a cold replica: the base snapshot bytes plus a
// journal of record frames extending it. SnapCRC names the base the Tail
// extends — a follower holding a different base answers out-of-sync and
// the primary re-ships with Snapshot set. Batches/RandDraws are the
// topic's post-shipment fingerprint; the follower verifies the decoded
// tail chains to exactly that position before fsyncing anything.
type ReplAppend struct {
	// Source is the shipping shard's base URL — the peer a follower (or a
	// fenced zombie) should point clients and tombstones at.
	Source string
	// Epoch is the shipping shard's ownership epoch for the topic. A
	// follower serving or holding the topic at a higher epoch rejects the
	// frame with epoch_mismatch — the fencing check that cuts a zombie
	// primary off after a promotion.
	Epoch uint64
	// SnapCRC is the CRC-32C of the base snapshot the Tail extends.
	SnapCRC uint32
	// BaseBatches and BaseRandDraws fingerprint the base snapshot itself
	// (meaningful when Snapshot is present): the position the first tail
	// record must follow.
	BaseBatches   uint64
	BaseRandDraws uint64
	// Batches and RandDraws fingerprint the topic after applying Tail.
	Batches   uint64
	RandDraws uint64
	// Snapshot, when non-nil, carries the full base snapshot (first
	// contact, post-compaction, or resync after divergence).
	Snapshot []byte
	// Tail carries zero or more CRC-framed journal records (the exact
	// bytes the primary appended to its own journal).
	Tail []byte
}

// EncodeReplAppend writes fr's wire encoding to w.
func EncodeReplAppend(w io.Writer, fr *ReplAppend) error {
	var crc uint32
	cw := &crcTee{w: w}
	enc := NewWireEncoder(cw)
	cw.crc = &crc
	if _, err := cw.Write(replMagic[:]); err != nil {
		return err
	}
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], ReplVersion)
	if _, err := cw.Write(ver[:]); err != nil {
		return err
	}
	enc.String(fr.Source)
	enc.Uint(fr.Epoch)
	enc.Uint(uint64(fr.SnapCRC))
	enc.Uint(fr.BaseBatches)
	enc.Uint(fr.BaseRandDraws)
	enc.Uint(fr.Batches)
	enc.Uint(fr.RandDraws)
	enc.Bool(fr.Snapshot != nil)
	enc.Uint(uint64(len(fr.Snapshot)))
	if len(fr.Snapshot) > 0 {
		if _, err := cw.Write(fr.Snapshot); err != nil {
			return err
		}
	}
	enc.Uint(uint64(len(fr.Tail)))
	if len(fr.Tail) > 0 {
		if _, err := cw.Write(fr.Tail); err != nil {
			return err
		}
	}
	if err := enc.Err(); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc)
	_, err := w.Write(sum[:])
	return err
}

// crcTee accumulates the CRC-32C of everything written through it.
type crcTee struct {
	w   io.Writer
	crc *uint32
}

func (c *crcTee) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	if c.crc != nil {
		*c.crc = ChecksumUpdate(*c.crc, p[:n])
	}
	return n, err
}

// DecodeReplAppend parses a replication frame, verifying magic, version
// and the trailing checksum before returning any field. The returned
// frame's Snapshot and Tail alias data.
func DecodeReplAppend(data []byte) (*ReplAppend, error) {
	if len(data) < 8+2+4 {
		return nil, fmt.Errorf("%w: truncated replication frame", ErrCorrupt)
	}
	if string(data[:8]) != string(replMagic[:]) {
		return nil, fmt.Errorf("%w: not a replication frame (bad magic)", ErrBadMagic)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := Checksum(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: replication frame checksum mismatch (%08x != %08x)", ErrCorrupt, got, want)
	}
	if v := binary.LittleEndian.Uint16(body[8:10]); v != ReplVersion {
		return nil, fmt.Errorf("%w: replication frame is version %d, this build reads %d", ErrVersion, v, ReplVersion)
	}
	dec := NewWireDecoder(body[10:])
	fr := &ReplAppend{
		Source: dec.String(),
		Epoch:  dec.Uint(),
	}
	fr.SnapCRC = uint32(dec.Uint())
	fr.BaseBatches = dec.Uint()
	fr.BaseRandDraws = dec.Uint()
	fr.Batches = dec.Uint()
	fr.RandDraws = dec.Uint()
	hasSnap := dec.Bool()
	snapLen := dec.Uint()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if snapLen > maxReplSection || snapLen > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: snapshot length %d exceeds frame", ErrCorrupt, snapLen)
	}
	snap := dec.Bytes(int(snapLen))
	tailLen := dec.Uint()
	if dec.Err() != nil {
		return nil, dec.Err()
	}
	if tailLen > maxReplSection || tailLen > uint64(dec.Remaining()) {
		return nil, fmt.Errorf("%w: tail length %d exceeds frame", ErrCorrupt, tailLen)
	}
	fr.Tail = dec.Bytes(int(tailLen))
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if dec.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in replication frame", ErrCorrupt, dec.Remaining())
	}
	if hasSnap {
		fr.Snapshot = snap
		if Checksum(fr.Snapshot) != fr.SnapCRC {
			return nil, fmt.Errorf("%w: shipped snapshot fails its own CRC", ErrCorrupt)
		}
	} else if snapLen != 0 {
		return nil, fmt.Errorf("%w: snapshot bytes present but not flagged", ErrCorrupt)
	}
	return fr, nil
}
