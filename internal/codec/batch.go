// batch.go is the binary batch ingest wire format: the body of
// POST /v1/topics/{t}/batches when Content-Type is
// application/x-triclust-batch, and the matching response body when the
// client's Accept header negotiates it. It exists because JSON
// encode/decode became the dominant per-request cost on the daemon's
// ingest path once the solver, journal and replication layers went
// allocation-free; the frames below reuse the snapshot format's wire
// primitives (WireEncoder/WireDecoder, CRC-32C) so every triclust
// on-disk and on-wire format shares one idiom.
//
// # Request frame (application/x-triclust-batch)
//
//	version  uint8    batch wire version (currently 1)
//	time     int64    the batch timestamp (JSON's "time")
//	count    uint64   number of tweets
//	tweets   count × tweet frame (WireEncoder.Tweet layout: text,
//	                  has-tokens bool, tokens, user, time, retweetOf,
//	                  label — label must be NoLabel on this wire)
//	crc      uint32   CRC-32C of every preceding byte (the whole body)
//
// # Response frame
//
//	version     uint8    batch wire version (currently 1)
//	time        int64
//	skipped     bool
//	converged   bool
//	iterations  int64
//	ntweets     uint64; per tweet:  class int64, confidence float64
//	nusers      uint64; per user:   user int64, class int64, confidence float64
//	crc         uint32   CRC-32C of every preceding byte
//
// Both decoders reject version skew (ErrVersion), checksum or framing
// damage (ErrCorrupt), and trailing bytes after the checksum — the same
// strict "exactly one value, nothing after it" contract the daemon's
// JSON decoding enforces. A decoded frame re-encodes to the identical
// bytes (encode∘decode is a fixed point, fuzz-pinned), so proxied and
// journal-replayed batches never drift.
package codec

import (
	"encoding/binary"
	"fmt"

	"triclust/internal/tgraph"
)

// BatchWireVersion is the current binary batch frame version. Bump it on
// any layout change; decoders reject unknown versions with ErrVersion
// instead of guessing.
const BatchWireVersion = 1

// Conservative lower bounds on one encoded element, used to refuse
// hostile count fields before allocating: a tweet frame is at least its
// four int64 fields plus the text length, token-count prefixes and the
// has-tokens byte; a response sentiment is class+confidence.
const (
	minTweetFrameBytes    = 8 + 1 + 8 + 4*8
	minSentimentBytes     = 8 + 8
	minUserSentimentBytes = 8 + 8 + 8
)

// sliceWriter adapts an append-grown byte slice to io.Writer so the
// batch encoders can reuse WireEncoder without per-call buffers.
type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// AppendBatchRequest appends the binary batch request frame for (time,
// tweets) to dst and returns the extended slice. Tweets must be
// unlabeled (Label == NoLabel): the ingest wire carries client data, and
// the JSON path never lets a client plant ground-truth labels either.
func AppendBatchRequest(dst []byte, time int, tweets []tgraph.Tweet) ([]byte, error) {
	start := len(dst)
	sw := &sliceWriter{buf: append(dst, BatchWireVersion)}
	e := NewWireEncoder(sw)
	e.Int(int64(time))
	e.Uint(uint64(len(tweets)))
	for i := range tweets {
		if tweets[i].Label != tgraph.NoLabel {
			return nil, fmt.Errorf("codec: batch wire tweet %d is labeled (%d); the ingest wire carries unlabeled tweets only",
				i, tweets[i].Label)
		}
		e.Tweet(&tweets[i])
	}
	if err := e.Err(); err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint32(sw.buf, Checksum(sw.buf[start:])), nil
}

// EncodeBatchRequest is AppendBatchRequest into a fresh slice.
func EncodeBatchRequest(time int, tweets []tgraph.Tweet) ([]byte, error) {
	return AppendBatchRequest(nil, time, tweets)
}

// openBatchFrame validates the envelope every batch frame shares —
// version byte, minimum length, whole-body CRC-32C trailer — and returns
// a decoder over the payload between them.
func openBatchFrame(data []byte) (*WireDecoder, error) {
	if len(data) < 1+4 {
		return nil, fmt.Errorf("%w: batch frame truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if v := data[0]; v != BatchWireVersion {
		return nil, fmt.Errorf("%w: batch frame is version %d, this build reads %d", ErrVersion, v, BatchWireVersion)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := Checksum(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("%w: batch frame checksum mismatch (body %08x, trailer %08x)", ErrCorrupt, got, want)
	}
	return NewWireDecoder(body[1:]), nil
}

// closeBatchFrame enforces the strict tail contract after a successful
// payload decode: a frame carries exactly one value and nothing after it.
func closeBatchFrame(d *WireDecoder) error {
	if err := d.Err(); err != nil {
		return err
	}
	if n := d.Remaining(); n != 0 {
		return fmt.Errorf("%w: %d trailing bytes inside batch frame", ErrCorrupt, n)
	}
	return nil
}

// DecodeBatchRequest decodes a binary batch request frame, appending the
// tweets to scratch (pass scratch[:0] to reuse a pooled slice; every
// appended element is fully assigned from the wire, so a reused slice
// can never leak a prior request's tokens). It returns the batch
// timestamp and the extended slice. Damage of any kind — truncation,
// bit flips, trailing bytes, labeled tweets, hostile counts — yields an
// error and no tweets, never a partial result.
func DecodeBatchRequest(data []byte, scratch []tgraph.Tweet) (time int, tweets []tgraph.Tweet, err error) {
	d, err := openBatchFrame(data)
	if err != nil {
		return 0, nil, err
	}
	ts := d.Int()
	n := d.Uint()
	if limit := uint64(d.Remaining()/minTweetFrameBytes) + 1; n > limit {
		return 0, nil, fmt.Errorf("%w: batch frame claims %d tweets in %d bytes", ErrCorrupt, n, d.Remaining())
	}
	tweets = scratch
	for i := uint64(0); i < n; i++ {
		tw := d.Tweet()
		if d.Err() != nil {
			break
		}
		if tw.Label != tgraph.NoLabel {
			return 0, nil, fmt.Errorf("%w: batch frame tweet %d is labeled", ErrCorrupt, i)
		}
		tweets = append(tweets, tw)
	}
	if err := closeBatchFrame(d); err != nil {
		return 0, nil, err
	}
	return int(ts), tweets, nil
}

// BatchSentiment is one labeled element of a binary batch response.
type BatchSentiment struct {
	Class      int
	Confidence float64
}

// BatchUserSentiment labels one active user of the batch.
type BatchUserSentiment struct {
	User       int
	Class      int
	Confidence float64
}

// BatchResult is the payload of a binary batch response: the same
// information as the JSON batch response body (class names are derived
// from the class index on both wires; the conformance verdict annotation
// of -conform-mode=flag is JSON-only).
type BatchResult struct {
	Time       int
	Skipped    bool
	Converged  bool
	Iterations int
	Tweets     []BatchSentiment
	Users      []BatchUserSentiment
}

// AppendBatchResponse appends the binary batch response frame to dst and
// returns the extended slice.
func AppendBatchResponse(dst []byte, res *BatchResult) []byte {
	start := len(dst)
	sw := &sliceWriter{buf: append(dst, BatchWireVersion)}
	e := NewWireEncoder(sw)
	e.Int(int64(res.Time))
	e.Bool(res.Skipped)
	e.Bool(res.Converged)
	e.Int(int64(res.Iterations))
	e.Uint(uint64(len(res.Tweets)))
	for _, s := range res.Tweets {
		e.Int(int64(s.Class))
		e.Float(s.Confidence)
	}
	e.Uint(uint64(len(res.Users)))
	for _, u := range res.Users {
		e.Int(int64(u.User))
		e.Int(int64(u.Class))
		e.Float(u.Confidence)
	}
	return binary.LittleEndian.AppendUint32(sw.buf, Checksum(sw.buf[start:]))
}

// DecodeBatchResponse decodes a binary batch response frame.
func DecodeBatchResponse(data []byte) (*BatchResult, error) {
	d, err := openBatchFrame(data)
	if err != nil {
		return nil, err
	}
	res := &BatchResult{}
	res.Time = int(d.Int())
	res.Skipped = d.Bool()
	res.Converged = d.Bool()
	res.Iterations = int(d.Int())
	nt := d.Uint()
	if limit := uint64(d.Remaining()/minSentimentBytes) + 1; nt > limit {
		return nil, fmt.Errorf("%w: batch response claims %d tweet sentiments in %d bytes", ErrCorrupt, nt, d.Remaining())
	}
	res.Tweets = make([]BatchSentiment, 0, nt)
	for i := uint64(0); i < nt && d.Err() == nil; i++ {
		res.Tweets = append(res.Tweets, BatchSentiment{Class: int(d.Int()), Confidence: d.Float()})
	}
	nu := d.Uint()
	if limit := uint64(d.Remaining()/minUserSentimentBytes) + 1; nu > limit {
		return nil, fmt.Errorf("%w: batch response claims %d user sentiments in %d bytes", ErrCorrupt, nu, d.Remaining())
	}
	res.Users = make([]BatchUserSentiment, 0, nu)
	for i := uint64(0); i < nu && d.Err() == nil; i++ {
		res.Users = append(res.Users, BatchUserSentiment{User: int(d.Int()), Class: int(d.Int()), Confidence: d.Float()})
	}
	if err := closeBatchFrame(d); err != nil {
		return nil, err
	}
	return res, nil
}
