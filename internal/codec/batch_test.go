package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"reflect"
	"testing"

	"triclust/internal/tgraph"
)

var updateBatchGolden = flag.Bool("update-batch-golden", false,
	"regenerate the binary batch request golden fixture (only when deliberately changing the batch wire format)")

const batchGoldenPath = "../../testdata/golden_batch_v1.bin"

// goldenBatch is the fixed content of the checked-in batch fixture: a
// small batch exercising every field shape the tweet frame carries —
// raw text (nil tokens), pre-tokenized (non-nil), and the explicit
// empty-token slice, plus a retweet edge.
func goldenBatch() (int, []tgraph.Tweet) {
	return 7, []tgraph.Tweet{
		{Text: "love prop37 win", User: 0, Time: 7, RetweetOf: -1, Label: tgraph.NoLabel},
		{Tokens: []string{"awful", "prop37", "scam"}, User: 1, Time: 7, RetweetOf: -1, Label: tgraph.NoLabel},
		{Tokens: []string{}, User: 2, Time: 8, RetweetOf: 0, Label: tgraph.NoLabel},
	}
}

// frame builds a batch frame by hand — version byte, caller-written
// payload, whole-body CRC-32C — so tests can craft inputs the public
// encoder refuses to produce.
func frame(t *testing.T, payload func(e *WireEncoder)) []byte {
	t.Helper()
	sw := &sliceWriter{buf: []byte{BatchWireVersion}}
	e := NewWireEncoder(sw)
	payload(e)
	if err := e.Err(); err != nil {
		t.Fatalf("building frame: %v", err)
	}
	return binary.LittleEndian.AppendUint32(sw.buf, Checksum(sw.buf))
}

func TestBatchRequestRoundTrip(t *testing.T) {
	time, tweets := goldenBatch()
	data, err := EncodeBatchRequest(time, tweets)
	if err != nil {
		t.Fatalf("EncodeBatchRequest: %v", err)
	}
	gotTime, gotTweets, err := DecodeBatchRequest(data, nil)
	if err != nil {
		t.Fatalf("DecodeBatchRequest: %v", err)
	}
	if gotTime != time {
		t.Fatalf("time: got %d want %d", gotTime, time)
	}
	if !reflect.DeepEqual(gotTweets, tweets) {
		t.Fatalf("tweets differ:\n got %+v\nwant %+v", gotTweets, tweets)
	}
	// Nil-vs-empty token distinction must survive the wire: nil means
	// "tokenize the text", empty means "tokenized, no features".
	if gotTweets[0].Tokens != nil {
		t.Fatalf("tweet 0: nil tokens decoded as %v", gotTweets[0].Tokens)
	}
	if gotTweets[2].Tokens == nil || len(gotTweets[2].Tokens) != 0 {
		t.Fatalf("tweet 2: explicit empty tokens decoded as %v", gotTweets[2].Tokens)
	}
	// encode∘decode is a fixed point.
	again, err := EncodeBatchRequest(gotTime, gotTweets)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(again, data) {
		t.Fatalf("re-encode is not byte-identical: %d vs %d bytes", len(again), len(data))
	}
}

func TestBatchRequestEmpty(t *testing.T) {
	data, err := EncodeBatchRequest(3, nil)
	if err != nil {
		t.Fatalf("EncodeBatchRequest: %v", err)
	}
	gotTime, gotTweets, err := DecodeBatchRequest(data, nil)
	if err != nil {
		t.Fatalf("DecodeBatchRequest: %v", err)
	}
	if gotTime != 3 || len(gotTweets) != 0 {
		t.Fatalf("got time %d, %d tweets", gotTime, len(gotTweets))
	}
}

// TestBatchRequestScratchReuse drives the pooled-scratch contract the
// daemon relies on: decoding a small batch into a scratch slice that
// previously held tweets with large token sets must yield exactly the
// new batch, with no stale text or tokens bleeding through.
func TestBatchRequestScratchReuse(t *testing.T) {
	big := []tgraph.Tweet{
		{Text: "stale", Tokens: []string{"stale1", "stale2", "stale3", "stale4"}, User: 9, Time: 1, RetweetOf: 5, Label: tgraph.NoLabel},
		{Text: "stale too", Tokens: []string{"old"}, User: 8, Time: 1, RetweetOf: -1, Label: tgraph.NoLabel},
	}
	bigData, err := EncodeBatchRequest(1, big)
	if err != nil {
		t.Fatal(err)
	}
	_, scratch, err := DecodeBatchRequest(bigData, nil)
	if err != nil {
		t.Fatal(err)
	}
	small := []tgraph.Tweet{{Text: "fresh", User: 0, Time: 2, RetweetOf: -1, Label: tgraph.NoLabel}}
	smallData, err := EncodeBatchRequest(2, small)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := DecodeBatchRequest(smallData, scratch[:0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, small) {
		t.Fatalf("scratch reuse leaked state:\n got %+v\nwant %+v", got, small)
	}
}

func TestBatchRequestRejects(t *testing.T) {
	time, tweets := goldenBatch()
	valid, err := EncodeBatchRequest(time, tweets)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"too short", valid[:3], ErrCorrupt},
		{"truncated", valid[:len(valid)*2/3], ErrCorrupt},
		{"bit flip", func() []byte {
			d := append([]byte(nil), valid...)
			d[len(d)/2] ^= 0x10
			return d
		}(), ErrCorrupt},
		{"trailing after checksum", append(append([]byte(nil), valid...), 0), ErrCorrupt},
		{"future version", func() []byte {
			d := append([]byte(nil), valid...)
			d[0] = BatchWireVersion + 1
			// Recompute the trailer so only the version is wrong.
			binary.LittleEndian.PutUint32(d[len(d)-4:], Checksum(d[:len(d)-4]))
			return d
		}(), ErrVersion},
		{"trailing inside frame", frame(t, func(e *WireEncoder) {
			e.Int(1)
			e.Uint(0)
			e.Uint(0xdead) // extra payload after the declared tweets
		}), ErrCorrupt},
		{"hostile count", frame(t, func(e *WireEncoder) {
			e.Int(1)
			e.Uint(1 << 50) // claims 2^50 tweets in a tiny frame
		}), ErrCorrupt},
		{"labeled tweet", frame(t, func(e *WireEncoder) {
			e.Int(1)
			e.Uint(1)
			tw := tgraph.Tweet{Text: "x", User: 0, Time: 1, RetweetOf: -1, Label: 2}
			e.Tweet(&tw)
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, tweets, err := DecodeBatchRequest(tc.data, nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got err %v, want %v", err, tc.want)
			}
			if tweets != nil {
				t.Fatalf("rejected frame returned %d tweets", len(tweets))
			}
		})
	}
}

func TestBatchRequestEncodeRejectsLabeled(t *testing.T) {
	labeled := []tgraph.Tweet{{Text: "x", User: 0, Time: 1, RetweetOf: -1, Label: 1}}
	if _, err := EncodeBatchRequest(1, labeled); err == nil {
		t.Fatal("EncodeBatchRequest accepted a labeled tweet")
	}
}

func TestBatchResponseRoundTrip(t *testing.T) {
	res := &BatchResult{
		Time:       11,
		Skipped:    false,
		Converged:  true,
		Iterations: 4,
		Tweets: []BatchSentiment{
			{Class: 0, Confidence: 0.875},
			{Class: 2, Confidence: 0.5},
		},
		Users: []BatchUserSentiment{
			{User: 0, Class: 1, Confidence: 1},
			{User: 3, Class: 0, Confidence: 0.25},
		},
	}
	data := AppendBatchResponse(nil, res)
	got, err := DecodeBatchResponse(data)
	if err != nil {
		t.Fatalf("DecodeBatchResponse: %v", err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("response differs:\n got %+v\nwant %+v", got, res)
	}
	if !bytes.Equal(AppendBatchResponse(nil, got), data) {
		t.Fatal("response re-encode is not byte-identical")
	}
}

func TestBatchResponseRejectsCorruption(t *testing.T) {
	data := AppendBatchResponse(nil, &BatchResult{Time: 1, Iterations: 1})
	flip := append([]byte(nil), data...)
	flip[len(flip)/2] ^= 0x01
	if _, err := DecodeBatchResponse(flip); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: got %v, want ErrCorrupt", err)
	}
	if _, err := DecodeBatchResponse(data[:len(data)-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation: got %v, want ErrCorrupt", err)
	}
}

// TestGoldenBatchFixture pins the version-1 batch wire layout to the
// checked-in fixture: today's encoder must reproduce it byte-for-byte,
// and today's decoder must read it back to the known content. Run with
// -update-batch-golden only on a deliberate, version-bumped change.
func TestGoldenBatchFixture(t *testing.T) {
	time, tweets := goldenBatch()
	if *updateBatchGolden {
		data, err := EncodeBatchRequest(time, tweets)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(batchGoldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", batchGoldenPath, len(data))
	}
	golden, err := os.ReadFile(batchGoldenPath)
	if err != nil {
		t.Fatalf("missing golden fixture (generate with -update-batch-golden): %v", err)
	}
	data, err := EncodeBatchRequest(time, tweets)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, golden) {
		t.Fatalf("encoder no longer reproduces the golden fixture (%d vs %d bytes); if the format change is deliberate, bump BatchWireVersion and regenerate", len(data), len(golden))
	}
	gotTime, gotTweets, err := DecodeBatchRequest(golden, nil)
	if err != nil {
		t.Fatalf("golden fixture does not decode: %v", err)
	}
	if gotTime != time || !reflect.DeepEqual(gotTweets, tweets) {
		t.Fatalf("golden fixture content drifted: time %d, %+v", gotTime, gotTweets)
	}
}

// FuzzBatchWireDecode hammers the batch request decoder with hostile
// bytes, seeded from the golden fixture and targeted mutations of it.
// This is the exact byte stream an unauthenticated client hands the
// daemon's ingest path, so the bar is: never panic, never over-allocate,
// and on any accepted input encode∘decode must be the identity — a
// decoded batch re-frames to the very bytes it came from, which is what
// lets proxying and journaling treat the two wire formats as one stream.
func FuzzBatchWireDecode(f *testing.F) {
	if golden, err := os.ReadFile(batchGoldenPath); err == nil {
		f.Add(golden)
		flip := append([]byte(nil), golden...)
		flip[len(flip)/2] ^= 0x40
		f.Add(flip)
		f.Add(golden[:len(golden)*2/3])
	}
	time, tweets := goldenBatch()
	if data, err := EncodeBatchRequest(time, tweets); err == nil {
		f.Add(data)
	}
	if empty, err := EncodeBatchRequest(0, nil); err == nil {
		f.Add(empty)
	}
	f.Add([]byte{BatchWireVersion})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		batchTime, decoded, err := DecodeBatchRequest(data, nil)
		if err != nil {
			if decoded != nil {
				t.Fatalf("error %v returned %d tweets (partial apply)", err, len(decoded))
			}
			return // rejected cleanly — the common, correct outcome
		}
		again, err := EncodeBatchRequest(batchTime, decoded)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		if !bytes.Equal(again, data) {
			t.Fatalf("encode∘decode is not the identity: %d vs %d bytes", len(again), len(data))
		}
	})
}
