package codec

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleReplFrames() []*ReplAppend {
	snap := []byte("base snapshot bytes, any payload works at this layer")
	return []*ReplAppend{
		{
			Source:    "http://shard-a:8547",
			Epoch:     3,
			SnapCRC:   Checksum(snap),
			Batches:   7,
			RandDraws: 991,
			Tail:      []byte{0x01, 0x05, 0, 0, 0, 1, 2, 3, 4, 5, 9, 9, 9, 9},
		},
		{
			Source:        "http://shard-b:8547",
			Epoch:         0,
			SnapCRC:       Checksum(snap),
			BaseBatches:   4,
			BaseRandDraws: 123,
			Batches:       4,
			RandDraws:     123,
			Snapshot:      snap,
		},
		{
			Source:  "http://shard-c:8547",
			Epoch:   ^uint64(0),
			SnapCRC: Checksum(nil),
		},
	}
}

func encodeRepl(t *testing.T, fr *ReplAppend) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeReplAppend(&buf, fr); err != nil {
		t.Fatalf("EncodeReplAppend: %v", err)
	}
	return buf.Bytes()
}

func TestReplAppendRoundTrip(t *testing.T) {
	for i, fr := range sampleReplFrames() {
		data := encodeRepl(t, fr)
		got, err := DecodeReplAppend(data)
		if err != nil {
			t.Fatalf("frame %d: DecodeReplAppend: %v", i, err)
		}
		// Normalize empty-vs-nil Tail before comparing.
		if len(got.Tail) == 0 {
			got.Tail = nil
		}
		want := *fr
		if len(want.Tail) == 0 {
			want.Tail = nil
		}
		if !reflect.DeepEqual(got, &want) {
			t.Fatalf("frame %d round-trip mismatch:\n got %+v\nwant %+v", i, got, &want)
		}
	}
}

func TestReplAppendRejectsDamage(t *testing.T) {
	base := sampleReplFrames()[1] // the one with a snapshot
	data := encodeRepl(t, base)

	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 7, 13, len(data) / 2, len(data) - 1} {
			if _, err := DecodeReplAppend(data[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded", n)
			}
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for _, pos := range []int{0, 9, 12, len(data) / 2, len(data) - 1} {
			bad := append([]byte(nil), data...)
			bad[pos] ^= 0x20
			if _, err := DecodeReplAppend(bad); err == nil {
				t.Fatalf("bit flip at %d decoded", pos)
			}
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		copy(bad, "NOTREPL!")
		if _, err := DecodeReplAppend(bad); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("bad magic: %v", err)
		}
	})
	t.Run("future version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		bad[8] = ReplVersion + 1
		// Re-seal the trailer so only the version is wrong.
		body := bad[:len(bad)-4]
		sum := Checksum(body)
		bad[len(bad)-4] = byte(sum)
		bad[len(bad)-3] = byte(sum >> 8)
		bad[len(bad)-2] = byte(sum >> 16)
		bad[len(bad)-1] = byte(sum >> 24)
		if _, err := DecodeReplAppend(bad); !errors.Is(err, ErrVersion) {
			t.Fatalf("future version: %v", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		// Extra bytes between the fields and the (re-sealed) trailer.
		bad := append([]byte(nil), data[:len(data)-4]...)
		bad = append(bad, 0xAA, 0xBB)
		sum := Checksum(bad)
		bad = append(bad, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
		if _, err := DecodeReplAppend(bad); err == nil {
			t.Fatal("trailing bytes decoded")
		}
	})
	t.Run("snapshot CRC mismatch", func(t *testing.T) {
		fr := *base
		fr.SnapCRC = base.SnapCRC + 1
		if _, err := DecodeReplAppend(encodeRepl(t, &fr)); err == nil {
			t.Fatal("snapshot failing its own CRC decoded")
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := DecodeReplAppend(nil); err == nil {
			t.Fatal("nil input decoded")
		}
	})
}

// FuzzReplAppend hammers the replication-frame decoder with hostile
// bytes — the body of POST /v1/replica/{topic}/append, which arrives
// over the network from whatever claims to be a peer. Seeds start inside
// the format (valid encodings with and without snapshot, plus targeted
// mutations) and walk outward. Accepted frames must re-encode to bytes
// that decode to the same frame — the fixed-point contract the resync
// path relies on.
func FuzzReplAppend(f *testing.F) {
	for _, fr := range sampleReplFrames() {
		var buf bytes.Buffer
		if err := EncodeReplAppend(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		flip := append([]byte(nil), buf.Bytes()...)
		flip[len(flip)/2] ^= 0x40
		f.Add(flip)
		f.Add(buf.Bytes()[:len(buf.Bytes())*2/3])
	}
	f.Add([]byte("TRICREPL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeReplAppend(data)
		if err != nil {
			return // rejected cleanly — the common, correct outcome
		}
		var out bytes.Buffer
		if err := EncodeReplAppend(&out, fr); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		fr2, err := DecodeReplAppend(out.Bytes())
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		var out2 bytes.Buffer
		if err := EncodeReplAppend(&out2, fr2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("encode∘decode is not a fixed point: %d vs %d bytes", out.Len(), out2.Len())
		}
	})
}
