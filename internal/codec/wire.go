// wire.go exposes the snapshot format's primitive layer — little-endian
// integers, IEEE-754 floats, length-prefixed strings and slices, and the
// CRC-32C (Castagnoli) checksum — so sibling on-disk formats (the batch
// journal) share one wire idiom instead of reinventing framing.
package codec

import (
	"hash/crc32"
	"io"

	"triclust/internal/tgraph"
)

// Checksum returns the CRC-32C (Castagnoli) checksum every triclust
// on-disk format frames its payloads with.
func Checksum(p []byte) uint32 {
	return crc32.Checksum(p, castagnoli)
}

// ChecksumUpdate extends a running CRC-32C with more bytes (the
// incremental form of Checksum).
func ChecksumUpdate(crc uint32, p []byte) uint32 {
	return crc32.Update(crc, castagnoli, p)
}

// WireEncoder writes the snapshot format's primitives to a stream. Errors
// are sticky: the first write failure is retained and later calls are
// no-ops, so callers check Err once after encoding.
type WireEncoder struct {
	enc encoder
}

// NewWireEncoder returns an encoder writing to w.
func NewWireEncoder(w io.Writer) *WireEncoder {
	return &WireEncoder{enc: encoder{w: w}}
}

// Err returns the first write error, if any.
func (e *WireEncoder) Err() error { return e.enc.err }

// Uint writes a little-endian uint64.
func (e *WireEncoder) Uint(v uint64) { e.enc.uint(v) }

// Int writes a two's-complement int64.
func (e *WireEncoder) Int(v int64) { e.enc.int(v) }

// Bool writes a single 0/1 byte.
func (e *WireEncoder) Bool(v bool) { e.enc.bool(v) }

// Float writes a float64 as its IEEE-754 bits, little-endian.
func (e *WireEncoder) Float(v float64) { e.enc.float(v) }

// String writes a length-prefixed string.
func (e *WireEncoder) String(s string) { e.enc.string(s) }

// StringSlice writes a length-prefixed string slice.
func (e *WireEncoder) StringSlice(ss []string) { e.enc.stringSlice(ss) }

// Tweet writes one tweet, preserving the nil-vs-empty distinction of its
// Tokens (nil means "tokenize the text", so replay must reproduce it).
func (e *WireEncoder) Tweet(tw *tgraph.Tweet) {
	e.enc.string(tw.Text)
	e.enc.bool(tw.Tokens != nil)
	e.enc.stringSlice(tw.Tokens)
	e.enc.int(int64(tw.User))
	e.enc.int(int64(tw.Time))
	e.enc.int(int64(tw.RetweetOf))
	e.enc.int(int64(tw.Label))
}

// WireDecoder reads the snapshot format's primitives from a byte slice.
// Errors are sticky and out-of-bounds reads fail with ErrCorrupt.
type WireDecoder struct {
	dec decoder
}

// NewWireDecoder returns a decoder over buf.
func NewWireDecoder(buf []byte) *WireDecoder {
	return &WireDecoder{dec: decoder{buf: buf}}
}

// Err returns the first decode error, if any.
func (d *WireDecoder) Err() error { return d.dec.err }

// Remaining returns the number of unread bytes.
func (d *WireDecoder) Remaining() int { return len(d.dec.buf) }

// Bytes reads n raw bytes, aliasing the decoder's buffer (the caller
// must copy if it outlives the input). Negative or past-end lengths fail
// with ErrCorrupt.
func (d *WireDecoder) Bytes(n int) []byte {
	if n < 0 {
		d.dec.fail("negative byte count")
		return nil
	}
	return d.dec.bytes(uint64(n))
}

// Uint reads a little-endian uint64.
func (d *WireDecoder) Uint() uint64 { return d.dec.uint() }

// Int reads a two's-complement int64.
func (d *WireDecoder) Int() int64 { return d.dec.int() }

// Bool reads a 0/1 byte.
func (d *WireDecoder) Bool() bool { return d.dec.bool() }

// Float reads a float64 written by WireEncoder.Float.
func (d *WireDecoder) Float() float64 { return d.dec.float() }

// String reads a length-prefixed string.
func (d *WireDecoder) String() string { return d.dec.string() }

// StringSlice reads a length-prefixed string slice.
func (d *WireDecoder) StringSlice() []string { return d.dec.stringSlice() }

// Tweet reads one tweet written by WireEncoder.Tweet.
func (d *WireDecoder) Tweet() tgraph.Tweet {
	var tw tgraph.Tweet
	tw.Text = d.dec.string()
	hasTokens := d.dec.bool()
	tw.Tokens = d.dec.stringSlice()
	if hasTokens && tw.Tokens == nil {
		// The slice decoders canonicalize empty to nil; restore the
		// explicit empty slice ("already tokenized, no features").
		tw.Tokens = []string{}
	} else if !hasTokens {
		tw.Tokens = nil
	}
	tw.User = int(d.dec.int())
	tw.Time = int(d.dec.int())
	tw.RetweetOf = int(d.dec.int())
	tw.Label = int(d.dec.int())
	return tw
}
