package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"triclust/internal/conform"
	"triclust/internal/core"
	"triclust/internal/engine"
	"triclust/internal/mat"
	"triclust/internal/text"
	"triclust/internal/tgraph"
)

func denseOf(rows, cols int, vals ...float64) *mat.Dense {
	m := mat.NewDense(rows, cols)
	copy(m.Data(), vals)
	return m
}

// fullState builds a state exercising every section and nullable field.
func fullState() *engine.State {
	return &engine.State{
		Config: core.OnlineConfig{
			Config: core.Config{
				K: 3, Alpha: 0.05, Beta: 0.8, MaxIter: 40, Tol: -1,
				Seed: 17, LexiconInit: true, SparsityLambda: 0.1,
				GuidedTweetLabels: []int{-1, 0, 2},
			},
			Gamma: 0.2, Tau: 0.9, Window: 2,
		},
		Weighting:  text.TFIDF,
		MinDF:      2,
		LexiconHit: 0.8,
		Tokenizer:  text.TokenizerOptions{KeepHashtags: true, RemoveStopwords: true, MinTokenLen: 2},
		Lexicon:    map[string]int{"good": 0, "bad": 1},
		Frozen:     true,
		VocabWords: []string{"bad", "good", "prop37"},
		Sf0:        denseOf(3, 3, 0.1, 0.1, 0.8, 0.8, 0.1, 0.1, 1.0/3, 1.0/3, 1.0/3),
		Users:      []tgraph.User{{Name: "ann", Label: 0}, {Name: "bo", Label: tgraph.NoLabel}},
		Batches:    4,
		Skips:      1,
		Online: &core.OnlineState{
			RandDraws: 12345,
			LastHp:    denseOf(2, 2, 1, 0, 0, 1),
			LastHu:    denseOf(2, 2, 0.9, 0.1, 0.2, 0.8),
			SfHist: []core.SfSnapshotState{
				{Time: 3, Sf: denseOf(3, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9), Seen: []bool{true, false, true}},
				{Time: 4, Sf: denseOf(3, 3, 9, 8, 7, 6, 5, 4, 3, 2, 1), Seen: []bool{false, true, true}},
			},
			UserHist: map[int][]core.UserSnapshotState{
				0: {{Time: 3, Row: []float64{0.5, 0.25, 0.25}}},
				7: {{Time: 3, Row: []float64{1, 0, 0}}, {Time: 4, Row: []float64{0, 1, 0}}},
			},
		},
		LastFactors: &core.Factors{
			Sp: denseOf(1, 3, 0.2, 0.3, 0.5),
			Su: denseOf(2, 3, 1, 2, 3, 4, 5, 6),
			Sf: denseOf(3, 3, 1, 1, 1, 2, 2, 2, 3, 3, 3),
			Hp: denseOf(3, 3, 1, 0, 0, 0, 1, 0, 0, 0, 1),
			Hu: denseOf(3, 3, 2, 0, 0, 0, 2, 0, 0, 0, 2),
		},
		Epoch: 6,
	}
}

func TestRoundTrip(t *testing.T) {
	st := fullState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", st, got)
	}
}

func TestRoundTripMinimal(t *testing.T) {
	// A freshly created, never-processed topic: no freeze, no factors,
	// empty histories.
	st := &engine.State{
		Config:      core.OnlineConfig{Config: core.Config{K: 3, MaxIter: 100, Tol: 1e-4}, Tau: 0.9, Window: 2},
		LexiconHit:  0.8,
		MinDF:       2,
		VocabCounts: map[string]int{"warm": 1},
		VocabDocs:   1,
		Online:      &core.OnlineState{UserHist: map[int][]core.UserSnapshotState{}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("round trip mismatch:\n want %+v\n got  %+v", st, got)
	}
}

// TestEpochSectionOptional pins the epoch section's compatibility story:
// epoch 0 (a topic that never changed shards) omits the section entirely,
// so such snapshots are byte-identical to those of pre-cluster builds —
// the golden fixture keeps passing without a version bump — while a
// non-zero epoch rides along and round-trips.
func TestEpochSectionOptional(t *testing.T) {
	withEpoch := fullState()
	withEpoch.Epoch = 9
	without := fullState()
	without.Epoch = 0

	var a, b bytes.Buffer
	if err := Encode(&a, withEpoch); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, without); err != nil {
		t.Fatal(err)
	}
	// tag byte + 8-byte size + 8-byte epoch.
	if want := b.Len() + 17; a.Len() != want {
		t.Fatalf("epoch section size: with=%d without=%d, want with = without+17", a.Len(), b.Len())
	}
	got, err := Decode(&a)
	if err != nil {
		t.Fatalf("Decode with epoch: %v", err)
	}
	if got.Epoch != 9 {
		t.Fatalf("epoch %d, want 9", got.Epoch)
	}
	got, err = Decode(&b)
	if err != nil {
		t.Fatalf("Decode without epoch: %v", err)
	}
	if got.Epoch != 0 {
		t.Fatalf("epoch %d, want 0", got.Epoch)
	}
}

func TestDeterministicEncoding(t *testing.T) {
	var a, b bytes.Buffer
	if err := Encode(&a, fullState()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, fullState()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("encoding of equal states differs")
	}
}

func TestSpecialFloatsSurvive(t *testing.T) {
	st := fullState()
	st.Sf0.Set(0, 0, math.Inf(1))
	st.Sf0.Set(0, 1, math.Copysign(0, -1))
	st.Sf0.Set(0, 2, 1e-308)
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Sf0.At(0, 0), 1) {
		t.Fatal("+Inf not preserved")
	}
	if math.Float64bits(got.Sf0.At(0, 1)) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatal("-0 not preserved bit-exactly")
	}
	if got.Sf0.At(0, 2) != 1e-308 {
		t.Fatal("subnormal-range value not preserved")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, fullState()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	wrongMagic := append([]byte(nil), data...)
	wrongMagic[0] = 'X'
	if _, err := Decode(bytes.NewReader(wrongMagic)); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}

	wrongVersion := append([]byte(nil), data...)
	binary.LittleEndian.PutUint16(wrongVersion[8:10], Version+1)
	if _, err := Decode(bytes.NewReader(wrongVersion)); !errors.Is(err, ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, fullState()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit at every offset past the version field; every mutation
	// must be rejected (payload flips fail the CRC, header/trailer flips
	// fail framing or the checksum comparison).
	for pos := 10; pos < len(data); pos++ {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x01
		if _, err := Decode(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at offset %d accepted", pos)
		}
	}
	for cut := 0; cut < len(data); cut += 11 {
		if _, err := Decode(bytes.NewReader(data[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d: want ErrCorrupt", cut)
		}
	}
}

// TestHostileCountsRejected: a forged snapshot with a *valid* CRC but
// absurd element counts must fail with ErrCorrupt, not panic or allocate
// unboundedly (the length checks are overflow-safe).
func TestHostileCountsRejected(t *testing.T) {
	forge := func(mutate func(payload []byte)) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, fullState()); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		payload := append([]byte(nil), data[18:len(data)-4]...)
		mutate(payload)
		out := append([]byte(nil), data[:10]...)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
		out = append(out, payload...)
		return binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	}
	// The vocab section (tag 3) starts with the frozen flag, then the
	// word-count prefix of the word list; the lexicon section (tag 2)
	// starts with its entry count. Overwrite each count with values whose
	// naive size products overflow uint64.
	for _, huge := range []uint64{1 << 61, 1<<64 - 1} {
		for _, tag := range []byte{tagLexicon, tagVocab} {
			data := forge(func(p []byte) {
				for i := 0; i < len(p); {
					secTag, size := p[i], binary.LittleEndian.Uint64(p[i+1:i+9])
					if secTag == tag {
						off := i + 9
						if tag == tagVocab {
							off++ // skip the frozen flag
						}
						binary.LittleEndian.PutUint64(p[off:], huge)
						return
					}
					if secTag == tagEnd {
						t.Fatal("section not found")
					}
					i += 9 + int(size)
				}
			})
			if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("tag %d count %d: got %v, want ErrCorrupt", tag, huge, err)
			}
		}
	}
	// Dense-matrix header with dimensions whose byte size overflows.
	data := forge(func(p []byte) {
		for i := 0; i < len(p); {
			secTag, size := p[i], binary.LittleEndian.Uint64(p[i+1:i+9])
			if secTag == tagFactors {
				// factors: Sp first → flag byte, rows, cols.
				binary.LittleEndian.PutUint64(p[i+10:], 1<<61)
				binary.LittleEndian.PutUint64(p[i+18:], 1<<61)
				return
			}
			if secTag == tagEnd {
				t.Fatal("factors section not found")
			}
			i += 9 + int(size)
		}
	})
	if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile matrix dims: got %v, want ErrCorrupt", err)
	}
}

// TestUnknownSectionSkipped: decoders must skip sections with unknown
// tags, the forward-compatibility half of the self-describing format.
func TestUnknownSectionSkipped(t *testing.T) {
	st := fullState()
	var buf bytes.Buffer
	if err := Encode(&buf, st); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	payload := data[18 : len(data)-4]
	if payload[len(payload)-1] != tagEnd {
		t.Fatal("payload does not end with the end tag")
	}

	// Splice an unknown section (tag 200) in front of the end tag.
	extra := []byte{200}
	extra = binary.LittleEndian.AppendUint64(extra, 3)
	extra = append(extra, 'x', 'y', 'z')
	newPayload := append(append([]byte(nil), payload[:len(payload)-1]...), extra...)
	newPayload = append(newPayload, tagEnd)

	var out bytes.Buffer
	out.Write(data[:8])
	out.Write(binary.LittleEndian.AppendUint16(nil, Version))
	out.Write(binary.LittleEndian.AppendUint64(nil, uint64(len(newPayload))))
	out.Write(newPayload)
	out.Write(binary.LittleEndian.AppendUint32(nil, crc32.Checksum(newPayload, castagnoli)))

	got, err := Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("snapshot with unknown section rejected: %v", err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatal("unknown section altered the decoded state")
	}
}

// TestUnknownRNGAlgorithmRejected: a recorded draw position is only
// replayable on the generator that produced it, so the online section's
// generator identifier must be one this build implements. The failure is
// version skew, not corruption — the intact file must ride the same
// recoverable paths (startup quarantine, stable error code) as an
// unknown format version.
func TestUnknownRNGAlgorithmRejected(t *testing.T) {
	var buf bytes.Buffer
	e := &encoder{w: &buf}
	e.bool(true)
	e.byte(rngSplitMix64 + 1)
	e.uint(5)
	d := &decoder{buf: buf.Bytes()}
	if _ = d.online(); d.err == nil {
		t.Fatal("unknown generator accepted")
	}
	if !errors.Is(d.err, ErrVersion) {
		t.Fatalf("error %v, want ErrVersion", d.err)
	}
}

// warmConformProfile builds a profile warmed past its MinSamples gate on
// a steady synthetic stream, so every counter and metric is non-zero.
func warmConformProfile() *conform.Profile {
	p := conform.NewProfile(conform.Params{})
	for i := 0; i < 12; i++ {
		obs := conform.Observation{
			Tweets: 12, Tokens: 36, OOVTokens: 0, OOVValid: true,
			MaxUserTweets: 1, Dups: 0,
			TimeStep: 1, StepValid: i > 0, TimeSpread: 0,
		}
		if v, ok := p.Score(obs); ok {
			p.Observe(obs, &v)
		} else {
			p.Observe(obs, nil)
		}
	}
	return p
}

// TestConformSectionOptional pins the conformance section's
// compatibility story, the same contract as the epoch section: a nil or
// never-observed profile omits the section entirely — snapshots of
// topics that predate the conformance gate (and of fresh topics) stay
// byte-identical to pre-gate builds — while a warmed profile rides along
// and round-trips bit-exactly.
func TestConformSectionOptional(t *testing.T) {
	var nilProf, zeroProf, warm bytes.Buffer
	if err := Encode(&nilProf, fullState()); err != nil {
		t.Fatal(err)
	}
	zp := fullState()
	zp.Conform = conform.NewProfile(conform.Params{})
	if err := Encode(&zeroProf, zp); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nilProf.Bytes(), zeroProf.Bytes()) {
		t.Fatal("zero profile must encode identically to no profile")
	}

	ws := fullState()
	ws.Conform = warmConformProfile()
	if err := Encode(&warm, ws); err != nil {
		t.Fatal(err)
	}
	if warm.Len() <= nilProf.Len() {
		t.Fatal("warm profile did not grow the snapshot")
	}
	got, err := Decode(bytes.NewReader(warm.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Conform == nil {
		t.Fatal("decoded state lost the profile")
	}
	if !bytes.Equal(got.Conform.AppendBinary(nil), ws.Conform.AppendBinary(nil)) {
		t.Fatal("profile did not round-trip bit-exactly")
	}
}

// TestConformSectionVersionSkew: a profile written by a future wire
// version inside an otherwise intact snapshot must surface as ErrVersion
// (the recoverable skew path — startup quarantine, stable error code),
// while structural damage to the section is ErrCorrupt.
func TestConformSectionVersionSkew(t *testing.T) {
	st := fullState()
	st.Conform = warmConformProfile()
	forge := func(mutate func(payload []byte)) []byte {
		var buf bytes.Buffer
		if err := Encode(&buf, st); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		payload := append([]byte(nil), data[18:len(data)-4]...)
		mutate(payload)
		out := append([]byte(nil), data[:10]...)
		out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
		out = append(out, payload...)
		return binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	}
	// mutateConform rewrites one byte at off within the conform section's
	// payload (off 0 is the profile wire version).
	mutateConform := func(off int, val byte) func([]byte) {
		return func(p []byte) {
			for i := 0; i < len(p); {
				tag, size := p[i], binary.LittleEndian.Uint64(p[i+1:i+9])
				if tag == tagConform {
					p[i+9+off] = val
					return
				}
				if tag == tagEnd {
					t.Fatal("conform section not found")
				}
				i += 9 + int(size)
			}
		}
	}
	if _, err := Decode(bytes.NewReader(forge(mutateConform(0, 9)))); !errors.Is(err, ErrVersion) {
		t.Fatalf("future profile version: got %v, want ErrVersion", err)
	}
	// Byte 73 is the metric count; an invariant-set mismatch is
	// corruption, not skew (the wire version pins the set).
	if _, err := Decode(bytes.NewReader(forge(mutateConform(73, 200)))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("metric-count damage: got %v, want ErrCorrupt", err)
	}
}
