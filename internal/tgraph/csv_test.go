package tgraph

import (
	"bytes"
	"strings"
	"testing"
)

const sampleCSV = `user,time,text,retweet_of,label
alice,1,Support the prop37 initiative,-,pos
bob,1,corn farmers against it,-,neg
carol,2,great point,0,pos
dave,3,meh,-,
`

func TestReadCSVBasic(t *testing.T) {
	c, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if c.NumTweets() != 4 || c.NumUsers() != 4 {
		t.Fatalf("got %d tweets / %d users", c.NumTweets(), c.NumUsers())
	}
	if c.Users[0].Name != "alice" || c.Users[3].Name != "dave" {
		t.Fatalf("user interning order wrong: %+v", c.Users)
	}
	if c.Tweets[2].RetweetOf != 0 {
		t.Fatalf("retweet_of = %d", c.Tweets[2].RetweetOf)
	}
	if c.Tweets[0].Label != 0 || c.Tweets[1].Label != 1 || c.Tweets[3].Label != NoLabel {
		t.Fatalf("labels wrong: %v", c.TweetLabels())
	}
	if c.Tweets[0].Time != 1 || c.Tweets[3].Time != 3 {
		t.Fatal("times wrong")
	}
}

func TestReadCSVSameUserInterned(t *testing.T) {
	in := "u,1,a\nu,2,b\n"
	c, err := ReadCSV(strings.NewReader(in), CSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumUsers() != 1 || c.Tweets[1].User != 0 {
		t.Fatal("repeat user not interned")
	}
}

func TestReadCSVTimeDivisor(t *testing.T) {
	in := "u,86401,a\n"
	c, err := ReadCSV(strings.NewReader(in), CSVOptions{TimeDivisor: 86400})
	if err != nil {
		t.Fatal(err)
	}
	if c.Tweets[0].Time != 1 {
		t.Fatalf("time = %d, want 1", c.Tweets[0].Time)
	}
}

func TestReadCSVTSV(t *testing.T) {
	in := "u\t1\thello world\n"
	c, err := ReadCSV(strings.NewReader(in), CSVOptions{Comma: '\t'})
	if err != nil {
		t.Fatal(err)
	}
	if c.Tweets[0].Text != "hello world" {
		t.Fatalf("text = %q", c.Tweets[0].Text)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields": "u,1\n",
		"bad time":       "u,xx,text\n",
		"bad retweet":    "u,1,text,zz\n",
		"bad label":      "u,1,text,-,awesome\n",
		"forward ref":    "u,1,text,5,pos\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), CSVOptions{}); err == nil {
			t.Fatalf("%s: expected error", name)
		}
	}
}

func TestParseLabel(t *testing.T) {
	for in, want := range map[string]int{
		"pos": 0, "Positive": 0, "+": 0, "yes": 0,
		"NEG": 1, "negative": 1, "no": 1,
		"neu": 2, "Neutral": 2, "0": 2,
		"": NoLabel, "-": NoLabel, "none": NoLabel,
	} {
		got, err := ParseLabel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLabel(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := ParseLabel("banana"); err == nil {
		t.Fatal("expected error for unknown label")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV(strings.NewReader(sampleCSV), CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig, 0); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, CSVOptions{HasHeader: true})
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	if back.NumTweets() != orig.NumTweets() || back.NumUsers() != orig.NumUsers() {
		t.Fatal("round trip changed counts")
	}
	for i := range orig.Tweets {
		a, b := orig.Tweets[i], back.Tweets[i]
		if a.User != b.User || a.Time != b.Time || a.RetweetOf != b.RetweetOf || a.Label != b.Label || a.Text != b.Text {
			t.Fatalf("tweet %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestWriteCSVUsesTokensWhenNoText(t *testing.T) {
	c := &Corpus{
		Users:  []User{{Name: "u", Label: NoLabel}},
		Tweets: []Tweet{{Tokens: []string{"a", "b"}, User: 0, RetweetOf: -1, Label: NoLabel}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, c, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a b") {
		t.Fatalf("tokens not joined: %s", buf.String())
	}
}
