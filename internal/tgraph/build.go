package tgraph

import (
	"triclust/internal/sparse"
	"triclust/internal/text"
)

// Graph bundles the four matrices of the tripartite-graph formulation.
// Rows of Xp/Xr columns index tweets of the corpus it was built from;
// rows of Xu/Xr and both dimensions of Gu index users.
type Graph struct {
	// Xp is the n×l tweet–feature matrix.
	Xp *sparse.CSR
	// Xu is the m×l user–feature matrix (sum of the user's tweet rows).
	Xu *sparse.CSR
	// Xr is the m×n user–tweet incidence: Xr(u,p)=1 when u posted or
	// retweeted p (dashed/solid edges of Figure 2).
	Xr *sparse.CSR
	// Gu is the m×m symmetric user–user retweet graph: an edge joins a
	// retweeting user with the author of the original tweet, weighted by
	// the number of such interactions.
	Gu *sparse.CSR
	// Vocab maps feature columns to words.
	Vocab *text.Vocabulary
}

// BuildOptions control graph construction.
type BuildOptions struct {
	// Weighting selects TF / TFIDF / Binary for Xp (the paper uses
	// tf-idf).
	Weighting text.Weighting
	// MinDF prunes vocabulary words occurring in fewer tweets.
	MinDF int
	// Vocab, when non-nil, fixes the vocabulary instead of building one
	// (the online algorithm shares a vocabulary across snapshots).
	Vocab *text.Vocabulary
}

// DefaultBuildOptions returns the paper's configuration: TF-IDF features,
// vocabulary pruned at document frequency 2.
func DefaultBuildOptions() BuildOptions {
	return BuildOptions{Weighting: text.TFIDF, MinDF: 2}
}

// Build constructs the tripartite graph of a tokenized corpus. Tweets must
// already have Tokens set (call Corpus.Tokenize first for raw text).
func Build(c *Corpus, opts BuildOptions) *Graph {
	docs := c.TokenDocs()
	vocab := opts.Vocab
	if vocab == nil {
		minDF := opts.MinDF
		if minDF < 1 {
			minDF = 1
		}
		vocab = text.BuildVocabulary(docs, minDF)
	}

	n, m := c.NumTweets(), c.NumUsers()
	xp := text.DocFeatureMatrix(docs, vocab, opts.Weighting)

	owner := make([]int, n)
	for i := range c.Tweets {
		owner[i] = c.Tweets[i].User
	}
	xu := text.UserFeatureMatrix(xp, owner, m)

	xr := sparse.NewCOO(m, n)
	gu := sparse.NewCOO(m, m)
	for i, tw := range c.Tweets {
		xr.Add(tw.User, i, 1)
		if tw.RetweetOf >= 0 {
			orig := c.Tweets[tw.RetweetOf]
			// The retweeting user is also connected to the original tweet…
			xr.Add(tw.User, tw.RetweetOf, 1)
			// …and to its author in the user–user graph (both directions;
			// the Laplacian regularizer treats Gu as undirected).
			if orig.User != tw.User {
				gu.Add(tw.User, orig.User, 1)
				gu.Add(orig.User, tw.User, 1)
			}
		}
	}

	return &Graph{
		Xp:    xp,
		Xu:    xu,
		Xr:    clampBinary(xr.ToCSR()),
		Gu:    gu.ToCSR(),
		Vocab: vocab,
	}
}

// clampBinary caps duplicate-accumulated incidence entries at 1: a user
// either interacted with a tweet or did not.
func clampBinary(m *sparse.CSR) *sparse.CSR {
	b := sparse.NewCOO(m.Rows(), m.Cols())
	for i := 0; i < m.Rows(); i++ {
		cols, vals := m.Row(i)
		for p, j := range cols {
			if vals[p] != 0 {
				b.Add(i, j, 1)
			}
		}
	}
	return b.ToCSR()
}
