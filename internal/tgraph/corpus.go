// Package tgraph defines the corpus data model and builds the tripartite
// graph of the paper: the tweet–feature matrix Xp, user–feature matrix Xu,
// user–tweet matrix Xr and user–user retweet graph Gu, plus the temporal
// snapshot machinery (time slicing, new/evolving/disappeared user
// categorization) required by the online framework.
package tgraph

import (
	"fmt"
	"sort"

	"triclust/internal/text"
)

// NoLabel marks a tweet or user without ground-truth sentiment.
const NoLabel = -1

// Tweet is the paper's triple p = <x, u, t> plus optional provenance.
type Tweet struct {
	// Text is the raw tweet body; Tokens, if non-nil, overrides
	// tokenization (the synthetic generator emits tokens directly).
	Text   string
	Tokens []string
	// User is the index of the posting (or retweeting) user.
	User int
	// Time is the integer timestamp (the experiments use days).
	Time int
	// RetweetOf is the index of the original tweet when this tweet is a
	// retweet, or -1.
	RetweetOf int
	// Label is the ground-truth sentiment class (Pos/Neg/Neu) or NoLabel.
	Label int
}

// User carries per-user metadata.
type User struct {
	Name string
	// Label is the ground-truth user-level sentiment or NoLabel.
	Label int
}

// Corpus is a topic-focused collection of tweets and users.
type Corpus struct {
	Tweets []Tweet
	Users  []User
}

// NumTweets returns n.
func (c *Corpus) NumTweets() int { return len(c.Tweets) }

// NumUsers returns m.
func (c *Corpus) NumUsers() int { return len(c.Users) }

// Validate checks referential integrity; it returns the first problem found.
func (c *Corpus) Validate() error {
	m, n := len(c.Users), len(c.Tweets)
	for i, tw := range c.Tweets {
		if tw.User < 0 || tw.User >= m {
			return fmt.Errorf("tgraph: tweet %d references user %d of %d", i, tw.User, m)
		}
		if tw.RetweetOf >= n {
			return fmt.Errorf("tgraph: tweet %d retweets %d of %d", i, tw.RetweetOf, n)
		}
		if tw.RetweetOf == i {
			return fmt.Errorf("tgraph: tweet %d retweets itself", i)
		}
	}
	return nil
}

// TimeRange returns the minimum and maximum tweet timestamps. ok is false
// for an empty corpus.
func (c *Corpus) TimeRange() (lo, hi int, ok bool) {
	if len(c.Tweets) == 0 {
		return 0, 0, false
	}
	lo, hi = c.Tweets[0].Time, c.Tweets[0].Time
	for _, tw := range c.Tweets[1:] {
		if tw.Time < lo {
			lo = tw.Time
		}
		if tw.Time > hi {
			hi = tw.Time
		}
	}
	return lo, hi, true
}

// Tokenize fills Tweet.Tokens for every tweet whose Tokens field is nil,
// using the given tokenizer.
func (c *Corpus) Tokenize(tok *text.Tokenizer) {
	for i := range c.Tweets {
		if c.Tweets[i].Tokens == nil {
			c.Tweets[i].Tokens = tok.Tokenize(c.Tweets[i].Text)
		}
	}
}

// TokenDocs returns the token list of every tweet, in order.
func (c *Corpus) TokenDocs() [][]string {
	docs := make([][]string, len(c.Tweets))
	for i := range c.Tweets {
		docs[i] = c.Tweets[i].Tokens
	}
	return docs
}

// TweetLabels returns the per-tweet label vector.
func (c *Corpus) TweetLabels() []int {
	out := make([]int, len(c.Tweets))
	for i := range c.Tweets {
		out[i] = c.Tweets[i].Label
	}
	return out
}

// UserLabels returns the per-user label vector.
func (c *Corpus) UserLabels() []int {
	out := make([]int, len(c.Users))
	for i := range c.Users {
		out[i] = c.Users[i].Label
	}
	return out
}

// Slice returns the sub-corpus of tweets with Time in [from, to), remapped
// to local tweet indices. Users keep their global indices (the online
// algorithm tracks users across snapshots); the returned mapping gives the
// global tweet index of each local tweet.
func (c *Corpus) Slice(from, to int) (*Corpus, []int) {
	var idx []int
	for i, tw := range c.Tweets {
		if tw.Time >= from && tw.Time < to {
			idx = append(idx, i)
		}
	}
	global := make(map[int]int, len(idx))
	for local, g := range idx {
		global[g] = local
	}
	out := &Corpus{Users: c.Users, Tweets: make([]Tweet, len(idx))}
	for local, g := range idx {
		tw := c.Tweets[g]
		if tw.RetweetOf >= 0 {
			if l, ok := global[tw.RetweetOf]; ok {
				tw.RetweetOf = l
			} else {
				tw.RetweetOf = -1 // original fell outside the window
			}
		}
		out.Tweets[local] = tw
	}
	return out, idx
}

// ActiveUsers returns the sorted global indices of users with at least one
// tweet in the corpus.
func (c *Corpus) ActiveUsers() []int {
	seen := make(map[int]struct{})
	for _, tw := range c.Tweets {
		seen[tw.User] = struct{}{}
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}

// UserCategory classifies a user at snapshot t relative to the previous
// window, per §4 of the paper.
type UserCategory int

const (
	// NewUser was not active in the previous window but is active now.
	NewUser UserCategory = iota
	// EvolvingUser was active in both windows.
	EvolvingUser
	// DisappearedUser was active before but posts nothing now.
	DisappearedUser
)

// CategorizeUsers splits users into new / evolving / disappeared given the
// active sets of the previous and current snapshots. The returned slices
// contain sorted global user indices.
func CategorizeUsers(prevActive, curActive []int) (newU, evolving, disappeared []int) {
	prev := make(map[int]struct{}, len(prevActive))
	for _, u := range prevActive {
		prev[u] = struct{}{}
	}
	cur := make(map[int]struct{}, len(curActive))
	for _, u := range curActive {
		cur[u] = struct{}{}
	}
	for _, u := range curActive {
		if _, ok := prev[u]; ok {
			evolving = append(evolving, u)
		} else {
			newU = append(newU, u)
		}
	}
	for _, u := range prevActive {
		if _, ok := cur[u]; !ok {
			disappeared = append(disappeared, u)
		}
	}
	sort.Ints(newU)
	sort.Ints(evolving)
	sort.Ints(disappeared)
	return newU, evolving, disappeared
}
