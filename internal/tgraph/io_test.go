package tgraph

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	c := tinyCorpus()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, c); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumTweets() != c.NumTweets() || got.NumUsers() != c.NumUsers() {
		t.Fatalf("counts changed: %d/%d vs %d/%d",
			got.NumTweets(), got.NumUsers(), c.NumTweets(), c.NumUsers())
	}
	for i := range c.Tweets {
		a, b := c.Tweets[i], got.Tweets[i]
		if a.User != b.User || a.Time != b.Time || a.RetweetOf != b.RetweetOf || a.Label != b.Label {
			t.Fatalf("tweet %d changed: %+v vs %+v", i, a, b)
		}
		if len(a.Tokens) != len(b.Tokens) {
			t.Fatalf("tweet %d tokens changed", i)
		}
	}
	for i := range c.Users {
		if c.Users[i] != got.Users[i] {
			t.Fatalf("user %d changed", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestReadJSONRejectsBadVersion(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"version":99,"users":[],"tweets":[]}`)); err == nil {
		t.Fatal("expected version error")
	}
}

func TestReadJSONValidates(t *testing.T) {
	// Tweet referencing user 5 of 1.
	bad := `{"version":1,"users":[{"Name":"a","Label":-1}],` +
		`"tweets":[{"Text":"x","Tokens":null,"User":5,"Time":0,"RetweetOf":-1,"Label":-1}]}`
	if _, err := ReadJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("expected validation error")
	}
}
