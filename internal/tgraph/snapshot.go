package tgraph

import (
	"triclust/internal/text"
)

// Snapshot is the tripartite graph of one time window with users
// compacted to the window's active set — the shape Algorithm 2 consumes.
type Snapshot struct {
	// Graph holds Xp (n_t×l), Xu/Xr/Gu over the *local* user indexing.
	Graph *Graph
	// Active maps local user index → global user index.
	Active []int
	// TweetIdx maps local tweet index → global tweet index.
	TweetIdx []int
	// Corpus is the sliced sub-corpus (users still global; tweets local).
	Corpus *Corpus
}

// SnapshotBuilder builds snapshots with reusable scratch state (the
// local-user index map and the compacted corpus buffers), so a long-lived
// session that builds one snapshot per batch does not regrow them each
// time. The zero value is ready to use; a builder is not safe for
// concurrent use.
//
// Graph matrices are still freshly allocated per snapshot — they are
// returned to the caller and have data-dependent sizes — but the builder
// keeps the per-batch bookkeeping out of the steady-state profile.
type SnapshotBuilder struct {
	local   map[int]int
	users   []User
	tweets  []Tweet
	compact Corpus
}

// Build slices c to tweets with Time in [from, to) and builds its
// tripartite graph with a shared vocabulary (required so Sf(t) matrices
// are comparable across snapshots) and users renumbered to the active set.
//
// The returned Snapshot's Active and TweetIdx slices are freshly
// allocated; the Corpus field aliases the builder's internal buffers and
// is only valid until the next Build call.
func (b *SnapshotBuilder) Build(c *Corpus, from, to int, vocab *text.Vocabulary, w text.Weighting) *Snapshot {
	sub, tweetIdx := c.Slice(from, to)
	active := sub.ActiveUsers()
	if b.local == nil {
		b.local = make(map[int]int, len(active))
	} else {
		clear(b.local)
	}
	for i, g := range active {
		b.local[g] = i
	}

	// Re-home tweets onto local user indices in a compacted corpus copy
	// backed by the builder's reusable buffers.
	b.users = b.users[:0]
	b.tweets = b.tweets[:0]
	for _, g := range active {
		b.users = append(b.users, c.Users[g])
	}
	for _, tw := range sub.Tweets {
		tw.User = b.local[tw.User]
		b.tweets = append(b.tweets, tw)
	}
	b.compact = Corpus{Users: b.users, Tweets: b.tweets}

	g := Build(&b.compact, BuildOptions{Weighting: w, Vocab: vocab})
	return &Snapshot{Graph: g, Active: active, TweetIdx: tweetIdx, Corpus: &b.compact}
}

// BuildSnapshot is the one-shot convenience over SnapshotBuilder.Build;
// its Snapshot owns all of its memory.
func BuildSnapshot(c *Corpus, from, to int, vocab *text.Vocabulary, w text.Weighting) *Snapshot {
	var b SnapshotBuilder
	s := b.Build(c, from, to, vocab, w)
	// Detach from the transient builder so the snapshot outlives it.
	s.Corpus = &Corpus{
		Users:  append([]User(nil), b.users...),
		Tweets: append([]Tweet(nil), b.tweets...),
	}
	return s
}

// SnapshotSeries builds one snapshot per timestamp step in [lo, hi] using
// a single vocabulary constructed from the whole corpus (minDF applied
// globally). step is the window width in time units (1 = per day).
// Empty windows produce snapshots with zero tweets.
func SnapshotSeries(c *Corpus, step, minDF int, w text.Weighting) []*Snapshot {
	lo, hi, ok := c.TimeRange()
	if !ok {
		return nil
	}
	if step < 1 {
		step = 1
	}
	if minDF < 1 {
		minDF = 1
	}
	vocab := text.BuildVocabulary(c.TokenDocs(), minDF)
	var out []*Snapshot
	for t := lo; t <= hi; t += step {
		out = append(out, BuildSnapshot(c, t, t+step, vocab, w))
	}
	return out
}
