package tgraph

import (
	"triclust/internal/text"
)

// Snapshot is the tripartite graph of one time window with users
// compacted to the window's active set — the shape Algorithm 2 consumes.
type Snapshot struct {
	// Graph holds Xp (n_t×l), Xu/Xr/Gu over the *local* user indexing.
	Graph *Graph
	// Active maps local user index → global user index.
	Active []int
	// TweetIdx maps local tweet index → global tweet index.
	TweetIdx []int
	// Corpus is the sliced sub-corpus (users still global; tweets local).
	Corpus *Corpus
}

// BuildSnapshot slices c to tweets with Time in [from, to) and builds its
// tripartite graph with a shared vocabulary (required so Sf(t) matrices
// are comparable across snapshots) and users renumbered to the active set.
func BuildSnapshot(c *Corpus, from, to int, vocab *text.Vocabulary, w text.Weighting) *Snapshot {
	sub, tweetIdx := c.Slice(from, to)
	active := sub.ActiveUsers()
	local := make(map[int]int, len(active))
	for i, g := range active {
		local[g] = i
	}

	// Re-home tweets onto local user indices in a compacted corpus copy.
	compact := &Corpus{
		Users:  make([]User, len(active)),
		Tweets: make([]Tweet, len(sub.Tweets)),
	}
	for i, g := range active {
		compact.Users[i] = c.Users[g]
	}
	for i, tw := range sub.Tweets {
		tw.User = local[tw.User]
		compact.Tweets[i] = tw
	}

	g := Build(compact, BuildOptions{Weighting: w, Vocab: vocab})
	return &Snapshot{Graph: g, Active: active, TweetIdx: tweetIdx, Corpus: compact}
}

// SnapshotSeries builds one snapshot per timestamp step in [lo, hi] using
// a single vocabulary constructed from the whole corpus (minDF applied
// globally). step is the window width in time units (1 = per day).
// Empty windows produce snapshots with zero tweets.
func SnapshotSeries(c *Corpus, step, minDF int, w text.Weighting) []*Snapshot {
	lo, hi, ok := c.TimeRange()
	if !ok {
		return nil
	}
	if step < 1 {
		step = 1
	}
	if minDF < 1 {
		minDF = 1
	}
	vocab := text.BuildVocabulary(c.TokenDocs(), minDF)
	var out []*Snapshot
	for t := lo; t <= hi; t += step {
		out = append(out, BuildSnapshot(c, t, t+step, vocab, w))
	}
	return out
}
